// Command dvmpolicy validates and queries DVM security policies (the
// XML-based access-matrix language of §3.2).
//
// Usage:
//
//	dvmpolicy policy.xml                         # validate and summarize
//	dvmpolicy -query sid:permission:target policy.xml
//	dvmpolicy -domain app/Main policy.xml        # resolve a codebase
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dvm/internal/security"
)

func main() {
	query := flag.String("query", "", "evaluate an access question, formatted sid:permission:target")
	domain := flag.String("domain", "", "resolve the protection domain for a class name")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: dvmpolicy [-query sid:perm:target] [-domain class] policy.xml")
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "dvmpolicy: %v\n", err)
		os.Exit(1)
	}
	pol, err := security.ParsePolicy(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dvmpolicy: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("policy OK: %d domains, %d assignments, %d resources, %d operation mappings\n",
		len(pol.Domains), len(pol.Assigns), len(pol.Resources), len(pol.Operations))
	for _, d := range pol.Domains {
		fmt.Printf("  domain %s: %d grants\n", d.ID, len(d.Grants))
	}
	for _, o := range pol.Operations {
		fmt.Printf("  check %s at %s.%s%s (target=%s)\n", o.Permission, o.Class, o.Method, o.Desc, o.TargetArg)
	}
	if *domain != "" {
		fmt.Printf("domain(%s) = %q\n", *domain, pol.DomainFor(*domain))
	}
	if *query != "" {
		parts := strings.SplitN(*query, ":", 3)
		if len(parts) != 3 {
			fmt.Fprintln(os.Stderr, "dvmpolicy: -query wants sid:permission:target")
			os.Exit(2)
		}
		allowed := pol.Allowed(parts[0], parts[1], parts[2])
		fmt.Printf("allowed(%s, %s, %s) = %v\n", parts[0], parts[1], parts[2], allowed)
		if !allowed {
			os.Exit(3)
		}
	}
}
