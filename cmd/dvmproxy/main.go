// Command dvmproxy runs the DVM service proxy: it intercepts class
// requests, applies the static service pipeline (verification, security
// rewriting, auditing, compilation), caches results, and serves clients
// over HTTP — the organization's single logical point of control.
//
// Usage:
//
//	dvmproxy -addr :8642 -origin ./classes [-policy policy.xml]
//	         [-no-cache] [-no-compile] [-audit-log proxy-audit.log]
//	         [-fetch-timeout 10s] [-retries 2] [-breaker-threshold 5]
//	         [-cache-ttl 0]
//	         [-max-queue 256 -queue-deadline 100ms -shed-policy priority]
//	         [-self http://10.0.0.1:8642 -peers http://10.0.0.1:8642,http://10.0.0.2:8642]
//
// The origin directory maps internal class names to files:
// jlex/Main -> ./classes/jlex/Main.class. Origin fetches carry a
// per-attempt deadline, bounded retries, and a circuit breaker; with a
// cache TTL set, an unreachable origin degrades to serving stale cache
// entries (stale-if-error) instead of failing requests.
//
// Cluster mode (-self/-peers) joins this proxy to a sharded fleet: a
// consistent-hash ring assigns every (arch, class) key an owner node,
// and misses for keys owned elsewhere are filled from the owner over
// the versioned batch peer protocol (POST /peer/v1/batch) instead of
// refetched from the origin — one origin fetch and one pipeline run per
// key across the whole fleet. Owners also piggyback each served class's
// top -prefetch-k predicted first-use successors onto fill responses
// (byte-budgeted by -prefetch-budget, thresholded by
// -prefetch-confidence), pre-warming the requester's cache before the
// client asks; -prefetch-k -1 disables the predictor. Membership is
// live: -peers is only a seed list, gossip (every -gossip-interval)
// discovers the rest of the fleet, detects failures (suspect, then dead
// after -suspect-timeout), and rebalances the ring on joins and leaves.
// Each key is replicated to -replication owners, so a node death
// degrades to a warm replica hit. A peer that stops answering trips a
// per-link breaker (feeding failure suspicion) and this node degrades
// to local fetches. /healthz shows the live membership with per-member
// state and the view epoch.
//
// With -attest-key the fleet cross-checks its rewrites: an owner-side
// miss dispatches the origin bytes to -attest-quorum minus one ring
// successors, each votes with its own pipeline's output digest, and on
// agreement the artifact is sealed under the shared key. Every peer hop
// (fill, replica push, handoff) re-verifies the seal before trusting
// the bytes; a peer whose bytes or votes diverge is quarantined after
// -quarantine-after strikes and surfaced in /healthz.
//
// The server drains gracefully on SIGINT/SIGTERM: with -drain (the
// default) a cluster node first announces its departure and hands its
// cache off to each key's new owners, then the listener closes and
// in-flight requests get -drain-timeout to finish.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"dvm/internal/cluster"
	"dvm/internal/compiler"
	"dvm/internal/monitor"
	"dvm/internal/proxy"
	"dvm/internal/rewrite"
	"dvm/internal/security"
	"dvm/internal/verifier"
)

// dirOrigin serves classfiles from a directory tree.
type dirOrigin struct{ root string }

func (d dirOrigin) Fetch(_ context.Context, name string) ([]byte, error) {
	if strings.Contains(name, "..") {
		return nil, fmt.Errorf("origin: bad class name %q", name)
	}
	b, err := os.ReadFile(filepath.Join(d.root, filepath.FromSlash(name)+".class"))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("origin: %s: %w", name, proxy.ErrNotFound)
	}
	return b, err
}

func main() {
	addr := flag.String("addr", ":8642", "HTTP listen address")
	originDir := flag.String("origin", "", "directory serving original .class files (required)")
	policyPath := flag.String("policy", "", "security policy XML (omit to disable the security filter)")
	noCache := flag.Bool("no-cache", false, "disable the proxy result cache")
	diskCache := flag.String("disk-cache", "", "directory backing the cache on disk (survives restarts)")
	cacheTTL := flag.Duration("cache-ttl", 0, "cache entry freshness window; expired entries are revalidated, and served stale when the origin is down (0 = never expire)")
	noCompile := flag.Bool("no-compile", false, "disable the AOT compilation filter")
	noAuditFilter := flag.Bool("no-audit", false, "disable the audit rewriting filter")
	auditLog := flag.String("audit-log", "", "append the request audit trail to this file")
	statsInterval := flag.Duration("stats-interval", time.Minute, "periodic stats summary interval (0 disables)")
	fetchTimeout := flag.Duration("fetch-timeout", 10*time.Second, "per-attempt origin fetch deadline (0 = none)")
	retries := flag.Int("retries", 2, "origin fetch retries after the first failed attempt")
	breakerThreshold := flag.Int("breaker-threshold", 5, "consecutive origin failures that trip the circuit breaker (-1 disables)")
	breakerCooldown := flag.Duration("breaker-cooldown", 5*time.Second, "how long a tripped breaker stays open before probing")
	self := flag.String("self", "", "this node's peer URL in a sharded proxy cluster (e.g. http://10.0.0.1:8642); empty = standalone")
	peers := flag.String("peers", "", "comma-separated seed peer URLs; gossip discovers the rest of the fleet from any live subset")
	vnodes := flag.Int("vnodes", 0, "virtual nodes per member on the consistent-hash ring (0 = default)")
	replication := flag.Int("replication", 0, "ring owners per key: primary plus warm replicas (0 = default 2, 1 = no replication)")
	gossipInterval := flag.Duration("gossip-interval", 500*time.Millisecond, "membership gossip period")
	suspectTimeout := flag.Duration("suspect-timeout", 3*time.Second, "how long an unrefuted suspect survives before being declared dead")
	drain := flag.Bool("drain", true, "on SIGINT/SIGTERM, announce departure and hand the cache off to the new owners before shutting down")
	hotThreshold := flag.Int("hot-threshold", 0, "peer fills of one key before it is replicated into the local cache (0 = default 8, -1 = never)")
	attestKey := flag.String("attest-key", "", "shared service key enabling quorum attestation: artifacts are sealed under it and re-verified on every peer hop (all members must agree; empty = attestation off)")
	attestQuorum := flag.Int("attest-quorum", 2, "variants per attested key, owner included (1 = seal locally without cross-checking)")
	attestPolicy := flag.String("attest-policy", "always", "which keys run at the full quorum: always, sampled (1-in-attest-sample-rate by key hash), or hot (keys past -hot-threshold)")
	attestSampleRate := flag.Int("attest-sample-rate", 0, "1-in-N rate for -attest-policy sampled (0 = default 16)")
	quarantineAfter := flag.Int("quarantine-after", 0, "attestation divergences before a peer is quarantined: excluded from fills and variant votes (0 = default 3)")
	aotBaseArch := flag.String("aot-base-arch", "", "enable the fleet-shared AOT code cache: misses for the compiled arch derive from this base architecture's cached artifact (e.g. jvm; empty = off)")
	prefetchK := flag.Int("prefetch-k", 0, "predictive prefetch: top-k first-use successors piggybacked onto each peer fill (0 = default 3, -1 disables the predictor)")
	prefetchBudget := flag.Int("prefetch-budget", 0, "predictive prefetch: byte budget per piggyback batch (0 = default 256KiB)")
	prefetchConfidence := flag.Float64("prefetch-confidence", 0, "predictive prefetch: minimum successor confidence (edge weight / out-weight) to piggyback (0 = default 0.25)")
	peerTimeout := flag.Duration("peer-timeout", 3*time.Second, "deadline for one peer class fetch")
	readHeaderTimeout := flag.Duration("read-header-timeout", 5*time.Second, "bound on reading a request's headers (slowloris guard)")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute, "keep-alive idle connection timeout")
	drainTimeout := flag.Duration("drain-timeout", 15*time.Second, "how long in-flight requests get to finish on shutdown")
	pipelineWorkers := flag.Int("pipeline-workers", 0, "static-service per-method fan-out (0 = GOMAXPROCS, 1 = sequential)")
	maxQueue := flag.Int("max-queue", 0, "admission control: max miss requests queued for a service slot (0 disables admission)")
	maxConcurrent := flag.Int("max-concurrent", 0, "admission control: max concurrent origin-fetch+pipeline flights (0 = 8 x GOMAXPROCS)")
	queueDeadline := flag.Duration("queue-deadline", 0, "admission control: max wait for a service slot before shedding (0 = 1s)")
	shedPolicy := flag.String("shed-policy", proxy.ShedPriority, "what to shed under overload: priority (stale-serve first, peers before clients), fifo (tail-drop only), none")
	flag.Parse()
	if *originDir == "" {
		fmt.Fprintln(os.Stderr, "usage: dvmproxy -origin dir [-addr :8642] [-policy policy.xml] [-self URL -peers URL,...]")
		os.Exit(2)
	}
	if *self == "" && *peers != "" {
		log.Fatal("dvmproxy: -peers requires -self")
	}

	pipe := rewrite.NewPipeline(verifier.Filter())
	pipe.SetWorkers(*pipelineWorkers)
	if *policyPath != "" {
		data, err := os.ReadFile(*policyPath)
		if err != nil {
			log.Fatalf("dvmproxy: %v", err)
		}
		pol, err := security.ParsePolicy(data)
		if err != nil {
			log.Fatalf("dvmproxy: %v", err)
		}
		pipe.Append(security.Filter(pol))
	}
	if !*noAuditFilter {
		pipe.Append(monitor.Filter(monitor.Config{Methods: true, Skip: monitor.SkipInitializers}))
	}
	if !*noCompile {
		pipe.Append(compiler.Filter())
	}

	cfg := proxy.Config{
		Pipeline:         pipe,
		CacheEnabled:     !*noCache,
		DiskCacheDir:     *diskCache,
		CacheTTL:         *cacheTTL,
		FetchTimeout:     *fetchTimeout,
		FetchRetries:     *retries,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
		MaxQueue:         *maxQueue,
		MaxConcurrent:    *maxConcurrent,
		QueueDeadline:    *queueDeadline,
		ShedPolicy:       *shedPolicy,
	}
	if *auditLog != "" {
		f, err := os.OpenFile(*auditLog, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			log.Fatalf("dvmproxy: %v", err)
		}
		defer f.Close()
		cfg.OnAudit = func(r proxy.RequestRecord) {
			fmt.Fprintf(f, "client=%s arch=%s class=%s bytes=%d cached=%v coalesced=%v rejected=%v stale=%v peer=%q peerErr=%q fetchErr=%q dur=%s\n",
				r.Client, r.Arch, r.Class, r.Bytes, r.CacheHit, r.Coalesced, r.Rejected, r.Stale, r.Peer, r.PeerError, r.FetchError, r.Duration)
		}
	}

	origin := dirOrigin{root: *originDir}
	var handler http.Handler
	var stats func() proxy.Stats
	var node *cluster.Node
	if *self != "" {
		var err error
		node, err = cluster.NewNode(origin, cfg, cluster.Config{
			Self:               *self,
			Peers:              splitList(*peers),
			VirtualNodes:       *vnodes,
			Replication:        *replication,
			GossipInterval:     *gossipInterval,
			SuspectTimeout:     *suspectTimeout,
			HotThreshold:       *hotThreshold,
			PeerTimeout:        *peerTimeout,
			BreakerThreshold:   *breakerThreshold,
			BreakerCooldown:    *breakerCooldown,
			AttestKey:          []byte(*attestKey),
			AttestQuorum:       *attestQuorum,
			AttestPolicy:       *attestPolicy,
			AttestSampleRate:   *attestSampleRate,
			QuarantineAfter:    *quarantineAfter,
			PrefetchK:          *prefetchK,
			PrefetchBudget:     *prefetchBudget,
			PrefetchConfidence: *prefetchConfidence,
			AOTBaseArch:        *aotBaseArch,
		})
		if err != nil {
			log.Fatalf("dvmproxy: %v", err)
		}
		handler = node.Handler()
		stats = node.Proxy().Stats
		log.Printf("dvmproxy: cluster node %s with %d members (ring seed 0, vnodes %d, replication %d, gossip %s, suspect timeout %s)",
			*self, node.Ring().Size(), *vnodes, *replication, *gossipInterval, *suspectTimeout)
		if *attestKey != "" {
			log.Printf("dvmproxy: quorum attestation on (quorum %d, policy %s): artifacts are sealed and re-verified on every peer hop",
				*attestQuorum, *attestPolicy)
		}
		if *prefetchK >= 0 {
			log.Printf("dvmproxy: predictive prefetch on (top-k %d, budget %dB, confidence %.2f; 0 = package default)",
				*prefetchK, *prefetchBudget, *prefetchConfidence)
		}
		if *aotBaseArch != "" {
			log.Printf("dvmproxy: AOT code cache on: misses for the compiled arch derive from cached %q artifacts (one compilation per key fleet-wide)",
				*aotBaseArch)
		}
	} else {
		p := proxy.New(origin, cfg)
		handler = p.Handler()
		stats = p.Stats
	}

	summarize := func(prefix string) {
		s := stats()
		log.Printf("dvmproxy: %s requests=%d cacheHits=%d coalesced=%d originFetches=%d fetchRetries=%d fetchErrors=%d staleServed=%d shed=%d shedStale=%d coalescedFailures=%d flightsAbandoned=%d peerFetches=%d peerHits=%d ownerFetches=%d rejections=%d bytesIn=%d bytesOut=%d proxyTime=%s breaker=%s breakerTrips=%d",
			prefix, s.Requests, s.CacheHits, s.Coalesced, s.OriginFetches, s.FetchRetries, s.FetchErrors, s.StaleServed,
			s.Shed, s.ShedStale, s.CoalescedFailures, s.FlightsAbandoned,
			s.PeerFetches, s.PeerHits, s.OwnerFetches, s.Rejections, s.BytesIn, s.BytesOut, s.ProxyTime, s.Breaker.State, s.Breaker.Trips)
	}

	// The stats ticker is owned by the shutdown path: unlike time.Tick,
	// a Ticker plus a done channel actually terminates the goroutine.
	tickerDone := make(chan struct{})
	tickerStopped := make(chan struct{})
	if *statsInterval > 0 {
		ticker := time.NewTicker(*statsInterval)
		go func() {
			defer close(tickerStopped)
			defer ticker.Stop()
			for {
				select {
				case <-ticker.C:
					summarize("summary")
				case <-tickerDone:
					return
				}
			}
		}()
	} else {
		close(tickerStopped)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: *readHeaderTimeout,
		IdleTimeout:       *idleTimeout,
	}
	log.Printf("dvmproxy: serving %s on %s (cache=%v, filters=%d, fetch-timeout=%s, retries=%d, breaker-threshold=%d)",
		*originDir, *addr, !*noCache, len(pipe.Filters()), *fetchTimeout, *retries, *breakerThreshold)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	select {
	case err := <-errCh:
		log.Fatalf("dvmproxy: %v", err)
	case <-ctx.Done():
	}
	stop()
	log.Printf("dvmproxy: signal received, draining connections (up to %s)", *drainTimeout)
	close(tickerDone)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if node != nil && *drain {
		// Cluster goodbye before the HTTP server goes away: announce the
		// departure (peers re-route new fills immediately, 429 +
		// X-DVM-Draining covers the gossip gap) and push the cache to
		// each key's new owners. Within the same drain budget as the
		// connection drain — a slow handoff must not stall shutdown.
		log.Printf("dvmproxy: announcing departure and handing off cache")
		if err := node.Drain(shutdownCtx); err != nil {
			log.Printf("dvmproxy: cluster drain incomplete: %v", err)
		}
	}
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("dvmproxy: drain incomplete: %v", err)
	}
	if node != nil {
		node.Close()
	}
	<-tickerStopped
	summarize("final")
	log.Print("dvmproxy: shut down")
}

// splitList splits a comma-separated flag, dropping empty entries.
func splitList(s string) []string {
	var out []string
	for _, v := range strings.Split(s, ",") {
		if v = strings.TrimSpace(v); v != "" {
			out = append(out, v)
		}
	}
	return out
}
