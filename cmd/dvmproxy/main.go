// Command dvmproxy runs the DVM service proxy: it intercepts class
// requests, applies the static service pipeline (verification, security
// rewriting, auditing, compilation), caches results, and serves clients
// over HTTP — the organization's single logical point of control.
//
// Usage:
//
//	dvmproxy -addr :8642 -origin ./classes [-policy policy.xml]
//	         [-no-cache] [-no-compile] [-audit-log proxy-audit.log]
//
// The origin directory maps internal class names to files:
// jlex/Main -> ./classes/jlex/Main.class.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"dvm/internal/compiler"
	"dvm/internal/monitor"
	"dvm/internal/proxy"
	"dvm/internal/rewrite"
	"dvm/internal/security"
	"dvm/internal/verifier"
)

// dirOrigin serves classfiles from a directory tree.
type dirOrigin struct{ root string }

func (d dirOrigin) Fetch(name string) ([]byte, error) {
	if strings.Contains(name, "..") {
		return nil, fmt.Errorf("origin: bad class name %q", name)
	}
	return os.ReadFile(filepath.Join(d.root, filepath.FromSlash(name)+".class"))
}

func main() {
	addr := flag.String("addr", ":8642", "HTTP listen address")
	originDir := flag.String("origin", "", "directory serving original .class files (required)")
	policyPath := flag.String("policy", "", "security policy XML (omit to disable the security filter)")
	noCache := flag.Bool("no-cache", false, "disable the proxy result cache")
	diskCache := flag.String("disk-cache", "", "directory backing the cache on disk (survives restarts)")
	noCompile := flag.Bool("no-compile", false, "disable the AOT compilation filter")
	noAuditFilter := flag.Bool("no-audit", false, "disable the audit rewriting filter")
	auditLog := flag.String("audit-log", "", "append the request audit trail to this file")
	statsInterval := flag.Duration("stats-interval", time.Minute, "periodic stats summary interval (0 disables)")
	flag.Parse()
	if *originDir == "" {
		fmt.Fprintln(os.Stderr, "usage: dvmproxy -origin dir [-addr :8642] [-policy policy.xml]")
		os.Exit(2)
	}

	pipe := rewrite.NewPipeline(verifier.Filter())
	if *policyPath != "" {
		data, err := os.ReadFile(*policyPath)
		if err != nil {
			log.Fatalf("dvmproxy: %v", err)
		}
		pol, err := security.ParsePolicy(data)
		if err != nil {
			log.Fatalf("dvmproxy: %v", err)
		}
		pipe.Append(security.Filter(pol))
	}
	if !*noAuditFilter {
		pipe.Append(monitor.Filter(monitor.Config{Methods: true, Skip: monitor.SkipInitializers}))
	}
	if !*noCompile {
		pipe.Append(compiler.Filter())
	}

	cfg := proxy.Config{Pipeline: pipe, CacheEnabled: !*noCache, DiskCacheDir: *diskCache}
	if *auditLog != "" {
		f, err := os.OpenFile(*auditLog, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			log.Fatalf("dvmproxy: %v", err)
		}
		defer f.Close()
		cfg.OnAudit = func(r proxy.RequestRecord) {
			fmt.Fprintf(f, "client=%s arch=%s class=%s bytes=%d cached=%v coalesced=%v rejected=%v fetchErr=%q dur=%s\n",
				r.Client, r.Arch, r.Class, r.Bytes, r.CacheHit, r.Coalesced, r.Rejected, r.FetchError, r.Duration)
		}
	}
	p := proxy.New(dirOrigin{root: *originDir}, cfg)
	if *statsInterval > 0 {
		go func() {
			for range time.Tick(*statsInterval) {
				s := p.Stats()
				log.Printf("dvmproxy: summary requests=%d cacheHits=%d coalesced=%d originFetches=%d fetchErrors=%d rejections=%d bytesIn=%d bytesOut=%d proxyTime=%s",
					s.Requests, s.CacheHits, s.Coalesced, s.OriginFetches, s.FetchErrors, s.Rejections, s.BytesIn, s.BytesOut, s.ProxyTime)
			}
		}()
	}
	log.Printf("dvmproxy: serving %s on %s (cache=%v, filters=%d)",
		*originDir, *addr, !*noCache, len(pipe.Filters()))
	log.Fatal(http.ListenAndServe(*addr, p.Handler()))
}
