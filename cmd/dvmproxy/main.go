// Command dvmproxy runs the DVM service proxy: it intercepts class
// requests, applies the static service pipeline (verification, security
// rewriting, auditing, compilation), caches results, and serves clients
// over HTTP — the organization's single logical point of control.
//
// Usage:
//
//	dvmproxy -addr :8642 -origin ./classes [-policy policy.xml]
//	         [-no-cache] [-no-compile] [-audit-log proxy-audit.log]
//	         [-fetch-timeout 10s] [-retries 2] [-breaker-threshold 5]
//	         [-cache-ttl 0]
//
// The origin directory maps internal class names to files:
// jlex/Main -> ./classes/jlex/Main.class. Origin fetches carry a
// per-attempt deadline, bounded retries, and a circuit breaker; with a
// cache TTL set, an unreachable origin degrades to serving stale cache
// entries (stale-if-error) instead of failing requests.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"dvm/internal/compiler"
	"dvm/internal/monitor"
	"dvm/internal/proxy"
	"dvm/internal/rewrite"
	"dvm/internal/security"
	"dvm/internal/verifier"
)

// dirOrigin serves classfiles from a directory tree.
type dirOrigin struct{ root string }

func (d dirOrigin) Fetch(_ context.Context, name string) ([]byte, error) {
	if strings.Contains(name, "..") {
		return nil, fmt.Errorf("origin: bad class name %q", name)
	}
	b, err := os.ReadFile(filepath.Join(d.root, filepath.FromSlash(name)+".class"))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("origin: %s: %w", name, proxy.ErrNotFound)
	}
	return b, err
}

func main() {
	addr := flag.String("addr", ":8642", "HTTP listen address")
	originDir := flag.String("origin", "", "directory serving original .class files (required)")
	policyPath := flag.String("policy", "", "security policy XML (omit to disable the security filter)")
	noCache := flag.Bool("no-cache", false, "disable the proxy result cache")
	diskCache := flag.String("disk-cache", "", "directory backing the cache on disk (survives restarts)")
	cacheTTL := flag.Duration("cache-ttl", 0, "cache entry freshness window; expired entries are revalidated, and served stale when the origin is down (0 = never expire)")
	noCompile := flag.Bool("no-compile", false, "disable the AOT compilation filter")
	noAuditFilter := flag.Bool("no-audit", false, "disable the audit rewriting filter")
	auditLog := flag.String("audit-log", "", "append the request audit trail to this file")
	statsInterval := flag.Duration("stats-interval", time.Minute, "periodic stats summary interval (0 disables)")
	fetchTimeout := flag.Duration("fetch-timeout", 10*time.Second, "per-attempt origin fetch deadline (0 = none)")
	retries := flag.Int("retries", 2, "origin fetch retries after the first failed attempt")
	breakerThreshold := flag.Int("breaker-threshold", 5, "consecutive origin failures that trip the circuit breaker (-1 disables)")
	breakerCooldown := flag.Duration("breaker-cooldown", 5*time.Second, "how long a tripped breaker stays open before probing")
	flag.Parse()
	if *originDir == "" {
		fmt.Fprintln(os.Stderr, "usage: dvmproxy -origin dir [-addr :8642] [-policy policy.xml]")
		os.Exit(2)
	}

	pipe := rewrite.NewPipeline(verifier.Filter())
	if *policyPath != "" {
		data, err := os.ReadFile(*policyPath)
		if err != nil {
			log.Fatalf("dvmproxy: %v", err)
		}
		pol, err := security.ParsePolicy(data)
		if err != nil {
			log.Fatalf("dvmproxy: %v", err)
		}
		pipe.Append(security.Filter(pol))
	}
	if !*noAuditFilter {
		pipe.Append(monitor.Filter(monitor.Config{Methods: true, Skip: monitor.SkipInitializers}))
	}
	if !*noCompile {
		pipe.Append(compiler.Filter())
	}

	cfg := proxy.Config{
		Pipeline:         pipe,
		CacheEnabled:     !*noCache,
		DiskCacheDir:     *diskCache,
		CacheTTL:         *cacheTTL,
		FetchTimeout:     *fetchTimeout,
		FetchRetries:     *retries,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
	}
	if *auditLog != "" {
		f, err := os.OpenFile(*auditLog, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			log.Fatalf("dvmproxy: %v", err)
		}
		defer f.Close()
		cfg.OnAudit = func(r proxy.RequestRecord) {
			fmt.Fprintf(f, "client=%s arch=%s class=%s bytes=%d cached=%v coalesced=%v rejected=%v stale=%v fetchErr=%q dur=%s\n",
				r.Client, r.Arch, r.Class, r.Bytes, r.CacheHit, r.Coalesced, r.Rejected, r.Stale, r.FetchError, r.Duration)
		}
	}
	p := proxy.New(dirOrigin{root: *originDir}, cfg)
	if *statsInterval > 0 {
		go func() {
			for range time.Tick(*statsInterval) {
				s := p.Stats()
				log.Printf("dvmproxy: summary requests=%d cacheHits=%d coalesced=%d originFetches=%d fetchRetries=%d fetchErrors=%d staleServed=%d rejections=%d bytesIn=%d bytesOut=%d proxyTime=%s breaker=%s breakerTrips=%d",
					s.Requests, s.CacheHits, s.Coalesced, s.OriginFetches, s.FetchRetries, s.FetchErrors, s.StaleServed, s.Rejections, s.BytesIn, s.BytesOut, s.ProxyTime, s.Breaker.State, s.Breaker.Trips)
			}
		}()
	}
	log.Printf("dvmproxy: serving %s on %s (cache=%v, filters=%d, fetch-timeout=%s, retries=%d, breaker-threshold=%d)",
		*originDir, *addr, !*noCache, len(pipe.Filters()), *fetchTimeout, *retries, *breakerThreshold)
	log.Fatal(http.ListenAndServe(*addr, p.Handler()))
}
