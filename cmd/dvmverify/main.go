// Command dvmverify runs the DVM's static verification service over
// classfiles: phases 1–3 plus link-assumption collection, optionally
// rewriting the class into its self-verifying form (Figure 3 of the
// paper).
//
// Usage:
//
//	dvmverify [-v] [-instrument] [-o dir] file.class...
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"dvm/internal/classfile"
	"dvm/internal/verifier"
)

func main() {
	verbose := flag.Bool("v", false, "print the check census and collected assumptions")
	instrument := flag.Bool("instrument", false, "rewrite into self-verifying form")
	outDir := flag.String("o", "", "output directory for instrumented classes (default: alongside input, .dvm.class suffix)")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: dvmverify [-v] [-instrument] [-o dir] file.class...")
		os.Exit(2)
	}
	failed := 0
	for _, path := range flag.Args() {
		if err := process(path, *verbose, *instrument, *outDir); err != nil {
			fmt.Fprintf(os.Stderr, "dvmverify: %s: %v\n", path, err)
			failed++
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}

func process(path string, verbose, instrument bool, outDir string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	cf, err := classfile.Parse(data)
	if err != nil {
		return err
	}
	res, err := verifier.Verify(cf)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %s OK (%d static checks, %d link assumptions)\n",
		path, res.ClassName, res.Census.Static(), len(res.Assumptions))
	if verbose {
		fmt.Printf("  phase1=%d phase2=%d phase3=%d\n",
			res.Census.Phase1, res.Census.Phase2, res.Census.Phase3)
		for _, a := range res.Assumptions {
			scope := a.Scope
			if scope == "" {
				scope = "<class>"
			}
			fmt.Printf("  assume %-10s %s.%s %s  [%s]\n", a.Kind, a.Class, a.Name, a.Desc, scope)
		}
	}
	if !instrument {
		return nil
	}
	if err := verifier.Instrument(cf, res); err != nil {
		return err
	}
	out, err := cf.Encode()
	if err != nil {
		return err
	}
	dest := path + ".dvm.class"
	if outDir != "" {
		dest = filepath.Join(outDir, filepath.Base(path))
	}
	if err := os.WriteFile(dest, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("  wrote %s (%d dynamic checks injected)\n", dest, res.Census.DynamicInjected)
	return nil
}
