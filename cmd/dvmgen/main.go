// Command dvmgen exports generated workload applications as .class
// files on disk, producing an origin directory for dvmproxy and a main
// class for dvmclient.
//
// Usage:
//
//	dvmgen -out ./classes                    # the whole Figure 5 suite
//	dvmgen -out ./classes -app jlex -scale 4
//	dvmgen -list
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"dvm/internal/eval"
	"dvm/internal/workload"
)

func main() {
	out := flag.String("out", "", "output directory (required unless -list)")
	app := flag.String("app", "", "generate only this application (package name, e.g. jlex); empty = all")
	applets := flag.Bool("applets", false, "also generate the Figure 11 applet suite")
	scale := flag.Int("scale", 1, "workload scale divisor (1 = paper scale)")
	list := flag.Bool("list", false, "list available applications")
	flag.Parse()

	specs := eval.ScaleSpecs(workload.Benchmarks(), *scale)
	if *applets {
		specs = append(specs, eval.ScaleSpecs(workload.Applets(), *scale)...)
	}
	if *list {
		for _, s := range specs {
			fmt.Printf("%-12s %-10s kind=%-10s classes=%d target=%dK main=%s\n",
				s.Package, s.Name, s.Kind, s.Classes, s.TargetBytes/1024, s.MainClass())
		}
		return
	}
	if *out == "" {
		fmt.Fprintln(os.Stderr, "usage: dvmgen -out dir [-app pkg] [-applets] [-scale N]")
		os.Exit(2)
	}
	for _, spec := range specs {
		if *app != "" && spec.Package != *app {
			continue
		}
		a, err := workload.Generate(spec)
		if err != nil {
			fatal(err)
		}
		for name, data := range a.Classes {
			path := filepath.Join(*out, filepath.FromSlash(name)+".class")
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				fatal(err)
			}
			if err := os.WriteFile(path, data, 0o644); err != nil {
				fatal(err)
			}
		}
		fmt.Printf("%s: %d classes, %d bytes -> %s (run with -main %s)\n",
			spec.Name, len(a.Classes), a.TotalBytes,
			filepath.Join(*out, spec.Package), spec.MainClass())
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "dvmgen: %v\n", err)
	os.Exit(1)
}
