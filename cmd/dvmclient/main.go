// Command dvmclient runs the DVM client runtime: it resolves classes
// through a service proxy (or a local directory), hosts the dynamic
// service components, and executes a program's main method.
//
// Usage:
//
//	dvmclient -proxy http://127.0.0.1:8642 -main jlex/Main [args...]
//	dvmclient -proxy http://10.0.0.1:8642,http://10.0.0.2:8642 -main jlex/Main [args...]
//	dvmclient -dir ./classes -main jlex/Main [-monolithic] [args...]
//
// -proxy accepts a comma-separated endpoint list: the client spreads
// class loads round-robin across the fleet and fails over to the next
// endpoint when one stops answering (a sharded cluster serves any key
// from any node, so every endpoint is equivalent).
//
// With -monolithic the client runs the baseline architecture: local
// verification at load time and no dependence on injected checks.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"dvm/internal/compiler"
	"dvm/internal/jvm"
	"dvm/internal/monitor"
	"dvm/internal/proxy"
	"dvm/internal/security"
	"dvm/internal/verifier"
)

func main() {
	proxyURL := flag.String("proxy", "", "proxy base URL, or a comma-separated list for round-robin with failover")
	dir := flag.String("dir", "", "load classes from a local directory instead of a proxy")
	mainClass := flag.String("main", "", "internal name of the class whose main to run (required)")
	clientID := flag.String("id", "dvmclient", "client identifier sent to the proxy")
	arch := flag.String("arch", compiler.ArchDVM, "native format advertised to the proxy")
	monolithic := flag.Bool("monolithic", false, "run as a monolithic client (local verification)")
	policyPath := flag.String("policy", "", "policy XML for a local enforcement manager / security manager")
	secServer := flag.String("secserver", "", "security server URL for a remote enforcement manager (e.g. http://host:8644)")
	console := flag.String("console", "", "administration console URL for remote auditing (e.g. http://host:8643)")
	stats := flag.Bool("stats", false, "print runtime statistics on exit")
	fetchTimeout := flag.Duration("fetch-timeout", 30*time.Second, "per-attempt deadline for remote service calls")
	retries := flag.Int("retries", 2, "retries after a failed remote call attempt")
	breakerThreshold := flag.Int("breaker-threshold", 5, "consecutive failures before a per-service circuit breaker opens (-1 disables)")
	flag.Parse()
	if *mainClass == "" || (*proxyURL == "" && *dir == "") {
		fmt.Fprintln(os.Stderr, "usage: dvmclient (-proxy URL | -dir DIR) -main pkg/Class [args...]")
		os.Exit(2)
	}

	var loader jvm.ClassLoader
	if *proxyURL != "" {
		var endpoints []string
		for _, u := range strings.Split(*proxyURL, ",") {
			if u = strings.TrimSpace(u); u != "" {
				endpoints = append(endpoints, u)
			}
		}
		opts := proxy.LoaderOptions{
			Timeout:          *fetchTimeout,
			Retries:          *retries,
			BreakerThreshold: *breakerThreshold,
		}
		if len(endpoints) == 1 {
			loader = proxy.HTTPLoaderWith(endpoints[0], *clientID, *arch, opts)
		} else {
			var err error
			loader, err = proxy.HTTPLoaderMulti(endpoints, *clientID, *arch, opts)
			if err != nil {
				fatal(err)
			}
		}
	} else {
		root := *dir
		loader = jvm.FuncLoader(func(name string) ([]byte, error) {
			if strings.Contains(name, "..") {
				return nil, fmt.Errorf("bad class name %q", name)
			}
			return os.ReadFile(root + "/" + name + ".class")
		})
	}

	vm, err := jvm.New(loader, os.Stdout)
	if err != nil {
		fatal(err)
	}
	var verifyTime time.Duration
	var census verifier.Census
	if *monolithic {
		vm.LoadHooks = append(vm.LoadHooks, verifier.LocalHook(&census, &verifyTime))
	}
	if *policyPath != "" {
		data, err := os.ReadFile(*policyPath)
		if err != nil {
			fatal(err)
		}
		pol, err := security.ParsePolicy(data)
		if err != nil {
			fatal(err)
		}
		if *monolithic {
			vm.BuiltinChecks = security.NewStackIntrospection(pol)
		} else {
			srv := security.NewServer(pol)
			sid := pol.DomainFor(*mainClass)
			if sid == "" {
				fatal(fmt.Errorf("policy assigns no domain to %s", *mainClass))
			}
			vm.CheckAccess = security.NewManager(srv, sid)
		}
	}
	if *secServer != "" {
		// Remote enforcement manager: rules and invalidations come from
		// the central security server. Unreachable server = fail closed.
		sid := "apps"
		rm := security.NewRemoteManagerWith(*secServer, sid, security.RemoteOptions{
			Timeout:          *fetchTimeout,
			Retries:          *retries,
			BreakerThreshold: *breakerThreshold,
			OnDegraded: func(sid, perm, target string, err error) {
				fmt.Fprintf(os.Stderr, "dvmclient: security degraded, denied %s %s (domain %s): %v\n",
					perm, target, sid, err)
			},
		})
		defer rm.Close()
		vm.CheckAccess = rm.Manager
	}
	if *console != "" {
		rs, err := monitor.AttachHTTPWith(vm, *console, monitor.ClientInfo{
			User: *clientID, Arch: *arch, JVMVersion: "1.2-dvm",
		}, 64, monitor.SessionOptions{
			Timeout:          *fetchTimeout,
			BreakerThreshold: *breakerThreshold,
		})
		if err != nil {
			fatal(err)
		}
		defer rs.Close()
	}

	start := time.Now()
	thrown, err := vm.RunMain(*mainClass, flag.Args())
	elapsed := time.Since(start)
	if err != nil {
		fatal(err)
	}
	if thrown != nil {
		fmt.Fprintf(os.Stderr, "dvmclient: uncaught exception: %s\n", jvm.DescribeThrowable(thrown))
		os.Exit(1)
	}
	if *stats {
		s := vm.Stats
		fmt.Fprintf(os.Stderr,
			"dvmclient: %.3fs, %d instructions, %d invocations, %d classes (%d bytes), gc runs %d, link checks %d, security checks %d, audit events %d\n",
			elapsed.Seconds(), s.InstructionsExecuted, s.MethodInvocations,
			s.ClassesLoaded, s.BytesLoaded, s.GCRuns, s.LinkChecks, s.SecurityChecks, s.AuditEvents)
		if *monolithic {
			fmt.Fprintf(os.Stderr, "dvmclient: local verification %.3fs (%d checks)\n",
				verifyTime.Seconds(), census.Static())
		}
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "dvmclient: %v\n", err)
	os.Exit(1)
}
