// Command dvmasm assembles Jasmin-style assembly into classfiles and
// disassembles classfiles back into assembly (a text form that
// reassembles byte-compatibly for every construct this system emits).
//
// Usage:
//
//	dvmasm file.j                 # assemble -> file.class (alongside input)
//	dvmasm -o out.class file.j
//	dvmasm -d file.class          # disassemble -> stdout
//	dvmasm -d -o file.j file.class
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dvm/internal/asm"
	"dvm/internal/classfile"
)

func main() {
	dis := flag.Bool("d", false, "disassemble a .class file to assembly")
	out := flag.String("o", "", "output path (default: derived from input, or stdout for -d)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: dvmasm [-d] [-o out] file")
		os.Exit(2)
	}
	path := flag.Arg(0)
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	if *dis {
		cf, err := classfile.Parse(data)
		if err != nil {
			fatal(err)
		}
		text, err := asm.Print(cf)
		if err != nil {
			fatal(err)
		}
		if *out == "" {
			fmt.Print(text)
			return
		}
		if err := os.WriteFile(*out, []byte(text), 0o644); err != nil {
			fatal(err)
		}
		return
	}
	classBytes, err := asm.AssembleBytes(string(data))
	if err != nil {
		fatal(err)
	}
	dest := *out
	if dest == "" {
		dest = strings.TrimSuffix(path, ".j") + ".class"
	}
	if err := os.WriteFile(dest, classBytes, 0o644); err != nil {
		fatal(err)
	}
	cf, _ := classfile.Parse(classBytes)
	fmt.Printf("assembled %s -> %s (%s, %d bytes)\n", path, dest, cf.Name(), len(classBytes))
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "dvmasm: %v\n", err)
	os.Exit(1)
}
