// Command dvmconsole runs the DVM's remote administration console (§3.3):
// the central host that receives client handshakes and audit events and
// serves the stored trail, call graphs, and first-use profiles. Because
// the log lives here, a compromised client can stop generating events
// but cannot tamper with what was already recorded.
//
// Usage:
//
//	dvmconsole -addr :8643
//
// Endpoints: POST /handshake, POST/GET /events, GET /sessions,
// GET /callgraph?session=..., GET /firstuse?session=...
package main

import (
	"flag"
	"log"
	"net/http"

	"dvm/internal/monitor"
)

func main() {
	addr := flag.String("addr", ":8643", "HTTP listen address")
	flag.Parse()
	coll := monitor.NewCollector()
	log.Printf("dvmconsole: administration console on %s", *addr)
	log.Fatal(http.ListenAndServe(*addr, coll.Handler()))
}
