// Command dvmsecd runs the DVM's central security server (§3.2): the
// single logical point of control for the organization's policy.
// Enforcement managers on clients download their domain's rules from it
// and learn of policy changes through the long-poll invalidation channel.
//
// Usage:
//
//	dvmsecd -addr :8644 -policy policy.xml
//
// SIGHUP-free policy updates: POST a new policy to /update (or restart).
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"time"

	"dvm/internal/security"
)

func main() {
	addr := flag.String("addr", ":8644", "HTTP listen address")
	policyPath := flag.String("policy", "", "policy XML (required)")
	readHeaderTimeout := flag.Duration("read-header-timeout", 5*time.Second, "bound on reading a request's headers (slowloris guard)")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute, "keep-alive idle connection timeout")
	flag.Parse()
	if *policyPath == "" {
		fmt.Fprintln(os.Stderr, "usage: dvmsecd -policy policy.xml [-addr :8644]")
		os.Exit(2)
	}
	data, err := os.ReadFile(*policyPath)
	if err != nil {
		log.Fatalf("dvmsecd: %v", err)
	}
	pol, err := security.ParsePolicy(data)
	if err != nil {
		log.Fatalf("dvmsecd: %v", err)
	}
	vs := security.NewVersionedServer(security.NewServer(pol))

	mux := http.NewServeMux()
	mux.Handle("/", vs.Handler())
	mux.HandleFunc("/update", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		p2, err := security.ParsePolicy(body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		vs.UpdatePolicy(p2)
		fmt.Fprintf(w, "policy updated to version %d\n", vs.Version())
	})
	log.Printf("dvmsecd: security server on %s (policy %s, version %d)", *addr, *policyPath, vs.Version())
	// No WriteTimeout: the /poll invalidation channel legitimately holds
	// responses for the long-poll window. Header and idle timeouts still
	// bound what a stuck or malicious client can pin.
	srv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: *readHeaderTimeout,
		IdleTimeout:       *idleTimeout,
	}
	log.Fatal(srv.ListenAndServe())
}
