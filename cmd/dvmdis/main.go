// Command dvmdis disassembles Java classfiles (javap-style), including
// the DVM's quickened native-format extension opcodes.
//
// Usage:
//
//	dvmdis file.class...
package main

import (
	"flag"
	"fmt"
	"os"

	"dvm/internal/bytecode"
	"dvm/internal/classfile"
)

func main() {
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: dvmdis file.class...")
		os.Exit(2)
	}
	failed := 0
	for _, path := range flag.Args() {
		if err := dis(path); err != nil {
			fmt.Fprintf(os.Stderr, "dvmdis: %s: %v\n", path, err)
			failed++
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}

func dis(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	cf, err := classfile.Parse(data)
	if err != nil {
		return err
	}
	fmt.Printf("class %s extends %s", cf.Name(), cf.SuperName())
	if ifs := cf.InterfaceNames(); len(ifs) > 0 {
		fmt.Printf(" implements %v", ifs)
	}
	fmt.Printf("  (version %d.%d, %d pool entries, %d bytes)\n",
		cf.MajorVersion, cf.MinorVersion, cf.Pool.Size(), len(data))
	for _, f := range cf.Fields {
		fmt.Printf("  field %s %s (flags 0x%04x)\n", cf.MemberName(f), cf.MemberDescriptor(f), f.AccessFlags)
	}
	for _, m := range cf.Methods {
		fmt.Printf("  method %s%s (flags 0x%04x)\n", cf.MemberName(m), cf.MemberDescriptor(m), m.AccessFlags)
		code, err := cf.CodeOf(m)
		if err != nil {
			return err
		}
		if code == nil {
			continue
		}
		fmt.Printf("    max_stack=%d max_locals=%d code=%d bytes\n",
			code.MaxStack, code.MaxLocals, len(code.Bytecode))
		text, err := bytecode.Disassemble(code.Bytecode, cf.Pool)
		if err != nil {
			// The class may carry DVM native-format opcodes; retry with
			// the extended decoder via a plain listing.
			insts, err2 := bytecode.DecodeExt(code.Bytecode)
			if err2 != nil {
				return err
			}
			for _, in := range insts {
				fmt.Printf("    %5d: %s\n", in.PC, in.String())
			}
			continue
		}
		for _, line := range splitLines(text) {
			fmt.Printf("    %s\n", line)
		}
		for _, h := range code.Handlers {
			ct := "any"
			if h.CatchType != 0 {
				ct, _ = cf.Pool.ClassName(h.CatchType)
			}
			fmt.Printf("    handler [%d,%d) -> %d catch %s\n", h.StartPC, h.EndPC, h.HandlerPC, ct)
		}
	}
	for _, a := range cf.Attributes {
		fmt.Printf("  attribute %s (%d bytes)\n", cf.AttrName(a), len(a.Info))
	}
	return nil
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
