// Command dvmbench regenerates the paper's evaluation: every table and
// figure of §4 and §5, plus the ablations of the design choices called
// out in DESIGN.md.
//
// Usage:
//
//	dvmbench -all                   # everything, paper-scale workloads
//	dvmbench -fig 6 -scale 4        # one figure, workloads scaled down 4x
//	dvmbench -applets               # the §4.1.2 fetch-latency measurement
//	dvmbench -ablations
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"dvm/internal/eval"
	"dvm/internal/workload"
)

func main() {
	figs := flag.String("fig", "", "comma-separated figure numbers to run (5,6,7,8,9,10,11,12)")
	all := flag.Bool("all", false, "run every experiment")
	applets := flag.Bool("applets", false, "run the §4.1.2 applet-fetch measurement")
	ablations := flag.Bool("ablations", false, "run the design-choice ablations")
	overload := flag.Bool("overload", false, "run the open-loop overload sweep (admission control vs saturation multiples)")
	churn := flag.Bool("churn", false, "run the cluster churn scenario (kill + join under zipf load, R=1 vs R=2)")
	attestBench := flag.Bool("attest", false, "run the attestation quorum ablation (quorum 1 vs 2 vs 3 tax + Byzantine divergence detection)")
	prefetchBench := flag.Bool("prefetch", false, "run the predictive-prefetch warm-vs-cold walk (2-node cluster, piggybacked successors, waste ledger)")
	scale := flag.Int("scale", 1, "workload scale divisor (1 = paper scale)")
	pipelineWorkers := flag.Int("pipeline-workers", 0, "static-service per-method fan-out (0 = GOMAXPROCS, 1 = sequential)")
	benchPipeline := flag.String("bench-pipeline", "", "run the pipeline benchmark and write its JSON report to this path (e.g. BENCH_PIPELINE.json)")
	benchIters := flag.Int("bench-iters", 200, "iterations per pipeline benchmark measurement")
	benchBaseline := flag.String("bench-baseline", "", "recorded BENCH_PIPELINE.json to gate against; exits 1 on >20% regression in host-independent metrics")
	flag.Parse()

	if !*all && *figs == "" && !*applets && !*ablations && !*overload && !*churn && !*attestBench && !*prefetchBench && *benchPipeline == "" {
		fmt.Fprintln(os.Stderr, "usage: dvmbench (-all | -fig N[,N...] | -applets | -ablations | -overload | -churn | -attest | -prefetch | -bench-pipeline FILE) [-scale N] [-pipeline-workers N]")
		os.Exit(2)
	}
	want := map[string]bool{}
	if *all {
		for _, f := range []string{"5", "6", "7", "8", "9", "10", "11", "12"} {
			want[f] = true
		}
		*applets = true
		*ablations = true
		*overload = true
		*churn = true
		*attestBench = true
		*prefetchBench = true
	}
	for _, f := range strings.Split(*figs, ",") {
		if f != "" {
			want[f] = true
		}
	}
	specs := eval.ScaleSpecs(workload.Benchmarks(), *scale)
	appletSpecs := eval.ScaleSpecs(workload.Applets(), *scale)

	run := func(name string, fn func() (string, error)) {
		start := time.Now()
		text, err := fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "dvmbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("==== %s (%.1fs) ====\n%s\n", name, time.Since(start).Seconds(), text)
	}

	if want["5"] {
		run("Figure 5: benchmark applications", func() (string, error) {
			_, text, err := eval.Fig5(specs)
			return text, err
		})
	}
	if want["6"] {
		run("Figure 6: end-to-end performance (monolithic vs DVM)", func() (string, error) {
			_, text, err := eval.Fig6(specs)
			return text, err
		})
	}
	if want["7"] {
		run("Figure 7: client-side verification overhead", func() (string, error) {
			_, text, err := eval.Fig7(specs)
			return text, err
		})
	}
	if want["8"] {
		run("Figure 8: static vs dynamic verifier checks", func() (string, error) {
			_, text, err := eval.Fig8(specs)
			return text, err
		})
	}
	if want["9"] {
		run("Figure 9: security microbenchmarks", func() (string, error) {
			_, text, err := eval.Fig9(2000)
			return text, err
		})
	}
	if want["10"] {
		run("Figure 10: proxy throughput vs clients (worst case, cache off)", func() (string, error) {
			counts := []int{1, 10, 25, 50, 100, 150, 200, 250, 300}
			if *scale > 1 {
				counts = []int{1, 10, 25, 50}
			}
			cfg := eval.DefaultFig10Config()
			cfg.PipelineWorkers = *pipelineWorkers
			_, text, err := eval.Fig10(counts, cfg)
			return text, err
		})
	}
	if *benchPipeline != "" {
		run("Pipeline benchmark (parse/encode codec + parallel static service)", func() (string, error) {
			rep, text, err := eval.PipelineBench(*benchIters, nil)
			if err != nil {
				return "", err
			}
			data, err := json.MarshalIndent(rep, "", "  ")
			if err != nil {
				return "", err
			}
			// Gate before writing, so -bench-baseline FILE -bench-pipeline FILE
			// compares against the previous recording when re-recording in place.
			if *benchBaseline != "" {
				raw, err := os.ReadFile(*benchBaseline)
				if err != nil {
					return "", err
				}
				var base eval.PipelineBenchReport
				if err := json.Unmarshal(raw, &base); err != nil {
					return "", fmt.Errorf("%s: %v", *benchBaseline, err)
				}
				if regs := eval.ComparePipelineBench(&base, rep, 0.2); len(regs) > 0 {
					return "", fmt.Errorf("benchmark regression vs %s:\n  %s", *benchBaseline, strings.Join(regs, "\n  "))
				}
				text += "\nno regression vs " + *benchBaseline
			}
			if err := os.WriteFile(*benchPipeline, append(data, '\n'), 0o644); err != nil {
				return "", err
			}
			return text + "\nreport written to " + *benchPipeline, nil
		})
	}
	if *overload {
		run("Overload: open-loop load sweep, admission control on", func() (string, error) {
			cfg := eval.DefaultOverloadConfig()
			cfg.PipelineWorkers = *pipelineWorkers
			if *scale > 1 {
				cfg.Clients /= *scale
				cfg.Duration /= time.Duration(*scale)
			}
			_, text, err := eval.Overload(cfg, 0)
			return text, err
		})
	}
	if *churn {
		run("Cluster churn: kill + join under load, replication comparison", func() (string, error) {
			cfg := eval.ChurnConfig{}
			if *scale > 1 {
				cfg.Clients = 16 / *scale
				cfg.Phase = 1200 * time.Millisecond / time.Duration(*scale)
			}
			_, text, err := eval.ClusterChurn(cfg, nil)
			return text, err
		})
	}
	if *attestBench {
		run("Attestation: quorum ablation + Byzantine divergence detection", func() (string, error) {
			cfg := eval.AttestBenchConfig{}
			if *scale > 1 {
				cfg.Rounds = 300 / *scale
				cfg.Classes = 64 / *scale
			}
			_, text, err := eval.AttestBench(cfg)
			return text, err
		})
	}
	if *prefetchBench {
		run("Prefetch: predictive piggyback, warm-vs-cold 2-node walk", func() (string, error) {
			classes, kb := 128, 8
			if *scale > 1 {
				classes = 128 / *scale
				if classes < 8 {
					classes = 8
				}
			}
			_, text, err := eval.PrefetchBench(classes, kb, 0)
			return text, err
		})
	}
	if *applets {
		run("§4.1.2: applet fetch overhead", func() (string, error) {
			n := 100
			if *scale > 1 {
				n = 100 / *scale
			}
			_, text, err := eval.AppletFetch(n)
			return text, err
		})
	}
	if want["11"] {
		run("Figure 11: startup time vs bandwidth", func() (string, error) {
			_, text, err := eval.Fig11(appletSpecs, eval.StandardBandwidthsKBps)
			return text, err
		})
	}
	if want["12"] {
		run("Figure 12: startup improvement with repartitioning", func() (string, error) {
			_, text, err := eval.Fig12(appletSpecs, eval.StandardBandwidthsKBps)
			return text, err
		})
	}
	if *ablations {
		run("Ablation: naive per-check RPC distribution", func() (string, error) {
			_, text, err := eval.AblationRPC(specs[0], 2*time.Millisecond)
			return text, err
		})
		run("Ablation: lazy vs eager link checks", func() (string, error) {
			_, text, err := eval.AblationEager()
			return text, err
		})
		run("Ablation: enforcement-manager cache", func() (string, error) {
			_, text, err := eval.AblationSecurityCache(2000, 200*time.Microsecond)
			return text, err
		})
		run("Ablation: reflective vs attribute RTVerifier (§4.3)", func() (string, error) {
			_, text, err := eval.AblationReflection(specs[0])
			return text, err
		})
		run("Ablation: replicated proxies (§2)", func() (string, error) {
			clients := 300
			reps := []int{1, 2, 4, 8}
			if *scale > 1 {
				clients = 60
				reps = []int{1, 2}
			}
			_, text, err := eval.AblationReplication(clients, reps, eval.DefaultFig10Config())
			return text, err
		})
	}
}
