package classfile_test

import (
	"bytes"
	"fmt"
	"sort"
	"testing"

	"dvm/internal/classfile"
	"dvm/internal/workload"
)

// TestRoundTripCorpus checks the codec's core contract over the whole
// workload corpus: Parse → Encode → Parse yields a structurally
// identical class, and re-encoding that class reproduces the same bytes
// (Encode is a fixed point after one canonicalization pass). The specs
// are scaled down so the corpus still covers every workload kind
// without dominating test time.
func TestRoundTripCorpus(t *testing.T) {
	specs := append(workload.Benchmarks(), workload.Applets()...)
	for _, spec := range specs {
		spec := spec
		if spec.Classes > 6 {
			spec.Classes = 6
		}
		if spec.TargetBytes > 48*1024 {
			spec.TargetBytes = 48 * 1024
		}
		t.Run(spec.Name, func(t *testing.T) {
			app, err := workload.Generate(spec)
			if err != nil {
				t.Fatalf("generate: %v", err)
			}
			names := make([]string, 0, len(app.Classes))
			for name := range app.Classes {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				data := app.Classes[name]
				cf1, err := classfile.Parse(data)
				if err != nil {
					t.Fatalf("%s: parse original: %v", name, err)
				}
				enc1, err := cf1.Encode()
				if err != nil {
					t.Fatalf("%s: encode: %v", name, err)
				}
				cf2, err := classfile.Parse(enc1)
				if err != nil {
					t.Fatalf("%s: reparse encoded form: %v", name, err)
				}
				if d := structuralDiff(cf1, cf2); d != "" {
					t.Fatalf("%s: reparse differs: %s", name, d)
				}
				enc2, err := cf2.Encode()
				if err != nil {
					t.Fatalf("%s: re-encode: %v", name, err)
				}
				if !bytes.Equal(enc1, enc2) {
					t.Fatalf("%s: Encode is not byte-stable: %d vs %d bytes", name, len(enc1), len(enc2))
				}
			}
		})
	}
}

// corpusClass returns one representative generated class.
func corpusClass(t *testing.T) []byte {
	t.Helper()
	spec := workload.Benchmarks()[0]
	spec.Classes = 2
	spec.TargetBytes = 24 * 1024
	app, err := workload.Generate(spec)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	names := make([]string, 0, len(app.Classes))
	for name := range app.Classes {
		names = append(names, name)
	}
	sort.Strings(names)
	return app.Classes[names[0]]
}

// TestNoTouchRoundTrip is the lazy codec's no-touch leg: parsing a class
// and re-encoding it without touching anything must (a) reproduce the
// input byte-for-byte via the splice path and (b) decode no Utf8 strings
// and no attribute payloads along the way, observed via the package's
// codec counters.
func TestNoTouchRoundTrip(t *testing.T) {
	data := corpusClass(t)
	before := classfile.CodecStats()
	cf, err := classfile.Parse(data)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	enc, err := cf.Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	after := classfile.CodecStats()
	if !bytes.Equal(enc, data) {
		t.Fatalf("no-touch re-encode is not byte-identical: %d vs %d bytes", len(enc), len(data))
	}
	if d := after.Utf8Decoded - before.Utf8Decoded; d != 0 {
		t.Errorf("no-touch cycle decoded %d Utf8 strings, want 0", d)
	}
	if d := after.AttrsDecoded - before.AttrsDecoded; d != 0 {
		t.Errorf("no-touch cycle decoded %d attribute payloads, want 0", d)
	}
	if d := after.SpliceEncodes - before.SpliceEncodes; d != 1 {
		t.Errorf("no-touch cycle used %d splice encodes, want 1", d)
	}
	if after.Utf8Seen == before.Utf8Seen {
		t.Error("parse did not record any Utf8 constants as seen")
	}
}

// TestPartialTouchRoundTrip is the partial-touch leg: dirtying exactly
// one method re-encodes only that member while everything else splices,
// and the re-encoded member reproduces the same bytes the splice would
// have (SetCode with unchanged code is a byte-level no-op).
func TestPartialTouchRoundTrip(t *testing.T) {
	data := corpusClass(t)
	cf, err := classfile.Parse(data)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	var touched *classfile.Member
	var code *classfile.Code
	for _, m := range cf.Methods {
		c, err := cf.CodeOf(m)
		if err != nil {
			t.Fatalf("code of %s: %v", cf.MemberName(m), err)
		}
		if c != nil {
			touched, code = m, c
			break
		}
	}
	if touched == nil {
		t.Fatal("corpus class has no method with code")
	}
	before := classfile.CodecStats()
	if err := cf.SetCode(touched, code); err != nil {
		t.Fatalf("set code: %v", err)
	}
	if !touched.Dirty() {
		t.Fatal("SetCode did not mark the member dirty")
	}
	for _, m := range cf.Methods {
		if m != touched && m.Dirty() {
			t.Fatalf("untouched method %s marked dirty", cf.MemberName(m))
		}
	}
	enc, err := cf.Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	after := classfile.CodecStats()
	// The generator emits canonical encodings, so re-serializing the one
	// dirty member must reproduce the original bytes exactly: splice and
	// re-encode are indistinguishable in the output.
	if !bytes.Equal(enc, data) {
		t.Fatalf("partial-touch re-encode diverged from original bytes")
	}
	if d := after.SpliceEncodes - before.SpliceEncodes; d != 1 {
		t.Errorf("partial-touch encode took the full path (%d splices)", d)
	}

	// A real modification must flow through: bump max_stack and check the
	// change round-trips while the class otherwise stays intact.
	code.MaxStack++
	if err := cf.SetCode(touched, code); err != nil {
		t.Fatalf("set modified code: %v", err)
	}
	enc2, err := cf.Encode()
	if err != nil {
		t.Fatalf("encode modified: %v", err)
	}
	if bytes.Equal(enc2, data) {
		t.Fatal("modified class re-encoded to unmodified bytes")
	}
	cf2, err := classfile.Parse(enc2)
	if err != nil {
		t.Fatalf("reparse modified: %v", err)
	}
	m2 := cf2.FindMethod(cf.MemberName(touched), cf.MemberDescriptor(touched))
	if m2 == nil {
		t.Fatal("touched method lost in round trip")
	}
	c2, err := cf2.CodeOf(m2)
	if err != nil || c2 == nil {
		t.Fatalf("code of reparsed method: %v", err)
	}
	if c2.MaxStack != code.MaxStack {
		t.Fatalf("max_stack %d did not round-trip (got %d)", code.MaxStack, c2.MaxStack)
	}
}

// TestEncodeOutputDoesNotAliasInput is the zero-copy aliasing guard: the
// encoder's output must be a fresh buffer, never sharing memory with the
// parse input, because cached artifacts outlive request buffers. The
// input is poisoned after encoding; the output must not change.
func TestEncodeOutputDoesNotAliasInput(t *testing.T) {
	pristine := corpusClass(t)
	input := append([]byte(nil), pristine...)
	cf, err := classfile.Parse(input)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	enc, err := cf.Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	for i := range input {
		input[i] = 0xFF
	}
	if !bytes.Equal(enc, pristine) {
		t.Fatal("encoded output changed when the input buffer was poisoned: output aliases input")
	}
	if _, err := classfile.Parse(enc); err != nil {
		t.Fatalf("poisoning the input corrupted the encoded output: %v", err)
	}
}

// structuralDiff compares two classfiles field by field through the
// resolving accessors (so it is insensitive to pool index renumbering)
// and returns a description of the first mismatch, or "".
func structuralDiff(a, b *classfile.ClassFile) string {
	switch {
	case a.MinorVersion != b.MinorVersion || a.MajorVersion != b.MajorVersion:
		return fmt.Sprintf("version %d.%d vs %d.%d", a.MajorVersion, a.MinorVersion, b.MajorVersion, b.MinorVersion)
	case a.AccessFlags != b.AccessFlags:
		return fmt.Sprintf("access flags %#x vs %#x", a.AccessFlags, b.AccessFlags)
	case a.Name() != b.Name():
		return fmt.Sprintf("name %q vs %q", a.Name(), b.Name())
	case a.SuperName() != b.SuperName():
		return fmt.Sprintf("super %q vs %q", a.SuperName(), b.SuperName())
	case fmt.Sprint(a.InterfaceNames()) != fmt.Sprint(b.InterfaceNames()):
		return fmt.Sprintf("interfaces %v vs %v", a.InterfaceNames(), b.InterfaceNames())
	case a.Pool.Size() != b.Pool.Size():
		return fmt.Sprintf("pool size %d vs %d", a.Pool.Size(), b.Pool.Size())
	}
	if d := memberDiff("field", a, a.Fields, b, b.Fields); d != "" {
		return d
	}
	if d := memberDiff("method", a, a.Methods, b, b.Methods); d != "" {
		return d
	}
	return attrDiff("class", a, a.Attributes, b, b.Attributes)
}

func memberDiff(kind string, a *classfile.ClassFile, as []*classfile.Member, b *classfile.ClassFile, bs []*classfile.Member) string {
	if len(as) != len(bs) {
		return fmt.Sprintf("%s count %d vs %d", kind, len(as), len(bs))
	}
	for i := range as {
		ma, mb := as[i], bs[i]
		if ma.AccessFlags != mb.AccessFlags ||
			a.MemberName(ma) != b.MemberName(mb) ||
			a.MemberDescriptor(ma) != b.MemberDescriptor(mb) {
			return fmt.Sprintf("%s %d: %s%s flags %#x vs %s%s flags %#x", kind, i,
				a.MemberName(ma), a.MemberDescriptor(ma), ma.AccessFlags,
				b.MemberName(mb), b.MemberDescriptor(mb), mb.AccessFlags)
		}
		where := fmt.Sprintf("%s %s", kind, a.MemberName(ma))
		if d := attrDiff(where, a, ma.Attributes, b, mb.Attributes); d != "" {
			return d
		}
	}
	return ""
}

func attrDiff(where string, a *classfile.ClassFile, as []*classfile.Attribute, b *classfile.ClassFile, bs []*classfile.Attribute) string {
	if len(as) != len(bs) {
		return fmt.Sprintf("%s: attribute count %d vs %d", where, len(as), len(bs))
	}
	for i := range as {
		if a.AttrName(as[i]) != b.AttrName(bs[i]) {
			return fmt.Sprintf("%s: attribute %d name %q vs %q", where, i, a.AttrName(as[i]), b.AttrName(bs[i]))
		}
		// Attribute payloads embed pool indices, so compare them only
		// when the pools are index-identical — which they are here,
		// since Encode writes the pool in entry order.
		if !bytes.Equal(as[i].Info, bs[i].Info) {
			return fmt.Sprintf("%s: attribute %q payload differs (%d vs %d bytes)", where, a.AttrName(as[i]), len(as[i].Info), len(bs[i].Info))
		}
	}
	return ""
}
