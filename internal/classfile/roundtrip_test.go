package classfile_test

import (
	"bytes"
	"fmt"
	"sort"
	"testing"

	"dvm/internal/classfile"
	"dvm/internal/workload"
)

// TestRoundTripCorpus checks the codec's core contract over the whole
// workload corpus: Parse → Encode → Parse yields a structurally
// identical class, and re-encoding that class reproduces the same bytes
// (Encode is a fixed point after one canonicalization pass). The specs
// are scaled down so the corpus still covers every workload kind
// without dominating test time.
func TestRoundTripCorpus(t *testing.T) {
	specs := append(workload.Benchmarks(), workload.Applets()...)
	for _, spec := range specs {
		spec := spec
		if spec.Classes > 6 {
			spec.Classes = 6
		}
		if spec.TargetBytes > 48*1024 {
			spec.TargetBytes = 48 * 1024
		}
		t.Run(spec.Name, func(t *testing.T) {
			app, err := workload.Generate(spec)
			if err != nil {
				t.Fatalf("generate: %v", err)
			}
			names := make([]string, 0, len(app.Classes))
			for name := range app.Classes {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				data := app.Classes[name]
				cf1, err := classfile.Parse(data)
				if err != nil {
					t.Fatalf("%s: parse original: %v", name, err)
				}
				enc1, err := cf1.Encode()
				if err != nil {
					t.Fatalf("%s: encode: %v", name, err)
				}
				cf2, err := classfile.Parse(enc1)
				if err != nil {
					t.Fatalf("%s: reparse encoded form: %v", name, err)
				}
				if d := structuralDiff(cf1, cf2); d != "" {
					t.Fatalf("%s: reparse differs: %s", name, d)
				}
				enc2, err := cf2.Encode()
				if err != nil {
					t.Fatalf("%s: re-encode: %v", name, err)
				}
				if !bytes.Equal(enc1, enc2) {
					t.Fatalf("%s: Encode is not byte-stable: %d vs %d bytes", name, len(enc1), len(enc2))
				}
			}
		})
	}
}

// structuralDiff compares two classfiles field by field through the
// resolving accessors (so it is insensitive to pool index renumbering)
// and returns a description of the first mismatch, or "".
func structuralDiff(a, b *classfile.ClassFile) string {
	switch {
	case a.MinorVersion != b.MinorVersion || a.MajorVersion != b.MajorVersion:
		return fmt.Sprintf("version %d.%d vs %d.%d", a.MajorVersion, a.MinorVersion, b.MajorVersion, b.MinorVersion)
	case a.AccessFlags != b.AccessFlags:
		return fmt.Sprintf("access flags %#x vs %#x", a.AccessFlags, b.AccessFlags)
	case a.Name() != b.Name():
		return fmt.Sprintf("name %q vs %q", a.Name(), b.Name())
	case a.SuperName() != b.SuperName():
		return fmt.Sprintf("super %q vs %q", a.SuperName(), b.SuperName())
	case fmt.Sprint(a.InterfaceNames()) != fmt.Sprint(b.InterfaceNames()):
		return fmt.Sprintf("interfaces %v vs %v", a.InterfaceNames(), b.InterfaceNames())
	case a.Pool.Size() != b.Pool.Size():
		return fmt.Sprintf("pool size %d vs %d", a.Pool.Size(), b.Pool.Size())
	}
	if d := memberDiff("field", a, a.Fields, b, b.Fields); d != "" {
		return d
	}
	if d := memberDiff("method", a, a.Methods, b, b.Methods); d != "" {
		return d
	}
	return attrDiff("class", a, a.Attributes, b, b.Attributes)
}

func memberDiff(kind string, a *classfile.ClassFile, as []*classfile.Member, b *classfile.ClassFile, bs []*classfile.Member) string {
	if len(as) != len(bs) {
		return fmt.Sprintf("%s count %d vs %d", kind, len(as), len(bs))
	}
	for i := range as {
		ma, mb := as[i], bs[i]
		if ma.AccessFlags != mb.AccessFlags ||
			a.MemberName(ma) != b.MemberName(mb) ||
			a.MemberDescriptor(ma) != b.MemberDescriptor(mb) {
			return fmt.Sprintf("%s %d: %s%s flags %#x vs %s%s flags %#x", kind, i,
				a.MemberName(ma), a.MemberDescriptor(ma), ma.AccessFlags,
				b.MemberName(mb), b.MemberDescriptor(mb), mb.AccessFlags)
		}
		where := fmt.Sprintf("%s %s", kind, a.MemberName(ma))
		if d := attrDiff(where, a, ma.Attributes, b, mb.Attributes); d != "" {
			return d
		}
	}
	return ""
}

func attrDiff(where string, a *classfile.ClassFile, as []*classfile.Attribute, b *classfile.ClassFile, bs []*classfile.Attribute) string {
	if len(as) != len(bs) {
		return fmt.Sprintf("%s: attribute count %d vs %d", where, len(as), len(bs))
	}
	for i := range as {
		if a.AttrName(as[i]) != b.AttrName(bs[i]) {
			return fmt.Sprintf("%s: attribute %d name %q vs %q", where, i, a.AttrName(as[i]), b.AttrName(bs[i]))
		}
		// Attribute payloads embed pool indices, so compare them only
		// when the pools are index-identical — which they are here,
		// since Encode writes the pool in entry order.
		if !bytes.Equal(as[i].Info, bs[i].Info) {
			return fmt.Sprintf("%s: attribute %q payload differs (%d vs %d bytes)", where, a.AttrName(as[i]), len(as[i].Info), len(bs[i].Info))
		}
	}
	return ""
}
