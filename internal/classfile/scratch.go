package classfile

import "sync"

// The proxy parses and re-encodes a classfile on every cache miss; the
// constant pool's entry slice and interning map are the two largest
// recurring allocations on that path. A sync.Pool recycles them between
// Parse/Encode cycles. Only the containers are reused — the strings they
// referenced are immutable Go strings that remain valid in whatever
// results (verifier output, audit records) still hold them.
var poolScratch = sync.Pool{New: func() any { return new(ConstPool) }}

// newParsePool returns a ConstPool ready for parsing, reusing recycled
// scratch when available. count is the declared constant_pool_count,
// used as a size hint for the entry slice and interning map.
func newParsePool(count int) *ConstPool {
	p := poolScratch.Get().(*ConstPool)
	if cap(p.entries) < count {
		p.entries = make([]Constant, 1, count)
	} else {
		p.entries = append(p.entries[:0], Constant{})
	}
	if p.index == nil {
		p.index = make(map[poolKey]uint16, count)
	}
	p.indexed = false
	p.frozen = false
	return p
}

// Release returns the class's constant-pool scratch for reuse by later
// parses. The caller promises that nothing retains a reference to the
// ClassFile, its pool, or its Constants; retained strings are fine (they
// are immutable and are not recycled). The rewrite pipeline calls this
// after encoding a transformed class.
func (cf *ClassFile) Release() {
	p := cf.Pool
	if p == nil {
		return
	}
	cf.Pool = nil
	cf.parsedPool = nil
	cf.raw = nil
	// Drop references held by the recycled containers so the old class's
	// strings, entries, and input buffer can be collected.
	clear(p.entries)
	p.entries = p.entries[:0]
	clear(p.index)
	p.indexed = false
	p.frozen = false
	poolScratch.Put(p)
}
