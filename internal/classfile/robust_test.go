package classfile

import (
	"math/rand"
	"testing"
)

// The proxy parses classfiles fetched from the open Internet, so the
// parser must never panic on hostile input: it either errors or returns
// a structure that re-encodes.

func TestParseNeverPanicsOnMutations(t *testing.T) {
	base, err := buildMinimalRobust(t).Encode()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4242))
	for trial := 0; trial < 5000; trial++ {
		data := append([]byte(nil), base...)
		// 1-4 random byte mutations.
		for k := 0; k < 1+rng.Intn(4); k++ {
			data[rng.Intn(len(data))] = byte(rng.Intn(256))
		}
		cf, err := Parse(data)
		if err != nil {
			continue // rejected, fine
		}
		// Accepted: it must re-encode without panicking.
		if _, err := cf.Encode(); err != nil {
			continue
		}
	}
}

func TestParseNeverPanicsOnTruncations(t *testing.T) {
	base, err := buildMinimalRobust(t).Encode()
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n <= len(base); n++ {
		_, _ = Parse(base[:n])
	}
}

func TestParseNeverPanicsOnRandomBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 2000; trial++ {
		n := rng.Intn(512)
		data := make([]byte, n)
		rng.Read(data)
		// Half the trials get a valid magic so parsing goes deeper.
		if n >= 4 && trial%2 == 0 {
			data[0], data[1], data[2], data[3] = 0xCA, 0xFE, 0xBA, 0xBE
		}
		_, _ = Parse(data)
	}
}

func buildMinimalRobust(t *testing.T) *ClassFile {
	t.Helper()
	pool := NewConstPool()
	cf := &ClassFile{
		MinorVersion: 3, MajorVersion: 45,
		Pool:        pool,
		AccessFlags: AccPublic | AccSuper,
	}
	cf.ThisClass = pool.AddClass("rob/T")
	cf.SuperClass = pool.AddClass("java/lang/Object")
	pool.AddString("payload string")
	pool.AddLong(1 << 40)
	pool.AddMethodref("rob/T", "f", "(I)I")
	m := &Member{
		AccessFlags:     AccPublic | AccStatic,
		NameIndex:       pool.AddUtf8("f"),
		DescriptorIndex: pool.AddUtf8("(I)I"),
	}
	code := &Code{MaxStack: 1, MaxLocals: 1, Bytecode: []byte{0x1a, 0xac}}
	if err := cf.SetCode(m, code); err != nil {
		t.Fatal(err)
	}
	cf.Methods = append(cf.Methods, m)
	return cf
}
