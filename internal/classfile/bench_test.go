package classfile

import "testing"

// BenchmarkParse measures classfile decode throughput.
func BenchmarkParse(b *testing.B) {
	cf := buildBenchClass(b)
	data, err := cf.Encode()
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParseReleased measures the pipeline's steady state: each
// parsed class is Released after use so pool scratch recycles through
// the sync.Pool instead of hitting the allocator.
func BenchmarkParseReleased(b *testing.B) {
	cf := buildBenchClass(b)
	data, err := cf.Encode()
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		parsed, err := Parse(data)
		if err != nil {
			b.Fatal(err)
		}
		parsed.Release()
	}
}

// BenchmarkEncode measures classfile serialization throughput.
func BenchmarkEncode(b *testing.B) {
	cf := buildBenchClass(b)
	data, err := cf.Encode()
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cf.Encode(); err != nil {
			b.Fatal(err)
		}
	}
}

// buildBenchClass constructs a mid-sized class: a realistic pool and a
// few dozen members.
func buildBenchClass(b *testing.B) *ClassFile {
	b.Helper()
	pool := NewConstPool()
	cf := &ClassFile{
		MinorVersion: 3, MajorVersion: 45,
		Pool:        pool,
		AccessFlags: AccPublic | AccSuper,
	}
	cf.ThisClass = pool.AddClass("bench/Big")
	cf.SuperClass = pool.AddClass("java/lang/Object")
	for i := 0; i < 64; i++ {
		pool.AddString(repeat("resource text ", i%7+1))
		pool.AddMethodref("bench/Big", name("m", i), "(I)I")
	}
	for i := 0; i < 32; i++ {
		cf.Fields = append(cf.Fields, &Member{
			AccessFlags:     AccPrivate,
			NameIndex:       pool.AddUtf8(name("f", i)),
			DescriptorIndex: pool.AddUtf8("I"),
		})
		m := &Member{
			AccessFlags:     AccPublic | AccStatic,
			NameIndex:       pool.AddUtf8(name("m", i)),
			DescriptorIndex: pool.AddUtf8("(I)I"),
		}
		code := &Code{MaxStack: 2, MaxLocals: 2, Bytecode: []byte{0x1a, 0xac}} // iload_0; ireturn
		if err := cf.SetCode(m, code); err != nil {
			b.Fatal(err)
		}
		cf.Methods = append(cf.Methods, m)
	}
	return cf
}

func name(prefix string, i int) string {
	return prefix + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
}

func repeat(s string, n int) string {
	out := ""
	for i := 0; i < n; i++ {
		out += s
	}
	return out
}
