package classfile

import (
	"bytes"
	"testing"
	"testing/quick"
)

// buildMinimal constructs a small classfile by hand (no classgen, to keep
// the dependency direction test-clean) with one field, one method, and a
// few constants of every tag.
func buildMinimal(t *testing.T) *ClassFile {
	t.Helper()
	pool := NewConstPool()
	cf := &ClassFile{
		MinorVersion: 3,
		MajorVersion: 45,
		Pool:         pool,
		AccessFlags:  AccPublic | AccSuper,
	}
	cf.ThisClass = pool.AddClass("demo/Hello")
	cf.SuperClass = pool.AddClass("java/lang/Object")
	cf.Interfaces = append(cf.Interfaces, pool.AddClass("java/lang/Runnable"))
	pool.AddInteger(42)
	pool.AddFloat(3.5)
	pool.AddLong(1 << 40)
	pool.AddDouble(2.25)
	pool.AddString("hello world")
	pool.AddFieldref("demo/Hello", "count", "I")
	pool.AddMethodref("java/io/PrintStream", "println", "(Ljava/lang/String;)V")
	pool.AddInterfaceMethodref("java/lang/Runnable", "run", "()V")

	cf.Fields = append(cf.Fields, &Member{
		AccessFlags:     AccPrivate,
		NameIndex:       pool.AddUtf8("count"),
		DescriptorIndex: pool.AddUtf8("I"),
	})
	code := &Code{
		MaxStack:  1,
		MaxLocals: 1,
		Bytecode:  []byte{0xb1}, // return
		Handlers: []ExceptionHandler{
			{StartPC: 0, EndPC: 1, HandlerPC: 0, CatchType: pool.AddClass("java/lang/Exception")},
		},
	}
	m := &Member{
		AccessFlags:     AccPublic,
		NameIndex:       pool.AddUtf8("run"),
		DescriptorIndex: pool.AddUtf8("()V"),
	}
	if err := cf.SetCode(m, code); err != nil {
		t.Fatalf("SetCode: %v", err)
	}
	cf.Methods = append(cf.Methods, m)
	cf.AddAttribute(AttrSourceFile, []byte{0, 0})
	return cf
}

func TestEncodeParseRoundTrip(t *testing.T) {
	cf := buildMinimal(t)
	data, err := cf.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	parsed, err := Parse(data)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	data2, err := parsed.Encode()
	if err != nil {
		t.Fatalf("re-Encode: %v", err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatalf("round trip not byte-identical: %d vs %d bytes", len(data), len(data2))
	}
	if got := parsed.Name(); got != "demo/Hello" {
		t.Errorf("Name = %q, want demo/Hello", got)
	}
	if got := parsed.SuperName(); got != "java/lang/Object" {
		t.Errorf("SuperName = %q", got)
	}
	ifs := parsed.InterfaceNames()
	if len(ifs) != 1 || ifs[0] != "java/lang/Runnable" {
		t.Errorf("InterfaceNames = %v", ifs)
	}
	if parsed.FindMethod("run", "()V") == nil {
		t.Error("FindMethod(run) = nil")
	}
	if parsed.FindMethod("walk", "()V") != nil {
		t.Error("FindMethod(walk) should be nil")
	}
	if parsed.FindField("count", "I") == nil {
		t.Error("FindField(count) = nil")
	}
}

func TestParsedPoolInterningReusesEntries(t *testing.T) {
	cf := buildMinimal(t)
	data, err := cf.Encode()
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	before := parsed.Pool.Size()
	// All of these already exist; interning must not grow the pool.
	parsed.Pool.AddClass("demo/Hello")
	parsed.Pool.AddUtf8("count")
	parsed.Pool.AddMethodref("java/io/PrintStream", "println", "(Ljava/lang/String;)V")
	parsed.Pool.AddInteger(42)
	parsed.Pool.AddLong(1 << 40)
	if parsed.Pool.Size() != before {
		t.Errorf("pool grew from %d to %d on re-interning", before, parsed.Pool.Size())
	}
	// A new entry must grow it.
	parsed.Pool.AddUtf8("definitely-new")
	if parsed.Pool.Size() != before+1 {
		t.Errorf("pool size = %d after new utf8, want %d", parsed.Pool.Size(), before+1)
	}
}

func TestCodeAttributeRoundTrip(t *testing.T) {
	cf := buildMinimal(t)
	m := cf.FindMethod("run", "()V")
	code, err := cf.CodeOf(m)
	if err != nil {
		t.Fatalf("CodeOf: %v", err)
	}
	if code == nil {
		t.Fatal("CodeOf = nil")
	}
	if code.MaxStack != 1 || code.MaxLocals != 1 {
		t.Errorf("MaxStack/MaxLocals = %d/%d", code.MaxStack, code.MaxLocals)
	}
	if len(code.Handlers) != 1 || code.Handlers[0].EndPC != 1 {
		t.Errorf("Handlers = %+v", code.Handlers)
	}
	// Mutate and re-install.
	code.MaxStack = 7
	if err := cf.SetCode(m, code); err != nil {
		t.Fatal(err)
	}
	again, err := cf.CodeOf(m)
	if err != nil {
		t.Fatal(err)
	}
	if again.MaxStack != 7 {
		t.Errorf("MaxStack after SetCode = %d, want 7", again.MaxStack)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	good, err := buildMinimal(t).Encode()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"empty", func(b []byte) []byte { return nil }},
		{"bad magic", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[0] = 0xDE
			return c
		}},
		{"truncated mid-pool", func(b []byte) []byte { return b[:12] }},
		{"truncated tail", func(b []byte) []byte { return b[:len(b)-3] }},
		{"trailing garbage", func(b []byte) []byte { return append(append([]byte(nil), b...), 1, 2, 3) }},
		{"zero pool count", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[8], c[9] = 0, 0
			return c
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Parse(tc.mutate(good)); err == nil {
				t.Errorf("Parse accepted %s input", tc.name)
			}
		})
	}
}

func TestParseRejectsBadConstantTag(t *testing.T) {
	// Hand-build: magic, versions, pool count 2, tag 99.
	raw := []byte{
		0xCA, 0xFE, 0xBA, 0xBE,
		0, 3, 0, 45,
		0, 2,
		99,
	}
	if _, err := Parse(raw); err == nil {
		t.Fatal("accepted unknown constant tag")
	}
}

func TestPoolAccessorTagChecks(t *testing.T) {
	p := NewConstPool()
	u := p.AddUtf8("x")
	cls := p.AddClass("a/B")
	if _, err := p.Utf8(cls); err == nil {
		t.Error("Utf8 on Class entry should fail")
	}
	if _, err := p.ClassName(u); err == nil {
		t.Error("ClassName on Utf8 entry should fail")
	}
	if _, err := p.Entry(0); err == nil {
		t.Error("Entry(0) should fail")
	}
	if _, err := p.Entry(9999); err == nil {
		t.Error("Entry(out of range) should fail")
	}
	l := p.AddLong(5)
	if p.Valid(l + 1) {
		t.Error("second slot of Long must be invalid")
	}
	ref := p.AddMethodref("a/B", "m", "()V")
	r, err := p.Ref(ref)
	if err != nil {
		t.Fatal(err)
	}
	if r.Class != "a/B" || r.Name != "m" || r.Desc != "()V" {
		t.Errorf("Ref = %+v", r)
	}
	if _, err := p.Ref(cls); err == nil {
		t.Error("Ref on Class entry should fail")
	}
}

func TestModifiedUTF8RoundTrip(t *testing.T) {
	cases := []string{
		"",
		"hello",
		"nul\x00inside",
		"café",
		"ࠀ three-byte",
		"emoji \U0001F600 pair",
		"日本語",
	}
	for _, s := range cases {
		enc := appendModifiedUTF8(nil, s)
		for _, b := range enc {
			if b == 0 {
				t.Errorf("%q: encoded form contains a zero byte", s)
			}
		}
		dec, ok := decodeModifiedUTF8(enc)
		if !ok || dec != s {
			t.Errorf("round trip of %q failed: got %q ok=%v", s, dec, ok)
		}
	}
}

func TestModifiedUTF8QuickRoundTrip(t *testing.T) {
	f := func(s string) bool {
		enc := appendModifiedUTF8(nil, s)
		dec, ok := decodeModifiedUTF8(enc)
		return ok && dec == s
	}
	// Strings generated by quick are valid UTF-8, which is what the
	// builder path feeds the encoder.
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeModifiedUTF8RejectsIllegalBytes(t *testing.T) {
	bad := [][]byte{
		{0x00},             // raw NUL
		{0xF0, 0x9F, 0x98}, // 4-byte UTF-8 lead is illegal in modified UTF-8
		{0xC0},             // truncated 2-byte
		{0xE0, 0x80},       // truncated 3-byte
		{0x80},             // stray continuation
	}
	for _, b := range bad {
		if _, ok := decodeModifiedUTF8(b); ok {
			t.Errorf("accepted illegal sequence % x", b)
		}
	}
}

func TestAttributeAddRemove(t *testing.T) {
	cf := buildMinimal(t)
	cf.AddAttribute("dvm.Test", []byte("payload"))
	if cf.FindAttr(cf.Attributes, "dvm.Test") == nil {
		t.Fatal("attribute not found after Add")
	}
	if !cf.RemoveAttribute("dvm.Test") {
		t.Fatal("RemoveAttribute returned false")
	}
	if cf.FindAttr(cf.Attributes, "dvm.Test") != nil {
		t.Fatal("attribute still present after Remove")
	}
	if cf.RemoveAttribute("dvm.Test") {
		t.Fatal("second RemoveAttribute returned true")
	}
}

func TestConstantValueAndExceptionsDecode(t *testing.T) {
	cf := buildMinimal(t)
	idx := cf.Pool.AddInteger(7)
	a := &Attribute{NameIndex: cf.Pool.AddUtf8(AttrConstantValue), Info: []byte{byte(idx >> 8), byte(idx)}}
	got, err := ConstantValueIndex(a)
	if err != nil || got != idx {
		t.Errorf("ConstantValueIndex = %d, %v", got, err)
	}
	if _, err := ConstantValueIndex(&Attribute{Info: []byte{1}}); err == nil {
		t.Error("short ConstantValue accepted")
	}
	ex := cf.Pool.AddClass("java/io/IOException")
	ea := &Attribute{NameIndex: cf.Pool.AddUtf8(AttrExceptions), Info: []byte{0, 1, byte(ex >> 8), byte(ex)}}
	lst, err := DecodeExceptions(ea)
	if err != nil || len(lst) != 1 || lst[0] != ex {
		t.Errorf("DecodeExceptions = %v, %v", lst, err)
	}
	if _, err := DecodeExceptions(&Attribute{Info: []byte{0, 2, 0, 1}}); err == nil {
		t.Error("length-mismatched Exceptions accepted")
	}
}

func TestLineNumberTableDecode(t *testing.T) {
	a := &Attribute{Info: []byte{0, 2, 0, 0, 0, 10, 0, 5, 0, 11}}
	entries, err := DecodeLineNumberTable(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[1].StartPC != 5 || entries[1].Line != 11 {
		t.Errorf("entries = %+v", entries)
	}
	if _, err := DecodeLineNumberTable(&Attribute{Info: []byte{0, 3, 0, 0}}); err == nil {
		t.Error("length-mismatched LineNumberTable accepted")
	}
}

func TestParseRejectsOversizeInput(t *testing.T) {
	big := make([]byte, MaxClassFileSize+1)
	if _, err := Parse(big); err == nil {
		t.Fatal("oversize classfile accepted")
	}
}

func TestDecodeCodeRejectsMalformed(t *testing.T) {
	cf := buildMinimal(t)
	m := cf.FindMethod("run", "()V")
	a := cf.FindAttr(m.Attributes, AttrCode)
	// Truncate the attribute payload.
	short := &Attribute{NameIndex: a.NameIndex, Info: a.Info[:5]}
	if _, err := DecodeCode(short); err == nil {
		t.Error("truncated Code attribute accepted")
	}
	// Trailing garbage.
	long := &Attribute{NameIndex: a.NameIndex, Info: append(append([]byte(nil), a.Info...), 0xFF)}
	if _, err := DecodeCode(long); err == nil {
		t.Error("over-long Code attribute accepted")
	}
}
