package classfile

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestPoolFreezePanicsOnMutation(t *testing.T) {
	p := NewConstPool()
	hit := p.AddUtf8("stable")
	p.Freeze(true)

	// Interning hits stay legal while frozen.
	if got := p.AddUtf8("stable"); got != hit {
		t.Fatalf("frozen intern hit returned %d, want %d", got, hit)
	}

	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("frozen pool accepted a new constant without panicking")
			}
		}()
		p.AddUtf8("fresh")
	}()

	p.Freeze(false)
	if p.AddUtf8("fresh") == 0 {
		t.Fatal("unfrozen pool rejected a new constant")
	}
}

func TestPoolKeyDistinguishesFloatBitPatterns(t *testing.T) {
	p := NewConstPool()
	neg := p.AddFloat(float32(math.Copysign(0, -1)))
	pos := p.AddFloat(0)
	if neg == pos {
		t.Fatal("-0.0 and +0.0 interned to the same Float slot")
	}
	d1 := p.AddDouble(math.NaN())
	d2 := p.AddDouble(math.NaN())
	if d1 != d2 {
		t.Fatal("identical NaN bit patterns interned to different Double slots")
	}
}

func TestReleaseRecyclesScratchSafely(t *testing.T) {
	cf := buildScratchClass(t)
	data, err := cf.Encode()
	if err != nil {
		t.Fatal(err)
	}

	// Parse, capture strings that outlive the release, then recycle.
	parsed, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	name, err := parsed.Pool.ClassName(parsed.ThisClass)
	if err != nil {
		t.Fatal(err)
	}
	parsed.Release()
	if parsed.Pool != nil {
		t.Fatal("Release left cf.Pool set")
	}
	parsed.Release() // double release is a no-op

	// The retained string is still intact after the scratch is reused.
	for i := 0; i < 8; i++ {
		again, err := Parse(data)
		if err != nil {
			t.Fatal(err)
		}
		enc, err := again.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, data) {
			t.Fatalf("round-trip through recycled scratch diverged on iteration %d", i)
		}
		again.Release()
	}
	if name != "scratch/Demo" {
		t.Fatalf("retained string corrupted after recycle: %q", name)
	}
}

func buildScratchClass(t *testing.T) *ClassFile {
	t.Helper()
	pool := NewConstPool()
	cf := &ClassFile{
		MinorVersion: 3, MajorVersion: 45,
		Pool:        pool,
		AccessFlags: AccPublic | AccSuper,
	}
	cf.ThisClass = pool.AddClass("scratch/Demo")
	cf.SuperClass = pool.AddClass("java/lang/Object")
	pool.AddString(strings.Repeat("payload ", 16))
	pool.AddLong(1 << 40)
	pool.AddDouble(3.14)
	m := &Member{
		AccessFlags:     AccPublic | AccStatic,
		NameIndex:       pool.AddUtf8("run"),
		DescriptorIndex: pool.AddUtf8("(I)I"),
	}
	if err := cf.SetCode(m, &Code{MaxStack: 2, MaxLocals: 2, Bytecode: []byte{0x1a, 0xac}}); err != nil {
		t.Fatal(err)
	}
	cf.Methods = append(cf.Methods, m)
	return cf
}
