package classfile

import "sync/atomic"

// The lazy codec's effectiveness is observable: every Utf8 constant and
// every attribute carries a "seen" count at parse time and a "decoded"
// count on first touch, and every Encode records whether it spliced the
// original bytes or re-serialized the class. The proxy exports the
// decoded/seen ratio as the lazy_decoded_ratio gauge; the round-trip
// test suite asserts that a no-touch Parse→Encode cycle decodes nothing.
var (
	statUtf8Seen      atomic.Uint64
	statUtf8Decoded   atomic.Uint64
	statAttrsSeen     atomic.Uint64
	statAttrsDecoded  atomic.Uint64
	statSpliceEncodes atomic.Uint64
	statFullEncodes   atomic.Uint64
)

// Stats is a snapshot of the package's cumulative codec counters.
type Stats struct {
	Utf8Seen      uint64 // Utf8 constants parsed (lazily, as byte ranges)
	Utf8Decoded   uint64 // Utf8 constants materialized into Go strings
	AttrsSeen     uint64 // attributes parsed (payloads kept as byte ranges)
	AttrsDecoded  uint64 // attribute payloads decoded by a typed helper
	SpliceEncodes uint64 // Encode calls served by the splice fast path
	FullEncodes   uint64 // Encode calls that re-serialized everything
}

// CodecStats returns the cumulative codec counters. Counters only ever
// grow; callers compute deltas across an operation of interest.
func CodecStats() Stats {
	return Stats{
		Utf8Seen:      statUtf8Seen.Load(),
		Utf8Decoded:   statUtf8Decoded.Load(),
		AttrsSeen:     statAttrsSeen.Load(),
		AttrsDecoded:  statAttrsDecoded.Load(),
		SpliceEncodes: statSpliceEncodes.Load(),
		FullEncodes:   statFullEncodes.Load(),
	}
}
