package classfile

import (
	"encoding/binary"
	"math"
	"unicode/utf8"
)

// MaxClassFileSize bounds the classfiles the parser accepts. The proxy
// parses hostile input from the open Internet; an explicit bound keeps a
// malicious length field from forcing a huge allocation.
const MaxClassFileSize = 16 << 20

// reader is a bounds-checked big-endian cursor over the raw classfile.
type reader struct {
	data  []byte
	off   int
	err   error
	arena *attrArena // shared attribute storage for one Parse, nil elsewhere
}

// attrArena amortizes attribute allocation across one Parse call: every
// member's attribute list is carved out of two shared growing arrays
// instead of paying two allocations per member, which dominated the
// remaining parse cost once strings went lazy. Sub-slices are handed out
// with capped capacity so a later append (SetCode installing a new
// attribute) copies out instead of overwriting a neighbor's entries.
type attrArena struct {
	backing []Attribute
	ptrs    []*Attribute
}

func (r *reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = formatErrf(r.off, format, args...)
	}
}

func (r *reader) need(n int) bool {
	if r.err != nil {
		return false
	}
	if r.off+n > len(r.data) {
		r.fail("truncated: need %d bytes, have %d", n, len(r.data)-r.off)
		return false
	}
	return true
}

func (r *reader) u1() uint8 {
	if !r.need(1) {
		return 0
	}
	v := r.data[r.off]
	r.off++
	return v
}

func (r *reader) u2() uint16 {
	if !r.need(2) {
		return 0
	}
	v := binary.BigEndian.Uint16(r.data[r.off:])
	r.off += 2
	return v
}

func (r *reader) u4() uint32 {
	if !r.need(4) {
		return 0
	}
	v := binary.BigEndian.Uint32(r.data[r.off:])
	r.off += 4
	return v
}

func (r *reader) bytes(n int) []byte {
	if n < 0 || !r.need(n) {
		if n < 0 {
			r.fail("negative length %d", n)
		}
		return nil
	}
	v := r.data[r.off : r.off+n : r.off+n]
	r.off += n
	return v
}

// Parse decodes a classfile from its serialized form. It performs the
// structural decoding only; deeper consistency checks (phase 1 of
// verification) live in the verifier package so that the split between
// "can be decoded" and "is well-formed" matches the paper's service
// factoring.
func Parse(data []byte) (*ClassFile, error) {
	if len(data) > MaxClassFileSize {
		return nil, formatErrf(0, "classfile exceeds maximum size (%d > %d)", len(data), MaxClassFileSize)
	}
	r := &reader{data: data, arena: &attrArena{}}
	if magic := r.u4(); r.err == nil && magic != Magic {
		return nil, formatErrf(0, "bad magic 0x%08X", magic)
	}
	cf := &ClassFile{raw: data}
	cf.MinorVersion = r.u2()
	cf.MajorVersion = r.u2()

	pool, err := parsePool(r)
	if err != nil {
		return nil, err
	}
	cf.Pool = pool
	cf.poolEnd = r.off
	cf.parsedPool = pool
	cf.parsedEntries = len(pool.entries)

	cf.AccessFlags = r.u2()
	cf.ThisClass = r.u2()
	cf.SuperClass = r.u2()

	ifaceCount := int(r.u2())
	if r.err == nil && ifaceCount*2 > len(data)-r.off {
		return nil, formatErrf(r.off, "interface count %d exceeds remaining data", ifaceCount)
	}
	cf.Interfaces = make([]uint16, 0, ifaceCount)
	for i := 0; i < ifaceCount && r.err == nil; i++ {
		cf.Interfaces = append(cf.Interfaces, r.u2())
	}

	if cf.Fields, err = parseMembers(r, cf); err != nil {
		return nil, err
	}
	if cf.Methods, err = parseMembers(r, cf); err != nil {
		return nil, err
	}
	cf.attrsStart = r.off
	if cf.Attributes, err = parseAttributes(r); err != nil {
		return nil, err
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(data) {
		return nil, formatErrf(r.off, "%d trailing bytes after class structure", len(data)-r.off)
	}
	return cf, nil
}

func parsePool(r *reader) (*ConstPool, error) {
	count := int(r.u2())
	if r.err != nil {
		return nil, r.err
	}
	if count == 0 {
		return nil, formatErrf(r.off, "constant pool count must be at least 1")
	}
	// Each pool entry is at least 3 bytes on disk; cap the size hint so a
	// hostile count can't force a huge allocation up front.
	hint := count
	if max := (len(r.data)-r.off)/3 + 1; hint > max {
		hint = max
	}
	pool := newParsePool(hint)
	for len(pool.entries) < count {
		tag := ConstTag(r.u1())
		if r.err != nil {
			return nil, r.err
		}
		var c Constant
		c.Tag = tag
		switch tag {
		case TagUtf8:
			n := int(r.u2())
			raw := r.bytes(n)
			if r.err != nil {
				return nil, r.err
			}
			// Validate now (hostile input must fail at the parse gate) but
			// defer building the Go string until something touches it.
			if !validateModifiedUTF8(raw) {
				return nil, formatErrf(r.off, "malformed modified-UTF8 in constant %d", len(pool.entries))
			}
			c.raw = raw
			c.lazy = true
			statUtf8Seen.Add(1)
		case TagInteger:
			c.Int = int32(r.u4())
		case TagFloat:
			c.Float = math.Float32frombits(r.u4())
		case TagLong:
			hi := uint64(r.u4())
			lo := uint64(r.u4())
			c.Long = int64(hi<<32 | lo)
		case TagDouble:
			hi := uint64(r.u4())
			lo := uint64(r.u4())
			c.Double = math.Float64frombits(hi<<32 | lo)
		case TagClass, TagString:
			c.Ref1 = r.u2()
		case TagFieldref, TagMethodref, TagInterfaceMethodref, TagNameAndType:
			c.Ref1 = r.u2()
			c.Ref2 = r.u2()
		default:
			return nil, formatErrf(r.off, "unknown constant pool tag %d", tag)
		}
		if r.err != nil {
			return nil, r.err
		}
		if _, err := pool.append(c); err != nil {
			return nil, err
		}
		if len(pool.entries) > count {
			return nil, formatErrf(r.off, "Long/Double constant overruns declared pool count %d", count)
		}
	}
	// The interning index is built lazily (ensureIndex) on the first Add*
	// call, so classes that no filter adds constants to never pay for it.
	return pool, nil
}

func parseMembers(r *reader, cf *ClassFile) ([]*Member, error) {
	count := int(r.u2())
	if r.err != nil {
		return nil, r.err
	}
	// Each member needs at least 8 bytes (flags, name, desc, attr count).
	if count*8 > len(r.data)-r.off {
		return nil, formatErrf(r.off, "member count %d exceeds remaining data", count)
	}
	// One backing array for all members instead of one allocation each;
	// the pointers stay valid for the life of the ClassFile.
	backing := make([]Member, count)
	members := make([]*Member, count)
	for i := 0; i < count; i++ {
		m := &backing[i]
		m.owner = cf
		m.spanStart = r.off
		m.AccessFlags = r.u2()
		m.NameIndex = r.u2()
		m.DescriptorIndex = r.u2()
		attrs, err := parseAttributes(r)
		if err != nil {
			return nil, err
		}
		m.Attributes = attrs
		m.spanEnd = r.off
		members[i] = m
	}
	return members, r.err
}

func parseAttributes(r *reader) ([]*Attribute, error) {
	count := int(r.u2())
	if r.err != nil {
		return nil, r.err
	}
	if count*6 > len(r.data)-r.off {
		return nil, formatErrf(r.off, "attribute count %d exceeds remaining data", count)
	}
	if ar := r.arena; ar != nil {
		start := len(ar.ptrs)
		for i := 0; i < count; i++ {
			nameIdx := r.u2()
			length := int(r.u4())
			info := r.bytes(length)
			if r.err != nil {
				return nil, r.err
			}
			ar.backing = append(ar.backing, Attribute{NameIndex: nameIdx, Info: info})
			ar.ptrs = append(ar.ptrs, &ar.backing[len(ar.backing)-1])
		}
		statAttrsSeen.Add(uint64(count))
		// Capped capacity: appending to a member's attribute list must
		// copy out of the arena, never overwrite the next member's slots.
		return ar.ptrs[start:len(ar.ptrs):len(ar.ptrs)], nil
	}
	backing := make([]Attribute, count)
	attrs := make([]*Attribute, count)
	for i := 0; i < count; i++ {
		nameIdx := r.u2()
		length := int(r.u4())
		info := r.bytes(length)
		if r.err != nil {
			return nil, r.err
		}
		backing[i] = Attribute{NameIndex: nameIdx, Info: info}
		attrs[i] = &backing[i]
	}
	statAttrsSeen.Add(uint64(count))
	return attrs, nil
}

// validateModifiedUTF8 checks that b is well-formed modified UTF-8
// without building the decoded string — the alloc-free twin of
// decodeModifiedUTF8, run at the parse gate so hostile input still fails
// early while well-formed strings decode lazily.
func validateModifiedUTF8(b []byte) bool {
	for i := 0; i < len(b); {
		c := b[i]
		switch {
		case c == 0 || c >= 0xF0:
			return false
		case c < 0x80:
			i++
		case c&0xE0 == 0xC0:
			if i+1 >= len(b) || b[i+1]&0xC0 != 0x80 {
				return false
			}
			i += 2
		case c&0xF0 == 0xE0:
			if i+2 >= len(b) || b[i+1]&0xC0 != 0x80 || b[i+2]&0xC0 != 0x80 {
				return false
			}
			// Mirror the decoder's CESU-8 surrogate-pair handling exactly,
			// including which bytes it consumes, so validate and decode
			// accept precisely the same inputs.
			r := rune(c&0x0F)<<12 | rune(b[i+1]&0x3F)<<6 | rune(b[i+2]&0x3F)
			if r >= 0xD800 && r <= 0xDBFF && i+5 < len(b) && b[i+3]&0xF0 == 0xE0 {
				r2 := rune(b[i+3]&0x0F)<<12 | rune(b[i+4]&0x3F)<<6 | rune(b[i+5]&0x3F)
				if r2 >= 0xDC00 && r2 <= 0xDFFF {
					i += 6
					continue
				}
			}
			i += 3
		default:
			return false
		}
	}
	return true
}

// decodeModifiedUTF8 decodes the JVM's "modified UTF-8": NUL is encoded as
// 0xC0 0x80, supplementary characters as CESU-8 surrogate pairs, and no
// byte may be 0x00 or in 0xF0..0xFF.
func decodeModifiedUTF8(b []byte) (string, bool) {
	// Fast path: plain ASCII without NUL.
	ascii := true
	for _, c := range b {
		if c == 0 || c >= 0x80 {
			ascii = false
			break
		}
	}
	if ascii {
		return string(b), true
	}
	out := make([]rune, 0, len(b))
	for i := 0; i < len(b); {
		c := b[i]
		switch {
		case c == 0 || c >= 0xF0:
			return "", false
		case c < 0x80:
			out = append(out, rune(c))
			i++
		case c&0xE0 == 0xC0:
			if i+1 >= len(b) || b[i+1]&0xC0 != 0x80 {
				return "", false
			}
			out = append(out, rune(c&0x1F)<<6|rune(b[i+1]&0x3F))
			i += 2
		case c&0xF0 == 0xE0:
			if i+2 >= len(b) || b[i+1]&0xC0 != 0x80 || b[i+2]&0xC0 != 0x80 {
				return "", false
			}
			r := rune(c&0x0F)<<12 | rune(b[i+1]&0x3F)<<6 | rune(b[i+2]&0x3F)
			// Recombine CESU-8 surrogate pairs into one code point.
			if r >= 0xD800 && r <= 0xDBFF && i+5 < len(b) &&
				b[i+3]&0xF0 == 0xE0 {
				r2 := rune(b[i+3]&0x0F)<<12 | rune(b[i+4]&0x3F)<<6 | rune(b[i+5]&0x3F)
				if r2 >= 0xDC00 && r2 <= 0xDFFF {
					out = append(out, ((r-0xD800)<<10|(r2-0xDC00))+0x10000)
					i += 6
					continue
				}
			}
			out = append(out, r)
			i += 3
		default:
			return "", false
		}
	}
	return string(out), true
}

// appendModifiedUTF8 appends the modified-UTF8 encoding of s to out (the
// inverse of decodeModifiedUTF8). Appending in place lets the encoder
// write every Utf8 constant straight into its output buffer instead of
// allocating a scratch slice per constant.
func appendModifiedUTF8(out []byte, s string) []byte {
	// Fast path: plain ASCII without NUL copies straight through.
	ascii := true
	for i := 0; i < len(s); i++ {
		if s[i] == 0 || s[i] >= 0x80 {
			ascii = false
			break
		}
	}
	if ascii {
		return append(out, s...)
	}
	for _, r := range s {
		switch {
		case r == 0:
			out = append(out, 0xC0, 0x80)
		case r < 0x80:
			out = append(out, byte(r))
		case r < 0x800:
			out = append(out, 0xC0|byte(r>>6), 0x80|byte(r&0x3F))
		case r < 0x10000:
			out = append(out, 0xE0|byte(r>>12), 0x80|byte(r>>6&0x3F), 0x80|byte(r&0x3F))
		case r <= utf8.MaxRune:
			// CESU-8 surrogate pair encoding.
			r -= 0x10000
			hi := 0xD800 + (r >> 10)
			lo := 0xDC00 + (r & 0x3FF)
			out = append(out,
				0xE0|byte(hi>>12), 0x80|byte(hi>>6&0x3F), 0x80|byte(hi&0x3F),
				0xE0|byte(lo>>12), 0x80|byte(lo>>6&0x3F), 0x80|byte(lo&0x3F))
		}
	}
	return out
}
