package classfile

import (
	"encoding/binary"
	"math"
)

// writer accumulates big-endian classfile output.
type writer struct {
	buf []byte
}

func (w *writer) u1(v uint8)  { w.buf = append(w.buf, v) }
func (w *writer) u2(v uint16) { w.buf = binary.BigEndian.AppendUint16(w.buf, v) }
func (w *writer) u4(v uint32) { w.buf = binary.BigEndian.AppendUint32(w.buf, v) }
func (w *writer) raw(b []byte) {
	w.buf = append(w.buf, b...)
}

// modifiedUTF8Len returns the encoded length of s in modified UTF-8
// without allocating.
func modifiedUTF8Len(s string) int {
	// Fast path: plain ASCII without NUL encodes byte-for-byte.
	ascii := true
	for i := 0; i < len(s); i++ {
		if s[i] == 0 || s[i] >= 0x80 {
			ascii = false
			break
		}
	}
	if ascii {
		return len(s)
	}
	n := 0
	for _, r := range s {
		switch {
		case r == 0:
			n += 2
		case r < 0x80:
			n++
		case r < 0x800:
			n += 2
		case r < 0x10000:
			n += 3
		default:
			n += 6 // CESU-8 surrogate pair
		}
	}
	return n
}

// encodedSize computes the exact serialized size of the class, so Encode
// can make a single right-sized allocation instead of growing a buffer.
func (cf *ClassFile) encodedSize() int {
	n := 4 + 2 + 2 // magic, minor, major
	n += 2         // constant_pool_count
	if cf.Pool != nil {
		n += cf.Pool.entriesSize(1)
	}
	n += 2 + 2 + 2 // access_flags, this_class, super_class
	n += 2 + 2*len(cf.Interfaces)
	n += 2
	for _, m := range cf.Fields {
		n += 6 + attributesSize(m.Attributes)
	}
	n += 2
	for _, m := range cf.Methods {
		n += 6 + attributesSize(m.Attributes)
	}
	n += attributesSize(cf.Attributes)
	return n
}

func attributesSize(attrs []*Attribute) int {
	n := 2
	for _, a := range attrs {
		n += 6 + len(a.Info)
	}
	return n
}

// Encode serializes the class back to the on-disk format. Encoding an
// unmodified parse result reproduces a byte-for-byte identical file.
//
// Classes that came from Parse take a splice fast path: byte ranges that
// no filter dirtied (the constant pool, unmodified members, the class
// attribute list) are copied verbatim from the original buffer and only
// dirtied members are re-serialized, so encoding cost scales with what
// was actually touched. The output is always a freshly allocated buffer;
// it never aliases the parse input.
func (cf *ClassFile) Encode() ([]byte, error) {
	if cf.canSplice() {
		return cf.encodeSplice()
	}
	statFullEncodes.Add(1)
	w := &writer{buf: make([]byte, 0, cf.encodedSize())}
	w.u4(Magic)
	w.u2(cf.MinorVersion)
	w.u2(cf.MajorVersion)
	if err := encodePool(w, cf.Pool); err != nil {
		return nil, err
	}
	w.u2(cf.AccessFlags)
	w.u2(cf.ThisClass)
	w.u2(cf.SuperClass)
	if len(cf.Interfaces) > 0xFFFF {
		return nil, formatErrf(-1, "too many interfaces (%d)", len(cf.Interfaces))
	}
	w.u2(uint16(len(cf.Interfaces)))
	for _, i := range cf.Interfaces {
		w.u2(i)
	}
	if err := encodeMembers(w, cf.Fields); err != nil {
		return nil, err
	}
	if err := encodeMembers(w, cf.Methods); err != nil {
		return nil, err
	}
	if err := encodeAttributes(w, cf.Attributes); err != nil {
		return nil, err
	}
	return w.buf, nil
}

// canSplice reports whether the class can use the splice fast path: it
// was parsed from a buffer and still carries the pool that parse built
// (a wholesale pool replacement, e.g. by CompactPool, renumbers indices
// and invalidates every recorded byte range).
func (cf *ClassFile) canSplice() bool {
	return cf.raw != nil && cf.Pool != nil && cf.Pool == cf.parsedPool &&
		len(cf.Pool.entries) >= cf.parsedEntries
}

// encodeSplice is the splice fast path of Encode.
func (cf *ClassFile) encodeSplice() ([]byte, error) {
	statSpliceEncodes.Add(1)
	p := cf.Pool
	if len(p.entries) > 0xFFFF {
		return nil, formatErrf(-1, "constant pool too large (%d entries)", len(p.entries))
	}
	if len(cf.Interfaces) > 0xFFFF {
		return nil, formatErrf(-1, "too many interfaces (%d)", len(cf.Interfaces))
	}
	poolGrown := len(p.entries) > cf.parsedEntries

	// Exact output size, so the copy happens into one right-sized buffer.
	n := 8 // magic, minor, major
	if poolGrown {
		n += 2 + (cf.poolEnd - 10) + p.entriesSize(cf.parsedEntries)
	} else {
		n += cf.poolEnd - 8
	}
	n += 6 + 2 + 2*len(cf.Interfaces)
	n += 2
	for _, m := range cf.Fields {
		n += cf.memberEncodedSize(m)
	}
	n += 2
	for _, m := range cf.Methods {
		n += cf.memberEncodedSize(m)
	}
	if cf.attrsDirty {
		n += attributesSize(cf.Attributes)
	} else {
		n += len(cf.raw) - cf.attrsStart
	}

	w := &writer{buf: make([]byte, 0, n)}
	w.u4(Magic)
	w.u2(cf.MinorVersion)
	w.u2(cf.MajorVersion)
	if poolGrown {
		// Append-only growth keeps every parsed index stable: splice the
		// parsed entries verbatim and re-serialize only the tail.
		w.u2(uint16(len(p.entries)))
		w.raw(cf.raw[10:cf.poolEnd])
		if err := encodePoolEntries(w, p, cf.parsedEntries); err != nil {
			return nil, err
		}
	} else {
		w.raw(cf.raw[8:cf.poolEnd]) // count + all entries
	}
	w.u2(cf.AccessFlags)
	w.u2(cf.ThisClass)
	w.u2(cf.SuperClass)
	w.u2(uint16(len(cf.Interfaces)))
	for _, i := range cf.Interfaces {
		w.u2(i)
	}
	if err := cf.spliceMembers(w, cf.Fields); err != nil {
		return nil, err
	}
	if err := cf.spliceMembers(w, cf.Methods); err != nil {
		return nil, err
	}
	if cf.attrsDirty {
		return w.buf, encodeAttributes(w, cf.Attributes)
	}
	w.raw(cf.raw[cf.attrsStart:])
	return w.buf, nil
}

// spliceable reports whether m's original byte range can be copied
// verbatim: it belongs to this parse and was never marked dirty.
func (cf *ClassFile) spliceable(m *Member) bool {
	return !m.dirty && m.owner == cf && m.spanEnd > m.spanStart
}

// memberEncodedSize is the member's size under the splice path.
func (cf *ClassFile) memberEncodedSize(m *Member) int {
	if cf.spliceable(m) {
		return m.spanEnd - m.spanStart
	}
	return 6 + attributesSize(m.Attributes)
}

// spliceMembers writes a member list, copying unmodified members'
// original bytes and re-serializing dirtied (or newly added) ones.
func (cf *ClassFile) spliceMembers(w *writer, ms []*Member) error {
	if len(ms) > 0xFFFF {
		return formatErrf(-1, "too many members (%d)", len(ms))
	}
	w.u2(uint16(len(ms)))
	for _, m := range ms {
		if cf.spliceable(m) {
			w.raw(cf.raw[m.spanStart:m.spanEnd])
			continue
		}
		w.u2(m.AccessFlags)
		w.u2(m.NameIndex)
		w.u2(m.DescriptorIndex)
		if err := encodeAttributes(w, m.Attributes); err != nil {
			return err
		}
	}
	return nil
}

// entriesSize returns the serialized size of entries[from:].
func (p *ConstPool) entriesSize(from int) int {
	n := 0
	for i := from; i < len(p.entries); i++ {
		c := p.entries[i]
		switch c.Tag {
		case 0: // dead second slot of a Long/Double
		case TagUtf8:
			if c.raw != nil {
				n += 1 + 2 + len(c.raw)
			} else {
				n += 1 + 2 + modifiedUTF8Len(c.Str)
			}
		case TagInteger, TagFloat:
			n += 1 + 4
		case TagLong, TagDouble:
			n += 1 + 8
		case TagClass, TagString:
			n += 1 + 2
		default: // member refs and NameAndType
			n += 1 + 4
		}
	}
	return n
}

func encodePool(w *writer, p *ConstPool) error {
	if p == nil {
		return formatErrf(-1, "class has no constant pool")
	}
	if len(p.entries) > 0xFFFF {
		return formatErrf(-1, "constant pool too large (%d entries)", len(p.entries))
	}
	w.u2(uint16(len(p.entries)))
	return encodePoolEntries(w, p, 1)
}

// encodePoolEntries serializes entries[from:] (no count prefix).
func encodePoolEntries(w *writer, p *ConstPool, from int) error {
	for i := from; i < len(p.entries); i++ {
		c := p.entries[i]
		if c.Tag == 0 {
			continue // dead second slot of a Long/Double
		}
		w.u1(uint8(c.Tag))
		switch c.Tag {
		case TagUtf8:
			// Prefer the original bytes when the entry came from a parse:
			// re-encoding from Str would canonicalize non-canonical
			// modified-UTF8 and make output depend on what was touched.
			if c.raw != nil {
				if len(c.raw) > 0xFFFF {
					return formatErrf(-1, "Utf8 constant %d too long (%d bytes)", i, len(c.raw))
				}
				w.u2(uint16(len(c.raw)))
				w.raw(c.raw)
				continue
			}
			n := modifiedUTF8Len(c.Str)
			if n > 0xFFFF {
				return formatErrf(-1, "Utf8 constant %d too long (%d bytes)", i, n)
			}
			w.u2(uint16(n))
			w.buf = appendModifiedUTF8(w.buf, c.Str)
		case TagInteger:
			w.u4(uint32(c.Int))
		case TagFloat:
			w.u4(math.Float32bits(c.Float))
		case TagLong:
			w.u4(uint32(uint64(c.Long) >> 32))
			w.u4(uint32(uint64(c.Long)))
		case TagDouble:
			bits := math.Float64bits(c.Double)
			w.u4(uint32(bits >> 32))
			w.u4(uint32(bits))
		case TagClass, TagString:
			w.u2(c.Ref1)
		case TagFieldref, TagMethodref, TagInterfaceMethodref, TagNameAndType:
			w.u2(c.Ref1)
			w.u2(c.Ref2)
		default:
			return formatErrf(-1, "cannot encode constant %d with tag %d", i, c.Tag)
		}
	}
	return nil
}

func encodeMembers(w *writer, ms []*Member) error {
	if len(ms) > 0xFFFF {
		return formatErrf(-1, "too many members (%d)", len(ms))
	}
	w.u2(uint16(len(ms)))
	for _, m := range ms {
		w.u2(m.AccessFlags)
		w.u2(m.NameIndex)
		w.u2(m.DescriptorIndex)
		if err := encodeAttributes(w, m.Attributes); err != nil {
			return err
		}
	}
	return nil
}

func encodeAttributes(w *writer, attrs []*Attribute) error {
	if len(attrs) > 0xFFFF {
		return formatErrf(-1, "too many attributes (%d)", len(attrs))
	}
	w.u2(uint16(len(attrs)))
	for _, a := range attrs {
		if len(a.Info) > math.MaxUint32 {
			return formatErrf(-1, "attribute too large")
		}
		w.u2(a.NameIndex)
		w.u4(uint32(len(a.Info)))
		w.raw(a.Info)
	}
	return nil
}
