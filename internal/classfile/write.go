package classfile

import (
	"encoding/binary"
	"math"
)

// writer accumulates big-endian classfile output.
type writer struct {
	buf []byte
}

func (w *writer) u1(v uint8)  { w.buf = append(w.buf, v) }
func (w *writer) u2(v uint16) { w.buf = binary.BigEndian.AppendUint16(w.buf, v) }
func (w *writer) u4(v uint32) { w.buf = binary.BigEndian.AppendUint32(w.buf, v) }
func (w *writer) raw(b []byte) {
	w.buf = append(w.buf, b...)
}

// modifiedUTF8Len returns the encoded length of s in modified UTF-8
// without allocating.
func modifiedUTF8Len(s string) int {
	// Fast path: plain ASCII without NUL encodes byte-for-byte.
	ascii := true
	for i := 0; i < len(s); i++ {
		if s[i] == 0 || s[i] >= 0x80 {
			ascii = false
			break
		}
	}
	if ascii {
		return len(s)
	}
	n := 0
	for _, r := range s {
		switch {
		case r == 0:
			n += 2
		case r < 0x80:
			n++
		case r < 0x800:
			n += 2
		case r < 0x10000:
			n += 3
		default:
			n += 6 // CESU-8 surrogate pair
		}
	}
	return n
}

// encodedSize computes the exact serialized size of the class, so Encode
// can make a single right-sized allocation instead of growing a buffer.
func (cf *ClassFile) encodedSize() int {
	n := 4 + 2 + 2 // magic, minor, major
	n += 2         // constant_pool_count
	if cf.Pool != nil {
		for i := 1; i < len(cf.Pool.entries); i++ {
			c := cf.Pool.entries[i]
			switch c.Tag {
			case 0: // dead second slot of a Long/Double
			case TagUtf8:
				n += 1 + 2 + modifiedUTF8Len(c.Str)
			case TagInteger, TagFloat:
				n += 1 + 4
			case TagLong, TagDouble:
				n += 1 + 8
			case TagClass, TagString:
				n += 1 + 2
			default: // member refs and NameAndType
				n += 1 + 4
			}
		}
	}
	n += 2 + 2 + 2 // access_flags, this_class, super_class
	n += 2 + 2*len(cf.Interfaces)
	n += 2
	for _, m := range cf.Fields {
		n += 6 + attributesSize(m.Attributes)
	}
	n += 2
	for _, m := range cf.Methods {
		n += 6 + attributesSize(m.Attributes)
	}
	n += attributesSize(cf.Attributes)
	return n
}

func attributesSize(attrs []*Attribute) int {
	n := 2
	for _, a := range attrs {
		n += 6 + len(a.Info)
	}
	return n
}

// Encode serializes the class back to the on-disk format. Encoding an
// unmodified parse result reproduces a byte-for-byte identical file.
func (cf *ClassFile) Encode() ([]byte, error) {
	w := &writer{buf: make([]byte, 0, cf.encodedSize())}
	w.u4(Magic)
	w.u2(cf.MinorVersion)
	w.u2(cf.MajorVersion)
	if err := encodePool(w, cf.Pool); err != nil {
		return nil, err
	}
	w.u2(cf.AccessFlags)
	w.u2(cf.ThisClass)
	w.u2(cf.SuperClass)
	if len(cf.Interfaces) > 0xFFFF {
		return nil, formatErrf(-1, "too many interfaces (%d)", len(cf.Interfaces))
	}
	w.u2(uint16(len(cf.Interfaces)))
	for _, i := range cf.Interfaces {
		w.u2(i)
	}
	if err := encodeMembers(w, cf.Fields); err != nil {
		return nil, err
	}
	if err := encodeMembers(w, cf.Methods); err != nil {
		return nil, err
	}
	if err := encodeAttributes(w, cf.Attributes); err != nil {
		return nil, err
	}
	return w.buf, nil
}

func encodePool(w *writer, p *ConstPool) error {
	if p == nil {
		return formatErrf(-1, "class has no constant pool")
	}
	if len(p.entries) > 0xFFFF {
		return formatErrf(-1, "constant pool too large (%d entries)", len(p.entries))
	}
	w.u2(uint16(len(p.entries)))
	for i := 1; i < len(p.entries); i++ {
		c := p.entries[i]
		if c.Tag == 0 {
			continue // dead second slot of a Long/Double
		}
		w.u1(uint8(c.Tag))
		switch c.Tag {
		case TagUtf8:
			n := modifiedUTF8Len(c.Str)
			if n > 0xFFFF {
				return formatErrf(-1, "Utf8 constant %d too long (%d bytes)", i, n)
			}
			w.u2(uint16(n))
			w.buf = appendModifiedUTF8(w.buf, c.Str)
		case TagInteger:
			w.u4(uint32(c.Int))
		case TagFloat:
			w.u4(math.Float32bits(c.Float))
		case TagLong:
			w.u4(uint32(uint64(c.Long) >> 32))
			w.u4(uint32(uint64(c.Long)))
		case TagDouble:
			bits := math.Float64bits(c.Double)
			w.u4(uint32(bits >> 32))
			w.u4(uint32(bits))
		case TagClass, TagString:
			w.u2(c.Ref1)
		case TagFieldref, TagMethodref, TagInterfaceMethodref, TagNameAndType:
			w.u2(c.Ref1)
			w.u2(c.Ref2)
		default:
			return formatErrf(-1, "cannot encode constant %d with tag %d", i, c.Tag)
		}
	}
	return nil
}

func encodeMembers(w *writer, ms []*Member) error {
	if len(ms) > 0xFFFF {
		return formatErrf(-1, "too many members (%d)", len(ms))
	}
	w.u2(uint16(len(ms)))
	for _, m := range ms {
		w.u2(m.AccessFlags)
		w.u2(m.NameIndex)
		w.u2(m.DescriptorIndex)
		if err := encodeAttributes(w, m.Attributes); err != nil {
			return err
		}
	}
	return nil
}

func encodeAttributes(w *writer, attrs []*Attribute) error {
	if len(attrs) > 0xFFFF {
		return formatErrf(-1, "too many attributes (%d)", len(attrs))
	}
	w.u2(uint16(len(attrs)))
	for _, a := range attrs {
		if len(a.Info) > math.MaxUint32 {
			return formatErrf(-1, "attribute too large")
		}
		w.u2(a.NameIndex)
		w.u4(uint32(len(a.Info)))
		w.raw(a.Info)
	}
	return nil
}
