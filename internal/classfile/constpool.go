package classfile

import "fmt"

// ConstTag identifies the kind of a constant pool entry (JVM spec 4.4).
type ConstTag uint8

// Constant pool tags for the Java 1.2-era format.
const (
	TagUtf8               ConstTag = 1
	TagInteger            ConstTag = 3
	TagFloat              ConstTag = 4
	TagLong               ConstTag = 5
	TagDouble             ConstTag = 6
	TagClass              ConstTag = 7
	TagString             ConstTag = 8
	TagFieldref           ConstTag = 9
	TagMethodref          ConstTag = 10
	TagInterfaceMethodref ConstTag = 11
	TagNameAndType        ConstTag = 12
)

// String returns the spec name of the tag.
func (t ConstTag) String() string {
	switch t {
	case TagUtf8:
		return "Utf8"
	case TagInteger:
		return "Integer"
	case TagFloat:
		return "Float"
	case TagLong:
		return "Long"
	case TagDouble:
		return "Double"
	case TagClass:
		return "Class"
	case TagString:
		return "String"
	case TagFieldref:
		return "Fieldref"
	case TagMethodref:
		return "Methodref"
	case TagInterfaceMethodref:
		return "InterfaceMethodref"
	case TagNameAndType:
		return "NameAndType"
	}
	return fmt.Sprintf("Tag(%d)", uint8(t))
}

// Constant is one constant-pool entry. A single struct (rather than an
// interface per tag) keeps serialization, copying, and pool interning
// simple. Which fields are meaningful depends on Tag:
//
//	Utf8                     Str
//	Integer                  Int
//	Float                    Float
//	Long                     Long
//	Double                   Double
//	Class                    Ref1 = name_index (Utf8)
//	String                   Ref1 = string_index (Utf8)
//	Fieldref / Methodref /
//	InterfaceMethodref       Ref1 = class_index, Ref2 = name_and_type_index
//	NameAndType              Ref1 = name_index, Ref2 = descriptor_index
type Constant struct {
	Tag    ConstTag
	Str    string
	Int    int32
	Float  float32
	Long   int64
	Double float64
	Ref1   uint16
	Ref2   uint16
}

// Wide reports whether the constant occupies two pool slots
// (Long and Double do, per the spec's famous design wart).
func (c Constant) Wide() bool { return c.Tag == TagLong || c.Tag == TagDouble }

// ConstPool holds the constant pool. Index 0 is reserved/invalid, exactly
// as on disk; Long and Double entries are followed by an unusable
// placeholder slot. The pool supports interning: the Add* methods return
// the index of an existing identical entry instead of growing the pool,
// which rewriting services rely on to keep transformed classes small.
type ConstPool struct {
	entries []Constant // entries[0] is a zero placeholder
	index   map[string]uint16
}

// NewConstPool returns an empty pool (containing only the reserved slot 0).
func NewConstPool() *ConstPool {
	return &ConstPool{entries: make([]Constant, 1), index: make(map[string]uint16)}
}

// Size returns the constant_pool_count value: number of slots including
// the reserved zeroth slot and Long/Double placeholders.
func (p *ConstPool) Size() int { return len(p.entries) }

// Valid reports whether idx names a usable entry (non-zero, in range, and
// not the dead second slot of a Long/Double).
func (p *ConstPool) Valid(idx uint16) bool {
	if idx == 0 || int(idx) >= len(p.entries) {
		return false
	}
	return p.entries[idx].Tag != 0
}

// Entry returns the constant at idx. It returns an error rather than
// panicking so that phase-1 verification can report malformed indices in
// hostile classfiles gracefully.
func (p *ConstPool) Entry(idx uint16) (Constant, error) {
	if !p.Valid(idx) {
		return Constant{}, formatErrf(-1, "invalid constant pool index %d (pool size %d)", idx, len(p.entries))
	}
	return p.entries[idx], nil
}

// Tag returns the tag at idx, or 0 if the index is invalid.
func (p *ConstPool) Tag(idx uint16) ConstTag {
	if !p.Valid(idx) {
		return 0
	}
	return p.entries[idx].Tag
}

// Utf8 resolves idx as a Utf8 constant.
func (p *ConstPool) Utf8(idx uint16) (string, error) {
	c, err := p.Entry(idx)
	if err != nil {
		return "", err
	}
	if c.Tag != TagUtf8 {
		return "", formatErrf(-1, "constant %d is %s, want Utf8", idx, c.Tag)
	}
	return c.Str, nil
}

// ClassName resolves idx as a Class constant and returns the referenced
// internal class name.
func (p *ConstPool) ClassName(idx uint16) (string, error) {
	c, err := p.Entry(idx)
	if err != nil {
		return "", err
	}
	if c.Tag != TagClass {
		return "", formatErrf(-1, "constant %d is %s, want Class", idx, c.Tag)
	}
	return p.Utf8(c.Ref1)
}

// NameAndType resolves idx as a NameAndType constant, returning the name
// and descriptor strings.
func (p *ConstPool) NameAndType(idx uint16) (name, desc string, err error) {
	c, err := p.Entry(idx)
	if err != nil {
		return "", "", err
	}
	if c.Tag != TagNameAndType {
		return "", "", formatErrf(-1, "constant %d is %s, want NameAndType", idx, c.Tag)
	}
	if name, err = p.Utf8(c.Ref1); err != nil {
		return "", "", err
	}
	if desc, err = p.Utf8(c.Ref2); err != nil {
		return "", "", err
	}
	return name, desc, nil
}

// MemberRef is the resolved form of a Fieldref, Methodref, or
// InterfaceMethodref constant.
type MemberRef struct {
	Class string // internal class name owning the member
	Name  string
	Desc  string
}

func (r MemberRef) String() string { return r.Class + "." + r.Name + r.Desc }

// Ref resolves idx as a member reference constant of any of the three
// reference tags.
func (p *ConstPool) Ref(idx uint16) (MemberRef, error) {
	c, err := p.Entry(idx)
	if err != nil {
		return MemberRef{}, err
	}
	switch c.Tag {
	case TagFieldref, TagMethodref, TagInterfaceMethodref:
	default:
		return MemberRef{}, formatErrf(-1, "constant %d is %s, want a member reference", idx, c.Tag)
	}
	cls, err := p.ClassName(c.Ref1)
	if err != nil {
		return MemberRef{}, err
	}
	name, desc, err := p.NameAndType(c.Ref2)
	if err != nil {
		return MemberRef{}, err
	}
	return MemberRef{Class: cls, Name: name, Desc: desc}, nil
}

// StringValue resolves idx as a String constant and returns its text.
func (p *ConstPool) StringValue(idx uint16) (string, error) {
	c, err := p.Entry(idx)
	if err != nil {
		return "", err
	}
	if c.Tag != TagString {
		return "", formatErrf(-1, "constant %d is %s, want String", idx, c.Tag)
	}
	return p.Utf8(c.Ref1)
}

// append adds a raw entry (no interning) and returns its index.
// It is used by the parser, which must preserve on-disk indices.
func (p *ConstPool) append(c Constant) (uint16, error) {
	idx := len(p.entries)
	if c.Wide() {
		if idx+1 > 0xFFFF {
			return 0, formatErrf(-1, "constant pool overflow")
		}
		p.entries = append(p.entries, c, Constant{})
	} else {
		if idx > 0xFFFF {
			return 0, formatErrf(-1, "constant pool overflow")
		}
		p.entries = append(p.entries, c)
	}
	return uint16(idx), nil
}

func (p *ConstPool) intern(key string, c Constant) uint16 {
	if idx, ok := p.index[key]; ok {
		return idx
	}
	idx, err := p.append(c)
	if err != nil {
		// Pools this large are rejected during parsing; builders that
		// overflow 65535 entries are programming errors.
		panic(err)
	}
	p.index[key] = idx
	return idx
}

// rebuildIndex populates the interning map after parsing, so that
// rewriters reuse the class's own entries.
func (p *ConstPool) rebuildIndex() {
	p.index = make(map[string]uint16, len(p.entries))
	for i := len(p.entries) - 1; i >= 1; i-- {
		c := p.entries[i]
		if key, ok := p.keyOf(c); ok {
			p.index[key] = uint16(i)
		}
	}
}

func (p *ConstPool) keyOf(c Constant) (string, bool) {
	switch c.Tag {
	case TagUtf8:
		return "u\x00" + c.Str, true
	case TagInteger:
		return fmt.Sprintf("i\x00%d", c.Int), true
	case TagFloat:
		return fmt.Sprintf("f\x00%x", c.Float), true
	case TagLong:
		return fmt.Sprintf("l\x00%d", c.Long), true
	case TagDouble:
		return fmt.Sprintf("d\x00%x", c.Double), true
	case TagClass:
		return fmt.Sprintf("c\x00%d", c.Ref1), true
	case TagString:
		return fmt.Sprintf("s\x00%d", c.Ref1), true
	case TagNameAndType:
		return fmt.Sprintf("n\x00%d\x00%d", c.Ref1, c.Ref2), true
	case TagFieldref:
		return fmt.Sprintf("F\x00%d\x00%d", c.Ref1, c.Ref2), true
	case TagMethodref:
		return fmt.Sprintf("M\x00%d\x00%d", c.Ref1, c.Ref2), true
	case TagInterfaceMethodref:
		return fmt.Sprintf("I\x00%d\x00%d", c.Ref1, c.Ref2), true
	}
	return "", false
}

// AddUtf8 interns a Utf8 constant and returns its index.
func (p *ConstPool) AddUtf8(s string) uint16 {
	return p.intern("u\x00"+s, Constant{Tag: TagUtf8, Str: s})
}

// AddInteger interns an Integer constant.
func (p *ConstPool) AddInteger(v int32) uint16 {
	return p.intern(fmt.Sprintf("i\x00%d", v), Constant{Tag: TagInteger, Int: v})
}

// AddFloat interns a Float constant.
func (p *ConstPool) AddFloat(v float32) uint16 {
	return p.intern(fmt.Sprintf("f\x00%x", v), Constant{Tag: TagFloat, Float: v})
}

// AddLong interns a Long constant (occupies two slots).
func (p *ConstPool) AddLong(v int64) uint16 {
	return p.intern(fmt.Sprintf("l\x00%d", v), Constant{Tag: TagLong, Long: v})
}

// AddDouble interns a Double constant (occupies two slots).
func (p *ConstPool) AddDouble(v float64) uint16 {
	return p.intern(fmt.Sprintf("d\x00%x", v), Constant{Tag: TagDouble, Double: v})
}

// AddClass interns a Class constant for the given internal name.
func (p *ConstPool) AddClass(name string) uint16 {
	ni := p.AddUtf8(name)
	return p.intern(fmt.Sprintf("c\x00%d", ni), Constant{Tag: TagClass, Ref1: ni})
}

// AddString interns a String constant with the given text.
func (p *ConstPool) AddString(s string) uint16 {
	si := p.AddUtf8(s)
	return p.intern(fmt.Sprintf("s\x00%d", si), Constant{Tag: TagString, Ref1: si})
}

// AddNameAndType interns a NameAndType constant.
func (p *ConstPool) AddNameAndType(name, desc string) uint16 {
	ni := p.AddUtf8(name)
	di := p.AddUtf8(desc)
	return p.intern(fmt.Sprintf("n\x00%d\x00%d", ni, di), Constant{Tag: TagNameAndType, Ref1: ni, Ref2: di})
}

// AddFieldref interns a Fieldref constant.
func (p *ConstPool) AddFieldref(class, name, desc string) uint16 {
	ci := p.AddClass(class)
	nt := p.AddNameAndType(name, desc)
	return p.intern(fmt.Sprintf("F\x00%d\x00%d", ci, nt), Constant{Tag: TagFieldref, Ref1: ci, Ref2: nt})
}

// AddMethodref interns a Methodref constant.
func (p *ConstPool) AddMethodref(class, name, desc string) uint16 {
	ci := p.AddClass(class)
	nt := p.AddNameAndType(name, desc)
	return p.intern(fmt.Sprintf("M\x00%d\x00%d", ci, nt), Constant{Tag: TagMethodref, Ref1: ci, Ref2: nt})
}

// AddInterfaceMethodref interns an InterfaceMethodref constant.
func (p *ConstPool) AddInterfaceMethodref(class, name, desc string) uint16 {
	ci := p.AddClass(class)
	nt := p.AddNameAndType(name, desc)
	return p.intern(fmt.Sprintf("I\x00%d\x00%d", ci, nt), Constant{Tag: TagInterfaceMethodref, Ref1: ci, Ref2: nt})
}
