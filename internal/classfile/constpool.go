package classfile

import (
	"fmt"
	"math"
)

// ConstTag identifies the kind of a constant pool entry (JVM spec 4.4).
type ConstTag uint8

// Constant pool tags for the Java 1.2-era format.
const (
	TagUtf8               ConstTag = 1
	TagInteger            ConstTag = 3
	TagFloat              ConstTag = 4
	TagLong               ConstTag = 5
	TagDouble             ConstTag = 6
	TagClass              ConstTag = 7
	TagString             ConstTag = 8
	TagFieldref           ConstTag = 9
	TagMethodref          ConstTag = 10
	TagInterfaceMethodref ConstTag = 11
	TagNameAndType        ConstTag = 12
)

// String returns the spec name of the tag.
func (t ConstTag) String() string {
	switch t {
	case TagUtf8:
		return "Utf8"
	case TagInteger:
		return "Integer"
	case TagFloat:
		return "Float"
	case TagLong:
		return "Long"
	case TagDouble:
		return "Double"
	case TagClass:
		return "Class"
	case TagString:
		return "String"
	case TagFieldref:
		return "Fieldref"
	case TagMethodref:
		return "Methodref"
	case TagInterfaceMethodref:
		return "InterfaceMethodref"
	case TagNameAndType:
		return "NameAndType"
	}
	return fmt.Sprintf("Tag(%d)", uint8(t))
}

// Constant is one constant-pool entry. A single struct (rather than an
// interface per tag) keeps serialization, copying, and pool interning
// simple. Which fields are meaningful depends on Tag:
//
//	Utf8                     Str
//	Integer                  Int
//	Float                    Float
//	Long                     Long
//	Double                   Double
//	Class                    Ref1 = name_index (Utf8)
//	String                   Ref1 = string_index (Utf8)
//	Fieldref / Methodref /
//	InterfaceMethodref       Ref1 = class_index, Ref2 = name_and_type_index
//	NameAndType              Ref1 = name_index, Ref2 = descriptor_index
type Constant struct {
	Tag    ConstTag
	Str    string
	Int    int32
	Float  float32
	Long   int64
	Double float64
	Ref1   uint16
	Ref2   uint16

	// Lazy Utf8 state: the parser validates the modified-UTF8 bytes but
	// defers building the Go string until first touch. raw is kept even
	// after materialization so the encoder can reproduce non-canonical
	// encodings byte-for-byte regardless of what was touched.
	raw  []byte // original modified-UTF8 bytes (Utf8 entries from Parse)
	lazy bool   // raw is set and Str has not been decoded yet
}

// Wide reports whether the constant occupies two pool slots
// (Long and Double do, per the spec's famous design wart).
func (c Constant) Wide() bool { return c.Tag == TagLong || c.Tag == TagDouble }

// ConstPool holds the constant pool. Index 0 is reserved/invalid, exactly
// as on disk; Long and Double entries are followed by an unusable
// placeholder slot. The pool supports interning: the Add* methods return
// the index of an existing identical entry instead of growing the pool,
// which rewriting services rely on to keep transformed classes small.
type ConstPool struct {
	entries []Constant // entries[0] is a zero placeholder
	index   map[poolKey]uint16
	indexed bool // index covers all entries (built lazily after Parse)
	frozen  bool // see Freeze
}

// poolKey is the comparable interning key for a Constant. A struct key
// keeps intern lookups allocation-free (the previous string keys paid a
// fmt.Sprintf per probe, which dominated rewrite-path allocations).
// Float/Double values are keyed by their bit patterns via the num field
// so that distinct NaN payloads stay distinct and -0 != +0, matching
// exact on-disk representation.
type poolKey struct {
	tag  ConstTag
	ref1 uint16
	ref2 uint16
	str  string
	num  uint64
}

// NewConstPool returns an empty pool (containing only the reserved slot 0).
func NewConstPool() *ConstPool {
	return &ConstPool{entries: make([]Constant, 1), index: make(map[poolKey]uint16), indexed: true}
}

// Size returns the constant_pool_count value: number of slots including
// the reserved zeroth slot and Long/Double placeholders.
func (p *ConstPool) Size() int { return len(p.entries) }

// Valid reports whether idx names a usable entry (non-zero, in range, and
// not the dead second slot of a Long/Double).
func (p *ConstPool) Valid(idx uint16) bool {
	if idx == 0 || int(idx) >= len(p.entries) {
		return false
	}
	return p.entries[idx].Tag != 0
}

// Entry returns the constant at idx. It returns an error rather than
// panicking so that phase-1 verification can report malformed indices in
// hostile classfiles gracefully. Touching a lazy Utf8 entry materializes
// its string; callers that only need the tag should use Tag, which
// decodes nothing.
func (p *ConstPool) Entry(idx uint16) (Constant, error) {
	if !p.Valid(idx) {
		return Constant{}, formatErrf(-1, "invalid constant pool index %d (pool size %d)", idx, len(p.entries))
	}
	if p.entries[idx].lazy {
		p.materialize(&p.entries[idx])
	}
	return p.entries[idx], nil
}

// materialize decodes a lazy Utf8 entry's string in place. The raw bytes
// are kept so the encoder still splices the original representation.
func (p *ConstPool) materialize(c *Constant) {
	s, ok := decodeModifiedUTF8(c.raw)
	if !ok {
		// Unreachable for parsed pools: Parse validated the bytes.
		s = string(c.raw)
	}
	c.Str = s
	c.lazy = false
	statUtf8Decoded.Add(1)
}

// Materialize eagerly decodes every lazy Utf8 entry. Lazy decoding
// memoizes by writing into the pool, so any phase that hands the pool to
// concurrent readers (the pipeline's per-method fan-out, the verifier's
// phase 2–3 workers) must call this first.
func (p *ConstPool) Materialize() {
	for i := range p.entries {
		if p.entries[i].lazy {
			p.materialize(&p.entries[i])
		}
	}
}

// ensureIndex builds the interning index on first use. Parsing defers
// both string decoding and index construction; a class that no filter
// adds constants to never pays for either.
func (p *ConstPool) ensureIndex() {
	if p.indexed {
		return
	}
	p.Materialize()
	p.rebuildIndex()
	p.indexed = true
}

// Tag returns the tag at idx, or 0 if the index is invalid.
func (p *ConstPool) Tag(idx uint16) ConstTag {
	if !p.Valid(idx) {
		return 0
	}
	return p.entries[idx].Tag
}

// Utf8 resolves idx as a Utf8 constant.
func (p *ConstPool) Utf8(idx uint16) (string, error) {
	c, err := p.Entry(idx)
	if err != nil {
		return "", err
	}
	if c.Tag != TagUtf8 {
		return "", formatErrf(-1, "constant %d is %s, want Utf8", idx, c.Tag)
	}
	return c.Str, nil
}

// ClassName resolves idx as a Class constant and returns the referenced
// internal class name.
func (p *ConstPool) ClassName(idx uint16) (string, error) {
	c, err := p.Entry(idx)
	if err != nil {
		return "", err
	}
	if c.Tag != TagClass {
		return "", formatErrf(-1, "constant %d is %s, want Class", idx, c.Tag)
	}
	return p.Utf8(c.Ref1)
}

// NameAndType resolves idx as a NameAndType constant, returning the name
// and descriptor strings.
func (p *ConstPool) NameAndType(idx uint16) (name, desc string, err error) {
	c, err := p.Entry(idx)
	if err != nil {
		return "", "", err
	}
	if c.Tag != TagNameAndType {
		return "", "", formatErrf(-1, "constant %d is %s, want NameAndType", idx, c.Tag)
	}
	if name, err = p.Utf8(c.Ref1); err != nil {
		return "", "", err
	}
	if desc, err = p.Utf8(c.Ref2); err != nil {
		return "", "", err
	}
	return name, desc, nil
}

// MemberRef is the resolved form of a Fieldref, Methodref, or
// InterfaceMethodref constant.
type MemberRef struct {
	Class string // internal class name owning the member
	Name  string
	Desc  string
}

func (r MemberRef) String() string { return r.Class + "." + r.Name + r.Desc }

// Ref resolves idx as a member reference constant of any of the three
// reference tags.
func (p *ConstPool) Ref(idx uint16) (MemberRef, error) {
	c, err := p.Entry(idx)
	if err != nil {
		return MemberRef{}, err
	}
	switch c.Tag {
	case TagFieldref, TagMethodref, TagInterfaceMethodref:
	default:
		return MemberRef{}, formatErrf(-1, "constant %d is %s, want a member reference", idx, c.Tag)
	}
	cls, err := p.ClassName(c.Ref1)
	if err != nil {
		return MemberRef{}, err
	}
	name, desc, err := p.NameAndType(c.Ref2)
	if err != nil {
		return MemberRef{}, err
	}
	return MemberRef{Class: cls, Name: name, Desc: desc}, nil
}

// StringValue resolves idx as a String constant and returns its text.
func (p *ConstPool) StringValue(idx uint16) (string, error) {
	c, err := p.Entry(idx)
	if err != nil {
		return "", err
	}
	if c.Tag != TagString {
		return "", formatErrf(-1, "constant %d is %s, want String", idx, c.Tag)
	}
	return p.Utf8(c.Ref1)
}

// Freeze marks the pool immutable (on=true) or mutable again (on=false).
// While frozen, any Add* call that would need to grow the pool panics.
// The rewrite pipeline freezes the pool around its per-method fan-out:
// all constants a method transformation needs must be interned during the
// filter's sequential Prepare step, which is what makes concurrent
// TransformMethod calls race-free and the emitted pool deterministic.
// Interning hits (the entry already exists) remain allowed while frozen.
//
// Freezing also materializes every lazy Utf8 string and builds the
// interning index: both are memoized by writing into the pool, which
// must not race with the concurrent readers the freeze protects.
func (p *ConstPool) Freeze(on bool) {
	if on {
		p.ensureIndex()
	}
	p.frozen = on
}

// append adds a raw entry (no interning) and returns its index.
// It is used by the parser, which must preserve on-disk indices.
func (p *ConstPool) append(c Constant) (uint16, error) {
	if p.frozen {
		panic(fmt.Sprintf("classfile: constant pool mutated while frozen (adding %s); intern all constants in the filter's Prepare step", c.Tag))
	}
	idx := len(p.entries)
	if c.Wide() {
		if idx+1 > 0xFFFF {
			return 0, formatErrf(-1, "constant pool overflow")
		}
		p.entries = append(p.entries, c, Constant{})
	} else {
		if idx > 0xFFFF {
			return 0, formatErrf(-1, "constant pool overflow")
		}
		p.entries = append(p.entries, c)
	}
	return uint16(idx), nil
}

func (p *ConstPool) intern(key poolKey, c Constant) uint16 {
	p.ensureIndex()
	if idx, ok := p.index[key]; ok {
		return idx
	}
	idx, err := p.append(c)
	if err != nil {
		// Pools this large are rejected during parsing; builders that
		// overflow 65535 entries are programming errors.
		panic(err)
	}
	p.index[key] = idx
	return idx
}

// rebuildIndex populates the interning map from the entry slice, so that
// rewriters reuse the class's own entries. Callers must have
// materialized lazy Utf8 strings first (keyOf keys Utf8 entries by Str).
func (p *ConstPool) rebuildIndex() {
	if p.index == nil {
		p.index = make(map[poolKey]uint16, len(p.entries))
	}
	for i := len(p.entries) - 1; i >= 1; i-- {
		c := p.entries[i]
		if key, ok := p.keyOf(c); ok {
			p.index[key] = uint16(i)
		}
	}
}

func (p *ConstPool) keyOf(c Constant) (poolKey, bool) {
	switch c.Tag {
	case TagUtf8:
		return poolKey{tag: TagUtf8, str: c.Str}, true
	case TagInteger:
		return poolKey{tag: TagInteger, num: uint64(uint32(c.Int))}, true
	case TagFloat:
		return poolKey{tag: TagFloat, num: uint64(math.Float32bits(c.Float))}, true
	case TagLong:
		return poolKey{tag: TagLong, num: uint64(c.Long)}, true
	case TagDouble:
		return poolKey{tag: TagDouble, num: math.Float64bits(c.Double)}, true
	case TagClass, TagString:
		return poolKey{tag: c.Tag, ref1: c.Ref1}, true
	case TagNameAndType, TagFieldref, TagMethodref, TagInterfaceMethodref:
		return poolKey{tag: c.Tag, ref1: c.Ref1, ref2: c.Ref2}, true
	}
	return poolKey{}, false
}

// AddUtf8 interns a Utf8 constant and returns its index.
func (p *ConstPool) AddUtf8(s string) uint16 {
	return p.intern(poolKey{tag: TagUtf8, str: s}, Constant{Tag: TagUtf8, Str: s})
}

// AddInteger interns an Integer constant.
func (p *ConstPool) AddInteger(v int32) uint16 {
	return p.intern(poolKey{tag: TagInteger, num: uint64(uint32(v))}, Constant{Tag: TagInteger, Int: v})
}

// AddFloat interns a Float constant.
func (p *ConstPool) AddFloat(v float32) uint16 {
	return p.intern(poolKey{tag: TagFloat, num: uint64(math.Float32bits(v))}, Constant{Tag: TagFloat, Float: v})
}

// AddLong interns a Long constant (occupies two slots).
func (p *ConstPool) AddLong(v int64) uint16 {
	return p.intern(poolKey{tag: TagLong, num: uint64(v)}, Constant{Tag: TagLong, Long: v})
}

// AddDouble interns a Double constant (occupies two slots).
func (p *ConstPool) AddDouble(v float64) uint16 {
	return p.intern(poolKey{tag: TagDouble, num: math.Float64bits(v)}, Constant{Tag: TagDouble, Double: v})
}

// AddClass interns a Class constant for the given internal name.
func (p *ConstPool) AddClass(name string) uint16 {
	ni := p.AddUtf8(name)
	return p.intern(poolKey{tag: TagClass, ref1: ni}, Constant{Tag: TagClass, Ref1: ni})
}

// AddString interns a String constant with the given text.
func (p *ConstPool) AddString(s string) uint16 {
	si := p.AddUtf8(s)
	return p.intern(poolKey{tag: TagString, ref1: si}, Constant{Tag: TagString, Ref1: si})
}

// AddNameAndType interns a NameAndType constant.
func (p *ConstPool) AddNameAndType(name, desc string) uint16 {
	ni := p.AddUtf8(name)
	di := p.AddUtf8(desc)
	return p.intern(poolKey{tag: TagNameAndType, ref1: ni, ref2: di}, Constant{Tag: TagNameAndType, Ref1: ni, Ref2: di})
}

// AddFieldref interns a Fieldref constant.
func (p *ConstPool) AddFieldref(class, name, desc string) uint16 {
	ci := p.AddClass(class)
	nt := p.AddNameAndType(name, desc)
	return p.intern(poolKey{tag: TagFieldref, ref1: ci, ref2: nt}, Constant{Tag: TagFieldref, Ref1: ci, Ref2: nt})
}

// AddMethodref interns a Methodref constant.
func (p *ConstPool) AddMethodref(class, name, desc string) uint16 {
	ci := p.AddClass(class)
	nt := p.AddNameAndType(name, desc)
	return p.intern(poolKey{tag: TagMethodref, ref1: ci, ref2: nt}, Constant{Tag: TagMethodref, Ref1: ci, Ref2: nt})
}

// AddInterfaceMethodref interns an InterfaceMethodref constant.
func (p *ConstPool) AddInterfaceMethodref(class, name, desc string) uint16 {
	ci := p.AddClass(class)
	nt := p.AddNameAndType(name, desc)
	return p.intern(poolKey{tag: TagInterfaceMethodref, ref1: ci, ref2: nt}, Constant{Tag: TagInterfaceMethodref, Ref1: ci, Ref2: nt})
}
