// Package classfile implements a reader and writer for the Java class file
// format (JVM specification, chapter 4, as of the Java 1.2 era targeted by
// the SOSP'99 distributed virtual machine paper).
//
// The package is the lowest substrate of the DVM: every static service —
// verifier, security rewriter, auditor, optimizer, compiler — parses
// incoming classes with it, transforms them, and re-serializes them. It is
// therefore built to round-trip: Parse followed by Encode reproduces an
// equivalent classfile, and the constant pool supports interning new
// entries so rewriters can splice in references without disturbing
// existing indices.
package classfile

import "fmt"

// Magic is the four-byte signature that begins every Java class file.
const Magic = 0xCAFEBABE

// Class access and property flags (JVM spec table 4.1).
const (
	AccPublic       = 0x0001
	AccPrivate      = 0x0002
	AccProtected    = 0x0004
	AccStatic       = 0x0008
	AccFinal        = 0x0010
	AccSuper        = 0x0020 // on classes
	AccSynchronized = 0x0020 // on methods
	AccVolatile     = 0x0040
	AccTransient    = 0x0080
	AccNative       = 0x0100
	AccInterface    = 0x0200
	AccAbstract     = 0x0400
)

// ClassFile is the in-memory representation of a parsed .class file.
// Indices (ThisClass, SuperClass, name/descriptor indices inside members)
// refer to entries in Pool exactly as in the on-disk format; accessor
// methods resolve them to strings.
type ClassFile struct {
	MinorVersion uint16
	MajorVersion uint16
	Pool         *ConstPool
	AccessFlags  uint16
	ThisClass    uint16 // Pool index of a Class constant
	SuperClass   uint16 // Pool index of a Class constant, 0 for java/lang/Object
	Interfaces   []uint16
	Fields       []*Member
	Methods      []*Member
	Attributes   []*Attribute

	// Zero-copy splice state, set by Parse and zero for classes built
	// programmatically. raw is the buffer the class was parsed from; the
	// recorded offsets let Encode splice byte ranges that no filter
	// touched straight into the output instead of re-serializing them.
	// Encode falls back to a full re-encode whenever the pool was
	// replaced wholesale (Pool != parsedPool, e.g. by CompactPool).
	raw           []byte
	poolEnd       int        // offset just past the last constant pool entry
	attrsStart    int        // offset of the class-level attributes_count
	parsedPool    *ConstPool // pool produced by Parse, for identity check
	parsedEntries int        // pool slot count at parse time
	attrsDirty    bool       // class-level attribute list was modified
}

// Member is a field or method description (field_info / method_info).
type Member struct {
	AccessFlags     uint16
	NameIndex       uint16
	DescriptorIndex uint16
	Attributes      []*Attribute

	// Splice state: the member's byte range in owner.raw, valid while the
	// member is unmodified. owner guards against splicing a member that
	// was moved into a different class's member list.
	owner              *ClassFile
	spanStart, spanEnd int
	dirty              bool
}

// MarkDirty records that the member was structurally modified, forcing
// Encode to re-serialize it instead of splicing its original bytes.
// SetCode calls this automatically; callers that mutate a member's
// fields or attribute payloads directly must call it themselves.
func (m *Member) MarkDirty() { m.dirty = true }

// Dirty reports whether the member was marked modified since parsing.
func (m *Member) Dirty() bool { return m.dirty }

// MarkAttrsDirty records that the class-level attribute list was
// modified. AddAttribute and RemoveAttribute call this automatically.
func (cf *ClassFile) MarkAttrsDirty() { cf.attrsDirty = true }

// Attribute is a named attribute with its raw payload. Known attributes
// (Code, ConstantValue, Exceptions, SourceFile, LineNumberTable) can be
// decoded with the typed helpers in attributes.go; unknown attributes are
// preserved verbatim so rewriting never drops vendor data.
type Attribute struct {
	NameIndex uint16
	Info      []byte
}

// Name returns the class's fully qualified internal name
// (e.g. "java/lang/String").
func (cf *ClassFile) Name() string {
	n, err := cf.Pool.ClassName(cf.ThisClass)
	if err != nil {
		return ""
	}
	return n
}

// SuperName returns the internal name of the superclass, or "" for
// java/lang/Object (whose super_class index is zero).
func (cf *ClassFile) SuperName() string {
	if cf.SuperClass == 0 {
		return ""
	}
	n, err := cf.Pool.ClassName(cf.SuperClass)
	if err != nil {
		return ""
	}
	return n
}

// InterfaceNames resolves the direct superinterface names.
func (cf *ClassFile) InterfaceNames() []string {
	out := make([]string, 0, len(cf.Interfaces))
	for _, idx := range cf.Interfaces {
		n, err := cf.Pool.ClassName(idx)
		if err != nil {
			continue
		}
		out = append(out, n)
	}
	return out
}

// IsInterface reports whether the class was declared as an interface.
func (cf *ClassFile) IsInterface() bool { return cf.AccessFlags&AccInterface != 0 }

// FindMethod returns the first method with the given name and descriptor,
// or nil if the class declares no such method.
func (cf *ClassFile) FindMethod(name, desc string) *Member {
	for _, m := range cf.Methods {
		if cf.MemberName(m) == name && cf.MemberDescriptor(m) == desc {
			return m
		}
	}
	return nil
}

// FindField returns the first field with the given name and descriptor,
// or nil if the class declares no such field.
func (cf *ClassFile) FindField(name, desc string) *Member {
	for _, f := range cf.Fields {
		if cf.MemberName(f) == name && cf.MemberDescriptor(f) == desc {
			return f
		}
	}
	return nil
}

// MemberName resolves a member's name through the constant pool.
func (cf *ClassFile) MemberName(m *Member) string {
	s, err := cf.Pool.Utf8(m.NameIndex)
	if err != nil {
		return ""
	}
	return s
}

// MemberDescriptor resolves a member's type descriptor through the pool.
func (cf *ClassFile) MemberDescriptor(m *Member) string {
	s, err := cf.Pool.Utf8(m.DescriptorIndex)
	if err != nil {
		return ""
	}
	return s
}

// AttrName resolves an attribute's name through the constant pool.
func (cf *ClassFile) AttrName(a *Attribute) string {
	s, err := cf.Pool.Utf8(a.NameIndex)
	if err != nil {
		return ""
	}
	return s
}

// FindAttr returns the first attribute with the given name in the list,
// or nil if absent.
func (cf *ClassFile) FindAttr(attrs []*Attribute, name string) *Attribute {
	for _, a := range attrs {
		if cf.AttrName(a) == name {
			return a
		}
	}
	return nil
}

// FormatError describes a structural malformation found while parsing or
// validating a class file. The verifier's phase 1 reports these.
type FormatError struct {
	Offset int    // byte offset where the problem was detected, -1 if unknown
	Msg    string // human-readable description
}

func (e *FormatError) Error() string {
	if e.Offset >= 0 {
		return fmt.Sprintf("classfile: offset %d: %s", e.Offset, e.Msg)
	}
	return "classfile: " + e.Msg
}

func formatErrf(off int, format string, args ...any) error {
	return &FormatError{Offset: off, Msg: fmt.Sprintf(format, args...)}
}
