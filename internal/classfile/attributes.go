package classfile

import "encoding/binary"

// Standard attribute names used across the DVM services.
const (
	AttrCode            = "Code"
	AttrConstantValue   = "ConstantValue"
	AttrExceptions      = "Exceptions"
	AttrSourceFile      = "SourceFile"
	AttrLineNumberTable = "LineNumberTable"
	AttrSynthetic       = "Synthetic"
	AttrDeprecated      = "Deprecated"

	// AttrDVMReflect is the self-describing reflection attribute added by
	// the DVM's reflection service (§4.3 of the paper: the verifier was
	// re-pointed from the JDK's slow reflective interface to these
	// attributes). Its payload is produced by the verifier package.
	AttrDVMReflect = "dvm.Reflect"
	// AttrDVMSignature carries the static services' HMAC signature (§2).
	AttrDVMSignature = "dvm.Signature"
	// AttrDVMProfile carries first-use profile data consumed by the
	// repartitioning optimizer (§5).
	AttrDVMProfile = "dvm.Profile"
)

// ExceptionHandler is one entry of a Code attribute's exception table.
// CatchType is a Class constant index, or 0 for a catch-all (finally).
type ExceptionHandler struct {
	StartPC   uint16
	EndPC     uint16
	HandlerPC uint16
	CatchType uint16
}

// Code is the decoded form of a method's Code attribute.
type Code struct {
	MaxStack   uint16
	MaxLocals  uint16
	Bytecode   []byte
	Handlers   []ExceptionHandler
	Attributes []*Attribute
}

// DecodeCode decodes an attribute known to be a Code attribute.
func DecodeCode(a *Attribute) (*Code, error) {
	statAttrsDecoded.Add(1)
	r := &reader{data: a.Info}
	c := &Code{
		MaxStack:  r.u2(),
		MaxLocals: r.u2(),
	}
	codeLen := int(r.u4())
	if r.err == nil && codeLen == 0 {
		return nil, formatErrf(r.off, "Code attribute with empty bytecode")
	}
	c.Bytecode = r.bytes(codeLen)
	handlerCount := int(r.u2())
	if r.err == nil && handlerCount*8 > len(a.Info)-r.off {
		return nil, formatErrf(r.off, "exception table count %d exceeds attribute", handlerCount)
	}
	for i := 0; i < handlerCount && r.err == nil; i++ {
		c.Handlers = append(c.Handlers, ExceptionHandler{
			StartPC:   r.u2(),
			EndPC:     r.u2(),
			HandlerPC: r.u2(),
			CatchType: r.u2(),
		})
	}
	attrs, err := parseAttributes(r)
	if err != nil {
		return nil, err
	}
	c.Attributes = attrs
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(a.Info) {
		return nil, formatErrf(r.off, "trailing bytes in Code attribute")
	}
	return c, nil
}

// Encode serializes the Code structure into attribute payload form.
func (c *Code) Encode() ([]byte, error) {
	size := 2 + 2 + 4 + len(c.Bytecode) + 2 + 8*len(c.Handlers) + attributesSize(c.Attributes)
	w := &writer{buf: make([]byte, 0, size)}
	w.u2(c.MaxStack)
	w.u2(c.MaxLocals)
	if len(c.Bytecode) > 0xFFFFFFF {
		return nil, formatErrf(-1, "bytecode too long (%d)", len(c.Bytecode))
	}
	w.u4(uint32(len(c.Bytecode)))
	w.raw(c.Bytecode)
	if len(c.Handlers) > 0xFFFF {
		return nil, formatErrf(-1, "too many exception handlers (%d)", len(c.Handlers))
	}
	w.u2(uint16(len(c.Handlers)))
	for _, h := range c.Handlers {
		w.u2(h.StartPC)
		w.u2(h.EndPC)
		w.u2(h.HandlerPC)
		w.u2(h.CatchType)
	}
	if err := encodeAttributes(w, c.Attributes); err != nil {
		return nil, err
	}
	return w.buf, nil
}

// CodeOf returns the decoded Code attribute of method m, or nil if the
// method has none (abstract and native methods).
func (cf *ClassFile) CodeOf(m *Member) (*Code, error) {
	a := cf.FindAttr(m.Attributes, AttrCode)
	if a == nil {
		return nil, nil
	}
	return DecodeCode(a)
}

// SetCode replaces (or installs) method m's Code attribute with the
// encoding of c. Rewriting services call this after transforming
// bytecode. The member is marked dirty so Encode re-serializes it.
func (cf *ClassFile) SetCode(m *Member, c *Code) error {
	payload, err := c.Encode()
	if err != nil {
		return err
	}
	m.MarkDirty()
	nameIdx := cf.Pool.AddUtf8(AttrCode)
	for _, a := range m.Attributes {
		if cf.AttrName(a) == AttrCode {
			a.Info = payload
			a.NameIndex = nameIdx
			return nil
		}
	}
	m.Attributes = append(m.Attributes, &Attribute{NameIndex: nameIdx, Info: payload})
	return nil
}

// LineNumberEntry maps a bytecode offset to a source line.
type LineNumberEntry struct {
	StartPC uint16
	Line    uint16
}

// DecodeLineNumberTable decodes a LineNumberTable attribute payload.
func DecodeLineNumberTable(a *Attribute) ([]LineNumberEntry, error) {
	statAttrsDecoded.Add(1)
	r := &reader{data: a.Info}
	n := int(r.u2())
	if r.err == nil && n*4 != len(a.Info)-r.off {
		return nil, formatErrf(r.off, "LineNumberTable length mismatch")
	}
	out := make([]LineNumberEntry, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		out = append(out, LineNumberEntry{StartPC: r.u2(), Line: r.u2()})
	}
	return out, r.err
}

// ConstantValueIndex decodes a ConstantValue attribute payload, returning
// the constant pool index of the initial value.
func ConstantValueIndex(a *Attribute) (uint16, error) {
	if len(a.Info) != 2 {
		return 0, formatErrf(-1, "ConstantValue attribute must be 2 bytes, got %d", len(a.Info))
	}
	return binary.BigEndian.Uint16(a.Info), nil
}

// DecodeExceptions decodes an Exceptions attribute payload into the list
// of Class constant indices the method declares it may throw.
func DecodeExceptions(a *Attribute) ([]uint16, error) {
	statAttrsDecoded.Add(1)
	r := &reader{data: a.Info}
	n := int(r.u2())
	if r.err == nil && n*2 != len(a.Info)-r.off {
		return nil, formatErrf(r.off, "Exceptions attribute length mismatch")
	}
	out := make([]uint16, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		out = append(out, r.u2())
	}
	return out, r.err
}

// AddAttribute appends a named attribute with the given payload to the
// class-level attribute list and marks the list dirty.
func (cf *ClassFile) AddAttribute(name string, payload []byte) {
	cf.MarkAttrsDirty()
	cf.Attributes = append(cf.Attributes, &Attribute{
		NameIndex: cf.Pool.AddUtf8(name),
		Info:      payload,
	})
}

// RemoveAttribute deletes all class-level attributes with the given name
// and reports whether any were removed.
func (cf *ClassFile) RemoveAttribute(name string) bool {
	kept := cf.Attributes[:0]
	removed := false
	for _, a := range cf.Attributes {
		if cf.AttrName(a) == name {
			removed = true
			continue
		}
		kept = append(kept, a)
	}
	cf.Attributes = kept
	if removed {
		cf.MarkAttrsDirty()
	}
	return removed
}
