// Package security implements the DVM's distributed security service
// (paper §3.2) and the monolithic baseline it is evaluated against.
//
// The model derives from DTOS: security identifiers (protection domains)
// are associated with threads and security-critical objects, permissions
// with operations. An organization-wide policy — written in a high-level
// XML-based language — specifies:
//
//   - the access matrix relating security identifiers to permissions
//     (who may perform which operation on which targets);
//   - the mapping from named resources to security identifiers;
//   - the mapping from security operations to application code, i.e.
//     where the static service must insert access checks.
//
// The static component (Filter) rewrites incoming applications so that
// resource accesses are preceded by calls to the client-side enforcement
// manager (dvm/Enforce.check). The dynamic component (Manager) resolves
// those checks against the central policy, caching results, with a
// cache-invalidation protocol that lets the server propagate policy
// changes.
//
// StackIntrospection implements the JDK 1.2-style baseline: protection
// domains derived from code source, checked by walking the thread's call
// stack at the library hook points the original system designers
// anticipated.
package security

import (
	"encoding/xml"
	"fmt"
	"strings"
)

// Policy is the parsed organization-wide policy.
type Policy struct {
	Domains    []Domain
	Assigns    []Assignment
	Resources  []Resource
	Operations []Operation

	domainByID map[string]*Domain
}

// Domain is one protection domain (security identifier) with its granted
// permissions.
type Domain struct {
	ID     string
	Grants []Grant
}

// Grant allows a permission on targets matching a glob pattern
// ("*" suffix wildcard; empty pattern means any target).
type Grant struct {
	Permission string
	Target     string
}

// Assignment maps code (by class-name codebase pattern) to a domain.
type Assignment struct {
	Domain   string
	Codebase string
}

// Resource maps a named resource pattern to a security identifier; the
// enforcement manager consults it to refine file-target decisions.
type Resource struct {
	Name string
	SID  string
}

// Operation maps a security operation to application code: calls to
// Class.Method(Desc) must be preceded by a check of Permission. TargetArg
// says how the check obtains its target operand:
//
//	"arg"  — the operation's last argument is a String naming the target
//	         (available on top of the operand stack at the call site);
//	"none" — no statically accessible target; the check passes "".
type Operation struct {
	Permission string
	Class      string
	Method     string
	Desc       string // "" matches any descriptor
	TargetArg  string // "arg" or "none"
}

// xml wire format
type xmlPolicy struct {
	XMLName    xml.Name       `xml:"policy"`
	Domains    []xmlDomain    `xml:"domain"`
	Assigns    []xmlAssign    `xml:"assign"`
	Resources  []xmlResource  `xml:"resource"`
	Operations []xmlOperation `xml:"operation"`
}

type xmlDomain struct {
	ID     string     `xml:"id,attr"`
	Grants []xmlGrant `xml:"grant"`
}

type xmlGrant struct {
	Permission string `xml:"permission,attr"`
	Target     string `xml:"target,attr"`
}

type xmlAssign struct {
	Domain   string `xml:"domain,attr"`
	Codebase string `xml:"codebase,attr"`
}

type xmlResource struct {
	Name string `xml:"name,attr"`
	SID  string `xml:"sid,attr"`
}

type xmlOperation struct {
	Permission string `xml:"permission,attr"`
	Class      string `xml:"class,attr"`
	Method     string `xml:"method,attr"`
	Desc       string `xml:"desc,attr"`
	TargetArg  string `xml:"target,attr"`
}

// ParsePolicy parses and validates the XML policy text.
func ParsePolicy(data []byte) (*Policy, error) {
	var xp xmlPolicy
	if err := xml.Unmarshal(data, &xp); err != nil {
		return nil, fmt.Errorf("security: policy parse: %w", err)
	}
	p := &Policy{domainByID: make(map[string]*Domain)}
	seen := make(map[string]bool)
	for _, d := range xp.Domains {
		if d.ID == "" {
			return nil, fmt.Errorf("security: domain without id")
		}
		if seen[d.ID] {
			return nil, fmt.Errorf("security: duplicate domain %q", d.ID)
		}
		seen[d.ID] = true
		nd := Domain{ID: d.ID}
		for _, g := range d.Grants {
			if g.Permission == "" {
				return nil, fmt.Errorf("security: domain %q: grant without permission", d.ID)
			}
			nd.Grants = append(nd.Grants, Grant{Permission: g.Permission, Target: g.Target})
		}
		p.Domains = append(p.Domains, nd)
	}
	for i := range p.Domains {
		p.domainByID[p.Domains[i].ID] = &p.Domains[i]
	}
	for _, a := range xp.Assigns {
		if _, ok := p.domainByID[a.Domain]; !ok {
			return nil, fmt.Errorf("security: assignment to unknown domain %q", a.Domain)
		}
		if a.Codebase == "" {
			return nil, fmt.Errorf("security: assignment with empty codebase")
		}
		p.Assigns = append(p.Assigns, Assignment{Domain: a.Domain, Codebase: a.Codebase})
	}
	for _, r := range xp.Resources {
		if r.Name == "" || r.SID == "" {
			return nil, fmt.Errorf("security: resource mapping needs name and sid")
		}
		p.Resources = append(p.Resources, Resource(r))
	}
	for _, o := range xp.Operations {
		if o.Permission == "" || o.Class == "" || o.Method == "" {
			return nil, fmt.Errorf("security: operation mapping needs permission, class, method")
		}
		ta := o.TargetArg
		if ta == "" {
			ta = "none"
		}
		if ta != "arg" && ta != "none" {
			return nil, fmt.Errorf("security: operation target mode %q invalid", o.TargetArg)
		}
		p.Operations = append(p.Operations, Operation{
			Permission: o.Permission, Class: o.Class, Method: o.Method,
			Desc: o.Desc, TargetArg: ta,
		})
	}
	return p, nil
}

// Encode serializes the policy back to XML (used by dvmpolicy and tests).
func (p *Policy) Encode() ([]byte, error) {
	xp := xmlPolicy{}
	for _, d := range p.Domains {
		xd := xmlDomain{ID: d.ID}
		for _, g := range d.Grants {
			xd.Grants = append(xd.Grants, xmlGrant(g))
		}
		xp.Domains = append(xp.Domains, xd)
	}
	for _, a := range p.Assigns {
		xp.Assigns = append(xp.Assigns, xmlAssign(a))
	}
	for _, r := range p.Resources {
		xp.Resources = append(xp.Resources, xmlResource(r))
	}
	for _, o := range p.Operations {
		xp.Operations = append(xp.Operations, xmlOperation{
			Permission: o.Permission, Class: o.Class, Method: o.Method,
			Desc: o.Desc, TargetArg: o.TargetArg,
		})
	}
	return xml.MarshalIndent(xp, "", "  ")
}

// DomainFor resolves the protection domain for a class name through the
// codebase assignments (first match wins); "" if unassigned.
func (p *Policy) DomainFor(className string) string {
	for _, a := range p.Assigns {
		if matchPattern(a.Codebase, className) {
			return a.Domain
		}
	}
	return ""
}

// Allowed evaluates the access matrix: may sid perform permission on
// target?
func (p *Policy) Allowed(sid, permission, target string) bool {
	d, ok := p.domainByID[sid]
	if !ok {
		return false
	}
	for _, g := range d.Grants {
		if g.Permission != permission && g.Permission != "*" {
			continue
		}
		if g.Target == "" || g.Target == "*" || matchPattern(g.Target, target) {
			return true
		}
	}
	return false
}

// GrantsFor returns the grant rows for a domain (the unit of policy
// download in the enforcement manager's first-touch fetch).
func (p *Policy) GrantsFor(sid string) []Grant {
	d, ok := p.domainByID[sid]
	if !ok {
		return nil
	}
	out := make([]Grant, len(d.Grants))
	copy(out, d.Grants)
	return out
}

// ResourceSID resolves a target name to its resource security identifier,
// or "" if unmapped.
func (p *Policy) ResourceSID(name string) string {
	for _, r := range p.Resources {
		if matchPattern(r.Name, name) {
			return r.SID
		}
	}
	return ""
}

// matchPattern implements the policy language's glob: a literal match, or
// a prefix match when the pattern ends in '*'.
func matchPattern(pattern, s string) bool {
	if pattern == "*" {
		return true
	}
	if strings.HasSuffix(pattern, "*") {
		return strings.HasPrefix(s, pattern[:len(pattern)-1])
	}
	return pattern == s
}
