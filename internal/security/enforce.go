package security

import (
	"sync"

	"dvm/internal/jvm"
)

// Server is the centralized network security service: the single logical
// point of control for the organization's policy. Enforcement managers
// register with it, download domain rules on first touch, and receive
// invalidations when the policy changes.
type Server struct {
	mu       sync.Mutex
	policy   *Policy
	managers map[*Manager]struct{}

	// FetchDelay simulates the network cost of the first-touch policy
	// download (the "download" column of Figure 9). It is invoked once
	// per manager domain fetch.
	FetchDelay func()

	// Stats
	Fetches       int64
	Decisions     int64
	Invalidations int64
}

// NewServer creates a security server around a policy.
func NewServer(policy *Policy) *Server {
	return &Server{policy: policy, managers: make(map[*Manager]struct{})}
}

// Policy returns the current policy.
func (s *Server) Policy() *Policy {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.policy
}

// FetchDomain is the manager's first-touch download: the grant rows for
// one security identifier.
func (s *Server) FetchDomain(sid string) []Grant {
	s.mu.Lock()
	delay := s.FetchDelay
	grants := s.policy.GrantsFor(sid)
	s.Fetches++
	s.mu.Unlock()
	if delay != nil {
		delay()
	}
	return grants
}

// Decide answers one access question directly (used for cache misses on
// targets not covered by the downloaded rows).
func (s *Server) Decide(sid, permission, target string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.Decisions++
	return s.policy.Allowed(sid, permission, target)
}

// register attaches a manager for invalidation pushes.
func (s *Server) register(m *Manager) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.managers[m] = struct{}{}
}

// UpdatePolicy swaps the organization policy and pushes cache
// invalidations to every registered enforcement manager — the
// cache-invalidation protocol of §3.2. Policy changes take effect without
// any action from (or the cooperation of) client users.
func (s *Server) UpdatePolicy(p *Policy) {
	s.mu.Lock()
	s.policy = p
	ms := make([]*Manager, 0, len(s.managers))
	for m := range s.managers {
		ms = append(ms, m)
	}
	s.Invalidations += int64(len(ms))
	s.mu.Unlock()
	for _, m := range ms {
		m.invalidate()
	}
}

// Manager is the client-side enforcement manager: the small dynamic
// component that executes the access checks the static service injected.
// It downloads its domain's rules on first use, evaluates checks locally,
// and caches decisions.
type Manager struct {
	server *Server
	sid    string

	// NoCache disables client-side caching entirely: every check becomes
	// a remote decision at the server. This is the naive
	// service-distribution strawman of §2 ("moved, intact, to remote
	// hosts ... prohibitively expensive"), kept for the ablation
	// benchmarks.
	NoCache bool

	// OnDegraded is invoked (outside the manager lock) whenever a check
	// is denied because the security server was unreachable — the
	// audited Degraded record. Security fails closed: an outage can only
	// remove permissions, never grant them.
	OnDegraded func(sid, permission, target string, err error)

	mu      sync.Mutex
	grants  []Grant
	fetched bool
	cache   map[string]bool

	// fetchOverride replaces the in-process server download with another
	// transport (the HTTP RemoteManager). An error means the server was
	// unreachable: the check fails closed and the download is retried on
	// the next first-touch.
	fetchOverride func(sid string) ([]Grant, error)

	// Stats
	CacheHits   int64
	CacheMisses int64
	Downloads   int64
	// DegradedDenies counts checks denied because the server was
	// unreachable (fail-closed outcomes, not policy decisions).
	DegradedDenies int64
}

// NewManager creates an enforcement manager for a client running under
// the given security identifier and registers it with the server.
func NewManager(server *Server, sid string) *Manager {
	m := &Manager{server: server, sid: sid, cache: make(map[string]bool)}
	server.register(m)
	return m
}

// SID returns the client's security identifier.
func (m *Manager) SID() string { return m.sid }

// invalidate drops all cached decisions and the downloaded rules.
func (m *Manager) invalidate() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cache = make(map[string]bool)
	m.grants = nil
	m.fetched = false
}

// allowed evaluates one access question, downloading the domain rules on
// first touch and caching the result.
func (m *Manager) allowed(permission, target string) bool {
	if m.NoCache {
		// Remote round trip per check, including the transfer delay.
		if m.server.FetchDelay != nil {
			m.server.FetchDelay()
		}
		return m.server.Decide(m.sid, permission, target)
	}
	key := permission + "\x00" + target
	m.mu.Lock()
	if v, ok := m.cache[key]; ok {
		m.CacheHits++
		m.mu.Unlock()
		return v
	}
	m.CacheMisses++
	if !m.fetched {
		m.fetched = true
		m.Downloads++
		fetch := m.fetchOverride
		m.mu.Unlock()
		var grants []Grant
		var ferr error
		if fetch != nil {
			grants, ferr = fetch(m.sid) // network fetch outside the lock
		} else {
			grants = m.server.FetchDomain(m.sid)
		}
		m.mu.Lock()
		if ferr != nil {
			// Fail closed: deny this check without caching the denial
			// (it reflects an outage, not policy), and let the next
			// first-touch retry the download.
			m.fetched = false
			m.DegradedDenies++
			hook := m.OnDegraded
			m.mu.Unlock()
			if hook != nil {
				hook(m.sid, permission, target, ferr)
			}
			return false
		}
		m.grants = grants
	}
	v := false
	for _, g := range m.grants {
		if g.Permission != permission && g.Permission != "*" {
			continue
		}
		if g.Target == "" || g.Target == "*" || matchPattern(g.Target, target) {
			v = true
			break
		}
	}
	m.cache[key] = v
	m.mu.Unlock()
	return v
}

// Check implements jvm.AccessChecker: the entry point behind
// dvm/Enforce.check.
func (m *Manager) Check(t *jvm.Thread, permission, target string) *jvm.Object {
	if m.allowed(permission, target) {
		return nil
	}
	return t.VM().Throw("java/lang/SecurityException", permission+" denied on "+target)
}

var _ jvm.AccessChecker = (*Manager)(nil)
