package security

import (
	"bytes"
	"strings"
	"testing"

	"dvm/internal/classfile"
	"dvm/internal/classgen"
	"dvm/internal/jvm"
	"dvm/internal/rewrite"
)

const testPolicyXML = `
<policy>
  <domain id="apps">
    <grant permission="property.get" target="*"/>
    <grant permission="file.open" target="/tmp/*"/>
    <grant permission="file.read" target="*"/>
    <grant permission="thread.setPriority"/>
  </domain>
  <domain id="untrusted">
    <grant permission="property.get" target="java.version"/>
  </domain>
  <assign domain="apps" codebase="app/*"/>
  <assign domain="untrusted" codebase="evil/*"/>
  <resource name="/etc/*" sid="system-files"/>
  <operation permission="file.open" class="java/io/FileInputStream" method="&lt;init&gt;" desc="(Ljava/lang/String;)V" target="arg"/>
  <operation permission="file.read" class="java/io/FileInputStream" method="read"/>
  <operation permission="property.get" class="java/lang/System" method="getProperty" desc="(Ljava/lang/String;)Ljava/lang/String;" target="arg"/>
  <operation permission="thread.setPriority" class="java/lang/Thread" method="setPriority"/>
</policy>`

func testPolicy(t *testing.T) *Policy {
	t.Helper()
	p, err := ParsePolicy([]byte(testPolicyXML))
	if err != nil {
		t.Fatalf("ParsePolicy: %v", err)
	}
	return p
}

func TestPolicyParseAndAccessMatrix(t *testing.T) {
	p := testPolicy(t)
	if len(p.Domains) != 2 || len(p.Operations) != 4 {
		t.Fatalf("domains=%d operations=%d", len(p.Domains), len(p.Operations))
	}
	cases := []struct {
		sid, perm, target string
		want              bool
	}{
		{"apps", "property.get", "user.name", true},
		{"apps", "file.open", "/tmp/x", true},
		{"apps", "file.open", "/etc/passwd", false},
		{"apps", "thread.setPriority", "", true},
		{"untrusted", "property.get", "java.version", true},
		{"untrusted", "property.get", "user.name", false},
		{"untrusted", "file.open", "/tmp/x", false},
		{"nonexistent", "property.get", "x", false},
	}
	for _, c := range cases {
		if got := p.Allowed(c.sid, c.perm, c.target); got != c.want {
			t.Errorf("Allowed(%s, %s, %s) = %v, want %v", c.sid, c.perm, c.target, got, c.want)
		}
	}
	if p.DomainFor("app/Main") != "apps" || p.DomainFor("evil/X") != "untrusted" || p.DomainFor("other/Y") != "" {
		t.Error("DomainFor mismatch")
	}
	if p.ResourceSID("/etc/passwd") != "system-files" || p.ResourceSID("/tmp/x") != "" {
		t.Error("ResourceSID mismatch")
	}
}

func TestPolicyRoundTrip(t *testing.T) {
	p := testPolicy(t)
	data, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	p2, err := ParsePolicy(data)
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if len(p2.Domains) != len(p.Domains) || len(p2.Operations) != len(p.Operations) ||
		len(p2.Assigns) != len(p.Assigns) || len(p2.Resources) != len(p.Resources) {
		t.Error("round trip lost entries")
	}
	if !p2.Allowed("apps", "file.open", "/tmp/y") {
		t.Error("round-tripped policy lost grants")
	}
}

func TestPolicyParseErrors(t *testing.T) {
	bad := []string{
		`<policy><domain/></policy>`,
		`<policy><domain id="a"/><domain id="a"/></policy>`,
		`<policy><assign domain="ghost" codebase="x/*"/></policy>`,
		`<policy><domain id="a"><grant/></domain></policy>`,
		`<policy><operation permission="p" class="c"/></policy>`,
		`<policy><operation permission="p" class="c" method="m" target="weird"/></policy>`,
		`not xml at all<`,
	}
	for _, s := range bad {
		if _, err := ParsePolicy([]byte(s)); err == nil {
			t.Errorf("accepted %q", s)
		}
	}
}

// buildFileApp builds app/F with open(String) (FileInputStream ctor),
// openAndRead(String) and getProp(String).
func buildFileApp() *classgen.ClassBuilder {
	b := classgen.NewClass("app/F", "java/lang/Object")
	open := b.Method(classfile.AccPublic|classfile.AccStatic, "open", "(Ljava/lang/String;)V")
	open.NewDup("java/io/FileInputStream")
	open.ALoad(0)
	open.InvokeSpecial("java/io/FileInputStream", "<init>", "(Ljava/lang/String;)V")
	open.InvokeVirtual("java/io/FileInputStream", "close", "()V")
	open.Return()

	rd := b.Method(classfile.AccPublic|classfile.AccStatic, "openAndRead", "(Ljava/lang/String;)I")
	rd.NewDup("java/io/FileInputStream")
	rd.ALoad(0)
	rd.InvokeSpecial("java/io/FileInputStream", "<init>", "(Ljava/lang/String;)V")
	rd.AStore(1)
	rd.ALoad(1).InvokeVirtual("java/io/FileInputStream", "read", "()I")
	rd.IReturn()

	gp := b.Method(classfile.AccPublic|classfile.AccStatic, "getProp", "(Ljava/lang/String;)Ljava/lang/String;")
	gp.ALoad(0)
	gp.InvokeStatic("java/lang/System", "getProperty", "(Ljava/lang/String;)Ljava/lang/String;")
	gp.AReturn()
	return b
}

// dvmClient rewrites the class through the security filter and boots a
// client with an enforcement manager.
func dvmClient(t *testing.T, p *Policy, b *classgen.ClassBuilder, sid string) (*jvm.VM, *Manager, *Server) {
	t.Helper()
	data, err := b.BuildBytes()
	if err != nil {
		t.Fatal(err)
	}
	ctx := rewrite.NewContext()
	out, err := rewrite.NewPipeline(Filter(p)).Process(data, ctx)
	if err != nil {
		t.Fatalf("security filter: %v", err)
	}
	if n, _ := ctx.Notes[NoteChecksInserted].(int); n == 0 {
		t.Fatal("no checks inserted")
	}
	cf, _ := classfile.Parse(out)
	vm, err := jvm.New(jvm.MapLoader{cf.Name(): out}, &bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(p)
	mgr := NewManager(srv, sid)
	vm.CheckAccess = mgr
	return vm, mgr, srv
}

func TestDVMEnforcementAllowsAndDenies(t *testing.T) {
	p := testPolicy(t)
	vm, _, _ := dvmClient(t, p, buildFileApp(), "apps")
	vm.VFS.Write("/tmp/ok", []byte("x"))
	vm.VFS.Write("/etc/secret", []byte("x"))

	// /tmp open allowed.
	_, thrown, err := vm.MainThread().InvokeByName("app/F", "open", "(Ljava/lang/String;)V",
		[]jvm.Value{jvm.RefV(vm.InternString("/tmp/ok"))})
	if err != nil {
		t.Fatal(err)
	}
	if thrown != nil {
		t.Fatalf("allowed open threw %s", jvm.DescribeThrowable(thrown))
	}
	// /etc open denied — with the *dynamic* target caught by the dup'd
	// argument.
	_, thrown, err = vm.MainThread().InvokeByName("app/F", "open", "(Ljava/lang/String;)V",
		[]jvm.Value{jvm.RefV(vm.InternString("/etc/secret"))})
	if err != nil {
		t.Fatal(err)
	}
	if thrown == nil || thrown.Class.Name != "java/lang/SecurityException" {
		t.Fatalf("denied open: thrown = %v", jvm.DescribeThrowable(thrown))
	}
	if !strings.Contains(jvm.ThrowableMessage(thrown), "/etc/secret") {
		t.Errorf("denial message lacks dynamic target: %q", jvm.ThrowableMessage(thrown))
	}
}

func TestDVMChecksFileRead(t *testing.T) {
	// The DVM can impose checks on file *read* — the operation the JDK's
	// anticipated hooks cannot protect.
	p := testPolicy(t)
	vm, _, _ := dvmClient(t, p, buildFileApp(), "apps")
	vm.VFS.Write("/tmp/ok", []byte("A"))
	v, thrown, err := vm.MainThread().InvokeByName("app/F", "openAndRead", "(Ljava/lang/String;)I",
		[]jvm.Value{jvm.RefV(vm.InternString("/tmp/ok"))})
	if err != nil || thrown != nil {
		t.Fatalf("%v %v", err, jvm.DescribeThrowable(thrown))
	}
	if v.Int() != 'A' {
		t.Errorf("read = %d", v.Int())
	}
	if vm.Stats.SecurityChecks < 2 {
		t.Errorf("SecurityChecks = %d, want >= 2 (open + read)", vm.Stats.SecurityChecks)
	}

	// Deny file.read for untrusted and verify the read itself is blocked.
	denyRead, err := ParsePolicy([]byte(`
<policy>
  <domain id="apps">
    <grant permission="file.open" target="*"/>
  </domain>
  <assign domain="apps" codebase="app/*"/>
  <operation permission="file.open" class="java/io/FileInputStream" method="&lt;init&gt;" desc="(Ljava/lang/String;)V" target="arg"/>
  <operation permission="file.read" class="java/io/FileInputStream" method="read"/>
</policy>`))
	if err != nil {
		t.Fatal(err)
	}
	vm2, _, _ := dvmClient(t, denyRead, buildFileApp(), "apps")
	vm2.VFS.Write("/tmp/ok", []byte("A"))
	_, thrown, err = vm2.MainThread().InvokeByName("app/F", "openAndRead", "(Ljava/lang/String;)I",
		[]jvm.Value{jvm.RefV(vm2.InternString("/tmp/ok"))})
	if err != nil {
		t.Fatal(err)
	}
	if thrown == nil || thrown.Class.Name != "java/lang/SecurityException" {
		t.Fatalf("read not blocked: %v", jvm.DescribeThrowable(thrown))
	}
}

func TestManagerCacheAndDownload(t *testing.T) {
	p := testPolicy(t)
	srv := NewServer(p)
	downloads := 0
	srv.FetchDelay = func() { downloads++ }
	mgr := NewManager(srv, "apps")

	for i := 0; i < 10; i++ {
		if !mgr.allowed("property.get", "user.name") {
			t.Fatal("allowed check failed")
		}
	}
	if downloads != 1 {
		t.Errorf("domain downloaded %d times, want 1", downloads)
	}
	if mgr.CacheHits != 9 || mgr.CacheMisses != 1 {
		t.Errorf("cache hits/misses = %d/%d", mgr.CacheHits, mgr.CacheMisses)
	}
}

func TestCacheInvalidationProtocol(t *testing.T) {
	p := testPolicy(t)
	srv := NewServer(p)
	mgr := NewManager(srv, "apps")
	if !mgr.allowed("file.open", "/tmp/a") {
		t.Fatal("initial policy should allow /tmp open")
	}
	// Tighten the policy centrally: no file.open for apps.
	p2, err := ParsePolicy([]byte(`
<policy>
  <domain id="apps">
    <grant permission="property.get" target="*"/>
  </domain>
  <assign domain="apps" codebase="app/*"/>
</policy>`))
	if err != nil {
		t.Fatal(err)
	}
	srv.UpdatePolicy(p2)
	if mgr.allowed("file.open", "/tmp/a") {
		t.Fatal("stale cached decision survived policy update")
	}
	if srv.Invalidations != 1 {
		t.Errorf("Invalidations = %d", srv.Invalidations)
	}
}

func TestStackIntrospectionBaseline(t *testing.T) {
	p := testPolicy(t)
	b := buildFileApp()
	data, err := b.BuildBytes()
	if err != nil {
		t.Fatal(err)
	}
	vm, err := jvm.New(jvm.MapLoader{"app/F": data}, &bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	si := NewStackIntrospection(p)
	vm.BuiltinChecks = si
	vm.VFS.Write("/tmp/ok", []byte("Z"))
	vm.VFS.Write("/etc/secret", []byte("Z"))

	// Anticipated hook works: /etc open denied.
	_, thrown, err := vm.MainThread().InvokeByName("app/F", "open", "(Ljava/lang/String;)V",
		[]jvm.Value{jvm.RefV(vm.InternString("/etc/secret"))})
	if err != nil {
		t.Fatal(err)
	}
	if thrown == nil || thrown.Class.Name != "java/lang/SecurityException" {
		t.Fatalf("monolithic open check missed: %v", jvm.DescribeThrowable(thrown))
	}
	// /tmp allowed.
	_, thrown, _ = vm.MainThread().InvokeByName("app/F", "open", "(Ljava/lang/String;)V",
		[]jvm.Value{jvm.RefV(vm.InternString("/tmp/ok"))})
	if thrown != nil {
		t.Fatalf("monolithic allowed open threw: %v", jvm.DescribeThrowable(thrown))
	}
	if si.Checks == 0 || si.FramesWalked == 0 {
		t.Error("introspection never walked the stack")
	}

	// The JDK limitation: once a handle is open, reads have NO hook, so
	// even a read-everything application is never stopped.
	denyEverything, _ := ParsePolicy([]byte(`
<policy>
  <domain id="apps">
    <grant permission="file.open" target="/tmp/*"/>
  </domain>
  <assign domain="apps" codebase="app/*"/>
</policy>`))
	vm2, err := jvm.New(jvm.MapLoader{"app/F": data}, nil)
	if err != nil {
		t.Fatal(err)
	}
	vm2.BuiltinChecks = NewStackIntrospection(denyEverything)
	vm2.VFS.Write("/tmp/ok", []byte("Z"))
	v, thrown, err := vm2.MainThread().InvokeByName("app/F", "openAndRead", "(Ljava/lang/String;)I",
		[]jvm.Value{jvm.RefV(vm2.InternString("/tmp/ok"))})
	if err != nil {
		t.Fatal(err)
	}
	if thrown != nil {
		t.Fatalf("unexpected: %v", jvm.DescribeThrowable(thrown))
	}
	if v.Int() != 'Z' {
		t.Errorf("read = %d", v.Int())
	}
	// The read happened with zero read checks — the monolithic gap.
}

func TestUntrustedDomainDeniedByDVM(t *testing.T) {
	p := testPolicy(t)
	b := classgen.NewClass("evil/E", "java/lang/Object")
	gp := b.Method(classfile.AccPublic|classfile.AccStatic, "snoop", "()Ljava/lang/String;")
	gp.LdcString("user.name")
	gp.InvokeStatic("java/lang/System", "getProperty", "(Ljava/lang/String;)Ljava/lang/String;")
	gp.AReturn()
	vm, _, _ := dvmClient(t, p, b, "untrusted")
	_, thrown, err := vm.MainThread().InvokeByName("evil/E", "snoop", "()Ljava/lang/String;", nil)
	if err != nil {
		t.Fatal(err)
	}
	if thrown == nil || thrown.Class.Name != "java/lang/SecurityException" {
		t.Fatalf("untrusted property read not denied: %v", jvm.DescribeThrowable(thrown))
	}
	// But the allowed one works.
	b2 := classgen.NewClass("evil/E", "java/lang/Object")
	gp2 := b2.Method(classfile.AccPublic|classfile.AccStatic, "ok", "()Ljava/lang/String;")
	gp2.LdcString("java.version")
	gp2.InvokeStatic("java/lang/System", "getProperty", "(Ljava/lang/String;)Ljava/lang/String;")
	gp2.AReturn()
	vm2, _, _ := dvmClient(t, p, b2, "untrusted")
	v, thrown, err := vm2.MainThread().InvokeByName("evil/E", "ok", "()Ljava/lang/String;", nil)
	if err != nil || thrown != nil {
		t.Fatalf("%v %v", err, jvm.DescribeThrowable(thrown))
	}
	if jvm.GoString(v.Ref()) == "" {
		t.Error("allowed property read returned empty")
	}
}

func TestRewrittenClassStillVerifies(t *testing.T) {
	p := testPolicy(t)
	data, err := buildFileApp().BuildBytes()
	if err != nil {
		t.Fatal(err)
	}
	out, err := rewrite.NewPipeline(Filter(p)).Process(data, nil)
	if err != nil {
		t.Fatal(err)
	}
	cf, err := classfile.Parse(out)
	if err != nil {
		t.Fatal(err)
	}
	// max_stack must have been recomputed to cover the dup'd operands.
	m := cf.FindMethod("open", "(Ljava/lang/String;)V")
	code, err := cf.CodeOf(m)
	if err != nil {
		t.Fatal(err)
	}
	if code.MaxStack < 4 {
		t.Errorf("MaxStack = %d, expected >= 4 after dup/swap snippet", code.MaxStack)
	}
}
