package security

import (
	"strings"

	"dvm/internal/jvm"
)

// StackIntrospection is the monolithic baseline: the JDK 1.2-style
// protection-domain + stack-walk access controller (Gong & Schemers 98).
// A check passes only if *every* frame on the current call stack belongs
// to a domain granting the permission (system code is implicitly
// privileged).
//
// The implementation mirrors the JDK's actual mechanics, which is where
// its cost lives: each check snapshots the stack into an access-control
// context of protection-domain records, materializes a permission
// object (canonicalizing file targets against the filesystem, as
// java.io.FilePermission did), and evaluates implies() domain by domain.
//
// It is installed as vm.BuiltinChecks, so it runs only at the library
// hook points the original system designers anticipated — which is
// precisely the limitation Figure 9's "Read File" row demonstrates: no
// hook exists on file reads, so the monolithic architecture cannot check
// them at all.
type StackIntrospection struct {
	policy *Policy

	// Stats
	Checks       int64
	FramesWalked int64
}

// NewStackIntrospection builds the baseline access controller over the
// same policy the DVM uses, for an apples-to-apples comparison.
func NewStackIntrospection(policy *Policy) *StackIntrospection {
	return &StackIntrospection{policy: policy}
}

// permission is the materialized permission object of one check.
type permission struct {
	name   string
	target string
	// actions is unused by our policies but allocated faithfully: the
	// JDK's permission objects carried parsed action masks.
	actions []string
}

// protectionDomain is one entry of the snapshotted context.
type protectionDomain struct {
	codeSource string
	sid        string
	system     bool
}

// Check implements jvm.AccessChecker by walking the thread's frames.
func (si *StackIntrospection) Check(t *jvm.Thread, perm, target string) *jvm.Object {
	si.Checks++

	// 1. Materialize the permission, canonicalizing file targets against
	// the filesystem the way java.io.FilePermission resolved paths.
	p := permission{name: perm, target: target, actions: strings.Split(perm, ".")}
	if strings.HasPrefix(perm, "file.") && target != "" {
		p.target = canonicalize(t.VM(), target)
	}

	// 2. Snapshot the calling context: one protection domain record per
	// frame (the JDK's AccessControlContext construction).
	frames := t.FrameClasses()
	ctx := make([]protectionDomain, 0, len(frames))
	for _, cls := range frames {
		si.FramesWalked++
		name := cls.Name
		pd := protectionDomain{codeSource: name}
		if strings.HasPrefix(name, "java/") || strings.HasPrefix(name, "dvm/") {
			pd.system = true
		} else {
			pd.sid = si.policy.DomainFor(name)
		}
		ctx = append(ctx, pd)
	}

	// 3. Every domain on the stack must imply the permission.
	for _, pd := range ctx {
		if pd.system {
			continue // system domain: AllPermission
		}
		if pd.sid == "" || !si.implies(pd, p) {
			return t.VM().Throw("java/lang/SecurityException",
				p.name+" denied to "+pd.codeSource+" on "+p.target)
		}
	}
	return nil
}

// implies evaluates one domain against one permission.
func (si *StackIntrospection) implies(pd protectionDomain, p permission) bool {
	return si.policy.Allowed(pd.sid, p.name, p.target)
}

// canonicalize resolves "." and ".." components and, like the JDK's
// FilePermission, probes the filesystem for each prefix of the path.
func canonicalize(vm *jvm.VM, path string) string {
	parts := strings.Split(path, "/")
	out := make([]string, 0, len(parts))
	for _, part := range parts {
		switch part {
		case "", ".":
			continue
		case "..":
			if len(out) > 0 {
				out = out[:len(out)-1]
			}
		default:
			out = append(out, part)
			// Existence probe per prefix (the JDK's canonicalization hit
			// the OS once per component).
			vm.VFS.Exists("/" + strings.Join(out, "/"))
		}
	}
	return "/" + strings.Join(out, "/")
}

var _ jvm.AccessChecker = (*StackIntrospection)(nil)
