package security

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Chaos suite: the security service is trust-critical and must fail
// CLOSED — an unreachable server denies, never allows — while a
// returning server restores normal decisions. Deterministic; safe
// under -race.

func chaosPolicy(t *testing.T) *Policy {
	t.Helper()
	pol, err := ParsePolicy([]byte(`
<policy>
  <domain id="apps"><grant permission="file.read" target="/tmp/*"/></domain>
  <assign domain="apps" codebase="app/*"/>
</policy>`))
	if err != nil {
		t.Fatal(err)
	}
	return pol
}

// flappingHandler serves the security server but can be switched dead
// (refusing with 503) at runtime.
type flappingHandler struct {
	inner http.Handler
	dead  atomic.Bool
	hits  atomic.Int64
}

func (f *flappingHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.hits.Add(1)
	if f.dead.Load() && r.URL.Path != "/poll" {
		http.Error(w, "injected outage", http.StatusServiceUnavailable)
		return
	}
	f.inner.ServeHTTP(w, r)
}

func TestSecurityFailsClosedDuringOutageAndRecovers(t *testing.T) {
	vs := NewVersionedServer(NewServer(chaosPolicy(t)))
	fh := &flappingHandler{inner: vs.Handler()}
	ts := httptest.NewServer(fh)
	defer ts.Close()

	var degraded atomic.Int64
	fh.dead.Store(true) // outage from the very first touch

	rm := NewRemoteManagerWith(ts.URL, "apps", RemoteOptions{
		Timeout:          500 * time.Millisecond,
		Retries:          0,
		BreakerThreshold: 2,
		BreakerCooldown:  30 * time.Millisecond,
		OnDegraded: func(sid, perm, target string, err error) {
			degraded.Add(1)
		},
	})
	defer rm.Close()

	// During the outage every check must deny — including ones the
	// policy would grant — and none may be cached as policy decisions.
	for i := 0; i < 5; i++ {
		if rm.Manager.allowed("file.read", "/tmp/a") {
			t.Fatal("check ALLOWED while security server unreachable (must fail closed)")
		}
	}
	if degraded.Load() == 0 {
		t.Fatal("no Degraded records audited during outage")
	}
	rm.Manager.mu.Lock()
	denies := rm.Manager.DegradedDenies
	rm.Manager.mu.Unlock()
	if denies == 0 {
		t.Fatal("DegradedDenies = 0 during outage")
	}

	// Server heals; after the breaker cooldown the next first-touch
	// downloads the real rules and grants flow again.
	fh.dead.Store(false)
	time.Sleep(40 * time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for !rm.Manager.allowed("file.read", "/tmp/a") {
		if time.Now().After(deadline) {
			t.Fatal("grant never recovered after server came back")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if rm.Manager.allowed("file.write", "/etc/passwd") {
		t.Fatal("recovery granted something the policy denies")
	}
}

func TestSecurityBreakerStopsHammeringDeadServer(t *testing.T) {
	vs := NewVersionedServer(NewServer(chaosPolicy(t)))
	fh := &flappingHandler{inner: vs.Handler()}
	fh.dead.Store(true)
	ts := httptest.NewServer(fh)
	defer ts.Close()

	rm := NewRemoteManagerWith(ts.URL, "apps", RemoteOptions{
		Timeout:          200 * time.Millisecond,
		Retries:          0,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Minute,
	})
	defer rm.Close()

	for i := 0; i < 20; i++ {
		if rm.Manager.allowed("file.read", "/tmp/a") {
			t.Fatal("allowed during outage")
		}
	}
	c := rm.Breaker().Counts()
	if c.State != "open" || c.Trips < 1 {
		t.Fatalf("breaker = %+v, want open with >=1 trip", c)
	}
	// 20 checks but only ~threshold actual fetch attempts hit /domain:
	// the open breaker answers the rest locally (still denying).
	var domainHits int64
	_ = domainHits // hits include the background poller; bound loosely
	if fh.hits.Load() > 10 {
		t.Fatalf("dead server hit %d times; breaker should fail fast", fh.hits.Load())
	}
}

func TestPollWaiterReleasedOnClientDisconnect(t *testing.T) {
	vs := NewVersionedServer(NewServer(chaosPolicy(t)))
	ts := httptest.NewServer(vs.Handler())
	defer ts.Close()

	const pollers = 8
	var wg sync.WaitGroup
	for i := 0; i < pollers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
			defer cancel()
			req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/poll?since=1", nil)
			resp, err := http.DefaultClient.Do(req)
			if err == nil {
				resp.Body.Close()
			}
		}()
	}
	// Waiters register...
	deadline := time.Now().Add(time.Second)
	for vs.Waiters() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	wg.Wait()
	// ...and every one must be deregistered once its client hangs up,
	// without waiting for the 25s poll timeout or a policy update.
	deadline = time.Now().Add(2 * time.Second)
	for vs.Waiters() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%d waiters leaked after client disconnect", vs.Waiters())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestPollStillWakesOnPolicyUpdate(t *testing.T) {
	vs := NewVersionedServer(NewServer(chaosPolicy(t)))
	ts := httptest.NewServer(vs.Handler())
	defer ts.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.Get(ts.URL + "/poll?since=1")
		if err == nil {
			resp.Body.Close()
		}
	}()
	deadline := time.Now().Add(time.Second)
	for vs.Waiters() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	vs.UpdatePolicy(chaosPolicy(t))
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("poller not woken by policy update")
	}
	if vs.Waiters() != 0 {
		t.Fatalf("waiters = %d after wake, want 0", vs.Waiters())
	}
}
