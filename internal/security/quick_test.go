package security

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// identifier generates short path-like strings.
type identifier string

// Generate implements quick.Generator.
func (identifier) Generate(r *rand.Rand, size int) reflect.Value {
	n := 1 + r.Intn(12)
	b := make([]byte, n)
	const alpha = "abc/."
	for i := range b {
		b[i] = alpha[r.Intn(len(alpha))]
	}
	return reflect.ValueOf(identifier(b))
}

// TestQuickMatchPattern: the glob implements exactly literal-or-prefix
// semantics.
func TestQuickMatchPattern(t *testing.T) {
	f := func(p, s identifier) bool {
		pat, str := string(p), string(s)
		got := matchPattern(pat, str)
		var want bool
		switch {
		case pat == "*":
			want = true
		case strings.HasSuffix(pat, "*"):
			want = strings.HasPrefix(str, pat[:len(pat)-1])
		default:
			want = pat == str
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickGrantMonotonicity: adding a grant can only widen what a
// domain may do, never narrow it.
func TestQuickGrantMonotonicity(t *testing.T) {
	f := func(perm, target, extraPerm, extraTarget identifier) bool {
		if perm == "" || extraPerm == "" {
			return true
		}
		base := &Policy{
			Domains:    []Domain{{ID: "d", Grants: []Grant{{Permission: string(perm), Target: string(target)}}}},
			domainByID: map[string]*Domain{},
		}
		base.domainByID["d"] = &base.Domains[0]
		wider := &Policy{
			Domains: []Domain{{ID: "d", Grants: []Grant{
				{Permission: string(perm), Target: string(target)},
				{Permission: string(extraPerm), Target: string(extraTarget)},
			}}},
			domainByID: map[string]*Domain{},
		}
		wider.domainByID["d"] = &wider.Domains[0]
		// Every question base allows, wider must allow too.
		for _, q := range []struct{ p, t string }{
			{string(perm), string(target)},
			{string(extraPerm), string(extraTarget)},
			{"other", "x"},
		} {
			if base.Allowed("d", q.p, q.t) && !wider.Allowed("d", q.p, q.t) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickPolicyEncodeParseRoundTrip: encoding then re-parsing a policy
// preserves every access decision for sampled questions.
func TestQuickPolicyEncodeParseRoundTrip(t *testing.T) {
	f := func(p1, t1, p2, t2 identifier) bool {
		if p1 == "" || p2 == "" {
			return true
		}
		pol := &Policy{
			Domains: []Domain{
				{ID: "a", Grants: []Grant{{Permission: string(p1), Target: string(t1)}}},
				{ID: "b", Grants: []Grant{{Permission: string(p2), Target: string(t2)}}},
			},
			Assigns:    []Assignment{{Domain: "a", Codebase: "app/*"}},
			domainByID: map[string]*Domain{},
		}
		pol.domainByID["a"] = &pol.Domains[0]
		pol.domainByID["b"] = &pol.Domains[1]
		data, err := pol.Encode()
		if err != nil {
			return false
		}
		back, err := ParsePolicy(data)
		if err != nil {
			return false
		}
		for _, sid := range []string{"a", "b"} {
			for _, q := range []struct{ p, t string }{
				{string(p1), string(t1)}, {string(p2), string(t2)}, {"zz", "zz"},
			} {
				if pol.Allowed(sid, q.p, q.t) != back.Allowed(sid, q.p, q.t) {
					return false
				}
			}
		}
		return back.DomainFor("app/Main") == "a"
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
