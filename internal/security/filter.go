package security

import (
	"dvm/internal/classfile"
	"dvm/internal/rewrite"
)

// Pipeline note keys published by Filter.
const (
	// NoteChecksInserted accumulates (int) the number of access checks the
	// static service injected across classes.
	NoteChecksInserted = "security.checksInserted"
)

// Filter returns the static half of the security service as a proxy
// pipeline filter. Per the policy's operation mappings it rewrites
// incoming applications so that every matching call site (and every
// declared method boundary named in the policy) is preceded by a call to
// the client enforcement manager, dvm/Enforce.check(permission, target).
//
// Where the operation's target is its final String argument, the snippet
// duplicates it off the operand stack so the check sees the actual
// dynamic target — the capability the Sun JDK's anticipated-hook design
// lacks (Figure 9's "Read File" row).
func Filter(policy *Policy) rewrite.Filter {
	return rewrite.FilterFunc{FilterName: "security", Fn: func(cf *classfile.ClassFile, ctx *rewrite.Context) error {
		if policy == nil {
			return nil // no policy: nothing to enforce
		}
		inserted := 0
		for _, m := range cf.Methods {
			n, err := instrumentMethod(cf, m, policy)
			if err != nil {
				return err
			}
			inserted += n
		}
		if prev, ok := ctx.Notes[NoteChecksInserted].(int); ok {
			ctx.Notes[NoteChecksInserted] = prev + inserted
		} else {
			ctx.Notes[NoteChecksInserted] = inserted
		}
		return nil
	}}
}

func instrumentMethod(cf *classfile.ClassFile, m *classfile.Member, policy *Policy) (int, error) {
	ed, err := rewrite.EditMethod(cf, m)
	if err != nil || ed == nil {
		return 0, err
	}
	inserted := 0

	// Call-site instrumentation: find invocations matching an operation.
	type site struct {
		pos int
		op  Operation
	}
	var sites []site
	for i, in := range ed.Insts {
		if !in.Op.IsInvoke() {
			continue
		}
		ref, err := cf.Pool.Ref(in.Index)
		if err != nil {
			continue
		}
		for _, op := range policy.Operations {
			if !matchPattern(op.Class, ref.Class) || op.Method != ref.Name {
				continue
			}
			if op.Desc != "" && op.Desc != ref.Desc {
				continue
			}
			sites = append(sites, site{pos: i, op: op})
			break
		}
	}
	// Insert back-to-front so earlier positions stay valid; capture
	// branches so no control path can reach the operation unchecked.
	for n := len(sites) - 1; n >= 0; n-- {
		st := sites[n]
		sn := rewrite.NewSnippet(ed.Pool())
		if st.op.TargetArg == "arg" {
			// Stack: [..., target]; keep it and pass a copy to the check.
			sn.Dup()
			sn.LdcString(st.op.Permission)
			sn.Swap()
			sn.InvokeStatic("dvm/Enforce", "check", "(Ljava/lang/String;Ljava/lang/String;)V")
		} else {
			sn.LdcString(st.op.Permission)
			sn.LdcString("")
			sn.InvokeStatic("dvm/Enforce", "check", "(Ljava/lang/String;Ljava/lang/String;)V")
		}
		if err := ed.InsertAt(st.pos, sn.Insts(), true); err != nil {
			return inserted, err
		}
		inserted++
	}

	// Method-boundary instrumentation: the class itself declares an
	// operation-mapped method.
	mname := cf.MemberName(m)
	for _, op := range policy.Operations {
		if !matchPattern(op.Class, cf.Name()) || op.Method != mname {
			continue
		}
		if op.Desc != "" && op.Desc != cf.MemberDescriptor(m) {
			continue
		}
		sn := rewrite.NewSnippet(ed.Pool())
		sn.LdcString(op.Permission)
		sn.LdcString("")
		sn.InvokeStatic("dvm/Enforce", "check", "(Ljava/lang/String;Ljava/lang/String;)V")
		if err := ed.InsertEntry(sn.Insts()); err != nil {
			return inserted, err
		}
		inserted++
		break
	}

	if inserted == 0 {
		return 0, nil
	}
	return inserted, ed.Commit()
}
