package security

import (
	"dvm/internal/bytecode"
	"dvm/internal/classfile"
	"dvm/internal/rewrite"
)

// Pipeline note keys published by Filter.
const (
	// NoteChecksInserted accumulates (int) the number of access checks the
	// static service injected across classes.
	NoteChecksInserted = "security.checksInserted"
)

// Filter returns the static half of the security service as a proxy
// pipeline filter. Per the policy's operation mappings it rewrites
// incoming applications so that every matching call site (and every
// declared method boundary named in the policy) is preceded by a call to
// the client enforcement manager, dvm/Enforce.check(permission, target).
//
// Where the operation's target is its final String argument, the snippet
// duplicates it off the operand stack so the check sees the actual
// dynamic target — the capability the Sun JDK's anticipated-hook design
// lacks (Figure 9's "Read File" row).
func Filter(policy *Policy) rewrite.Filter {
	return &enforceFilter{policy: policy}
}

// enforceFilter implements rewrite.MethodFilter: Prepare scans every
// method for matching call sites and builds the check snippets (all pool
// interning, in method-table order so output is deterministic), and the
// per-method insert+commit work then fans out across the pipeline's
// worker pool.
type enforceFilter struct{ policy *Policy }

// checkSite is one planned insertion: the snippet goes before the
// instruction at pos (pos == -1 means method entry).
type checkSite struct {
	pos   int
	insts []bytecode.Inst
}

const enforcePlanNote = "security.plan"

func (f *enforceFilter) Name() string { return "security" }

// Transform implements rewrite.Filter for standalone use; in a pipeline
// the MethodFilter path is taken instead.
func (f *enforceFilter) Transform(cf *classfile.ClassFile, ctx *rewrite.Context) error {
	return rewrite.ApplyMethodFilter(f, cf, ctx)
}

// Prepare implements rewrite.MethodFilter. Constants are interned only
// for sites that actually match, so a class with nothing to enforce
// round-trips byte-identically.
func (f *enforceFilter) Prepare(cf *classfile.ClassFile, ctx *rewrite.Context) error {
	if f.policy == nil {
		return nil // no policy: nothing to enforce
	}
	policy := f.policy
	plans := make(map[*classfile.Member][]checkSite)
	for _, m := range cf.Methods {
		ed, err := rewrite.EditMethod(cf, m)
		if err != nil {
			return err
		}
		if ed == nil {
			continue
		}

		// Call-site instrumentation: find invocations matching an operation.
		type site struct {
			pos int
			op  Operation
		}
		var sites []site
		for i, in := range ed.Insts {
			if !in.Op.IsInvoke() {
				continue
			}
			ref, err := cf.Pool.Ref(in.Index)
			if err != nil {
				continue
			}
			for _, op := range policy.Operations {
				if !matchPattern(op.Class, ref.Class) || op.Method != ref.Name {
					continue
				}
				if op.Desc != "" && op.Desc != ref.Desc {
					continue
				}
				sites = append(sites, site{pos: i, op: op})
				break
			}
		}
		var plan []checkSite
		// Snippets are planned back-to-front so that replaying them in
		// order keeps earlier instruction positions valid.
		for n := len(sites) - 1; n >= 0; n-- {
			st := sites[n]
			sn := rewrite.NewSnippet(cf.Pool)
			if st.op.TargetArg == "arg" {
				// Stack: [..., target]; keep it and pass a copy to the check.
				sn.Dup()
				sn.LdcString(st.op.Permission)
				sn.Swap()
				sn.InvokeStatic("dvm/Enforce", "check", "(Ljava/lang/String;Ljava/lang/String;)V")
			} else {
				sn.LdcString(st.op.Permission)
				sn.LdcString("")
				sn.InvokeStatic("dvm/Enforce", "check", "(Ljava/lang/String;Ljava/lang/String;)V")
			}
			plan = append(plan, checkSite{pos: st.pos, insts: sn.Insts()})
		}

		// Method-boundary instrumentation: the class itself declares an
		// operation-mapped method.
		mname := cf.MemberName(m)
		for _, op := range policy.Operations {
			if !matchPattern(op.Class, cf.Name()) || op.Method != mname {
				continue
			}
			if op.Desc != "" && op.Desc != cf.MemberDescriptor(m) {
				continue
			}
			sn := rewrite.NewSnippet(cf.Pool)
			sn.LdcString(op.Permission)
			sn.LdcString("")
			sn.InvokeStatic("dvm/Enforce", "check", "(Ljava/lang/String;Ljava/lang/String;)V")
			plan = append(plan, checkSite{pos: -1, insts: sn.Insts()})
			break
		}

		if len(plan) > 0 {
			plans[m] = plan
		}
	}
	ctx.SetNote(enforcePlanNote, plans)
	ctx.AddIntNote(NoteChecksInserted, 0)
	return nil
}

// TransformMethod implements rewrite.MethodFilter; safe to call
// concurrently for distinct methods. Call-site checks are inserted with
// captured branches so no control path can reach the operation unchecked.
func (f *enforceFilter) TransformMethod(cf *classfile.ClassFile, m *classfile.Member, ctx *rewrite.Context) error {
	if f.policy == nil {
		return nil
	}
	v, _ := ctx.Note(enforcePlanNote)
	plans, _ := v.(map[*classfile.Member][]checkSite)
	plan := plans[m]
	if len(plan) == 0 {
		return nil
	}
	ed, err := rewrite.EditMethod(cf, m)
	if err != nil || ed == nil {
		return err
	}
	for _, cs := range plan {
		if cs.pos < 0 {
			if err := ed.InsertEntry(cs.insts); err != nil {
				return err
			}
		} else if err := ed.InsertAt(cs.pos, cs.insts, true); err != nil {
			return err
		}
	}
	if err := ed.Commit(); err != nil {
		return err
	}
	ctx.AddIntNote(NoteChecksInserted, len(plan))
	return nil
}
