package security

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// HTTP transport for the security service: enforcement managers on
// clients download their domain's rules from the central server and
// learn about policy changes through a version-based invalidation
// channel (the paper's "cache-invalidation protocol between the security
// server and the enforcement manager").
//
// Wire format (JSON over HTTP):
//
//	GET /domain?sid=apps          -> {version, grants: [{permission, target}]}
//	GET /decide?sid=&perm=&target= -> {allowed}
//	GET /poll?since=N              -> {version}   (blocks until version > N or timeout)

type wireDomain struct {
	Version int64   `json:"version"`
	Grants  []Grant `json:"grants"`
}

// VersionedServer wraps Server with a policy version counter and a
// notification channel for long-polling managers.
type VersionedServer struct {
	*Server
	mu      sync.Mutex
	version int64
	waiters []chan struct{}
}

// NewVersionedServer wraps a security server for network use.
func NewVersionedServer(s *Server) *VersionedServer {
	return &VersionedServer{Server: s, version: 1}
}

// UpdatePolicy swaps the policy, bumps the version, and wakes pollers.
func (v *VersionedServer) UpdatePolicy(p *Policy) {
	v.Server.UpdatePolicy(p)
	v.mu.Lock()
	v.version++
	ws := v.waiters
	v.waiters = nil
	v.mu.Unlock()
	for _, w := range ws {
		close(w)
	}
}

// Version returns the current policy version.
func (v *VersionedServer) Version() int64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.version
}

// waitBeyond blocks until the version exceeds since, the timeout
// expires, or ctx is cancelled (client hung up), returning the current
// version.
func (v *VersionedServer) waitBeyond(ctx context.Context, since int64, timeout time.Duration) int64 {
	v.mu.Lock()
	if v.version > since {
		cur := v.version
		v.mu.Unlock()
		return cur
	}
	w := make(chan struct{})
	v.waiters = append(v.waiters, w)
	v.mu.Unlock()
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case <-w:
	case <-timer.C:
	case <-ctx.Done():
	}
	return v.Version()
}

// Handler exposes the server over HTTP.
func (v *VersionedServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/domain", func(w http.ResponseWriter, r *http.Request) {
		sid := r.URL.Query().Get("sid")
		if sid == "" {
			http.Error(w, "missing sid", http.StatusBadRequest)
			return
		}
		grants := v.FetchDomain(sid)
		writeJSONSec(w, wireDomain{Version: v.Version(), Grants: grants})
	})
	mux.HandleFunc("/decide", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		allowed := v.Decide(q.Get("sid"), q.Get("perm"), q.Get("target"))
		writeJSONSec(w, map[string]bool{"allowed": allowed})
	})
	mux.HandleFunc("/poll", func(w http.ResponseWriter, r *http.Request) {
		since, _ := strconv.ParseInt(r.URL.Query().Get("since"), 10, 64)
		ver := v.waitBeyond(r.Context(), since, 25*time.Second)
		writeJSONSec(w, map[string]int64{"version": ver})
	})
	return mux
}

func writeJSONSec(w http.ResponseWriter, val any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(val)
}

// RemoteManager is an enforcement manager whose server lives across the
// network. It downloads the domain rules on first touch, caches
// decisions, and invalidates when the long-poll observes a new policy
// version.
type RemoteManager struct {
	*Manager
	base    string
	client  *http.Client
	sid     string
	ctx     context.Context
	cancel  context.CancelFunc
	stopped sync.Once

	mu      sync.Mutex
	version int64
}

// NewRemoteManager builds a manager against a security server at
// baseURL and starts the invalidation poller.
func NewRemoteManager(baseURL, sid string) *RemoteManager {
	base := strings.TrimRight(baseURL, "/")
	ctx, cancel := context.WithCancel(context.Background())
	rm := &RemoteManager{
		base:   base,
		client: &http.Client{},
		sid:    sid,
		ctx:    ctx,
		cancel: cancel,
	}
	// The embedded Manager handles caching; its "server" is this remote
	// transport.
	srv := NewServer(&Policy{domainByID: map[string]*Domain{}})
	srv.FetchDelay = nil
	rm.Manager = NewManager(srv, sid)
	rm.Manager.fetchOverride = rm.fetchDomain
	go rm.pollLoop()
	return rm
}

// fetchDomain downloads the domain rules and records the policy version.
func (rm *RemoteManager) fetchDomain(sid string) []Grant {
	resp, err := rm.client.Get(rm.base + "/domain?sid=" + sid)
	if err != nil {
		return nil // fail closed: no grants
	}
	defer resp.Body.Close()
	var wd wireDomain
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&wd); err != nil {
		return nil
	}
	rm.mu.Lock()
	rm.version = wd.Version
	rm.mu.Unlock()
	return wd.Grants
}

// pollLoop watches for policy-version changes and invalidates the local
// cache when one lands.
func (rm *RemoteManager) pollLoop() {
	for rm.ctx.Err() == nil {
		rm.mu.Lock()
		since := rm.version
		rm.mu.Unlock()
		req, err := http.NewRequestWithContext(rm.ctx, http.MethodGet,
			fmt.Sprintf("%s/poll?since=%d", rm.base, since), nil)
		if err != nil {
			return
		}
		resp, err := rm.client.Do(req)
		if err != nil {
			select {
			case <-rm.ctx.Done():
				return
			case <-time.After(time.Second):
				continue
			}
		}
		var out struct {
			Version int64 `json:"version"`
		}
		err = json.NewDecoder(io.LimitReader(resp.Body, 1<<10)).Decode(&out)
		resp.Body.Close()
		if err != nil {
			continue
		}
		if out.Version > since && since != 0 {
			rm.Manager.invalidate()
		}
		rm.mu.Lock()
		rm.version = out.Version
		rm.mu.Unlock()
	}
}

// Close stops the invalidation poller (cancelling any in-flight poll).
func (rm *RemoteManager) Close() {
	rm.stopped.Do(rm.cancel)
}
