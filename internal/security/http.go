package security

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"dvm/internal/resilience"
	"dvm/internal/telemetry"
)

// HTTP transport for the security service: enforcement managers on
// clients download their domain's rules from the central server and
// learn about policy changes through a version-based invalidation
// channel (the paper's "cache-invalidation protocol between the security
// server and the enforcement manager").
//
// Wire format (JSON over HTTP):
//
//	GET /domain?sid=apps          -> {version, grants: [{permission, target}]}
//	GET /decide?sid=&perm=&target= -> {allowed}
//	GET /poll?since=N              -> {version}   (blocks until version > N or timeout)
//
// Failure semantics: the security service is trust-critical, so it
// fails CLOSED — when the server is unreachable (timeout, refused,
// breaker open) the enforcement manager denies the check, counts it in
// DegradedDenies, and reports it through OnDegraded. An outage can
// revoke access, never grant it.

type wireDomain struct {
	Version int64   `json:"version"`
	Grants  []Grant `json:"grants"`
}

// VersionedServer wraps Server with a policy version counter and a
// notification channel for long-polling managers.
type VersionedServer struct {
	*Server
	mu      sync.Mutex
	version int64
	waiters map[chan struct{}]struct{}

	reg      *telemetry.Registry
	cDomains *telemetry.Counter
	cDecides *telemetry.Counter
	cPolls   *telemetry.Counter
	hDecide  *telemetry.Histogram
	hDomain  *telemetry.Histogram
}

// NewVersionedServer wraps a security server for network use.
func NewVersionedServer(s *Server) *VersionedServer {
	v := &VersionedServer{Server: s, version: 1, waiters: make(map[chan struct{}]struct{})}
	v.reg = telemetry.NewRegistry("secd")
	v.cDomains = v.reg.Counter("domain_fetches_total")
	v.cDecides = v.reg.Counter("decides_total")
	v.cPolls = v.reg.Counter("polls_total")
	v.hDecide = v.reg.Histogram("decide_seconds", nil)
	v.hDomain = v.reg.Histogram("domain_seconds", nil)
	v.reg.Gauge("policy_version", func() float64 { return float64(v.Version()) })
	v.reg.Gauge("poll_waiters", func() float64 { return float64(v.Waiters()) })
	return v
}

// Telemetry exposes the server's metric registry.
func (v *VersionedServer) Telemetry() *telemetry.Registry { return v.reg }

// Health reports the shared versioned health schema.
func (v *VersionedServer) Health() telemetry.Health {
	return v.reg.Health(telemetry.StatusOK)
}

// UpdatePolicy swaps the policy, bumps the version, and wakes pollers.
func (v *VersionedServer) UpdatePolicy(p *Policy) {
	v.Server.UpdatePolicy(p)
	v.mu.Lock()
	v.version++
	ws := v.waiters
	v.waiters = make(map[chan struct{}]struct{})
	v.mu.Unlock()
	for w := range ws {
		close(w)
	}
}

// Version returns the current policy version.
func (v *VersionedServer) Version() int64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.version
}

// Waiters returns the number of registered long-poll waiters
// (diagnostics; a disconnected client must not leave one behind).
func (v *VersionedServer) Waiters() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.waiters)
}

// waitBeyond blocks until the version exceeds since, the timeout
// expires, or ctx is cancelled (client hung up), returning the current
// version. The waiter is deregistered on every exit path: a client that
// disconnects mid-poll must not leak its channel until the next policy
// update.
func (v *VersionedServer) waitBeyond(ctx context.Context, since int64, timeout time.Duration) int64 {
	v.mu.Lock()
	if v.version > since {
		cur := v.version
		v.mu.Unlock()
		return cur
	}
	w := make(chan struct{})
	v.waiters[w] = struct{}{}
	v.mu.Unlock()
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case <-w:
	case <-timer.C:
	case <-ctx.Done():
	}
	v.mu.Lock()
	delete(v.waiters, w)
	v.mu.Unlock()
	return v.Version()
}

// Handler exposes the server over HTTP.
func (v *VersionedServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/domain", func(w http.ResponseWriter, r *http.Request) {
		sid := r.URL.Query().Get("sid")
		if sid == "" {
			http.Error(w, "missing sid", http.StatusBadRequest)
			return
		}
		// A traced client (X-DVM-Trace) gets this hop's span back in the
		// response so domain-fetch time shows up in its timeline.
		tr := telemetry.JoinTrace(r.Header.Get(telemetry.TraceHeader))
		span := tr.StartSpan("secd", "secd.domain")
		v.cDomains.Inc()
		grants := v.FetchDomain(sid)
		v.hDomain.Observe(span.End())
		w.Header().Set(telemetry.TraceSpansHeader, telemetry.EncodeSpans(tr.Spans()))
		writeJSONSec(w, wireDomain{Version: v.Version(), Grants: grants})
	})
	mux.HandleFunc("/decide", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		tr := telemetry.JoinTrace(r.Header.Get(telemetry.TraceHeader))
		span := tr.StartSpan("secd", "secd.decide")
		v.cDecides.Inc()
		allowed := v.Decide(q.Get("sid"), q.Get("perm"), q.Get("target"))
		v.hDecide.Observe(span.End())
		w.Header().Set(telemetry.TraceSpansHeader, telemetry.EncodeSpans(tr.Spans()))
		writeJSONSec(w, map[string]bool{"allowed": allowed})
	})
	mux.HandleFunc("/poll", func(w http.ResponseWriter, r *http.Request) {
		since, _ := strconv.ParseInt(r.URL.Query().Get("since"), 10, 64)
		v.cPolls.Inc()
		ver := v.waitBeyond(r.Context(), since, 25*time.Second)
		writeJSONSec(w, map[string]int64{"version": ver})
	})
	mux.Handle("/healthz", telemetry.HealthHandler(v.Health))
	mux.Handle("/metrics", v.reg.Handler())
	return mux
}

func writeJSONSec(w http.ResponseWriter, val any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(val)
}

// RemoteOptions parameterizes a RemoteManager's hop to the security
// server.
type RemoteOptions struct {
	// Timeout bounds each /domain fetch attempt (default 5s).
	Timeout time.Duration
	// Retries after a failed /domain attempt (default 1).
	Retries int
	// BreakerThreshold trips the server breaker after that many
	// consecutive failures (0 = default 5, <0 = disabled).
	BreakerThreshold int
	// BreakerCooldown is the open-state cooldown (default 5s).
	BreakerCooldown time.Duration
	// OnDegraded receives fail-closed denials (audited Degraded record).
	OnDegraded func(sid, permission, target string, err error)
}

// RemoteManager is an enforcement manager whose server lives across the
// network. It downloads the domain rules on first touch, caches
// decisions, and invalidates when the long-poll observes a new policy
// version. When the server is unreachable it fails closed: checks are
// denied (never allowed) until the server comes back.
type RemoteManager struct {
	*Manager
	base    string
	client  *http.Client // domain fetches: bounded by opts.Timeout
	poller  *http.Client // long polls: must outlive the 25s server hold
	hop     resilience.Hop
	sid     string
	ctx     context.Context
	cancel  context.CancelFunc
	stopped sync.Once

	mu      sync.Mutex
	version int64
}

// NewRemoteManager builds a manager against a security server at
// baseURL with default resilience settings and starts the invalidation
// poller.
func NewRemoteManager(baseURL, sid string) *RemoteManager {
	return NewRemoteManagerWith(baseURL, sid, RemoteOptions{})
}

// NewRemoteManagerWith is NewRemoteManager with explicit per-hop
// deadline, retry, and breaker settings.
func NewRemoteManagerWith(baseURL, sid string, opts RemoteOptions) *RemoteManager {
	if opts.Timeout <= 0 {
		opts.Timeout = 5 * time.Second
	}
	if opts.Retries == 0 {
		opts.Retries = 1
	}
	base := strings.TrimRight(baseURL, "/")
	ctx, cancel := context.WithCancel(context.Background())
	rm := &RemoteManager{
		base:   base,
		client: &http.Client{Timeout: opts.Timeout},
		poller: &http.Client{Timeout: 40 * time.Second},
		hop: resilience.Hop{
			Timeout: opts.Timeout,
			Retry:   resilience.RetryPolicy{Attempts: 1 + opts.Retries},
			Breaker: resilience.NewBreaker(resilience.BreakerConfig{
				Threshold: opts.BreakerThreshold,
				Cooldown:  opts.BreakerCooldown,
			}),
		},
		sid:    sid,
		ctx:    ctx,
		cancel: cancel,
	}
	// The embedded Manager handles caching; its "server" is this remote
	// transport.
	srv := NewServer(&Policy{domainByID: map[string]*Domain{}})
	srv.FetchDelay = nil
	rm.Manager = NewManager(srv, sid)
	rm.Manager.fetchOverride = rm.fetchDomain
	rm.Manager.OnDegraded = opts.OnDegraded
	go rm.pollLoop()
	return rm
}

// Breaker exposes the server-hop circuit breaker (diagnostics).
func (rm *RemoteManager) Breaker() *resilience.Breaker { return rm.hop.Breaker }

// fetchDomain downloads the domain rules and records the policy
// version. An error (timeout, refused, breaker open, bad payload) means
// the caller's check fails closed.
func (rm *RemoteManager) fetchDomain(sid string) ([]Grant, error) {
	var wd wireDomain
	err := rm.hop.Do(rm.ctx, func(ctx context.Context) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, rm.base+"/domain?sid="+sid, nil)
		if err != nil {
			return resilience.Permanent(err)
		}
		resp, err := rm.client.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("security: domain fetch: %s", resp.Status)
		}
		return json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&wd)
	})
	if err != nil {
		return nil, err
	}
	rm.mu.Lock()
	rm.version = wd.Version
	rm.mu.Unlock()
	return wd.Grants, nil
}

// pollLoop watches for policy-version changes and invalidates the local
// cache when one lands.
func (rm *RemoteManager) pollLoop() {
	for rm.ctx.Err() == nil {
		rm.mu.Lock()
		since := rm.version
		rm.mu.Unlock()
		req, err := http.NewRequestWithContext(rm.ctx, http.MethodGet,
			fmt.Sprintf("%s/poll?since=%d", rm.base, since), nil)
		if err != nil {
			return
		}
		resp, err := rm.poller.Do(req)
		if err != nil {
			select {
			case <-rm.ctx.Done():
				return
			case <-time.After(time.Second):
				continue
			}
		}
		var out struct {
			Version int64 `json:"version"`
		}
		err = json.NewDecoder(io.LimitReader(resp.Body, 1<<10)).Decode(&out)
		resp.Body.Close()
		if err != nil {
			continue
		}
		if out.Version > since && since != 0 {
			rm.Manager.invalidate()
		}
		rm.mu.Lock()
		rm.version = out.Version
		rm.mu.Unlock()
	}
}

// Close stops the invalidation poller (cancelling any in-flight poll).
func (rm *RemoteManager) Close() {
	rm.stopped.Do(rm.cancel)
}
