package security

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dvm/internal/telemetry"
)

func TestRemoteManagerFetchAndCache(t *testing.T) {
	vs := NewVersionedServer(NewServer(testPolicy(t)))
	ts := httptest.NewServer(vs.Handler())
	defer ts.Close()

	rm := NewRemoteManager(ts.URL, "apps")
	defer rm.Close()
	if !rm.allowed("property.get", "user.name") {
		t.Fatal("allowed check failed over HTTP")
	}
	for i := 0; i < 10; i++ {
		if !rm.allowed("property.get", "user.name") {
			t.Fatal("cached check failed")
		}
	}
	if rm.Downloads != 1 {
		t.Errorf("downloads = %d, want 1", rm.Downloads)
	}
	if rm.allowed("file.open", "/etc/passwd") {
		t.Error("denied target allowed")
	}
}

func TestRemoteManagerInvalidationPush(t *testing.T) {
	vs := NewVersionedServer(NewServer(testPolicy(t)))
	ts := httptest.NewServer(vs.Handler())
	defer ts.Close()

	rm := NewRemoteManager(ts.URL, "apps")
	defer rm.Close()
	if !rm.allowed("file.open", "/tmp/x") {
		t.Fatal("initial policy should allow")
	}
	// Central update: drop the file.open grant.
	p2, err := ParsePolicy([]byte(`
<policy>
  <domain id="apps"><grant permission="property.get" target="*"/></domain>
  <assign domain="apps" codebase="app/*"/>
</policy>`))
	if err != nil {
		t.Fatal(err)
	}
	vs.UpdatePolicy(p2)

	// The poller invalidates shortly; wait for it.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if !rm.allowed("file.open", "/tmp/x") {
			return // revoked — invalidation propagated
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("policy update never propagated to the remote manager")
}

func TestRemoteManagerFailsClosedWhenServerGone(t *testing.T) {
	vs := NewVersionedServer(NewServer(testPolicy(t)))
	ts := httptest.NewServer(vs.Handler())
	rm := NewRemoteManager(ts.URL, "apps")
	defer rm.Close()
	ts.Close() // server vanishes before the first fetch
	if rm.allowed("property.get", "user.name") {
		t.Fatal("manager allowed access with no reachable server")
	}
}

func TestVersionedServerPollBlocksAndWakes(t *testing.T) {
	vs := NewVersionedServer(NewServer(testPolicy(t)))
	start := time.Now()
	done := make(chan int64, 1)
	go func() {
		done <- vs.waitBeyond(context.Background(), vs.Version(), 5*time.Second)
	}()
	time.Sleep(30 * time.Millisecond)
	p2 := testPolicy(t)
	vs.UpdatePolicy(p2)
	select {
	case v := <-done:
		if v <= 1 {
			t.Errorf("version = %d", v)
		}
		if time.Since(start) > 2*time.Second {
			t.Error("poll did not wake promptly")
		}
	case <-time.After(3 * time.Second):
		t.Fatal("poll never woke")
	}
}

// TestSecdHealthzSharedSchema: the security daemon serves the same
// versioned health JSON as every other daemon, with its policy version
// and waiter count as gauges, plus Prometheus metrics on /metrics.
func TestSecdHealthzSharedSchema(t *testing.T) {
	vs := NewVersionedServer(NewServer(testPolicy(t)))
	vs.UpdatePolicy(testPolicy(t)) // version 2
	ts := httptest.NewServer(vs.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	h, err := telemetry.ParseHealth(body)
	if err != nil {
		t.Fatalf("healthz did not parse as the shared schema: %v\n%s", err, body)
	}
	if h.Service != "secd" || h.Status != telemetry.StatusOK {
		t.Errorf("service/status = %q/%q, want secd/ok", h.Service, h.Status)
	}
	if got := h.Gauges["policy_version"]; got != 2 {
		t.Errorf("policy_version gauge = %v, want 2", got)
	}
	if got := h.Gauges["poll_waiters"]; got != 0 {
		t.Errorf("poll_waiters gauge = %v, want 0", got)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	mbody, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(mbody), "dvm_secd_policy_version 2") {
		t.Errorf("metrics missing policy version gauge:\n%s", mbody)
	}
}
