// Package netsim provides the network substrate the evaluation runs
// over: bandwidth/latency-shaped links (the 28.8 Kb/s wireless to
// 1 MB/s LAN sweep of Figures 11 and 12) and a synthetic Internet whose
// applet fetch latency distribution is calibrated to the paper's
// measurements (§4.1.2: 2198 ms average, 3752 ms standard deviation).
//
// Links support two uses: a pure time model (TransferTime) for the
// bandwidth-sweep experiments, where sleeping real wall-clock time at
// 28.8 Kb/s would be infeasible, and an optional scaled real delay
// (Sleep) for concurrency experiments like the Figure 10 proxy-scaling
// run, which needs actual overlapping transfers.
package netsim

import (
	"math"
	"sync"
	"time"
)

// Link models a point-to-point connection.
type Link struct {
	// BytesPerSec is the link bandwidth.
	BytesPerSec float64
	// Latency is the fixed per-transfer round-trip setup cost.
	Latency time.Duration
}

// Common link presets used by the paper's experiments.
var (
	// Modem28k8 is the 28.8 Kb/s wireless link of §5.
	Modem28k8 = Link{BytesPerSec: 28800.0 / 8, Latency: 150 * time.Millisecond}
	// Ethernet10M is the paper's 10 Mb/s client LAN.
	Ethernet10M = Link{BytesPerSec: 10e6 / 8, Latency: 2 * time.Millisecond}
)

// LinkKBps builds a link from a KB/s figure, as swept by Figure 11.
func LinkKBps(kbps float64) Link {
	return Link{BytesPerSec: kbps * 1000, Latency: 100 * time.Millisecond}
}

// TransferTime returns the modeled time to move n bytes across the link.
func (l Link) TransferTime(n int) time.Duration {
	if l.BytesPerSec <= 0 {
		return l.Latency
	}
	return l.Latency + time.Duration(float64(n)/l.BytesPerSec*float64(time.Second))
}

// Sleep blocks for the transfer time scaled by factor (0 disables
// sleeping entirely; 0.001 turns seconds into milliseconds). Used where
// real concurrency matters more than absolute durations.
func (l Link) Sleep(n int, factor float64) {
	if factor <= 0 {
		return
	}
	d := time.Duration(float64(l.TransferTime(n)) * factor)
	if d > 0 {
		time.Sleep(d)
	}
}

// Internet generates applet-fetch latencies following a log-normal
// distribution calibrated so that mean ≈ 2198 ms and standard deviation
// ≈ 3752 ms, matching the AltaVista applet sample of §4.1.2.
type Internet struct {
	mu  sync.Mutex
	rng splitmix

	// Mu and Sigma are the underlying normal parameters.
	Mu, Sigma float64
}

// NewInternet creates the calibrated synthetic Internet with a
// deterministic seed.
func NewInternet(seed uint64) *Internet {
	// For a log-normal: mean m = exp(mu + s^2/2), sd^2 = (exp(s^2)-1) m^2.
	// With m = 2198 ms, sd = 3752 ms: s^2 = ln(1 + (sd/m)^2) ≈ 1.3577,
	// mu = ln(m) - s^2/2 ≈ 7.0166.
	m, sd := 2198.0, 3752.0
	s2 := math.Log(1 + (sd/m)*(sd/m))
	return &Internet{
		rng:   splitmix{state: seed ^ 0x9E3779B97F4A7C15},
		Mu:    math.Log(m) - s2/2,
		Sigma: math.Sqrt(s2),
	}
}

// FetchLatency draws one applet download latency.
func (i *Internet) FetchLatency() time.Duration {
	i.mu.Lock()
	u1 := i.rng.float()
	u2 := i.rng.float()
	i.mu.Unlock()
	// Box-Muller.
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	ms := math.Exp(i.Mu + i.Sigma*z)
	return time.Duration(ms * float64(time.Millisecond))
}

// splitmix is a deterministic PRNG (no math/rand: experiments must be
// reproducible run-to-run without global seeding).
type splitmix struct{ state uint64 }

func (r *splitmix) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// float returns a uniform draw in (0, 1].
func (r *splitmix) float() float64 {
	return (float64(r.next()>>11) + 1) / float64(1<<53)
}

// Clock is a simulated clock for modeled experiments: transfers advance
// it without sleeping.
type Clock struct {
	mu  sync.Mutex
	now time.Duration
}

// Advance moves the clock forward.
func (c *Clock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now += d
	c.mu.Unlock()
}

// Now returns the elapsed simulated time.
func (c *Clock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}
