package netsim

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Fault injection: deterministic wrappers that make an origin or an
// HTTP transport misbehave in the ways real networks do — errors,
// hangs, partial reads — so the chaos tests can prove each service's
// degradation semantics (proxy: stale-if-error; security: fail closed;
// monitoring: fail open) under -race with reproducible seeds.

// ErrInjected is the error returned by injected failures; chaos tests
// match on it to distinguish injected faults from real bugs.
var ErrInjected = errors.New("netsim: injected fault")

// FaultSpec describes a misbehavior profile. Rates are probabilities in
// [0,1] evaluated independently per call in order: error, hang,
// partial. All draws come from a splitmix PRNG seeded by Seed, so a
// given spec replays the same fault sequence run-to-run.
type FaultSpec struct {
	// Seed makes the fault sequence deterministic.
	Seed uint64
	// ErrorRate is the probability a call fails immediately.
	ErrorRate float64
	// HangRate is the probability a call hangs; it returns only when
	// the context is cancelled (or after HangFor, when set).
	HangRate float64
	// HangFor bounds an injected hang (0 = hang until ctx done).
	HangFor time.Duration
	// PartialRate is the probability a call returns truncated data with
	// an io.ErrUnexpectedEOF (origin) or a mid-body read error
	// (transport).
	PartialRate float64
}

// FaultStats counts what a faulty wrapper actually injected.
type FaultStats struct {
	Calls    int64
	Errors   int64
	Hangs    int64
	Partials int64
}

// faultCore is the shared deterministic draw + counters.
type faultCore struct {
	spec FaultSpec

	mu  sync.Mutex
	rng splitmix

	calls    atomic.Int64
	errors   atomic.Int64
	hangs    atomic.Int64
	partials atomic.Int64
}

func newFaultCore(spec FaultSpec) *faultCore {
	return &faultCore{spec: spec, rng: splitmix{state: spec.Seed ^ 0xD1B54A32D192ED03}}
}

// draw returns the fault chosen for this call: "error", "hang",
// "partial", or "" for a clean pass-through.
func (c *faultCore) draw() string {
	c.calls.Add(1)
	c.mu.Lock()
	u := c.rng.float()
	c.mu.Unlock()
	switch {
	case u <= c.spec.ErrorRate:
		c.errors.Add(1)
		return "error"
	case u <= c.spec.ErrorRate+c.spec.HangRate:
		c.hangs.Add(1)
		return "hang"
	case u <= c.spec.ErrorRate+c.spec.HangRate+c.spec.PartialRate:
		c.partials.Add(1)
		return "partial"
	default:
		return ""
	}
}

// hang blocks until ctx is done or HangFor elapses.
func (c *faultCore) hang(ctx context.Context) {
	if c.spec.HangFor > 0 {
		t := time.NewTimer(c.spec.HangFor)
		defer t.Stop()
		select {
		case <-ctx.Done():
		case <-t.C:
		}
		return
	}
	<-ctx.Done()
}

// Stats snapshots the injected-fault counters.
func (c *faultCore) Stats() FaultStats {
	return FaultStats{
		Calls:    c.calls.Load(),
		Errors:   c.errors.Load(),
		Hangs:    c.hangs.Load(),
		Partials: c.partials.Load(),
	}
}

// originLike matches proxy.Origin structurally (netsim must not import
// the proxy package).
type originLike interface {
	Fetch(ctx context.Context, name string) ([]byte, error)
}

// FaultyOrigin wraps an origin with injected faults. It implements
// proxy.Origin.
type FaultyOrigin struct {
	*faultCore
	inner originLike
}

// NewFaultyOrigin wraps origin with the fault profile.
func NewFaultyOrigin(origin originLike, spec FaultSpec) *FaultyOrigin {
	return &FaultyOrigin{faultCore: newFaultCore(spec), inner: origin}
}

// Fetch implements the origin interface with injected misbehavior.
func (f *FaultyOrigin) Fetch(ctx context.Context, name string) ([]byte, error) {
	switch f.draw() {
	case "error":
		return nil, fmt.Errorf("%w: fetch %s refused", ErrInjected, name)
	case "hang":
		f.hang(ctx)
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("%w: fetch %s stalled", ErrInjected, name)
	case "partial":
		b, err := f.inner.Fetch(ctx, name)
		if err != nil {
			return nil, err
		}
		return b[:len(b)/2], fmt.Errorf("%w: fetch %s: %v", ErrInjected, name, io.ErrUnexpectedEOF)
	default:
		return f.inner.Fetch(ctx, name)
	}
}

// FaultyTransport wraps an http.RoundTripper with injected faults. Use
// it as the Transport of a client's http.Client to make any HTTP hop
// (proxy, security server, monitoring console) misbehave.
type FaultyTransport struct {
	*faultCore
	inner http.RoundTripper
}

// NewFaultyTransport wraps base (nil = http.DefaultTransport).
func NewFaultyTransport(base http.RoundTripper, spec FaultSpec) *FaultyTransport {
	if base == nil {
		base = http.DefaultTransport
	}
	return &FaultyTransport{faultCore: newFaultCore(spec), inner: base}
}

// RoundTrip implements http.RoundTripper.
func (t *FaultyTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	switch t.draw() {
	case "error":
		return nil, fmt.Errorf("%w: %s %s refused", ErrInjected, req.Method, req.URL)
	case "hang":
		t.hang(req.Context())
		if err := req.Context().Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("%w: %s %s stalled", ErrInjected, req.Method, req.URL)
	case "partial":
		resp, err := t.inner.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		resp.Body = &truncatedBody{inner: resp.Body, remaining: resp.ContentLength / 2}
		return resp, nil
	default:
		return t.inner.RoundTrip(req)
	}
}

// truncatedBody yields roughly half the response and then fails the
// read, simulating a connection torn mid-transfer.
type truncatedBody struct {
	inner     io.ReadCloser
	remaining int64
}

func (b *truncatedBody) Read(p []byte) (int, error) {
	if b.remaining <= 0 {
		return 0, fmt.Errorf("%w: %v", ErrInjected, io.ErrUnexpectedEOF)
	}
	if int64(len(p)) > b.remaining {
		p = p[:b.remaining]
	}
	n, err := b.inner.Read(p)
	b.remaining -= int64(n)
	if err == io.EOF {
		return n, err
	}
	if b.remaining <= 0 && err == nil {
		err = fmt.Errorf("%w: %v", ErrInjected, io.ErrUnexpectedEOF)
	}
	return n, err
}

func (b *truncatedBody) Close() error { return b.inner.Close() }

// MapFetcher adapts an in-memory map to the origin interface without
// importing the proxy package (test helper for chaos suites that need a
// netsim-local origin).
type MapFetcher map[string][]byte

// Fetch implements the origin interface.
func (m MapFetcher) Fetch(_ context.Context, name string) ([]byte, error) {
	b, ok := m[name]
	if !ok {
		return nil, fmt.Errorf("netsim: %s not found", name)
	}
	return bytes.Clone(b), nil
}
