package netsim

import (
	"math"
	"testing"
	"time"
)

func TestTransferTimeScalesInversely(t *testing.T) {
	slow := LinkKBps(3.6)  // 28.8 Kb/s
	fast := LinkKBps(1000) // 1 MB/s
	n := 100 * 1024
	ts := slow.TransferTime(n)
	tf := fast.TransferTime(n)
	if ts <= tf {
		t.Fatalf("slow link faster than fast link: %v vs %v", ts, tf)
	}
	// 100 KiB at 3.6 KB/s ≈ 28.4 s (+latency).
	if ts < 25*time.Second || ts > 35*time.Second {
		t.Errorf("28.8k transfer time = %v, expected ~28s", ts)
	}
	// Latency floor dominates tiny transfers.
	if got := fast.TransferTime(1); got < fast.Latency {
		t.Errorf("transfer below latency floor: %v", got)
	}
}

func TestZeroBandwidthIsLatencyOnly(t *testing.T) {
	l := Link{Latency: time.Second}
	if got := l.TransferTime(1 << 20); got != time.Second {
		t.Errorf("got %v", got)
	}
}

func TestInternetCalibration(t *testing.T) {
	inet := NewInternet(1)
	const n = 20000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		ms := float64(inet.FetchLatency()) / float64(time.Millisecond)
		sum += ms
		sum2 += ms * ms
	}
	mean := sum / n
	sd := math.Sqrt(sum2/n - mean*mean)
	// §4.1.2 calibration: 2198 ms ± 3752 ms. Log-normal sampling noise at
	// n=20000 is substantial in the tail; accept ±25%.
	if mean < 2198*0.75 || mean > 2198*1.25 {
		t.Errorf("mean = %.0f ms, want ≈2198", mean)
	}
	if sd < 3752*0.5 || sd > 3752*2 {
		t.Errorf("sd = %.0f ms, want ≈3752", sd)
	}
}

func TestInternetDeterministicPerSeed(t *testing.T) {
	a, b := NewInternet(7), NewInternet(7)
	for i := 0; i < 100; i++ {
		if a.FetchLatency() != b.FetchLatency() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewInternet(8)
	same := true
	a2 := NewInternet(7)
	for i := 0; i < 10; i++ {
		if a2.FetchLatency() != c.FetchLatency() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestClock(t *testing.T) {
	var c Clock
	c.Advance(time.Second)
	c.Advance(500 * time.Millisecond)
	if c.Now() != 1500*time.Millisecond {
		t.Errorf("Now = %v", c.Now())
	}
}

func TestSleepScaling(t *testing.T) {
	l := Link{BytesPerSec: 1000, Latency: 10 * time.Second}
	start := time.Now()
	l.Sleep(1000, 0) // disabled: returns immediately
	if time.Since(start) > 100*time.Millisecond {
		t.Error("factor 0 slept")
	}
	start = time.Now()
	l.Sleep(1000, 0.001) // 11 s scaled to 11 ms
	el := time.Since(start)
	if el < 5*time.Millisecond || el > 500*time.Millisecond {
		t.Errorf("scaled sleep = %v, want ~11ms", el)
	}
}
