package netsim

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// drawSequence records the fault decisions a spec produces over n calls.
func drawSequence(spec FaultSpec, n int) []string {
	f := NewFaultyOrigin(MapFetcher{"k": []byte("0123456789")}, spec)
	out := make([]string, n)
	for i := range out {
		_, err := f.Fetch(context.Background(), "k")
		switch {
		case err == nil:
			out[i] = "ok"
		case errors.Is(err, ErrInjected):
			out[i] = "fault"
		default:
			out[i] = "other"
		}
	}
	return out
}

func TestFaultyOriginDeterministicSeed(t *testing.T) {
	spec := FaultSpec{Seed: 7, ErrorRate: 0.3, PartialRate: 0.1}
	a := drawSequence(spec, 200)
	b := drawSequence(spec, 200)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("call %d: %s vs %s — same seed must replay identically", i, a[i], b[i])
		}
	}
	c := drawSequence(FaultSpec{Seed: 8, ErrorRate: 0.3, PartialRate: 0.1}, 200)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical fault sequences")
	}
}

func TestFaultyOriginErrorRate(t *testing.T) {
	f := NewFaultyOrigin(MapFetcher{"k": []byte("x")}, FaultSpec{Seed: 1, ErrorRate: 0.3})
	const n = 1000
	for i := 0; i < n; i++ {
		_, _ = f.Fetch(context.Background(), "k")
	}
	s := f.Stats()
	if s.Calls != n {
		t.Fatalf("calls = %d, want %d", s.Calls, n)
	}
	if s.Errors < n/5 || s.Errors > n/2 {
		t.Fatalf("errors = %d out of %d, want roughly 30%%", s.Errors, n)
	}
}

func TestFaultyOriginHangHonorsContext(t *testing.T) {
	f := NewFaultyOrigin(MapFetcher{"k": []byte("x")}, FaultSpec{Seed: 1, HangRate: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := f.Fetch(ctx, "k")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("hang did not release promptly on ctx cancellation")
	}
	if f.Stats().Hangs != 1 {
		t.Fatalf("hangs = %d, want 1", f.Stats().Hangs)
	}
}

func TestFaultyOriginPartialRead(t *testing.T) {
	f := NewFaultyOrigin(MapFetcher{"k": []byte("0123456789")}, FaultSpec{Seed: 1, PartialRate: 1})
	b, err := f.Fetch(context.Background(), "k")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want injected", err)
	}
	if len(b) != 5 {
		t.Fatalf("partial returned %d bytes, want 5", len(b))
	}
}

func TestFaultyTransportErrorAndRecovery(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, strings.Repeat("z", 1024))
	}))
	defer ts.Close()

	ft := NewFaultyTransport(nil, FaultSpec{Seed: 3, ErrorRate: 0.5})
	client := &http.Client{Transport: ft}
	var ok, failed int
	for i := 0; i < 100; i++ {
		resp, err := client.Get(ts.URL)
		if err != nil {
			failed++
			continue
		}
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr == nil && len(body) == 1024 {
			ok++
		}
	}
	if ok == 0 || failed == 0 {
		t.Fatalf("ok=%d failed=%d, want a mix at 50%% error rate", ok, failed)
	}
	s := ft.Stats()
	if s.Calls != 100 || s.Errors != int64(failed) {
		t.Fatalf("stats = %+v, want 100 calls and %d errors", s, failed)
	}
}

func TestFaultyTransportPartialBody(t *testing.T) {
	payload := strings.Repeat("z", 4096)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, payload)
	}))
	defer ts.Close()

	ft := NewFaultyTransport(nil, FaultSpec{Seed: 3, PartialRate: 1})
	client := &http.Client{Transport: ft}
	resp, err := client.Get(ts.URL)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	body, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if rerr == nil {
		t.Fatal("partial body read succeeded, want mid-body error")
	}
	if len(body) >= len(payload) {
		t.Fatalf("read %d bytes, want truncation below %d", len(body), len(payload))
	}
}
