package netsim

import (
	"testing"
	"testing/quick"
	"time"
)

// TestQuickTransferTimeMonotone: for any link, more bytes never take
// less time, and time is never below the latency floor.
func TestQuickTransferTimeMonotone(t *testing.T) {
	f := func(kbps uint16, a, b uint32) bool {
		l := LinkKBps(float64(kbps%2000) + 0.5)
		x, y := int(a%10_000_000), int(b%10_000_000)
		if x > y {
			x, y = y, x
		}
		tx, ty := l.TransferTime(x), l.TransferTime(y)
		return tx <= ty && tx >= l.Latency
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickTransferAdditivity: transferring in two chunks costs one
// extra latency, no more and no less (modulo a rounding nanosecond).
func TestQuickTransferAdditivity(t *testing.T) {
	f := func(kbps uint16, a, b uint32) bool {
		l := LinkKBps(float64(kbps%2000) + 0.5)
		x, y := int(a%1_000_000), int(b%1_000_000)
		whole := l.TransferTime(x + y)
		split := l.TransferTime(x) + l.TransferTime(y)
		diff := split - whole - l.Latency
		if diff < 0 {
			diff = -diff
		}
		return diff <= 2 // nanosecond rounding
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickFetchLatencyPositive: the synthetic Internet never produces
// non-positive latencies.
func TestQuickFetchLatencyPositive(t *testing.T) {
	inet := NewInternet(3)
	for i := 0; i < 50000; i++ {
		if d := inet.FetchLatency(); d <= 0 || d > time.Hour {
			t.Fatalf("draw %d: %v", i, d)
		}
	}
}
