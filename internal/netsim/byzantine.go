package netsim

import (
	"sync/atomic"

	"dvm/internal/classfile"
	"dvm/internal/rewrite"
)

// Byzantine models a compromised static-service node: a rewrite stage
// that deterministically corrupts every class it emits. The corruption
// is a well-formed class-level attribute, so the output still parses
// and loads — exactly the kind of silent tampering a digest vote is
// for, as opposed to the loud parse failures the fault injectors in
// faults.go produce. Appended after a node's honest filters it makes
// that node's pipeline output (and therefore its attestation votes and
// served bytes) diverge from the rest of the fleet on every key, while
// the node itself keeps behaving like a healthy protocol participant.
type Byzantine struct {
	// Corruptions counts classes the filter tampered with; chaos tests
	// assert it is non-zero, proving the adversary actually ran.
	Corruptions atomic.Int64
}

// byzantineAttr is the class-level attribute the filter plants. The
// payload is fixed so the corruption is deterministic: two Byzantine
// nodes with this filter would even agree with each other, which is
// precisely why quorums must be sized against the assumed number of
// compromised members.
const byzantineAttr = "DVM-Byzantine"

// Filter returns the corrupting rewrite stage.
func (b *Byzantine) Filter() rewrite.Filter {
	return rewrite.FilterFunc{
		FilterName: "netsim.byzantine",
		Fn: func(cf *classfile.ClassFile, _ *rewrite.Context) error {
			b.Corruptions.Add(1)
			cf.AddAttribute(byzantineAttr, []byte{0xde, 0xad, 0xbe, 0xef})
			return nil
		},
	}
}
