package netsim

import (
	"net/http"
	"sync"
)

// LinkFaults is a per-destination fault mesh for HTTP hops: each
// destination host can carry its own FaultSpec while traffic to every
// other host passes through clean. A cluster chaos test uses one
// LinkFaults per node as its peer transport, so the link from node A to
// peer B can be cut or degraded (asymmetrically — B can still reach A)
// without touching the rest of the mesh.
type LinkFaults struct {
	base http.RoundTripper

	mu    sync.RWMutex
	links map[string]*FaultyTransport
}

// NewLinkFaults builds a mesh view over base (nil =
// http.DefaultTransport). With no links configured it is a transparent
// pass-through.
func NewLinkFaults(base http.RoundTripper) *LinkFaults {
	if base == nil {
		base = http.DefaultTransport
	}
	return &LinkFaults{base: base, links: make(map[string]*FaultyTransport)}
}

// SetLink installs (or replaces) the fault profile for requests whose
// URL host is host (e.g. "127.0.0.1:8642"). Replacing a link resets its
// deterministic fault sequence and stats.
func (l *LinkFaults) SetLink(host string, spec FaultSpec) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.links[host] = NewFaultyTransport(l.base, spec)
}

// ClearLink restores a clean link to host.
func (l *LinkFaults) ClearLink(host string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	delete(l.links, host)
}

// LinkStats reports the injected-fault counters for the link to host.
func (l *LinkFaults) LinkStats(host string) (FaultStats, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	ft, ok := l.links[host]
	if !ok {
		return FaultStats{}, false
	}
	return ft.Stats(), true
}

// CutSpec is the fault profile of a fully severed link: every request
// fails immediately. Seed keeps the (deterministic) fault sequence API
// happy; it has no effect at rate 1.
func CutSpec(seed uint64) FaultSpec {
	return FaultSpec{Seed: seed, ErrorRate: 1}
}

// Cut severs the link to host (every request errors) until ClearLink
// or Heal restores it.
func (l *LinkFaults) Cut(host string) { l.SetLink(host, CutSpec(0)) }

// Partition drives network splits across a cluster's fault meshes: one
// LinkFaults per node (the node's peer transport), one host per node.
// Because each direction is a separate mesh entry, splits can be
// asymmetric — A unable to reach B while B still reaches A — which is
// exactly the case a naive ping-based failure detector gets wrong.
type Partition struct {
	meshes []*LinkFaults
	hosts  []string
}

// NewPartition pairs each node's LinkFaults mesh with its host
// ("127.0.0.1:port"). meshes[i] must be node i's peer transport.
func NewPartition(meshes []*LinkFaults, hosts []string) *Partition {
	return &Partition{meshes: meshes, hosts: hosts}
}

// Isolate cuts node i off in both directions: nobody reaches i, i
// reaches nobody — a network-level crash while the process stays up.
func (p *Partition) Isolate(i int) {
	for j, m := range p.meshes {
		if j == i {
			continue
		}
		m.Cut(p.hosts[i])
		p.meshes[i].Cut(p.hosts[j])
	}
}

// IsolateInbound cuts only traffic *toward* node i: i still reaches
// everyone (asymmetric partition). i's outbound gossip keeps refuting
// the suspicion its silence would otherwise earn.
func (p *Partition) IsolateInbound(i int) {
	for j, m := range p.meshes {
		if j != i {
			m.Cut(p.hosts[i])
		}
	}
}

// Split severs every link between group A (by node index) and the rest,
// both directions.
func (p *Partition) Split(groupA []int) {
	inA := make(map[int]bool, len(groupA))
	for _, i := range groupA {
		inA[i] = true
	}
	for i := range p.meshes {
		for j := range p.meshes {
			if i != j && inA[i] != inA[j] {
				p.meshes[i].Cut(p.hosts[j])
			}
		}
	}
}

// Heal restores every link in the mesh.
func (p *Partition) Heal() {
	for _, m := range p.meshes {
		for _, h := range p.hosts {
			m.ClearLink(h)
		}
	}
}

// RoundTrip implements http.RoundTripper: requests to a host with a
// configured link go through its fault profile, the rest through base.
func (l *LinkFaults) RoundTrip(req *http.Request) (*http.Response, error) {
	l.mu.RLock()
	ft := l.links[req.URL.Host]
	l.mu.RUnlock()
	if ft != nil {
		return ft.RoundTrip(req)
	}
	return l.base.RoundTrip(req)
}
