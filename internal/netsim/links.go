package netsim

import (
	"net/http"
	"sync"
)

// LinkFaults is a per-destination fault mesh for HTTP hops: each
// destination host can carry its own FaultSpec while traffic to every
// other host passes through clean. A cluster chaos test uses one
// LinkFaults per node as its peer transport, so the link from node A to
// peer B can be cut or degraded (asymmetrically — B can still reach A)
// without touching the rest of the mesh.
type LinkFaults struct {
	base http.RoundTripper

	mu    sync.RWMutex
	links map[string]*FaultyTransport
}

// NewLinkFaults builds a mesh view over base (nil =
// http.DefaultTransport). With no links configured it is a transparent
// pass-through.
func NewLinkFaults(base http.RoundTripper) *LinkFaults {
	if base == nil {
		base = http.DefaultTransport
	}
	return &LinkFaults{base: base, links: make(map[string]*FaultyTransport)}
}

// SetLink installs (or replaces) the fault profile for requests whose
// URL host is host (e.g. "127.0.0.1:8642"). Replacing a link resets its
// deterministic fault sequence and stats.
func (l *LinkFaults) SetLink(host string, spec FaultSpec) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.links[host] = NewFaultyTransport(l.base, spec)
}

// ClearLink restores a clean link to host.
func (l *LinkFaults) ClearLink(host string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	delete(l.links, host)
}

// LinkStats reports the injected-fault counters for the link to host.
func (l *LinkFaults) LinkStats(host string) (FaultStats, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	ft, ok := l.links[host]
	if !ok {
		return FaultStats{}, false
	}
	return ft.Stats(), true
}

// RoundTrip implements http.RoundTripper: requests to a host with a
// configured link go through its fault profile, the rest through base.
func (l *LinkFaults) RoundTrip(req *http.Request) (*http.Response, error) {
	l.mu.RLock()
	ft := l.links[req.URL.Host]
	l.mu.RUnlock()
	if ft != nil {
		return ft.RoundTrip(req)
	}
	return l.base.RoundTrip(req)
}
