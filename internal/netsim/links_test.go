package netsim

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestLinkFaultsIsolatePerDestination(t *testing.T) {
	good := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.WriteString(w, "ok")
	}))
	defer good.Close()
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.WriteString(w, "ok")
	}))
	defer bad.Close()

	lf := NewLinkFaults(nil)
	lf.SetLink(bad.Listener.Addr().String(), FaultSpec{Seed: 1, ErrorRate: 1})
	client := &http.Client{Transport: lf}

	// The faulted link always fails.
	if _, err := client.Get(bad.URL); err == nil {
		t.Fatal("request over cut link succeeded")
	} else if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	// Traffic to every other host passes clean.
	resp, err := client.Get(good.URL)
	if err != nil {
		t.Fatalf("clean link failed: %v", err)
	}
	resp.Body.Close()

	if st, ok := lf.LinkStats(bad.Listener.Addr().String()); !ok || st.Errors != 1 {
		t.Errorf("link stats = %+v ok=%v, want 1 injected error", st, ok)
	}
	if _, ok := lf.LinkStats("nosuch:1"); ok {
		t.Error("stats reported for an unconfigured link")
	}

	// Clearing the link restores it.
	lf.ClearLink(bad.Listener.Addr().String())
	resp, err = client.Get(bad.URL)
	if err != nil {
		t.Fatalf("cleared link still failing: %v", err)
	}
	resp.Body.Close()
}
