package verifier

import (
	"bytes"
	"strings"
	"testing"

	"dvm/internal/bytecode"
	"dvm/internal/classfile"
	"dvm/internal/classgen"
	"dvm/internal/jvm"
	"dvm/internal/rewrite"
)

func goodClass() *classgen.ClassBuilder {
	b := classgen.NewClass("app/Good", "java/lang/Object")
	b.Field(classfile.AccPrivate, "x", "I")
	b.DefaultInit()
	m := b.Method(classfile.AccPublic|classfile.AccStatic, "fib", "(I)I")
	base := m.NewLabel()
	m.ILoad(0).IConst(2).Branch(bytecode.IfIcmplt, base)
	m.ILoad(0).IConst(1).ISub()
	m.InvokeStatic("app/Good", "fib", "(I)I")
	m.ILoad(0).IConst(2).ISub()
	m.InvokeStatic("app/Good", "fib", "(I)I")
	m.IAdd().IReturn()
	m.Mark(base)
	m.ILoad(0).IReturn()
	return b
}

func mustVerify(t *testing.T, b *classgen.ClassBuilder) *Result {
	t.Helper()
	cf := b.MustBuild()
	res, err := Verify(cf)
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	return res
}

func TestVerifyAcceptsGoodClass(t *testing.T) {
	res := mustVerify(t, goodClass())
	if res.ClassName != "app/Good" {
		t.Errorf("ClassName = %s", res.ClassName)
	}
	if res.Census.Phase1 == 0 || res.Census.Phase2 == 0 || res.Census.Phase3 == 0 {
		t.Errorf("census has empty phases: %+v", res.Census)
	}
	// All references are to self or bootstrap classes: no assumptions.
	if len(res.Assumptions) != 0 {
		t.Errorf("unexpected assumptions: %v", res.Assumptions)
	}
}

func TestVerifyAcceptsRuntimeImage(t *testing.T) {
	// Every class the JVM bootstrap generates must pass its own verifier.
	vm, err := jvm.New(jvm.MapLoader{}, &bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range vm.LoadedClassNames() {
		c := vm.LoadedClass(name)
		if c.File == nil {
			continue // array classes
		}
		if _, err := Verify(c.File); err != nil {
			t.Errorf("runtime class %s fails verification: %v", name, err)
		}
	}
}

func TestPhase3CountsScaleWithCode(t *testing.T) {
	small := mustVerify(t, goodClass())
	big := classgen.NewClass("app/Big", "java/lang/Object")
	m := big.Method(classfile.AccPublic|classfile.AccStatic, "f", "()I")
	m.IConst(0)
	for i := 0; i < 500; i++ {
		m.IConst(int32(i)).IAdd()
	}
	m.IReturn()
	bres := mustVerify(t, big)
	if bres.Census.Phase3 <= small.Census.Phase3 {
		t.Errorf("phase3 checks did not scale: big=%d small=%d", bres.Census.Phase3, small.Census.Phase3)
	}
}

// corrupt builds the good class and hands the bytes to a mutator.
func corrupt(t *testing.T, mutate func(cf *classfile.ClassFile)) error {
	t.Helper()
	cf := goodClass().MustBuild()
	mutate(cf)
	_, err := Verify(cf)
	return err
}

func TestPhase1Rejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(cf *classfile.ClassFile)
	}{
		{"final+abstract class", func(cf *classfile.ClassFile) {
			cf.AccessFlags |= classfile.AccFinal | classfile.AccAbstract
		}},
		{"field with bad descriptor", func(cf *classfile.ClassFile) {
			cf.Fields[0].DescriptorIndex = cf.Pool.AddUtf8("Q")
		}},
		{"duplicate method", func(cf *classfile.ClassFile) {
			cf.Methods = append(cf.Methods, cf.Methods[0])
		}},
		{"method without code", func(cf *classfile.ClassFile) {
			cf.Methods[0].Attributes = nil
		}},
		{"constant value type mismatch", func(cf *classfile.ClassFile) {
			idx := cf.Pool.AddString("nope")
			cf.Fields[0].AccessFlags |= classfile.AccStatic
			cf.Fields[0].Attributes = append(cf.Fields[0].Attributes, &classfile.Attribute{
				NameIndex: cf.Pool.AddUtf8(classfile.AttrConstantValue),
				Info:      []byte{byte(idx >> 8), byte(idx)},
			})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := corrupt(t, tc.mutate)
			if err == nil {
				t.Fatalf("accepted %s", tc.name)
			}
			var ve *Error
			if !asVerifierError(err, &ve) || ve.Phase != 1 {
				t.Errorf("error = %v, want phase 1", err)
			}
		})
	}
}

func asVerifierError(err error, out **Error) bool {
	ve, ok := err.(*Error)
	if ok {
		*out = ve
	}
	return ok
}

func setBytecode(t *testing.T, cf *classfile.ClassFile, name string, raw []byte, maxStack, maxLocals uint16) {
	t.Helper()
	m := cf.FindMethod(name, methodDescOf(cf, name))
	if m == nil {
		t.Fatalf("method %s not found", name)
	}
	code, err := cf.CodeOf(m)
	if err != nil {
		t.Fatal(err)
	}
	code.Bytecode = raw
	code.MaxStack = maxStack
	code.MaxLocals = maxLocals
	code.Handlers = nil
	if err := cf.SetCode(m, code); err != nil {
		t.Fatal(err)
	}
}

func methodDescOf(cf *classfile.ClassFile, name string) string {
	for _, m := range cf.Methods {
		if cf.MemberName(m) == name {
			return cf.MemberDescriptor(m)
		}
	}
	return ""
}

func TestPhase2Rejections(t *testing.T) {
	run := func(name string, raw []byte, maxStack, maxLocals uint16) *Error {
		t.Helper()
		cf := goodClass().MustBuild()
		setBytecode(t, cf, "fib", raw, maxStack, maxLocals)
		_, err := Verify(cf)
		if err == nil {
			t.Fatalf("%s: accepted", name)
		}
		var ve *Error
		if !asVerifierError(err, &ve) {
			t.Fatalf("%s: error = %v", name, err)
		}
		return ve
	}
	// Unassigned opcode.
	if ve := run("bad opcode", []byte{0xba}, 1, 1); ve.Phase != 2 {
		t.Errorf("bad opcode: phase %d", ve.Phase)
	}
	// Branch out of range.
	if ve := run("branch oob", []byte{byte(bytecode.Goto), 0x7F, 0x00, byte(bytecode.Return)}, 1, 1); ve.Phase != 2 {
		t.Errorf("branch oob: phase %d", ve.Phase)
	}
	// Local out of range.
	if ve := run("local oob", []byte{byte(bytecode.Iload), 60, byte(bytecode.Ireturn)}, 1, 1); ve.Phase != 2 {
		t.Errorf("local oob: phase %d", ve.Phase)
	}
	// ldc of a Class constant (illegal in this era).
	cf := goodClass().MustBuild()
	clsIdx := cf.Pool.AddClass("app/Good")
	if clsIdx > 0xFF {
		t.Skip("pool too large for ldc test")
	}
	setBytecode(t, cf, "fib", []byte{byte(bytecode.Ldc), byte(clsIdx), byte(bytecode.Ireturn)}, 1, 1)
	_, err := Verify(cf)
	var ve *Error
	if err == nil || !asVerifierError(err, &ve) || ve.Phase != 2 {
		t.Errorf("ldc Class: %v", err)
	}
}

func TestPhase3Rejections(t *testing.T) {
	run := func(name string, raw []byte, maxStack, maxLocals uint16) *Error {
		t.Helper()
		cf := goodClass().MustBuild()
		setBytecode(t, cf, "fib", raw, maxStack, maxLocals)
		_, err := Verify(cf)
		if err == nil {
			t.Fatalf("%s: accepted", name)
		}
		var ve *Error
		if !asVerifierError(err, &ve) {
			t.Fatalf("%s: unexpected error %v", name, err)
		}
		return ve
	}
	cases := []struct {
		name      string
		raw       []byte
		maxStack  uint16
		maxLocals uint16
	}{
		// iadd on empty stack -> underflow.
		{"stack underflow", []byte{byte(bytecode.Iadd), byte(bytecode.Ireturn)}, 2, 1},
		// float where int expected.
		{"kind mismatch", []byte{byte(bytecode.Fconst1), byte(bytecode.Ireturn)}, 1, 1},
		// areturn from int method.
		{"wrong return", []byte{byte(bytecode.AconstNull), byte(bytecode.Areturn)}, 1, 1},
		// push beyond max_stack.
		{"stack overflow", []byte{byte(bytecode.Iconst0), byte(bytecode.Iconst0), byte(bytecode.Iconst0), byte(bytecode.Pop), byte(bytecode.Pop), byte(bytecode.Pop), byte(bytecode.Iconst0), byte(bytecode.Ireturn)}, 2, 1},
		// read uninitialized local 0? locals[0] is int param; use local 0 as ref.
		{"local kind mismatch", []byte{byte(bytecode.Aload0), byte(bytecode.Areturn)}, 1, 1},
		// fall off the end.
		{"fall off end", []byte{byte(bytecode.Iconst0), byte(bytecode.Pop)}, 1, 1},
		// inconsistent stack at join: loop where one path pushes.
		{"join mismatch", []byte{
			byte(bytecode.Iload0),           // 0
			byte(bytecode.Ifeq), 0x00, 0x04, // 1 -> 5
			byte(bytecode.Iconst0), // 4: push
			byte(bytecode.Iconst0), // 5: join with differing heights
			byte(bytecode.Ireturn), // 6
		}, 4, 1},
		// dup of long half.
		{"dup wide", []byte{byte(bytecode.Lconst0), byte(bytecode.Dup), byte(bytecode.Pop), byte(bytecode.Pop), byte(bytecode.Pop), byte(bytecode.Iconst0), byte(bytecode.Ireturn)}, 6, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ve := run(tc.name, tc.raw, tc.maxStack, tc.maxLocals)
			if ve.Phase != 3 {
				t.Errorf("phase = %d, want 3 (%s)", ve.Phase, ve.Msg)
			}
		})
	}
}

func TestUninitializedObjectRules(t *testing.T) {
	// Using a new'd object before <init> must be rejected.
	b := classgen.NewClass("app/U", "java/lang/Object")
	m := b.Method(classfile.AccPublic|classfile.AccStatic, "f", "()I")
	m.New("java/lang/Object")
	m.InvokeVirtual("java/lang/Object", "hashCode", "()I") // before <init>!
	m.IReturn()
	cf := b.MustBuild()
	_, err := Verify(cf)
	if err == nil || !strings.Contains(err.Error(), "uninitialized") {
		t.Errorf("err = %v, want uninitialized-object rejection", err)
	}

	// Constructor returning without super-call must be rejected.
	b2 := classgen.NewClass("app/U2", "java/lang/Object")
	init := b2.Method(classfile.AccPublic, "<init>", "()V")
	init.Return()
	cf2 := b2.MustBuild()
	_, err = Verify(cf2)
	if err == nil || !strings.Contains(err.Error(), "super") {
		t.Errorf("err = %v, want missing-super rejection", err)
	}
}

func TestAssumptionCollection(t *testing.T) {
	b := classgen.NewClass("app/Uses", "app/Base")
	b.AddInterface("app/Iface")
	b.DefaultInit()
	m := b.Method(classfile.AccPublic|classfile.AccStatic, "go", "()I")
	m.GetStatic("app/Other", "field", "I")
	m.InvokeStatic("app/Helper", "help", "(I)I")
	m.IReturn()
	m2 := b.Method(classfile.AccPublic|classfile.AccStatic, "go2", "()V")
	m2.New("app/Thing")
	m2.Pop()
	m2.Return()

	res := mustVerify(t, b)
	byKind := map[AssumptionKind][]Assumption{}
	for _, a := range res.Assumptions {
		byKind[a.Kind] = append(byKind[a.Kind], a)
	}
	if len(byKind[AssumeAssignable]) != 2 {
		t.Errorf("assignable assumptions = %v", byKind[AssumeAssignable])
	}
	if len(byKind[AssumeField]) != 1 || byKind[AssumeField][0].Class != "app/Other" {
		t.Errorf("field assumptions = %v", byKind[AssumeField])
	}
	// app/Thing existence is scoped to go2; DefaultInit's super call is
	// an app/Base method assumption scoped to <init>.
	foundThing := false
	for _, a := range byKind[AssumeExists] {
		if a.Class == "app/Thing" && a.Scope == "go2 ()V" {
			foundThing = true
		}
	}
	if !foundThing {
		t.Errorf("missing scoped existence assumption: %v", byKind[AssumeExists])
	}
	// Bootstrap references (java/*) must not create assumptions.
	for _, a := range res.Assumptions {
		if strings.HasPrefix(a.Class, "java/") {
			t.Errorf("bootstrap assumption leaked: %v", a)
		}
	}
}

// buildDependent builds app/Main referencing app/Dep.value and
// app/Dep.mul, plus the matching app/Dep.
func buildDependent(t *testing.T) (mainBytes, depBytes []byte) {
	t.Helper()
	dep := classgen.NewClass("app/Dep", "java/lang/Object")
	dep.Field(classfile.AccPublic|classfile.AccStatic, "value", "I")
	cl := dep.Method(classfile.AccStatic, "<clinit>", "()V")
	cl.IConst(21).PutStatic("app/Dep", "value", "I")
	cl.Return()
	mul := dep.Method(classfile.AccPublic|classfile.AccStatic, "mul", "(I)I")
	mul.ILoad(0).IConst(2).IMul().IReturn()

	mn := classgen.NewClass("app/Main", "java/lang/Object")
	run := mn.Method(classfile.AccPublic|classfile.AccStatic, "run", "()I")
	run.GetStatic("app/Dep", "value", "I")
	run.InvokeStatic("app/Dep", "mul", "(I)I")
	run.IReturn()
	// A second method referencing a class that does NOT exist; it is never
	// called, so lazy checking must not fail the program.
	ghost := mn.Method(classfile.AccPublic|classfile.AccStatic, "ghost", "()V")
	ghost.GetStatic("app/Missing", "f", "I")
	ghost.Pop()
	ghost.Return()

	var err error
	mainBytes, err = mn.BuildBytes()
	if err != nil {
		t.Fatal(err)
	}
	depBytes, err = dep.BuildBytes()
	if err != nil {
		t.Fatal(err)
	}
	return mainBytes, depBytes
}

func TestSelfVerifyingApplicationEndToEnd(t *testing.T) {
	mainBytes, depBytes := buildDependent(t)

	// Static service: verify + instrument app/Main.
	cf, err := classfile.Parse(mainBytes)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Verify(cf)
	if err != nil {
		t.Fatal(err)
	}
	if err := Instrument(cf, res); err != nil {
		t.Fatal(err)
	}
	if res.Census.DynamicInjected == 0 {
		t.Fatal("no dynamic checks injected")
	}
	rewritten, err := cf.Encode()
	if err != nil {
		t.Fatal(err)
	}
	// The rewritten class must itself re-verify (monolithic clients
	// subject it to redundant verification).
	cf2, err := classfile.Parse(rewritten)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Verify(cf2); err != nil {
		t.Fatalf("rewritten class fails re-verification: %v", err)
	}

	// Client executes the self-verifying app.
	vm, err := jvm.New(jvm.MapLoader{"app/Main": rewritten, "app/Dep": depBytes}, &bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	v, thrown, err := vm.MainThread().InvokeByName("app/Main", "run", "()I", nil)
	if err != nil {
		t.Fatal(err)
	}
	if thrown != nil {
		t.Fatalf("thrown: %s", jvm.DescribeThrowable(thrown))
	}
	if v.Int() != 42 {
		t.Errorf("run = %d, want 42", v.Int())
	}
	if vm.Stats.LinkChecks == 0 {
		t.Error("no dynamic link checks executed")
	}
	// Lazy scheme: ghost() was never invoked, so app/Missing was never
	// demanded and nothing failed.
	if vm.LoadedClass("app/Missing") != nil {
		t.Error("lazy checking violated: app/Missing was loaded")
	}

	// Calling ghost() now must raise the link error through the normal
	// exception mechanism.
	_, thrown, err = vm.MainThread().InvokeByName("app/Main", "ghost", "()V", nil)
	if err != nil {
		t.Fatal(err)
	}
	if thrown == nil || thrown.Class.Name != "java/lang/NoClassDefFoundError" {
		t.Errorf("ghost thrown = %v", jvm.DescribeThrowable(thrown))
	}
}

func TestInjectedChecksRunOnce(t *testing.T) {
	mainBytes, depBytes := buildDependent(t)
	cf, _ := classfile.Parse(mainBytes)
	res, err := Verify(cf)
	if err != nil {
		t.Fatal(err)
	}
	if err := Instrument(cf, res); err != nil {
		t.Fatal(err)
	}
	rewritten, _ := cf.Encode()
	vm, err := jvm.New(jvm.MapLoader{"app/Main": rewritten, "app/Dep": depBytes}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		_, thrown, err := vm.MainThread().InvokeByName("app/Main", "run", "()I", nil)
		if err != nil || thrown != nil {
			t.Fatalf("call %d: %v %v", i, err, jvm.DescribeThrowable(thrown))
		}
	}
	// run's scope has 2 assumptions (Dep.value field, Dep.mul method);
	// the guard must keep it at 2 across 5 invocations.
	if vm.Stats.LinkChecks != 2 {
		t.Errorf("LinkChecks = %d, want 2 (guard failed)", vm.Stats.LinkChecks)
	}
}

func TestDetectedBadAssumptionAtRuntime(t *testing.T) {
	// app/Dep exists but with a *different* descriptor than app/Main
	// assumes: the injected check must catch it before use.
	mainBytes, _ := buildDependent(t)
	badDep := classgen.NewClass("app/Dep", "java/lang/Object")
	badDep.Field(classfile.AccPublic|classfile.AccStatic, "value", "J") // J, not I
	mulBad := badDep.Method(classfile.AccPublic|classfile.AccStatic, "mul", "(I)I")
	mulBad.ILoad(0).IReturn()
	badBytes, err := badDep.BuildBytes()
	if err != nil {
		t.Fatal(err)
	}

	cf, _ := classfile.Parse(mainBytes)
	res, _ := Verify(cf)
	if err := Instrument(cf, res); err != nil {
		t.Fatal(err)
	}
	rewritten, _ := cf.Encode()
	vm, err := jvm.New(jvm.MapLoader{"app/Main": rewritten, "app/Dep": badBytes}, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, thrown, err := vm.MainThread().InvokeByName("app/Main", "run", "()I", nil)
	if err != nil {
		t.Fatal(err)
	}
	if thrown == nil || thrown.Class.Name != "java/lang/NoSuchFieldError" {
		t.Errorf("thrown = %v, want NoSuchFieldError from injected check", jvm.DescribeThrowable(thrown))
	}
}

func TestMakeErrorClass(t *testing.T) {
	data, err := MakeErrorClass("app/Bad", "rejected by central verifier")
	if err != nil {
		t.Fatal(err)
	}
	vm, err := jvm.New(jvm.MapLoader{"app/Bad": data}, nil)
	if err != nil {
		t.Fatal(err)
	}
	thrown, err := vm.RunMain("app/Bad", nil)
	if err != nil {
		t.Fatal(err)
	}
	if thrown == nil || thrown.Class.Name != "java/lang/VerifyError" {
		t.Errorf("thrown = %v, want VerifyError", jvm.DescribeThrowable(thrown))
	}
	if !strings.Contains(jvm.ThrowableMessage(thrown), "central verifier") {
		t.Errorf("message = %q", jvm.ThrowableMessage(thrown))
	}
}

func TestVerifierFilterInPipeline(t *testing.T) {
	mainBytes, _ := buildDependent(t)
	p := rewrite.NewPipeline(Filter())
	ctx := rewrite.NewContext()
	out, err := p.Process(mainBytes, ctx)
	if err != nil {
		t.Fatal(err)
	}
	census, ok := ctx.Notes[NoteCensus].(*Census)
	if !ok || census.Static() == 0 {
		t.Fatalf("census note missing or empty: %v", ctx.Notes)
	}
	cf, err := classfile.Parse(out)
	if err != nil {
		t.Fatal(err)
	}
	a := cf.FindAttr(cf.Attributes, AttrVerified)
	if a == nil {
		t.Fatal("dvm.Verified attribute missing")
	}
	got, ok := DecodeVerifiedAttr(a)
	if !ok || got.DynamicInjected == 0 {
		t.Errorf("decoded census = %+v ok=%v", got, ok)
	}
}

func TestLocalHookMonolithicBaseline(t *testing.T) {
	mainBytes, depBytes := buildDependent(t)
	var census Census
	loader := jvm.MapLoader{"app/Main": mainBytes, "app/Dep": depBytes}
	vm, err := jvm.New(loader, nil)
	if err != nil {
		t.Fatal(err)
	}
	vm.LoadHooks = append(vm.LoadHooks, LocalHook(&census, nil))
	_, thrown, err := vm.MainThread().InvokeByName("app/Main", "run", "()I", nil)
	if err != nil || thrown != nil {
		t.Fatalf("%v %v", err, jvm.DescribeThrowable(thrown))
	}
	if census.Static() == 0 {
		t.Error("local verifier performed no checks")
	}
	if vm.Stats.LinkChecks != 0 {
		t.Error("monolithic client executed injected DVM checks")
	}
	// The hook must reject malformed classes at load time.
	bad := append([]byte(nil), mainBytes...)
	bad[9] ^= 0xFF // corrupt pool count region
	vm2, err := jvm.New(jvm.MapLoader{"app/Main": bad}, nil)
	if err != nil {
		t.Fatal(err)
	}
	vm2.LoadHooks = append(vm2.LoadHooks, LocalHook(nil, nil))
	if _, _, err := vm2.MainThread().InvokeByName("app/Main", "run", "()I", nil); err == nil {
		t.Error("corrupted class accepted by monolithic client")
	}
}
