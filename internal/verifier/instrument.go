package verifier

import (
	"encoding/binary"
	"fmt"
	"strings"
	"time"

	"dvm/internal/bytecode"
	"dvm/internal/classfile"
	"dvm/internal/classgen"
	"dvm/internal/jvm"
	"dvm/internal/rewrite"
	"dvm/internal/telemetry"
)

// AttrVerified is the class attribute the static service attaches to
// mark a class as processed, carrying the check census. Clients (and the
// proxy cache) use it to recognize self-verifying code; it is also the
// "self-describing attribute" mechanism of §4.3.
const AttrVerified = "dvm.Verified"

// guardFieldPrefix names the per-scope "already checked" flags the
// rewriter adds (Figure 3's __mainChecked).
const guardFieldPrefix = "dvm$chk$"

// Instrument rewrites the class into its self-verifying form: for each
// method scope that carries assumptions, a guarded entry snippet performs
// the deferred checks through dvm/RTVerifier on first invocation;
// class-wide assumptions are checked from <clinit>. Returns the number of
// dynamic checks injected and updates res.Census.
func Instrument(cf *classfile.ClassFile, res *Result) error {
	scoped := byScope(res.Assumptions)

	classScope := scoped[""]
	delete(scoped, "")
	if len(classScope) > 0 {
		if err := instrumentClinit(cf, classScope, res); err != nil {
			return err
		}
	}

	guardIdx := 0
	for _, m := range cf.Methods {
		scope := cf.MemberName(m) + " " + cf.MemberDescriptor(m)
		as := scoped[scope]
		if len(as) == 0 {
			continue
		}
		ed, err := rewrite.EditMethod(cf, m)
		if err != nil {
			return err
		}
		if ed == nil {
			continue
		}
		guard := fmt.Sprintf("%s%d", guardFieldPrefix, guardIdx)
		guardIdx++
		cf.Fields = append(cf.Fields, &classfile.Member{
			AccessFlags:     classfile.AccPrivate | classfile.AccStatic,
			NameIndex:       cf.Pool.AddUtf8(guard),
			DescriptorIndex: cf.Pool.AddUtf8("Z"),
		})
		sn := rewrite.NewSnippet(cf.Pool)
		sn.GetStatic(cf.Name(), guard, "Z")
		sn.Branch(bytecode.Ifne, rewrite.RelEnd)
		emitChecks(sn, as, res)
		sn.IConst(1)
		sn.PutStatic(cf.Name(), guard, "Z")
		if err := ed.InsertEntry(sn.Insts()); err != nil {
			return err
		}
		if err := ed.Commit(); err != nil {
			return err
		}
	}

	// Attach the census attribute.
	payload := make([]byte, 16)
	binary.BigEndian.PutUint32(payload[0:], uint32(res.Census.Phase1))
	binary.BigEndian.PutUint32(payload[4:], uint32(res.Census.Phase2))
	binary.BigEndian.PutUint32(payload[8:], uint32(res.Census.Phase3))
	binary.BigEndian.PutUint32(payload[12:], uint32(res.Census.DynamicInjected))
	cf.RemoveAttribute(AttrVerified)
	cf.AddAttribute(AttrVerified, payload)
	return nil
}

func emitChecks(sn *rewrite.Snippet, as []Assumption, res *Result) {
	for _, a := range as {
		switch a.Kind {
		case AssumeField:
			sn.LdcString(a.Class).LdcString(a.Name).LdcString(a.Desc)
			sn.InvokeStatic("dvm/RTVerifier", "checkField",
				"(Ljava/lang/String;Ljava/lang/String;Ljava/lang/String;)V")
		case AssumeMethod:
			sn.LdcString(a.Class).LdcString(a.Name).LdcString(a.Desc)
			sn.InvokeStatic("dvm/RTVerifier", "checkMethod",
				"(Ljava/lang/String;Ljava/lang/String;Ljava/lang/String;)V")
		case AssumeAssignable:
			sn.LdcString(a.Class).LdcString(a.Name)
			sn.InvokeStatic("dvm/RTVerifier", "checkClass",
				"(Ljava/lang/String;Ljava/lang/String;)V")
		case AssumeExists:
			sn.LdcString(a.Class).LdcString("")
			sn.InvokeStatic("dvm/RTVerifier", "checkClass",
				"(Ljava/lang/String;Ljava/lang/String;)V")
		}
		res.Census.DynamicInjected++
	}
}

// instrumentClinit injects class-scope checks at the head of <clinit>,
// creating the initializer if the class lacks one. <clinit> runs exactly
// once, so no guard flag is needed.
func instrumentClinit(cf *classfile.ClassFile, as []Assumption, res *Result) error {
	m := cf.FindMethod("<clinit>", "()V")
	if m == nil {
		code := &classfile.Code{MaxStack: 0, MaxLocals: 0, Bytecode: []byte{0xb1}} // return
		m = &classfile.Member{
			AccessFlags:     classfile.AccStatic,
			NameIndex:       cf.Pool.AddUtf8("<clinit>"),
			DescriptorIndex: cf.Pool.AddUtf8("()V"),
		}
		if err := cf.SetCode(m, code); err != nil {
			return err
		}
		cf.Methods = append(cf.Methods, m)
	}
	ed, err := rewrite.EditMethod(cf, m)
	if err != nil {
		return err
	}
	sn := rewrite.NewSnippet(cf.Pool)
	emitChecks(sn, as, res)
	if err := ed.InsertEntry(sn.Insts()); err != nil {
		return err
	}
	return ed.Commit()
}

// InstrumentEager is the ablation variant of Instrument: every
// assumption is rescoped to the whole class and checked from <clinit>,
// abandoning the lazy per-method scheme. Referenced classes are then
// demanded as soon as the class initializes, whether or not the
// dependent methods ever run — the behavior §3.1's lazy design avoids.
func InstrumentEager(cf *classfile.ClassFile, res *Result) error {
	eager := &Result{ClassName: res.ClassName, Census: res.Census}
	set := newAssumptionSet()
	for _, a := range res.Assumptions {
		a.Scope = ""
		set.add(a)
	}
	eager.Assumptions = set.list
	if err := Instrument(cf, eager); err != nil {
		return err
	}
	res.Census = eager.Census
	return nil
}

// DecodeVerifiedAttr extracts the census from a dvm.Verified attribute
// payload.
func DecodeVerifiedAttr(a *classfile.Attribute) (Census, bool) {
	if len(a.Info) != 16 {
		return Census{}, false
	}
	return Census{
		Phase1:          int(binary.BigEndian.Uint32(a.Info[0:])),
		Phase2:          int(binary.BigEndian.Uint32(a.Info[4:])),
		Phase3:          int(binary.BigEndian.Uint32(a.Info[8:])),
		DynamicInjected: int(binary.BigEndian.Uint32(a.Info[12:])),
	}, true
}

// MakeErrorClass builds the replacement class the distributed service
// forwards when verification fails: a class of the same name whose
// initialization raises VerifyError, so "verification errors are
// reflected to clients through the regular Java exception mechanisms."
func MakeErrorClass(name, message string) ([]byte, error) {
	b := classgen.NewClass(name, "java/lang/Object")
	cl := b.Method(classfile.AccStatic, "<clinit>", "()V")
	cl.NewDup("java/lang/VerifyError")
	cl.LdcString(message)
	cl.InvokeSpecial("java/lang/VerifyError", "<init>", "(Ljava/lang/String;)V")
	cl.AThrow()
	// A main stub so clients that launch the class reach <clinit>.
	mn := b.Method(classfile.AccPublic|classfile.AccStatic, "main", "([Ljava/lang/String;)V")
	mn.Return()
	return b.BuildBytes()
}

// Filter returns the verification service as a proxy pipeline filter:
// verify statically, then rewrite into self-verifying form. The census is
// accumulated in ctx.Notes[NoteCensus] (*Census) and the per-class result
// stored under NoteResultPrefix+className.
func Filter() rewrite.Filter {
	return rewrite.FilterFunc{FilterName: "verifier", Fn: func(cf *classfile.ClassFile, ctx *rewrite.Context) error {
		// The per-method phases fan out over the pipeline's worker pool;
		// instrumentation mutates the pool and stays sequential.
		res, err := VerifyWith(cf, Options{Workers: ctx.Workers(), Trace: ctx.Trace, Node: ctx.Node})
		if err != nil {
			return err
		}
		if err := Instrument(cf, res); err != nil {
			return err
		}
		// Self-describing export table for the dynamic components (§4.3).
		AddReflectAttr(cf)
		if v, ok := ctx.Note(NoteCensus); ok {
			v.(*Census).Add(res.Census)
		} else {
			total := res.Census
			ctx.SetNote(NoteCensus, &total)
		}
		ctx.SetNote(NoteResultPrefix+res.ClassName, res)
		return nil
	}}
}

// Pipeline note keys published by Filter.
const (
	NoteCensus       = "verifier.census"
	NoteResultPrefix = "verifier.result."
)

// LocalHook returns a jvm.LoadHook that performs full (phases 1–3)
// verification on the client at class load time — the monolithic
// baseline configuration of the evaluation. Classes that already carry
// the dvm.Verified attribute are re-verified anyway, matching the paper's
// note that existing monolithic VMs "subject the code to redundant local
// verification."
//
// The census and cumulative wall-clock time are accumulated into the
// provided pointers (either may be nil).
func LocalHook(census *Census, elapsed *time.Duration) jvm.LoadHook {
	return func(vm *jvm.VM, name string, data []byte) error {
		if strings.HasPrefix(name, "java/") || strings.HasPrefix(name, "dvm/") {
			return nil
		}
		start := telemetry.StartTimer()
		cf, err := classfile.Parse(data)
		if err != nil {
			return err
		}
		res, err := Verify(cf)
		if elapsed != nil {
			*elapsed += start.Elapsed()
		}
		if err != nil {
			return err
		}
		if census != nil {
			census.Add(res.Census)
		}
		return nil
	}
}
