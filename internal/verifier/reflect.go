package verifier

import (
	"encoding/binary"

	"dvm/internal/classfile"
)

// The reflection service of §4.3: "we subsequently developed a
// reflection service that adds self-describing attributes to classes and
// modified our verifier to use this interface rather than the slow
// library interface." The dvm.Reflect attribute is a compact export
// table — the exact data a link check needs (names and descriptors) —
// so dynamic components answer checks with a lookup instead of a
// reflective scan.

// MemberSig is one exported member in a reflection attribute.
type MemberSig struct {
	Name string
	Desc string
}

// AddReflectAttr attaches (or replaces) the class's self-describing
// export table.
func AddReflectAttr(cf *classfile.ClassFile) {
	var buf []byte
	u2 := func(v int) { buf = binary.BigEndian.AppendUint16(buf, uint16(v)) }
	str := func(s string) {
		u2(len(s))
		buf = append(buf, s...)
	}
	u2(len(cf.Fields))
	for _, f := range cf.Fields {
		str(cf.MemberName(f))
		str(cf.MemberDescriptor(f))
	}
	u2(len(cf.Methods))
	for _, m := range cf.Methods {
		str(cf.MemberName(m))
		str(cf.MemberDescriptor(m))
	}
	cf.RemoveAttribute(classfile.AttrDVMReflect)
	cf.AddAttribute(classfile.AttrDVMReflect, buf)
}

// DecodeReflectAttr parses a dvm.Reflect payload back into the export
// lists.
func DecodeReflectAttr(a *classfile.Attribute) (fields, methods []MemberSig, ok bool) {
	buf := a.Info
	off := 0
	u2 := func() (int, bool) {
		if off+2 > len(buf) {
			return 0, false
		}
		v := int(binary.BigEndian.Uint16(buf[off:]))
		off += 2
		return v, true
	}
	str := func() (string, bool) {
		n, k := u2()
		if !k || off+n > len(buf) {
			return "", false
		}
		s := string(buf[off : off+n])
		off += n
		return s, true
	}
	list := func() ([]MemberSig, bool) {
		n, k := u2()
		if !k {
			return nil, false
		}
		out := make([]MemberSig, 0, n)
		for i := 0; i < n; i++ {
			name, k1 := str()
			desc, k2 := str()
			if !k1 || !k2 {
				return nil, false
			}
			out = append(out, MemberSig{Name: name, Desc: desc})
		}
		return out, true
	}
	if fields, ok = list(); !ok {
		return nil, nil, false
	}
	if methods, ok = list(); !ok {
		return nil, nil, false
	}
	return fields, methods, off == len(buf)
}
