package verifier

import (
	"strings"

	"dvm/internal/bytecode"
	"dvm/internal/classfile"
)

// Verify runs the three static verification phases over a parsed class
// and collects the phase-4 link assumptions with their scopes. It does
// not modify the class; Instrument (or the Filter) performs the
// rewriting step.
func Verify(cf *classfile.ClassFile) (*Result, error) {
	res := &Result{ClassName: cf.Name()}
	if err := phase1(cf, &res.Census); err != nil {
		return nil, err
	}
	set := newAssumptionSet()
	collectClassAssumptions(cf, set)
	for _, m := range cf.Methods {
		code, err := cf.CodeOf(m)
		if err != nil {
			return nil, &Error{Phase: 2, Class: cf.Name(), Method: cf.MemberName(m), Msg: err.Error()}
		}
		if code == nil {
			continue
		}
		insts, err := phase2(cf, m, code, &res.Census)
		if err != nil {
			return nil, err
		}
		if err := phase3(cf, m, code, insts, &res.Census); err != nil {
			return nil, err
		}
		collectMethodAssumptions(cf, m, insts, set)
	}
	res.Assumptions = set.list
	return res, nil
}

// collectClassAssumptions records the class-scoped environmental facts:
// the inheritance relationships. "Fundamental assumptions, such as
// inheritance relationships, affect the validity of the entire class."
func collectClassAssumptions(cf *classfile.ClassFile, set *assumptionSet) {
	name := cf.Name()
	if super := cf.SuperName(); super != "" && !isBootstrapClass(super) {
		set.add(Assumption{Kind: AssumeAssignable, Class: name, Name: super})
	}
	for _, i := range cf.InterfaceNames() {
		if !isBootstrapClass(i) {
			set.add(Assumption{Kind: AssumeAssignable, Class: name, Name: i})
		}
	}
}

// collectMethodAssumptions records, for one method, every fact about
// other classes its instructions rely on: imported field and method
// signatures and referenced classes. The scope is the method, so the
// injected checks run lazily, on the method's first invocation — "the
// classes that make up an application are not fetched from a remote,
// potentially slow, server unless they are required for execution."
func collectMethodAssumptions(cf *classfile.ClassFile, m *classfile.Member, insts []bytecode.Inst, set *assumptionSet) {
	self := cf.Name()
	scope := cf.MemberName(m) + " " + cf.MemberDescriptor(m)
	for _, in := range insts {
		switch {
		case in.Op.IsFieldAccess():
			ref, err := cf.Pool.Ref(in.Index)
			if err != nil || ref.Class == self || isBootstrapClass(ref.Class) {
				continue
			}
			set.add(Assumption{Kind: AssumeField, Class: ref.Class, Name: ref.Name, Desc: ref.Desc, Scope: scope})
		case in.Op.IsInvoke():
			ref, err := cf.Pool.Ref(in.Index)
			if err != nil || ref.Class == self || isBootstrapClass(ref.Class) {
				continue
			}
			set.add(Assumption{Kind: AssumeMethod, Class: ref.Class, Name: ref.Name, Desc: ref.Desc, Scope: scope})
		case in.Op == bytecode.New || in.Op == bytecode.Checkcast ||
			in.Op == bytecode.Instanceof || in.Op == bytecode.Anewarray:
			cn, err := cf.Pool.ClassName(in.Index)
			if err != nil || cn == self || isBootstrapClass(cn) || strings.HasPrefix(cn, "[") {
				continue
			}
			set.add(Assumption{Kind: AssumeExists, Class: cn, Scope: scope})
		}
	}
}

// isBootstrapClass reports whether the class belongs to the trusted
// runtime image, whose exports the verification service knows a priori
// (java/*, dvm/*). Assumptions about those need no runtime check.
func isBootstrapClass(name string) bool {
	return strings.HasPrefix(name, "java/") || strings.HasPrefix(name, "dvm/")
}
