package verifier

import (
	"runtime"
	"strings"
	"sync"

	"dvm/internal/bytecode"
	"dvm/internal/classfile"
	"dvm/internal/telemetry"
)

// Options configures a verification run.
type Options struct {
	// Workers bounds the goroutines used for the per-method phases
	// (2, 3, and assumption collection). 0 means GOMAXPROCS; 1 runs
	// strictly sequentially. Any value produces identical results: the
	// phases are independent per method, and the merge step folds
	// per-method output back together in method-table order.
	Workers int

	// Trace/Node, when set, receive per-phase spans (verify.phase1,
	// verify.phase3) on the request's telemetry trace.
	Trace *telemetry.Trace
	Node  string
}

// Verify runs the three static verification phases over a parsed class
// and collects the phase-4 link assumptions with their scopes. It does
// not modify the class; Instrument (or the Filter) performs the
// rewriting step.
func Verify(cf *classfile.ClassFile) (*Result, error) {
	return VerifyWith(cf, Options{Workers: 1})
}

// methodResult is the output of verifying one method in isolation.
type methodResult struct {
	census      Census
	assumptions []Assumption
	err         error
}

// VerifyWith is Verify with explicit worker/telemetry options. Per-method
// verification is embarrassingly parallel — phases 2 and 3 only read the
// class — so the method loop fans out over opts.Workers goroutines. The
// result is deterministic regardless of worker count: census counts are
// summed and assumptions deduplicated in method-table order, and the
// reported error is the one from the lowest-indexed failing method.
func VerifyWith(cf *classfile.ClassFile, opts Options) (*Result, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	res := &Result{ClassName: cf.Name()}
	sp := opts.Trace.StartSpan(opts.Node, "verify.phase1")
	err := phase1(cf, &res.Census)
	sp.End()
	if err != nil {
		return nil, err
	}
	set := newAssumptionSet()
	collectClassAssumptions(cf, set)

	sp = opts.Trace.StartSpan(opts.Node, "verify.phase3")
	results := make([]methodResult, len(cf.Methods))
	if workers > len(cf.Methods) {
		workers = len(cf.Methods)
	}
	if workers <= 1 {
		for i, m := range cf.Methods {
			verifyMethod(cf, m, &results[i])
		}
	} else {
		// The lazy codec memoizes Utf8 decoding by writing into the pool;
		// materialize everything before handing it to concurrent readers.
		cf.Pool.Materialize()
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					verifyMethod(cf, cf.Methods[i], &results[i])
				}
			}()
		}
		for i := range cf.Methods {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}
	sp.End()

	// Deterministic merge in method-table order.
	for i := range results {
		if results[i].err != nil {
			return nil, results[i].err
		}
		res.Census.Add(results[i].census)
		for _, a := range results[i].assumptions {
			set.add(a)
		}
	}
	res.Assumptions = set.list
	return res, nil
}

// verifyMethod runs phases 2 and 3 plus assumption collection for a
// single method, writing into out. It only reads cf, which is what makes
// concurrent calls over distinct methods safe.
func verifyMethod(cf *classfile.ClassFile, m *classfile.Member, out *methodResult) {
	code, err := cf.CodeOf(m)
	if err != nil {
		out.err = &Error{Phase: 2, Class: cf.Name(), Method: cf.MemberName(m), Msg: err.Error()}
		return
	}
	if code == nil {
		return
	}
	insts, err := phase2(cf, m, code, &out.census)
	if err != nil {
		out.err = err
		return
	}
	if err := phase3(cf, m, code, insts, &out.census); err != nil {
		out.err = err
		return
	}
	local := newAssumptionSet()
	collectMethodAssumptions(cf, m, insts, local)
	out.assumptions = local.list
}

// collectClassAssumptions records the class-scoped environmental facts:
// the inheritance relationships. "Fundamental assumptions, such as
// inheritance relationships, affect the validity of the entire class."
func collectClassAssumptions(cf *classfile.ClassFile, set *assumptionSet) {
	name := cf.Name()
	if super := cf.SuperName(); super != "" && !isBootstrapClass(super) {
		set.add(Assumption{Kind: AssumeAssignable, Class: name, Name: super})
	}
	for _, i := range cf.InterfaceNames() {
		if !isBootstrapClass(i) {
			set.add(Assumption{Kind: AssumeAssignable, Class: name, Name: i})
		}
	}
}

// collectMethodAssumptions records, for one method, every fact about
// other classes its instructions rely on: imported field and method
// signatures and referenced classes. The scope is the method, so the
// injected checks run lazily, on the method's first invocation — "the
// classes that make up an application are not fetched from a remote,
// potentially slow, server unless they are required for execution."
func collectMethodAssumptions(cf *classfile.ClassFile, m *classfile.Member, insts []bytecode.Inst, set *assumptionSet) {
	self := cf.Name()
	scope := cf.MemberName(m) + " " + cf.MemberDescriptor(m)
	for _, in := range insts {
		switch {
		case in.Op.IsFieldAccess():
			ref, err := cf.Pool.Ref(in.Index)
			if err != nil || ref.Class == self || isBootstrapClass(ref.Class) {
				continue
			}
			set.add(Assumption{Kind: AssumeField, Class: ref.Class, Name: ref.Name, Desc: ref.Desc, Scope: scope})
		case in.Op.IsInvoke():
			ref, err := cf.Pool.Ref(in.Index)
			if err != nil || ref.Class == self || isBootstrapClass(ref.Class) {
				continue
			}
			set.add(Assumption{Kind: AssumeMethod, Class: ref.Class, Name: ref.Name, Desc: ref.Desc, Scope: scope})
		case in.Op == bytecode.New || in.Op == bytecode.Checkcast ||
			in.Op == bytecode.Instanceof || in.Op == bytecode.Anewarray:
			cn, err := cf.Pool.ClassName(in.Index)
			if err != nil || cn == self || isBootstrapClass(cn) || strings.HasPrefix(cn, "[") {
				continue
			}
			set.add(Assumption{Kind: AssumeExists, Class: cn, Scope: scope})
		}
	}
}

// isBootstrapClass reports whether the class belongs to the trusted
// runtime image, whose exports the verification service knows a priori
// (java/*, dvm/*). Assumptions about those need no runtime check.
func isBootstrapClass(name string) bool {
	return strings.HasPrefix(name, "java/") || strings.HasPrefix(name, "dvm/")
}
