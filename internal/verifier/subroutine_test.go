package verifier

import (
	"testing"

	"dvm/internal/bytecode"
	"dvm/internal/classfile"
	"dvm/internal/classgen"
)

// TestJsrSubroutineVerifies: the javac "finally" idiom (jsr to a shared
// subroutine, astore of the return address, ret) passes verification.
func TestJsrSubroutineVerifies(t *testing.T) {
	b := classgen.NewClass("app/Fin", "java/lang/Object")
	m := b.Method(classfile.AccPublic|classfile.AccStatic, "f", "(I)I")
	sub := m.NewLabel()
	after := m.NewLabel()
	m.ILoad(0).IStore(1)
	m.Branch(bytecode.Jsr, sub)
	m.Goto(after)
	m.Mark(sub)
	m.AStore(2) // return address
	m.IInc(1, 1)
	m.Raw(bytecode.Inst{Op: bytecode.Ret, Index: 2})
	m.Mark(after)
	m.ILoad(1).IReturn()
	cf := b.MustBuild()
	if _, err := Verify(cf); err != nil {
		t.Fatalf("jsr/ret idiom rejected: %v", err)
	}
}

// TestRetOnNonReturnAddressRejected: ret must only consume a
// returnAddress local.
func TestRetOnNonReturnAddressRejected(t *testing.T) {
	b := classgen.NewClass("app/BadRet", "java/lang/Object")
	m := b.Method(classfile.AccPublic|classfile.AccStatic, "f", "()V")
	m.LdcString("not a retaddr")
	m.AStore(1)
	m.Raw(bytecode.Inst{Op: bytecode.Ret, Index: 1})
	m.Return()
	cf := b.MustBuild()
	if _, err := Verify(cf); err == nil {
		t.Fatal("ret on a String local accepted")
	}
}

// TestAloadOfReturnAddressRejected: returnAddress values may be stored
// but never reloaded onto the operand stack.
func TestAloadOfReturnAddressRejected(t *testing.T) {
	b := classgen.NewClass("app/BadJsr", "java/lang/Object")
	m := b.Method(classfile.AccPublic|classfile.AccStatic, "f", "()V")
	sub := m.NewLabel()
	m.Branch(bytecode.Jsr, sub)
	m.Return()
	m.Mark(sub)
	m.AStore(1)
	m.ALoad(1) // illegal: retaddr back onto the stack
	m.Pop()
	m.Raw(bytecode.Inst{Op: bytecode.Ret, Index: 1})
	cf := b.MustBuild()
	if _, err := Verify(cf); err == nil {
		t.Fatal("aload of returnAddress accepted")
	}
}

// TestDupFamilyTyping exercises the dup2/dup_x forms over category-1 and
// category-2 values.
func TestDupFamilyTyping(t *testing.T) {
	// dup2 over a long is legal (duplicates both halves).
	ok := classgen.NewClass("app/Dup2L", "java/lang/Object")
	m := ok.Method(classfile.AccPublic|classfile.AccStatic, "f", "()J")
	m.LConst(5)
	m.Inst(bytecode.Dup2)
	m.Inst(bytecode.Ladd)
	m.LReturn()
	if _, err := Verify(ok.MustBuild()); err != nil {
		t.Errorf("dup2 over long rejected: %v", err)
	}

	// swap over a long half is illegal.
	bad := classgen.NewClass("app/SwapL", "java/lang/Object")
	mb := bad.Method(classfile.AccPublic|classfile.AccStatic, "f", "()V")
	mb.LConst(5)
	mb.Inst(bytecode.Swap)
	mb.Inst(bytecode.Pop2)
	mb.Return()
	if _, err := Verify(bad.MustBuild()); err == nil {
		t.Error("swap over long halves accepted")
	}
}

// TestUninitAliasing: after <init> on one alias, every alias of the same
// allocation site becomes initialized.
func TestUninitAliasing(t *testing.T) {
	b := classgen.NewClass("app/Alias", "java/lang/Object")
	m := b.Method(classfile.AccPublic|classfile.AccStatic, "f", "()I")
	m.New("java/lang/Object") // uninit on stack
	m.Dup()                   // two aliases
	m.AStore(1)               // one in a local
	m.InvokeSpecial("java/lang/Object", "<init>", "()V")
	// The local alias must now be initialized and usable.
	m.ALoad(1)
	m.InvokeVirtual("java/lang/Object", "hashCode", "()I")
	m.IReturn()
	if _, err := Verify(b.MustBuild()); err != nil {
		t.Fatalf("alias initialization not propagated: %v", err)
	}
}

// TestInterfaceMethodCountMismatchRejected: invokeinterface's historical
// count operand must equal 1 + argument slots.
func TestInterfaceMethodCountMismatchRejected(t *testing.T) {
	b := classgen.NewClass("app/Iface", "java/lang/Object")
	m := b.Method(classfile.AccPublic|classfile.AccStatic, "f", "(Ljava/lang/Runnable;)V")
	m.ALoad(0)
	m.Raw(bytecode.Inst{
		Op:    bytecode.Invokeinterface,
		Index: b.Pool().AddInterfaceMethodref("java/lang/Runnable", "run", "()V"),
		Count: 9, // wrong: must be 1
	})
	m.Return()
	cf := b.MustBuild()
	_, err := Verify(cf)
	if err == nil {
		t.Fatal("bad invokeinterface count accepted")
	}
	ve, ok := err.(*Error)
	if !ok || ve.Phase != 2 {
		t.Errorf("err = %v, want phase 2", err)
	}
}
