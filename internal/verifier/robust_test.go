package verifier

import (
	"math/rand"
	"testing"

	"dvm/internal/classfile"
)

// The verification service is the trust boundary: Verify must never
// panic on hostile classes — it either accepts or returns an error.

func TestVerifyNeverPanicsOnMutations(t *testing.T) {
	base, err := goodClass().MustBuild().Encode()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31337))
	accepted, rejected, unparsed := 0, 0, 0
	for trial := 0; trial < 4000; trial++ {
		data := append([]byte(nil), base...)
		for k := 0; k < 1+rng.Intn(3); k++ {
			data[rng.Intn(len(data))] = byte(rng.Intn(256))
		}
		cf, err := classfile.Parse(data)
		if err != nil {
			unparsed++
			continue
		}
		if _, err := Verify(cf); err != nil {
			rejected++
		} else {
			accepted++
		}
	}
	// Sanity on the distribution: mutations must usually be caught
	// somewhere (most single-byte flips land in the pool or code).
	if rejected+unparsed == 0 {
		t.Error("no mutation was ever rejected")
	}
	t.Logf("mutations: %d unparsed, %d rejected, %d accepted", unparsed, rejected, accepted)
}

// TestVerifyCatchesWhatTheInterpreterWouldTrip: a class that passes
// verification and whose methods are then invoked must never produce an
// *internal* VM error (Java exceptions are fine) — the safety contract
// between the service and the runtime.
func TestVerifierInterpreterContract(t *testing.T) {
	// Covered end-to-end by eval's integration tests; here we pin the
	// specific hostile pattern of a branch past the end, which must be
	// caught at phase 2, never reaching execution.
	cf := goodClass().MustBuild()
	m := cf.FindMethod("fib", "(I)I")
	code, err := cf.CodeOf(m)
	if err != nil {
		t.Fatal(err)
	}
	code.Bytecode = []byte{0xa7, 0x00, 0x7F} // goto +127 (past end)
	if err := cf.SetCode(m, code); err != nil {
		t.Fatal(err)
	}
	if _, err := Verify(cf); err == nil {
		t.Fatal("branch past end accepted")
	}
}
