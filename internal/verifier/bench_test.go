package verifier

import (
	"fmt"
	"runtime"
	"testing"

	"dvm/internal/classfile"
	"dvm/internal/workload"
)

// benchClass returns a representative generated class for throughput
// measurement.
func benchClass(b *testing.B) ([]byte, *classfile.ClassFile) {
	b.Helper()
	spec := workload.Benchmarks()[0]
	spec.Classes = 3
	spec.TargetBytes = 32 * 1024
	app, err := workload.Generate(spec)
	if err != nil {
		b.Fatal(err)
	}
	for name, data := range app.Classes {
		if name == spec.MainClass() {
			continue
		}
		cf, err := classfile.Parse(data)
		if err != nil {
			b.Fatal(err)
		}
		return data, cf
	}
	b.Fatal("no class")
	return nil, nil
}

// BenchmarkVerify measures static verification throughput (phases 1-3 +
// assumption collection).
func BenchmarkVerify(b *testing.B) {
	data, cf := benchClass(b)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Verify(cf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVerifyWorkers measures the parallel per-method fan-out at
// several pool sizes. On a multicore proxy the speedup at workers=N is
// roughly min(N, methods)×; on a single-core runner the variants should
// at least not regress.
func BenchmarkVerifyWorkers(b *testing.B) {
	data, cf := benchClass(b)
	counts := []int{1, 2, 4, runtime.GOMAXPROCS(0)}
	for _, w := range counts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := VerifyWith(cf, Options{Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkVerifyAndInstrument measures the full static service: verify,
// rewrite into self-verifying form, re-encode.
func BenchmarkVerifyAndInstrument(b *testing.B) {
	data, _ := benchClass(b)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cf, err := classfile.Parse(data)
		if err != nil {
			b.Fatal(err)
		}
		res, err := Verify(cf)
		if err != nil {
			b.Fatal(err)
		}
		if err := Instrument(cf, res); err != nil {
			b.Fatal(err)
		}
		if _, err := cf.Encode(); err != nil {
			b.Fatal(err)
		}
	}
}
