package verifier

import (
	"fmt"
	"strings"

	"dvm/internal/bytecode"
	"dvm/internal/classfile"
)

// phase2 checks instruction integrity for one method: every opcode is
// assigned, operands stay in bounds, branch targets land on instruction
// boundaries (all enforced by bytecode.Decode), and additionally that
// every constant-pool operand has the tag its instruction requires, local
// variable indices fit max_locals, and the exception table is sane.
//
// It returns the decoded instruction list for reuse by phase 3 — the
// single-parse structure the proxy relies on.
func phase2(cf *classfile.ClassFile, m *classfile.Member, code *classfile.Code, census *Census) ([]bytecode.Inst, error) {
	name := cf.Name()
	mname := cf.MemberName(m) + cf.MemberDescriptor(m)
	fail := func(pc int, format string, args ...any) error {
		return &Error{Phase: 2, Class: name, Method: mname,
			Msg: fmt.Sprintf("pc %d: ", pc) + fmt.Sprintf(format, args...)}
	}
	pool := cf.Pool

	insts, err := bytecode.Decode(code.Bytecode)
	if err != nil {
		return nil, &Error{Phase: 2, Class: name, Method: mname, Msg: err.Error()}
	}
	census.Phase2 += len(insts) // decode validated each instruction

	for _, in := range insts {
		switch in.Op.OperandKind() {
		case bytecode.KindCPU1, bytecode.KindCPU2:
			census.Phase2++
			tag := pool.Tag(in.Index)
			switch in.Op {
			case bytecode.Ldc, bytecode.LdcW:
				switch tag {
				case classfile.TagInteger, classfile.TagFloat, classfile.TagString:
				default:
					return nil, fail(in.PC, "ldc operand %d has tag %s", in.Index, tag)
				}
			case bytecode.Ldc2W:
				if tag != classfile.TagLong && tag != classfile.TagDouble {
					return nil, fail(in.PC, "ldc2_w operand %d has tag %s", in.Index, tag)
				}
			case bytecode.Getstatic, bytecode.Putstatic, bytecode.Getfield, bytecode.Putfield:
				if tag != classfile.TagFieldref {
					return nil, fail(in.PC, "%s operand %d has tag %s", in.Op.Name(), in.Index, tag)
				}
			case bytecode.Invokevirtual, bytecode.Invokestatic:
				if tag != classfile.TagMethodref {
					return nil, fail(in.PC, "%s operand %d has tag %s", in.Op.Name(), in.Index, tag)
				}
			case bytecode.Invokespecial:
				if tag != classfile.TagMethodref && tag != classfile.TagInterfaceMethodref {
					return nil, fail(in.PC, "invokespecial operand %d has tag %s", in.Index, tag)
				}
			case bytecode.New, bytecode.Anewarray, bytecode.Checkcast, bytecode.Instanceof:
				if tag != classfile.TagClass {
					return nil, fail(in.PC, "%s operand %d has tag %s", in.Op.Name(), in.Index, tag)
				}
				if in.Op == bytecode.New {
					cn, _ := pool.ClassName(in.Index)
					if strings.HasPrefix(cn, "[") {
						return nil, fail(in.PC, "new of array class %s", cn)
					}
				}
			}
			// Method name restrictions.
			if in.Op.IsInvoke() {
				census.Phase2++
				ref, err := pool.Ref(in.Index)
				if err != nil {
					return nil, fail(in.PC, "%v", err)
				}
				if ref.Name == "<clinit>" {
					return nil, fail(in.PC, "explicit invocation of <clinit>")
				}
				if ref.Name == "<init>" && in.Op != bytecode.Invokespecial {
					return nil, fail(in.PC, "<init> must be invoked by invokespecial")
				}
			}
		case bytecode.KindIfaceRef:
			census.Phase2++
			if pool.Tag(in.Index) != classfile.TagInterfaceMethodref {
				return nil, fail(in.PC, "invokeinterface operand %d has tag %s", in.Index, pool.Tag(in.Index))
			}
			ref, err := pool.Ref(in.Index)
			if err != nil {
				return nil, fail(in.PC, "%v", err)
			}
			mt, err := bytecode.ParseMethodType(ref.Desc)
			if err != nil {
				return nil, fail(in.PC, "%v", err)
			}
			if int(in.Count) != mt.ParamSlots()+1 {
				return nil, fail(in.PC, "invokeinterface count %d != %d", in.Count, mt.ParamSlots()+1)
			}
		case bytecode.KindMultiNew:
			census.Phase2++
			if pool.Tag(in.Index) != classfile.TagClass {
				return nil, fail(in.PC, "multianewarray operand %d not a Class", in.Index)
			}
			cn, _ := pool.ClassName(in.Index)
			t, err := bytecode.ParseType(cn)
			if err != nil || t.Kind != bytecode.KArray {
				return nil, fail(in.PC, "multianewarray of non-array class %s", cn)
			}
			depth := 0
			for tt := &t; tt.Kind == bytecode.KArray; tt = tt.Elem {
				depth++
			}
			if int(in.Dims) > depth {
				return nil, fail(in.PC, "multianewarray dims %d exceed array depth %d", in.Dims, depth)
			}
		case bytecode.KindLocal:
			census.Phase2++
			slots := 1
			switch in.Op {
			case bytecode.Lload, bytecode.Dload, bytecode.Lstore, bytecode.Dstore:
				slots = 2
			}
			if int(in.Index)+slots > int(code.MaxLocals) {
				return nil, fail(in.PC, "local %d out of range (max_locals %d)", in.Index, code.MaxLocals)
			}
		case bytecode.KindIinc:
			census.Phase2++
			if int(in.Index) >= int(code.MaxLocals) {
				return nil, fail(in.PC, "iinc local %d out of range", in.Index)
			}
		}
	}

	// Exception table sanity.
	pcIdx := bytecode.PCMap(insts)
	for _, h := range code.Handlers {
		census.Phase2++
		if _, ok := pcIdx[int(h.StartPC)]; !ok {
			return nil, fail(int(h.StartPC), "handler start not on instruction boundary")
		}
		if _, ok := pcIdx[int(h.HandlerPC)]; !ok {
			return nil, fail(int(h.HandlerPC), "handler entry not on instruction boundary")
		}
		if int(h.EndPC) != len(code.Bytecode) {
			if _, ok := pcIdx[int(h.EndPC)]; !ok {
				return nil, fail(int(h.EndPC), "handler end not on instruction boundary")
			}
		}
		if h.StartPC >= h.EndPC {
			return nil, fail(int(h.StartPC), "empty handler range [%d, %d)", h.StartPC, h.EndPC)
		}
		if h.CatchType != 0 {
			if _, err := pool.ClassName(h.CatchType); err != nil {
				return nil, fail(int(h.HandlerPC), "bad catch type: %v", err)
			}
		}
	}
	return insts, nil
}
