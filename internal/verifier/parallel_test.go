package verifier

import (
	"bytes"
	"reflect"
	"testing"

	"dvm/internal/classfile"
	"dvm/internal/workload"
)

// corpusClasses returns every parseable class in the workload corpus.
func corpusClasses(t *testing.T) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	for _, spec := range workload.Benchmarks() {
		spec.Classes = 3
		spec.TargetBytes = 24 * 1024
		app, err := workload.Generate(spec)
		if err != nil {
			t.Fatal(err)
		}
		for name, data := range app.Classes {
			out[spec.Name+"/"+name] = data
		}
	}
	return out
}

// TestVerifyParallelIdentical asserts the tentpole determinism guarantee:
// for every corpus class, VerifyWith at workers=2,4,8 produces exactly
// the census, assumption list (same order), and instrumented bytes that
// the sequential path produces.
func TestVerifyParallelIdentical(t *testing.T) {
	for name, data := range corpusClasses(t) {
		seqCF, err := classfile.Parse(data)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		seqRes, err := VerifyWith(seqCF, Options{Workers: 1})
		if err != nil {
			t.Fatalf("%s: sequential verify: %v", name, err)
		}
		// Snapshot before Instrument, which bumps DynamicInjected.
		seqCensus := seqRes.Census
		seqAssumptions := append([]Assumption(nil), seqRes.Assumptions...)
		if err := Instrument(seqCF, seqRes); err != nil {
			t.Fatalf("%s: instrument: %v", name, err)
		}
		seqBytes, err := seqCF.Encode()
		if err != nil {
			t.Fatalf("%s: encode: %v", name, err)
		}

		for _, workers := range []int{2, 4, 8} {
			parCF, err := classfile.Parse(data)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			parRes, err := VerifyWith(parCF, Options{Workers: workers})
			if err != nil {
				t.Fatalf("%s: workers=%d verify: %v", name, workers, err)
			}
			if parRes.Census != seqCensus {
				t.Errorf("%s: workers=%d census %+v != sequential %+v", name, workers, parRes.Census, seqCensus)
			}
			if !reflect.DeepEqual(parRes.Assumptions, seqAssumptions) {
				t.Errorf("%s: workers=%d assumptions diverge from sequential", name, workers)
			}
			if err := Instrument(parCF, parRes); err != nil {
				t.Fatalf("%s: workers=%d instrument: %v", name, workers, err)
			}
			parBytes, err := parCF.Encode()
			if err != nil {
				t.Fatalf("%s: workers=%d encode: %v", name, workers, err)
			}
			if !bytes.Equal(parBytes, seqBytes) {
				t.Errorf("%s: workers=%d instrumented bytes differ from sequential (%d vs %d bytes)",
					name, workers, len(parBytes), len(seqBytes))
			}
		}
	}
}

// TestVerifyParallelErrorDeterministic corrupts one method's bytecode and
// checks every worker count reports the same (lowest method index) error.
func TestVerifyParallelErrorDeterministic(t *testing.T) {
	var data []byte
	for name, d := range corpusClasses(t) {
		cf, err := classfile.Parse(d)
		if err != nil {
			continue
		}
		if len(cf.Methods) >= 4 {
			data = d
			_ = name
			break
		}
	}
	if data == nil {
		t.Skip("no multi-method corpus class")
	}

	// Corrupt the bytecode of two methods so multiple workers fail and
	// the merge has to pick deterministically.
	corrupt := func() *classfile.ClassFile {
		cf, err := classfile.Parse(data)
		if err != nil {
			t.Fatal(err)
		}
		broken := 0
		for _, m := range cf.Methods {
			code, err := cf.CodeOf(m)
			if err != nil || code == nil {
				continue
			}
			code.Bytecode[0] = 0xFF // impdep2: illegal in classfiles
			if err := cf.SetCode(m, code); err != nil {
				t.Fatal(err)
			}
			if broken++; broken == 2 {
				break
			}
		}
		if broken == 0 {
			t.Skip("no code-bearing methods to corrupt")
		}
		return cf
	}

	_, seqErr := VerifyWith(corrupt(), Options{Workers: 1})
	if seqErr == nil {
		t.Fatal("corrupted class verified cleanly")
	}
	for _, workers := range []int{2, 4, 8} {
		_, parErr := VerifyWith(corrupt(), Options{Workers: workers})
		if parErr == nil {
			t.Fatalf("workers=%d: corrupted class verified cleanly", workers)
		}
		if parErr.Error() != seqErr.Error() {
			t.Errorf("workers=%d error %q != sequential %q", workers, parErr, seqErr)
		}
	}
}
