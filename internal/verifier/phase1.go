package verifier

import (
	"fmt"
	"strings"

	"dvm/internal/bytecode"
	"dvm/internal/classfile"
)

// phase1 checks the internal consistency of the class file: every
// constant pool cross-reference resolves to an entry of the right tag,
// names and descriptors are syntactically valid, access flag
// combinations are legal, and members are well-formed.
func phase1(cf *classfile.ClassFile, census *Census) error {
	name := cf.Name()
	fail := func(format string, args ...any) error {
		return &Error{Phase: 1, Class: name, Msg: fmt.Sprintf(format, args...)}
	}
	pool := cf.Pool

	// Pool-wide cross-reference validation. The switch is driven by Tag
	// (which never decodes) and entries are only resolved for tags whose
	// checks need the referenced strings: names and descriptors get
	// materialized because they are validated, but the payloads of string
	// literals stay undecoded byte ranges in the lazy codec.
	for i := 1; i < pool.Size(); i++ {
		idx := uint16(i)
		tag := pool.Tag(idx)
		if tag == 0 {
			continue // second slot of long/double
		}
		census.Phase1++
		switch tag {
		case classfile.TagClass:
			e, _ := pool.Entry(idx)
			n, err := pool.Utf8(e.Ref1)
			if err != nil {
				return fail("Class constant %d: %v", i, err)
			}
			if !validClassName(n) {
				return fail("Class constant %d: malformed name %q", i, n)
			}
		case classfile.TagString:
			// A tag check suffices: the Utf8 payload itself was validated
			// at the parse gate, so decoding the literal here would only
			// defeat the lazy codec.
			e, _ := pool.Entry(idx)
			if pool.Tag(e.Ref1) != classfile.TagUtf8 {
				return fail("String constant %d: string index %d is not a Utf8", i, e.Ref1)
			}
		case classfile.TagNameAndType:
			e, _ := pool.Entry(idx)
			n, err := pool.Utf8(e.Ref1)
			if err != nil {
				return fail("NameAndType %d: %v", i, err)
			}
			d, err := pool.Utf8(e.Ref2)
			if err != nil {
				return fail("NameAndType %d: %v", i, err)
			}
			if !validMemberName(n) && n != "<init>" && n != "<clinit>" {
				return fail("NameAndType %d: malformed name %q", i, n)
			}
			if err := validDescriptor(n, d); err != nil {
				return fail("NameAndType %d: %v", i, err)
			}
		case classfile.TagFieldref, classfile.TagMethodref, classfile.TagInterfaceMethodref:
			e, _ := pool.Entry(idx)
			if pool.Tag(e.Ref1) != classfile.TagClass {
				return fail("member ref %d: class index %d is not a Class", i, e.Ref1)
			}
			if pool.Tag(e.Ref2) != classfile.TagNameAndType {
				return fail("member ref %d: nat index %d is not a NameAndType", i, e.Ref2)
			}
			// Cross-validate member kind against descriptor shape (one of
			// the underspecified redundancies the paper notes verifiers
			// disagree on; we enforce it).
			n, d, err := pool.NameAndType(e.Ref2)
			if err != nil {
				return fail("member ref %d: %v", i, err)
			}
			isMethodDesc := strings.HasPrefix(d, "(")
			if e.Tag == classfile.TagFieldref && isMethodDesc {
				return fail("Fieldref %d has method descriptor %s", i, d)
			}
			if e.Tag != classfile.TagFieldref && !isMethodDesc {
				return fail("Methodref %d has field descriptor %s", i, d)
			}
			_ = n
		}
	}

	// this/super/interfaces.
	census.Phase1++
	if _, err := pool.ClassName(cf.ThisClass); err != nil {
		return fail("this_class: %v", err)
	}
	census.Phase1++
	if cf.SuperClass != 0 {
		if _, err := pool.ClassName(cf.SuperClass); err != nil {
			return fail("super_class: %v", err)
		}
	} else if name != "java/lang/Object" {
		return fail("missing superclass")
	}
	if cf.IsInterface() {
		census.Phase1++
		if cf.SuperName() != "java/lang/Object" {
			return fail("interface must extend java/lang/Object")
		}
		if cf.AccessFlags&classfile.AccFinal != 0 {
			return fail("interface cannot be final")
		}
	}
	if cf.AccessFlags&classfile.AccFinal != 0 && cf.AccessFlags&classfile.AccAbstract != 0 {
		return fail("class cannot be both final and abstract")
	}
	for _, i := range cf.Interfaces {
		census.Phase1++
		if _, err := pool.ClassName(i); err != nil {
			return fail("interfaces: %v", err)
		}
	}

	// Members.
	seenField := map[string]bool{}
	for _, f := range cf.Fields {
		census.Phase1++
		fn := cf.MemberName(f)
		fd := cf.MemberDescriptor(f)
		if !validMemberName(fn) || fn == "<init>" || fn == "<clinit>" {
			return fail("field with malformed name %q", fn)
		}
		if _, err := bytecode.ParseType(fd); err != nil {
			return fail("field %s: bad descriptor %q", fn, fd)
		}
		key := fn + " " + fd
		if seenField[key] {
			return fail("duplicate field %s", key)
		}
		seenField[key] = true
		if f.AccessFlags&classfile.AccFinal != 0 && f.AccessFlags&classfile.AccVolatile != 0 {
			return fail("field %s both final and volatile", fn)
		}
		if a := cf.FindAttr(f.Attributes, classfile.AttrConstantValue); a != nil {
			idx, err := classfile.ConstantValueIndex(a)
			if err != nil {
				return fail("field %s: %v", fn, err)
			}
			census.Phase1++
			if err := constantMatchesDescriptor(pool, idx, fd); err != nil {
				return fail("field %s: %v", fn, err)
			}
		}
	}
	seenMethod := map[string]bool{}
	for _, m := range cf.Methods {
		census.Phase1++
		mn := cf.MemberName(m)
		md := cf.MemberDescriptor(m)
		if !validMemberName(mn) && mn != "<init>" && mn != "<clinit>" {
			return fail("method with malformed name %q", mn)
		}
		mt, err := bytecode.ParseMethodType(md)
		if err != nil {
			return fail("method %s: bad descriptor %q", mn, md)
		}
		if mn == "<init>" && mt.Ret.Kind != bytecode.KVoid {
			return fail("constructor %s must return void", md)
		}
		key := mn + " " + md
		if seenMethod[key] {
			return fail("duplicate method %s", key)
		}
		seenMethod[key] = true
		abstract := m.AccessFlags&(classfile.AccAbstract|classfile.AccNative) != 0
		code := cf.FindAttr(m.Attributes, classfile.AttrCode)
		census.Phase1++
		if abstract && code != nil {
			return fail("abstract/native method %s has a Code attribute", mn)
		}
		if !abstract && code == nil {
			return fail("method %s lacks a Code attribute", mn)
		}
		if m.AccessFlags&classfile.AccAbstract != 0 &&
			m.AccessFlags&(classfile.AccFinal|classfile.AccStatic|classfile.AccPrivate) != 0 {
			return fail("abstract method %s has conflicting flags", mn)
		}
	}
	return nil
}

func validClassName(n string) bool {
	if n == "" {
		return false
	}
	if n[0] == '[' {
		_, err := bytecode.ParseType(n)
		return err == nil
	}
	for _, seg := range strings.Split(n, "/") {
		if seg == "" || strings.ContainsAny(seg, ".;[") {
			return false
		}
	}
	return true
}

func validMemberName(n string) bool {
	return n != "" && !strings.ContainsAny(n, ".;[/<>")
}

func validDescriptor(name, d string) error {
	if strings.HasPrefix(d, "(") {
		mt, err := bytecode.ParseMethodType(d)
		if err != nil {
			return err
		}
		if name == "<init>" && mt.Ret.Kind != bytecode.KVoid {
			return &Error{Phase: 1, Msg: "constructor descriptor must return void"}
		}
		return nil
	}
	_, err := bytecode.ParseType(d)
	return err
}

func constantMatchesDescriptor(pool *classfile.ConstPool, idx uint16, desc string) error {
	e, err := pool.Entry(idx)
	if err != nil {
		return err
	}
	ok := false
	switch desc {
	case "I", "S", "B", "C", "Z":
		ok = e.Tag == classfile.TagInteger
	case "J":
		ok = e.Tag == classfile.TagLong
	case "F":
		ok = e.Tag == classfile.TagFloat
	case "D":
		ok = e.Tag == classfile.TagDouble
	case "Ljava/lang/String;":
		ok = e.Tag == classfile.TagString
	}
	if !ok {
		return fmt.Errorf("ConstantValue tag %s does not match descriptor %s", e.Tag, desc)
	}
	return nil
}
