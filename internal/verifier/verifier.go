// Package verifier implements the DVM's distributed verification service
// (paper §3.1).
//
// Java verification has four phases. The first three operate on a single
// class file in isolation and run *statically* on the network server:
//
//	phase 1 — internal consistency of the class file (constant pool
//	          cross-references, descriptor syntax, flag combinations);
//	phase 2 — instruction integrity (valid opcodes, operands in range,
//	          branch targets on instruction boundaries);
//	phase 3 — type safety, by abstract interpretation over a type
//	          lattice.
//
// The fourth phase checks the assumptions a class makes about other
// classes in its namespace (imported fields, methods, and inheritance
// relationships). Those are inherently client-side, so the static
// verifier collects each assumption together with its scope and rewrites
// the class to perform the corresponding check at run time by invoking
// the small dvm/RTVerifier dynamic component — producing a
// *self-verifying application* (Figure 3). The dynamic component's job is
// "limited to a descriptor lookup and string comparison."
//
// The same Verify entry point, invoked from a jvm.LoadHook, doubles as
// the monolithic baseline's local verifier for the Figure 6/7
// comparisons.
package verifier

import (
	"fmt"
	"sort"
)

// Census counts the safety checks performed or deferred for one class —
// the raw material of the paper's Figure 8 table (static vs. dynamic
// checks).
type Census struct {
	Phase1 int // structural consistency checks performed
	Phase2 int // instruction integrity checks performed
	Phase3 int // dataflow type checks performed
	// DynamicInjected counts the RTVerifier invocations the rewriter
	// embedded into the class (the deferred phase-4 checks).
	DynamicInjected int
}

// Static returns the total checks performed on the server.
func (c Census) Static() int { return c.Phase1 + c.Phase2 + c.Phase3 }

// Add accumulates another census (used per-application).
func (c *Census) Add(o Census) {
	c.Phase1 += o.Phase1
	c.Phase2 += o.Phase2
	c.Phase3 += o.Phase3
	c.DynamicInjected += o.DynamicInjected
}

// AssumptionKind classifies a phase-4 assumption.
type AssumptionKind uint8

// Assumption kinds.
const (
	// AssumeField: the named class exports a field with this descriptor.
	AssumeField AssumptionKind = iota
	// AssumeMethod: the named class exports a method with this descriptor.
	AssumeMethod
	// AssumeAssignable: Class is assignable to Name (inheritance
	// assumptions — "fundamental assumptions, such as inheritance
	// relationships, affect the validity of the entire class").
	AssumeAssignable
	// AssumeExists: the named class exists in the client namespace.
	AssumeExists
)

func (k AssumptionKind) String() string {
	switch k {
	case AssumeField:
		return "field"
	case AssumeMethod:
		return "method"
	case AssumeAssignable:
		return "assignable"
	case AssumeExists:
		return "exists"
	}
	return "?"
}

// Assumption is one environmental fact a class relies on, with the scope
// the verification service computed for it: the method key ("name desc")
// whose instructions depend on it, or "" for class-wide scope.
type Assumption struct {
	Kind  AssumptionKind
	Class string // class the assumption is about
	Name  string // member name, or relation target for AssumeAssignable
	Desc  string // member descriptor
	Scope string // "name desc" of the dependent method; "" = whole class
}

// key is the dedup identity (scope-insensitive for class-wide facts).
func (a Assumption) key() string {
	return fmt.Sprintf("%d\x00%s\x00%s\x00%s\x00%s", a.Kind, a.Class, a.Name, a.Desc, a.Scope)
}

// Error is a verification failure: the phase that rejected the class and
// why. The distributed service converts these into replacement classes
// that raise VerifyError on the client (§3.1: "verification errors are
// reflected to clients through the regular Java exception mechanisms").
type Error struct {
	Phase  int
	Class  string
	Method string // "" for class-level failures
	Msg    string
}

func (e *Error) Error() string {
	if e.Method != "" {
		return fmt.Sprintf("verifier: phase %d: %s.%s: %s", e.Phase, e.Class, e.Method, e.Msg)
	}
	return fmt.Sprintf("verifier: phase %d: %s: %s", e.Phase, e.Class, e.Msg)
}

// Result is the outcome of static verification of one class.
type Result struct {
	ClassName   string
	Census      Census
	Assumptions []Assumption
}

// assumptionSet dedups assumptions while preserving deterministic order.
type assumptionSet struct {
	seen map[string]struct{}
	list []Assumption
}

func newAssumptionSet() *assumptionSet {
	return &assumptionSet{seen: make(map[string]struct{})}
}

func (s *assumptionSet) add(a Assumption) {
	k := a.key()
	if _, dup := s.seen[k]; dup {
		return
	}
	s.seen[k] = struct{}{}
	s.list = append(s.list, a)
}

// byScope partitions assumptions per method scope, sorted for
// deterministic rewriting.
func byScope(as []Assumption) map[string][]Assumption {
	m := make(map[string][]Assumption)
	for _, a := range as {
		m[a.Scope] = append(m[a.Scope], a)
	}
	for _, v := range m {
		sort.Slice(v, func(i, j int) bool {
			if v[i].Kind != v[j].Kind {
				return v[i].Kind < v[j].Kind
			}
			if v[i].Class != v[j].Class {
				return v[i].Class < v[j].Class
			}
			if v[i].Name != v[j].Name {
				return v[i].Name < v[j].Name
			}
			return v[i].Desc < v[j].Desc
		})
	}
	return m
}
