package verifier

import (
	"fmt"

	"dvm/internal/bytecode"
	"dvm/internal/classfile"
)

// Abstract value kinds for the dataflow lattice.
type vkind uint8

const (
	vtTop vkind = iota // unusable / merged-incompatible
	vtInt
	vtFloat
	vtLong
	vtLong2 // second slot of a long
	vtDouble
	vtDouble2 // second slot of a double
	vtRef
	vtNull
	vtRet        // returnAddress from jsr
	vtUninit     // result of `new`, before <init>
	vtUninitThis // `this` in a constructor, before super-call
)

// vt is one abstract slot value.
type vt struct {
	kind vkind
	cls  string // class for vtRef / vtUninit
	site int    // allocation site (instruction index) for vtUninit
}

var (
	tTop    = vt{kind: vtTop}
	tInt    = vt{kind: vtInt}
	tFloat  = vt{kind: vtFloat}
	tLong   = vt{kind: vtLong}
	tLong2  = vt{kind: vtLong2}
	tDouble = vt{kind: vtDouble}
	tDbl2   = vt{kind: vtDouble2}
	tNull   = vt{kind: vtNull}
)

func tRef(cls string) vt { return vt{kind: vtRef, cls: cls} }

func (v vt) isOneSlotRefLike() bool {
	return v.kind == vtRef || v.kind == vtNull || v.kind == vtUninit || v.kind == vtUninitThis
}

func (v vt) category() int {
	switch v.kind {
	case vtLong, vtDouble:
		return 2
	case vtLong2, vtDouble2:
		return 0 // halves are not directly manipulable
	}
	return 1
}

func (v vt) String() string {
	switch v.kind {
	case vtTop:
		return "top"
	case vtInt:
		return "int"
	case vtFloat:
		return "float"
	case vtLong:
		return "long"
	case vtLong2:
		return "long2"
	case vtDouble:
		return "double"
	case vtDouble2:
		return "double2"
	case vtRef:
		return "ref(" + v.cls + ")"
	case vtNull:
		return "null"
	case vtRet:
		return "retaddr"
	case vtUninit:
		return fmt.Sprintf("uninit(%s@%d)", v.cls, v.site)
	case vtUninitThis:
		return "uninitThis"
	}
	return "?"
}

// merge joins two abstract values at a control-flow join. Incompatible
// reference classes join to java/lang/Object — the cross-class precision
// is exactly what the DVM defers to link-time assumptions, per §3.1.
func merge(a, b vt) vt {
	if a == b {
		return a
	}
	if a.kind == b.kind {
		switch a.kind {
		case vtRef:
			return tRef("java/lang/Object")
		case vtUninit:
			return tTop // distinct allocation sites must not merge
		default:
			return a
		}
	}
	if a.kind == vtNull && b.kind == vtRef {
		return b
	}
	if b.kind == vtNull && a.kind == vtRef {
		return a
	}
	return tTop
}

// state is the abstract frame at one program point.
type state struct {
	locals []vt
	stack  []vt
}

func (s state) clone() state {
	ns := state{locals: make([]vt, len(s.locals)), stack: make([]vt, len(s.stack))}
	copy(ns.locals, s.locals)
	copy(ns.stack, s.stack)
	return ns
}

// typeToVT converts a descriptor type into abstract slot values.
func typeToVT(t bytecode.Type) []vt {
	switch t.Kind {
	case bytecode.KInt, bytecode.KBoolean, bytecode.KByte, bytecode.KChar, bytecode.KShort:
		return []vt{tInt}
	case bytecode.KFloat:
		return []vt{tFloat}
	case bytecode.KLong:
		return []vt{tLong, tLong2}
	case bytecode.KDouble:
		return []vt{tDouble, tDbl2}
	case bytecode.KObject:
		return []vt{tRef(t.ClassName)}
	case bytecode.KArray:
		return []vt{tRef(t.String())}
	}
	return nil
}

// phase3 runs the abstract interpreter over one method body.
func phase3(cf *classfile.ClassFile, m *classfile.Member, code *classfile.Code,
	insts []bytecode.Inst, census *Census) error {
	name := cf.Name()
	mname := cf.MemberName(m)
	mdesc := cf.MemberDescriptor(m)
	fail := func(idx int, format string, args ...any) error {
		pc := 0
		if idx >= 0 && idx < len(insts) {
			pc = insts[idx].PC
		}
		return &Error{Phase: 3, Class: name, Method: mname + mdesc,
			Msg: fmt.Sprintf("pc %d: ", pc) + fmt.Sprintf(format, args...)}
	}

	mt, err := bytecode.ParseMethodType(mdesc)
	if err != nil {
		return fail(-1, "%v", err)
	}

	// Initial frame.
	init := state{locals: make([]vt, code.MaxLocals)}
	for i := range init.locals {
		init.locals[i] = tTop
	}
	slot := 0
	if m.AccessFlags&classfile.AccStatic == 0 {
		if mname == "<init>" && name != "java/lang/Object" {
			init.locals[0] = vt{kind: vtUninitThis, cls: name}
		} else {
			init.locals[0] = tRef(name)
		}
		slot = 1
	}
	for _, p := range mt.Params {
		for _, v := range typeToVT(p) {
			if slot >= len(init.locals) {
				return fail(-1, "parameters exceed max_locals %d", code.MaxLocals)
			}
			init.locals[slot] = v
			slot++
		}
	}

	// Handler map: instruction index -> handlers covering it.
	pcIdx := bytecode.PCMap(insts)
	type hEdge struct {
		target int
		exc    vt
	}
	coverage := make([][]hEdge, len(insts))
	for _, h := range code.Handlers {
		si := pcIdx[int(h.StartPC)]
		var ei int
		if int(h.EndPC) == len(code.Bytecode) {
			ei = len(insts)
		} else {
			ei = pcIdx[int(h.EndPC)]
		}
		hi := pcIdx[int(h.HandlerPC)]
		exc := tRef("java/lang/Throwable")
		if h.CatchType != 0 {
			cn, err := cf.Pool.ClassName(h.CatchType)
			if err != nil {
				return fail(hi, "%v", err)
			}
			exc = tRef(cn)
		}
		for i := si; i < ei && i < len(insts); i++ {
			coverage[i] = append(coverage[i], hEdge{target: hi, exc: exc})
		}
	}

	in := make([]state, len(insts))
	seen := make([]bool, len(insts))
	var work []int

	mergeInto := func(idx int, s state) error {
		if idx < 0 || idx >= len(insts) {
			return fail(idx, "control transfer out of method")
		}
		if !seen[idx] {
			seen[idx] = true
			in[idx] = s.clone()
			work = append(work, idx)
			return nil
		}
		cur := &in[idx]
		census.Phase3++
		if len(cur.stack) != len(s.stack) {
			return fail(idx, "inconsistent stack height at join: %d vs %d", len(cur.stack), len(s.stack))
		}
		changed := false
		for i := range cur.locals {
			nv := merge(cur.locals[i], s.locals[i])
			if nv != cur.locals[i] {
				cur.locals[i] = nv
				changed = true
			}
		}
		for i := range cur.stack {
			nv := merge(cur.stack[i], s.stack[i])
			if nv != cur.stack[i] {
				cur.stack[i] = nv
				changed = true
			}
		}
		if changed {
			work = append(work, idx)
		}
		return nil
	}

	if err := mergeInto(0, init); err != nil {
		return err
	}

	maxStack := int(code.MaxStack)
	for len(work) > 0 {
		idx := work[len(work)-1]
		work = work[:len(work)-1]
		s := in[idx].clone()
		inst := insts[idx]
		census.Phase3++

		// Exception edges: the handler sees this instruction's *entry*
		// locals with a one-element stack.
		for _, he := range coverage[idx] {
			hs := state{locals: in[idx].clone().locals, stack: []vt{he.exc}}
			if err := mergeInto(he.target, hs); err != nil {
				return err
			}
		}

		push := func(v ...vt) error {
			s.stack = append(s.stack, v...)
			if len(s.stack) > maxStack {
				return fail(idx, "operand stack overflow: %d > max_stack %d", len(s.stack), maxStack)
			}
			return nil
		}
		pop := func() (vt, error) {
			if len(s.stack) == 0 {
				return tTop, fail(idx, "operand stack underflow")
			}
			v := s.stack[len(s.stack)-1]
			s.stack = s.stack[:len(s.stack)-1]
			return v, nil
		}
		popKind := func(k vkind) error {
			v, err := pop()
			if err != nil {
				return err
			}
			census.Phase3++
			if v.kind != k {
				return fail(idx, "%s: expected %v on stack, found %v", inst.Op.Name(), vt{kind: k}, v)
			}
			return nil
		}
		popRef := func() (vt, error) {
			v, err := pop()
			if err != nil {
				return v, err
			}
			census.Phase3++
			if !v.isOneSlotRefLike() {
				return v, fail(idx, "%s: expected reference, found %v", inst.Op.Name(), v)
			}
			return v, nil
		}
		popWide := func(k vkind, k2 vkind) error {
			hi, err := pop()
			if err != nil {
				return err
			}
			lo, err := pop()
			if err != nil {
				return err
			}
			census.Phase3++
			if hi.kind != k2 || lo.kind != k {
				return fail(idx, "%s: expected %v pair, found %v/%v", inst.Op.Name(), vt{kind: k}, lo, hi)
			}
			return nil
		}
		popType := func(t bytecode.Type) error {
			switch t.Kind {
			case bytecode.KLong:
				return popWide(vtLong, vtLong2)
			case bytecode.KDouble:
				return popWide(vtDouble, vtDouble2)
			case bytecode.KFloat:
				return popKind(vtFloat)
			case bytecode.KObject, bytecode.KArray:
				_, err := popRef()
				return err
			default:
				return popKind(vtInt)
			}
		}
		setLocal := func(i int, v ...vt) error {
			census.Phase3++
			if i+len(v) > len(s.locals) {
				return fail(idx, "local %d out of range", i)
			}
			// Invalidate a wide value whose first half is being overwritten.
			if i > 0 && (s.locals[i-1].kind == vtLong || s.locals[i-1].kind == vtDouble) {
				s.locals[i-1] = tTop
			}
			for j, vv := range v {
				s.locals[i+j] = vv
			}
			// Overwriting the first half kills the second.
			end := i + len(v)
			if end < len(s.locals) && (v[len(v)-1].kind == vtLong || v[len(v)-1].kind == vtDouble) {
				// second half written by caller passing both slots
			}
			return nil
		}
		getLocal := func(i int, k vkind) (vt, error) {
			census.Phase3++
			if i >= len(s.locals) {
				return tTop, fail(idx, "local %d out of range", i)
			}
			v := s.locals[i]
			if k == vtRef {
				if !v.isOneSlotRefLike() && v.kind != vtRet {
					return v, fail(idx, "%s: local %d holds %v, want reference", inst.Op.Name(), i, v)
				}
				return v, nil
			}
			if v.kind != k {
				return v, fail(idx, "%s: local %d holds %v, want %v", inst.Op.Name(), i, v, vt{kind: k})
			}
			if k == vtLong || k == vtDouble {
				want := vtLong2
				if k == vtDouble {
					want = vtDouble2
				}
				if i+1 >= len(s.locals) || s.locals[i+1].kind != want {
					return v, fail(idx, "%s: local %d wide value corrupted", inst.Op.Name(), i)
				}
			}
			return v, nil
		}

		flowEnds := false
		if err := func() error {
			op := inst.Op
			switch {
			case op == bytecode.Nop:
			case op == bytecode.AconstNull:
				return push(tNull)
			case op >= bytecode.IconstM1 && op <= bytecode.Iconst5:
				return push(tInt)
			case op == bytecode.Lconst0 || op == bytecode.Lconst1:
				return push(tLong, tLong2)
			case op >= bytecode.Fconst0 && op <= bytecode.Fconst2:
				return push(tFloat)
			case op == bytecode.Dconst0 || op == bytecode.Dconst1:
				return push(tDouble, tDbl2)
			case op == bytecode.Bipush || op == bytecode.Sipush:
				return push(tInt)
			case op == bytecode.Ldc || op == bytecode.LdcW:
				switch cf.Pool.Tag(inst.Index) {
				case classfile.TagInteger:
					return push(tInt)
				case classfile.TagFloat:
					return push(tFloat)
				case classfile.TagString:
					return push(tRef("java/lang/String"))
				}
				return fail(idx, "ldc of unexpected tag")
			case op == bytecode.Ldc2W:
				if cf.Pool.Tag(inst.Index) == classfile.TagLong {
					return push(tLong, tLong2)
				}
				return push(tDouble, tDbl2)

			case op == bytecode.Iload || (op >= bytecode.Iload0 && op <= bytecode.Iload3):
				i := localIndex(inst, bytecode.Iload0)
				if _, err := getLocal(i, vtInt); err != nil {
					return err
				}
				return push(tInt)
			case op == bytecode.Fload || (op >= bytecode.Fload0 && op <= bytecode.Fload3):
				i := localIndex(inst, bytecode.Fload0)
				if _, err := getLocal(i, vtFloat); err != nil {
					return err
				}
				return push(tFloat)
			case op == bytecode.Lload || (op >= bytecode.Lload0 && op <= bytecode.Lload3):
				i := localIndex(inst, bytecode.Lload0)
				if _, err := getLocal(i, vtLong); err != nil {
					return err
				}
				return push(tLong, tLong2)
			case op == bytecode.Dload || (op >= bytecode.Dload0 && op <= bytecode.Dload3):
				i := localIndex(inst, bytecode.Dload0)
				if _, err := getLocal(i, vtDouble); err != nil {
					return err
				}
				return push(tDouble, tDbl2)
			case op == bytecode.Aload || (op >= bytecode.Aload0 && op <= bytecode.Aload3):
				i := localIndex(inst, bytecode.Aload0)
				v, err := getLocal(i, vtRef)
				if err != nil {
					return err
				}
				if v.kind == vtRet {
					return fail(idx, "aload of returnAddress")
				}
				return push(v)

			case op == bytecode.Istore || (op >= bytecode.Istore0 && op <= bytecode.Istore3):
				if err := popKind(vtInt); err != nil {
					return err
				}
				return setLocal(localIndex(inst, bytecode.Istore0), tInt)
			case op == bytecode.Fstore || (op >= bytecode.Fstore0 && op <= bytecode.Fstore3):
				if err := popKind(vtFloat); err != nil {
					return err
				}
				return setLocal(localIndex(inst, bytecode.Fstore0), tFloat)
			case op == bytecode.Lstore || (op >= bytecode.Lstore0 && op <= bytecode.Lstore3):
				if err := popWide(vtLong, vtLong2); err != nil {
					return err
				}
				return setLocal(localIndex(inst, bytecode.Lstore0), tLong, tLong2)
			case op == bytecode.Dstore || (op >= bytecode.Dstore0 && op <= bytecode.Dstore3):
				if err := popWide(vtDouble, vtDouble2); err != nil {
					return err
				}
				return setLocal(localIndex(inst, bytecode.Dstore0), tDouble, tDbl2)
			case op == bytecode.Astore || (op >= bytecode.Astore0 && op <= bytecode.Astore3):
				v, err := pop()
				if err != nil {
					return err
				}
				census.Phase3++
				if !v.isOneSlotRefLike() && v.kind != vtRet {
					return fail(idx, "astore of %v", v)
				}
				return setLocal(localIndex(inst, bytecode.Astore0), v)

			case op == bytecode.Iaload, op == bytecode.Baload, op == bytecode.Caload, op == bytecode.Saload:
				if err := popKind(vtInt); err != nil {
					return err
				}
				if _, err := popRef(); err != nil {
					return err
				}
				return push(tInt)
			case op == bytecode.Faload:
				if err := popKind(vtInt); err != nil {
					return err
				}
				if _, err := popRef(); err != nil {
					return err
				}
				return push(tFloat)
			case op == bytecode.Laload:
				if err := popKind(vtInt); err != nil {
					return err
				}
				if _, err := popRef(); err != nil {
					return err
				}
				return push(tLong, tLong2)
			case op == bytecode.Daload:
				if err := popKind(vtInt); err != nil {
					return err
				}
				if _, err := popRef(); err != nil {
					return err
				}
				return push(tDouble, tDbl2)
			case op == bytecode.Aaload:
				if err := popKind(vtInt); err != nil {
					return err
				}
				arr, err := popRef()
				if err != nil {
					return err
				}
				elem := "java/lang/Object"
				if arr.kind == vtRef && len(arr.cls) > 1 && arr.cls[0] == '[' {
					ed := arr.cls[1:]
					if ed[0] == 'L' {
						elem = ed[1 : len(ed)-1]
					} else if ed[0] == '[' {
						elem = ed
					}
				}
				return push(tRef(elem))

			case op == bytecode.Iastore, op == bytecode.Bastore, op == bytecode.Castore, op == bytecode.Sastore:
				if err := popKind(vtInt); err != nil {
					return err
				}
				if err := popKind(vtInt); err != nil {
					return err
				}
				_, err := popRef()
				return err
			case op == bytecode.Fastore:
				if err := popKind(vtFloat); err != nil {
					return err
				}
				if err := popKind(vtInt); err != nil {
					return err
				}
				_, err := popRef()
				return err
			case op == bytecode.Lastore:
				if err := popWide(vtLong, vtLong2); err != nil {
					return err
				}
				if err := popKind(vtInt); err != nil {
					return err
				}
				_, err := popRef()
				return err
			case op == bytecode.Dastore:
				if err := popWide(vtDouble, vtDouble2); err != nil {
					return err
				}
				if err := popKind(vtInt); err != nil {
					return err
				}
				_, err := popRef()
				return err
			case op == bytecode.Aastore:
				if _, err := popRef(); err != nil {
					return err
				}
				if err := popKind(vtInt); err != nil {
					return err
				}
				_, err := popRef()
				return err

			case op == bytecode.Pop:
				v, err := pop()
				if err != nil {
					return err
				}
				if v.category() != 1 {
					return fail(idx, "pop of category-2 half %v", v)
				}
				return nil
			case op == bytecode.Pop2:
				v, err := pop()
				if err != nil {
					return err
				}
				if v.category() == 1 {
					v2, err := pop()
					if err != nil {
						return err
					}
					if v2.category() != 1 {
						return fail(idx, "pop2 splits wide value")
					}
					return nil
				}
				// v is a wide second-half; pop the first half too.
				_, err = pop()
				return err
			case op == bytecode.Dup:
				v, err := pop()
				if err != nil {
					return err
				}
				if v.category() != 1 {
					return fail(idx, "dup of category-2 value")
				}
				return push(v, v)
			case op == bytecode.DupX1:
				v1, err := pop()
				if err != nil {
					return err
				}
				v2, err := pop()
				if err != nil {
					return err
				}
				if v1.category() != 1 || v2.category() != 1 {
					return fail(idx, "dup_x1 on category-2 values")
				}
				return push(v1, v2, v1)
			case op == bytecode.DupX2:
				v1, err := pop()
				if err != nil {
					return err
				}
				v2, err := pop()
				if err != nil {
					return err
				}
				v3, err := pop()
				if err != nil {
					return err
				}
				if v1.category() != 1 {
					return fail(idx, "dup_x2 of category-2 top")
				}
				return push(v1, v3, v2, v1)
			case op == bytecode.Dup2:
				v1, err := pop()
				if err != nil {
					return err
				}
				v2, err := pop()
				if err != nil {
					return err
				}
				return push(v2, v1, v2, v1)
			case op == bytecode.Dup2X1:
				v1, err := pop()
				if err != nil {
					return err
				}
				v2, err := pop()
				if err != nil {
					return err
				}
				v3, err := pop()
				if err != nil {
					return err
				}
				return push(v2, v1, v3, v2, v1)
			case op == bytecode.Dup2X2:
				v1, err := pop()
				if err != nil {
					return err
				}
				v2, err := pop()
				if err != nil {
					return err
				}
				v3, err := pop()
				if err != nil {
					return err
				}
				v4, err := pop()
				if err != nil {
					return err
				}
				return push(v2, v1, v4, v3, v2, v1)
			case op == bytecode.Swap:
				v1, err := pop()
				if err != nil {
					return err
				}
				v2, err := pop()
				if err != nil {
					return err
				}
				if v1.category() != 1 || v2.category() != 1 {
					return fail(idx, "swap on category-2 values")
				}
				return push(v1, v2)

			// Arithmetic: int family.
			case op == bytecode.Iadd, op == bytecode.Isub, op == bytecode.Imul,
				op == bytecode.Idiv, op == bytecode.Irem, op == bytecode.Ishl,
				op == bytecode.Ishr, op == bytecode.Iushr, op == bytecode.Iand,
				op == bytecode.Ior, op == bytecode.Ixor:
				if err := popKind(vtInt); err != nil {
					return err
				}
				if err := popKind(vtInt); err != nil {
					return err
				}
				return push(tInt)
			case op == bytecode.Ineg:
				if err := popKind(vtInt); err != nil {
					return err
				}
				return push(tInt)
			case op == bytecode.Iinc:
				_, err := getLocal(int(inst.Index), vtInt)
				return err

			// long family.
			case op == bytecode.Ladd, op == bytecode.Lsub, op == bytecode.Lmul,
				op == bytecode.Ldiv, op == bytecode.Lrem, op == bytecode.Land,
				op == bytecode.Lor, op == bytecode.Lxor:
				if err := popWide(vtLong, vtLong2); err != nil {
					return err
				}
				if err := popWide(vtLong, vtLong2); err != nil {
					return err
				}
				return push(tLong, tLong2)
			case op == bytecode.Lneg:
				if err := popWide(vtLong, vtLong2); err != nil {
					return err
				}
				return push(tLong, tLong2)
			case op == bytecode.Lshl, op == bytecode.Lshr, op == bytecode.Lushr:
				if err := popKind(vtInt); err != nil {
					return err
				}
				if err := popWide(vtLong, vtLong2); err != nil {
					return err
				}
				return push(tLong, tLong2)

			// float/double families.
			case op == bytecode.Fadd, op == bytecode.Fsub, op == bytecode.Fmul,
				op == bytecode.Fdiv, op == bytecode.Frem:
				if err := popKind(vtFloat); err != nil {
					return err
				}
				if err := popKind(vtFloat); err != nil {
					return err
				}
				return push(tFloat)
			case op == bytecode.Fneg:
				if err := popKind(vtFloat); err != nil {
					return err
				}
				return push(tFloat)
			case op == bytecode.Dadd, op == bytecode.Dsub, op == bytecode.Dmul,
				op == bytecode.Ddiv, op == bytecode.Drem:
				if err := popWide(vtDouble, vtDouble2); err != nil {
					return err
				}
				if err := popWide(vtDouble, vtDouble2); err != nil {
					return err
				}
				return push(tDouble, tDbl2)
			case op == bytecode.Dneg:
				if err := popWide(vtDouble, vtDouble2); err != nil {
					return err
				}
				return push(tDouble, tDbl2)

			// Conversions.
			case op == bytecode.I2l:
				if err := popKind(vtInt); err != nil {
					return err
				}
				return push(tLong, tLong2)
			case op == bytecode.I2f:
				if err := popKind(vtInt); err != nil {
					return err
				}
				return push(tFloat)
			case op == bytecode.I2d:
				if err := popKind(vtInt); err != nil {
					return err
				}
				return push(tDouble, tDbl2)
			case op == bytecode.L2i:
				if err := popWide(vtLong, vtLong2); err != nil {
					return err
				}
				return push(tInt)
			case op == bytecode.L2f:
				if err := popWide(vtLong, vtLong2); err != nil {
					return err
				}
				return push(tFloat)
			case op == bytecode.L2d:
				if err := popWide(vtLong, vtLong2); err != nil {
					return err
				}
				return push(tDouble, tDbl2)
			case op == bytecode.F2i:
				if err := popKind(vtFloat); err != nil {
					return err
				}
				return push(tInt)
			case op == bytecode.F2l:
				if err := popKind(vtFloat); err != nil {
					return err
				}
				return push(tLong, tLong2)
			case op == bytecode.F2d:
				if err := popKind(vtFloat); err != nil {
					return err
				}
				return push(tDouble, tDbl2)
			case op == bytecode.D2i:
				if err := popWide(vtDouble, vtDouble2); err != nil {
					return err
				}
				return push(tInt)
			case op == bytecode.D2l:
				if err := popWide(vtDouble, vtDouble2); err != nil {
					return err
				}
				return push(tLong, tLong2)
			case op == bytecode.D2f:
				if err := popWide(vtDouble, vtDouble2); err != nil {
					return err
				}
				return push(tFloat)
			case op == bytecode.I2b, op == bytecode.I2c, op == bytecode.I2s:
				if err := popKind(vtInt); err != nil {
					return err
				}
				return push(tInt)

			// Comparisons.
			case op == bytecode.Lcmp:
				if err := popWide(vtLong, vtLong2); err != nil {
					return err
				}
				if err := popWide(vtLong, vtLong2); err != nil {
					return err
				}
				return push(tInt)
			case op == bytecode.Fcmpl, op == bytecode.Fcmpg:
				if err := popKind(vtFloat); err != nil {
					return err
				}
				if err := popKind(vtFloat); err != nil {
					return err
				}
				return push(tInt)
			case op == bytecode.Dcmpl, op == bytecode.Dcmpg:
				if err := popWide(vtDouble, vtDouble2); err != nil {
					return err
				}
				if err := popWide(vtDouble, vtDouble2); err != nil {
					return err
				}
				return push(tInt)

			// Branches.
			case op >= bytecode.Ifeq && op <= bytecode.Ifle:
				if err := popKind(vtInt); err != nil {
					return err
				}
				return mergeInto(inst.Target, s)
			case op >= bytecode.IfIcmpeq && op <= bytecode.IfIcmple:
				if err := popKind(vtInt); err != nil {
					return err
				}
				if err := popKind(vtInt); err != nil {
					return err
				}
				return mergeInto(inst.Target, s)
			case op == bytecode.IfAcmpeq, op == bytecode.IfAcmpne:
				if _, err := popRef(); err != nil {
					return err
				}
				if _, err := popRef(); err != nil {
					return err
				}
				return mergeInto(inst.Target, s)
			case op == bytecode.Ifnull, op == bytecode.Ifnonnull:
				if _, err := popRef(); err != nil {
					return err
				}
				return mergeInto(inst.Target, s)
			case op == bytecode.Goto, op == bytecode.GotoW:
				flowEnds = true
				return mergeInto(inst.Target, s)
			case op == bytecode.Jsr, op == bytecode.JsrW:
				// Simplified subroutine treatment (documented in DESIGN.md):
				// the subroutine is assumed to return with the caller's
				// frame intact; full Stata-Abadi subroutine typing is out of
				// scope for this reproduction.
				sub := s.clone()
				sub.stack = append(sub.stack, vt{kind: vtRet})
				if err := mergeInto(inst.Target, sub); err != nil {
					return err
				}
				return nil
			case op == bytecode.Ret:
				if _, err := getLocal(int(inst.Index), vtRef); err != nil {
					return err
				}
				if s.locals[inst.Index].kind != vtRet {
					return fail(idx, "ret on non-returnAddress local")
				}
				flowEnds = true
				return nil
			case op == bytecode.Tableswitch, op == bytecode.Lookupswitch:
				if err := popKind(vtInt); err != nil {
					return err
				}
				flowEnds = true
				if err := mergeInto(inst.Switch.Default, s); err != nil {
					return err
				}
				for _, t := range inst.Switch.Targets {
					if err := mergeInto(t, s); err != nil {
						return err
					}
				}
				return nil

			// Returns.
			case op == bytecode.Ireturn:
				flowEnds = true
				census.Phase3++
				if !isIntKind(mt.Ret.Kind) {
					return fail(idx, "ireturn from method returning %s", mt.Ret.String())
				}
				return popKind(vtInt)
			case op == bytecode.Freturn:
				flowEnds = true
				if mt.Ret.Kind != bytecode.KFloat {
					return fail(idx, "freturn from method returning %s", mt.Ret.String())
				}
				return popKind(vtFloat)
			case op == bytecode.Lreturn:
				flowEnds = true
				if mt.Ret.Kind != bytecode.KLong {
					return fail(idx, "lreturn from method returning %s", mt.Ret.String())
				}
				return popWide(vtLong, vtLong2)
			case op == bytecode.Dreturn:
				flowEnds = true
				if mt.Ret.Kind != bytecode.KDouble {
					return fail(idx, "dreturn from method returning %s", mt.Ret.String())
				}
				return popWide(vtDouble, vtDouble2)
			case op == bytecode.Areturn:
				flowEnds = true
				if mt.Ret.Kind != bytecode.KObject && mt.Ret.Kind != bytecode.KArray {
					return fail(idx, "areturn from method returning %s", mt.Ret.String())
				}
				_, err := popRef()
				return err
			case op == bytecode.Return:
				flowEnds = true
				census.Phase3++
				if mt.Ret.Kind != bytecode.KVoid {
					return fail(idx, "return from method returning %s", mt.Ret.String())
				}
				if mname == "<init>" {
					// this must be initialized by now
					if len(s.locals) > 0 && s.locals[0].kind == vtUninitThis {
						return fail(idx, "constructor returns before calling super constructor")
					}
				}
				return nil

			// Field access.
			case op == bytecode.Getstatic, op == bytecode.Putstatic,
				op == bytecode.Getfield, op == bytecode.Putfield:
				ref, err := cf.Pool.Ref(inst.Index)
				if err != nil {
					return fail(idx, "%v", err)
				}
				ft, err := bytecode.ParseType(ref.Desc)
				if err != nil {
					return fail(idx, "%v", err)
				}
				switch op {
				case bytecode.Putstatic:
					if err := popType(ft); err != nil {
						return err
					}
				case bytecode.Putfield:
					if err := popType(ft); err != nil {
						return err
					}
					if _, err := popRef(); err != nil {
						return err
					}
				case bytecode.Getfield:
					if _, err := popRef(); err != nil {
						return err
					}
					return push(typeToVT(ft)...)
				case bytecode.Getstatic:
					return push(typeToVT(ft)...)
				}
				return nil

			// Invocations.
			case op.IsInvoke():
				ref, err := cf.Pool.Ref(inst.Index)
				if err != nil {
					return fail(idx, "%v", err)
				}
				imt, err := bytecode.ParseMethodType(ref.Desc)
				if err != nil {
					return fail(idx, "%v", err)
				}
				for i := len(imt.Params) - 1; i >= 0; i-- {
					if err := popType(imt.Params[i]); err != nil {
						return err
					}
				}
				if op != bytecode.Invokestatic {
					recv, err := pop()
					if err != nil {
						return err
					}
					census.Phase3++
					switch recv.kind {
					case vtRef, vtNull:
						if ref.Name == "<init>" {
							return fail(idx, "<init> invoked on initialized reference")
						}
					case vtUninit:
						if ref.Name != "<init>" {
							return fail(idx, "use of uninitialized object")
						}
						// Initialize every alias of this allocation site.
						initialized := tRef(recv.cls)
						for i := range s.stack {
							if s.stack[i] == recv {
								s.stack[i] = initialized
							}
						}
						for i := range s.locals {
							if s.locals[i] == recv {
								s.locals[i] = initialized
							}
						}
					case vtUninitThis:
						if ref.Name != "<init>" {
							return fail(idx, "use of uninitialized this")
						}
						initialized := tRef(name)
						for i := range s.stack {
							if s.stack[i].kind == vtUninitThis {
								s.stack[i] = initialized
							}
						}
						for i := range s.locals {
							if s.locals[i].kind == vtUninitThis {
								s.locals[i] = initialized
							}
						}
					default:
						return fail(idx, "invoke on non-reference %v", recv)
					}
				}
				if imt.Ret.Kind != bytecode.KVoid {
					return push(typeToVT(imt.Ret)...)
				}
				return nil

			// Allocation and type tests.
			case op == bytecode.New:
				cn, err := cf.Pool.ClassName(inst.Index)
				if err != nil {
					return fail(idx, "%v", err)
				}
				return push(vt{kind: vtUninit, cls: cn, site: idx})
			case op == bytecode.Newarray:
				if err := popKind(vtInt); err != nil {
					return err
				}
				return push(tRef("[" + primDesc(inst.ArrayType)))
			case op == bytecode.Anewarray:
				if err := popKind(vtInt); err != nil {
					return err
				}
				cn, err := cf.Pool.ClassName(inst.Index)
				if err != nil {
					return fail(idx, "%v", err)
				}
				if cn[0] == '[' {
					return push(tRef("[" + cn))
				}
				return push(tRef("[L" + cn + ";"))
			case op == bytecode.Multianewarray:
				for i := 0; i < int(inst.Dims); i++ {
					if err := popKind(vtInt); err != nil {
						return err
					}
				}
				cn, _ := cf.Pool.ClassName(inst.Index)
				return push(tRef(cn))
			case op == bytecode.Arraylength:
				if _, err := popRef(); err != nil {
					return err
				}
				return push(tInt)
			case op == bytecode.Athrow:
				flowEnds = true
				_, err := popRef()
				return err
			case op == bytecode.Checkcast:
				if _, err := popRef(); err != nil {
					return err
				}
				cn, err := cf.Pool.ClassName(inst.Index)
				if err != nil {
					return fail(idx, "%v", err)
				}
				return push(tRef(cn))
			case op == bytecode.Instanceof:
				if _, err := popRef(); err != nil {
					return err
				}
				return push(tInt)
			case op == bytecode.Monitorenter, op == bytecode.Monitorexit:
				_, err := popRef()
				return err
			}
			return fail(idx, "phase 3 has no rule for %s", op.Name())
		}(); err != nil {
			return err
		}

		if !flowEnds {
			if idx+1 >= len(insts) {
				return fail(idx, "control falls off the end of the method")
			}
			if err := mergeInto(idx+1, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func localIndex(in bytecode.Inst, base bytecode.Opcode) int {
	if in.Op >= base && in.Op <= base+3 {
		return int(in.Op - base)
	}
	return int(in.Index)
}

func isIntKind(k bytecode.BaseKind) bool {
	switch k {
	case bytecode.KInt, bytecode.KBoolean, bytecode.KByte, bytecode.KChar, bytecode.KShort:
		return true
	}
	return false
}

func primDesc(atype uint8) string {
	switch atype {
	case bytecode.TBoolean:
		return "Z"
	case bytecode.TChar:
		return "C"
	case bytecode.TFloat:
		return "F"
	case bytecode.TDouble:
		return "D"
	case bytecode.TByte:
		return "B"
	case bytecode.TShort:
		return "S"
	case bytecode.TInt:
		return "I"
	case bytecode.TLong:
		return "J"
	}
	return "I"
}
