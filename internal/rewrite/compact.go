package rewrite

import (
	"encoding/binary"
	"fmt"

	"dvm/internal/bytecode"
	"dvm/internal/classfile"
)

// CopyConstant re-interns the constant at idx of src into dst, returning
// the new index. Used when methods move between classes (the
// repartitioning optimizer) and by constant pool compaction.
func CopyConstant(src, dst *classfile.ConstPool, idx uint16) (uint16, error) {
	e, err := src.Entry(idx)
	if err != nil {
		return 0, err
	}
	switch e.Tag {
	case classfile.TagUtf8:
		return dst.AddUtf8(e.Str), nil
	case classfile.TagInteger:
		return dst.AddInteger(e.Int), nil
	case classfile.TagFloat:
		return dst.AddFloat(e.Float), nil
	case classfile.TagLong:
		return dst.AddLong(e.Long), nil
	case classfile.TagDouble:
		return dst.AddDouble(e.Double), nil
	case classfile.TagClass:
		n, err := src.ClassName(idx)
		if err != nil {
			return 0, err
		}
		return dst.AddClass(n), nil
	case classfile.TagString:
		s, err := src.StringValue(idx)
		if err != nil {
			return 0, err
		}
		return dst.AddString(s), nil
	case classfile.TagNameAndType:
		n, d, err := src.NameAndType(idx)
		if err != nil {
			return 0, err
		}
		return dst.AddNameAndType(n, d), nil
	case classfile.TagFieldref, classfile.TagMethodref, classfile.TagInterfaceMethodref:
		r, err := src.Ref(idx)
		if err != nil {
			return 0, err
		}
		switch e.Tag {
		case classfile.TagFieldref:
			return dst.AddFieldref(r.Class, r.Name, r.Desc), nil
		case classfile.TagMethodref:
			return dst.AddMethodref(r.Class, r.Name, r.Desc), nil
		default:
			return dst.AddInterfaceMethodref(r.Class, r.Name, r.Desc), nil
		}
	}
	return 0, fmt.Errorf("rewrite: cannot copy constant with tag %s", e.Tag)
}

// CompactPool rebuilds the class's constant pool, retaining only entries
// actually referenced. Transformations that delete or move code (the
// repartitioning optimizer in particular) call this so the transfer-unit
// sizes reflect the code they actually carry.
//
// Known attributes (Code, ConstantValue, Exceptions, SourceFile,
// LineNumberTable) have their embedded pool indices rewritten; unknown
// attributes are preserved verbatim and must not embed pool indices
// (true of all dvm.* attributes).
func CompactPool(cf *classfile.ClassFile) error {
	old := cf.Pool
	np := classfile.NewConstPool()
	cp := func(idx uint16) (uint16, error) { return CopyConstant(old, np, idx) }

	var err error
	if cf.ThisClass, err = cp(cf.ThisClass); err != nil {
		return err
	}
	if cf.SuperClass != 0 {
		if cf.SuperClass, err = cp(cf.SuperClass); err != nil {
			return err
		}
	}
	for i, ifc := range cf.Interfaces {
		if cf.Interfaces[i], err = cp(ifc); err != nil {
			return err
		}
	}
	for _, list := range [][]*classfile.Member{cf.Fields, cf.Methods} {
		for _, m := range list {
			if m.NameIndex, err = cp(m.NameIndex); err != nil {
				return err
			}
			if m.DescriptorIndex, err = cp(m.DescriptorIndex); err != nil {
				return err
			}
			if err := compactAttrs(old, np, m.Attributes); err != nil {
				return err
			}
		}
	}
	if err := compactAttrs(old, np, cf.Attributes); err != nil {
		return err
	}
	cf.Pool = np
	return nil
}

func compactAttrs(old, np *classfile.ConstPool, attrs []*classfile.Attribute) error {
	for _, a := range attrs {
		name, err := old.Utf8(a.NameIndex)
		if err != nil {
			return err
		}
		a.NameIndex = np.AddUtf8(name)
		switch name {
		case classfile.AttrCode:
			if err := compactCode(old, np, a); err != nil {
				return err
			}
		case classfile.AttrConstantValue:
			if len(a.Info) != 2 {
				return fmt.Errorf("rewrite: malformed ConstantValue")
			}
			ni, err := CopyConstant(old, np, binary.BigEndian.Uint16(a.Info))
			if err != nil {
				return err
			}
			a.Info = []byte{byte(ni >> 8), byte(ni)}
		case classfile.AttrExceptions:
			out := append([]byte(nil), a.Info...)
			if len(out) < 2 {
				return fmt.Errorf("rewrite: malformed Exceptions attribute")
			}
			n := int(binary.BigEndian.Uint16(out))
			if len(out) != 2+2*n {
				return fmt.Errorf("rewrite: malformed Exceptions attribute")
			}
			for i := 0; i < n; i++ {
				off := 2 + 2*i
				ni, err := CopyConstant(old, np, binary.BigEndian.Uint16(out[off:]))
				if err != nil {
					return err
				}
				binary.BigEndian.PutUint16(out[off:], ni)
			}
			a.Info = out
		case classfile.AttrSourceFile:
			if len(a.Info) != 2 {
				return fmt.Errorf("rewrite: malformed SourceFile")
			}
			ni, err := CopyConstant(old, np, binary.BigEndian.Uint16(a.Info))
			if err != nil {
				return err
			}
			a.Info = []byte{byte(ni >> 8), byte(ni)}
		}
	}
	return nil
}

func compactCode(old, np *classfile.ConstPool, a *classfile.Attribute) error {
	code, err := classfile.DecodeCode(a)
	if err != nil {
		return err
	}
	insts, err := bytecode.DecodeExt(code.Bytecode)
	if err != nil {
		return err
	}
	for i := range insts {
		in := &insts[i]
		switch in.Op.OperandKind() {
		case bytecode.KindCPU1, bytecode.KindCPU2, bytecode.KindIfaceRef, bytecode.KindMultiNew:
			ni, err := CopyConstant(old, np, in.Index)
			if err != nil {
				return err
			}
			in.Index = ni
		}
	}
	oldPCIdx := bytecode.PCMap(insts)
	newBytes, pcs, err := bytecode.Encode(insts)
	if err != nil {
		return err
	}
	mapPC := func(pc uint16, isEnd bool) (uint16, error) {
		if isEnd && int(pc) == len(code.Bytecode) {
			return uint16(len(newBytes)), nil
		}
		i, ok := oldPCIdx[int(pc)]
		if !ok {
			return 0, fmt.Errorf("rewrite: handler pc %d off instruction boundary", pc)
		}
		return uint16(pcs[i]), nil
	}
	for i := range code.Handlers {
		h := &code.Handlers[i]
		if h.StartPC, err = mapPC(h.StartPC, false); err != nil {
			return err
		}
		if h.EndPC, err = mapPC(h.EndPC, true); err != nil {
			return err
		}
		if h.HandlerPC, err = mapPC(h.HandlerPC, false); err != nil {
			return err
		}
		if h.CatchType != 0 {
			if h.CatchType, err = CopyConstant(old, np, h.CatchType); err != nil {
				return err
			}
		}
	}
	code.Bytecode = newBytes
	if err := compactAttrs(old, np, code.Attributes); err != nil {
		return err
	}
	payload, err := code.Encode()
	if err != nil {
		return err
	}
	a.Info = payload
	return nil
}
