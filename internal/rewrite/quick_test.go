package rewrite_test

import (
	"math/rand"
	"testing"

	"dvm/internal/bytecode"
	"dvm/internal/classfile"
	"dvm/internal/classgen"
	"dvm/internal/jvm"
	"dvm/internal/rewrite"
)

// buildTestFunction builds demo/Q with a function containing branches,
// a loop, a switch, and an exception handler — a dense target for
// random insertion.
func buildTestFunction(t *testing.T) []byte {
	t.Helper()
	b := classgen.NewClass("demo/Q", "java/lang/Object")
	b.Field(classfile.AccPublic|classfile.AccStatic, "probes", "I")
	probe := b.Method(classfile.AccPublic|classfile.AccStatic, "probe", "()V")
	probe.GetStatic("demo/Q", "probes", "I").IConst(1).IAdd().PutStatic("demo/Q", "probes", "I")
	probe.Return()

	m := b.Method(classfile.AccPublic|classfile.AccStatic, "f", "(I)I")
	// acc = 0; for i in 0..x: acc += switch(i & 3) {0->1, 1->i, _->2}
	m.IConst(0).IStore(1)
	m.IConst(0).IStore(2)
	head := m.Here()
	exit := m.NewLabel()
	m.ILoad(2).ILoad(0).Branch(bytecode.IfIcmpge, exit)
	def := m.NewLabel()
	a0 := m.NewLabel()
	a1 := m.NewLabel()
	after := m.NewLabel()
	m.ILoad(2).IConst(3).Inst(bytecode.Iand)
	m.TableSwitch(0, def, a0, a1)
	m.Mark(a0)
	m.ILoad(1).IConst(1).IAdd().IStore(1)
	m.Goto(after)
	m.Mark(a1)
	m.ILoad(1).ILoad(2).IAdd().IStore(1)
	m.Goto(after)
	m.Mark(def)
	m.ILoad(1).IConst(2).IAdd().IStore(1)
	m.Mark(after)
	m.IInc(2, 1)
	m.Goto(head)
	m.Mark(exit)
	// guarded division to exercise the handler path
	tryStart := m.Here()
	m.ILoad(1).ILoad(0).IConst(3).Inst(bytecode.Irem).IDiv().IStore(1)
	done := m.NewLabel()
	m.Goto(done)
	tryEnd := m.NewLabel()
	m.Mark(tryEnd)
	h := m.Here()
	m.Pop()
	m.IInc(1, 1000)
	m.Mark(done)
	m.Handler(tryStart, tryEnd, h, "java/lang/ArithmeticException")
	m.ILoad(1).IReturn()

	data, err := b.BuildBytes()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func runF(t *testing.T, data []byte, arg int32) (int32, int32) {
	t.Helper()
	vm, err := jvm.New(jvm.MapLoader{"demo/Q": data}, nil)
	if err != nil {
		t.Fatal(err)
	}
	v, thrown, err := vm.MainThread().InvokeByName("demo/Q", "f", "(I)I", []jvm.Value{jvm.IntV(arg)})
	if err != nil {
		t.Fatalf("vm error: %v", err)
	}
	if thrown != nil {
		t.Fatalf("thrown: %s", jvm.DescribeThrowable(thrown))
	}
	c, _ := vm.Class("demo/Q")
	_, slot, _ := c.StaticSlot("probes", "I")
	return v.Int(), c.GetStatic(slot).Int()
}

// TestQuickRandomInsertionPreservesSemantics splices probe calls at
// random positions (random captureBranches) and verifies f's result is
// unchanged for a spread of inputs — the core soundness property of the
// binary rewriting engine.
func TestQuickRandomInsertionPreservesSemantics(t *testing.T) {
	base := buildTestFunction(t)
	wantResults := map[int32]int32{}
	for _, arg := range []int32{0, 1, 2, 3, 6, 7, 17} {
		w, _ := runF(t, base, arg)
		wantResults[arg] = w
	}

	rng := rand.New(rand.NewSource(12345))
	for trial := 0; trial < 60; trial++ {
		cf, err := classfile.Parse(base)
		if err != nil {
			t.Fatal(err)
		}
		ed, err := rewrite.EditMethod(cf, cf.FindMethod("f", "(I)I"))
		if err != nil {
			t.Fatal(err)
		}
		inserts := 1 + rng.Intn(4)
		for k := 0; k < inserts; k++ {
			pos := rng.Intn(len(ed.Insts))
			sn := rewrite.NewSnippet(ed.Pool()).InvokeStatic("demo/Q", "probe", "()V")
			if err := ed.InsertAt(pos, sn.Insts(), rng.Intn(2) == 0); err != nil {
				t.Fatalf("trial %d: InsertAt(%d): %v", trial, pos, err)
			}
		}
		if err := ed.Commit(); err != nil {
			t.Fatalf("trial %d: Commit: %v", trial, err)
		}
		out, err := cf.Encode()
		if err != nil {
			t.Fatalf("trial %d: Encode: %v", trial, err)
		}
		for arg, want := range wantResults {
			got, _ := runF(t, out, arg)
			if got != want {
				t.Fatalf("trial %d: f(%d) = %d, want %d (semantics broken by insertion)",
					trial, arg, got, want)
			}
		}
	}
}

// TestQuickInsertionThenCompactionRoundTrip adds pool compaction after
// random insertion: the combination used by the repartitioning service.
func TestQuickInsertionThenCompactionRoundTrip(t *testing.T) {
	base := buildTestFunction(t)
	want, _ := runF(t, base, 7)

	rng := rand.New(rand.NewSource(999))
	for trial := 0; trial < 20; trial++ {
		cf, err := classfile.Parse(base)
		if err != nil {
			t.Fatal(err)
		}
		ed, err := rewrite.EditMethod(cf, cf.FindMethod("f", "(I)I"))
		if err != nil {
			t.Fatal(err)
		}
		pos := rng.Intn(len(ed.Insts))
		sn := rewrite.NewSnippet(ed.Pool()).LdcString("inserted-and-dropped").Pop()
		if err := ed.InsertAt(pos, sn.Insts(), true); err != nil {
			t.Fatal(err)
		}
		if err := ed.Commit(); err != nil {
			t.Fatal(err)
		}
		if err := rewrite.CompactPool(cf); err != nil {
			t.Fatalf("trial %d: CompactPool: %v", trial, err)
		}
		out, err := cf.Encode()
		if err != nil {
			t.Fatal(err)
		}
		got, _ := runF(t, out, 7)
		if got != want {
			t.Fatalf("trial %d: f(7) = %d, want %d after compaction", trial, got, want)
		}
	}
}
