package rewrite

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"dvm/internal/classfile"
	"dvm/internal/telemetry"
)

// Context carries per-class information through a pipeline run: which
// client requested the class, accumulated service notes, and per-filter
// timing for the audit trail.
type Context struct {
	// ClientID identifies the requesting client (from the handshake
	// protocol of §3.3); empty for client-independent processing.
	ClientID string
	// ClientArch is the client's native format descriptor, used by the
	// compilation service (§3.4).
	ClientArch string
	// Notes lets filters publish results to later filters and to the
	// proxy (e.g. the verifier's check census, the optimizer's split map).
	// Filters must go through SetNote/Note/AddIntNote rather than the map
	// so publication is safe from concurrent TransformMethod calls;
	// reading the map directly is fine once the pipeline has returned.
	Notes map[string]any
	// FilterTimings records wall-clock time spent per filter. Like Notes,
	// it is written under the context lock and safe to read directly
	// after the run.
	FilterTimings map[string]time.Duration

	// Trace/Node, when set, receive one span per filter stage
	// (filter.<name>) plus the verifier's per-phase spans.
	Trace *telemetry.Trace
	Node  string

	mu      sync.Mutex
	workers int // effective worker count for the current run (>= 1)
}

// NewContext returns an empty context.
func NewContext() *Context {
	return &Context{
		Notes:         make(map[string]any),
		FilterTimings: make(map[string]time.Duration),
	}
}

// SetNote publishes a note under the context lock.
func (c *Context) SetNote(key string, v any) {
	c.mu.Lock()
	c.Notes[key] = v
	c.mu.Unlock()
}

// Note reads a note under the context lock.
func (c *Context) Note(key string) (any, bool) {
	c.mu.Lock()
	v, ok := c.Notes[key]
	c.mu.Unlock()
	return v, ok
}

// AddIntNote adds delta to an integer note, creating it at delta if
// absent. Concurrent per-method filter workers use this to accumulate
// counters (audit sites, checks inserted) without racing.
func (c *Context) AddIntNote(key string, delta int) {
	c.mu.Lock()
	if prev, ok := c.Notes[key].(int); ok {
		c.Notes[key] = prev + delta
	} else {
		c.Notes[key] = delta
	}
	c.mu.Unlock()
}

// Workers reports the worker count in effect for the current pipeline
// run (always >= 1). Filters that manage their own internal parallelism
// (the verifier) use it so one flag governs the whole pipeline.
func (c *Context) Workers() int {
	c.mu.Lock()
	w := c.workers
	c.mu.Unlock()
	if w < 1 {
		w = 1
	}
	return w
}

func (c *Context) addTiming(name string, d time.Duration) {
	c.mu.Lock()
	c.FilterTimings[name] += d
	c.mu.Unlock()
}

// Filter is one static service component: a code transformation applied
// to a parsed class (paper Figure 2's pipeline stages — verifier,
// security, compiler, optimizer, profiler — all implement this).
type Filter interface {
	// Name identifies the filter in audit trails and timings.
	Name() string
	// Transform inspects and/or rewrites the class in place.
	Transform(cf *classfile.ClassFile, ctx *Context) error
}

// MethodFilter is an optional extension for filters whose rewriting is
// independent per method. The pipeline runs Prepare sequentially, then
// fans TransformMethod out over the worker pool — so Prepare must intern
// every constant-pool entry the method transformations will need (the
// pool is frozen during the fan-out and panics on mutation), and
// TransformMethod must touch only its own method plus ctx via the
// locked note accessors. Output is deterministic by construction: each
// method's transformation depends only on the plan built in Prepare.
type MethodFilter interface {
	Filter
	Prepare(cf *classfile.ClassFile, ctx *Context) error
	TransformMethod(cf *classfile.ClassFile, m *classfile.Member, ctx *Context) error
}

// FilterFunc adapts a function to the Filter interface.
type FilterFunc struct {
	FilterName string
	Fn         func(cf *classfile.ClassFile, ctx *Context) error
}

// Name implements Filter.
func (f FilterFunc) Name() string { return f.FilterName }

// Transform implements Filter.
func (f FilterFunc) Transform(cf *classfile.ClassFile, ctx *Context) error {
	return f.Fn(cf, ctx)
}

// Pipeline composes filters. Process parses the class once, runs every
// filter over the shared in-memory form, and serializes once — the
// paper's single-parse proxy structure.
type Pipeline struct {
	filters []Filter
	workers int // 0 = GOMAXPROCS
}

// NewPipeline builds a pipeline from filters in application order.
func NewPipeline(filters ...Filter) *Pipeline {
	return &Pipeline{filters: filters}
}

// Append adds a filter at the end of the pipeline.
func (p *Pipeline) Append(f Filter) { p.filters = append(p.filters, f) }

// Filters returns the filter list in application order.
func (p *Pipeline) Filters() []Filter { return p.filters }

// SetWorkers bounds the per-method fan-out (MethodFilter stages and the
// verifier's phase 2/3). n <= 0 restores the default of GOMAXPROCS;
// n == 1 runs strictly sequentially. Any value yields identical bytes.
func (p *Pipeline) SetWorkers(n int) { p.workers = n }

// Workers reports the effective worker count the pipeline will use.
func (p *Pipeline) Workers() int {
	if p.workers > 0 {
		return p.workers
	}
	return runtime.GOMAXPROCS(0)
}

// Process runs the pipeline over one serialized class.
func (p *Pipeline) Process(data []byte, ctx *Context) ([]byte, error) {
	if ctx == nil {
		ctx = NewContext()
	}
	cf, err := classfile.Parse(data)
	if err != nil {
		return nil, fmt.Errorf("rewrite: pipeline parse: %w", err)
	}
	if err := p.ProcessClass(cf, ctx); err != nil {
		return nil, err
	}
	out, err := cf.Encode()
	if err != nil {
		return nil, fmt.Errorf("rewrite: pipeline encode: %w", err)
	}
	// The class graph is dead now that it is re-serialized; recycle the
	// pool scratch for the next parse. Filters publish only value types
	// and strings through Notes, never the ClassFile itself.
	cf.Release()
	return out, nil
}

// ProcessClass runs the filters over an already-parsed class.
func (p *Pipeline) ProcessClass(cf *classfile.ClassFile, ctx *Context) error {
	ctx.mu.Lock()
	ctx.workers = p.Workers()
	ctx.mu.Unlock()
	for _, f := range p.filters {
		span := ctx.Trace.StartSpan(ctx.Node, "filter."+f.Name())
		start := telemetry.StartTimer()
		var err error
		if mf, ok := f.(MethodFilter); ok {
			err = p.runMethodFilter(cf, mf, ctx)
		} else {
			err = f.Transform(cf, ctx)
		}
		ctx.addTiming(f.Name(), start.Elapsed())
		span.End()
		if err != nil {
			return fmt.Errorf("rewrite: filter %s on %s: %w", f.Name(), cf.Name(), err)
		}
	}
	return nil
}

// runMethodFilter executes one MethodFilter stage: sequential Prepare,
// then TransformMethod over every method on the worker pool. The
// constant pool is frozen for the duration of the fan-out, so a filter
// that forgot to intern a constant in Prepare fails loudly (panic
// recovered into an error) instead of racing. The first error in
// method-table order wins, independent of scheduling.
func (p *Pipeline) runMethodFilter(cf *classfile.ClassFile, mf MethodFilter, ctx *Context) error {
	if err := mf.Prepare(cf, ctx); err != nil {
		return err
	}
	workers := ctx.Workers()
	if workers > len(cf.Methods) {
		workers = len(cf.Methods)
	}
	if workers <= 1 {
		for _, m := range cf.Methods {
			if err := transformMethodSafe(mf, cf, m, ctx); err != nil {
				return err
			}
		}
		return nil
	}
	cf.Pool.Freeze(true)
	defer cf.Pool.Freeze(false)
	errs := make([]error, len(cf.Methods))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				errs[i] = transformMethodSafe(mf, cf, cf.Methods[i], ctx)
			}
		}()
	}
	for i := range cf.Methods {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// transformMethodSafe converts a panic from a method transformation
// (e.g. a frozen-pool violation) into an error tagged with the method,
// so one bad method fails the class rather than the process.
func transformMethodSafe(mf MethodFilter, cf *classfile.ClassFile, m *classfile.Member, ctx *Context) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("method %s: panic: %v", cf.MemberName(m), r)
		}
	}()
	return mf.TransformMethod(cf, m, ctx)
}

// ApplyMethodFilter runs a MethodFilter standalone (Prepare then every
// method sequentially), for callers outside a Pipeline.
func ApplyMethodFilter(mf MethodFilter, cf *classfile.ClassFile, ctx *Context) error {
	if ctx == nil {
		ctx = NewContext()
	}
	if err := mf.Prepare(cf, ctx); err != nil {
		return err
	}
	for _, m := range cf.Methods {
		if err := mf.TransformMethod(cf, m, ctx); err != nil {
			return err
		}
	}
	return nil
}
