package rewrite

import (
	"fmt"
	"time"

	"dvm/internal/classfile"
	"dvm/internal/telemetry"
)

// Context carries per-class information through a pipeline run: which
// client requested the class, accumulated service notes, and per-filter
// timing for the audit trail.
type Context struct {
	// ClientID identifies the requesting client (from the handshake
	// protocol of §3.3); empty for client-independent processing.
	ClientID string
	// ClientArch is the client's native format descriptor, used by the
	// compilation service (§3.4).
	ClientArch string
	// Notes lets filters publish results to later filters and to the
	// proxy (e.g. the verifier's check census, the optimizer's split map).
	Notes map[string]any
	// FilterTimings records wall-clock time spent per filter.
	FilterTimings map[string]time.Duration
}

// NewContext returns an empty context.
func NewContext() *Context {
	return &Context{
		Notes:         make(map[string]any),
		FilterTimings: make(map[string]time.Duration),
	}
}

// Filter is one static service component: a code transformation applied
// to a parsed class (paper Figure 2's pipeline stages — verifier,
// security, compiler, optimizer, profiler — all implement this).
type Filter interface {
	// Name identifies the filter in audit trails and timings.
	Name() string
	// Transform inspects and/or rewrites the class in place.
	Transform(cf *classfile.ClassFile, ctx *Context) error
}

// FilterFunc adapts a function to the Filter interface.
type FilterFunc struct {
	FilterName string
	Fn         func(cf *classfile.ClassFile, ctx *Context) error
}

// Name implements Filter.
func (f FilterFunc) Name() string { return f.FilterName }

// Transform implements Filter.
func (f FilterFunc) Transform(cf *classfile.ClassFile, ctx *Context) error {
	return f.Fn(cf, ctx)
}

// Pipeline composes filters. Process parses the class once, runs every
// filter over the shared in-memory form, and serializes once — the
// paper's single-parse proxy structure.
type Pipeline struct {
	filters []Filter
}

// NewPipeline builds a pipeline from filters in application order.
func NewPipeline(filters ...Filter) *Pipeline {
	return &Pipeline{filters: filters}
}

// Append adds a filter at the end of the pipeline.
func (p *Pipeline) Append(f Filter) { p.filters = append(p.filters, f) }

// Filters returns the filter list in application order.
func (p *Pipeline) Filters() []Filter { return p.filters }

// Process runs the pipeline over one serialized class.
func (p *Pipeline) Process(data []byte, ctx *Context) ([]byte, error) {
	if ctx == nil {
		ctx = NewContext()
	}
	cf, err := classfile.Parse(data)
	if err != nil {
		return nil, fmt.Errorf("rewrite: pipeline parse: %w", err)
	}
	if err := p.ProcessClass(cf, ctx); err != nil {
		return nil, err
	}
	out, err := cf.Encode()
	if err != nil {
		return nil, fmt.Errorf("rewrite: pipeline encode: %w", err)
	}
	return out, nil
}

// ProcessClass runs the filters over an already-parsed class.
func (p *Pipeline) ProcessClass(cf *classfile.ClassFile, ctx *Context) error {
	for _, f := range p.filters {
		start := telemetry.StartTimer()
		if err := f.Transform(cf, ctx); err != nil {
			return fmt.Errorf("rewrite: filter %s on %s: %w", f.Name(), cf.Name(), err)
		}
		ctx.FilterTimings[f.Name()] += start.Elapsed()
	}
	return nil
}
