package rewrite

import (
	"dvm/internal/bytecode"
	"dvm/internal/classfile"
)

// Snippet builds a short instruction sequence for splicing, interning
// operands into the target class's constant pool. Branches inside a
// snippet use the Rel* sentinels from this package.
type Snippet struct {
	pool  *classfile.ConstPool
	insts []bytecode.Inst
}

// NewSnippet starts a snippet against the given pool.
func NewSnippet(pool *classfile.ConstPool) *Snippet {
	return &Snippet{pool: pool}
}

// Insts returns the accumulated instructions.
func (s *Snippet) Insts() []bytecode.Inst { return s.insts }

// Len returns the number of instructions so far (useful for RelSelf).
func (s *Snippet) Len() int { return len(s.insts) }

func (s *Snippet) emit(in bytecode.Inst) *Snippet {
	if !in.Op.IsBranch() && !in.Op.IsSwitch() {
		in.Target = -1
	}
	s.insts = append(s.insts, in)
	return s
}

// LdcString pushes a string constant.
func (s *Snippet) LdcString(v string) *Snippet {
	return s.emit(bytecode.Inst{Op: bytecode.Ldc, Index: s.pool.AddString(v)})
}

// IConst pushes an int constant with the smallest encoding.
func (s *Snippet) IConst(v int32) *Snippet {
	switch {
	case v >= -1 && v <= 5:
		return s.emit(bytecode.Inst{Op: bytecode.Opcode(int32(bytecode.Iconst0) + v)})
	case v >= -128 && v <= 127:
		return s.emit(bytecode.Inst{Op: bytecode.Bipush, Const: v})
	case v >= -32768 && v <= 32767:
		return s.emit(bytecode.Inst{Op: bytecode.Sipush, Const: v})
	}
	return s.emit(bytecode.Inst{Op: bytecode.Ldc, Index: s.pool.AddInteger(v)})
}

// ALoad loads a reference local.
func (s *Snippet) ALoad(idx uint16) *Snippet {
	if idx < 4 {
		return s.emit(bytecode.Inst{Op: bytecode.Aload0 + bytecode.Opcode(idx)})
	}
	return s.emit(bytecode.Inst{Op: bytecode.Aload, Index: idx})
}

// Dup duplicates the top slot.
func (s *Snippet) Dup() *Snippet { return s.emit(bytecode.Inst{Op: bytecode.Dup}) }

// Pop discards the top slot.
func (s *Snippet) Pop() *Snippet { return s.emit(bytecode.Inst{Op: bytecode.Pop}) }

// Swap exchanges the top two slots.
func (s *Snippet) Swap() *Snippet { return s.emit(bytecode.Inst{Op: bytecode.Swap}) }

// GetStatic reads a static field.
func (s *Snippet) GetStatic(class, name, desc string) *Snippet {
	return s.emit(bytecode.Inst{Op: bytecode.Getstatic, Index: s.pool.AddFieldref(class, name, desc)})
}

// PutStatic writes a static field.
func (s *Snippet) PutStatic(class, name, desc string) *Snippet {
	return s.emit(bytecode.Inst{Op: bytecode.Putstatic, Index: s.pool.AddFieldref(class, name, desc)})
}

// InvokeStatic calls a static method.
func (s *Snippet) InvokeStatic(class, name, desc string) *Snippet {
	return s.emit(bytecode.Inst{Op: bytecode.Invokestatic, Index: s.pool.AddMethodref(class, name, desc)})
}

// InvokeVirtual calls a virtual method.
func (s *Snippet) InvokeVirtual(class, name, desc string) *Snippet {
	return s.emit(bytecode.Inst{Op: bytecode.Invokevirtual, Index: s.pool.AddMethodref(class, name, desc)})
}

// Branch emits a branch with a Rel* target sentinel.
func (s *Snippet) Branch(op bytecode.Opcode, relTarget int) *Snippet {
	return s.emit(bytecode.Inst{Op: op, Target: relTarget})
}
