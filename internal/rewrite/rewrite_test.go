package rewrite_test

import (
	"bytes"
	"testing"

	"dvm/internal/bytecode"
	"dvm/internal/classfile"
	"dvm/internal/classgen"
	"dvm/internal/jvm"
	"dvm/internal/rewrite"
)

// buildCounter builds demo/C with a static int "hits" and a static
// bump()V that increments it, plus the method under test.
func buildCounterClass(body func(m *classgen.MethodBuilder)) *classgen.ClassBuilder {
	b := classgen.NewClass("demo/C", "java/lang/Object")
	b.Field(classfile.AccPublic|classfile.AccStatic, "hits", "I")
	bump := b.Method(classfile.AccPublic|classfile.AccStatic, "bump", "()V")
	bump.GetStatic("demo/C", "hits", "I").IConst(1).IAdd().PutStatic("demo/C", "hits", "I")
	bump.Return()
	m := b.Method(classfile.AccPublic|classfile.AccStatic, "f", "(I)I")
	body(m)
	return b
}

func runClass(t *testing.T, data []byte, arg int32) (int32, int32) {
	t.Helper()
	cf, err := classfile.Parse(data)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	vm, err := jvm.New(jvm.MapLoader{cf.Name(): data}, &bytes.Buffer{})
	if err != nil {
		t.Fatalf("vm: %v", err)
	}
	v, thrown, err := vm.MainThread().InvokeByName("demo/C", "f", "(I)I", []jvm.Value{jvm.IntV(arg)})
	if err != nil {
		t.Fatalf("invoke: %v", err)
	}
	if thrown != nil {
		t.Fatalf("thrown: %s", jvm.DescribeThrowable(thrown))
	}
	c, _ := vm.Class("demo/C")
	_, slot, _ := c.StaticSlot("hits", "I")
	return v.Int(), c.GetStatic(slot).Int()
}

// editF returns an editor for demo/C.f after building.
func editF(t *testing.T, b *classgen.ClassBuilder) (*classfile.ClassFile, *rewrite.MethodEditor) {
	t.Helper()
	cf := b.MustBuild()
	m := cf.FindMethod("f", "(I)I")
	ed, err := rewrite.EditMethod(cf, m)
	if err != nil {
		t.Fatalf("EditMethod: %v", err)
	}
	if ed == nil {
		t.Fatal("no editor for method with code")
	}
	return cf, ed
}

func TestInsertEntryRunsOncePerInvocation(t *testing.T) {
	// f(n): loop n times, return n. Entry snippet bumps the counter; the
	// loop back-edge must NOT re-run it.
	b := buildCounterClass(func(m *classgen.MethodBuilder) {
		m.IConst(0).IStore(1)
		head := m.Here()
		exit := m.NewLabel()
		m.ILoad(1).ILoad(0).Branch(bytecode.IfIcmpge, exit)
		m.IInc(1, 1)
		m.Goto(head)
		m.Mark(exit)
		m.ILoad(0).IReturn()
	})
	cf, ed := editF(t, b)
	sn := rewrite.NewSnippet(ed.Pool()).InvokeStatic("demo/C", "bump", "()V")
	if err := ed.InsertEntry(sn.Insts()); err != nil {
		t.Fatal(err)
	}
	if err := ed.Commit(); err != nil {
		t.Fatal(err)
	}
	data, err := cf.Encode()
	if err != nil {
		t.Fatal(err)
	}
	ret, hits := runClass(t, data, 50)
	if ret != 50 {
		t.Errorf("f(50) = %d", ret)
	}
	if hits != 1 {
		t.Errorf("entry snippet ran %d times, want 1", hits)
	}
}

func TestInsertCapturesBranches(t *testing.T) {
	// f(x): if (x != 0) goto L; hits unchanged path; L: return 7.
	// A snippet inserted before L with captureBranches must run on the
	// branched path too.
	b := buildCounterClass(func(m *classgen.MethodBuilder) {
		l := m.NewLabel()
		m.ILoad(0).Branch(bytecode.Ifne, l)
		m.Nop()
		m.Mark(l)
		m.IConst(7).IReturn()
	})
	cf, ed := editF(t, b)
	// Find the iconst 7 (bipush 7) instruction index.
	pos := -1
	for i, in := range ed.Insts {
		if in.Op == bytecode.Bipush && in.Const == 7 {
			pos = i
		}
	}
	if pos < 0 {
		t.Fatalf("bipush 7 not found in %v", ed.Insts)
	}
	sn := rewrite.NewSnippet(ed.Pool()).InvokeStatic("demo/C", "bump", "()V")
	if err := ed.InsertAt(pos, sn.Insts(), true); err != nil {
		t.Fatal(err)
	}
	if err := ed.Commit(); err != nil {
		t.Fatal(err)
	}
	data, err := cf.Encode()
	if err != nil {
		t.Fatal(err)
	}
	// Branch taken (x=1): snippet must still run.
	ret, hits := runClass(t, data, 1)
	if ret != 7 || hits != 1 {
		t.Errorf("taken path: ret=%d hits=%d, want 7/1", ret, hits)
	}
}

func TestInsertWithoutCaptureSkipsOnBranch(t *testing.T) {
	b := buildCounterClass(func(m *classgen.MethodBuilder) {
		l := m.NewLabel()
		m.ILoad(0).Branch(bytecode.Ifne, l)
		m.Nop()
		m.Mark(l)
		m.IConst(7).IReturn()
	})
	cf, ed := editF(t, b)
	pos := -1
	for i, in := range ed.Insts {
		if in.Op == bytecode.Bipush && in.Const == 7 {
			pos = i
		}
	}
	sn := rewrite.NewSnippet(ed.Pool()).InvokeStatic("demo/C", "bump", "()V")
	if err := ed.InsertAt(pos, sn.Insts(), false); err != nil {
		t.Fatal(err)
	}
	if err := ed.Commit(); err != nil {
		t.Fatal(err)
	}
	data, err := cf.Encode()
	if err != nil {
		t.Fatal(err)
	}
	// Branch taken (x=1): the snippet is jumped over.
	_, hits := runClass(t, data, 1)
	if hits != 0 {
		t.Errorf("taken path ran snippet %d times, want 0", hits)
	}
	// Fall-through (x=0): the snippet runs.
	_, hits = runClass(t, data, 0)
	if hits != 1 {
		t.Errorf("fall-through ran snippet %d times, want 1", hits)
	}
}

func TestGuardedEntrySnippetPattern(t *testing.T) {
	// The verifier's Figure 3 pattern: a static flag guards one-time
	// checks. getstatic flag; ifne END; bump; iconst_1; putstatic flag.
	b := buildCounterClass(func(m *classgen.MethodBuilder) {
		m.ILoad(0).IReturn()
	})
	b.Field(classfile.AccPublic|classfile.AccStatic, "checked", "Z")
	cf, ed := editF(t, b)
	sn := rewrite.NewSnippet(ed.Pool())
	sn.GetStatic("demo/C", "checked", "Z")
	sn.Branch(bytecode.Ifne, rewrite.RelEnd)
	sn.InvokeStatic("demo/C", "bump", "()V")
	sn.IConst(1)
	sn.PutStatic("demo/C", "checked", "Z")
	if err := ed.InsertEntry(sn.Insts()); err != nil {
		t.Fatal(err)
	}
	if err := ed.Commit(); err != nil {
		t.Fatal(err)
	}
	data, err := cf.Encode()
	if err != nil {
		t.Fatal(err)
	}

	cfp, _ := classfile.Parse(data)
	vm, err := jvm.New(jvm.MapLoader{"demo/C": data}, nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = cfp
	for i := 0; i < 3; i++ {
		_, thrown, err := vm.MainThread().InvokeByName("demo/C", "f", "(I)I", []jvm.Value{jvm.IntV(0)})
		if err != nil || thrown != nil {
			t.Fatalf("invoke %d: %v %v", i, err, jvm.DescribeThrowable(thrown))
		}
	}
	c, _ := vm.Class("demo/C")
	_, slot, _ := c.StaticSlot("hits", "I")
	if hits := c.GetStatic(slot).Int(); hits != 1 {
		t.Errorf("guarded snippet ran %d times across 3 calls, want 1", hits)
	}
}

func TestExceptionTableSurvivesInsert(t *testing.T) {
	b := buildCounterClass(func(m *classgen.MethodBuilder) {
		start := m.Here()
		skip := m.NewLabel()
		m.ILoad(0).Branch(bytecode.Ifne, skip)
		m.NewDup("java/lang/RuntimeException")
		m.InvokeSpecial("java/lang/RuntimeException", "<init>", "()V")
		m.AThrow()
		m.Mark(skip)
		m.IConst(1).IReturn()
		end := m.NewLabel()
		m.Mark(end)
		h := m.Here()
		m.Pop()
		m.IConst(2).IReturn()
		m.Handler(start, end, h, "java/lang/RuntimeException")
	})
	cf, ed := editF(t, b)
	sn := rewrite.NewSnippet(ed.Pool()).InvokeStatic("demo/C", "bump", "()V")
	if err := ed.InsertEntry(sn.Insts()); err != nil {
		t.Fatal(err)
	}
	if err := ed.Commit(); err != nil {
		t.Fatal(err)
	}
	data, err := cf.Encode()
	if err != nil {
		t.Fatal(err)
	}
	// Exception path still caught after rewrite.
	ret, hits := runClass(t, data, 0)
	if ret != 2 {
		t.Errorf("exception path = %d, want 2 (handler)", ret)
	}
	if hits != 1 {
		t.Errorf("hits = %d", hits)
	}
	ret, _ = runClass(t, data, 5)
	if ret != 1 {
		t.Errorf("normal path = %d, want 1", ret)
	}
}

func TestInsertBeforeReturns(t *testing.T) {
	b := buildCounterClass(func(m *classgen.MethodBuilder) {
		l := m.NewLabel()
		m.ILoad(0).Branch(bytecode.Ifne, l)
		m.IConst(10).IReturn()
		m.Mark(l)
		m.IConst(20).IReturn()
	})
	cf, ed := editF(t, b)
	sn := rewrite.NewSnippet(ed.Pool()).InvokeStatic("demo/C", "bump", "()V")
	if err := ed.InsertBeforeReturns(sn.Insts()); err != nil {
		t.Fatal(err)
	}
	if err := ed.Commit(); err != nil {
		t.Fatal(err)
	}
	data, err := cf.Encode()
	if err != nil {
		t.Fatal(err)
	}
	for _, arg := range []int32{0, 1} {
		ret, hits := runClass(t, data, arg)
		if hits != 1 {
			t.Errorf("arg %d: exit snippet ran %d times, want 1", arg, hits)
		}
		want := int32(10)
		if arg != 0 {
			want = 20
		}
		if ret != want {
			t.Errorf("arg %d: ret = %d, want %d", arg, ret, want)
		}
	}
}

func TestPipelineComposesFilters(t *testing.T) {
	b := buildCounterClass(func(m *classgen.MethodBuilder) {
		m.ILoad(0).IReturn()
	})
	data, err := b.BuildBytes()
	if err != nil {
		t.Fatal(err)
	}
	var order []string
	mkFilter := func(name string) rewrite.Filter {
		return rewrite.FilterFunc{FilterName: name, Fn: func(cf *classfile.ClassFile, ctx *rewrite.Context) error {
			order = append(order, name)
			ctx.Notes[name] = cf.Name()
			return nil
		}}
	}
	p := rewrite.NewPipeline(mkFilter("verify"), mkFilter("security"))
	p.Append(mkFilter("audit"))
	ctx := rewrite.NewContext()
	out, err := p.Process(data, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != "verify" || order[2] != "audit" {
		t.Errorf("filter order = %v", order)
	}
	if ctx.Notes["security"] != "demo/C" {
		t.Errorf("Notes = %v", ctx.Notes)
	}
	if len(ctx.FilterTimings) != 3 {
		t.Errorf("FilterTimings = %v", ctx.FilterTimings)
	}
	if _, err := classfile.Parse(out); err != nil {
		t.Errorf("pipeline output does not parse: %v", err)
	}
}

func TestPipelineFilterErrorPropagates(t *testing.T) {
	b := buildCounterClass(func(m *classgen.MethodBuilder) {
		m.ILoad(0).IReturn()
	})
	data, _ := b.BuildBytes()
	p := rewrite.NewPipeline(rewrite.FilterFunc{FilterName: "boom", Fn: func(cf *classfile.ClassFile, ctx *rewrite.Context) error {
		return bytesErr{}
	}})
	if _, err := p.Process(data, nil); err == nil {
		t.Fatal("filter error swallowed")
	}
}

type bytesErr struct{}

func (bytesErr) Error() string { return "synthetic" }

func TestEditMethodNilForAbstract(t *testing.T) {
	b := classgen.NewClass("demo/A", "java/lang/Object")
	b.AbstractMethod(classfile.AccPublic|classfile.AccAbstract, "f", "()V")
	b.SetFlags(classfile.AccPublic | classfile.AccAbstract | classfile.AccSuper)
	cf := b.MustBuild()
	ed, err := rewrite.EditMethod(cf, cf.FindMethod("f", "()V"))
	if err != nil {
		t.Fatal(err)
	}
	if ed != nil {
		t.Fatal("editor returned for abstract method")
	}
}
