// Package rewrite is the DVM's binary rewriting engine: the mechanism
// every static service component uses to inject dynamic-service calls
// into application code (paper §2: "The glue that ties the static and
// dynamic service components together is binary rewriting").
//
// It provides two layers:
//
//   - MethodEditor: decode one method body into an instruction list,
//     splice snippets at arbitrary positions with branch/exception-table
//     fixup, and re-encode with max_stack recomputed.
//   - Pipeline: the proxy-side filter API of §3 — "an internal filtering
//     API allows the logically separate services ... to be composed on
//     the proxy host. Parsing and code generation are performed only once
//     for all static services, while structuring the services as
//     independent code-transformation filters enables them to be stacked
//     according to site-specific requirements."
package rewrite

import (
	"fmt"

	"dvm/internal/bytecode"
	"dvm/internal/classfile"
)

// MethodEditor edits one method body. Obtain with EditMethod, splice with
// InsertAt, and call Commit to re-encode into the classfile.
type MethodEditor struct {
	cf     *classfile.ClassFile
	member *classfile.Member
	code   *classfile.Code

	Insts    []bytecode.Inst
	handlers []editHandler
	// MaxLocals may be raised by snippets that need scratch locals.
	MaxLocals int
}

type editHandler struct {
	start, end, handler int // instruction indices, end exclusive
	catchType           uint16
}

// EditMethod decodes the method's Code attribute for editing. It returns
// (nil, nil) for methods without code (abstract/native).
func EditMethod(cf *classfile.ClassFile, m *classfile.Member) (*MethodEditor, error) {
	code, err := cf.CodeOf(m)
	if err != nil {
		return nil, err
	}
	if code == nil {
		return nil, nil
	}
	insts, err := bytecode.Decode(code.Bytecode)
	if err != nil {
		return nil, fmt.Errorf("rewrite: %s.%s: %w", cf.Name(), cf.MemberName(m), err)
	}
	pcIdx := bytecode.PCMap(insts)
	ed := &MethodEditor{
		cf:        cf,
		member:    m,
		code:      code,
		Insts:     insts,
		MaxLocals: int(code.MaxLocals),
	}
	for _, h := range code.Handlers {
		si, ok1 := pcIdx[int(h.StartPC)]
		hi, ok3 := pcIdx[int(h.HandlerPC)]
		var ei int
		var ok2 bool
		if int(h.EndPC) == len(code.Bytecode) {
			ei, ok2 = len(insts), true
		} else {
			ei, ok2 = pcIdx[int(h.EndPC)]
		}
		if !ok1 || !ok2 || !ok3 {
			return nil, fmt.Errorf("rewrite: %s.%s: exception table not on instruction boundaries", cf.Name(), cf.MemberName(m))
		}
		ed.handlers = append(ed.handlers, editHandler{start: si, end: ei, handler: hi, catchType: h.CatchType})
	}
	return ed, nil
}

// Pool returns the class constant pool for interning snippet operands.
func (ed *MethodEditor) Pool() *classfile.ConstPool { return ed.cf.Pool }

// InsertAt splices snippet before instruction position (0 = method
// entry; len(Insts) is not allowed — snippets always precede an existing
// instruction).
//
// captureBranches controls whether existing branches targeting pos are
// redirected to the snippet start (true — required for security checks
// that must dominate the protected instruction) or continue to target
// the original instruction (false — right for entry guards that must not
// re-run on loop back-edges).
//
// Snippet instructions may use relative targets: a Target of
// RelEnd means "the original instruction at pos" and RelSelf(k) targets
// the k-th instruction of the snippet itself.
func (ed *MethodEditor) InsertAt(pos int, snippet []bytecode.Inst, captureBranches bool) error {
	if pos < 0 || pos >= len(ed.Insts) {
		return fmt.Errorf("rewrite: insert position %d out of range (method has %d instructions)", pos, len(ed.Insts))
	}
	k := len(snippet)
	if k == 0 {
		return nil
	}
	// Resolve snippet-relative targets to absolute (post-shift) indices.
	resolved := make([]bytecode.Inst, k)
	copy(resolved, snippet)
	resolveTarget := func(t int) (int, error) {
		switch {
		case t == RelEnd:
			return pos + k, nil // original instruction, post-shift
		case t <= relBase:
			i := relBase - t
			if i >= k {
				return 0, fmt.Errorf("rewrite: snippet-relative target %d out of snippet range %d", i, k)
			}
			return pos + i, nil
		case t >= 0:
			return 0, fmt.Errorf("rewrite: snippet branch target %d must be relative (use RelEnd/RelSelf)", t)
		}
		return 0, fmt.Errorf("rewrite: snippet branch without target")
	}
	for i := range resolved {
		in := &resolved[i]
		if in.Op.IsBranch() {
			t, err := resolveTarget(in.Target)
			if err != nil {
				return err
			}
			in.Target = t
		} else if in.Op.IsSwitch() {
			if in.Switch == nil {
				return fmt.Errorf("rewrite: snippet switch without payload")
			}
			sw := *in.Switch
			d, err := resolveTarget(sw.Default)
			if err != nil {
				return err
			}
			sw.Default = d
			sw.Targets = append([]int(nil), in.Switch.Targets...)
			for j, tt := range sw.Targets {
				nt, err := resolveTarget(tt)
				if err != nil {
					return err
				}
				sw.Targets[j] = nt
			}
			in.Switch = &sw
		}
	}

	// Shift existing targets.
	shift := func(t int) int {
		switch {
		case t > pos:
			return t + k
		case t == pos:
			if captureBranches {
				return pos // snippet start
			}
			return pos + k
		}
		return t
	}
	for i := range ed.Insts {
		in := &ed.Insts[i]
		if in.Op.IsBranch() {
			in.Target = shift(in.Target)
		} else if in.Op.IsSwitch() {
			sw := *in.Switch
			sw.Default = shift(sw.Default)
			sw.Targets = append([]int(nil), in.Switch.Targets...)
			for j, tt := range sw.Targets {
				sw.Targets[j] = shift(tt)
			}
			in.Switch = &sw
		}
	}
	for i := range ed.handlers {
		h := &ed.handlers[i]
		// A protected region grows to cover code inserted inside it; the
		// snippet joins the region when inserted strictly within, and the
		// handler entry shifts like a branch target.
		if h.start > pos {
			h.start += k
		}
		if h.end > pos {
			h.end += k
		}
		if h.handler > pos {
			h.handler += k
		} else if h.handler == pos {
			if captureBranches {
				// keep pointing at snippet start
			} else {
				h.handler += k
			}
		}
	}

	// Splice.
	out := make([]bytecode.Inst, 0, len(ed.Insts)+k)
	out = append(out, ed.Insts[:pos]...)
	out = append(out, resolved...)
	out = append(out, ed.Insts[pos:]...)
	ed.Insts = out
	return nil
}

// InsertEntry splices a snippet at method entry without capturing
// back-edges (entry guards run once per invocation).
func (ed *MethodEditor) InsertEntry(snippet []bytecode.Inst) error {
	return ed.InsertAt(0, snippet, false)
}

// InsertBeforeReturns splices the snippet before every return
// instruction (used by audit exit events). athrow exits are not covered;
// callers needing those wrap with a handler.
func (ed *MethodEditor) InsertBeforeReturns(snippet []bytecode.Inst) error {
	// Collect positions first; splicing shifts indices.
	var positions []int
	for i, in := range ed.Insts {
		if in.Op.IsReturn() {
			positions = append(positions, i)
		}
	}
	for n := len(positions) - 1; n >= 0; n-- {
		if err := ed.InsertAt(positions[n], snippet, true); err != nil {
			return err
		}
	}
	return nil
}

// Commit re-encodes the edited body into the classfile, recomputing
// branch offsets, the exception table, and max_stack. Line-number tables
// are dropped (offsets no longer correspond); other code attributes are
// preserved verbatim.
func (ed *MethodEditor) Commit() error {
	code, pcs, err := bytecode.Encode(ed.Insts)
	if err != nil {
		return fmt.Errorf("rewrite: %s.%s: %w", ed.cf.Name(), ed.cf.MemberName(ed.member), err)
	}
	var handlerStarts []int
	for _, h := range ed.handlers {
		handlerStarts = append(handlerStarts, h.handler)
	}
	maxStack, err := bytecode.MaxStack(ed.Insts, ed.cf.Pool, handlerStarts)
	if err != nil {
		return fmt.Errorf("rewrite: %s.%s: %w", ed.cf.Name(), ed.cf.MemberName(ed.member), err)
	}
	newCode := &classfile.Code{
		MaxStack:  uint16(maxStack),
		MaxLocals: uint16(ed.MaxLocals),
		Bytecode:  code,
	}
	endPC := func(i int) uint16 {
		if i >= len(pcs) {
			return uint16(len(code))
		}
		return uint16(pcs[i])
	}
	for _, h := range ed.handlers {
		newCode.Handlers = append(newCode.Handlers, classfile.ExceptionHandler{
			StartPC:   uint16(pcs[h.start]),
			EndPC:     endPC(h.end),
			HandlerPC: uint16(pcs[h.handler]),
			CatchType: h.catchType,
		})
	}
	for _, a := range ed.code.Attributes {
		if ed.cf.AttrName(a) == classfile.AttrLineNumberTable {
			continue
		}
		newCode.Attributes = append(newCode.Attributes, a)
	}
	return ed.cf.SetCode(ed.member, newCode)
}

// Snippet-relative branch target encoding. Snippets cannot know absolute
// instruction indices before insertion, so their branches use these
// sentinels, resolved by InsertAt.
const (
	// RelEnd targets the original instruction the snippet was inserted
	// before (i.e. "skip the rest of the snippet").
	RelEnd = -1
	// relBase anchors RelSelf encodings.
	relBase = -1000
)

// RelSelf targets the i-th instruction of the snippet itself.
func RelSelf(i int) int { return relBase - i }
