package rewrite_test

import (
	"testing"

	"dvm/internal/classfile"
	"dvm/internal/classgen"
	"dvm/internal/rewrite"
)

func buildPadded(t *testing.T) *classfile.ClassFile {
	t.Helper()
	b := classgen.NewClass("demo/Pad", "java/lang/Object")
	b.Field(classfile.AccPrivate, "x", "I")
	b.DefaultInit()
	keep := b.Method(classfile.AccPublic|classfile.AccStatic, "keep", "()Ljava/lang/String;")
	keep.LdcString("kept constant")
	keep.AReturn()
	drop := b.Method(classfile.AccPublic|classfile.AccStatic, "drop", "()Ljava/lang/String;")
	drop.LdcString("a very long constant that exists only in the dropped method and should vanish")
	drop.LdcString("another dropped constant with plenty of padding text in it")
	drop.InvokeVirtual("java/lang/String", "concat", "(Ljava/lang/String;)Ljava/lang/String;")
	drop.AReturn()
	return b.MustBuild()
}

func TestCompactPoolDropsUnreferencedConstants(t *testing.T) {
	cf := buildPadded(t)
	before, err := cf.Encode()
	if err != nil {
		t.Fatal(err)
	}
	// Remove the method, then compact.
	kept := cf.Methods[:0]
	for _, m := range cf.Methods {
		if cf.MemberName(m) != "drop" {
			kept = append(kept, m)
		}
	}
	cf.Methods = kept
	if err := rewrite.CompactPool(cf); err != nil {
		t.Fatal(err)
	}
	after, err := cf.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(after) >= len(before)-100 {
		t.Errorf("compaction freed too little: %d -> %d bytes", len(before), len(after))
	}
	// The result reparses and still carries the live method + constant.
	back, err := classfile.Parse(after)
	if err != nil {
		t.Fatal(err)
	}
	if back.FindMethod("keep", "()Ljava/lang/String;") == nil {
		t.Fatal("live method lost")
	}
	found := false
	for i := 1; i < back.Pool.Size(); i++ {
		if back.Pool.Tag(uint16(i)) == classfile.TagUtf8 {
			if s, _ := back.Pool.Utf8(uint16(i)); s == "kept constant" {
				found = true
			}
			if s, _ := back.Pool.Utf8(uint16(i)); s == "another dropped constant with plenty of padding text in it" {
				t.Error("dropped constant survived compaction")
			}
		}
	}
	if !found {
		t.Error("live constant lost")
	}
}

func TestCompactPoolIdempotent(t *testing.T) {
	cf := buildPadded(t)
	if err := rewrite.CompactPool(cf); err != nil {
		t.Fatal(err)
	}
	once, err := cf.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := rewrite.CompactPool(cf); err != nil {
		t.Fatal(err)
	}
	twice, err := cf.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(once) != len(twice) {
		t.Errorf("compaction not idempotent: %d vs %d bytes", len(once), len(twice))
	}
}

func TestCompactPoolPreservesHandlersAndSwitches(t *testing.T) {
	b := classgen.NewClass("demo/HS", "java/lang/Object")
	m := b.Method(classfile.AccPublic|classfile.AccStatic, "f", "(I)I")
	start := m.Here()
	def := m.NewLabel()
	a1 := m.NewLabel()
	m.ILoad(0)
	m.TableSwitch(1, def, a1)
	m.Mark(a1)
	m.IConst(10).IReturn()
	m.Mark(def)
	m.ILoad(0).IConst(0).IDiv().IReturn()
	end := m.NewLabel()
	m.Mark(end)
	h := m.Here()
	m.Pop()
	m.IConst(-1).IReturn()
	m.Handler(start, end, h, "java/lang/ArithmeticException")
	cf := b.MustBuild()

	if err := rewrite.CompactPool(cf); err != nil {
		t.Fatal(err)
	}
	data, err := cf.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := classfile.Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	code, err := back.CodeOf(back.FindMethod("f", "(I)I"))
	if err != nil {
		t.Fatal(err)
	}
	if len(code.Handlers) != 1 {
		t.Fatalf("handlers = %d", len(code.Handlers))
	}
	cn, err := back.Pool.ClassName(code.Handlers[0].CatchType)
	if err != nil || cn != "java/lang/ArithmeticException" {
		t.Errorf("catch type = %q, %v", cn, err)
	}
}
