package rewrite_test

import (
	"bytes"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"dvm/internal/classfile"
	"dvm/internal/classgen"
	"dvm/internal/eval"
	"dvm/internal/monitor"
	"dvm/internal/rewrite"
	"dvm/internal/security"
	"dvm/internal/verifier"
	"dvm/internal/workload"
)

// servicePlainClasses returns serialized workload classes for pipeline
// identity testing.
func servicePlainClasses(t *testing.T) map[string][]byte {
	t.Helper()
	spec := workload.Benchmarks()[0]
	spec.Classes = 4
	spec.TargetBytes = 32 * 1024
	app, err := workload.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	return app.Classes
}

func fullPipeline(workers int) *rewrite.Pipeline {
	p := rewrite.NewPipeline(
		verifier.Filter(),
		security.Filter(eval.StandardPolicy()),
		monitor.Filter(monitor.Config{Methods: true, FirstUse: true, Skip: monitor.SkipInitializers}),
	)
	p.SetWorkers(workers)
	return p
}

// TestPipelineParallelByteIdentical is the tentpole determinism test for
// the rewrite side: the full static service (verifier + security +
// monitor, all with per-method fan-out) must emit byte-identical classes
// and identical notes at any worker count.
func TestPipelineParallelByteIdentical(t *testing.T) {
	for name, data := range servicePlainClasses(t) {
		seqCtx := rewrite.NewContext()
		seqOut, err := fullPipeline(1).Process(data, seqCtx)
		if err != nil {
			t.Fatalf("%s: sequential: %v", name, err)
		}
		for _, workers := range []int{2, 4, 8} {
			parCtx := rewrite.NewContext()
			parOut, err := fullPipeline(workers).Process(data, parCtx)
			if err != nil {
				t.Fatalf("%s: workers=%d: %v", name, workers, err)
			}
			if !bytes.Equal(parOut, seqOut) {
				t.Errorf("%s: workers=%d output differs from sequential (%d vs %d bytes)",
					name, workers, len(parOut), len(seqOut))
			}
			for _, note := range []string{security.NoteChecksInserted, monitor.NoteAuditSites} {
				if parCtx.Notes[note] != seqCtx.Notes[note] {
					t.Errorf("%s: workers=%d note %s = %v, sequential %v",
						name, workers, note, parCtx.Notes[note], seqCtx.Notes[note])
				}
			}
			pc, _ := parCtx.Note(verifier.NoteCensus)
			sc, _ := seqCtx.Note(verifier.NoteCensus)
			if *pc.(*verifier.Census) != *sc.(*verifier.Census) {
				t.Errorf("%s: workers=%d census diverges", name, workers)
			}
		}
	}
}

// countFilter is a per-method filter that only bumps note counters —
// the -race regression subject for concurrent Notes/FilterTimings
// publication over a many-method class.
type countFilter struct{ calls atomic.Int64 }

func (f *countFilter) Name() string { return "count" }
func (f *countFilter) Transform(cf *classfile.ClassFile, ctx *rewrite.Context) error {
	return rewrite.ApplyMethodFilter(f, cf, ctx)
}
func (f *countFilter) Prepare(cf *classfile.ClassFile, ctx *rewrite.Context) error {
	ctx.AddIntNote("count.methods", 0)
	return nil
}
func (f *countFilter) TransformMethod(cf *classfile.ClassFile, m *classfile.Member, ctx *rewrite.Context) error {
	f.calls.Add(1)
	ctx.AddIntNote("count.methods", 1)
	ctx.SetNote("count.last", cf.MemberName(m))
	return nil
}

// manyMethodClass builds a class with n trivial static methods.
func manyMethodClass(t *testing.T, n int) []byte {
	t.Helper()
	b := classgen.NewClass("demo/Many", "java/lang/Object")
	for i := 0; i < n; i++ {
		m := b.Method(classfile.AccPublic|classfile.AccStatic, fmt.Sprintf("m%03d", i), "(I)I")
		m.ILoad(0).IConst(int32(i)).IAdd().IReturn()
	}
	cf := b.MustBuild()
	data, err := cf.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestConcurrentNotePublication fans a note-heavy per-method filter over
// a 96-method class; run under -race this is the regression test for the
// Context locking.
func TestConcurrentNotePublication(t *testing.T) {
	data := manyMethodClass(t, 96)
	f := &countFilter{}
	p := rewrite.NewPipeline(f)
	p.SetWorkers(8)
	ctx := rewrite.NewContext()
	if _, err := p.Process(data, ctx); err != nil {
		t.Fatal(err)
	}
	if got := f.calls.Load(); got != 96 {
		t.Fatalf("TransformMethod ran %d times, want 96", got)
	}
	if got := ctx.Notes["count.methods"]; got != 96 {
		t.Fatalf("count.methods note = %v, want 96", got)
	}
	if ctx.FilterTimings["count"] < 0 {
		t.Fatal("missing filter timing")
	}
}

// freezeViolator interns a brand-new constant from TransformMethod,
// which the frozen pool must turn into a per-method error, not a crash
// or a race.
type freezeViolator struct{}

func (freezeViolator) Name() string { return "violator" }
func (f freezeViolator) Transform(cf *classfile.ClassFile, ctx *rewrite.Context) error {
	return rewrite.ApplyMethodFilter(f, cf, ctx)
}
func (freezeViolator) Prepare(cf *classfile.ClassFile, ctx *rewrite.Context) error { return nil }
func (freezeViolator) TransformMethod(cf *classfile.ClassFile, m *classfile.Member, ctx *rewrite.Context) error {
	cf.Pool.AddUtf8("fresh-" + cf.MemberName(m))
	return nil
}

func TestFrozenPoolViolationBecomesError(t *testing.T) {
	data := manyMethodClass(t, 16)
	p := rewrite.NewPipeline(freezeViolator{})
	p.SetWorkers(4)
	_, err := p.Process(data, rewrite.NewContext())
	if err == nil {
		t.Fatal("frozen-pool mutation did not fail the pipeline")
	}
	if !strings.Contains(err.Error(), "frozen") {
		t.Fatalf("error does not mention the freeze contract: %v", err)
	}
	// Deterministic first-in-method-order error attribution.
	if !strings.Contains(err.Error(), "method m000") {
		t.Fatalf("error not attributed to the first method: %v", err)
	}
}

// failAt fails on specific method names to exercise deterministic error
// selection under concurrency.
type failAt struct{ bad map[string]bool }

func (failAt) Name() string { return "failat" }
func (f failAt) Transform(cf *classfile.ClassFile, ctx *rewrite.Context) error {
	return rewrite.ApplyMethodFilter(f, cf, ctx)
}
func (failAt) Prepare(cf *classfile.ClassFile, ctx *rewrite.Context) error { return nil }
func (f failAt) TransformMethod(cf *classfile.ClassFile, m *classfile.Member, ctx *rewrite.Context) error {
	if f.bad[cf.MemberName(m)] {
		return fmt.Errorf("refused %s", cf.MemberName(m))
	}
	return nil
}

func TestParallelErrorDeterministic(t *testing.T) {
	data := manyMethodClass(t, 64)
	f := failAt{bad: map[string]bool{"m007": true, "m055": true}}
	for _, workers := range []int{1, 2, 8} {
		p := rewrite.NewPipeline(f)
		p.SetWorkers(workers)
		_, err := p.Process(data, rewrite.NewContext())
		if err == nil {
			t.Fatalf("workers=%d: expected error", workers)
		}
		if !strings.Contains(err.Error(), "refused m007") {
			t.Fatalf("workers=%d: got %v, want the lowest-index failure m007", workers, err)
		}
	}
}
