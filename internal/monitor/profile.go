package monitor

import (
	"fmt"
	"sort"
	"strings"

	"dvm/internal/bytecode"
	"dvm/internal/jvm"
)

// Instruction-level profiling (§3.3): "we provide an instruction-level
// profiling and tracing service for monitoring application performance
// ... we have used the tracing service to obtain traces of
// synchronization behavior for Java applications."

// OpcodeSample is one row of an instruction-level profile.
type OpcodeSample struct {
	Opcode bytecode.Opcode
	Name   string
	Count  int64
}

// OpcodeProfile extracts the per-opcode execution counts from a VM run
// with TraceOpcodes enabled, sorted by descending count.
func OpcodeProfile(vm *jvm.VM) []OpcodeSample {
	var out []OpcodeSample
	for op, n := range vm.OpcodeCounts {
		if n == 0 {
			continue
		}
		o := bytecode.Opcode(op)
		out = append(out, OpcodeSample{Opcode: o, Name: o.Name(), Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Opcode < out[j].Opcode
	})
	return out
}

// SyncTrace summarizes the synchronization behavior of a traced run:
// the data the paper fed into its synchronization-elimination work.
type SyncTrace struct {
	MonitorEnters int64
	MonitorExits  int64
	Invocations   int64
	// SyncRatio is monitor operations per 1000 instructions.
	SyncRatio float64
}

// Synchronization computes the synchronization trace from a traced VM.
func Synchronization(vm *jvm.VM) SyncTrace {
	st := SyncTrace{
		MonitorEnters: vm.OpcodeCounts[bytecode.Monitorenter],
		MonitorExits:  vm.OpcodeCounts[bytecode.Monitorexit],
		Invocations:   vm.Stats.MethodInvocations,
	}
	if total := vm.Stats.InstructionsExecuted; total > 0 {
		st.SyncRatio = float64(st.MonitorEnters+st.MonitorExits) / float64(total) * 1000
	}
	return st
}

// FormatProfile renders the top-n rows of an instruction profile.
func FormatProfile(samples []OpcodeSample, n int) string {
	if n > len(samples) {
		n = len(samples)
	}
	var b strings.Builder
	var total int64
	for _, s := range samples {
		total += s.Count
	}
	fmt.Fprintf(&b, "%-18s %12s %7s\n", "opcode", "count", "share")
	for _, s := range samples[:n] {
		fmt.Fprintf(&b, "%-18s %12d %6.2f%%\n", s.Name, s.Count, float64(s.Count)/float64(total)*100)
	}
	return b.String()
}
