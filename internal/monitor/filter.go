package monitor

import (
	"strconv"
	"strings"

	"dvm/internal/bytecode"
	"dvm/internal/classfile"
	"dvm/internal/jvm"
	"dvm/internal/rewrite"
)

// Config selects what the audit filter instruments.
type Config struct {
	// Methods instruments method/constructor entry and exit with
	// dvm/Audit events.
	Methods bool
	// FirstUse instruments each method with a guarded dvm/Profile
	// first-use probe (feeds the §5 repartitioning optimizer).
	FirstUse bool
	// Skip filters out methods by name (e.g. "<clinit>" to avoid auditing
	// initializers); nil audits everything.
	Skip func(class, method string) bool
}

// Pipeline note keys published by the filters.
const (
	// NoteAuditSites accumulates (int) the number of audit probes added.
	NoteAuditSites = "monitor.auditSites"
)

// Filter returns the static half of the remote monitoring service:
// a pipeline filter that rewrites applications to invoke the auditing
// (and optionally profiling) dynamic components at method and
// constructor boundaries.
func Filter(cfg Config) rewrite.Filter {
	return rewrite.FilterFunc{FilterName: "monitor", Fn: func(cf *classfile.ClassFile, ctx *rewrite.Context) error {
		sites := 0
		profIdx := 0
		for _, m := range cf.Methods {
			name := cf.MemberName(m)
			if cfg.Skip != nil && cfg.Skip(cf.Name(), name) {
				continue
			}
			ed, err := rewrite.EditMethod(cf, m)
			if err != nil {
				return err
			}
			if ed == nil {
				continue
			}
			changed := false
			if cfg.FirstUse {
				guard := "dvm$fu$" + strconv.Itoa(profIdx)
				profIdx++
				cf.Fields = append(cf.Fields, &classfile.Member{
					AccessFlags:     classfile.AccPrivate | classfile.AccStatic,
					NameIndex:       cf.Pool.AddUtf8(guard),
					DescriptorIndex: cf.Pool.AddUtf8("Z"),
				})
				sn := rewrite.NewSnippet(cf.Pool)
				sn.GetStatic(cf.Name(), guard, "Z")
				sn.Branch(bytecode.Ifne, rewrite.RelEnd)
				sn.IConst(1)
				sn.PutStatic(cf.Name(), guard, "Z")
				sn.LdcString(cf.Name()).LdcString(name).LdcString(cf.MemberDescriptor(m))
				sn.InvokeStatic("dvm/Profile", "firstUse",
					"(Ljava/lang/String;Ljava/lang/String;Ljava/lang/String;)V")
				if err := ed.InsertEntry(sn.Insts()); err != nil {
					return err
				}
				sites++
				changed = true
			}
			if cfg.Methods {
				enter := rewrite.NewSnippet(cf.Pool)
				enter.LdcString(cf.Name()).LdcString(name)
				enter.InvokeStatic("dvm/Audit", "enter", "(Ljava/lang/String;Ljava/lang/String;)V")
				exit := rewrite.NewSnippet(cf.Pool)
				exit.LdcString(cf.Name()).LdcString(name)
				exit.InvokeStatic("dvm/Audit", "exit", "(Ljava/lang/String;Ljava/lang/String;)V")
				if err := ed.InsertBeforeReturns(exit.Insts()); err != nil {
					return err
				}
				if err := ed.InsertEntry(enter.Insts()); err != nil {
					return err
				}
				sites += 2
				changed = true
			}
			if changed {
				if err := ed.Commit(); err != nil {
					return err
				}
			}
		}
		if prev, ok := ctx.Notes[NoteAuditSites].(int); ok {
			ctx.Notes[NoteAuditSites] = prev + sites
		} else {
			ctx.Notes[NoteAuditSites] = sites
		}
		return nil
	}}
}

// Attach wires a client VM to the collector: performs the handshake and
// routes the dvm/Audit and dvm/Profile dynamic components to the central
// console. It returns the assigned session id.
func Attach(vm *jvm.VM, c *Collector, info ClientInfo) string {
	session := c.Handshake(info)
	vm.OnAudit = func(e jvm.AuditEvent) {
		// Errors (unknown session) cannot happen for a live handshake;
		// the audit path must not disturb the application.
		_ = c.Record(session, e.Class, e.Method, e.Kind)
	}
	vm.OnFirstUse = func(class, method, desc string) {
		_ = c.Record(session, class, method+" "+desc, "note")
	}
	return session
}

// SkipInitializers is a Config.Skip helper that leaves constructors and
// class initializers uninstrumented.
func SkipInitializers(class, method string) bool {
	return strings.HasPrefix(method, "<")
}
