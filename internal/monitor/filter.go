package monitor

import (
	"strconv"
	"strings"

	"dvm/internal/bytecode"
	"dvm/internal/classfile"
	"dvm/internal/jvm"
	"dvm/internal/rewrite"
)

// Config selects what the audit filter instruments.
type Config struct {
	// Methods instruments method/constructor entry and exit with
	// dvm/Audit events.
	Methods bool
	// FirstUse instruments each method with a guarded dvm/Profile
	// first-use probe (feeds the §5 repartitioning optimizer).
	FirstUse bool
	// Skip filters out methods by name (e.g. "<clinit>" to avoid auditing
	// initializers); nil audits everything.
	Skip func(class, method string) bool
}

// Pipeline note keys published by the filters.
const (
	// NoteAuditSites accumulates (int) the number of audit probes added.
	NoteAuditSites = "monitor.auditSites"
)

// Filter returns the static half of the remote monitoring service:
// a pipeline filter that rewrites applications to invoke the auditing
// (and optionally profiling) dynamic components at method and
// constructor boundaries. It implements rewrite.MethodFilter: Prepare
// interns every constant and appends the first-use guard fields in
// method-table order (keeping output deterministic), and the per-method
// insertions then run concurrently on the pipeline's worker pool.
func Filter(cfg Config) rewrite.Filter {
	return &auditFilter{cfg: cfg}
}

type auditFilter struct{ cfg Config }

// auditPlan holds the pre-built snippets for one method. Snippets are
// constructed against the pool during Prepare; replaying them in
// TransformMethod touches the pool read-only.
type auditPlan struct {
	fu    []bytecode.Inst
	enter []bytecode.Inst
	exit  []bytecode.Inst
	sites int
}

const auditPlanNote = "monitor.plan"

func (f *auditFilter) Name() string { return "monitor" }

// Transform implements rewrite.Filter for standalone use; in a pipeline
// the MethodFilter path is taken instead.
func (f *auditFilter) Transform(cf *classfile.ClassFile, ctx *rewrite.Context) error {
	return rewrite.ApplyMethodFilter(f, cf, ctx)
}

// Prepare implements rewrite.MethodFilter: all pool interning and field
// appends happen here, sequentially, in method-table order.
func (f *auditFilter) Prepare(cf *classfile.ClassFile, ctx *rewrite.Context) error {
	cfg := f.cfg
	plans := make(map[*classfile.Member]*auditPlan)
	profIdx := 0
	for _, m := range cf.Methods {
		name := cf.MemberName(m)
		if cfg.Skip != nil && cfg.Skip(cf.Name(), name) {
			continue
		}
		ed, err := rewrite.EditMethod(cf, m)
		if err != nil {
			return err
		}
		if ed == nil {
			continue
		}
		plan := &auditPlan{}
		if cfg.FirstUse {
			guard := "dvm$fu$" + strconv.Itoa(profIdx)
			profIdx++
			cf.Fields = append(cf.Fields, &classfile.Member{
				AccessFlags:     classfile.AccPrivate | classfile.AccStatic,
				NameIndex:       cf.Pool.AddUtf8(guard),
				DescriptorIndex: cf.Pool.AddUtf8("Z"),
			})
			sn := rewrite.NewSnippet(cf.Pool)
			sn.GetStatic(cf.Name(), guard, "Z")
			sn.Branch(bytecode.Ifne, rewrite.RelEnd)
			sn.IConst(1)
			sn.PutStatic(cf.Name(), guard, "Z")
			sn.LdcString(cf.Name()).LdcString(name).LdcString(cf.MemberDescriptor(m))
			sn.InvokeStatic("dvm/Profile", "firstUse",
				"(Ljava/lang/String;Ljava/lang/String;Ljava/lang/String;)V")
			plan.fu = sn.Insts()
			plan.sites++
		}
		if cfg.Methods {
			enter := rewrite.NewSnippet(cf.Pool)
			enter.LdcString(cf.Name()).LdcString(name)
			enter.InvokeStatic("dvm/Audit", "enter", "(Ljava/lang/String;Ljava/lang/String;)V")
			exit := rewrite.NewSnippet(cf.Pool)
			exit.LdcString(cf.Name()).LdcString(name)
			exit.InvokeStatic("dvm/Audit", "exit", "(Ljava/lang/String;Ljava/lang/String;)V")
			plan.enter = enter.Insts()
			plan.exit = exit.Insts()
			plan.sites += 2
		}
		if plan.sites > 0 {
			plans[m] = plan
		}
	}
	ctx.SetNote(auditPlanNote, plans)
	ctx.AddIntNote(NoteAuditSites, 0)
	return nil
}

// TransformMethod implements rewrite.MethodFilter; safe to call
// concurrently for distinct methods (pool reads + ctx accessors only).
func (f *auditFilter) TransformMethod(cf *classfile.ClassFile, m *classfile.Member, ctx *rewrite.Context) error {
	v, _ := ctx.Note(auditPlanNote)
	plans, _ := v.(map[*classfile.Member]*auditPlan)
	plan := plans[m]
	if plan == nil {
		return nil
	}
	ed, err := rewrite.EditMethod(cf, m)
	if err != nil || ed == nil {
		return err
	}
	if plan.fu != nil {
		if err := ed.InsertEntry(plan.fu); err != nil {
			return err
		}
	}
	if plan.enter != nil {
		if err := ed.InsertBeforeReturns(plan.exit); err != nil {
			return err
		}
		if err := ed.InsertEntry(plan.enter); err != nil {
			return err
		}
	}
	if err := ed.Commit(); err != nil {
		return err
	}
	ctx.AddIntNote(NoteAuditSites, plan.sites)
	return nil
}

// Attach wires a client VM to the collector: performs the handshake and
// routes the dvm/Audit and dvm/Profile dynamic components to the central
// console. It returns the assigned session id.
func Attach(vm *jvm.VM, c *Collector, info ClientInfo) string {
	session := c.Handshake(info)
	vm.OnAudit = func(e jvm.AuditEvent) {
		// Errors (unknown session) cannot happen for a live handshake;
		// the audit path must not disturb the application.
		_ = c.Record(session, e.Class, e.Method, e.Kind)
	}
	vm.OnFirstUse = func(class, method, desc string) {
		_ = c.Record(session, class, method+" "+desc, "note")
	}
	return session
}

// SkipInitializers is a Config.Skip helper that leaves constructors and
// class initializers uninstrumented.
func SkipInitializers(class, method string) bool {
	return strings.HasPrefix(method, "<")
}
