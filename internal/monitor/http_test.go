package monitor_test

import (
	"net/http/httptest"
	"testing"

	"dvm/internal/jvm"
	"dvm/internal/monitor"
	"dvm/internal/rewrite"
)

func TestHTTPConsoleEndToEnd(t *testing.T) {
	coll := monitor.NewCollector()
	ts := httptest.NewServer(coll.Handler())
	defer ts.Close()

	data := buildApp(t)
	out, _ := instrument(t, data, monitor.Config{Methods: true})
	vm, err := jvm.New(jvm.MapLoader{"app/M": out}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := monitor.AttachHTTP(vm, ts.URL, monitor.ClientInfo{User: "netuser", Arch: "dvm"}, 4)
	if err != nil {
		t.Fatalf("AttachHTTP: %v", err)
	}
	if thrown, err := vm.RunMain("app/M", nil); err != nil || thrown != nil {
		t.Fatalf("%v %v", err, jvm.DescribeThrowable(thrown))
	}
	rs.Close()
	if rs.Err() != nil {
		t.Fatalf("delivery error: %v", rs.Err())
	}
	// Console saw the handshake and the events.
	if got := coll.Sessions(); len(got) != 1 || got[0] != rs.Session {
		t.Fatalf("sessions = %v", got)
	}
	info, ok := coll.Info(rs.Session)
	if !ok || info.User != "netuser" {
		t.Errorf("info = %+v", info)
	}
	if coll.EventCount() != 8 {
		t.Errorf("events = %d, want 8", coll.EventCount())
	}
	edges := coll.CallGraph(rs.Session)
	if len(edges) != 2 {
		t.Errorf("call graph = %v", edges)
	}
}

func TestHTTPConsoleBatching(t *testing.T) {
	coll := monitor.NewCollector()
	ts := httptest.NewServer(coll.Handler())
	defer ts.Close()

	vm, err := jvm.New(jvm.MapLoader{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := monitor.AttachHTTP(vm, ts.URL, monitor.ClientInfo{}, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Below the batch size: nothing delivered until Flush.
	vm.OnAudit(jvm.AuditEvent{Class: "a", Method: "b", Kind: "enter"})
	if coll.EventCount() != 0 {
		t.Error("event delivered before flush despite batching")
	}
	rs.Flush()
	if coll.EventCount() != 1 {
		t.Errorf("events after flush = %d", coll.EventCount())
	}
}

func TestHTTPConsoleRejectsUnknownSession(t *testing.T) {
	coll := monitor.NewCollector()
	ts := httptest.NewServer(coll.Handler())
	defer ts.Close()
	rs := &monitor.RemoteSession{}
	_ = rs
	// Handshake-less event posting must be rejected; use a raw session.
	vm, err := jvm.New(jvm.MapLoader{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	good, err := monitor.AttachHTTP(vm, ts.URL, monitor.ClientInfo{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	good.Session = "sess-9999" // forged
	vm.OnAudit(jvm.AuditEvent{Class: "a", Method: "b", Kind: "enter"})
	good.Flush()
	if good.Err() == nil {
		t.Error("forged session accepted")
	}
	if coll.EventCount() != 0 {
		t.Error("forged events stored")
	}
}

var _ = rewrite.NewContext
