package monitor_test

import (
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"dvm/internal/jvm"
	"dvm/internal/monitor"
	"dvm/internal/rewrite"
	"dvm/internal/telemetry"
)

func TestHTTPConsoleEndToEnd(t *testing.T) {
	coll := monitor.NewCollector()
	ts := httptest.NewServer(coll.Handler())
	defer ts.Close()

	data := buildApp(t)
	out, _ := instrument(t, data, monitor.Config{Methods: true})
	vm, err := jvm.New(jvm.MapLoader{"app/M": out}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := monitor.AttachHTTP(vm, ts.URL, monitor.ClientInfo{User: "netuser", Arch: "dvm"}, 4)
	if err != nil {
		t.Fatalf("AttachHTTP: %v", err)
	}
	if thrown, err := vm.RunMain("app/M", nil); err != nil || thrown != nil {
		t.Fatalf("%v %v", err, jvm.DescribeThrowable(thrown))
	}
	rs.Close()
	if rs.Err() != nil {
		t.Fatalf("delivery error: %v", rs.Err())
	}
	// Console saw the handshake and the events.
	if got := coll.Sessions(); len(got) != 1 || got[0] != rs.Session {
		t.Fatalf("sessions = %v", got)
	}
	info, ok := coll.Info(rs.Session)
	if !ok || info.User != "netuser" {
		t.Errorf("info = %+v", info)
	}
	if coll.EventCount() != 8 {
		t.Errorf("events = %d, want 8", coll.EventCount())
	}
	edges := coll.CallGraph(rs.Session)
	if len(edges) != 2 {
		t.Errorf("call graph = %v", edges)
	}
}

func TestHTTPConsoleBatching(t *testing.T) {
	coll := monitor.NewCollector()
	ts := httptest.NewServer(coll.Handler())
	defer ts.Close()

	vm, err := jvm.New(jvm.MapLoader{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := monitor.AttachHTTP(vm, ts.URL, monitor.ClientInfo{}, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Below the batch size: nothing delivered until Flush.
	vm.OnAudit(jvm.AuditEvent{Class: "a", Method: "b", Kind: "enter"})
	if coll.EventCount() != 0 {
		t.Error("event delivered before flush despite batching")
	}
	rs.Flush()
	if coll.EventCount() != 1 {
		t.Errorf("events after flush = %d", coll.EventCount())
	}
}

func TestHTTPConsoleRejectsUnknownSession(t *testing.T) {
	coll := monitor.NewCollector()
	ts := httptest.NewServer(coll.Handler())
	defer ts.Close()
	rs := &monitor.RemoteSession{}
	_ = rs
	// Handshake-less event posting must be rejected; use a raw session.
	vm, err := jvm.New(jvm.MapLoader{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	good, err := monitor.AttachHTTP(vm, ts.URL, monitor.ClientInfo{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	good.Session = "sess-9999" // forged
	vm.OnAudit(jvm.AuditEvent{Class: "a", Method: "b", Kind: "enter"})
	good.Flush()
	if good.Err() == nil {
		t.Error("forged session accepted")
	}
	if coll.EventCount() != 0 {
		t.Error("forged events stored")
	}
}

var _ = rewrite.NewContext

// TestConsoleHealthzSharedSchema: the monitoring console serves the
// shared health JSON with event/batch counters and a sessions gauge.
func TestConsoleHealthzSharedSchema(t *testing.T) {
	coll := monitor.NewCollector()
	sid := coll.Handshake(monitor.ClientInfo{User: "probe"})
	if err := coll.Record(sid, "a", "m", "note"); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(coll.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	h, err := telemetry.ParseHealth(body)
	if err != nil {
		t.Fatalf("healthz did not parse as the shared schema: %v\n%s", err, body)
	}
	if h.Service != "monitor" || h.Status != telemetry.StatusOK {
		t.Errorf("service/status = %q/%q, want monitor/ok", h.Service, h.Status)
	}
	if got := h.Counters["events_total"]; got != 1 {
		t.Errorf("events_total = %d, want 1", got)
	}
	if got := h.Gauges["sessions"]; got != 1 {
		t.Errorf("sessions gauge = %v, want 1", got)
	}
}
