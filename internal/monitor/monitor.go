// Package monitor implements the DVM's remote monitoring service (paper
// §3.3): a static audit filter that transforms applications to invoke
// auditing at method and constructor boundaries, a handshake protocol
// that establishes client credentials and session identifiers, a central
// administration collector whose logs live outside the reach of
// untrusted code, and an instruction-level profiling service that builds
// dynamic call graphs and first-use orders — the input to the §5
// repartitioning optimizer.
package monitor

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"dvm/internal/telemetry"
)

// Event is one audit record as stored by the collector.
type Event struct {
	Session string
	Class   string
	Method  string
	Kind    string // "enter", "exit", "note"
	Seq     int64
	Time    time.Time
}

// ClientInfo is what a client reports during the handshake: the
// monitoring console tracks "client hardware configurations, users, JVM
// instances, code versions and noteworthy client events."
type ClientInfo struct {
	User        string
	Hardware    string
	Arch        string
	JVMVersion  string
	CodeVersion string
}

// Collector is the central administration host. A security breach on a
// client can stop new events but cannot tamper with the stored log: the
// log is append-only and lives here, not on the client.
type Collector struct {
	mu       sync.Mutex
	sessions map[string]*sessionRecord
	events   []Event
	seq      int64
	nextID   int

	reg       *telemetry.Registry
	cEvents   *telemetry.Counter
	cBatches  *telemetry.Counter
	cRejected *telemetry.Counter

	onFirstUse func(session, class, method string)
}

type sessionRecord struct {
	id    string
	info  ClientInfo
	stack []string // call stack reconstructed from enter/exit
	graph map[string]map[string]int
	first []string
	seen  map[string]bool
}

// NewCollector creates an empty monitoring console.
func NewCollector() *Collector {
	c := &Collector{sessions: make(map[string]*sessionRecord)}
	c.reg = telemetry.NewRegistry("monitor")
	c.cEvents = c.reg.Counter("events_total")
	c.cBatches = c.reg.Counter("batches_total")
	c.cRejected = c.reg.Counter("rejected_total")
	c.reg.Gauge("sessions", func() float64 {
		return float64(len(c.Sessions()))
	})
	c.reg.Gauge("events_stored", func() float64 {
		return float64(c.EventCount())
	})
	return c
}

// Telemetry exposes the console's metric registry.
func (c *Collector) Telemetry() *telemetry.Registry { return c.reg }

// Health reports the shared versioned health schema.
func (c *Collector) Health() telemetry.Health {
	return c.reg.Health(telemetry.StatusOK)
}

// Handshake registers a client and assigns its session identifier.
func (c *Collector) Handshake(info ClientInfo) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextID++
	id := fmt.Sprintf("sess-%04d", c.nextID)
	c.sessions[id] = &sessionRecord{
		id:    id,
		info:  info,
		graph: make(map[string]map[string]int),
		seen:  make(map[string]bool),
	}
	return id
}

// Record ingests one audit event for a session, stamped with the
// collector's clock. Unknown sessions are rejected (the handshake
// established credentials).
func (c *Collector) Record(session, class, method, kind string) error {
	return c.RecordAt(session, class, method, kind, time.Time{})
}

// RecordAt is Record with an explicit event timestamp. A zero at means
// "now". Remote batches carry the client-side stamp on the wire, so an
// event delivered late — after a failed flush was re-queued and retried
// — keeps the time it actually happened rather than the time the retry
// landed.
func (c *Collector) RecordAt(session, class, method, kind string, at time.Time) error {
	first, err := c.recordAt(session, class, method, kind, at)
	if first {
		c.mu.Lock()
		fn := c.onFirstUse
		c.mu.Unlock()
		if fn != nil {
			// Invoked outside c.mu so the hook may call back into the
			// collector (or feed a predictor that does its own locking).
			fn(session, class, method)
		}
	}
	return err
}

func (c *Collector) recordAt(session, class, method, kind string, at time.Time) (firstUse bool, err error) {
	if at.IsZero() {
		at = time.Now()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.sessions[session]
	if !ok {
		c.cRejected.Inc()
		return false, fmt.Errorf("monitor: unknown session %q", session)
	}
	c.seq++
	c.cEvents.Inc()
	c.events = append(c.events, Event{
		Session: session, Class: class, Method: method, Kind: kind,
		Seq: c.seq, Time: at,
	})
	node := class + "." + method
	switch kind {
	case "enter":
		if len(s.stack) > 0 {
			caller := s.stack[len(s.stack)-1]
			edges := s.graph[caller]
			if edges == nil {
				edges = make(map[string]int)
				s.graph[caller] = edges
			}
			edges[node]++
		}
		if !s.seen[node] {
			s.seen[node] = true
			s.first = append(s.first, node)
			firstUse = true
		}
		s.stack = append(s.stack, node)
	case "exit":
		// Pop to the matching frame; tolerate exceptional unwinds that
		// skipped exit events.
		for i := len(s.stack) - 1; i >= 0; i-- {
			if s.stack[i] == node {
				s.stack = s.stack[:i]
				break
			}
		}
	case "note":
		// First-use probe from the profiling service; method carries its
		// descriptor.
		if !s.seen[node] {
			s.seen[node] = true
			s.first = append(s.first, node)
			firstUse = true
		}
	}
	return firstUse, nil
}

// OnFirstUse registers a hook invoked (outside the collector lock) each
// time a session observes a method for the first time — the live feed
// for the prefetch successor graph. Pass nil to clear.
func (c *Collector) OnFirstUse(fn func(session, class, method string)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.onFirstUse = fn
}

// Events returns a copy of the stored audit trail (optionally filtered
// by session; "" means all).
func (c *Collector) Events(session string) []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []Event
	for _, e := range c.events {
		if session == "" || e.Session == session {
			out = append(out, e)
		}
	}
	return out
}

// EventCount returns the total events stored.
func (c *Collector) EventCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.events)
}

// Sessions returns the known session ids, sorted.
func (c *Collector) Sessions() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.sessions))
	for id := range c.sessions {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Info returns the handshake record for a session.
func (c *Collector) Info(session string) (ClientInfo, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.sessions[session]
	if !ok {
		return ClientInfo{}, false
	}
	return s.info, true
}

// CallEdge is one edge of the dynamic call graph with its traversal
// count.
type CallEdge struct {
	Caller string
	Callee string
	Count  int
}

// CallGraph returns the dynamic call graph reconstructed from a
// session's enter/exit events, sorted for determinism.
func (c *Collector) CallGraph(session string) []CallEdge {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.sessions[session]
	if !ok {
		return nil
	}
	var out []CallEdge
	for caller, edges := range s.graph {
		for callee, n := range edges {
			out = append(out, CallEdge{Caller: caller, Callee: callee, Count: n})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Caller != out[j].Caller {
			return out[i].Caller < out[j].Caller
		}
		return out[i].Callee < out[j].Callee
	})
	return out
}

// FirstUseOrders returns every session's first-use order keyed by
// session id — the bulk profile feed a predictor replays at startup.
func (c *Collector) FirstUseOrders() map[string][]string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string][]string, len(c.sessions))
	for id, s := range c.sessions {
		if len(s.first) > 0 {
			out[id] = append([]string(nil), s.first...)
		}
	}
	return out
}

// FirstUseOrder returns the methods of a session in first-invocation
// order — the profile the repartitioning optimizer consumes.
func (c *Collector) FirstUseOrder(session string) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.sessions[session]
	if !ok {
		return nil
	}
	return append([]string(nil), s.first...)
}
