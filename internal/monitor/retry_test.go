package monitor

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// flakyConsole fronts a collector but fails the first n event POSTs.
func flakyConsole(coll *Collector, failFirst int64) http.Handler {
	var posts atomic.Int64
	inner := coll.Handler()
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/events" && r.Method == http.MethodPost {
			if posts.Add(1) <= failFirst {
				http.Error(w, "console down", http.StatusServiceUnavailable)
				return
			}
		}
		inner.ServeHTTP(w, r)
	})
}

func newSession(t *testing.T, coll *Collector, url string, batchSize int) *RemoteSession {
	t.Helper()
	return &RemoteSession{
		base:      url,
		client:    &http.Client{},
		batchSize: batchSize,
		Session:   coll.Handshake(ClientInfo{User: "retry"}),
	}
}

func TestFlushRetriesFailedBatch(t *testing.T) {
	coll := NewCollector()
	ts := httptest.NewServer(flakyConsole(coll, 1))
	defer ts.Close()

	rs := newSession(t, coll, ts.URL, 100)
	for i := 0; i < 5; i++ {
		rs.add(wireEvent{Class: "a", Method: fmt.Sprintf("m%d", i), Kind: "note"})
	}
	rs.Flush() // console down: batch must be kept, not dropped
	if coll.EventCount() != 0 {
		t.Fatalf("events stored despite failed delivery: %d", coll.EventCount())
	}
	if rs.Err() == nil {
		t.Error("failure not latched")
	}
	rs.mu.Lock()
	retained := len(rs.buf)
	rs.mu.Unlock()
	if retained != 5 {
		t.Fatalf("retained = %d, want 5 (failed batch must be kept for retry)", retained)
	}

	// Next flush delivers the retained batch plus anything new, in order.
	rs.add(wireEvent{Class: "a", Method: "m5", Kind: "note"})
	rs.Flush()
	if coll.EventCount() != 6 {
		t.Fatalf("events after retry = %d, want 6", coll.EventCount())
	}
	evs := coll.Events(rs.Session)
	for i, e := range evs {
		if want := fmt.Sprintf("m%d", i); e.Method != want {
			t.Errorf("event %d = %s, want %s (order not preserved)", i, e.Method, want)
		}
	}
}

// TestFlushRetryPreservesEventTimes: a batch that fails delivery and is
// retried later must land with the timestamps taken when the events
// happened, not when the retry finally succeeded. (The stamp rides the
// wire in wireEvent.Time; the collector only falls back to its own
// clock for a zero stamp.)
func TestFlushRetryPreservesEventTimes(t *testing.T) {
	coll := NewCollector()
	ts := httptest.NewServer(flakyConsole(coll, 1))
	defer ts.Close()

	rs := newSession(t, coll, ts.URL, 100)
	for i := 0; i < 3; i++ {
		rs.add(wireEvent{Class: "a", Method: fmt.Sprintf("m%d", i), Kind: "note"})
	}
	buffered := time.Now()
	rs.Flush() // fails; batch retained with its stamps
	time.Sleep(30 * time.Millisecond)
	rs.Flush() // delivered on retry
	evs := coll.Events(rs.Session)
	if len(evs) != 3 {
		t.Fatalf("events after retry = %d, want 3", len(evs))
	}
	for i, e := range evs {
		if e.Time.IsZero() {
			t.Fatalf("event %d has no timestamp", i)
		}
		if e.Time.After(buffered) {
			t.Errorf("event %d stamped %v, after buffering finished at %v: retry re-stamped it", i, e.Time, buffered)
		}
	}
}

func TestFlushRetentionBounded(t *testing.T) {
	coll := NewCollector()
	ts := httptest.NewServer(flakyConsole(coll, 1<<30)) // console never recovers
	defer ts.Close()

	rs := newSession(t, coll, ts.URL, 64)
	total := maxRetainedEvents + 500
	for i := 0; i < total; i++ {
		rs.add(wireEvent{Class: "a", Method: fmt.Sprintf("m%d", i), Kind: "note"})
	}
	rs.Flush()
	rs.mu.Lock()
	retained := len(rs.buf)
	newest := ""
	if retained > 0 {
		newest = rs.buf[retained-1].Method
	}
	rs.mu.Unlock()
	if retained > maxRetainedEvents {
		t.Fatalf("retained = %d events, cap is %d (dead console must not grow memory unboundedly)",
			retained, maxRetainedEvents)
	}
	if want := fmt.Sprintf("m%d", total-1); newest != want {
		t.Errorf("newest retained = %s, want %s (oldest must be dropped first)", newest, want)
	}
}

// TestRemoteSessionConcurrentAddFlush exercises the mutex guard: audit
// hooks append from many goroutines while Flush/Close run concurrently.
// Run under -race.
func TestRemoteSessionConcurrentAddFlush(t *testing.T) {
	coll := NewCollector()
	ts := httptest.NewServer(coll.Handler())
	defer ts.Close()

	rs := newSession(t, coll, ts.URL, 8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				rs.add(wireEvent{Class: "a", Method: fmt.Sprintf("g%d-m%d", g, i), Kind: "note"})
				if i%10 == 0 {
					rs.Flush()
				}
				_ = rs.Err()
			}
		}(g)
	}
	wg.Wait()
	rs.Close()
	if rs.Err() != nil {
		t.Fatalf("delivery error: %v", rs.Err())
	}
	if got := coll.EventCount(); got != 400 {
		t.Errorf("events = %d, want 400 (nothing lost or duplicated)", got)
	}
}
