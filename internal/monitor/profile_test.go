package monitor_test

import (
	"strings"
	"testing"

	"dvm/internal/bytecode"
	"dvm/internal/classfile"
	"dvm/internal/classgen"
	"dvm/internal/jvm"
	"dvm/internal/monitor"
)

func TestInstructionLevelProfile(t *testing.T) {
	b := classgen.NewClass("prof/P", "java/lang/Object")
	m := b.Method(classfile.AccPublic|classfile.AccStatic, "spin", "(I)I")
	m.IConst(0).IStore(1)
	head := m.Here()
	exit := m.NewLabel()
	m.ILoad(1).ILoad(0).Branch(bytecode.IfIcmpge, exit)
	// A synchronized region per iteration: the synchronization trace the
	// paper collected for [Aldrich et al. 99].
	m.NewDup("java/lang/Object")
	m.InvokeSpecial("java/lang/Object", "<init>", "()V")
	m.AStore(2)
	m.ALoad(2).Inst(bytecode.Monitorenter)
	m.IInc(1, 1)
	m.ALoad(2).Inst(bytecode.Monitorexit)
	m.Goto(head)
	m.Mark(exit)
	m.ILoad(1).IReturn()
	data, err := b.BuildBytes()
	if err != nil {
		t.Fatal(err)
	}
	vm, err := jvm.New(jvm.MapLoader{"prof/P": data}, nil)
	if err != nil {
		t.Fatal(err)
	}
	vm.TraceOpcodes = true
	const n = 50
	v, thrown, err := vm.MainThread().InvokeByName("prof/P", "spin", "(I)I", []jvm.Value{jvm.IntV(n)})
	if err != nil || thrown != nil {
		t.Fatalf("%v %v", err, jvm.DescribeThrowable(thrown))
	}
	if v.Int() != n {
		t.Fatalf("spin = %d", v.Int())
	}

	samples := monitor.OpcodeProfile(vm)
	if len(samples) == 0 {
		t.Fatal("empty profile")
	}
	counts := map[string]int64{}
	for _, s := range samples {
		counts[s.Name] = s.Count
	}
	if counts["monitorenter"] != n || counts["monitorexit"] != n {
		t.Errorf("monitor counts = %d/%d, want %d", counts["monitorenter"], counts["monitorexit"], n)
	}
	if counts["iinc"] != n {
		t.Errorf("iinc = %d", counts["iinc"])
	}
	// Sorted descending.
	for i := 1; i < len(samples); i++ {
		if samples[i].Count > samples[i-1].Count {
			t.Fatal("profile not sorted")
		}
	}

	st := monitor.Synchronization(vm)
	if st.MonitorEnters != n || st.MonitorExits != n {
		t.Errorf("sync trace = %+v", st)
	}
	if st.SyncRatio <= 0 {
		t.Error("sync ratio not computed")
	}

	text := monitor.FormatProfile(samples, 5)
	if !strings.Contains(text, "monitorenter") && !strings.Contains(text, "iload") {
		t.Errorf("formatted profile:\n%s", text)
	}
}

func TestProfileDisabledByDefault(t *testing.T) {
	b := classgen.NewClass("prof/Off", "java/lang/Object")
	m := b.Method(classfile.AccPublic|classfile.AccStatic, "f", "()V")
	m.Return()
	data, _ := b.BuildBytes()
	vm, err := jvm.New(jvm.MapLoader{"prof/Off": data}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, thrown, err := vm.MainThread().InvokeByName("prof/Off", "f", "()V", nil); err != nil || thrown != nil {
		t.Fatal(err)
	}
	if len(monitor.OpcodeProfile(vm)) != 0 {
		t.Error("opcode counts recorded without tracing enabled")
	}
}
