package monitor_test

import (
	"bytes"
	"testing"

	"dvm/internal/bytecode"
	"dvm/internal/classfile"
	"dvm/internal/classgen"
	"dvm/internal/jvm"
	"dvm/internal/monitor"
	"dvm/internal/rewrite"
)

// buildApp builds app/M with main -> a -> b call chain and a loop calling b.
func buildApp(t *testing.T) []byte {
	t.Helper()
	b := classgen.NewClass("app/M", "java/lang/Object")
	mb := b.Method(classfile.AccPublic|classfile.AccStatic, "b", "()I")
	mb.IConst(1).IReturn()
	ma := b.Method(classfile.AccPublic|classfile.AccStatic, "a", "()I")
	ma.InvokeStatic("app/M", "b", "()I")
	ma.InvokeStatic("app/M", "b", "()I")
	ma.IAdd().IReturn()
	mn := b.Method(classfile.AccPublic|classfile.AccStatic, "main", "([Ljava/lang/String;)V")
	mn.InvokeStatic("app/M", "a", "()I")
	mn.Pop()
	mn.Return()
	data, err := b.BuildBytes()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func instrument(t *testing.T, data []byte, cfg monitor.Config) ([]byte, *rewrite.Context) {
	t.Helper()
	ctx := rewrite.NewContext()
	out, err := rewrite.NewPipeline(monitor.Filter(cfg)).Process(data, ctx)
	if err != nil {
		t.Fatalf("monitor filter: %v", err)
	}
	return out, ctx
}

func TestAuditEventsFlowToCollector(t *testing.T) {
	data := buildApp(t)
	out, ctx := instrument(t, data, monitor.Config{Methods: true})
	if n, _ := ctx.Notes[monitor.NoteAuditSites].(int); n == 0 {
		t.Fatal("no audit sites inserted")
	}
	vm, err := jvm.New(jvm.MapLoader{"app/M": out}, &bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	coll := monitor.NewCollector()
	session := monitor.Attach(vm, coll, monitor.ClientInfo{User: "alice", Arch: "x86", JVMVersion: "1.2-dvm"})
	thrown, err := vm.RunMain("app/M", nil)
	if err != nil || thrown != nil {
		t.Fatalf("%v %v", err, jvm.DescribeThrowable(thrown))
	}
	// main enter/exit, a enter/exit, 2x b enter/exit = 8 events.
	if got := coll.EventCount(); got != 8 {
		t.Errorf("EventCount = %d, want 8", got)
	}
	info, ok := coll.Info(session)
	if !ok || info.User != "alice" {
		t.Errorf("Info = %+v ok=%v", info, ok)
	}
	if vm.Stats.AuditEvents != 8 {
		t.Errorf("client AuditEvents = %d", vm.Stats.AuditEvents)
	}
}

func TestCallGraphReconstruction(t *testing.T) {
	data := buildApp(t)
	out, _ := instrument(t, data, monitor.Config{Methods: true})
	vm, err := jvm.New(jvm.MapLoader{"app/M": out}, nil)
	if err != nil {
		t.Fatal(err)
	}
	coll := monitor.NewCollector()
	session := monitor.Attach(vm, coll, monitor.ClientInfo{})
	if thrown, err := vm.RunMain("app/M", nil); err != nil || thrown != nil {
		t.Fatalf("%v %v", err, jvm.DescribeThrowable(thrown))
	}
	edges := coll.CallGraph(session)
	want := map[string]int{
		"app/M.main->app/M.a": 1,
		"app/M.a->app/M.b":    2,
	}
	got := map[string]int{}
	for _, e := range edges {
		got[e.Caller+"->"+e.Callee] = e.Count
	}
	for k, n := range want {
		if got[k] != n {
			t.Errorf("edge %s = %d, want %d (all: %v)", k, got[k], n, got)
		}
	}
}

func TestFirstUseProfile(t *testing.T) {
	data := buildApp(t)
	out, _ := instrument(t, data, monitor.Config{FirstUse: true})
	vm, err := jvm.New(jvm.MapLoader{"app/M": out}, nil)
	if err != nil {
		t.Fatal(err)
	}
	coll := monitor.NewCollector()
	session := monitor.Attach(vm, coll, monitor.ClientInfo{})
	if thrown, err := vm.RunMain("app/M", nil); err != nil || thrown != nil {
		t.Fatalf("%v %v", err, jvm.DescribeThrowable(thrown))
	}
	// Run main twice: first-use probes must fire once.
	if _, thrown, err := vm.MainThread().InvokeByName("app/M", "main", "([Ljava/lang/String;)V",
		[]jvm.Value{jvm.NullV()}); err != nil || thrown != nil {
		t.Fatalf("%v %v", err, jvm.DescribeThrowable(thrown))
	}
	order := coll.FirstUseOrder(session)
	if len(order) != 3 {
		t.Fatalf("first-use order = %v, want 3 methods", order)
	}
	if order[0] != "app/M.main ([Ljava/lang/String;)V" || order[2] != "app/M.b ()I" {
		t.Errorf("order = %v", order)
	}
}

func TestSkipInitializers(t *testing.T) {
	b := classgen.NewClass("app/K", "java/lang/Object")
	b.DefaultInit()
	m := b.Method(classfile.AccPublic|classfile.AccStatic, "go", "()V")
	m.Return()
	data, err := b.BuildBytes()
	if err != nil {
		t.Fatal(err)
	}
	out, _ := instrument(t, data, monitor.Config{Methods: true, Skip: monitor.SkipInitializers})
	cf, err := classfile.Parse(out)
	if err != nil {
		t.Fatal(err)
	}
	// <init> must be untouched: no Audit call inside.
	init := cf.FindMethod("<init>", "()V")
	code, _ := cf.CodeOf(init)
	insts, err := bytecode.Decode(code.Bytecode)
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range insts {
		if in.Op == bytecode.Invokestatic {
			ref, _ := cf.Pool.Ref(in.Index)
			if ref.Class == "dvm/Audit" {
				t.Fatal("constructor was instrumented despite Skip")
			}
		}
	}
}

func TestCollectorRejectsUnknownSession(t *testing.T) {
	coll := monitor.NewCollector()
	if err := coll.Record("sess-9999", "a", "b", "enter"); err == nil {
		t.Fatal("unknown session accepted")
	}
}

func TestAuditExitCoversAllReturnPaths(t *testing.T) {
	b := classgen.NewClass("app/R", "java/lang/Object")
	m := b.Method(classfile.AccPublic|classfile.AccStatic, "f", "(I)I")
	l := m.NewLabel()
	m.ILoad(0).Branch(bytecode.Ifne, l)
	m.IConst(1).IReturn()
	m.Mark(l)
	m.IConst(2).IReturn()
	data, err := b.BuildBytes()
	if err != nil {
		t.Fatal(err)
	}
	out, _ := instrument(t, data, monitor.Config{Methods: true})
	vm, err := jvm.New(jvm.MapLoader{"app/R": out}, nil)
	if err != nil {
		t.Fatal(err)
	}
	coll := monitor.NewCollector()
	monitor.Attach(vm, coll, monitor.ClientInfo{})
	for _, arg := range []int32{0, 1} {
		if _, thrown, err := vm.MainThread().InvokeByName("app/R", "f", "(I)I",
			[]jvm.Value{jvm.IntV(arg)}); err != nil || thrown != nil {
			t.Fatalf("%v %v", err, jvm.DescribeThrowable(thrown))
		}
	}
	enter, exit := 0, 0
	for _, e := range coll.Events("") {
		switch e.Kind {
		case "enter":
			enter++
		case "exit":
			exit++
		}
	}
	if enter != 2 || exit != 2 {
		t.Errorf("enter/exit = %d/%d, want 2/2", enter, exit)
	}
}

func TestSessionsAndMultipleClients(t *testing.T) {
	coll := monitor.NewCollector()
	s1 := coll.Handshake(monitor.ClientInfo{User: "a"})
	s2 := coll.Handshake(monitor.ClientInfo{User: "b"})
	if s1 == s2 {
		t.Fatal("duplicate session ids")
	}
	if err := coll.Record(s1, "x", "y", "enter"); err != nil {
		t.Fatal(err)
	}
	if err := coll.Record(s2, "x", "y", "enter"); err != nil {
		t.Fatal(err)
	}
	if len(coll.Events(s1)) != 1 || len(coll.Events("")) != 2 {
		t.Error("per-session filtering broken")
	}
	if got := coll.Sessions(); len(got) != 2 {
		t.Errorf("Sessions = %v", got)
	}
}

func TestOnFirstUseHookAndBulkOrders(t *testing.T) {
	coll := monitor.NewCollector()
	type firstUse struct{ session, class, method string }
	var fired []firstUse
	coll.OnFirstUse(func(session, class, method string) {
		// The hook runs outside the collector lock: calling back in must
		// not deadlock.
		_ = coll.EventCount()
		fired = append(fired, firstUse{session, class, method})
	})
	s1 := coll.Handshake(monitor.ClientInfo{})
	s2 := coll.Handshake(monitor.ClientInfo{})
	mustRecord := func(sess, class, method, kind string) {
		t.Helper()
		if err := coll.Record(sess, class, method, kind); err != nil {
			t.Fatal(err)
		}
	}
	mustRecord(s1, "app/A", "init", "enter")
	mustRecord(s1, "app/A", "init", "enter") // repeat: no hook
	mustRecord(s1, "app/B", "run", "note")
	mustRecord(s2, "app/C", "x", "enter")
	mustRecord(s1, "app/A", "init", "exit") // exit: never a first use
	want := []firstUse{
		{s1, "app/A", "init"},
		{s1, "app/B", "run"},
		{s2, "app/C", "x"},
	}
	if len(fired) != len(want) {
		t.Fatalf("hook fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("hook fired %v, want %v", fired, want)
		}
	}
	orders := coll.FirstUseOrders()
	if len(orders) != 2 {
		t.Fatalf("orders = %v, want 2 sessions", orders)
	}
	if got := orders[s1]; len(got) != 2 || got[0] != "app/A.init" || got[1] != "app/B.run" {
		t.Errorf("s1 order = %v", got)
	}
	if got := orders[s2]; len(got) != 1 || got[0] != "app/C.x" {
		t.Errorf("s2 order = %v", got)
	}
}
