package monitor

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"dvm/internal/resilience"
)

// Chaos suite: monitoring is auxiliary and must fail OPEN — a dead or
// hung console costs bounded memory and bounded time, never blocks
// execution, and drops (counted) rather than stalls. Safe under -race.

func chaosSession(t *testing.T, url string, batch int, opts SessionOptions) *RemoteSession {
	t.Helper()
	if opts.Timeout <= 0 {
		opts.Timeout = 5 * time.Second
	}
	return &RemoteSession{
		base:    url,
		client:  &http.Client{Timeout: opts.Timeout},
		timeout: opts.Timeout,
		breaker: resilience.NewBreaker(resilience.BreakerConfig{
			Threshold: opts.BreakerThreshold,
			Cooldown:  opts.BreakerCooldown,
		}),
		batchSize: batch,
		Session:   "sess-chaos",
	}
}

func TestMonitorBreakerStopsHittingDeadConsole(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "console down", http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	rs := chaosSession(t, ts.URL, 1, SessionOptions{BreakerThreshold: 2, BreakerCooldown: time.Minute})
	for i := 0; i < 50; i++ {
		rs.add(wireEvent{Class: "a", Method: fmt.Sprintf("m%d", i), Kind: "note"}) // batch=1: every add flushes
	}
	if got := hits.Load(); got > 3 {
		t.Fatalf("dead console hit %d times; breaker should have stopped after 2", got)
	}
	if rs.Err() == nil {
		t.Fatal("delivery failure not latched")
	}
	if got := rs.Breaker().Counts(); got.State != "open" {
		t.Fatalf("breaker = %+v, want open", got)
	}
	// Events are retained for a later retry, not lost below the cap.
	rs.mu.Lock()
	retained := len(rs.buf)
	rs.mu.Unlock()
	if retained != 50 {
		t.Fatalf("retained = %d, want all 50 while under the cap", retained)
	}
}

func TestMonitorDropsOldestPastCapAndCounts(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "console down", http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	rs := chaosSession(t, ts.URL, 64, SessionOptions{BreakerThreshold: 1, BreakerCooldown: time.Minute})
	total := maxRetainedEvents + 500
	for i := 0; i < total; i++ {
		rs.add(wireEvent{Class: "a", Method: fmt.Sprintf("m%d", i), Kind: "note"})
	}
	rs.Flush()
	rs.mu.Lock()
	retained := len(rs.buf)
	oldest := rs.buf[0].Method
	rs.mu.Unlock()
	if retained > maxRetainedEvents {
		t.Fatalf("retained %d events, cap is %d", retained, maxRetainedEvents)
	}
	if rs.Dropped() == 0 {
		t.Fatal("events were discarded but Dropped() = 0")
	}
	if rs.Dropped()+int64(retained) != int64(total) {
		t.Fatalf("dropped(%d) + retained(%d) != total(%d)", rs.Dropped(), retained, total)
	}
	if oldest == "m0" {
		t.Fatal("cap should drop oldest first, but m0 survived")
	}
}

func TestMonitorHungConsoleDoesNotBlockExecution(t *testing.T) {
	release := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body) // consume so the server notices a client disconnect
		select {                    // hang until the client gives up
		case <-r.Context().Done():
		case <-release:
		}
	}))
	defer ts.Close()
	defer close(release) // unblock any handler still waiting, then let Close reap it

	rs := chaosSession(t, ts.URL, 1, SessionOptions{
		Timeout:          50 * time.Millisecond,
		BreakerThreshold: 1,
		BreakerCooldown:  time.Minute,
	})
	start := time.Now()
	for i := 0; i < 20; i++ {
		rs.add(wireEvent{Class: "a", Method: "m", Kind: "note"})
	}
	elapsed := time.Since(start)
	// One timed-out probe trips the breaker; the other 19 adds must not
	// wait on the network at all.
	if elapsed > 2*time.Second {
		t.Fatalf("20 adds against a hung console took %v; monitoring blocked execution", elapsed)
	}
	if rs.Err() == nil {
		t.Fatal("hung delivery not latched as error")
	}
}

func TestMonitorRecoversAfterConsoleReturns(t *testing.T) {
	coll := NewCollector()
	var dead atomic.Bool
	inner := coll.Handler()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if dead.Load() {
			http.Error(w, "outage", http.StatusServiceUnavailable)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer ts.Close()

	rs := chaosSession(t, ts.URL, 100, SessionOptions{BreakerThreshold: 1, BreakerCooldown: 20 * time.Millisecond})
	rs.Session = coll.Handshake(ClientInfo{User: "chaos"})

	dead.Store(true)
	for i := 0; i < 5; i++ {
		rs.add(wireEvent{Class: "a", Method: fmt.Sprintf("m%d", i), Kind: "note"})
	}
	rs.Flush()
	if coll.EventCount() != 0 {
		t.Fatal("events delivered during outage")
	}

	dead.Store(false)
	time.Sleep(25 * time.Millisecond) // past breaker cooldown
	rs.Flush()
	if got := coll.EventCount(); got != 5 {
		t.Fatalf("delivered %d events after recovery, want all 5 retained ones", got)
	}
	if got := rs.Breaker().Counts().State; got != "closed" {
		t.Fatalf("breaker = %s after successful delivery, want closed", got)
	}
}
