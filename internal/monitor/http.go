package monitor

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dvm/internal/jvm"
	"dvm/internal/resilience"
	"dvm/internal/telemetry"
)

// HTTP transport for the remote monitoring service: clients handshake
// and stream audit events to the central administration console over the
// network, exactly as §3.3 describes ("as each application comes up, it
// contacts the remote monitoring console and a handshake protocol
// establishes the credentials of the user and assigns an identifier to
// the session"). The console host keeps the logs out of reach of the
// monitored clients.
//
// Wire format (JSON over HTTP):
//
//	POST /handshake   {user, hardware, arch, jvmVersion, codeVersion} -> {session}
//	POST /events      {session, events: [{class, method, kind}]}
//	GET  /sessions                       -> ["sess-0001", ...]
//	GET  /events?session=sess-0001       -> [...]
//	GET  /callgraph?session=sess-0001    -> [{caller, callee, count}]

type wireEvent struct {
	Class  string `json:"class"`
	Method string `json:"method"`
	Kind   string `json:"kind"`
	// Time is the client-side stamp taken when the event was buffered.
	// It rides along on retries so a re-delivered batch keeps original
	// event times (a zero/absent Time falls back to the console clock).
	Time time.Time `json:"time,omitempty"`
}

type wireBatch struct {
	Session string      `json:"session"`
	Events  []wireEvent `json:"events"`
}

type wireHandshake struct {
	User        string `json:"user"`
	Hardware    string `json:"hardware"`
	Arch        string `json:"arch"`
	JVMVersion  string `json:"jvmVersion"`
	CodeVersion string `json:"codeVersion"`
}

// Handler exposes the collector as the administration console's HTTP
// interface.
func (c *Collector) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/handshake", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		var hs wireHandshake
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&hs); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		session := c.Handshake(ClientInfo{
			User: hs.User, Hardware: hs.Hardware, Arch: hs.Arch,
			JVMVersion: hs.JVMVersion, CodeVersion: hs.CodeVersion,
		})
		writeJSON(w, map[string]string{"session": session})
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodPost:
			var batch wireBatch
			if err := json.NewDecoder(io.LimitReader(r.Body, 4<<20)).Decode(&batch); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			c.cBatches.Inc()
			for _, e := range batch.Events {
				if err := c.RecordAt(batch.Session, e.Class, e.Method, e.Kind, e.Time); err != nil {
					http.Error(w, err.Error(), http.StatusForbidden)
					return
				}
			}
			w.WriteHeader(http.StatusNoContent)
		case http.MethodGet:
			writeJSON(w, c.Events(r.URL.Query().Get("session")))
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})
	mux.HandleFunc("/sessions", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, c.Sessions())
	})
	mux.HandleFunc("/callgraph", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, c.CallGraph(r.URL.Query().Get("session")))
	})
	mux.HandleFunc("/firstuse", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, c.FirstUseOrder(r.URL.Query().Get("session")))
	})
	mux.Handle("/healthz", telemetry.HealthHandler(c.Health))
	mux.Handle("/metrics", c.reg.Handler())
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// maxRetainedEvents bounds the client-side buffer when the console is
// unreachable: failed batches are kept for retry, but a dead console
// must not grow client memory without bound, so the oldest events are
// dropped past this cap.
const maxRetainedEvents = 4096

// SessionOptions parameterizes a RemoteSession's hop to the console.
// Monitoring is an auxiliary service and fails OPEN: when the console
// is unreachable, events are retained up to a cap, the oldest are
// dropped (counted in Dropped), and execution continues — a dead
// console must never stall or stop the application.
type SessionOptions struct {
	// Timeout bounds each event POST (default 5s).
	Timeout time.Duration
	// BreakerThreshold trips the console breaker after that many
	// consecutive delivery failures, after which flushes skip the
	// network entirely until the cooldown passes (0 = default 5,
	// <0 = disabled).
	BreakerThreshold int
	// BreakerCooldown is the open-state cooldown (default 5s).
	BreakerCooldown time.Duration
}

// RemoteSession is the client side of the HTTP monitoring protocol. It
// batches events to amortize round trips (Flush sends; Close flushes).
// The VM invokes the audit hooks from whatever thread executes the
// instrumented code, so the buffer and error latch are mutex-guarded.
type RemoteSession struct {
	base    string
	client  *http.Client
	breaker *resilience.Breaker
	timeout time.Duration
	Session string

	dropped atomic.Int64
	hFlush  *telemetry.Histogram

	mu        sync.Mutex
	buf       []wireEvent
	batchSize int
	// err records the first delivery failure; auditing must never
	// disturb the application ("a security breach may stop the creation
	// of new audit events"), so errors are latched, not raised.
	err error
}

// Err returns the first delivery failure, if any.
func (rs *RemoteSession) Err() error {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.err
}

// Dropped returns the number of events discarded because the console
// was unreachable and the retention cap was hit (fail-open losses).
func (rs *RemoteSession) Dropped() int64 { return rs.dropped.Load() }

// Breaker exposes the console-hop circuit breaker (diagnostics).
func (rs *RemoteSession) Breaker() *resilience.Breaker { return rs.breaker }

// AttachHTTP handshakes with a console at baseURL and wires the VM's
// audit and first-use hooks to it. Events are batched (batchSize ≤ 0
// means 64). Default resilience settings; see AttachHTTPWith.
func AttachHTTP(vm *jvm.VM, baseURL string, info ClientInfo, batchSize int) (*RemoteSession, error) {
	return AttachHTTPWith(vm, baseURL, info, batchSize, SessionOptions{})
}

// AttachHTTPWith is AttachHTTP with explicit per-hop deadline and
// breaker settings.
func AttachHTTPWith(vm *jvm.VM, baseURL string, info ClientInfo, batchSize int, opts SessionOptions) (*RemoteSession, error) {
	if batchSize <= 0 {
		batchSize = 64
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 5 * time.Second
	}
	rs := &RemoteSession{
		base:    strings.TrimRight(baseURL, "/"),
		client:  &http.Client{Timeout: opts.Timeout},
		timeout: opts.Timeout,
		breaker: resilience.NewBreaker(resilience.BreakerConfig{
			Threshold: opts.BreakerThreshold,
			Cooldown:  opts.BreakerCooldown,
		}),
		batchSize: batchSize,
		hFlush:    telemetry.NewHistogram(nil),
	}
	body, _ := json.Marshal(wireHandshake{
		User: info.User, Hardware: info.Hardware, Arch: info.Arch,
		JVMVersion: info.JVMVersion, CodeVersion: info.CodeVersion,
	})
	resp, err := rs.client.Post(rs.base+"/handshake", "application/json", strings.NewReader(string(body)))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("monitor: handshake: %s", resp.Status)
	}
	var out struct {
		Session string `json:"session"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	rs.Session = out.Session

	vm.OnAudit = func(e jvm.AuditEvent) {
		rs.add(wireEvent{Class: e.Class, Method: e.Method, Kind: e.Kind})
	}
	vm.OnFirstUse = func(class, method, desc string) {
		rs.add(wireEvent{Class: class, Method: method + " " + desc, Kind: "note"})
	}
	return rs, nil
}

// FlushLatency returns the delivery-latency histogram snapshot (one
// observation per network flush attempt), mergeable with other nodes'.
func (rs *RemoteSession) FlushLatency() telemetry.HistSnapshot {
	return rs.hFlush.Snapshot()
}

func (rs *RemoteSession) add(e wireEvent) {
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	rs.mu.Lock()
	rs.buf = append(rs.buf, e)
	full := len(rs.buf) >= rs.batchSize
	rs.mu.Unlock()
	if full {
		rs.Flush()
	}
}

// Flush delivers buffered events to the console under the session's
// default per-hop deadline.
func (rs *RemoteSession) Flush() {
	rs.FlushContext(context.Background())
}

// FlushContext delivers buffered events to the console. The buffer is
// only truncated after a successful delivery: a failed POST puts the
// batch back (bounded by maxRetainedEvents) so it is retried on the
// next flush instead of being silently dropped. Monitoring fails open:
// while the console breaker is open no network attempt is made at all,
// so a dead console costs the application nothing but the (bounded)
// buffer — events past the cap are dropped oldest-first and counted.
func (rs *RemoteSession) FlushContext(ctx context.Context) {
	rs.mu.Lock()
	if len(rs.buf) == 0 {
		rs.mu.Unlock()
		return
	}
	batch := wireBatch{Session: rs.Session, Events: rs.buf}
	rs.buf = nil
	rs.mu.Unlock()

	err := rs.breaker.Allow()
	if err == nil {
		span := telemetry.FromContext(ctx).StartSpan("monitor", "monitor.flush")
		t0 := telemetry.StartTimer()
		err = rs.post(ctx, batch)
		rs.hFlush.Observe(t0.Elapsed())
		span.End()
		if err == nil {
			rs.breaker.Success()
			return
		}
		rs.breaker.Failure()
	}

	rs.mu.Lock()
	if rs.err == nil {
		rs.err = err
	}
	// Re-queue ahead of anything buffered since, preserving event order,
	// then enforce the retention cap (oldest dropped first).
	rs.buf = append(batch.Events, rs.buf...)
	if over := len(rs.buf) - maxRetainedEvents; over > 0 {
		rs.buf = append([]wireEvent(nil), rs.buf[over:]...)
		rs.dropped.Add(int64(over))
	}
	rs.mu.Unlock()
}

// post is one delivery attempt, bounded by the session timeout and the
// caller's ctx.
func (rs *RemoteSession) post(ctx context.Context, batch wireBatch) error {
	if rs.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, rs.timeout)
		defer cancel()
	}
	body, _ := json.Marshal(batch)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, rs.base+"/events", strings.NewReader(string(body)))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	if tr := telemetry.FromContext(ctx); tr != nil {
		req.Header.Set(telemetry.TraceHeader, tr.ID())
	}
	resp, err := rs.client.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode >= 300 {
		return fmt.Errorf("monitor: events: %s", resp.Status)
	}
	return nil
}

// Close flushes any buffered events.
func (rs *RemoteSession) Close() {
	rs.Flush()
}
