package monitor

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"dvm/internal/jvm"
)

// HTTP transport for the remote monitoring service: clients handshake
// and stream audit events to the central administration console over the
// network, exactly as §3.3 describes ("as each application comes up, it
// contacts the remote monitoring console and a handshake protocol
// establishes the credentials of the user and assigns an identifier to
// the session"). The console host keeps the logs out of reach of the
// monitored clients.
//
// Wire format (JSON over HTTP):
//
//	POST /handshake   {user, hardware, arch, jvmVersion, codeVersion} -> {session}
//	POST /events      {session, events: [{class, method, kind}]}
//	GET  /sessions                       -> ["sess-0001", ...]
//	GET  /events?session=sess-0001       -> [...]
//	GET  /callgraph?session=sess-0001    -> [{caller, callee, count}]

type wireEvent struct {
	Class  string `json:"class"`
	Method string `json:"method"`
	Kind   string `json:"kind"`
}

type wireBatch struct {
	Session string      `json:"session"`
	Events  []wireEvent `json:"events"`
}

type wireHandshake struct {
	User        string `json:"user"`
	Hardware    string `json:"hardware"`
	Arch        string `json:"arch"`
	JVMVersion  string `json:"jvmVersion"`
	CodeVersion string `json:"codeVersion"`
}

// Handler exposes the collector as the administration console's HTTP
// interface.
func (c *Collector) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/handshake", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		var hs wireHandshake
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&hs); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		session := c.Handshake(ClientInfo{
			User: hs.User, Hardware: hs.Hardware, Arch: hs.Arch,
			JVMVersion: hs.JVMVersion, CodeVersion: hs.CodeVersion,
		})
		writeJSON(w, map[string]string{"session": session})
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodPost:
			var batch wireBatch
			if err := json.NewDecoder(io.LimitReader(r.Body, 4<<20)).Decode(&batch); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			for _, e := range batch.Events {
				if err := c.Record(batch.Session, e.Class, e.Method, e.Kind); err != nil {
					http.Error(w, err.Error(), http.StatusForbidden)
					return
				}
			}
			w.WriteHeader(http.StatusNoContent)
		case http.MethodGet:
			writeJSON(w, c.Events(r.URL.Query().Get("session")))
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})
	mux.HandleFunc("/sessions", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, c.Sessions())
	})
	mux.HandleFunc("/callgraph", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, c.CallGraph(r.URL.Query().Get("session")))
	})
	mux.HandleFunc("/firstuse", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, c.FirstUseOrder(r.URL.Query().Get("session")))
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// RemoteSession is the client side of the HTTP monitoring protocol. It
// batches events to amortize round trips (Flush sends; Close flushes).
type RemoteSession struct {
	base    string
	client  *http.Client
	Session string

	buf       []wireEvent
	batchSize int
	// Err records the first delivery failure; auditing must never
	// disturb the application ("a security breach may stop the creation
	// of new audit events"), so errors are latched, not raised.
	Err error
}

// AttachHTTP handshakes with a console at baseURL and wires the VM's
// audit and first-use hooks to it. Events are batched (batchSize ≤ 0
// means 64).
func AttachHTTP(vm *jvm.VM, baseURL string, info ClientInfo, batchSize int) (*RemoteSession, error) {
	if batchSize <= 0 {
		batchSize = 64
	}
	rs := &RemoteSession{base: strings.TrimRight(baseURL, "/"), client: &http.Client{}, batchSize: batchSize}
	body, _ := json.Marshal(wireHandshake{
		User: info.User, Hardware: info.Hardware, Arch: info.Arch,
		JVMVersion: info.JVMVersion, CodeVersion: info.CodeVersion,
	})
	resp, err := rs.client.Post(rs.base+"/handshake", "application/json", strings.NewReader(string(body)))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("monitor: handshake: %s", resp.Status)
	}
	var out struct {
		Session string `json:"session"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	rs.Session = out.Session

	vm.OnAudit = func(e jvm.AuditEvent) {
		rs.add(wireEvent{Class: e.Class, Method: e.Method, Kind: e.Kind})
	}
	vm.OnFirstUse = func(class, method, desc string) {
		rs.add(wireEvent{Class: class, Method: method + " " + desc, Kind: "note"})
	}
	return rs, nil
}

func (rs *RemoteSession) add(e wireEvent) {
	rs.buf = append(rs.buf, e)
	if len(rs.buf) >= rs.batchSize {
		rs.Flush()
	}
}

// Flush delivers buffered events to the console.
func (rs *RemoteSession) Flush() {
	if len(rs.buf) == 0 {
		return
	}
	batch := wireBatch{Session: rs.Session, Events: rs.buf}
	rs.buf = rs.buf[:0]
	body, _ := json.Marshal(batch)
	resp, err := rs.client.Post(rs.base+"/events", "application/json", strings.NewReader(string(body)))
	if err != nil {
		if rs.Err == nil {
			rs.Err = err
		}
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode >= 300 && rs.Err == nil {
		rs.Err = fmt.Errorf("monitor: events: %s", resp.Status)
	}
}

// Close flushes any buffered events.
func (rs *RemoteSession) Close() {
	rs.Flush()
}
