// Package optimize implements the DVM's repartitioning optimization
// service for mobile code on low-bandwidth links (paper §5).
//
// Java's units of code transfer (classes, archives) are coarse: "roughly
// 10-30% of all downloaded code is never invoked." This service uses a
// first-use profile collected by the monitoring service to restructure
// applications at *method* granularity: frequently used methods stay in
// the original "carrier" class, while cold methods are factored out into
// a companion class (<Name>$cold) that is loaded only if one of them is
// actually called. The carrier keeps forwarding stubs under the original
// signatures, so neither clients nor origin servers need modification.
package optimize

import (
	"fmt"
	"sort"
	"strings"

	"dvm/internal/bytecode"
	"dvm/internal/classfile"
	"dvm/internal/rewrite"
)

// ColdSuffix names the companion class holding factored-out methods.
const ColdSuffix = "$cold"

// Profile is the set of methods observed in use (from the monitoring
// service's first-use instrumentation). Keys are "class.method". Order
// preserves the first-invocation sequence — the signal the prefetch
// successor graph consumes.
type Profile struct {
	Hot   map[string]bool
	Order []string // deduplicated "class.method" in arrival order
}

// NewProfile returns an empty profile.
func NewProfile() *Profile { return &Profile{Hot: make(map[string]bool)} }

// FromFirstUse builds a profile from monitor first-use order entries of
// the form "class.method desc" or "class.method". Entries are trimmed,
// malformed (empty after trimming) entries are skipped, and duplicates
// keep their first position, so Order is the true arrival order.
func FromFirstUse(order []string) *Profile {
	p := NewProfile()
	for _, e := range order {
		e = strings.TrimSpace(e)
		if i := strings.IndexByte(e, ' '); i >= 0 {
			e = e[:i]
		}
		if e == "" || p.Hot[e] {
			continue
		}
		p.Hot[e] = true
		p.Order = append(p.Order, e)
	}
	return p
}

// ClassOrder projects a profile's method-level first-use order onto
// classes: the sequence of class transitions with consecutive duplicates
// collapsed. This is the edge stream the prefetch predictor replays.
func (p *Profile) ClassOrder() []string {
	var out []string
	for _, e := range p.Order {
		class := e
		if i := strings.LastIndexByte(e, '.'); i > 0 {
			class = e[:i]
		}
		if class == "" {
			continue
		}
		if n := len(out); n > 0 && out[n-1] == class {
			continue
		}
		out = append(out, class)
	}
	return out
}

// HotMethod reports whether class.method was used in the profile.
func (p *Profile) HotMethod(class, method string) bool {
	return p.Hot[class+"."+method]
}

// Report summarizes a repartitioning run.
type Report struct {
	Classes      int
	Split        int // classes that produced a cold companion
	HotMethods   int
	ColdMethods  int
	BytesBefore  int
	CarrierBytes int // bytes of the rewritten originals
	ColdBytes    int // bytes of the companions
}

// Repartition splits every class in the application according to the
// profile. The returned map contains the rewritten carriers under their
// original names plus the generated <Name>$cold companions. Classes with
// no cold methods pass through unchanged.
func Repartition(classes map[string][]byte, prof *Profile) (map[string][]byte, *Report, error) {
	out := make(map[string][]byte, len(classes))
	rep := &Report{}
	names := make([]string, 0, len(classes))
	for n := range classes {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		data := classes[name]
		rep.Classes++
		rep.BytesBefore += len(data)
		carrier, cold, hot, coldN, err := splitClass(name, data, prof)
		if err != nil {
			return nil, nil, fmt.Errorf("optimize: %s: %w", name, err)
		}
		rep.HotMethods += hot
		rep.ColdMethods += coldN
		out[name] = carrier
		rep.CarrierBytes += len(carrier)
		if cold != nil {
			rep.Split++
			out[name+ColdSuffix] = cold
			rep.ColdBytes += len(cold)
		}
	}
	return out, rep, nil
}

// mustKeep marks methods that never move: initializers, entry points,
// and anything the profile observed.
func mustKeep(name string, prof *Profile, class string) bool {
	if strings.HasPrefix(name, "<") || name == "main" {
		return true
	}
	return prof != nil && prof.HotMethod(class, name)
}

func splitClass(name string, data []byte, prof *Profile) (carrier, cold []byte, hot, coldN int, err error) {
	cf, err := classfile.Parse(data)
	if err != nil {
		return nil, nil, 0, 0, err
	}
	var hotMethods, coldMethods []*classfile.Member
	for _, m := range cf.Methods {
		mn := cf.MemberName(m)
		hasCode := cf.FindAttr(m.Attributes, classfile.AttrCode) != nil
		if !hasCode || mustKeep(mn, prof, name) {
			hotMethods = append(hotMethods, m)
		} else {
			coldMethods = append(coldMethods, m)
		}
	}
	hot = len(hotMethods)
	coldN = len(coldMethods)
	if coldN == 0 {
		return data, nil, hot, 0, nil
	}

	coldName := name + ColdSuffix
	coldCF := &classfile.ClassFile{
		MinorVersion: cf.MinorVersion,
		MajorVersion: cf.MajorVersion,
		Pool:         classfile.NewConstPool(),
		AccessFlags:  classfile.AccPublic | classfile.AccSuper,
	}
	coldCF.ThisClass = coldCF.Pool.AddClass(coldName)
	coldCF.SuperClass = coldCF.Pool.AddClass("java/lang/Object")

	// Move each cold method to the companion, remapping constants; leave
	// a forwarding stub in the carrier.
	kept := hotMethods
	for _, m := range coldMethods {
		if err := moveMethod(cf, coldCF, name, m); err != nil {
			return nil, nil, 0, 0, err
		}
		stub, err := makeStub(cf, name, coldName, m)
		if err != nil {
			return nil, nil, 0, 0, err
		}
		kept = append(kept, stub)
	}
	cf.Methods = kept

	// Drop the moved methods' now-unreferenced constants so the carrier's
	// transfer size reflects only the code it still holds.
	if err := rewrite.CompactPool(cf); err != nil {
		return nil, nil, 0, 0, err
	}
	carrier, err = cf.Encode()
	if err != nil {
		return nil, nil, 0, 0, err
	}
	cold, err = coldCF.Encode()
	if err != nil {
		return nil, nil, 0, 0, err
	}
	return carrier, cold, hot, coldN, nil
}

// moveMethod transplants m from src into dst (class coldName's file),
// converting instance methods to statics with an explicit receiver
// parameter. Local variable numbering is unchanged by this conversion,
// so the body moves verbatim apart from constant pool remapping.
func moveMethod(src, dst *classfile.ClassFile, origName string, m *classfile.Member) error {
	name := src.MemberName(m)
	desc := src.MemberDescriptor(m)
	flags := m.AccessFlags
	newDesc := desc
	if flags&classfile.AccStatic == 0 {
		newDesc = "(L" + origName + ";" + desc[1:]
	}
	newFlags := classfile.AccPublic | classfile.AccStatic |
		(flags & classfile.AccSynchronized)

	code, err := src.CodeOf(m)
	if err != nil {
		return err
	}
	insts, err := bytecode.Decode(code.Bytecode)
	if err != nil {
		return err
	}
	for i := range insts {
		if err := remapOperand(&insts[i], src.Pool, dst.Pool); err != nil {
			return err
		}
	}
	newBytecode, pcs, err := bytecode.Encode(insts)
	if err != nil {
		return err
	}
	_ = pcs
	newCode := &classfile.Code{
		MaxStack:  code.MaxStack,
		MaxLocals: code.MaxLocals,
		Bytecode:  newBytecode,
	}
	for _, h := range code.Handlers {
		nh := h
		if h.CatchType != 0 {
			cn, err := src.Pool.ClassName(h.CatchType)
			if err != nil {
				return err
			}
			nh.CatchType = dst.Pool.AddClass(cn)
		}
		newCode.Handlers = append(newCode.Handlers, nh)
	}
	nm := &classfile.Member{
		AccessFlags:     newFlags,
		NameIndex:       dst.Pool.AddUtf8(name),
		DescriptorIndex: dst.Pool.AddUtf8(newDesc),
	}
	if err := dst.SetCode(nm, newCode); err != nil {
		return err
	}
	dst.Methods = append(dst.Methods, nm)
	return nil
}

// remapOperand re-interns an instruction's constant pool operand from
// src into dst.
func remapOperand(in *bytecode.Inst, src, dst *classfile.ConstPool) error {
	switch in.Op.OperandKind() {
	case bytecode.KindCPU1, bytecode.KindCPU2, bytecode.KindIfaceRef, bytecode.KindMultiNew:
	default:
		return nil
	}
	idx, err := CopyConstant(src, dst, in.Index)
	if err != nil {
		return err
	}
	in.Index = idx
	return nil
}

// CopyConstant re-interns the constant at idx of src into dst, returning
// the new index. It delegates to the rewriting engine's implementation.
func CopyConstant(src, dst *classfile.ConstPool, idx uint16) (uint16, error) {
	return rewrite.CopyConstant(src, dst, idx)
}

// makeStub builds the carrier-side forwarding method: original
// signature, body = load arguments, invokestatic companion, return.
func makeStub(cf *classfile.ClassFile, origName, coldName string, m *classfile.Member) (*classfile.Member, error) {
	name := cf.MemberName(m)
	desc := cf.MemberDescriptor(m)
	flags := m.AccessFlags
	mt, err := bytecode.ParseMethodType(desc)
	if err != nil {
		return nil, err
	}
	targetDesc := desc
	isStatic := flags&classfile.AccStatic != 0
	if !isStatic {
		targetDesc = "(L" + origName + ";" + desc[1:]
	}

	var insts []bytecode.Inst
	slot := uint16(0)
	loadLocal := func(op bytecode.Opcode, idx uint16) {
		insts = append(insts, bytecode.Inst{Op: op, Index: idx, Target: -1})
	}
	if !isStatic {
		loadLocal(bytecode.Aload, slot)
		slot++
	}
	stackSlots := 0
	if !isStatic {
		stackSlots = 1
	}
	for _, p := range mt.Params {
		switch p.Kind {
		case bytecode.KLong:
			loadLocal(bytecode.Lload, slot)
			slot += 2
			stackSlots += 2
		case bytecode.KDouble:
			loadLocal(bytecode.Dload, slot)
			slot += 2
			stackSlots += 2
		case bytecode.KFloat:
			loadLocal(bytecode.Fload, slot)
			slot++
			stackSlots++
		case bytecode.KObject, bytecode.KArray:
			loadLocal(bytecode.Aload, slot)
			slot++
			stackSlots++
		default:
			loadLocal(bytecode.Iload, slot)
			slot++
			stackSlots++
		}
	}
	insts = append(insts, bytecode.Inst{
		Op:     bytecode.Invokestatic,
		Index:  cf.Pool.AddMethodref(coldName, name, targetDesc),
		Target: -1,
	})
	var retOp bytecode.Opcode
	switch mt.Ret.Kind {
	case bytecode.KVoid:
		retOp = bytecode.Return
	case bytecode.KLong:
		retOp = bytecode.Lreturn
	case bytecode.KDouble:
		retOp = bytecode.Dreturn
	case bytecode.KFloat:
		retOp = bytecode.Freturn
	case bytecode.KObject, bytecode.KArray:
		retOp = bytecode.Areturn
	default:
		retOp = bytecode.Ireturn
	}
	insts = append(insts, bytecode.Inst{Op: retOp, Target: -1})

	codeBytes, _, err := bytecode.Encode(insts)
	if err != nil {
		return nil, err
	}
	maxStack := stackSlots
	if r := mt.Ret.Slots(); r > maxStack {
		maxStack = r
	}
	stub := &classfile.Member{
		AccessFlags:     flags,
		NameIndex:       m.NameIndex,
		DescriptorIndex: m.DescriptorIndex,
	}
	code := &classfile.Code{
		MaxStack:  uint16(maxStack),
		MaxLocals: uint16(slot),
		Bytecode:  codeBytes,
	}
	if err := cf.SetCode(stub, code); err != nil {
		return nil, err
	}
	return stub, nil
}
