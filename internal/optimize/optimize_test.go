package optimize_test

import (
	"bytes"
	"testing"

	"dvm/internal/classfile"
	"dvm/internal/classgen"
	"dvm/internal/jvm"
	"dvm/internal/monitor"
	"dvm/internal/optimize"
	"dvm/internal/rewrite"
	"dvm/internal/verifier"
)

// buildApp builds app/A: main calls hot(); cold() and coldHeavy() exist
// but are never called on the profiled run. coldInst is an instance
// method with field access (exercises the receiver-conversion path).
func buildApp(t *testing.T) map[string][]byte {
	t.Helper()
	b := classgen.NewClass("app/A", "java/lang/Object")
	b.Field(classfile.AccPrivate, "v", "I")
	b.DefaultInit()

	hot := b.Method(classfile.AccPublic|classfile.AccStatic, "hot", "()I")
	hot.IConst(11).IReturn()

	cold := b.Method(classfile.AccPublic|classfile.AccStatic, "cold", "(I)I")
	cold.ILoad(0).IConst(3).IMul().IReturn()

	heavy := b.Method(classfile.AccPublic|classfile.AccStatic, "coldHeavy", "()Ljava/lang/String;")
	heavy.LdcString("a long constant string that adds bulk to the cold unit ")
	heavy.LdcString("and another one for good measure")
	heavy.InvokeVirtual("java/lang/String", "concat", "(Ljava/lang/String;)Ljava/lang/String;")
	heavy.AReturn()

	coldInst := b.Method(classfile.AccPublic, "coldInst", "(I)I")
	coldInst.ALoad(0).ILoad(1).PutField("app/A", "v", "I")
	coldInst.ALoad(0).GetField("app/A", "v", "I")
	coldInst.IConst(1).IAdd().IReturn()

	mn := b.Method(classfile.AccPublic|classfile.AccStatic, "main", "([Ljava/lang/String;)V")
	mn.InvokeStatic("app/A", "hot", "()I")
	mn.Pop()
	mn.Return()

	data, err := b.BuildBytes()
	if err != nil {
		t.Fatal(err)
	}
	return map[string][]byte{"app/A": data}
}

// profileRun executes the app with first-use instrumentation and returns
// the collected profile.
func profileRun(t *testing.T, classes map[string][]byte) *optimize.Profile {
	t.Helper()
	instrumented := map[string][]byte{}
	for name, data := range classes {
		out, err := rewrite.NewPipeline(monitor.Filter(monitor.Config{FirstUse: true})).Process(data, nil)
		if err != nil {
			t.Fatal(err)
		}
		instrumented[name] = out
	}
	vm, err := jvm.New(jvm.MapLoader(instrumented), &bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	coll := monitor.NewCollector()
	session := monitor.Attach(vm, coll, monitor.ClientInfo{})
	if thrown, err := vm.RunMain("app/A", nil); err != nil || thrown != nil {
		t.Fatalf("%v %v", err, jvm.DescribeThrowable(thrown))
	}
	return optimize.FromFirstUse(coll.FirstUseOrder(session))
}

func TestRepartitionSplitsColdMethods(t *testing.T) {
	classes := buildApp(t)
	prof := profileRun(t, classes)
	if !prof.HotMethod("app/A", "hot") || prof.HotMethod("app/A", "cold") {
		t.Fatalf("profile wrong: %+v", prof.Hot)
	}
	out, rep, err := optimize.Repartition(classes, prof)
	if err != nil {
		t.Fatalf("Repartition: %v", err)
	}
	if rep.Split != 1 || rep.ColdMethods != 3 {
		t.Errorf("report = %+v", rep)
	}
	if _, ok := out["app/A$cold"]; !ok {
		t.Fatal("no cold companion emitted")
	}
	if len(out["app/A"]) >= len(classes["app/A"]) {
		t.Errorf("carrier did not shrink: %d -> %d", len(classes["app/A"]), len(out["app/A"]))
	}
	// Both outputs must re-verify as ordinary classes.
	for name, data := range out {
		cf, err := classfile.Parse(data)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := verifier.Verify(cf); err != nil {
			t.Errorf("%s fails verification after repartitioning: %v", name, err)
		}
	}
}

func TestRepartitionedAppRunsIdentically(t *testing.T) {
	classes := buildApp(t)
	prof := profileRun(t, classes)
	out, _, err := optimize.Repartition(classes, prof)
	if err != nil {
		t.Fatal(err)
	}
	vm, err := jvm.New(jvm.MapLoader(out), &bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	// Hot path: cold companion must NOT load.
	if thrown, err := vm.RunMain("app/A", nil); err != nil || thrown != nil {
		t.Fatalf("%v %v", err, jvm.DescribeThrowable(thrown))
	}
	if vm.LoadedClass("app/A$cold") != nil {
		t.Fatal("cold unit loaded although only hot methods ran")
	}

	// Calling a cold static method triggers the lazy load and forwards.
	v, thrown, err := vm.MainThread().InvokeByName("app/A", "cold", "(I)I", []jvm.Value{jvm.IntV(7)})
	if err != nil || thrown != nil {
		t.Fatalf("%v %v", err, jvm.DescribeThrowable(thrown))
	}
	if v.Int() != 21 {
		t.Errorf("cold(7) = %d, want 21", v.Int())
	}
	if vm.LoadedClass("app/A$cold") == nil {
		t.Fatal("cold unit not loaded on demand")
	}

	// Cold instance method with field access still works through the
	// static-with-receiver conversion.
	c, err := vm.Class("app/A")
	if err != nil {
		t.Fatal(err)
	}
	obj := vm.NewInstance(c)
	v, thrown, err = vm.MainThread().InvokeByName("app/A", "coldInst", "(I)I",
		[]jvm.Value{jvm.RefV(obj), jvm.IntV(41)})
	if err != nil || thrown != nil {
		t.Fatalf("%v %v", err, jvm.DescribeThrowable(thrown))
	}
	if v.Int() != 42 {
		t.Errorf("coldInst(41) = %d, want 42", v.Int())
	}
	// String-returning cold method.
	v, thrown, err = vm.MainThread().InvokeByName("app/A", "coldHeavy", "()Ljava/lang/String;", nil)
	if err != nil || thrown != nil {
		t.Fatalf("%v %v", err, jvm.DescribeThrowable(thrown))
	}
	if got := jvm.GoString(v.Ref()); got == "" || got[0] != 'a' {
		t.Errorf("coldHeavy = %q", got)
	}
}

func TestRepartitionWithoutColdMethodsPassesThrough(t *testing.T) {
	classes := buildApp(t)
	// Everything hot.
	prof := optimize.NewProfile()
	for _, m := range []string{"hot", "cold", "coldHeavy", "coldInst"} {
		prof.Hot["app/A."+m] = true
	}
	out, rep, err := optimize.Repartition(classes, prof)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Split != 0 {
		t.Errorf("split = %d, want 0", rep.Split)
	}
	if !bytes.Equal(out["app/A"], classes["app/A"]) {
		t.Error("fully hot class was modified")
	}
}

func TestFromFirstUseParsesDescriptors(t *testing.T) {
	p := optimize.FromFirstUse([]string{
		"app/X.main ([Ljava/lang/String;)V",
		"app/X.go",
	})
	if !p.HotMethod("app/X", "main") || !p.HotMethod("app/X", "go") {
		t.Errorf("profile = %+v", p.Hot)
	}
}

// Regression: FromFirstUse used to drop arrival order entirely and map a
// malformed (leading-space) entry to Hot[""]. The prefetch successor
// graph depends on edge order, so Order must be the deduplicated arrival
// sequence and malformed entries must not corrupt it.
func TestFromFirstUsePreservesOrderAndDedups(t *testing.T) {
	p := optimize.FromFirstUse([]string{
		"app/A.init ()V",
		"app/B.run",
		"app/A.init ()V",   // duplicate: keeps first position
		" app/C.go ()V",    // leading space: trimmed, not Hot[""]
		"   ",              // malformed: skipped
		"",                 // malformed: skipped
		"app/B.run (JJ)V",  // duplicate with different descriptor
		"app/D.x",
	})
	want := []string{"app/A.init", "app/B.run", "app/C.go", "app/D.x"}
	if len(p.Order) != len(want) {
		t.Fatalf("Order = %v, want %v", p.Order, want)
	}
	for i := range want {
		if p.Order[i] != want[i] {
			t.Fatalf("Order = %v, want %v", p.Order, want)
		}
	}
	if p.Hot[""] {
		t.Error("malformed entry produced Hot[\"\"]")
	}
	if len(p.Hot) != len(want) {
		t.Errorf("Hot has %d entries, want %d: %v", len(p.Hot), len(want), p.Hot)
	}
}

func TestClassOrderCollapsesTransitions(t *testing.T) {
	p := optimize.FromFirstUse([]string{
		"app/A.init", "app/A.run", "app/B.go", "app/B.stop", "app/A.end", "app/C.x",
	})
	got := p.ClassOrder()
	want := []string{"app/A", "app/B", "app/A", "app/C"}
	if len(got) != len(want) {
		t.Fatalf("ClassOrder = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ClassOrder = %v, want %v", got, want)
		}
	}
}

func TestCopyConstantAllTags(t *testing.T) {
	src := classfile.NewConstPool()
	dst := classfile.NewConstPool()
	idxs := []uint16{
		src.AddUtf8("hello"),
		src.AddInteger(42),
		src.AddFloat(1.5),
		src.AddLong(1 << 40),
		src.AddDouble(2.5),
		src.AddClass("a/B"),
		src.AddString("text"),
		src.AddNameAndType("f", "I"),
		src.AddFieldref("a/B", "f", "I"),
		src.AddMethodref("a/B", "m", "()V"),
		src.AddInterfaceMethodref("a/I", "n", "()V"),
	}
	for _, idx := range idxs {
		ni, err := optimize.CopyConstant(src, dst, idx)
		if err != nil {
			t.Errorf("copy of %d: %v", idx, err)
			continue
		}
		se, _ := src.Entry(idx)
		de, err := dst.Entry(ni)
		if err != nil || de.Tag != se.Tag {
			t.Errorf("copied tag mismatch for %d: %v vs %v", idx, de.Tag, se.Tag)
		}
	}
	// Copying the same member ref twice must intern, not duplicate.
	before := dst.Size()
	if _, err := optimize.CopyConstant(src, dst, idxs[9]); err != nil {
		t.Fatal(err)
	}
	if dst.Size() != before {
		t.Error("second copy grew the destination pool")
	}
}
