package workload_test

import (
	"bytes"
	"strings"
	"testing"

	"dvm/internal/classfile"
	"dvm/internal/jvm"
	"dvm/internal/verifier"
	"dvm/internal/workload"
)

func generate(t *testing.T, spec workload.Spec) *workload.App {
	t.Helper()
	app, err := workload.Generate(spec)
	if err != nil {
		t.Fatalf("Generate(%s): %v", spec.Name, err)
	}
	return app
}

// smallSpec shrinks a spec so unit tests stay fast.
func smallSpec(s workload.Spec) workload.Spec {
	s.Classes = 5
	s.TargetBytes = 20 * 1024
	s.WorkUnits = 3
	return s
}

func TestEveryKindGeneratesRunsAndVerifies(t *testing.T) {
	for _, spec := range workload.Benchmarks() {
		spec := smallSpec(spec)
		t.Run(spec.Name, func(t *testing.T) {
			app := generate(t, spec)
			if len(app.Classes) != spec.Classes {
				t.Errorf("classes = %d, want %d", len(app.Classes), spec.Classes)
			}
			// Every generated class passes full static verification.
			for name, data := range app.Classes {
				cf, err := classfile.Parse(data)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if _, err := verifier.Verify(cf); err != nil {
					t.Fatalf("%s fails verification: %v", name, err)
				}
			}
			// And the app runs to completion deterministically.
			out1 := run(t, app)
			out2 := run(t, app)
			if out1 != out2 {
				t.Errorf("non-deterministic output: %q vs %q", out1, out2)
			}
			if !strings.Contains(out1, "checksum=") {
				t.Errorf("output = %q", out1)
			}
		})
	}
}

func run(t *testing.T, app *workload.App) string {
	t.Helper()
	var out bytes.Buffer
	vm, err := jvm.New(jvm.MapLoader(app.Classes), &out)
	if err != nil {
		t.Fatal(err)
	}
	thrown, err := vm.RunMain(app.Spec.MainClass(), nil)
	if err != nil {
		t.Fatalf("%s: %v", app.Spec.Name, err)
	}
	if thrown != nil {
		t.Fatalf("%s: uncaught %s", app.Spec.Name, jvm.DescribeThrowable(thrown))
	}
	return out.String()
}

func TestSizesApproachTargets(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size generation")
	}
	for _, spec := range workload.Benchmarks() {
		app := generate(t, spec)
		lo := spec.TargetBytes * 80 / 100
		hi := spec.TargetBytes * 130 / 100
		if app.TotalBytes < lo || app.TotalBytes > hi {
			t.Errorf("%s: generated %d bytes, target %d (accept %d..%d)",
				spec.Name, app.TotalBytes, spec.TargetBytes, lo, hi)
		}
		if app.ColdMethods == 0 {
			t.Errorf("%s: no cold methods generated", spec.Name)
		}
	}
}

func TestAppletSuite(t *testing.T) {
	specs := workload.Applets()
	if len(specs) != 6 {
		t.Fatalf("applets = %d, want 6 (Figure 11)", len(specs))
	}
	spec := smallSpec(specs[5]) // the smallest
	app := generate(t, spec)
	out := run(t, app)
	if !strings.Contains(out, "checksum=") {
		t.Errorf("applet output = %q", out)
	}
}

func TestDeterministicAcrossGenerations(t *testing.T) {
	spec := smallSpec(workload.Benchmarks()[0])
	a := generate(t, spec)
	b := generate(t, spec)
	if len(a.Classes) != len(b.Classes) {
		t.Fatal("class count differs")
	}
	for name, data := range a.Classes {
		if !bytes.Equal(data, b.Classes[name]) {
			t.Errorf("%s differs between generations", name)
		}
	}
}

func TestBenchmarkTableMatchesPaper(t *testing.T) {
	specs := workload.Benchmarks()
	want := map[string]int{"JLex": 20, "Javacup": 35, "Pizza": 241, "Instantdb": 70, "Cassowary": 34}
	for _, s := range specs {
		if want[s.Name] != s.Classes {
			t.Errorf("%s: classes = %d, want %d (Figure 5)", s.Name, s.Classes, want[s.Name])
		}
	}
}

func TestGenerateRejectsBadSpec(t *testing.T) {
	if _, err := workload.Generate(workload.Spec{Name: "x", Package: "x", Classes: 1}); err == nil {
		t.Fatal("accepted 1-class spec")
	}
}
