package workload

import (
	"fmt"

	"dvm/internal/bytecode"
	"dvm/internal/classfile"
	"dvm/internal/classgen"
)

// emitKernel writes the flavor-specific hot computation into run(I)I.
// Precondition: local 0 holds the int argument. Postcondition: one int
// (the accumulator) is on the stack.
func (g *generator) emitKernel(b *classgen.ClassBuilder, m *classgen.MethodBuilder, idx int) {
	switch g.spec.Kind {
	case KindLexer:
		g.kernelLexer(b, m, idx)
	case KindParser:
		g.kernelParser(b, m, idx)
	case KindCompiler:
		g.kernelCompiler(b, m, idx)
	case KindDatabase:
		g.kernelDatabase(b, m, idx)
	case KindConstraint:
		g.kernelConstraint(b, m, idx)
	case KindApplet:
		g.kernelApplet(b, m, idx)
	}
}

// kernelLexer models scanner-generator work: build a transition table,
// then drive a DFA over a synthetic input via charAt.
func (g *generator) kernelLexer(b *classgen.ClassBuilder, m *classgen.MethodBuilder, idx int) {
	const tableSize = 64
	// locals: 0=arg, 1=table, 2=i, 3=state/acc
	m.IConst(tableSize).NewArray(bytecode.TInt).AStore(1)
	m.IConst(0).IStore(2)
	fillHead := m.Here()
	fillDone := m.NewLabel()
	m.ILoad(2).IConst(tableSize).Branch(bytecode.IfIcmpge, fillDone)
	m.ALoad(1).ILoad(2)
	m.ILoad(2).IConst(int32(7 + idx)).IMul().IConst(tableSize - 1).Inst(bytecode.Iand)
	m.Inst(bytecode.Iastore)
	m.IInc(2, 1)
	m.Goto(fillHead)
	m.Mark(fillDone)

	// Scan the synthetic input: state = table[(state + ch) & mask].
	input := g.text(48 + g.rng.intn(32))
	m.IConst(0).IStore(3)
	m.IConst(0).IStore(2)
	scanHead := m.Here()
	scanDone := m.NewLabel()
	m.ILoad(2).IConst(int32(len(input))).Branch(bytecode.IfIcmpge, scanDone)
	m.ALoad(1)
	m.ILoad(3)
	m.LdcString(input)
	m.ILoad(2)
	m.InvokeVirtual("java/lang/String", "charAt", "(I)C")
	m.IAdd().IConst(tableSize - 1).Inst(bytecode.Iand)
	m.Inst(bytecode.Iaload)
	m.IStore(3)
	m.IInc(2, 1)
	m.Goto(scanHead)
	m.Mark(scanDone)
	m.ILoad(3).ILoad(0).IAdd()
}

// kernelParser models LALR table interpretation: a switch-dispatched
// state machine with helper reductions.
func (g *generator) kernelParser(b *classgen.ClassBuilder, m *classgen.MethodBuilder, idx int) {
	// locals: 0=arg, 1=state, 2=i, 3=acc
	m.ILoad(0).IConst(7).Inst(bytecode.Iand).IStore(1)
	m.IConst(0).IStore(3)
	m.IConst(0).IStore(2)
	head := m.Here()
	done := m.NewLabel()
	m.ILoad(2).IConst(int32(24+g.rng.intn(16))).Branch(bytecode.IfIcmpge, done)

	def := m.NewLabel()
	arms := make([]classgen.Label, 4)
	for i := range arms {
		arms[i] = m.NewLabel()
	}
	after := m.NewLabel()
	m.ILoad(1).IConst(3).Inst(bytecode.Iand)
	m.TableSwitch(0, def, arms...)
	for i, arm := range arms {
		m.Mark(arm)
		m.ILoad(3).ILoad(1).IAdd().IConst(int32(3 + i)).IMul().IStore(3)
		m.ILoad(1).InvokeStatic(b.Name(), "reduce", "(I)I").IStore(1)
		m.Goto(after)
	}
	m.Mark(def)
	m.IInc(1, 1)
	m.Mark(after)
	m.IInc(2, 1)
	m.Goto(head)
	m.Mark(done)
	m.ILoad(3)
}

// kernelCompiler models multi-pass lowering: string emission plus
// arithmetic folding across helper calls.
func (g *generator) kernelCompiler(b *classgen.ClassBuilder, m *classgen.MethodBuilder, idx int) {
	// locals: 0=arg, 1=sb, 2=i, 3=acc
	m.NewDup("java/lang/StringBuffer")
	m.InvokeSpecial("java/lang/StringBuffer", "<init>", "()V")
	m.AStore(1)
	m.ILoad(0).IStore(3)
	m.IConst(0).IStore(2)
	head := m.Here()
	done := m.NewLabel()
	m.ILoad(2).IConst(int32(10+g.rng.intn(8))).Branch(bytecode.IfIcmpge, done)
	m.ALoad(1).LdcString(opNames[g.rng.intn(len(opNames))])
	m.InvokeVirtual("java/lang/StringBuffer", "append", "(Ljava/lang/String;)Ljava/lang/StringBuffer;")
	m.ILoad(3)
	m.InvokeVirtual("java/lang/StringBuffer", "append", "(I)Ljava/lang/StringBuffer;")
	m.Pop()
	m.ILoad(3).IConst(31).IMul().ILoad(2).IAdd().IStore(3)
	m.ILoad(3).InvokeStatic(b.Name(), "fold", "(I)I").IStore(3)
	m.IInc(2, 1)
	m.Goto(head)
	m.Mark(done)
	m.ALoad(1).InvokeVirtual("java/lang/StringBuffer", "length", "()I")
	m.ILoad(3).IAdd()
}

var opNames = []string{"load ", "store ", "add ", "mul ", "jmp ", "cmp ", "ret "}

// kernelDatabase models TPC-A: keyed account updates through a
// Hashtable with an occasional aborted (exception) transaction.
func (g *generator) kernelDatabase(b *classgen.ClassBuilder, m *classgen.MethodBuilder, idx int) {
	// locals: 0=arg, 1=table, 2=i, 3=acc
	m.NewDup("java/util/Hashtable")
	m.InvokeSpecial("java/util/Hashtable", "<init>", "()V")
	m.AStore(1)
	m.IConst(0).IStore(3)
	m.IConst(0).IStore(2)
	head := m.Here()
	done := m.NewLabel()
	m.ILoad(2).IConst(int32(12+g.rng.intn(8))).Branch(bytecode.IfIcmpge, done)
	// table.put(String.valueOf((arg+i)&15), String.valueOf(i))
	m.ALoad(1)
	m.ILoad(0).ILoad(2).IAdd().IConst(15).Inst(bytecode.Iand)
	m.InvokeStatic("java/lang/String", "valueOf", "(I)Ljava/lang/String;")
	m.ILoad(2).InvokeStatic("java/lang/String", "valueOf", "(I)Ljava/lang/String;")
	m.InvokeVirtual("java/util/Hashtable", "put", "(Ljava/lang/Object;Ljava/lang/Object;)Ljava/lang/Object;")
	m.Pop()
	// acc += balance lookup length (read-modify-write).
	m.ALoad(1)
	m.ILoad(2).IConst(15).Inst(bytecode.Iand)
	m.InvokeStatic("java/lang/String", "valueOf", "(I)Ljava/lang/String;")
	m.InvokeVirtual("java/util/Hashtable", "get", "(Ljava/lang/Object;)Ljava/lang/Object;")
	notNull := m.NewLabel()
	cont := m.NewLabel()
	m.Dup().Branch(bytecode.Ifnonnull, notNull)
	m.Pop()
	m.Goto(cont)
	m.Mark(notNull)
	m.CheckCast("java/lang/String")
	m.InvokeVirtual("java/lang/String", "length", "()I")
	m.ILoad(3).IAdd().IStore(3)
	m.Mark(cont)
	m.IInc(2, 1)
	m.Goto(head)
	m.Mark(done)
	// One guarded division models the aborted-transaction path.
	tryStart := m.Here()
	m.ILoad(3).ILoad(0).IConst(7).Inst(bytecode.Iand).IDiv().IStore(3)
	after := m.NewLabel()
	m.Goto(after)
	tryEnd := m.NewLabel()
	m.Mark(tryEnd)
	handler := m.Here()
	m.Pop()
	m.IInc(3, 1)
	m.Mark(after)
	m.Handler(tryStart, tryEnd, handler, "java/lang/ArithmeticException")
	m.ILoad(3).ALoad(1).InvokeVirtual("java/util/Hashtable", "size", "()I").IAdd()
}

// kernelConstraint models iterative relaxation over double arrays.
func (g *generator) kernelConstraint(b *classgen.ClassBuilder, m *classgen.MethodBuilder, idx int) {
	const vars = 16
	// locals: 0=arg, 1=x(arr), 2=iter, 3=i, 4... acc in 5
	m.IConst(vars).NewArray(bytecode.TDouble).AStore(1)
	m.IConst(0).IStore(3)
	initHead := m.Here()
	initDone := m.NewLabel()
	m.ILoad(3).IConst(vars).Branch(bytecode.IfIcmpge, initDone)
	m.ALoad(1).ILoad(3)
	m.ILoad(3).ILoad(0).IAdd().Inst(bytecode.I2d)
	m.Inst(bytecode.Dastore)
	m.IInc(3, 1)
	m.Goto(initHead)
	m.Mark(initDone)

	m.IConst(0).IStore(2)
	iterHead := m.Here()
	iterDone := m.NewLabel()
	m.ILoad(2).IConst(int32(8+g.rng.intn(6))).Branch(bytecode.IfIcmpge, iterDone)
	m.IConst(1).IStore(3)
	inHead := m.Here()
	inDone := m.NewLabel()
	m.ILoad(3).IConst(vars).Branch(bytecode.IfIcmpge, inDone)
	// x[i] = (x[i] + x[i-1]) / 2
	m.ALoad(1).ILoad(3)
	m.ALoad(1).ILoad(3).Inst(bytecode.Daload)
	m.ALoad(1).ILoad(3).IConst(1).ISub().Inst(bytecode.Daload)
	m.Inst(bytecode.Dadd)
	m.DConst(2).Inst(bytecode.Ddiv)
	m.Inst(bytecode.Dastore)
	m.IInc(3, 1)
	m.Goto(inHead)
	m.Mark(inDone)
	m.IInc(2, 1)
	m.Goto(iterHead)
	m.Mark(iterDone)
	// acc = (int) x[vars-1] + arg
	m.ALoad(1).IConst(vars - 1).Inst(bytecode.Daload)
	m.Inst(bytecode.D2i)
	m.ILoad(0).IAdd()
}

// kernelApplet models UI startup work: building widget descriptors
// (string concatenation) and layout arithmetic.
func (g *generator) kernelApplet(b *classgen.ClassBuilder, m *classgen.MethodBuilder, idx int) {
	// locals: 0=arg, 1=acc, 2=i
	m.ILoad(0).IStore(1)
	m.IConst(0).IStore(2)
	head := m.Here()
	done := m.NewLabel()
	m.ILoad(2).IConst(6).Branch(bytecode.IfIcmpge, done)
	m.LdcString(fmt.Sprintf("widget-%d ", idx))
	m.InvokeVirtual("java/lang/String", "length", "()I")
	m.ILoad(1).IAdd().IConst(3).IMul().IConst(0xFFFF).Inst(bytecode.Iand).IStore(1)
	m.IInc(2, 1)
	m.Goto(head)
	m.Mark(done)
	m.ILoad(1)
}

// emitHelpers adds the hot helper methods kernels call.
func (g *generator) emitHelpers(b *classgen.ClassBuilder, idx int) {
	switch g.spec.Kind {
	case KindParser:
		// A reduction pops a handle and recomputes attributes: a short
		// loop of real work, not a one-liner.
		red := b.Method(pubStatic, "reduce", "(I)I")
		red.ILoad(0).IStore(1)
		red.IConst(0).IStore(2)
		head := red.Here()
		done := red.NewLabel()
		red.ILoad(2).IConst(12).Branch(bytecode.IfIcmpge, done)
		red.ILoad(1).IConst(5).IMul().ILoad(2).IAdd().IConst(0x7FFF).Inst(bytecode.Iand).IStore(1)
		red.IInc(2, 1)
		red.Goto(head)
		red.Mark(done)
		red.ILoad(1).IConst(31).Inst(bytecode.Irem).IReturn()
		g.hotMethods++
	case KindCompiler:
		fold := b.Method(pubStatic, "fold", "(I)I")
		l := fold.NewLabel()
		fold.ILoad(0).Branch(bytecode.Ifge, l)
		fold.ILoad(0).Inst(bytecode.Ineg).IReturn()
		fold.Mark(l)
		fold.ILoad(0).IConst(0x7FFF).Inst(bytecode.Iand).IReturn()
		g.hotMethods++
	}
}

// emitColdMethod writes one never-invoked method (configuration parsing,
// error reporting, alternate code paths in the originals) and returns an
// estimate of the bytes it added.
func (g *generator) emitColdMethod(b *classgen.ClassBuilder, idx, c int) int {
	name := fmt.Sprintf("util%02d", c)
	m := b.Method(pubStatic, name, "(I)Ljava/lang/String;")
	est := 40
	m.NewDup("java/lang/StringBuffer")
	m.InvokeSpecial("java/lang/StringBuffer", "<init>", "()V")
	m.AStore(1)
	parts := 2 + g.rng.intn(3)
	for p := 0; p < parts; p++ {
		s := g.text(40 + g.rng.intn(80))
		est += len(s) + 12
		m.ALoad(1).LdcString(s)
		m.InvokeVirtual("java/lang/StringBuffer", "append", "(Ljava/lang/String;)Ljava/lang/StringBuffer;")
		m.Pop()
	}
	m.ALoad(1).ILoad(0)
	m.InvokeVirtual("java/lang/StringBuffer", "append", "(I)Ljava/lang/StringBuffer;")
	m.InvokeVirtual("java/lang/StringBuffer", "toString", "()Ljava/lang/String;")
	m.AReturn()
	return est
}

// mainClass builds <pkg>/Main: the driver loop and checksum output.
func (g *generator) mainClass(nWorkers int) ([]byte, error) {
	b := classgen.NewClass(g.spec.MainClass(), "java/lang/Object")
	b.Field(classfile.AccPublic|classfile.AccStatic, "checksum", "I")
	m := b.Method(pubStatic, "main", "([Ljava/lang/String;)V")
	// locals: 0=args, 1=acc, 2=i
	m.IConst(0).IStore(1)
	m.IConst(0).IStore(2)
	head := m.Here()
	done := m.NewLabel()
	m.ILoad(2).IConst(int32(g.spec.WorkUnits)).Branch(bytecode.IfIcmpge, done)
	m.ILoad(1).ILoad(2).IAdd().IConst(127).Inst(bytecode.Iand)
	m.InvokeStatic(g.className(0), "run", "(I)I")
	m.ILoad(1).IAdd().IStore(1)
	m.IInc(2, 1)
	m.Goto(head)
	m.Mark(done)
	m.ILoad(1).PutStatic(g.spec.MainClass(), "checksum", "I")
	m.GetStatic("java/lang/System", "out", "Ljava/io/PrintStream;")
	m.LdcString(g.spec.Name + " checksum=")
	m.InvokeVirtual("java/io/PrintStream", "print", "(Ljava/lang/String;)V")
	m.GetStatic("java/lang/System", "out", "Ljava/io/PrintStream;")
	m.ILoad(1)
	m.InvokeVirtual("java/io/PrintStream", "println", "(I)V")
	m.Return()
	return b.BuildBytes()
}
