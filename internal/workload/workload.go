// Package workload synthesizes the evaluation's benchmark applications
// as real, runnable classfiles.
//
// The paper's Figure 5 suite (JLex, Javacup, Pizza, Instantdb, Cassowary)
// and the Figure 11 graphical applets are proprietary-era binaries we
// cannot ship; what the experiments actually depend on is their *shape* —
// class counts, code volume, instruction mix, call density, and the
// fraction of transferred code that is never invoked. This generator
// reproduces those shapes deterministically (seeded PRNG): each workload
// is a package of generated classes whose hot path performs real
// computation of the appropriate flavor (scanner table walks, parse-table
// interpretation, multi-pass lowering, TPC-A-style keyed updates,
// iterative constraint relaxation) and whose cold methods provide the
// realistic never-invoked bulk.
//
// All workloads run on the DVM client runtime, survive the verifier, and
// print a deterministic checksum, so monolithic and DVM configurations
// can be checked for identical behavior.
package workload

import (
	"fmt"

	"dvm/internal/bytecode"
	"dvm/internal/classfile"
	"dvm/internal/classgen"
)

// Kind selects the computational flavor of a generated application.
type Kind int

// Workload kinds, matching the Figure 5 suite.
const (
	KindLexer      Kind = iota // JLex: scanner table construction + scanning
	KindParser                 // Javacup: LALR-style table walks
	KindCompiler               // Pizza: multi-pass lowering over many classes
	KindDatabase               // Instantdb: TPC-A-like keyed updates
	KindConstraint             // Cassowary: iterative relaxation
	KindApplet                 // Figure 11 graphical applets
)

func (k Kind) String() string {
	switch k {
	case KindLexer:
		return "lexer"
	case KindParser:
		return "parser"
	case KindCompiler:
		return "compiler"
	case KindDatabase:
		return "database"
	case KindConstraint:
		return "constraint"
	case KindApplet:
		return "applet"
	}
	return "?"
}

// Spec describes one application to generate.
type Spec struct {
	Name        string // display name (paper's benchmark name)
	Package     string // internal package prefix, e.g. "jlex"
	Kind        Kind
	Classes     int // number of classes (Figure 5 column)
	TargetBytes int // approximate total classfile bytes (Figure 5 column)
	// ColdFraction is the fraction of generated methods that the startup
	// path never invokes (10-30% per [Sirer et al. 99]).
	ColdFraction float64
	// WorkUnits scales how much computation main performs.
	WorkUnits int
	Seed      uint64
	// Description mirrors Figure 5's description column.
	Description string
}

// MainClass returns the application entry class name.
func (s Spec) MainClass() string { return s.Package + "/Main" }

// Benchmarks returns the Figure 5 suite with class counts and sizes
// matched to the paper's table (sizes are approximate targets; Generate
// reports the exact figure).
func Benchmarks() []Spec {
	return []Spec{
		{Name: "JLex", Package: "jlex", Kind: KindLexer, Classes: 20,
			TargetBytes: 91 * 1024, ColdFraction: 0.20, WorkUnits: 40, Seed: 101,
			Description: "Lexical analyzer generator"},
		{Name: "Javacup", Package: "javacup", Kind: KindParser, Classes: 35,
			TargetBytes: 130 * 1024, ColdFraction: 0.22, WorkUnits: 30, Seed: 102,
			Description: "LALR parser compiler"},
		{Name: "Pizza", Package: "pizza", Kind: KindCompiler, Classes: 241,
			TargetBytes: 825 * 1024, ColdFraction: 0.25, WorkUnits: 6, Seed: 103,
			Description: "Bytecode to native compiler"},
		{Name: "Instantdb", Package: "instantdb", Kind: KindDatabase, Classes: 70,
			TargetBytes: 312 * 1024, ColdFraction: 0.22, WorkUnits: 60, Seed: 104,
			Description: "Relational database with a TPC-A like workload"},
		{Name: "Cassowary", Package: "cassowary", Kind: KindConstraint, Classes: 34,
			TargetBytes: 85 * 1024, ColdFraction: 0.18, WorkUnits: 50, Seed: 105,
			Description: "Constraint satisfier"},
	}
}

// Applets returns the Figure 11/12 graphical application suite. Sizes
// are chosen so startup times over 28.8 Kb/s–1 MB/s links span the
// figure's 10–1000 s range; cold fractions drive the Figure 12
// improvements (largest for the most padded UI suites).
func Applets() []Spec {
	return []Spec{
		{Name: "Java Work Shop", Package: "jws", Kind: KindApplet, Classes: 160,
			TargetBytes: 1500 * 1024, ColdFraction: 0.30, WorkUnits: 4, Seed: 201},
		{Name: "Java Studio", Package: "jstudio", Kind: KindApplet, Classes: 120,
			TargetBytes: 1000 * 1024, ColdFraction: 0.28, WorkUnits: 4, Seed: 202},
		{Name: "Hot Java", Package: "hotjava", Kind: KindApplet, Classes: 100,
			TargetBytes: 750 * 1024, ColdFraction: 0.25, WorkUnits: 4, Seed: 203},
		{Name: "Net Charts", Package: "netcharts", Kind: KindApplet, Classes: 60,
			TargetBytes: 400 * 1024, ColdFraction: 0.22, WorkUnits: 4, Seed: 204},
		{Name: "CQ", Package: "cq", Kind: KindApplet, Classes: 40,
			TargetBytes: 250 * 1024, ColdFraction: 0.18, WorkUnits: 4, Seed: 205},
		{Name: "Animated UI", Package: "animui", Kind: KindApplet, Classes: 25,
			TargetBytes: 120 * 1024, ColdFraction: 0.15, WorkUnits: 4, Seed: 206},
	}
}

// App is a generated application.
type App struct {
	Spec    Spec
	Classes map[string][]byte
	// TotalBytes is the exact generated size.
	TotalBytes int
	// HotMethods / ColdMethods count generated worker methods by kind.
	HotMethods, ColdMethods int
}

// Generate builds the application described by spec.
func Generate(spec Spec) (*App, error) {
	if spec.Classes < 2 {
		return nil, fmt.Errorf("workload: %s: need at least 2 classes", spec.Name)
	}
	if spec.WorkUnits <= 0 {
		spec.WorkUnits = 1
	}
	g := &generator{
		spec: spec,
		rng:  rng{state: spec.Seed*0x9E3779B97F4A7C15 + 1},
		out:  make(map[string][]byte),
	}
	if err := g.run(); err != nil {
		return nil, fmt.Errorf("workload: %s: %w", spec.Name, err)
	}
	total := 0
	for _, b := range g.out {
		total += len(b)
	}
	return &App{
		Spec:        spec,
		Classes:     g.out,
		TotalBytes:  total,
		HotMethods:  g.hotMethods,
		ColdMethods: g.coldMethods,
	}, nil
}

// generator carries state through one build.
type generator struct {
	spec        Spec
	rng         rng
	out         map[string][]byte
	hotMethods  int
	coldMethods int
}

// rng is the deterministic PRNG all generation decisions come from.
type rng struct{ state uint64 }

func (r *rng) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// intn returns a draw in [0, n).
func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

func (g *generator) className(i int) string {
	return fmt.Sprintf("%s/C%03d", g.spec.Package, i)
}

// run generates the worker classes and the Main driver.
func (g *generator) run() error {
	nWorkers := g.spec.Classes - 1
	// Per-class byte budget, reserving ~8% for Main.
	perClass := g.spec.TargetBytes * 92 / 100 / nWorkers

	for i := 0; i < nWorkers; i++ {
		data, err := g.workerClass(i, nWorkers, perClass)
		if err != nil {
			return err
		}
		g.out[g.className(i)] = data
	}
	mainBytes, err := g.mainClass(nWorkers)
	if err != nil {
		return err
	}
	g.out[g.spec.MainClass()] = mainBytes
	return nil
}

const pub = classfile.AccPublic
const pubStatic = classfile.AccPublic | classfile.AccStatic

// workerClass builds one worker: a hot entry method `run(I)I` whose body
// matches the workload kind, additional hot helpers, cold methods
// (ColdFraction of the byte budget — the code a run never touches), and
// a hot `resources` method carrying the remaining constant bulk (string
// tables, UI text) that real startup paths do load and touch.
func (g *generator) workerClass(idx, nWorkers, targetBytes int) ([]byte, error) {
	b := classgen.NewClass(g.className(idx), "java/lang/Object")
	b.Field(classfile.AccPrivate|classfile.AccStatic, "state", "I")
	b.DefaultInit()

	// The hot entry point: touch the resource bulk (guarded, once per
	// class), run the flavor-specific computation, then chain into the
	// next worker so the suite has realistic call chains.
	b.Field(classfile.AccPrivate|classfile.AccStatic, "resLoaded", "Z")
	run := b.Method(pubStatic, "run", "(I)I")
	skip := run.NewLabel()
	run.GetStatic(g.className(idx), "resLoaded", "Z")
	run.Branch(bytecode.Ifne, skip)
	run.IConst(1).PutStatic(g.className(idx), "resLoaded", "Z")
	run.InvokeStatic(g.className(idx), "resources", "()I")
	run.Pop()
	run.Mark(skip)
	g.emitKernel(b, run, idx)
	if idx+1 < nWorkers {
		// acc on stack; chain into the next class with a dampened arg.
		run.IConst(127).Inst(bytecode.Iand)
		run.InvokeStatic(g.className(idx+1), "run", "(I)I")
	}
	run.IReturn()
	g.hotMethods++

	// Hot helpers used by the kernel.
	g.emitHelpers(b, idx)

	// Cold bulk: methods the startup path never calls, carrying
	// alternate code paths and error resources.
	coldBudget := int(float64(targetBytes) * g.spec.ColdFraction)
	built := 0
	for c := 0; built < coldBudget; c++ {
		built += g.emitColdMethod(b, idx, c)
		g.coldMethods++
		if c > 400 {
			break
		}
	}

	// Measure, then fill the remaining budget with the *hot* resource
	// method run() touches (reserve ~80 bytes for its header).
	probe, err := b.BuildBytes()
	if err != nil {
		return nil, err
	}
	missing := targetBytes - len(probe) - 80
	res := b.Method(pubStatic, "resources", "()I")
	total, n := 0, 0
	for total < missing {
		chunk := 160
		if missing-total < chunk {
			chunk = missing - total
		}
		if chunk < 8 {
			break
		}
		s := g.text(chunk - 6) // utf8 header + ldc overhead
		res.LdcString(s)
		res.Pop()
		total += chunk
		n++
		if n > 4000 {
			break
		}
	}
	res.IConst(int32(n)).IReturn()
	g.hotMethods++
	return b.BuildBytes()
}

// text produces deterministic pseudo-prose of the requested length.
func (g *generator) text(n int) string {
	if n <= 0 {
		return ""
	}
	words := []string{"table", "state", "token", "parse", "emit", "check",
		"index", "frame", "cache", "flush", "error", "panel", "label", "menu"}
	buf := make([]byte, 0, n+8)
	for len(buf) < n {
		w := words[g.rng.intn(len(words))]
		buf = append(buf, w...)
		buf = append(buf, ' ')
	}
	return string(buf[:n])
}
