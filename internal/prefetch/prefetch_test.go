package prefetch

import (
	"fmt"
	"sync"
	"testing"
)

func TestPredictTopKDeterministic(t *testing.T) {
	p := New(Config{TopK: 2, MinConfidence: 0.05})
	// A -> B seen 5x, A -> C 3x, A -> D 2x.
	for i := 0; i < 5; i++ {
		p.ObserveOrder("x86", []string{"app/A", "app/B"})
	}
	for i := 0; i < 3; i++ {
		p.ObserveOrder("x86", []string{"app/A", "app/C"})
	}
	for i := 0; i < 2; i++ {
		p.ObserveOrder("x86", []string{"app/A", "app/D"})
	}
	got := p.Predict("x86", "app/A")
	if len(got) != 2 {
		t.Fatalf("want top-2, got %v", got)
	}
	if got[0].Class != "app/B" || got[1].Class != "app/C" {
		t.Fatalf("want [B C], got %v", got)
	}
	if got[0].Confidence <= got[1].Confidence {
		t.Fatalf("confidences not descending: %v", got)
	}
	// Ties break by name: equal-weight successors come back sorted.
	q := New(Config{TopK: 3, MinConfidence: 0.05})
	q.ObserveOrder("x86", []string{"app/A", "app/Z"})
	q.ObserveOrder("x86", []string{"app/A", "app/M"})
	if tied := q.Predict("x86", "app/A"); len(tied) != 2 || tied[0].Class != "app/M" || tied[1].Class != "app/Z" {
		t.Fatalf("tie break not by name: %v", tied)
	}
}

func TestPredictConfidenceThreshold(t *testing.T) {
	p := New(Config{TopK: 10, MinConfidence: 0.3})
	// B: 6/10 = 0.6 passes; C: 3/10 = 0.3 passes (inclusive); D: 1/10 fails.
	for i := 0; i < 6; i++ {
		p.ObserveOrder("x86", []string{"app/A", "app/B"})
	}
	for i := 0; i < 3; i++ {
		p.ObserveOrder("x86", []string{"app/A", "app/C"})
	}
	p.ObserveOrder("x86", []string{"app/A", "app/D"})
	got := p.Predict("x86", "app/A")
	if len(got) != 2 || got[0].Class != "app/B" || got[1].Class != "app/C" {
		t.Fatalf("threshold not applied: %v", got)
	}
	for _, pr := range got {
		if pr.Confidence < 0.3 {
			t.Fatalf("prediction below threshold: %v", pr)
		}
	}
}

func TestDecayForgetsOldWorkload(t *testing.T) {
	p := New(Config{TopK: 1, MinConfidence: 0.1, Decay: 0.25, DecayEvery: 20})
	// Phase 1: A -> B dominates.
	for i := 0; i < 8; i++ {
		p.ObserveOrder("x86", []string{"app/A", "app/B"})
	}
	if got := p.Predict("x86", "app/A"); len(got) != 1 || got[0].Class != "app/B" {
		t.Fatalf("phase 1: want B, got %v", got)
	}
	heatBefore := p.Heat("x86", "app/B")
	// Phase 2: workload shifts to A -> C; decay sweeps shrink B's edge.
	for i := 0; i < 40; i++ {
		p.ObserveOrder("x86", []string{"app/A", "app/C"})
	}
	if got := p.Predict("x86", "app/A"); len(got) != 1 || got[0].Class != "app/C" {
		t.Fatalf("phase 2: want C after decay, got %v", got)
	}
	if h := p.Heat("x86", "app/B"); h >= heatBefore {
		t.Fatalf("B heat did not decay: before %.2f after %.2f", heatBefore, h)
	}
	if h := p.Heat("x86", "app/C"); h <= p.Heat("x86", "app/B") {
		t.Fatalf("C should be hotter than B after shift: C=%.2f B=%.2f", h, p.Heat("x86", "app/B"))
	}
}

func TestObserveRequestChainsPerClient(t *testing.T) {
	p := New(Config{TopK: 3, MinConfidence: 0.1})
	// Two clients interleave; edges must follow per-client order, and the
	// arch boundary must not create a cross-arch edge.
	p.ObserveRequest("c1", "x86", "app/A")
	p.ObserveRequest("c2", "x86", "app/X")
	p.ObserveRequest("c1", "x86", "app/B")
	p.ObserveRequest("c2", "x86", "app/Y")
	p.ObserveRequest("c1", "arm", "app/C") // arch switch: no x86 A->C edge
	got := p.Predict("x86", "app/A")
	if len(got) != 1 || got[0].Class != "app/B" {
		t.Fatalf("per-client chain broken: %v", got)
	}
	if got := p.Predict("x86", "app/X"); len(got) != 1 || got[0].Class != "app/Y" {
		t.Fatalf("c2 chain broken: %v", got)
	}
	if got := p.Predict("x86", "app/B"); len(got) != 0 {
		t.Fatalf("cross-arch edge leaked: %v", got)
	}
}

func TestBoundedKeysAndClients(t *testing.T) {
	p := New(Config{MaxKeys: 8, MaxClients: 4})
	for i := 0; i < 100; i++ {
		p.ObserveRequest(fmt.Sprintf("c%d", i), "x86", fmt.Sprintf("app/K%03d", i))
	}
	if n := p.Keys(); n > 8 {
		t.Fatalf("keys not bounded: %d", n)
	}
	p.mu.Lock()
	nLast := len(p.last)
	p.mu.Unlock()
	if nLast > 4 {
		t.Fatalf("client table not bounded: %d", nLast)
	}
}

func TestConcurrentObservePredict(t *testing.T) {
	p := New(Config{DecayEvery: 64})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			client := fmt.Sprintf("c%d", g)
			for i := 0; i < 200; i++ {
				p.ObserveRequest(client, "x86", fmt.Sprintf("app/K%d", i%7))
				p.Predict("x86", "app/K0")
				p.Heat("x86", "app/K1")
			}
		}(g)
	}
	wg.Wait()
}
