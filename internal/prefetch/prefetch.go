// Package prefetch predicts which classes a client will request next.
//
// The predictor folds two signals into a decayed successor graph keyed by
// (arch, class):
//
//   - live request sequences: each client's consecutive (arch, class)
//     requests add weight to the edge prev -> next, and
//   - monitor first-use orders: the optimizer's profile feed
//     (optimize.ClassOrder) replays recorded class-transition sequences.
//
// When the cluster owner serves class A it asks Predict(arch, A) for the
// top-k successors whose conditional probability clears MinConfidence and
// piggybacks those entries onto the peer-fill response. Weights decay
// geometrically every DecayEvery observations so the graph tracks the
// current workload instead of its whole history; Heat exposes per-key
// cumulative weight so handoff can pre-warm a joining node hottest-first.
//
// All methods are safe for concurrent use.
package prefetch

import (
	"sort"
	"sync"
)

// Config bounds the predictor. Zero values select the defaults.
type Config struct {
	// TopK is the maximum number of successors Predict returns.
	TopK int
	// MinConfidence is the minimum conditional probability
	// weight(A->B) / sum(weight(A->*)) for B to be predicted after A.
	MinConfidence float64
	// Decay multiplies every edge weight once per DecayEvery observations.
	Decay float64
	// DecayEvery is the observation count between decay sweeps.
	DecayEvery int
	// MaxKeys caps the number of distinct (arch, class) nodes tracked.
	MaxKeys int
	// MaxClients caps the per-client last-request table.
	MaxClients int
}

const (
	defaultTopK          = 3
	defaultMinConfidence = 0.25
	defaultDecay         = 0.5
	defaultDecayEvery    = 1024
	defaultMaxKeys       = 4096
	defaultMaxClients    = 4096
	// minWeight prunes edges whose decayed weight no longer matters.
	minWeight = 0.01
)

func (c Config) withDefaults() Config {
	if c.TopK == 0 {
		c.TopK = defaultTopK
	}
	if c.MinConfidence == 0 {
		c.MinConfidence = defaultMinConfidence
	}
	if c.Decay == 0 {
		c.Decay = defaultDecay
	}
	if c.DecayEvery == 0 {
		c.DecayEvery = defaultDecayEvery
	}
	if c.MaxKeys == 0 {
		c.MaxKeys = defaultMaxKeys
	}
	if c.MaxClients == 0 {
		c.MaxClients = defaultMaxClients
	}
	return c
}

// Prediction is one predicted successor class with its conditional
// probability at prediction time.
type Prediction struct {
	Class      string
	Confidence float64
}

// node is the successor edge set of one (arch, class) key.
type node struct {
	succ map[string]float64 // successor class -> decayed weight
	heat float64            // cumulative observation weight of the key itself
}

// Predictor is a decayed first-use successor graph. The zero value is not
// usable; call New.
type Predictor struct {
	cfg Config

	mu    sync.Mutex
	nodes map[string]*node  // key: arch + "\x00" + class
	last  map[string]string // client -> last requested key
	obs   int               // observations since the last decay sweep
}

// New returns a Predictor with cfg (zero fields replaced by defaults).
func New(cfg Config) *Predictor {
	return &Predictor{
		cfg:   cfg.withDefaults(),
		nodes: make(map[string]*node),
		last:  make(map[string]string),
	}
}

func key(arch, class string) string { return arch + "\x00" + class }

// ObserveRequest records that client requested (arch, class). Consecutive
// requests by the same client for the same arch form a successor edge.
func (p *Predictor) ObserveRequest(client, arch, class string) {
	if client == "" || class == "" {
		return
	}
	k := key(arch, class)
	p.mu.Lock()
	defer p.mu.Unlock()
	if prev, ok := p.last[client]; ok && prev != k {
		// Only chain within one arch: a client switching arch is a new
		// sequence, not a code-path transition.
		if pa, _ := splitKey(prev); pa == arch {
			p.edge(prev, class)
		}
	}
	if len(p.last) >= p.cfg.MaxClients {
		// Bounded table: drop an arbitrary entry rather than grow.
		for c := range p.last {
			delete(p.last, c)
			break
		}
	}
	p.last[client] = k
	p.touch(k)
}

// ObserveOrder replays a recorded class transition sequence (for example
// optimize.ClassOrder of a monitor first-use profile) into the graph.
func (p *Predictor) ObserveOrder(arch string, classes []string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	prev := ""
	for _, c := range classes {
		if c == "" {
			continue
		}
		k := key(arch, c)
		if prev != "" && prev != k {
			p.edge(prev, c)
		}
		p.touch(k)
		prev = k
	}
}

// edge adds weight 1 to prevKey -> class. Caller holds p.mu.
func (p *Predictor) edge(prevKey, class string) {
	n := p.nodes[prevKey]
	if n == nil {
		if len(p.nodes) >= p.cfg.MaxKeys {
			return
		}
		n = &node{succ: make(map[string]float64)}
		p.nodes[prevKey] = n
	}
	n.succ[class]++
}

// touch bumps key heat and runs the decay sweep when due. Caller holds p.mu.
func (p *Predictor) touch(k string) {
	n := p.nodes[k]
	if n == nil {
		if len(p.nodes) >= p.cfg.MaxKeys {
			return
		}
		n = &node{succ: make(map[string]float64)}
		p.nodes[k] = n
	}
	n.heat++
	p.obs++
	if p.obs >= p.cfg.DecayEvery {
		p.obs = 0
		p.decay()
	}
}

// decay multiplies all weights by cfg.Decay and prunes dead edges and keys.
// Caller holds p.mu.
func (p *Predictor) decay() {
	for k, n := range p.nodes {
		n.heat *= p.cfg.Decay
		for c, w := range n.succ {
			w *= p.cfg.Decay
			if w < minWeight {
				delete(n.succ, c)
			} else {
				n.succ[c] = w
			}
		}
		if n.heat < minWeight && len(n.succ) == 0 {
			delete(p.nodes, k)
		}
	}
}

// Predict returns up to TopK successors of (arch, class) whose conditional
// probability clears MinConfidence, highest-confidence first. Ties break by
// class name so the output is deterministic.
func (p *Predictor) Predict(arch, class string) []Prediction {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := p.nodes[key(arch, class)]
	if n == nil || len(n.succ) == 0 {
		return nil
	}
	var total float64
	for _, w := range n.succ {
		total += w
	}
	if total <= 0 {
		return nil
	}
	out := make([]Prediction, 0, len(n.succ))
	for c, w := range n.succ {
		conf := w / total
		if conf >= p.cfg.MinConfidence {
			out = append(out, Prediction{Class: c, Confidence: conf})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Confidence != out[j].Confidence {
			return out[i].Confidence > out[j].Confidence
		}
		return out[i].Class < out[j].Class
	})
	if len(out) > p.cfg.TopK {
		out = out[:p.cfg.TopK]
	}
	return out
}

// Heat returns the decayed cumulative observation weight of (arch, class).
// Handoff uses it to pre-warm a joining node hottest-profile-first.
func (p *Predictor) Heat(arch, class string) float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := p.nodes[key(arch, class)]; n != nil {
		return n.heat
	}
	return 0
}

// Keys returns the number of distinct (arch, class) nodes tracked.
func (p *Predictor) Keys() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.nodes)
}

func splitKey(k string) (arch, class string) {
	for i := 0; i < len(k); i++ {
		if k[i] == 0 {
			return k[:i], k[i+1:]
		}
	}
	return "", k
}
