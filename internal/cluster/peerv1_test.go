package cluster

// White-box tests for the versioned peer protocol: the /peer/v1/batch
// envelope (fill + prefetch piggyback, per-entry attested ingest,
// heat-ordered handoff) — and the absence of the removed pre-v1
// single-key routes.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dvm/internal/attest"
	"dvm/internal/classgen"
	"dvm/internal/proxy"
)

// newBatchTestNode builds a manual-mode single-member node over origin.
func newBatchTestNode(t *testing.T, origin proxy.Origin, cfg Config) *Node {
	t.Helper()
	if cfg.Self == "" {
		cfg.Self = "http://127.0.0.1:1"
	}
	cfg.GossipInterval = -1
	n, err := NewNode(origin, proxy.Config{CacheEnabled: true}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Close)
	return n
}

func walkOrigin(t *testing.T) proxy.MapOrigin {
	t.Helper()
	out := make(proxy.MapOrigin, 3)
	for _, name := range []string{"app/A", "app/B", "app/C"} {
		b := classgen.NewClass(name, "java/lang/Object")
		b.DefaultInit()
		data, err := b.BuildBytes()
		if err != nil {
			t.Fatal(err)
		}
		out[name] = data
	}
	return out
}

// resident returns the transformed bytes the node holds for class.
func resident(t *testing.T, n *Node, class string) []byte {
	t.Helper()
	data, _, ok := n.Proxy().Peek("dvm", class)
	if !ok {
		t.Fatalf("%s not resident", class)
	}
	return data
}

// trainAndWarm teaches the owner the walk A->B->C and makes B and C
// resident in its cache (Peek-able for the piggyback).
func trainAndWarm(t *testing.T, owner *Node) {
	t.Helper()
	owner.FeedProfile("dvm", []string{"app/A", "app/B", "app/C"})
	ctx := context.Background()
	for _, class := range []string{"app/B", "app/C"} {
		if _, err := owner.Request(ctx, proxy.Lookup{Client: "warmer", Arch: "dvm", Class: class}); err != nil {
			t.Fatalf("warm %s: %v", class, err)
		}
	}
}

func postBatch(t *testing.T, url string, req BatchRequest) (*http.Response, BatchResponse) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+batchPath, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	var br BatchResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
			t.Fatalf("bad batch response: %v", err)
		}
	}
	return resp, br
}

func TestBatchFillPiggybacksPredictedSuccessors(t *testing.T) {
	owner := newBatchTestNode(t, walkOrigin(t), Config{})
	trainAndWarm(t, owner)
	srv := httptest.NewServer(owner.Handler())
	defer srv.Close()

	resp, br := postBatch(t, srv.URL, BatchRequest{
		Reason: proxy.ReasonFill, Member: "http://requester:1", Client: "c7",
		Arch: "dvm", Classes: []string{"app/A"},
	})
	if resp.StatusCode != http.StatusOK || len(br.Errors) != 0 {
		t.Fatalf("batch fill: status=%d errors=%+v", resp.StatusCode, br.Errors)
	}
	var fill, pre []BatchEntry
	for _, e := range br.Entries {
		switch e.Reason {
		case proxy.ReasonFill:
			fill = append(fill, e)
		case proxy.ReasonPrefetch:
			pre = append(pre, e)
		}
	}
	if len(fill) != 1 || fill[0].Class != "app/A" || fill[0].Rejected ||
		!bytes.Equal(fill[0].Data, resident(t, owner, "app/A")) {
		t.Fatalf("fill entries = %+v", fill)
	}
	// A's only observed successor is B; C follows B, not A.
	if len(pre) != 1 || pre[0].Class != "app/B" || !bytes.Equal(pre[0].Data, resident(t, owner, "app/B")) {
		t.Fatalf("prefetch entries = %+v, want exactly app/B", pre)
	}
	if got := owner.PrefetchPushed(); got != 1 {
		t.Errorf("prefetch_pushed_total = %d, want 1", got)
	}

	// NoPrefetch declines the piggyback.
	_, br = postBatch(t, srv.URL, BatchRequest{
		Reason: proxy.ReasonFill, Member: "http://requester:1", Client: "c8",
		Arch: "dvm", Classes: []string{"app/A"}, NoPrefetch: true,
	})
	for _, e := range br.Entries {
		if e.Reason == proxy.ReasonPrefetch {
			t.Fatalf("NoPrefetch response still piggybacked %s", e.Class)
		}
	}

	// A byte budget below B's size suppresses the push (budget respected,
	// not overflowed).
	_, br = postBatch(t, srv.URL, BatchRequest{
		Reason: proxy.ReasonFill, Member: "http://requester:1", Client: "c9",
		Arch: "dvm", Classes: []string{"app/A"}, MaxBytes: 3,
	})
	for _, e := range br.Entries {
		if e.Reason == proxy.ReasonPrefetch {
			t.Fatalf("piggyback exceeded MaxBytes: pushed %d-byte %s", len(e.Data), e.Class)
		}
	}
}

func TestFetchPeerIngestsPiggybackedPrefetch(t *testing.T) {
	owner := newBatchTestNode(t, walkOrigin(t), Config{})
	trainAndWarm(t, owner)
	srv := httptest.NewServer(owner.Handler())
	defer srv.Close()

	requester := newBatchTestNode(t, proxy.MapOrigin{}, Config{Self: "http://127.0.0.1:2"})
	res := requester.fetchPeer(context.Background(), srv.URL,
		proxy.Lookup{Client: "c1", Arch: "dvm", Class: "app/A"})
	if res.Outcome != proxy.PeerServed || !bytes.Equal(res.Data, resident(t, owner, "app/A")) {
		t.Fatalf("fetchPeer = %+v", res)
	}
	if got := requester.PrefetchReceived(); got != 1 {
		t.Errorf("prefetch_received_total = %d, want 1", got)
	}
	// The predicted successor is now resident before anyone asks for it.
	if data, _, ok := requester.Proxy().Peek("dvm", "app/B"); !ok || !bytes.Equal(data, resident(t, owner, "app/B")) {
		t.Errorf("piggybacked app/B not resident: ok=%v", ok)
	}
	// And the requested class is NOT marked speculative.
	inserted, _, _, _, _ := requester.Proxy().PrefetchStats()
	if inserted != 1 {
		t.Errorf("prefetch_inserted_total = %d, want 1 (only app/B)", inserted)
	}

	// A requester with prediction disabled declines the piggyback.
	noPre := newBatchTestNode(t, proxy.MapOrigin{}, Config{Self: "http://127.0.0.1:3", PrefetchK: -1})
	res = noPre.fetchPeer(context.Background(), srv.URL,
		proxy.Lookup{Client: "c2", Arch: "dvm", Class: "app/A"})
	if res.Outcome != proxy.PeerServed {
		t.Fatalf("fetchPeer = %+v", res)
	}
	if got := noPre.PrefetchReceived(); got != 0 {
		t.Errorf("prefetch-disabled requester accepted %d piggybacked entries", got)
	}
}

// TestBatchIngestRejectsUnattestedPerEntry is the protocol's trust
// acceptance check: with attestation on, every entry of a mixed push is
// verified on its own — one bad entry cannot ride in on a good batch,
// and zero unattested entries are accepted, whatever their reason.
func TestBatchIngestRejectsUnattestedPerEntry(t *testing.T) {
	key := []byte("batch-test-service-key")
	service := attest.New(attest.Config{Key: key})
	good := []byte("good-artifact")
	n := newBatchTestNode(t, proxy.MapOrigin{}, Config{AttestKey: key})
	srv := httptest.NewServer(n.Handler())
	defer srv.Close()

	resp, br := postBatch(t, srv.URL, BatchRequest{
		Reason: proxy.ReasonReplica, Member: "http://pusher:1",
		Entries: []BatchEntry{
			{Arch: "dvm", Class: "app/Good", Reason: proxy.ReasonReplica, Data: good,
				Att: service.Attest("dvm", "app/Good", good, 1, nil).Encode()},
			{Arch: "dvm", Class: "app/Tampered", Reason: proxy.ReasonReplica, Data: []byte("evil"),
				Att: service.Attest("dvm", "app/Tampered", []byte("original"), 1, nil).Encode()},
			{Arch: "dvm", Class: "app/Naked", Reason: proxy.ReasonPrefetch, Data: []byte("unattested")},
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch ingest status = %d", resp.StatusCode)
	}
	if len(br.Errors) != 2 {
		t.Fatalf("errors = %+v, want tampered + naked rejected", br.Errors)
	}
	for _, be := range br.Errors {
		if be.Class == "app/Good" {
			t.Errorf("verified entry rejected: %+v", be)
		}
		if be.Status != http.StatusBadRequest {
			t.Errorf("rejection status = %d, want 400", be.Status)
		}
	}
	snap := n.Proxy().CacheSnapshot(0, nil)
	if len(snap) != 1 || snap[0].Class != "app/Good" {
		t.Fatalf("cache after mixed push = %+v, want only app/Good", snap)
	}
	if got := n.cAttestRejects.Load(); got != 2 {
		t.Errorf("attest_rejects_total = %d, want 2", got)
	}
	if got := n.ReplicasStored(); got != 1 {
		t.Errorf("replica_stored_total = %d, want 1", got)
	}
}

func TestBatchHandoffServesHeatOrderedEntries(t *testing.T) {
	n := newBatchTestNode(t, walkOrigin(t), Config{})
	ctx := context.Background()
	// Resident in request order A, B, C => MRU order C, B, A.
	for _, class := range []string{"app/A", "app/B", "app/C"} {
		if _, err := n.Request(ctx, proxy.Lookup{Client: "w", Arch: "dvm", Class: class}); err != nil {
			t.Fatal(err)
		}
	}
	// Profile heat says A is the workload's hottest key.
	for i := 0; i < 5; i++ {
		n.FeedProfile("dvm", []string{"app/A"})
	}
	srv := httptest.NewServer(n.Handler())
	defer srv.Close()

	// The single-member ring owns everything, so Member=self matches all.
	resp, br := postBatch(t, srv.URL, BatchRequest{
		Reason: proxy.ReasonHandoff, Member: n.cfg.Self,
	})
	if resp.StatusCode != http.StatusOK || len(br.Entries) != 3 {
		t.Fatalf("handoff: status=%d entries=%d", resp.StatusCode, len(br.Entries))
	}
	if br.Entries[0].Class != "app/A" {
		t.Errorf("hottest-profile key not first: got %s", br.Entries[0].Class)
	}
	for _, e := range br.Entries {
		if e.Reason != proxy.ReasonHandoff {
			t.Errorf("handoff entry %s has reason %q", e.Class, e.Reason)
		}
	}
}

func TestBatchRejectsMalformedRequests(t *testing.T) {
	n := newBatchTestNode(t, walkOrigin(t), Config{})
	srv := httptest.NewServer(n.Handler())
	defer srv.Close()

	// No entries, no classes, no member: nothing to dispatch on.
	resp, _ := postBatch(t, srv.URL, BatchRequest{Reason: proxy.ReasonFill})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty request status = %d, want 400", resp.StatusCode)
	}
	// Path traversal in a class name fails that class, not the envelope.
	resp, br := postBatch(t, srv.URL, BatchRequest{
		Reason: proxy.ReasonFill, Member: "http://r:1", Client: "c",
		Arch: "dvm", Classes: []string{"../etc/passwd", "app/A"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mixed fill status = %d", resp.StatusCode)
	}
	if len(br.Errors) != 1 || br.Errors[0].Status != http.StatusBadRequest {
		t.Errorf("traversal class errors = %+v", br.Errors)
	}
	served := false
	for _, e := range br.Entries {
		if e.Reason == proxy.ReasonFill && e.Class == "app/A" {
			served = true
		}
	}
	if !served {
		t.Error("well-formed class not served alongside a rejected one")
	}
	// GET is not part of the v1 protocol.
	getResp, err := http.Get(srv.URL + batchPath)
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET %s = %d, want 405", batchPath, getResp.StatusCode)
	}
}

// TestPreV1PeerRoutesRemoved pins the other side of the deprecation
// contract: the one-release alias window is over, so the pre-v1
// single-key routes are unrouted (404) and the versioned protocol is
// the only peer surface. The paths are spelled as literals on purpose —
// the constants are gone with the handlers.
func TestPreV1PeerRoutesRemoved(t *testing.T) {
	n := newBatchTestNode(t, walkOrigin(t), Config{})
	srv := httptest.NewServer(n.Handler())
	defer srv.Close()

	gone := []struct {
		method, path, body string
	}{
		{http.MethodGet, "/peer/class/app/A.class", ""},
		{http.MethodPost, "/peer/replica/app/Pushed.class", "replica-bytes"},
		{http.MethodPost, "/peer/handoff", `{"member":"http://127.0.0.1:1"}`},
		{http.MethodPost, "/gossip", "{}"},
		{http.MethodPost, "/peer/attest/app/A.class", "raw-bytes"},
	}
	for _, tc := range gone {
		req, _ := http.NewRequest(tc.method, srv.URL+tc.path, strings.NewReader(tc.body))
		req.Header.Set("X-DVM-Arch", "dvm")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s %s = %d, want 404 (pre-v1 route must be unrouted)", tc.method, tc.path, resp.StatusCode)
		}
	}

	// The versioned protocol still answers on the same mux.
	resp, br := postBatch(t, srv.URL, BatchRequest{
		Reason: proxy.ReasonFill, Member: "http://127.0.0.1:1", Arch: "dvm", Classes: []string{"app/A"},
	})
	if resp.StatusCode != http.StatusOK || len(br.Entries) != 1 {
		t.Fatalf("v1 batch fill: status=%d entries=%d", resp.StatusCode, len(br.Entries))
	}
	if !bytes.Equal(br.Entries[0].Data, resident(t, n, "app/A")) {
		t.Error("v1 batch fill served different bytes than the resident artifact")
	}
}

// TestBatchFillDrainingShed pins the middleware behavior every v1
// request shares: a draining node answers 429 + X-DVM-Draining.
func TestBatchFillDrainingShed(t *testing.T) {
	n := newBatchTestNode(t, walkOrigin(t), Config{})
	n.mship.DrainSelf()
	srv := httptest.NewServer(n.Handler())
	defer srv.Close()
	resp, _ := postBatch(t, srv.URL, BatchRequest{
		Reason: proxy.ReasonFill, Member: "http://r:1", Arch: "dvm", Classes: []string{"app/A"},
	})
	if resp.StatusCode != http.StatusTooManyRequests || resp.Header.Get(drainingHeader) != "1" {
		t.Errorf("draining batch: status=%d draining=%q", resp.StatusCode, resp.Header.Get(drainingHeader))
	}
}

// The owner's predictor learns across requester nodes without mixing
// their client sequences: same client id on two members must not form a
// false edge.
func TestServeBatchFillNamespacesClients(t *testing.T) {
	owner := newBatchTestNode(t, walkOrigin(t), Config{})
	srv := httptest.NewServer(owner.Handler())
	defer srv.Close()
	// Member 1's "c" requests A; member 2's "c" requests C. Without
	// namespacing this would look like one client walking A -> C.
	for member, class := range map[string]string{"http://m1:1": "app/A", "http://m2:1": "app/C"} {
		if _, br := postBatch(t, srv.URL, BatchRequest{
			Reason: proxy.ReasonFill, Member: member, Client: "c",
			Arch: "dvm", Classes: []string{class},
		}); len(br.Errors) != 0 {
			t.Fatalf("fill errors: %+v", br.Errors)
		}
	}
	if preds := owner.predictor.Predict("dvm", "app/A"); len(preds) != 0 {
		t.Errorf("cross-member client ids formed a false edge: %+v", preds)
	}
}

func TestPushEntriesReportsAcceptedCount(t *testing.T) {
	n := newBatchTestNode(t, proxy.MapOrigin{}, Config{})
	srv := httptest.NewServer(n.Handler())
	defer srv.Close()
	pusher := newBatchTestNode(t, proxy.MapOrigin{}, Config{Self: "http://127.0.0.1:4"})
	entries := []BatchEntry{
		{Arch: "dvm", Class: "app/X", Reason: proxy.ReasonReplica, Data: []byte("x")},
		{Arch: "dvm", Class: "", Reason: proxy.ReasonReplica, Data: []byte("bad")}, // rejected
	}
	if got := pusher.pushEntries(context.Background(), srv.URL, entries); got != 1 {
		t.Errorf("pushEntries = %d accepted, want 1", got)
	}
	if _, _, ok := n.Proxy().Peek("dvm", "app/X"); !ok {
		t.Error("accepted entry not stored")
	}
}
