package cluster

// Quorum attestation: the cluster half of internal/attest. On an
// owner-side cache miss the proxy's Attest hook lands here; for keys
// the policy selects, the owner POSTs the *origin* bytes to ring
// successors over /peer/attest, each variant runs its own pipeline and
// answers with only the SHA-256 digest of what it would have served,
// and the owner compares votes. Agreement seals the artifact under the
// service key; every later hop that moves the bytes (peer fill,
// replica push, handoff) re-verifies that seal instead of trusting the
// wire.
//
// Divergence is corruption evidence, not a transport failure. The
// minority voter is flagged in the authority's suspicion ledger; after
// K divergences the peer is quarantined — excluded from variant
// selection and skipped by the fill chain — and surfaced in /healthz.
// A divergent first round is re-run at a higher quorum (one extra
// variant at a time) until a strict majority emerges. If the majority
// contradicts the *local* output, the flight fails: a node never
// serves bytes its own fleet outvoted. If no majority exists, nothing
// can be trusted and the flight fails too.
//
// Variant dispatch reuses the peer machinery end to end: per-peer
// circuit breakers, admission backpressure (a pressured or draining
// variant sheds with 429 and the owner moves to the next candidate),
// epoch piggybacking, and trace spans across the hop.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"dvm/internal/attest"
	"dvm/internal/proxy"
	"dvm/internal/telemetry"
)

// attestVote is the variant response wire form: POST
// /peer/v1/attest/<name>.class with X-DVM-Arch and the payload bytes as
// the body answers JSON {"digest": "<hex sha-256>"} of the variant's
// own pipeline (or compiler) output.
type attestVote struct {
	Digest string `json:"digest"`
}

// attestModeHeader selects what a variant does with the posted bytes:
// absent (or "transform") means "run your pipeline over these origin
// bytes and vote with the output digest"; attestModeCompile means "the
// body is an already transformed base-architecture artifact — derive
// the compiled form with your own AOT compiler and vote with that
// digest". The compile mode is how the shared AOT code cache keeps the
// N-variant trust property without shipping origin bytes a second time.
const (
	attestModeHeader  = "X-DVM-Attest-Mode"
	attestModeCompile = "compile"
)

// maxAttestExtraRounds bounds tie-break escalation: after the initial
// quorum, at most this many extra variants are consulted one at a time
// before the round is declared unresolvable.
const maxAttestExtraRounds = 2

// attestFlight is the proxy's Attest hook: run the quorum protocol for
// one freshly transformed artifact and return the sealed attestation.
// Runs on the flight goroutine under the admission slot, so the
// variants' round-trips are part of the key's one-time service cost.
func (n *Node) attestFlight(ctx context.Context, arch, class string, raw, out []byte) (*attest.Attestation, error) {
	return n.attestQuorum(ctx, arch, class, raw, out, "")
}

// attestCompileFlight is the proxy's AttestCompile hook: the quorum
// protocol for an AOT-derived artifact. The dispatched payload is the
// base-architecture artifact (not origin bytes), and variants vote in
// compile mode — each re-derives with its own compiler and answers
// with the digest, so compiler corruption diverges exactly like
// pipeline corruption does on the transform route.
func (n *Node) attestCompileFlight(ctx context.Context, arch, class string, base, out []byte) (*attest.Attestation, error) {
	return n.attestQuorum(ctx, arch, class, base, out, attestModeCompile)
}

// attestQuorum is the shared quorum engine behind both hooks: dispatch
// payload to ring successors under mode, tally digests against the
// local out, escalate ties, seal on agreement.
func (n *Node) attestQuorum(ctx context.Context, arch, class string, payload, out []byte, mode string) (*attest.Attestation, error) {
	local := attest.Digest(out)
	want := n.authority.QuorumFor(arch, class)
	if want <= 1 {
		return n.authority.Attest(arch, class, out, 1, []string{n.cfg.Self}), nil
	}
	candidates := n.variantCandidates(arch, class)
	votes, rest := n.collectVotes(ctx, arch, class, payload, candidates, want-1, mode)
	if len(votes) == 0 {
		// Every candidate was down, shedding, or already quarantined.
		// Availability wins: seal at quorum 1 (counted, so a fleet that
		// silently stopped cross-checking is visible in telemetry).
		n.cAttestDegraded.Inc()
		return n.authority.Attest(arch, class, out, 1, []string{n.cfg.Self}), nil
	}
	majority, minority := attest.Tally(n.cfg.Self, local, votes)
	// Tie-break: a split vote re-runs at a higher quorum, one extra
	// variant per round, until a strict majority emerges or the
	// candidate pool (or the round budget) is exhausted.
	for extra := 0; majority == "" && extra < maxAttestExtraRounds && len(rest) > 0; extra++ {
		var more []attest.Vote
		more, rest = n.collectVotes(ctx, arch, class, payload, rest, 1, mode)
		if len(more) == 0 {
			break
		}
		votes = append(votes, more...)
		majority, minority = attest.Tally(n.cfg.Self, local, votes)
	}
	if majority == "" {
		for _, v := range votes {
			if v.Digest != local {
				n.noteDivergence(v.Voter)
			}
		}
		return nil, fmt.Errorf("%w: local %.12s vs %d variant votes", attest.ErrNoQuorum, local, len(votes))
	}
	for _, m := range minority {
		n.noteDivergence(m)
	}
	if majority != local {
		// This node is the minority: its own pipeline (or memory, or
		// compiler) produced bytes the fleet outvoted. The flight fails —
		// corrupt output must never be cached or served — and the local
		// divergence is in the ledger for the operator to see.
		return nil, fmt.Errorf("%w: local %.12s, fleet agreed on %.12s", attest.ErrLocalDivergence, local, majority)
	}
	voters := []string{n.cfg.Self}
	for _, v := range votes {
		if v.Digest == majority {
			voters = append(voters, v.Voter)
		}
	}
	return n.authority.Attest(arch, class, out, len(voters), voters), nil
}

// variantCandidates lists the peers eligible to vote on a key: the
// ring's successor chain for the key (deterministic, so repeated rounds
// for one key ask the same nodes first), minus self, minus quarantined
// and non-alive members.
func (n *Node) variantCandidates(arch, class string) []string {
	ring := n.currentRing()
	owners := ring.Owners(KeyFor(arch, class), ring.Size())
	out := make([]string, 0, len(owners))
	for _, o := range owners {
		if o == n.cfg.Self || n.authority.Quarantined(o) {
			continue
		}
		if n.mship.State(o) != stateAlive {
			continue
		}
		out = append(out, o)
	}
	return out
}

// collectVotes gathers up to need variant votes from candidates,
// dispatching concurrently and refilling from the remaining pool as
// variants fail or shed. Returns the votes and the unused candidates
// (the tie-break pool).
func (n *Node) collectVotes(ctx context.Context, arch, class string, raw []byte, candidates []string, need int, mode string) ([]attest.Vote, []string) {
	votes := make([]attest.Vote, 0, need)
	i := 0
	for len(votes) < need && i < len(candidates) {
		batch := candidates[i:]
		if want := need - len(votes); len(batch) > want {
			batch = batch[:want]
		}
		i += len(batch)
		type result struct {
			vote attest.Vote
			ok   bool
		}
		ch := make(chan result, len(batch))
		for _, peer := range batch {
			go func(peer string) {
				d, err := n.variantDigest(ctx, peer, arch, class, raw, mode)
				ch <- result{attest.Vote{Voter: peer, Digest: d}, err == nil}
			}(peer)
		}
		for range batch {
			if r := <-ch; r.ok {
				votes = append(votes, r.vote)
			}
		}
	}
	return votes, candidates[i:]
}

// variantDigest asks one peer to transform raw and vote. The hop runs
// under the peer's circuit breaker: a 429 (backpressure or drain) is a
// healthy shed, a transport failure feeds the breaker like any other
// peer-protocol failure.
func (n *Node) variantDigest(ctx context.Context, peer, arch, class string, raw []byte, mode string) (string, error) {
	b := n.breaker(peer)
	if err := b.Allow(); err != nil {
		return "", err
	}
	tr := telemetry.FromContext(ctx)
	hopStart := tr.Elapsed()
	span := tr.StartSpan(n.cfg.Self, "attest.variant")
	defer span.End()
	ctx, cancel := context.WithTimeout(ctx, n.cfg.PeerTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, peer+attestV1Prefix+class+".class", bytes.NewReader(raw))
	if err != nil {
		return "", err
	}
	req.Header.Set("X-DVM-Arch", arch)
	if mode != "" {
		req.Header.Set(attestModeHeader, mode)
	}
	req.Header.Set("X-DVM-Client", "peer:"+n.cfg.Self)
	req.Header.Set("Content-Type", "application/java-vm")
	req.Header.Set(epochHeader, fmtEpoch(n.mship.Epoch()))
	if id := tr.ID(); id != "" {
		req.Header.Set(telemetry.TraceHeader, id)
	}
	resp, err := n.client.Do(req)
	if err != nil {
		b.Failure()
		return "", err
	}
	defer resp.Body.Close()
	n.noteEpoch(resp.Header.Get(epochHeader))
	if resp.StatusCode == http.StatusTooManyRequests {
		// Deliberate shed: the variant is healthy but loaded or leaving.
		if resp.Header.Get(drainingHeader) == "1" {
			n.mship.NoteDraining(peer)
		}
		b.Success()
		n.cPeerBackpressure.Inc()
		return "", fmt.Errorf("cluster: variant %s shed: %w", peer, proxy.ErrOverloaded)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		b.Failure()
		return "", fmt.Errorf("cluster: variant %s: %s: %s", peer, resp.Status, strings.TrimSpace(string(body)))
	}
	var v attestVote
	if err := json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&v); err != nil || len(v.Digest) != 64 {
		b.Failure()
		return "", fmt.Errorf("cluster: variant %s: bad vote: %v", peer, err)
	}
	b.Success()
	n.mship.Refute(peer) // direct evidence of life
	if spans, derr := telemetry.DecodeSpans(resp.Header.Get(telemetry.TraceSpansHeader)); derr == nil {
		tr.AppendShifted(spans, hopStart)
	}
	return v.Digest, nil
}

// handleAttest answers a variant request: run the posted origin bytes
// through this node's own pipeline and return the output digest. Only
// the digest crosses the wire back — the owner already has bytes; what
// it wants is an independent opinion. Admission pressure and draining
// shed the request (429): cross-checking must never out-compete serving
// clients.
func (n *Node) handleAttest(w http.ResponseWriter, r *http.Request) {
	tr, ok := n.peerEnter(w, r, http.MethodPost, true)
	if !ok {
		return
	}
	name := strings.TrimPrefix(r.URL.Path, attestV1Prefix)
	name = strings.TrimSuffix(name, ".class")
	arch := r.Header.Get("X-DVM-Arch")
	if name == "" || strings.Contains(name, "..") || arch == "" {
		http.Error(w, "bad attest request", http.StatusBadRequest)
		return
	}
	raw, err := io.ReadAll(io.LimitReader(r.Body, maxPeerClassBytes+1))
	if err != nil || len(raw) == 0 || len(raw) > maxPeerClassBytes {
		http.Error(w, "bad attest payload", http.StatusBadRequest)
		return
	}
	ctx := telemetry.WithTrace(r.Context(), tr)
	var digest string
	var terr error
	if r.Header.Get(attestModeHeader) == attestModeCompile {
		// Compile-mode vote: the body is a base-architecture artifact;
		// answer with the digest of this node's own derivation.
		span := tr.StartSpan(n.cfg.Self, "attest.compile")
		digest, terr = n.local.CompileDigest(ctx, arch, name, raw)
		span.End()
	} else {
		span := tr.StartSpan(n.cfg.Self, "attest.transform")
		digest, terr = n.local.TransformDigest(ctx, arch, name, raw)
		span.End()
	}
	w.Header().Set(telemetry.TraceSpansHeader, telemetry.EncodeSpans(tr.Spans()))
	if terr != nil {
		http.Error(w, terr.Error(), http.StatusInternalServerError)
		return
	}
	n.cAttestVariants.Inc()
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(attestVote{Digest: digest})
}

// noteDivergence records one minority vote (or one corrupt payload
// served) by peer: the divergence counter, the suspicion ledger, and —
// on crossing the threshold — the quarantine log line. Self-divergence
// lands in the ledger too; the operator sees a sick node flag itself.
func (n *Node) noteDivergence(peer string) {
	n.cAttestDivergence.Inc()
	already := n.authority.Quarantined(peer)
	if n.authority.Divergence(peer) && !already {
		n.cAttestQuarantines.Inc()
	}
}

// verifyPayload re-verifies an attestation header against received
// bytes on behalf of a hop handler. With no authority configured it is
// a no-op (nil attestation allowed).
func (n *Node) verifyPayload(header, arch, class string, data []byte) (*attest.Attestation, error) {
	if n.authority == nil {
		return nil, nil
	}
	att, err := attest.Decode(header)
	if err != nil {
		return nil, err
	}
	if err := n.authority.Verify(att, arch, class, data); err != nil {
		return nil, err
	}
	return att, nil
}

// attestRejection classifies a peer-fill error as an attestation
// rejection (unattested or failed verification) — the link is healthy,
// the payload is not.
func attestRejection(err error) bool {
	return errors.Is(err, attest.ErrVerify) || errors.Is(err, attest.ErrUnattested)
}

// Suspicions exposes the authority's ledger (nil authority = none).
func (n *Node) Suspicions() []attest.Suspicion {
	if n.authority == nil {
		return nil
	}
	return n.authority.Suspicions()
}

// Quarantined reports whether peer has crossed the divergence
// threshold on this node's ledger.
func (n *Node) Quarantined(peer string) bool {
	return n.authority != nil && n.authority.Quarantined(peer)
}
