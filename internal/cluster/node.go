package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"dvm/internal/attest"
	"dvm/internal/compiler"
	"dvm/internal/prefetch"
	"dvm/internal/proxy"
	"dvm/internal/resilience"
	"dvm/internal/telemetry"
)

// maxPeerClassBytes bounds one peer response read; mirrors the client
// loader's bound so a misbehaving peer cannot OOM a node.
const maxPeerClassBytes = 16 << 20

// maxHotKeys bounds the per-node hot-key counter table. When it fills,
// every count is halved and the zeros dropped — aging that sheds a
// flood of distinct cold keys (count 1) while a genuinely hot key's
// count survives the pressure and can still cross the threshold.
const maxHotKeys = 4096

// DefaultReplication is the ring owners per key when Config leaves
// Replication zero: a primary plus one warm successor, so any single
// death degrades to a replica hit instead of a cold start.
const DefaultReplication = 2

// Config parameterizes one cluster node.
type Config struct {
	// Self is this node's peer URL (e.g. "http://10.0.0.1:8642"); the
	// other members reach its /peer/v1/* endpoints there.
	Self string
	// Peers seeds the membership view, including Self (added if absent).
	// Unlike the pre-gossip design this need not be the full fleet: any
	// subset that overlaps the live cluster suffices, and the first
	// gossip exchange pulls in the rest. A node started with only itself
	// joins nothing until someone gossips to it.
	Peers []string
	// VirtualNodes per member on the ring (0 = DefaultVirtualNodes).
	VirtualNodes int
	// Seed perturbs ring placement; all members must share it.
	Seed uint64
	// Replication is the ring owners per key: the primary plus
	// Replication-1 successors holding pushed warm copies
	// (0 = DefaultReplication; 1 disables replication).
	Replication int
	// GossipInterval is the membership anti-entropy period
	// (0 = default 500ms; <0 = manual mode: no background goroutines,
	// tests drive GossipNow / PullHandoff explicitly).
	GossipInterval time.Duration
	// SuspectTimeout is how long an unrefuted suspect survives before
	// being declared dead and dropped from the ring (0 = default 3s).
	SuspectTimeout time.Duration
	// HandoffMaxBytes bounds one cache-handoff transfer
	// (0 = default 8 MiB).
	HandoffMaxBytes int
	// HandoffTimeout bounds one handoff pull (0 = default 5s).
	HandoffTimeout time.Duration
	// HotThreshold is how many peer fills of one key this node performs
	// before replicating the key into its own cache (0 = default 8,
	// <0 = never replicate).
	HotThreshold int
	// PeerTimeout bounds one peer class fetch (default 3s).
	PeerTimeout time.Duration
	// BreakerThreshold/BreakerCooldown parameterize the per-peer circuit
	// breakers (defaults as in internal/resilience).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Transport overrides the peer HTTP transport (fault injection via
	// netsim.LinkFaults / netsim.FaultyTransport).
	Transport http.RoundTripper

	// PrefetchK is how many predicted successors an owner piggybacks
	// onto each fill it serves over /peer/v1/batch (0 = default 3,
	// <0 = prediction and piggybacking disabled).
	PrefetchK int
	// PrefetchBudget bounds the piggybacked prefetch bytes per fill
	// response, both offered by the requester and clamped by the owner
	// (0 = default 256 KiB).
	PrefetchBudget int
	// PrefetchConfidence is the minimum successor confidence — the
	// edge's share of its source key's outgoing weight — for a
	// prediction to be pushed (0 = default 0.25).
	PrefetchConfidence float64

	// AttestKey, when set, enables quorum attestation: every locally
	// transformed artifact is sealed under this shared service key, and
	// every hop that moves artifact bytes (peer fill, replica push,
	// handoff) rejects payloads that fail re-verification. All members
	// must share the key.
	AttestKey []byte
	// AttestQuorum is the variant count per attested key, owner included
	// (0 or 1 = local-only sealing: today's single-rewrite trust model,
	// no variant traffic).
	AttestQuorum int
	// AttestPolicy selects which keys run at AttestQuorum: "always"
	// (default), "sampled" (1-in-AttestSampleRate by key hash), or "hot"
	// (keys past HotThreshold; others seal at quorum 1).
	AttestPolicy string
	// AttestSampleRate is the 1-in-N rate for the "sampled" policy
	// (0 = default 16).
	AttestSampleRate int
	// QuarantineAfter is how many divergences put a peer in quarantine
	// (0 = attest.DefaultQuarantineAfter).
	QuarantineAfter int

	// AOTBaseArch, when set, enables the fleet-shared AOT code cache:
	// a miss for the compiler's native architecture whose base-arch
	// artifact is already cached is answered by deriving (compiling)
	// those bytes instead of re-fetching and re-running the whole
	// pipeline. With attestation on, derived artifacts are sealed by a
	// compile-mode quorum (variants re-derive and vote). The value is
	// the architecture string base artifacts are requested under (the
	// pipeline output without the compile step, e.g. "jvm").
	AOTBaseArch string
}

// defaultHotThreshold is the peer-fill count after which a key is
// replicated locally when Config.HotThreshold is zero.
const defaultHotThreshold = 8

// Node is one member of a sharded proxy cluster: a local proxy whose
// miss path consults the ring, the peer-protocol client and server
// halves, and the live-membership machinery (gossip.go, membership.go,
// handoff.go).
type Node struct {
	cfg    Config
	local  *proxy.Proxy
	client *http.Client
	mship  *membership

	ringMu sync.RWMutex
	ring   *Ring // rebuilt on every membership change; read via currentRing

	breakerMu sync.Mutex
	breakers  map[string]*resilience.Breaker

	hotMu sync.Mutex
	hot   map[string]int

	// authority is the attestation engine (nil = attestation off).
	authority *attest.Authority

	// predictor is the decayed first-use successor graph feeding the
	// prefetch piggyback and the handoff heat ordering (nil = disabled).
	predictor *prefetch.Predictor

	gossip    gossipState
	closed    chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
	pokeCh    chan struct{} // coalesced "gossip now" requests
	handoffCh chan struct{} // coalesced "pull handoff" requests
	replCh    chan replItem // replication push queue

	// Cluster counters live in the local proxy's telemetry registry, so
	// one /metrics scrape covers the node end to end.
	cPeerErrors  *telemetry.Counter   // failed peer-fill attempts (fell back to local origin)
	cPeerServed  *telemetry.Counter   // peer-protocol requests this node answered as owner
	cHotReplicas *telemetry.Counter   // keys promoted into the local cache as hot
	// cPeerBackpressure counts fills the owner shed with 429: deliberate
	// overload backpressure, not peer failures (no breaker penalty).
	cPeerBackpressure *telemetry.Counter
	cGossipRounds     *telemetry.Counter // gossip exchanges handled or initiated
	cGossipFails      *telemetry.Counter // failed gossip exchanges
	cSuspects         *telemetry.Counter // suspicions this node raised
	cDeaths           *telemetry.Counter // suspects this node promoted to dead
	cEpochMismatch    *telemetry.Counter // piggybacked epochs that disagreed with ours
	cReplicaPush      *telemetry.Counter // replicas pushed to successors
	cReplicaStored    *telemetry.Counter // replicas accepted into the local cache
	cReplicaDrops     *telemetry.Counter // replication pushes dropped (queue full)
	cHandoffKeys      *telemetry.Counter // keys transferred by handoff (either direction)
	// Attestation counters (zero when attestation is off).
	cAttestDivergence  *telemetry.Counter // minority votes + corrupt payloads, per voter per round
	cAttestVariants    *telemetry.Counter // variant votes this node served
	cAttestRejects     *telemetry.Counter // inbound payloads rejected for missing/failed attestation
	cAttestDegraded    *telemetry.Counter // quorum rounds sealed at 1 because no variant was reachable
	cAttestQuarantines *telemetry.Counter // peers newly quarantined by this node's ledger
	// Prefetch counters (zero when prediction is off).
	cPrefetchPushed   *telemetry.Counter   // successor entries piggybacked onto served fills
	cPrefetchReceived *telemetry.Counter   // piggybacked entries accepted into the local cache
	hPeerFetch        *telemetry.Histogram // peer-protocol hop latency
	hHandoff          *telemetry.Histogram // handoff pull duration
	hPrefetchBatch    *telemetry.Histogram // piggybacked bytes per fill (byte-valued buckets)
}

// NewNode builds the node's proxy over origin with pcfg and wires its
// miss path into the cluster. pcfg.PeerFill is overwritten; so is
// pcfg.OnTransformed when replication is on.
func NewNode(origin proxy.Origin, pcfg proxy.Config, cfg Config) (*Node, error) {
	if cfg.Self == "" {
		return nil, fmt.Errorf("cluster: Config.Self is required")
	}
	cfg.Self = strings.TrimSuffix(cfg.Self, "/")
	peers := make([]string, 0, len(cfg.Peers))
	for _, p := range cfg.Peers {
		if p = strings.TrimSuffix(p, "/"); p != "" && p != cfg.Self {
			peers = append(peers, p)
		}
	}
	if cfg.HotThreshold == 0 {
		cfg.HotThreshold = defaultHotThreshold
	}
	if cfg.PeerTimeout <= 0 {
		cfg.PeerTimeout = 3 * time.Second
	}
	if cfg.Replication == 0 {
		cfg.Replication = DefaultReplication
	}
	if cfg.GossipInterval == 0 {
		cfg.GossipInterval = 500 * time.Millisecond
	}
	if cfg.SuspectTimeout <= 0 {
		cfg.SuspectTimeout = 3 * time.Second
	}
	if cfg.HandoffMaxBytes <= 0 {
		cfg.HandoffMaxBytes = defaultHandoffMaxBytes
	}
	if cfg.HandoffTimeout <= 0 {
		cfg.HandoffTimeout = 5 * time.Second
	}
	if cfg.PrefetchBudget <= 0 {
		cfg.PrefetchBudget = defaultPrefetchBudget
	}
	n := &Node{
		cfg:       cfg,
		client:    &http.Client{Transport: cfg.Transport},
		mship:     newMembership(cfg.Self, peers, nil),
		breakers:  make(map[string]*resilience.Breaker),
		hot:       make(map[string]int),
		closed:    make(chan struct{}),
		pokeCh:    make(chan struct{}, 1),
		handoffCh: make(chan struct{}, 1),
		replCh:    make(chan replItem, replQueueLen),
	}
	n.gossip.fails = make(map[string]int)
	ring, err := NewRing(n.mship.RingMembers(), cfg.VirtualNodes, cfg.Seed)
	if err != nil {
		return nil, err
	}
	n.ring = ring
	n.mship.onChange = func(ringChanged bool) {
		if !ringChanged {
			return
		}
		n.rebuildRing()
		if cfg.GossipInterval > 0 {
			n.pokeHandoff()
			n.pokeGossip()
		}
	}
	pcfg.PeerFill = n.fill
	if cfg.Replication > 1 {
		pcfg.OnTransformed = n.onTransformed
	}
	if cfg.PrefetchK >= 0 {
		n.predictor = prefetch.New(prefetch.Config{
			TopK:          cfg.PrefetchK,
			MinConfidence: cfg.PrefetchConfidence,
		})
	}
	if len(cfg.AttestKey) > 0 {
		mode, err := attest.ParseMode(cfg.AttestPolicy)
		if err != nil {
			return nil, err
		}
		n.authority = attest.New(attest.Config{
			Key: cfg.AttestKey,
			Policy: attest.Policy{
				Quorum:     cfg.AttestQuorum,
				Mode:       mode,
				SampleRate: cfg.AttestSampleRate,
				Hot:        n.isHotKey,
			},
			QuarantineAfter: cfg.QuarantineAfter,
		})
		pcfg.Attest = n.attestFlight
	}
	if cfg.AOTBaseArch != "" && pcfg.AOT == nil {
		pcfg.AOT = &proxy.AOTConfig{
			Arch:     compiler.ArchDVM,
			BaseArch: cfg.AOTBaseArch,
			Compile:  compiler.CompileArtifact,
		}
	}
	if pcfg.AOT != nil && pcfg.AOT.AttestCompile == nil && len(cfg.AttestKey) > 0 {
		// Derived artifacts get the same N-variant cross-check as
		// transformed ones, in compile mode.
		pcfg.AOT.AttestCompile = n.attestCompileFlight
	}
	if pcfg.Node == "" {
		pcfg.Node = cfg.Self // trace spans name the node by its peer URL
	}
	n.local = proxy.New(origin, pcfg)
	reg := n.local.Telemetry()
	n.cPeerErrors = reg.Counter("peer_errors_total")
	n.cPeerServed = reg.Counter("peer_served_total")
	n.cHotReplicas = reg.Counter("hot_replicas_total")
	n.cPeerBackpressure = reg.Counter("peer_backpressure_total")
	n.cGossipRounds = reg.Counter("gossip_rounds_total")
	n.cGossipFails = reg.Counter("gossip_failures_total")
	n.cSuspects = reg.Counter("member_suspects_total")
	n.cDeaths = reg.Counter("member_deaths_total")
	n.cEpochMismatch = reg.Counter("epoch_mismatch_total")
	n.cReplicaPush = reg.Counter("replica_push_total")
	n.cReplicaStored = reg.Counter("replica_stored_total")
	n.cReplicaDrops = reg.Counter("replica_dropped_total")
	n.cHandoffKeys = reg.Counter("handoff_keys_total")
	n.cAttestDivergence = reg.Counter("attest_divergence_total")
	n.cAttestVariants = reg.Counter("attest_variants_total")
	n.cAttestRejects = reg.Counter("attest_rejects_total")
	n.cAttestDegraded = reg.Counter("attest_degraded_total")
	n.cAttestQuarantines = reg.Counter("attest_quarantines_total")
	if n.authority != nil {
		reg.Gauge("attest_quarantined_peers", func() float64 {
			q := 0
			for _, s := range n.authority.Suspicions() {
				if s.Quarantined {
					q++
				}
			}
			return float64(q)
		})
	}
	n.cPrefetchPushed = reg.Counter("prefetch_pushed_total")
	n.cPrefetchReceived = reg.Counter("prefetch_received_total")
	n.hPeerFetch = reg.Histogram("peer_fetch_seconds", nil)
	n.hHandoff = reg.Histogram("handoff_seconds", nil)
	// Byte-valued buckets: the histogram type counts time.Durations, so
	// the bounds are byte counts cast to Duration (1 KiB .. 4 MiB).
	n.hPrefetchBatch = reg.Histogram("prefetch_batch_bytes", []time.Duration{
		1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20,
	})
	reg.Gauge("ring_members", func() float64 { return float64(n.currentRing().Size()) })
	reg.Gauge("membership_epoch", func() float64 { return float64(n.mship.Epoch()) })
	for st, name := range map[memberState]string{
		stateAlive: "membership_alive", stateSuspect: "membership_suspect",
		stateDead: "membership_dead", stateDraining: "membership_draining",
	} {
		st := st
		reg.Gauge(name, func() float64 { return float64(n.mship.counts()[st]) })
	}
	// Background machinery. Replication pushes always need their worker;
	// the gossip ticker and the automatic handoff trigger stay off in
	// manual mode (GossipInterval < 0) so tests control every transition.
	n.wg.Add(1)
	go n.replWorker()
	if cfg.GossipInterval > 0 {
		n.wg.Add(2)
		go n.gossipLoop()
		go n.handoffWorker()
		if len(peers) > 0 {
			// A booting node is a joining node: announce the join with one
			// immediate gossip round (so the peers' handoff filters already
			// count this node as an owner), then pull the keys it now owns
			// from the fleet's caches. On a cold fleet this is a cheap
			// no-op; on a live fleet it is the warm-up that prevents a
			// join-time miss storm.
			n.wg.Add(1)
			go func() {
				defer n.wg.Done()
				ctx, cancel := context.WithTimeout(context.Background(), 2*n.cfg.PeerTimeout)
				defer cancel()
				n.gossipRound(ctx)
				n.pokeHandoff()
			}()
		}
	}
	return n, nil
}

// rebuildRing recomputes the ring from the current ring-eligible
// membership.
func (n *Node) rebuildRing() {
	ring, err := NewRing(n.mship.RingMembers(), n.cfg.VirtualNodes, n.cfg.Seed)
	if err != nil {
		return // membership guarantees at least self; unreachable
	}
	n.ringMu.Lock()
	n.ring = ring
	n.ringMu.Unlock()
}

// currentRing returns the live ring snapshot.
func (n *Node) currentRing() *Ring {
	n.ringMu.RLock()
	defer n.ringMu.RUnlock()
	return n.ring
}

// Close stops the node's background goroutines (gossip, handoff,
// replication). It does not announce a departure — that is Drain; a
// bare Close looks to the fleet like a crash, which is exactly what the
// failure-detection tests want.
func (n *Node) Close() {
	n.closeOnce.Do(func() { close(n.closed) })
	n.wg.Wait()
}

// Proxy returns the node's local proxy (stats, diagnostics).
func (n *Node) Proxy() *proxy.Proxy { return n.local }

// Ring returns the node's current view of the ring.
func (n *Node) Ring() *Ring { return n.currentRing() }

// Self returns this node's peer URL.
func (n *Node) Self() string { return n.cfg.Self }

// Request serves one class through the cluster-aware local proxy.
func (n *Node) Request(ctx context.Context, l proxy.Lookup) (proxy.Result, error) {
	return n.local.Request(ctx, l)
}

// localOnlyKey marks a context as coming in over the peer protocol:
// such a request must be answered from this node (cache or origin) and
// never forwarded again, so a transient membership disagreement between
// two nodes' ring views cannot turn into a forwarding loop.
type localOnlyKey struct{}

func withLocalOnly(ctx context.Context) context.Context {
	return context.WithValue(ctx, localOnlyKey{}, true)
}

func isLocalOnly(ctx context.Context) bool {
	v, _ := ctx.Value(localOnlyKey{}).(bool)
	return v
}

// breaker returns (creating on demand) the circuit breaker guarding the
// link to peer. A breaker tripping open is the data path's failure
// evidence: it feeds the membership layer's suspicion directly, so a
// dead peer starts its suspect clock on the first tripped fill rather
// than waiting for gossip to notice.
func (n *Node) breaker(peer string) *resilience.Breaker {
	n.breakerMu.Lock()
	defer n.breakerMu.Unlock()
	b, ok := n.breakers[peer]
	if !ok {
		peer := peer
		b = resilience.NewBreaker(resilience.BreakerConfig{
			Threshold: n.cfg.BreakerThreshold,
			Cooldown:  n.cfg.BreakerCooldown,
			OnStateChange: func(_, to resilience.BreakerState) {
				if to == resilience.Open {
					n.suspect(peer)
					if n.cfg.GossipInterval > 0 {
						n.pokeGossip()
					}
				}
			},
		})
		n.breakers[peer] = b
	}
	return b
}

// noteFill counts a peer fill for key and reports whether the key has
// crossed the hot threshold and should be replicated locally.
func (n *Node) noteFill(key string) bool {
	if n.cfg.HotThreshold < 0 {
		return false
	}
	n.hotMu.Lock()
	defer n.hotMu.Unlock()
	if len(n.hot) >= maxHotKeys {
		for k, c := range n.hot {
			if c >>= 1; c == 0 {
				delete(n.hot, k)
			} else {
				n.hot[k] = c
			}
		}
	}
	n.hot[key]++
	return n.hot[key] >= n.cfg.HotThreshold
}

// isHotKey reports whether this node's fill counter has seen the key
// cross the hot threshold — the "hot" attestation policy's selector, so
// the quorum tax lands only on the keys whose artifacts fan out.
func (n *Node) isHotKey(arch, class string) bool {
	if n.cfg.HotThreshold < 0 {
		return false
	}
	n.hotMu.Lock()
	defer n.hotMu.Unlock()
	return n.hot[KeyFor(arch, class)] >= n.cfg.HotThreshold
}

// fill is the proxy's PeerFill hook: route the miss through the key's
// owner chain. The primary is tried first; if it is down, draining, or
// shedding, the warm replicas are tried in ring order — a replica holds
// the pushed bytes, so a primary death degrades to one extra hop, not a
// cold start. Reaching this node's own position in the chain (or
// exhausting it) falls back to the local origin.
func (n *Node) fill(ctx context.Context, l proxy.Lookup) proxy.PeerResult {
	if isLocalOnly(ctx) {
		// Peer-protocol request: we are being asked *as* an owner (or as
		// a fallback); answer from here regardless of the ring view.
		return proxy.PeerResult{Outcome: proxy.PeerSelf}
	}
	key := KeyFor(l.Arch, l.Class)
	owners := n.currentRing().Owners(key, n.cfg.Replication)
	if owners[0] == n.cfg.Self {
		// We own this key and a local client missed on it: that miss is
		// part of a first-use sequence worth learning, exactly like the
		// fills forwarded to us by peers.
		if n.predictor != nil {
			n.predictor.ObserveRequest(l.Client, l.Arch, l.Class)
		}
		return proxy.PeerResult{Outcome: proxy.PeerSelf}
	}
	hot := n.noteFill(key)
	var last proxy.PeerResult
	for _, owner := range owners {
		if owner == n.cfg.Self {
			// Our own replica position: everything ahead of us in the
			// chain failed, and our cache already missed — transform
			// locally (we were due a copy of this key anyway).
			return proxy.PeerResult{Outcome: proxy.PeerSelf}
		}
		if n.authority != nil && n.authority.Quarantined(owner) {
			// The ledger says this peer has served divergent bytes: never
			// fill from it, even if its link is healthy. The chain moves
			// on to the next owner (or the local origin).
			n.cAttestRejects.Inc()
			last = proxy.PeerResult{Outcome: proxy.PeerFailed, Peer: owner,
				Err: fmt.Errorf("cluster: peer %s quarantined: %w", owner, attest.ErrVerify)}
			continue
		}
		b := n.breaker(owner)
		if err := b.Allow(); err != nil {
			// The link is presumed down: skip the network hop and move on
			// to the next owner in the chain.
			n.cPeerErrors.Inc()
			last = proxy.PeerResult{Outcome: proxy.PeerFailed, Peer: owner, Err: err}
			continue
		}
		res := n.fetchPeer(ctx, owner, l)
		res.Peer = owner
		switch res.Outcome {
		case proxy.PeerServed:
			b.Success()
			n.mship.Refute(owner) // direct evidence of life
			if hot {
				res.CacheLocal = true
				n.cHotReplicas.Inc()
			}
			return res
		case proxy.PeerFailed:
			if attestRejection(res.Err) {
				// The payload failed re-verification: the link is healthy
				// (no breaker penalty) but the bytes cannot be used.
				// fetchPeer already fed the ledger for corrupt payloads;
				// try the next owner in the chain.
				b.Success()
				n.cPeerErrors.Inc()
				last = res
				continue
			}
			if errors.Is(res.Err, proxy.ErrOverloaded) {
				// Deliberate backpressure (overload shed or draining): the
				// peer is healthy — no breaker penalty, counted apart from
				// real failures — but it will not serve us; try the next
				// owner in the chain.
				b.Success()
				n.cPeerBackpressure.Inc()
				last = res
				continue
			}
			if resilience.IsPermanent(res.Err) {
				// A definitive answer (e.g. the owner's origin says not
				// found): the peer is healthy, only this key is
				// unservable. No other owner will do better.
				b.Success()
				n.cPeerErrors.Inc()
				return res
			}
			b.Failure()
			n.cPeerErrors.Inc()
			last = res
		}
	}
	return last
}

// Handler returns the node's HTTP interface: the client-facing class
// routes of the local proxy, the versioned peer protocol (/peer/v1/*),
// and a /healthz that includes the live membership view. The pre-v1
// single-key routes (/peer/class, /peer/replica, /peer/handoff,
// /peer/attest, /gossip) are gone after their one-release deprecation
// window; every cluster-internal hop rides the batch envelope.
func (n *Node) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle(classPathPrefix(), n.local.Handler())
	// Versioned peer protocol: all cluster-internal traffic.
	mux.HandleFunc(batchPath, n.handleBatch)
	mux.HandleFunc(attestV1Prefix, n.handleAttest)
	mux.HandleFunc(gossipV1Path, n.handleGossip)
	mux.Handle("/healthz", telemetry.HealthHandler(n.Health))
	mux.Handle("/metrics", n.local.Telemetry().Handler())
	return mux
}

// classPathPrefix mirrors the proxy front end's route without exporting
// it from the proxy package.
func classPathPrefix() string { return "/classes/" }

// Health extends the local proxy's report with the cluster view: the
// live membership (with per-member state and the epoch) and per-link
// breaker states. Any open link or non-alive member marks the node
// degraded (sharing is impaired even though requests succeed via
// replicas or the local origin fallback).
func (n *Node) Health() telemetry.Health {
	h := n.local.Health()
	h.Epoch = n.mship.Epoch()
	for _, v := range n.PeerViews() {
		h.Ring = append(h.Ring, telemetry.RingMemberHealth{
			Member: v.Member, State: v.State, Link: v.Link, Self: v.Self,
			Quarantined: v.Quarantined, Divergences: v.Divergences,
		})
		if v.Link == resilience.Open.String() || v.State != telemetry.MemberAlive || v.Quarantined {
			h.Status = telemetry.StatusDegraded
		}
	}
	return h
}

// PeerView is one member of the node's live membership view
// (diagnostics).
type PeerView struct {
	Member string
	Self   bool
	// State is the member's membership state ("alive", "suspect",
	// "dead", "draining").
	State string
	// Link is the local breaker state for the path to this member
	// ("closed" = healthy, "open" = presumed down, "-" for self).
	Link string
	// Divergences is the member's attestation suspicion count on this
	// node's ledger; Quarantined marks it past the threshold (excluded
	// from peer fill and variant selection). Always zero/false when
	// attestation is off.
	Divergences int
	Quarantined bool
}

// PeerViews snapshots the live membership with per-link health, sorted
// by member. Unlike the ring (alive + suspect only) this includes dead
// and draining members — the fleet's obituaries are diagnostic signal.
func (n *Node) PeerViews() []PeerView {
	out := make([]PeerView, 0, 4)
	for _, m := range n.mship.Snapshot() {
		v := PeerView{Member: m.Addr, Self: m.Addr == n.cfg.Self, State: m.State, Link: "-"}
		if !v.Self {
			n.breakerMu.Lock()
			b := n.breakers[m.Addr]
			n.breakerMu.Unlock()
			if b == nil {
				v.Link = "closed"
			} else {
				v.Link = b.State().String()
			}
		}
		if n.authority != nil {
			v.Divergences = n.authority.Divergences(m.Addr)
			v.Quarantined = n.authority.Quarantined(m.Addr)
		}
		out = append(out, v)
	}
	return out
}

// PeerErrors returns the count of failed peer fills (diagnostics).
func (n *Node) PeerErrors() int64 { return n.cPeerErrors.Load() }

// PeerServed returns how many peer-protocol requests this node answered
// as an owner (diagnostics).
func (n *Node) PeerServed() int64 { return n.cPeerServed.Load() }

// HotReplicas returns how many peer fills were promoted into the local
// cache as hot keys (diagnostics).
func (n *Node) HotReplicas() int64 { return n.cHotReplicas.Load() }

// PeerBackpressure returns how many peer fills the owner shed with 429
// (diagnostics).
func (n *Node) PeerBackpressure() int64 { return n.cPeerBackpressure.Load() }

// ReplicasStored returns how many pushed replicas this node accepted
// into its cache (diagnostics).
func (n *Node) ReplicasStored() int64 { return n.cReplicaStored.Load() }

// ReplicasPushed returns how many replicas this node pushed to
// successors (diagnostics).
func (n *Node) ReplicasPushed() int64 { return n.cReplicaPush.Load() }

// HandoffKeys returns how many keys handoff moved through this node,
// pulled or pushed (diagnostics).
func (n *Node) HandoffKeys() int64 { return n.cHandoffKeys.Load() }
