package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"dvm/internal/proxy"
	"dvm/internal/resilience"
	"dvm/internal/telemetry"
)

// peerPathPrefix is the peer-protocol route: an owner serves the
// transformed class for GET /peer/class/<name>.class with X-DVM-Arch.
const peerPathPrefix = "/peer/class/"

// maxPeerClassBytes bounds one peer response read; mirrors the client
// loader's bound so a misbehaving peer cannot OOM a node.
const maxPeerClassBytes = 16 << 20

// maxHotKeys bounds the per-node hot-key counter table. When it fills,
// every count is halved and the zeros dropped — aging that sheds a
// flood of distinct cold keys (count 1) while a genuinely hot key's
// count survives the pressure and can still cross the threshold.
const maxHotKeys = 4096

// Config parameterizes one cluster node.
type Config struct {
	// Self is this node's peer URL (e.g. "http://10.0.0.1:8642"); the
	// other members reach its /peer/class/ endpoint there.
	Self string
	// Peers is the full static membership, including Self (added if
	// absent). Every node must be configured with the same set: the ring
	// is computed locally and identically on each node.
	Peers []string
	// VirtualNodes per member on the ring (0 = DefaultVirtualNodes).
	VirtualNodes int
	// Seed perturbs ring placement; all members must share it.
	Seed uint64
	// HotThreshold is how many peer fills of one key this node performs
	// before replicating the key into its own cache (0 = default 8,
	// <0 = never replicate).
	HotThreshold int
	// PeerTimeout bounds one peer class fetch (default 3s).
	PeerTimeout time.Duration
	// BreakerThreshold/BreakerCooldown parameterize the per-peer circuit
	// breakers (defaults as in internal/resilience).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Transport overrides the peer HTTP transport (fault injection via
	// netsim.LinkFaults / netsim.FaultyTransport).
	Transport http.RoundTripper
}

// defaultHotThreshold is the peer-fill count after which a key is
// replicated locally when Config.HotThreshold is zero.
const defaultHotThreshold = 8

// Node is one member of a sharded proxy cluster: a local proxy whose
// miss path consults the ring, plus the peer-protocol client and server
// halves.
type Node struct {
	cfg    Config
	ring   *Ring
	local  *proxy.Proxy
	client *http.Client

	breakerMu sync.Mutex
	breakers  map[string]*resilience.Breaker

	hotMu sync.Mutex
	hot   map[string]int

	// Cluster counters live in the local proxy's telemetry registry, so
	// one /metrics scrape covers the node end to end.
	cPeerErrors  *telemetry.Counter   // failed peer-fill attempts (fell back to local origin)
	cPeerServed  *telemetry.Counter   // peer-protocol requests this node answered as owner
	cHotReplicas *telemetry.Counter   // keys promoted into the local cache as hot
	// cPeerBackpressure counts fills the owner shed with 429: deliberate
	// overload backpressure, not peer failures (no breaker penalty).
	cPeerBackpressure *telemetry.Counter
	hPeerFetch        *telemetry.Histogram // peer-protocol hop latency
}

// NewNode builds the node's proxy over origin with pcfg and wires its
// miss path into the cluster. pcfg.PeerFill is overwritten.
func NewNode(origin proxy.Origin, pcfg proxy.Config, cfg Config) (*Node, error) {
	if cfg.Self == "" {
		return nil, fmt.Errorf("cluster: Config.Self is required")
	}
	cfg.Self = strings.TrimSuffix(cfg.Self, "/")
	members := make([]string, 0, len(cfg.Peers)+1)
	for _, p := range cfg.Peers {
		members = append(members, strings.TrimSuffix(p, "/"))
	}
	if !contains(members, cfg.Self) {
		members = append(members, cfg.Self)
	}
	ring, err := NewRing(members, cfg.VirtualNodes, cfg.Seed)
	if err != nil {
		return nil, err
	}
	if cfg.HotThreshold == 0 {
		cfg.HotThreshold = defaultHotThreshold
	}
	if cfg.PeerTimeout <= 0 {
		cfg.PeerTimeout = 3 * time.Second
	}
	n := &Node{
		cfg:      cfg,
		ring:     ring,
		client:   &http.Client{Transport: cfg.Transport},
		breakers: make(map[string]*resilience.Breaker),
		hot:      make(map[string]int),
	}
	pcfg.PeerFill = n.fill
	if pcfg.Node == "" {
		pcfg.Node = cfg.Self // trace spans name the node by its peer URL
	}
	n.local = proxy.New(origin, pcfg)
	reg := n.local.Telemetry()
	n.cPeerErrors = reg.Counter("peer_errors_total")
	n.cPeerServed = reg.Counter("peer_served_total")
	n.cHotReplicas = reg.Counter("hot_replicas_total")
	n.cPeerBackpressure = reg.Counter("peer_backpressure_total")
	n.hPeerFetch = reg.Histogram("peer_fetch_seconds", nil)
	reg.Gauge("ring_members", func() float64 { return float64(len(n.ring.Members())) })
	return n, nil
}

func contains(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}

// Proxy returns the node's local proxy (stats, diagnostics).
func (n *Node) Proxy() *proxy.Proxy { return n.local }

// Ring returns the node's view of the ring.
func (n *Node) Ring() *Ring { return n.ring }

// Self returns this node's peer URL.
func (n *Node) Self() string { return n.cfg.Self }

// Request serves one class through the cluster-aware local proxy.
func (n *Node) Request(ctx context.Context, l proxy.Lookup) (proxy.Result, error) {
	return n.local.Request(ctx, l)
}

// localOnlyKey marks a context as coming in over the peer protocol:
// such a request must be answered from this node (cache or origin) and
// never forwarded again, so a transient membership disagreement between
// two nodes' ring views cannot turn into a forwarding loop.
type localOnlyKey struct{}

func withLocalOnly(ctx context.Context) context.Context {
	return context.WithValue(ctx, localOnlyKey{}, true)
}

func isLocalOnly(ctx context.Context) bool {
	v, _ := ctx.Value(localOnlyKey{}).(bool)
	return v
}

// breaker returns (creating on demand) the circuit breaker guarding the
// link to peer.
func (n *Node) breaker(peer string) *resilience.Breaker {
	n.breakerMu.Lock()
	defer n.breakerMu.Unlock()
	b, ok := n.breakers[peer]
	if !ok {
		b = resilience.NewBreaker(resilience.BreakerConfig{
			Threshold: n.cfg.BreakerThreshold,
			Cooldown:  n.cfg.BreakerCooldown,
		})
		n.breakers[peer] = b
	}
	return b
}

// noteFill counts a peer fill for key and reports whether the key has
// crossed the hot threshold and should be replicated locally.
func (n *Node) noteFill(key string) bool {
	if n.cfg.HotThreshold < 0 {
		return false
	}
	n.hotMu.Lock()
	defer n.hotMu.Unlock()
	if len(n.hot) >= maxHotKeys {
		for k, c := range n.hot {
			if c >>= 1; c == 0 {
				delete(n.hot, k)
			} else {
				n.hot[k] = c
			}
		}
	}
	n.hot[key]++
	return n.hot[key] >= n.cfg.HotThreshold
}

// fill is the proxy's PeerFill hook: route the miss to the ring owner.
func (n *Node) fill(ctx context.Context, arch, class string) proxy.PeerResult {
	if isLocalOnly(ctx) {
		// Peer-protocol request: we are being asked *as* the owner (or as
		// a fallback); answer from here regardless of the ring view.
		return proxy.PeerResult{Outcome: proxy.PeerSelf}
	}
	key := KeyFor(arch, class)
	owner := n.ring.Owner(key)
	if owner == n.cfg.Self {
		return proxy.PeerResult{Outcome: proxy.PeerSelf}
	}
	hot := n.noteFill(key)
	b := n.breaker(owner)
	if err := b.Allow(); err != nil {
		// The link to the owner is presumed down: skip the network hop
		// entirely and degrade to a local origin fetch.
		n.cPeerErrors.Inc()
		return proxy.PeerResult{Outcome: proxy.PeerFailed, Peer: owner, Err: err}
	}
	res := n.fetchPeer(ctx, owner, arch, class)
	res.Peer = owner
	switch res.Outcome {
	case proxy.PeerServed:
		b.Success()
		if hot {
			res.CacheLocal = true
			n.cHotReplicas.Inc()
		}
	case proxy.PeerFailed:
		if errors.Is(res.Err, proxy.ErrOverloaded) {
			// Deliberate backpressure: the owner shed our fill to protect
			// itself. The peer is healthy — no breaker penalty, and it is
			// counted apart from real peer failures. The miss falls
			// through to the local origin as usual.
			b.Success()
			n.cPeerBackpressure.Inc()
			break
		}
		if resilience.IsPermanent(res.Err) {
			// A definitive answer (e.g. the owner's origin says not
			// found): the peer is healthy, only this key is unservable.
			b.Success()
		} else {
			b.Failure()
		}
		n.cPeerErrors.Inc()
	}
	return res
}

// fetchPeer performs one GET against the owner's peer endpoint. The
// request carries the trace ID so the owner joins the same trace, and
// the owner's spans come back in the response header, shifted into the
// local timeline at the offset where this hop began.
func (n *Node) fetchPeer(ctx context.Context, owner, arch, class string) proxy.PeerResult {
	tr := telemetry.FromContext(ctx)
	hopStart := tr.Elapsed()
	hopTimer := telemetry.StartTimer()
	defer func() { n.hPeerFetch.Observe(hopTimer.Elapsed()) }()
	ctx, cancel := context.WithTimeout(ctx, n.cfg.PeerTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, owner+peerPathPrefix+class+".class", nil)
	if err != nil {
		return proxy.PeerResult{Outcome: proxy.PeerFailed, Err: resilience.Permanent(err)}
	}
	req.Header.Set("X-DVM-Arch", arch)
	req.Header.Set("X-DVM-Client", "peer:"+n.cfg.Self)
	if id := tr.ID(); id != "" {
		req.Header.Set(telemetry.TraceHeader, id)
	}
	resp, err := n.client.Do(req)
	if err != nil {
		return proxy.PeerResult{Outcome: proxy.PeerFailed, Err: err}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		err := fmt.Errorf("cluster: peer %s: %s: %s", owner, resp.Status, strings.TrimSpace(string(body)))
		if resp.StatusCode == http.StatusNotFound {
			// Definitive: the owner asked the origin and the class does
			// not exist. The local fallback fetch will surface the
			// canonical not-found to the client.
			return proxy.PeerResult{Outcome: proxy.PeerFailed, Err: resilience.Permanent(err)}
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			// The owner's admission control shed this fill (backpressure).
			// Tag the error so fill() can treat it as a healthy peer's
			// deliberate answer instead of an outage.
			return proxy.PeerResult{Outcome: proxy.PeerFailed,
				Err: fmt.Errorf("%v: %w", err, proxy.ErrOverloaded)}
		}
		return proxy.PeerResult{Outcome: proxy.PeerFailed, Err: err}
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxPeerClassBytes+1))
	if err != nil {
		return proxy.PeerResult{Outcome: proxy.PeerFailed, Err: err}
	}
	if len(data) > maxPeerClassBytes {
		return proxy.PeerResult{Outcome: proxy.PeerFailed,
			Err: resilience.Permanent(fmt.Errorf("cluster: peer %s: %s: response exceeds %d bytes", owner, class, maxPeerClassBytes))}
	}
	if spans, derr := telemetry.DecodeSpans(resp.Header.Get(telemetry.TraceSpansHeader)); derr == nil {
		tr.AppendShifted(spans, hopStart)
	}
	return proxy.PeerResult{
		Outcome:  proxy.PeerServed,
		Data:     data,
		Rejected: resp.Header.Get("X-DVM-Rejected") == "1",
		Stale:    resp.Header.Get("X-DVM-Stale") == "1",
	}
}

// Handler returns the node's HTTP interface: the client-facing class
// routes of the local proxy, the peer protocol, and a /healthz that
// includes the ring view.
func (n *Node) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle(classPathPrefix(), n.local.Handler())
	mux.HandleFunc(peerPathPrefix, n.handlePeer)
	mux.Handle("/healthz", telemetry.HealthHandler(n.Health))
	mux.Handle("/metrics", n.local.Telemetry().Handler())
	return mux
}

// classPathPrefix mirrors the proxy front end's route without exporting
// it from the proxy package.
func classPathPrefix() string { return "/classes/" }

// handlePeer answers an owner-side fill: serve the transformed class
// from this node's cache/origin, never re-forwarding (localOnly), and
// carry the response flags as headers.
func (n *Node) handlePeer(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	name := strings.TrimPrefix(r.URL.Path, peerPathPrefix)
	name = strings.TrimSuffix(name, ".class")
	if name == "" || strings.Contains(name, "..") {
		http.Error(w, "bad class name", http.StatusBadRequest)
		return
	}
	arch := r.Header.Get("X-DVM-Arch")
	client := r.Header.Get("X-DVM-Client")
	if client == "" {
		client = "peer"
	}
	// Join the caller's trace under its ID; this hop's spans (recorded
	// against a fresh local time base) ride back in the response header
	// for the caller to merge into its own timeline.
	tr := telemetry.JoinTrace(r.Header.Get(telemetry.TraceHeader))
	ctx := telemetry.WithTrace(withLocalOnly(r.Context()), tr)
	res, err := n.local.Request(ctx, proxy.Lookup{Client: client, Arch: arch, Class: name})
	w.Header().Set(telemetry.TraceSpansHeader, telemetry.EncodeSpans(tr.Spans()))
	if err != nil {
		status := proxy.StatusFor(err)
		if status == http.StatusTooManyRequests {
			// Backpressure hint for the shed requester: overload clears
			// on the queue-drain timescale.
			w.Header().Set("Retry-After", "1")
		}
		http.Error(w, err.Error(), status)
		return
	}
	n.cPeerServed.Inc()
	if res.Info.Rejected {
		w.Header().Set("X-DVM-Rejected", "1")
	}
	if res.Info.Stale {
		w.Header().Set("X-DVM-Stale", "1")
	}
	w.Header().Set("Content-Type", "application/java-vm")
	w.Header().Set("Content-Length", fmt.Sprint(len(res.Data)))
	_, _ = w.Write(res.Data)
}

// Health extends the local proxy's report with the cluster view: the
// ring membership with per-link breaker states. Any open link marks the
// node degraded (peer sharing is impaired even though requests succeed
// via the local origin fallback).
func (n *Node) Health() telemetry.Health {
	h := n.local.Health()
	for _, v := range n.PeerViews() {
		h.Ring = append(h.Ring, telemetry.RingMemberHealth{Member: v.Member, Link: v.Link, Self: v.Self})
		if v.Link == resilience.Open.String() {
			h.Status = telemetry.StatusDegraded
		}
	}
	return h
}

// PeerView is one member of the node's ring view (diagnostics).
type PeerView struct {
	Member string
	Self   bool
	// Link is the local breaker state for the path to this member
	// ("closed" = healthy, "open" = presumed down, "-" for self).
	Link string
}

// PeerViews snapshots the ring membership with per-link health, sorted
// by member.
func (n *Node) PeerViews() []PeerView {
	members := n.ring.Members()
	sort.Strings(members)
	out := make([]PeerView, 0, len(members))
	for _, m := range members {
		v := PeerView{Member: m, Self: m == n.cfg.Self, Link: "-"}
		if !v.Self {
			n.breakerMu.Lock()
			b := n.breakers[m]
			n.breakerMu.Unlock()
			if b == nil {
				v.Link = "closed"
			} else {
				v.Link = b.State().String()
			}
		}
		out = append(out, v)
	}
	return out
}

// PeerErrors returns the count of failed peer fills (diagnostics).
func (n *Node) PeerErrors() int64 { return n.cPeerErrors.Load() }

// PeerServed returns how many peer-protocol requests this node answered
// as an owner (diagnostics).
func (n *Node) PeerServed() int64 { return n.cPeerServed.Load() }

// HotReplicas returns how many peer fills were promoted into the local
// cache as hot keys (diagnostics).
func (n *Node) HotReplicas() int64 { return n.cHotReplicas.Load() }

// PeerBackpressure returns how many peer fills the owner shed with 429
// (diagnostics).
func (n *Node) PeerBackpressure() int64 { return n.cPeerBackpressure.Load() }
