package cluster_test

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"dvm/internal/cluster"
	"dvm/internal/proxy"
	"dvm/internal/rewrite"
	"dvm/internal/verifier"
)

// gatedOrigin holds fetches at a gate until release is closed (or the
// fetch context dies) so a test can pin a node's admission slots.
type gatedOrigin struct {
	inner   proxy.Origin
	gated   atomic.Bool
	entered atomic.Int64
	release chan struct{}
}

func newGatedOrigin(inner proxy.Origin) *gatedOrigin {
	return &gatedOrigin{inner: inner, release: make(chan struct{})}
}

func (g *gatedOrigin) Fetch(ctx context.Context, name string) ([]byte, error) {
	g.entered.Add(1)
	if g.gated.Load() {
		select {
		case <-g.release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return g.inner.Fetch(ctx, name)
}

func pollUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestClusterPeerBackpressureFallsBackLocally: an owner answering fills
// with 429 is applying deliberate backpressure, not failing. The
// requester must degrade to its local origin, count the event apart
// from peer errors, and leave the link breaker untouched.
func TestClusterPeerBackpressureFallsBackLocally(t *testing.T) {
	const classes = 8
	overloaded := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "overloaded", http.StatusTooManyRequests)
	}))
	defer overloaded.Close()

	org := corpus(t, classes)
	n, err := cluster.NewNode(org, proxy.Config{
		Pipeline: rewrite.NewPipeline(verifier.Filter()),
		// Cache off so repeat requests exercise the peer path again.
	}, cluster.Config{
		Self:             "http://127.0.0.1:1",
		Peers:            []string{overloaded.URL},
		BreakerThreshold: 2, // trips fast if 429s were (wrongly) counted as failures
	})
	if err != nil {
		t.Fatal(err)
	}

	// Pick a class the shedding server owns, so every miss peer-fills it.
	var remote string
	for _, class := range classNames(classes) {
		if n.Ring().Owner(cluster.KeyFor("dvm", class)) == overloaded.URL {
			remote = class
			break
		}
	}
	if remote == "" {
		t.Fatal("no class owned by the overloaded peer")
	}

	ctx := context.Background()
	const attempts = 4
	for i := 0; i < attempts; i++ {
		res, err := n.Request(ctx, proxy.Lookup{Client: fmt.Sprintf("c%d", i), Arch: "dvm", Class: remote})
		if err != nil {
			t.Fatalf("attempt %d: shed peer fill did not fall back to local origin: %v", i, err)
		}
		if len(res.Data) == 0 {
			t.Fatalf("attempt %d: empty response from local fallback", i)
		}
	}

	if got := n.PeerBackpressure(); got != attempts {
		t.Errorf("PeerBackpressure = %d, want %d", got, attempts)
	}
	if got := n.PeerErrors(); got != 0 {
		t.Errorf("PeerErrors = %d, want 0 (backpressure is not an outage)", got)
	}
	// Well past BreakerThreshold 429s and the link is still healthy.
	for _, v := range n.PeerViews() {
		if v.Member == overloaded.URL && v.Link != "closed" {
			t.Errorf("link breaker to shedding owner = %q, want closed", v.Link)
		}
	}
	if h := n.Health(); h.Counters["peer_backpressure_total"] != attempts {
		t.Errorf("healthz peer_backpressure_total = %d, want %d", h.Counters["peer_backpressure_total"], attempts)
	}
}

// TestClusterOwnerShedsPeerFill is the same contract end to end over
// the real wire: a saturated owner's admission control sheds the peer
// fill with 429 + Retry-After, and the requester serves the class from
// its own origin without recording a peer failure.
func TestClusterOwnerShedsPeerFill(t *testing.T) {
	const classes = 12
	org := newGatedOrigin(corpus(t, classes))
	c, err := cluster.StartLocal(org, 2, func(i int) proxy.Config {
		cfg := proxy.Config{Pipeline: rewrite.NewPipeline(verifier.Filter())}
		if i == 1 {
			// The owner-to-be runs a tiny admission envelope we can fill.
			cfg.MaxQueue = 1
			cfg.MaxConcurrent = 1
			cfg.QueueDeadline = 5 * time.Second
			cfg.ShedPolicy = proxy.ShedFIFO
		}
		return cfg
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Three distinct classes owned by node 1: one to hold its only
	// service slot, one to fill its queue, one for node 0 to request.
	ring := c.Nodes[0].Ring()
	var owned []string
	for _, class := range classNames(classes) {
		if ring.Owner(cluster.KeyFor("dvm", class)) == c.Nodes[1].Self() {
			owned = append(owned, class)
		}
	}
	if len(owned) < 3 {
		t.Fatalf("only %d classes owned by node 1, need 3", len(owned))
	}

	ctx := context.Background()
	org.gated.Store(true)
	results := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func(class string) {
			_, err := c.Nodes[1].Request(ctx, proxy.Lookup{Client: "saturator", Arch: "dvm", Class: class})
			results <- err
		}(owned[i])
	}
	pollUntil(t, "owner's slot to be held", func() bool { return org.entered.Load() >= 1 })
	pollUntil(t, "owner's queue to fill", func() bool {
		return c.Nodes[1].Proxy().Health().Gauges["queue_depth"] >= 1
	})
	// The fallback fetch on node 0 must not hang at the gate.
	org.gated.Store(false)

	res, err := c.Nodes[0].Request(ctx, proxy.Lookup{Client: "client", Arch: "dvm", Class: owned[2]})
	if err != nil {
		t.Fatalf("request to saturated owner's key failed instead of falling back: %v", err)
	}
	if len(res.Data) == 0 {
		t.Fatal("empty response via local fallback")
	}

	if got := c.Nodes[0].PeerBackpressure(); got != 1 {
		t.Errorf("requester PeerBackpressure = %d, want 1", got)
	}
	if got := c.Nodes[0].PeerErrors(); got != 0 {
		t.Errorf("requester PeerErrors = %d, want 0", got)
	}
	for _, v := range c.Nodes[0].PeerViews() {
		if v.Member == c.Nodes[1].Self() && v.Link != "closed" {
			t.Errorf("requester's link to shedding owner = %q, want closed", v.Link)
		}
	}
	if shed := c.Nodes[1].Proxy().Stats().Shed; shed < 1 {
		t.Errorf("owner Stats.Shed = %d, want >= 1 (the peer fill)", shed)
	}

	close(org.release)
	for i := 0; i < 2; i++ {
		if err := <-results; err != nil {
			t.Errorf("saturating request failed: %v", err)
		}
	}
}
