package cluster

import (
	"fmt"
	"testing"
)

// TestHotKeySurvivesScanBurst is the regression test for the hot-key
// table reset bug: when the 4096-entry table filled, it used to be
// dropped wholesale, so a scan over many distinct cold keys erased a
// persistently hot key's progress and it never crossed the promotion
// threshold. With aging (halve counts on pressure), cold count-1 keys
// die while the hot key keeps most of its count.
func TestHotKeySurvivesScanBurst(t *testing.T) {
	n := &Node{cfg: Config{HotThreshold: defaultHotThreshold}, hot: make(map[string]int)}

	const (
		hotKey   = "dvm\x00app/Hot"
		distinct = 10000
		every    = 600 // hot-key fill cadence amid the cold scan
	)
	promoted := false
	for i := 0; i < distinct; i++ {
		n.noteFill(fmt.Sprintf("dvm\x00cold/K%05d", i))
		if i%every == 0 && n.noteFill(hotKey) {
			promoted = true
		}
	}
	if !promoted {
		t.Errorf("hot key never crossed threshold %d during a %d-distinct-key scan burst (count ended at %d)",
			n.cfg.HotThreshold, distinct, n.hot[hotKey])
	}
	if len(n.hot) > maxHotKeys {
		t.Errorf("hot table holds %d keys, bound is %d", len(n.hot), maxHotKeys)
	}
}

// TestHotKeyTableBounded: the table never exceeds maxHotKeys no matter
// how many distinct keys stream past, and aging drops single-count cold
// keys first.
func TestHotKeyTableBounded(t *testing.T) {
	n := &Node{cfg: Config{HotThreshold: defaultHotThreshold}, hot: make(map[string]int)}
	for i := 0; i < 3*maxHotKeys; i++ {
		n.noteFill(fmt.Sprintf("dvm\x00scan/K%05d", i))
		if len(n.hot) > maxHotKeys {
			t.Fatalf("hot table grew to %d keys after %d fills, bound is %d", len(n.hot), i+1, maxHotKeys)
		}
	}
}

// TestHotThresholdDisabled: a negative threshold disables tracking
// entirely — nothing is counted, nothing promotes.
func TestHotThresholdDisabled(t *testing.T) {
	n := &Node{cfg: Config{HotThreshold: -1}, hot: make(map[string]int)}
	for i := 0; i < 100; i++ {
		if n.noteFill("dvm\x00app/Hot") {
			t.Fatal("disabled hot tracking promoted a key")
		}
	}
	if len(n.hot) != 0 {
		t.Fatalf("disabled hot tracking stored %d keys", len(n.hot))
	}
}
