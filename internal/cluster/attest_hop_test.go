package cluster

// White-box regression tests for the per-hop attestation checks: the
// peer-fill client (fetchPeer) and the handoff pull (pullFrom) must
// each discard payloads whose attestation is missing or fails
// re-verification, and only corruption evidence — a digest/seal
// mismatch, not a mere missing header — may feed the suspicion ledger.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"dvm/internal/attest"
	"dvm/internal/proxy"
)

// newAttestedTestNode builds a manual-mode node with attestation on.
// Self is a placeholder URL; the tests talk to stub peers directly.
func newAttestedTestNode(t *testing.T, key []byte) *Node {
	t.Helper()
	n, err := NewNode(proxy.MapOrigin{}, proxy.Config{CacheEnabled: true}, Config{
		Self:           "http://127.0.0.1:1",
		GossipInterval: -1,
		AttestKey:      key,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Close)
	return n
}

func TestFetchPeerRejectsBadAttestation(t *testing.T) {
	key := []byte("hop-test-service-key")
	data := []byte("transformed-artifact-bytes")
	service := attest.New(attest.Config{Key: key})

	var header atomic.Value // the attestation the stub owner attaches
	header.Store("")
	owner := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(BatchResponse{Entries: []BatchEntry{{
			Arch: "dvm", Class: "app/Hop", Reason: proxy.ReasonFill,
			Data: data, Att: header.Load().(string),
		}}})
	}))
	defer owner.Close()

	n := newAttestedTestNode(t, key)
	ctx := context.Background()
	lookup := proxy.Lookup{Client: "c1", Arch: "dvm", Class: "app/Hop"}

	// Missing attestation: rejected, but not ledgered — it proves a
	// config mismatch, not corruption.
	res := n.fetchPeer(ctx, owner.URL, lookup)
	if res.Outcome != proxy.PeerFailed || !errors.Is(res.Err, attest.ErrUnattested) {
		t.Fatalf("unattested fill = %+v, want PeerFailed/ErrUnattested", res)
	}
	if got := n.authority.Divergences(owner.URL); got != 0 {
		t.Errorf("missing attestation ledgered: %d divergences", got)
	}

	// Correctly sealed attestation over different bytes: a digest
	// mismatch is corruption evidence against the owner.
	header.Store(service.Attest("dvm", "app/Hop", []byte("tampered"), 1, nil).Encode())
	res = n.fetchPeer(ctx, owner.URL, lookup)
	if res.Outcome != proxy.PeerFailed || !errors.Is(res.Err, attest.ErrVerify) {
		t.Fatalf("tampered fill = %+v, want PeerFailed/ErrVerify", res)
	}
	if got := n.authority.Divergences(owner.URL); got != 1 {
		t.Errorf("corrupt payload not ledgered: %d divergences, want 1", got)
	}

	// Seal under a different key: unforgeable without the service key.
	forged := attest.New(attest.Config{Key: []byte("attacker-key")})
	header.Store(forged.Attest("dvm", "app/Hop", data, 1, nil).Encode())
	res = n.fetchPeer(ctx, owner.URL, lookup)
	if res.Outcome != proxy.PeerFailed || !errors.Is(res.Err, attest.ErrVerify) {
		t.Fatalf("forged-seal fill = %+v, want PeerFailed/ErrVerify", res)
	}

	if got := n.cAttestRejects.Load(); got != 3 {
		t.Errorf("attest_rejects_total = %d, want 3", got)
	}

	// The honest case still works, and the verified attestation rides
	// along with the bytes.
	header.Store(service.Attest("dvm", "app/Hop", data, 1, nil).Encode())
	res = n.fetchPeer(ctx, owner.URL, lookup)
	if res.Outcome != proxy.PeerServed || !bytes.Equal(res.Data, data) || res.Att == nil {
		t.Fatalf("valid fill = %+v, want PeerServed with attestation", res)
	}
}

func TestPullHandoffRejectsTamperedEntries(t *testing.T) {
	key := []byte("hop-test-service-key")
	service := attest.New(attest.Config{Key: key})
	good := []byte("good-artifact")
	entries := []BatchEntry{
		{Arch: "dvm", Class: "app/Good", Data: good,
			Att: service.Attest("dvm", "app/Good", good, 1, nil).Encode()},
		{Arch: "dvm", Class: "app/Tampered", Data: []byte("evil-artifact"),
			Att: service.Attest("dvm", "app/Tampered", []byte("original"), 1, nil).Encode()},
		{Arch: "dvm", Class: "app/Naked", Data: []byte("unattested-artifact")},
	}
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(BatchResponse{Entries: entries})
	}))
	defer peer.Close()

	n := newAttestedTestNode(t, key)
	// Only the verifiable entry is accepted.
	if got := n.pullFrom(context.Background(), peer.URL); got != 1 {
		t.Fatalf("pullFrom accepted %d entries, want 1", got)
	}
	snap := n.local.CacheSnapshot(1<<20, nil)
	if len(snap) != 1 || snap[0].Class != "app/Good" || !bytes.Equal(snap[0].Data, good) {
		t.Fatalf("cache after handoff = %+v, want only app/Good", snap)
	}
	if snap[0].Att == nil {
		t.Error("handed-off entry lost its attestation")
	}
	if got := n.cHandoffKeys.Load(); got != 1 {
		t.Errorf("handoff_keys_total = %d, want 1", got)
	}
	if got := n.cAttestRejects.Load(); got != 2 {
		t.Errorf("attest_rejects_total = %d, want 2 (tampered + unattested)", got)
	}
}
