package cluster_test

// Integration tests for live membership: gossip failure detection,
// network partitions, graceful drain, and the churn property test that
// joins, crashes, and rejoins nodes under continuous load. All of them
// run the cluster in manual gossip mode (GossipInterval < 0): the test
// drives rounds with GossipNow, so convergence is deterministic and the
// suite stays fast and race-clean.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dvm/internal/cluster"
	"dvm/internal/netsim"
	"dvm/internal/proxy"
)

// manualCfg is the deterministic membership config shared by these
// tests: no background gossip, fast suspicion expiry.
func manualCfg(over func(*cluster.Config)) func(int) cluster.Config {
	return func(int) cluster.Config {
		c := cluster.Config{
			GossipInterval: -1,
			SuspectTimeout: 50 * time.Millisecond,
			PeerTimeout:    time.Second,
		}
		if over != nil {
			over(&c)
		}
		return c
	}
}

func gossipAll(t *testing.T, nodes []*cluster.Node, skip map[int]bool) {
	t.Helper()
	for i, n := range nodes {
		if skip[i] {
			continue
		}
		n.GossipNow(context.Background())
	}
}

func memberState(t *testing.T, n *cluster.Node, addr string) string {
	t.Helper()
	for _, m := range n.Members() {
		if m.Addr == addr {
			return m.State
		}
	}
	return "unknown"
}

// TestClusterGossipFailureDetection: a crashed node is suspected after
// consecutive failed exchanges (keeping its ring share while suspect),
// declared dead once the suspicion expires, and dropped from the ring —
// with the survivors agreeing on the epoch.
func TestClusterGossipFailureDetection(t *testing.T) {
	c, err := cluster.StartLocal(corpus(t, 4), 3, verifyingProxyCfg, manualCfg(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	dead := c.Nodes[2].Self()
	survivors := c.Nodes[:2]

	gossipAll(t, c.Nodes, nil) // converge the seeded views
	c.Stop(2)                  // crash: no goodbye

	// Two consecutive failed exchanges raise the suspicion.
	for round := 0; round < 2; round++ {
		gossipAll(t, survivors, nil)
	}
	for i, n := range survivors {
		if got := memberState(t, n, dead); got != "suspect" {
			t.Errorf("node %d sees crashed peer as %q, want suspect", i, got)
		}
		// Suspicion alone must not remap: a flap would thrash the ring.
		if got := n.Ring().Size(); got != 3 {
			t.Errorf("node %d ring size = %d while peer only suspect, want 3", i, got)
		}
	}

	// Past SuspectTimeout the sweep declares it dead and the ring drops it.
	time.Sleep(60 * time.Millisecond)
	gossipAll(t, survivors, nil)
	for i, n := range survivors {
		if got := memberState(t, n, dead); got != "dead" {
			t.Errorf("node %d sees crashed peer as %q, want dead", i, got)
		}
		if got := n.Ring().Size(); got != 2 {
			t.Errorf("node %d ring size = %d after death, want 2", i, got)
		}
	}
	gossipAll(t, survivors, nil)
	if a, b := survivors[0].Epoch(), survivors[1].Epoch(); a != b {
		t.Errorf("survivor epochs disagree: %d vs %d", a, b)
	}
}

// TestClusterBreakerTripSuspicion: the data path feeds the failure
// detector — peer-fill failures trip the link breaker, and the trip
// raises a membership suspicion without waiting for a gossip round.
func TestClusterBreakerTripSuspicion(t *testing.T) {
	const classes = 12
	c, err := cluster.StartLocal(corpus(t, classes), 2, verifyingProxyCfg, manualCfg(func(cfg *cluster.Config) {
		cfg.Replication = 1
		cfg.BreakerThreshold = 2
		cfg.BreakerCooldown = time.Minute
		cfg.PeerTimeout = 300 * time.Millisecond
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	dead := c.Nodes[1].Self()
	c.Stop(1)

	// Drive enough fills toward the dead owner to trip its breaker. The
	// requests themselves must all succeed via the local fallback.
	ctx := context.Background()
	for _, class := range classNames(classes) {
		if _, err := c.Nodes[0].Request(ctx, proxy.Lookup{Client: "c", Arch: "dvm", Class: class}); err != nil {
			t.Fatalf("request during peer outage failed: %s: %v", class, err)
		}
	}
	if got := memberState(t, c.Nodes[0], dead); got != "suspect" {
		t.Errorf("breaker trip did not raise suspicion: peer state = %q, want suspect", got)
	}
}

// TestClusterPartitionSuspicionAndRefutation drives netsim.Partition
// through both failure-detector edge cases: a healed symmetric
// partition clears the suspicion through direct evidence (the next
// successful exchange), and an asymmetric inbound-only partition is
// refuted by the victim's own outbound gossip — the case a naive
// ping-based detector gets wrong.
func TestClusterPartitionSuspicionAndRefutation(t *testing.T) {
	const nodes = 3
	meshes := make([]*netsim.LinkFaults, nodes)
	next := 0
	c, err := cluster.StartLocal(corpus(t, 4), nodes, verifyingProxyCfg, manualCfg(func(cfg *cluster.Config) {
		meshes[next] = netsim.NewLinkFaults(nil)
		cfg.Transport = meshes[next]
		cfg.SuspectTimeout = time.Hour // nobody dies in this test
		cfg.PeerTimeout = 300 * time.Millisecond
		next++
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	hosts := make([]string, nodes)
	for i, u := range c.URLs() {
		hosts[i] = strings.TrimPrefix(u, "http://")
	}
	part := netsim.NewPartition(meshes, hosts)
	victim := c.Nodes[2].Self()
	gossipAll(t, c.Nodes, nil)

	// Symmetric partition: both sides suspect across the cut...
	part.Isolate(2)
	for round := 0; round < 2; round++ {
		gossipAll(t, c.Nodes[:2], nil)
	}
	if got := memberState(t, c.Nodes[0], victim); got != "suspect" {
		t.Fatalf("isolated peer state = %q, want suspect", got)
	}
	// ...and healing clears it on the next exchange.
	part.Heal()
	gossipAll(t, c.Nodes[:2], nil)
	if got := memberState(t, c.Nodes[0], victim); got != "alive" {
		t.Errorf("after heal peer state = %q, want alive", got)
	}

	// Asymmetric partition: nobody reaches node 2, but node 2 still
	// reaches out. Its own gossip hears the suspicion and refutes it at
	// a higher incarnation.
	part.IsolateInbound(2)
	for round := 0; round < 2; round++ {
		gossipAll(t, c.Nodes[:2], nil)
	}
	if got := memberState(t, c.Nodes[0], victim); got != "suspect" {
		t.Fatalf("inbound-isolated peer state = %q, want suspect", got)
	}
	// Round 1: node 2 learns of the suspicion from the exchange response
	// and refutes. Round 2: the refutation reaches the accusers.
	c.Nodes[2].GossipNow(context.Background())
	c.Nodes[2].GossipNow(context.Background())
	if got := memberState(t, c.Nodes[0], victim); got != "alive" {
		t.Errorf("outbound refutation did not land: peer state = %q, want alive", got)
	}
	part.Heal()
}

// TestClusterDrainHandsOffCache: a graceful leave announces draining to
// the fleet, pushes the leaver's cache to each key's new owner, and the
// survivors then serve the leaver's old keys without a single new
// origin fetch.
func TestClusterDrainHandsOffCache(t *testing.T) {
	const classes = 18
	org := &countingOrigin{inner: corpus(t, classes)}
	c, err := cluster.StartLocal(org, 3, verifyingProxyCfg, manualCfg(func(cfg *cluster.Config) {
		cfg.Replication = 1 // handoff must be the only warm path
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	gossipAll(t, c.Nodes, nil)

	// Warm through the leaver: every class lands in its owner's cache
	// (and the leaver's own).
	leaver := 1
	for _, class := range classNames(classes) {
		if _, err := c.Nodes[leaver].Request(ctx, proxy.Lookup{Client: "warm", Arch: "dvm", Class: class}); err != nil {
			t.Fatal(err)
		}
	}
	if got := org.fetches.Load(); got != classes {
		t.Fatalf("warmup fetched %d times, want %d", got, classes)
	}

	if err := c.Drain(ctx, leaver); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if c.Nodes[leaver].HandoffKeys() == 0 {
		t.Error("drain pushed no cache entries")
	}
	for _, i := range []int{0, 2} {
		if got := memberState(t, c.Nodes[i], c.Nodes[leaver].Self()); got != "draining" {
			t.Errorf("node %d sees leaver as %q, want draining", i, got)
		}
		if got := c.Nodes[i].Ring().Size(); got != 2 {
			t.Errorf("node %d ring size = %d after drain, want 2", i, got)
		}
	}

	// Every key — including those the leaver owned — now serves from the
	// survivors' caches: zero failures, zero new origin fetches.
	for _, i := range []int{0, 2} {
		for _, class := range classNames(classes) {
			if _, err := c.Nodes[i].Request(ctx, proxy.Lookup{Client: "after", Arch: "dvm", Class: class}); err != nil {
				t.Errorf("node %d class %s after drain: %v", i, class, err)
			}
		}
	}
	if got := org.fetches.Load(); got != classes {
		t.Errorf("origin fetches after drain = %d, want still %d (handoff kept every key warm)", got, classes)
	}
}

// TestClusterDrainingRejectsPeerFills: a draining node sheds peer fills
// with 429 + X-DVM-Draining, and a requester that sees the flag records
// the drain and degrades without error or breaker damage.
func TestClusterDrainingRejectsPeerFills(t *testing.T) {
	const classes = 8
	c, err := cluster.StartLocal(corpus(t, classes), 2, verifyingProxyCfg, manualCfg(func(cfg *cluster.Config) {
		cfg.Replication = 1
		cfg.BreakerThreshold = 1 // a single counted failure would trip it
		cfg.BreakerCooldown = time.Minute
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	gossipAll(t, c.Nodes, nil)

	// Drain node 1 but leave its server running: requests racing the
	// departure must see the draining flag, not a timeout.
	if err := c.Nodes[1].Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	body, _ := json.Marshal(cluster.BatchRequest{
		Reason: proxy.ReasonFill, Member: c.URLs()[0], Arch: "jdk", Classes: []string{"app/Applet000"},
	})
	resp, err := http.Post(c.URLs()[1]+"/peer/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("peer fill on draining node: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("X-DVM-Draining") != "1" {
		t.Error("draining rejection missing X-DVM-Draining header")
	}

	// The broadcast already told node 0; every key still resolves there,
	// and the shed fill must not have tripped the link breaker.
	if got := memberState(t, c.Nodes[0], c.Nodes[1].Self()); got != "draining" {
		t.Errorf("node 0 sees leaver as %q, want draining", got)
	}
	for _, class := range classNames(classes) {
		if _, err := c.Nodes[0].Request(ctx, proxy.Lookup{Client: "c", Arch: "jdk", Class: class}); err != nil {
			t.Errorf("request during drain failed: %s: %v", class, err)
		}
	}
	for _, v := range c.Nodes[0].PeerViews() {
		if v.Member == c.Nodes[1].Self() && v.Link == "open" {
			t.Error("draining shed tripped the requester's link breaker")
		}
	}
}

// TestClusterLiveChurnProperty is the membership acceptance property:
// under continuous load, a join, a crash, and a rejoin must (1) never
// surface a client-visible failure, (2) remap at most ~1.5/n of the
// keyspace per join, and (3) pay at most one origin fetch + pipeline
// run per distinct key per membership epoch. Runs in manual gossip
// mode and is part of the -race CI job.
func TestClusterLiveChurnProperty(t *testing.T) {
	const classes = 24
	const probes = 2000 // ring-remap measurement keys (decoupled from workload noise)
	org := &perKeyOrigin{inner: corpus(t, classes), fetches: make(map[string]int)}
	c, err := cluster.StartLocal(org, 4, verifyingProxyCfg, manualCfg(func(cfg *cluster.Config) {
		cfg.Replication = 2
		cfg.BreakerThreshold = 3
		cfg.BreakerCooldown = time.Minute
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	gossipAll(t, c.Nodes, nil)

	// Warm: one fetch per key, then the churn begins.
	for _, class := range classNames(classes) {
		if _, err := c.Nodes[0].Request(ctx, proxy.Lookup{Client: "warm", Arch: "dvm", Class: class}); err != nil {
			t.Fatal(err)
		}
	}

	// Continuous load against the founding fleet (joiners are reached
	// via the peer protocol, as production clients would).
	fleet := append([]*cluster.Node(nil), c.Nodes...)
	var down [4]atomic.Bool
	var failures atomic.Int64
	var reqs atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				ni := (w + i) % len(fleet)
				for down[ni].Load() {
					ni = (ni + 1) % len(fleet)
				}
				class := fmt.Sprintf("app/Applet%03d", (w*7+i)%classes)
				if _, err := fleet[ni].Request(ctx, proxy.Lookup{Client: fmt.Sprintf("w%d", w), Arch: "dvm", Class: class}); err != nil {
					failures.Add(1)
				}
				reqs.Add(1)
				// Paced, not busy-spinning: an unthrottled loop starves the
				// gossip exchanges of CPU and the convergence the test is
				// measuring slows by orders of magnitude.
				time.Sleep(500 * time.Microsecond)
			}
		}(w)
	}

	remapFrac := func(before []string) float64 {
		changed := 0
		ring := c.Nodes[0].Ring()
		for k := 0; k < probes; k++ {
			if ring.Owner(fmt.Sprintf("probe-%04d", k)) != before[k] {
				changed++
			}
		}
		return float64(changed) / probes
	}
	snapshot := func() []string {
		out := make([]string, probes)
		ring := c.Nodes[0].Ring()
		for k := 0; k < probes; k++ {
			out[k] = ring.Owner(fmt.Sprintf("probe-%04d", k))
		}
		return out
	}
	converge := func(skip map[int]bool) {
		for round := 0; round < 2; round++ {
			gossipAll(t, c.Nodes, skip)
		}
	}

	time.Sleep(50 * time.Millisecond) // steady phase

	// Event 1: join. The newcomer announces itself, the fleet converges,
	// and it pulls the keys it now owns.
	before := snapshot()
	j1, err := c.AddNode(nil)
	if err != nil {
		t.Fatal(err)
	}
	converge(nil)
	if frac := remapFrac(before); frac > 1.5/5 {
		t.Errorf("join remapped %.1f%% of the keyspace, want <= %.1f%%", frac*100, 100*1.5/5)
	}
	if n := c.Nodes[j1].PullHandoff(ctx); n == 0 {
		// Only an error if the join actually took workload keys.
		owns := false
		ring := c.Nodes[j1].Ring()
		for _, class := range classNames(classes) {
			if ring.Owner(cluster.KeyFor("dvm", class)) == c.Nodes[j1].Self() {
				owns = true
			}
		}
		if owns {
			t.Error("joining node owns workload keys but pulled no handoff entries")
		}
	}
	time.Sleep(50 * time.Millisecond)

	// Event 2: crash one founding node.
	victim := 1
	down[victim].Store(true)
	c.Stop(victim)
	skip := map[int]bool{victim: true}
	converge(skip)
	time.Sleep(60 * time.Millisecond) // suspicion expires under load
	converge(skip)
	if got := memberState(t, c.Nodes[0], fleet[victim].Self()); got != "dead" {
		t.Errorf("crashed node state = %q, want dead", got)
	}
	time.Sleep(50 * time.Millisecond)

	// Event 3: rejoin a fresh node.
	before = snapshot()
	j2, err := c.AddNode(nil)
	if err != nil {
		t.Fatal(err)
	}
	converge(skip)
	if frac := remapFrac(before); frac > 1.5/5 {
		t.Errorf("rejoin remapped %.1f%% of the keyspace, want <= %.1f%%", frac*100, 100*1.5/5)
	}
	c.Nodes[j2].PullHandoff(ctx)
	time.Sleep(50 * time.Millisecond)

	close(stop)
	wg.Wait()

	if f := failures.Load(); f != 0 {
		t.Errorf("%d client-visible failures across churn (of %d requests), want 0", f, reqs.Load())
	}
	if reqs.Load() < 100 {
		t.Errorf("load generator made only %d requests; the churn ran unloaded", reqs.Load())
	}
	// Four membership epochs (boot, join, death, rejoin): a key may pay
	// one origin fetch in each, never more — duplicates within an epoch
	// would mean single-flight or ownership broke.
	org.mu.Lock()
	for key, n := range org.fetches {
		if n > 4 {
			t.Errorf("key %s paid %d origin fetches across 4 epochs, want <= 4", key, n)
		}
	}
	org.mu.Unlock()
	// And the live fleet agrees on the final membership.
	converge(skip)
	want := c.Nodes[0].Epoch()
	for i, n := range c.Nodes {
		if i == victim {
			continue
		}
		if got := n.Epoch(); got != want {
			t.Errorf("node %d epoch = %d, fleet disagrees (node 0 has %d)", i, got, want)
		}
	}
}

// perKeyOrigin counts origin fetches per class name.
type perKeyOrigin struct {
	inner   proxy.Origin
	mu      sync.Mutex
	fetches map[string]int
}

func (o *perKeyOrigin) Fetch(ctx context.Context, name string) ([]byte, error) {
	o.mu.Lock()
	o.fetches[name]++
	o.mu.Unlock()
	return o.inner.Fetch(ctx, name)
}

// TestClusterLoaderEndpointRecovery: the multi-endpoint client loader
// ejects an endpoint the network has killed and re-probes it after
// ProbeInterval, restoring the full rotation once the endpoint heals.
func TestClusterLoaderEndpointRecovery(t *testing.T) {
	const classes = 6
	c, err := cluster.StartLocal(corpus(t, classes), 2, verifyingProxyCfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	lf := netsim.NewLinkFaults(nil)
	loader, err := proxy.HTTPLoaderMulti(c.URLs(), "client", "dvm", proxy.LoaderOptions{
		Timeout:          2 * time.Second,
		BreakerThreshold: -1,
		Transport:        lf,
		ProbeInterval:    50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	loadAll := func(stage string) {
		t.Helper()
		for _, class := range classNames(classes) {
			if _, err := loader.Load(class); err != nil {
				t.Fatalf("%s: load %s: %v", stage, class, err)
			}
		}
	}
	loadAll("healthy")

	// Kill endpoint 0 at the network layer: loads keep succeeding via
	// endpoint 1, and the dead endpoint is ejected from the rotation.
	host0 := strings.TrimPrefix(c.URLs()[0], "http://")
	lf.Cut(host0)
	for round := 0; round < 3; round++ {
		loadAll("endpoint down")
	}
	if down := loader.Down(); !down[0] || down[1] {
		t.Fatalf("after cut Down() = %v, want [true false]", down)
	}

	// Heal endpoint 0, outlive the probe interval, and kill endpoint 1:
	// every load now has to succeed through the recovered endpoint —
	// proof the re-probe actually put it back in rotation.
	lf.ClearLink(host0)
	time.Sleep(60 * time.Millisecond)
	host1 := strings.TrimPrefix(c.URLs()[1], "http://")
	lf.Cut(host1)
	for round := 0; round < 3; round++ {
		loadAll("recovered")
	}
	if down := loader.Down(); down[0] || !down[1] {
		t.Errorf("after heal+cut Down() = %v, want [false true]", down)
	}
}
