package cluster

import (
	"fmt"
	"testing"
)

func ringMembers(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://10.0.0.%d:8642", i+1)
	}
	return out
}

func ringKeys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = KeyFor("dvm", fmt.Sprintf("net/pkg%d/Applet%05d", i%7, i))
	}
	return out
}

func TestRingDeterministicAcrossNodes(t *testing.T) {
	// Two nodes given the same membership in different orders must agree
	// on every owner — the ring is configuration, not negotiation.
	members := ringMembers(5)
	reversed := make([]string, len(members))
	for i, m := range members {
		reversed[len(members)-1-i] = m
	}
	a, err := NewRing(members, 0, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing(reversed, 0, 42)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range ringKeys(2000) {
		if ao, bo := a.Owner(k), b.Owner(k); ao != bo {
			t.Fatalf("owner disagreement for %q: %s vs %s", k, ao, bo)
		}
	}
}

func TestRingSeedChangesPlacement(t *testing.T) {
	members := ringMembers(4)
	a, _ := NewRing(members, 0, 1)
	b, _ := NewRing(members, 0, 2)
	moved := 0
	keys := ringKeys(2000)
	for _, k := range keys {
		if a.Owner(k) != b.Owner(k) {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("different seeds produced identical placement")
	}
}

// TestRingBalance is the distribution property: with the default vnode
// count, every member's share of a large key population stays within
// 15% of the mean.
func TestRingBalance(t *testing.T) {
	keys := ringKeys(50000)
	for _, n := range []int{2, 4, 8} {
		for _, seed := range []uint64{0, 7, 1999} {
			members := ringMembers(n)
			r, err := NewRing(members, 0, seed)
			if err != nil {
				t.Fatal(err)
			}
			counts := make(map[string]int, n)
			for _, k := range keys {
				counts[r.Owner(k)]++
			}
			mean := float64(len(keys)) / float64(n)
			for _, m := range members {
				dev := (float64(counts[m]) - mean) / mean
				if dev < -0.15 || dev > 0.15 {
					t.Errorf("n=%d seed=%d: member %s holds %d keys, %.1f%% off the mean %.0f",
						n, seed, m, counts[m], dev*100, mean)
				}
			}
		}
	}
}

// TestRingMinimalRemap is the consistency property: adding or removing
// one member moves at most ~1.5/n of the keys (ideal is 1/n for a
// join against the new size, (1/n) of the old size for a leave).
func TestRingMinimalRemap(t *testing.T) {
	keys := ringKeys(50000)
	for _, n := range []int{3, 5, 8} {
		members := ringMembers(n)
		before, err := NewRing(members, 0, 42)
		if err != nil {
			t.Fatal(err)
		}

		// Leave: drop the last member.
		after, err := NewRing(members[:n-1], 0, 42)
		if err != nil {
			t.Fatal(err)
		}
		moved := 0
		for _, k := range keys {
			if before.Owner(k) != after.Owner(k) {
				moved++
			}
		}
		frac := float64(moved) / float64(len(keys))
		if limit := 1.5 / float64(n); frac > limit {
			t.Errorf("leave at n=%d remapped %.1f%% of keys (limit %.1f%%)", n, frac*100, limit*100)
		}
		// Every moved key must land on a surviving member, and keys owned
		// by survivors must not move at all.
		for _, k := range keys {
			bo, ao := before.Owner(k), after.Owner(k)
			if bo != members[n-1] && bo != ao {
				t.Fatalf("leave at n=%d moved key %q owned by surviving member %s", n, k, bo)
			}
		}

		// Join: add one more member.
		joined, err := NewRing(append(append([]string{}, members...), fmt.Sprintf("http://10.0.1.1:8642")), 0, 42)
		if err != nil {
			t.Fatal(err)
		}
		moved = 0
		for _, k := range keys {
			if before.Owner(k) != joined.Owner(k) {
				moved++
			}
		}
		frac = float64(moved) / float64(len(keys))
		if limit := 1.5 / float64(n+1); frac > limit {
			t.Errorf("join at n=%d remapped %.1f%% of keys (limit %.1f%%)", n, frac*100, limit*100)
		}
	}
}

func TestRingValidation(t *testing.T) {
	if _, err := NewRing(nil, 0, 0); err == nil {
		t.Error("empty membership accepted")
	}
	if _, err := NewRing([]string{"a", ""}, 0, 0); err == nil {
		t.Error("empty member accepted")
	}
	r, err := NewRing([]string{"a", "a", "b"}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Size() != 2 {
		t.Errorf("duplicates not removed: size=%d", r.Size())
	}
}
