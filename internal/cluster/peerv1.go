package cluster

// The versioned peer protocol: one POST /peer/v1/batch envelope moves
// every kind of class payload between nodes — fill (owner serves a
// requested class), replica (push to a key's successors), handoff
// (membership-change cache transfer, both pull and drain-push), and
// prefetch (predicted successors piggybacked onto a fill). Every entry
// carries its own attestation and reason; every handler re-verifies
// bytes before they touch a cache. The shared peerEnter middleware does
// what the five pre-v1 endpoints each did by hand: method check, epoch
// piggyback in both directions, draining 429, admission backpressure,
// and trace-span extraction.
//
// The pre-v1 routes (/peer/class, /peer/replica, /peer/handoff,
// /peer/attest, /gossip) served one deprecation release as thin
// aliases and have been removed; see DESIGN.md §14. All
// cluster-internal traffic uses /peer/v1/*.
//
// Prefetch piggyback: when an owner serves class A over a batch fill,
// it consults its successor predictor (internal/prefetch, fed by the
// fill stream itself and by monitor first-use profiles) and appends A's
// top-k successors — only entries it holds locally, only attested ones
// when attestation is on, bounded by the requester's byte budget — so
// the requester's next k misses become local hits: k round trips turned
// into one. The requester declines the piggyback (NoPrefetch) while its
// own admission control reports pressure, and the owner skips it while
// under pressure itself: speculation must never compete with real load.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"dvm/internal/attest"
	"dvm/internal/proxy"
	"dvm/internal/resilience"
	"dvm/internal/telemetry"
)

const (
	// batchPath is the versioned peer envelope route.
	batchPath = "/peer/v1/batch"
	// attestV1Prefix is the versioned variant-vote route (digest-only
	// exchange; class bytes never ride it, so it stays off the batch).
	attestV1Prefix = "/peer/v1/attest/"
	// gossipV1Path is the versioned membership-exchange route.
	gossipV1Path = "/peer/v1/gossip"
)

// maxBatchBytes bounds one batch envelope read: a full-size class plus
// a prefetch piggyback, with JSON/base64 overhead.
const maxBatchBytes = 48 << 20

// defaultPrefetchBudget bounds piggybacked prefetch bytes per fill
// response when Config leaves PrefetchBudget zero.
const defaultPrefetchBudget = 256 << 10

// BatchRequest is the one envelope every peer hop posts.
type BatchRequest struct {
	// Reason is the request's purpose: proxy.ReasonFill with Classes,
	// proxy.ReasonHandoff with Member (pull), or any ingest push with
	// Entries (each entry carries its own reason).
	Reason string `json:"reason"`
	// Member is the requesting node's peer URL.
	Member string `json:"member,omitempty"`
	// Client is the originating client id on a fill — forwarded so the
	// owner's predictor learns per-client request sequences.
	Client string `json:"client,omitempty"`
	// Arch qualifies Classes on a fill.
	Arch string `json:"arch,omitempty"`
	// Classes are the classes wanted (fill).
	Classes []string `json:"classes,omitempty"`
	// MaxBytes bounds the response: the handoff transfer, or the
	// prefetch piggyback on a fill (server clamps to its own limit).
	MaxBytes int `json:"maxBytes,omitempty"`
	// NoPrefetch declines the prefetch piggyback on a fill (requester
	// under admission pressure, or prediction disabled).
	NoPrefetch bool `json:"noPrefetch,omitempty"`
	// Entries is the ingest direction: replica push, drain-side handoff
	// push, or a standalone prefetch push.
	Entries []BatchEntry `json:"entries,omitempty"`
}

// BatchEntry is one class artifact on the wire, with its trust metadata
// and the reason it is moving.
type BatchEntry struct {
	Arch  string `json:"arch"`
	Class string `json:"class"`
	// Reason is one of the proxy.Reason* constants.
	Reason string `json:"reason"`
	Data   []byte `json:"data"`
	// Att is the encoded attestation ("" = unattested; rejected on every
	// hop when attestation is on).
	Att string `json:"att,omitempty"`
	// Rejected and Stale mirror the serving proxy's response flags
	// (fill entries only).
	Rejected bool `json:"rejected,omitempty"`
	Stale    bool `json:"stale,omitempty"`
}

// BatchError reports one entry or class the server could not serve or
// accept; Status carries the per-item HTTP semantics (404 definitive
// miss, 429 shed, 400 rejected payload) that whole-response codes used
// to carry on the pre-v1 single-key routes.
type BatchError struct {
	Arch   string `json:"arch,omitempty"`
	Class  string `json:"class,omitempty"`
	Status int    `json:"status"`
	Error  string `json:"error"`
}

// BatchResponse answers a batch envelope.
type BatchResponse struct {
	Entries []BatchEntry `json:"entries,omitempty"`
	Errors  []BatchError `json:"errors,omitempty"`
}

// peerEnter is the shared middleware for every peer-protocol handler:
// method check, epoch piggyback both ways, draining 429, optional
// admission backpressure shed, and trace join. Returns ok=false with
// the response already written when the request must not proceed.
func (n *Node) peerEnter(w http.ResponseWriter, r *http.Request, method string, sheddable bool) (*telemetry.Trace, bool) {
	if r.Method != method {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return nil, false
	}
	w.Header().Set(epochHeader, fmtEpoch(n.mship.Epoch()))
	if n.mship.Draining() {
		w.Header().Set(drainingHeader, "1")
		w.Header().Set("Retry-After", "1")
		http.Error(w, "draining", http.StatusTooManyRequests)
		return nil, false
	}
	if sheddable && n.local.UnderPressure() {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "overloaded, shed", http.StatusTooManyRequests)
		return nil, false
	}
	n.noteEpoch(r.Header.Get(epochHeader))
	return telemetry.JoinTrace(r.Header.Get(telemetry.TraceHeader)), true
}

// handleBatch serves POST /peer/v1/batch. Ingest pushes (Entries) are
// never pre-shed — the bytes are already on the wire and dropping them
// only re-costs the push; fills let the proxy's admission control
// decide (a cache hit needs no slot); handoff pulls shed under
// pressure, like the pre-v1 route did.
func (n *Node) handleBatch(w http.ResponseWriter, r *http.Request) {
	tr, ok := n.peerEnter(w, r, http.MethodPost, false)
	if !ok {
		return
	}
	var req BatchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBatchBytes)).Decode(&req); err != nil {
		http.Error(w, "bad batch request", http.StatusBadRequest)
		return
	}
	var resp BatchResponse
	switch {
	case len(req.Entries) > 0:
		resp = n.ingestBatch(req)
	case req.Reason == proxy.ReasonFill && len(req.Classes) > 0:
		ctx := telemetry.WithTrace(r.Context(), tr)
		resp = n.serveBatchFill(ctx, tr, req)
	case req.Reason == proxy.ReasonHandoff && req.Member != "":
		if n.local.UnderPressure() {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "overloaded, handoff shed", http.StatusTooManyRequests)
			return
		}
		maxBytes := req.MaxBytes
		if maxBytes <= 0 || maxBytes > n.cfg.HandoffMaxBytes {
			maxBytes = n.cfg.HandoffMaxBytes
		}
		resp.Entries = n.handoffSnapshot(req.Member, maxBytes)
	default:
		http.Error(w, "bad batch request", http.StatusBadRequest)
		return
	}
	w.Header().Set(telemetry.TraceSpansHeader, telemetry.EncodeSpans(tr.Spans()))
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}

// serveBatchFill answers the fill direction: the requested classes plus
// the prefetch piggyback.
func (n *Node) serveBatchFill(ctx context.Context, tr *telemetry.Trace, req BatchRequest) BatchResponse {
	var resp BatchResponse
	client := req.Client
	if client == "" {
		client = "peer"
	}
	// Namespace the client id by the requesting member so identical ids
	// on different requester nodes do not interleave into one false
	// sequence in the predictor.
	seq := req.Member + "|" + client
	served := make([]string, 0, len(req.Classes))
	for _, class := range req.Classes {
		if class == "" || strings.Contains(class, "..") {
			resp.Errors = append(resp.Errors, BatchError{Arch: req.Arch, Class: class,
				Status: http.StatusBadRequest, Error: "bad class name"})
			continue
		}
		res, err := n.serveFill(ctx, seq, req.Arch, class)
		if err != nil {
			resp.Errors = append(resp.Errors, BatchError{Arch: req.Arch, Class: class,
				Status: proxy.StatusFor(err), Error: err.Error()})
			continue
		}
		e := BatchEntry{Arch: req.Arch, Class: class, Reason: proxy.ReasonFill,
			Data: res.Data, Rejected: res.Info.Rejected, Stale: res.Info.Stale}
		if res.Info.Attestation != nil {
			e.Att = res.Info.Attestation.Encode()
		}
		resp.Entries = append(resp.Entries, e)
		served = append(served, class)
	}
	if n.predictor != nil && !req.NoPrefetch && len(served) > 0 && !n.local.UnderPressure() {
		n.piggybackPrefetch(&resp, req, served)
	}
	return resp
}

// serveFill answers one owner-side fill from this node's cache/origin,
// never re-forwarding (localOnly). The fill stream doubles as the
// predictor's live signal: misses routed to this owner are exactly the
// cold-start sequences worth predicting.
func (n *Node) serveFill(ctx context.Context, client, arch, class string) (proxy.Result, error) {
	if n.predictor != nil {
		n.predictor.ObserveRequest(client, arch, class)
	}
	res, err := n.local.Request(withLocalOnly(ctx), proxy.Lookup{Client: client, Arch: arch, Class: class})
	if err == nil {
		n.cPeerServed.Inc()
	}
	return res, err
}

// piggybackPrefetch appends the served classes' predicted successors to
// a fill response: local bytes only (Peek — no LRU distortion), attested
// entries only when attestation is on, bounded by the requester's byte
// budget, highest-confidence first.
func (n *Node) piggybackPrefetch(resp *BatchResponse, req BatchRequest, served []string) {
	budget := req.MaxBytes
	if budget <= 0 || budget > n.cfg.PrefetchBudget {
		budget = n.cfg.PrefetchBudget
	}
	have := make(map[string]bool, len(req.Classes))
	for _, c := range req.Classes {
		have[c] = true
	}
	total := 0
	pushed := 0
	for _, class := range served {
		for _, pred := range n.predictor.Predict(req.Arch, class) {
			if have[pred.Class] {
				continue
			}
			have[pred.Class] = true // dedup across served classes either way
			data, att, ok := n.local.Peek(req.Arch, pred.Class)
			if !ok {
				continue
			}
			if n.authority != nil && att == nil {
				// Never push unattested bytes into a fleet that verifies.
				continue
			}
			if total+len(data) > budget {
				continue
			}
			e := BatchEntry{Arch: req.Arch, Class: pred.Class, Reason: proxy.ReasonPrefetch, Data: data}
			if att != nil {
				e.Att = att.Encode()
			}
			resp.Entries = append(resp.Entries, e)
			total += len(data)
			pushed++
		}
	}
	if pushed > 0 {
		n.cPrefetchPushed.Add(int64(pushed))
		n.hPrefetchBatch.Observe(time.Duration(total))
	}
}

// ingestBatch accepts pushed entries (replica, handoff-push, prefetch),
// re-verifying each against its own attestation before it can touch the
// cache. Rejected entries come back as BatchErrors; the push is
// best-effort, so a partial accept is a success with a shorter ledger.
func (n *Node) ingestBatch(req BatchRequest) BatchResponse {
	var resp BatchResponse
	for _, e := range req.Entries {
		if status, err := n.ingestEntry(e); err != nil {
			resp.Errors = append(resp.Errors, BatchError{Arch: e.Arch, Class: e.Class,
				Status: status, Error: err.Error()})
		}
	}
	return resp
}

// ingestEntry verifies and warms one pushed entry — the single
// ingestion gate behind the batch handler. Every entry re-verifies its
// attestation against its bytes
// here, whatever the reason; the caches only ever hold artifacts whose
// seal checks out.
func (n *Node) ingestEntry(e BatchEntry) (int, error) {
	if e.Arch == "" || e.Class == "" || strings.Contains(e.Class, "..") ||
		len(e.Data) == 0 || len(e.Data) > maxPeerClassBytes {
		return http.StatusBadRequest, fmt.Errorf("cluster: bad batch entry %s/%s", e.Arch, e.Class)
	}
	att, aerr := n.verifyPayload(e.Att, e.Arch, e.Class, e.Data)
	if aerr != nil {
		n.cAttestRejects.Inc()
		return http.StatusBadRequest, fmt.Errorf("cluster: entry %s failed attestation: %w", e.Class, aerr)
	}
	reason := e.Reason
	if reason == "" {
		reason = proxy.ReasonReplica
	}
	n.local.Warm([]proxy.CacheEntry{{Arch: e.Arch, Class: e.Class, Data: e.Data, Att: att, Reason: reason}})
	switch reason {
	case proxy.ReasonHandoff:
		n.cHandoffKeys.Inc()
	case proxy.ReasonPrefetch:
		n.cPrefetchReceived.Inc()
	default:
		n.cReplicaStored.Inc()
	}
	return 0, nil
}

// handoffSnapshot assembles the batch-protocol view of the cached
// entries member now owns (see handoffEntries for the selection and
// heat ordering).
func (n *Node) handoffSnapshot(member string, maxBytes int) []BatchEntry {
	entries := n.handoffEntries(member, maxBytes)
	out := make([]BatchEntry, 0, len(entries))
	for _, e := range entries {
		be := BatchEntry{Arch: e.Arch, Class: e.Class, Reason: proxy.ReasonHandoff, Data: e.Data}
		if e.Att != nil {
			be.Att = e.Att.Encode()
		}
		out = append(out, be)
	}
	return out
}

// doBatch posts one batch envelope to peer and decodes the response.
// Both directions piggyback the membership epoch; the caller's trace
// rides the request header and the peer's spans come back shifted into
// the local timeline. A 429 is returned as ErrOverloaded (with the
// draining note recorded) so callers treat it as a healthy shed.
func (n *Node) doBatch(ctx context.Context, peer string, breq BatchRequest, timeout time.Duration) (*BatchResponse, error) {
	tr := telemetry.FromContext(ctx)
	hopStart := tr.Elapsed()
	body, err := json.Marshal(breq)
	if err != nil {
		return nil, resilience.Permanent(err)
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, peer+batchPath, bytes.NewReader(body))
	if err != nil {
		return nil, resilience.Permanent(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(epochHeader, fmtEpoch(n.mship.Epoch()))
	if id := tr.ID(); id != "" {
		req.Header.Set(telemetry.TraceHeader, id)
	}
	resp, err := n.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	n.noteEpoch(resp.Header.Get(epochHeader))
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		err := fmt.Errorf("cluster: peer %s: %s: %s", peer, resp.Status, strings.TrimSpace(string(b)))
		if resp.StatusCode == http.StatusTooManyRequests {
			if resp.Header.Get(drainingHeader) == "1" {
				n.mship.NoteDraining(peer)
			}
			return nil, fmt.Errorf("%v: %w", err, proxy.ErrOverloaded)
		}
		return nil, err
	}
	var br BatchResponse
	if derr := json.NewDecoder(io.LimitReader(resp.Body, maxBatchBytes)).Decode(&br); derr != nil {
		return nil, fmt.Errorf("cluster: peer %s: bad batch response: %w", peer, derr)
	}
	if spans, derr := telemetry.DecodeSpans(resp.Header.Get(telemetry.TraceSpansHeader)); derr == nil {
		tr.AppendShifted(spans, hopStart)
	}
	return &br, nil
}

// entryError maps a per-item BatchError back to the error semantics the
// fill chain understands (404 definitive, 429 healthy shed).
func entryError(peer string, be BatchError) error {
	err := fmt.Errorf("cluster: peer %s: %s: %d %s", peer, be.Class, be.Status, be.Error)
	switch be.Status {
	case http.StatusNotFound:
		return resilience.Permanent(err)
	case http.StatusTooManyRequests:
		return fmt.Errorf("%v: %w", err, proxy.ErrOverloaded)
	}
	return err
}

// fetchPeer performs one fill against an owner over the batch protocol
// and ingests whatever prefetch entries the owner piggybacked.
func (n *Node) fetchPeer(ctx context.Context, owner string, l proxy.Lookup) proxy.PeerResult {
	hopTimer := telemetry.StartTimer()
	defer func() { n.hPeerFetch.Observe(hopTimer.Elapsed()) }()
	breq := BatchRequest{
		Reason:  proxy.ReasonFill,
		Member:  n.cfg.Self,
		Client:  l.Client,
		Arch:    l.Arch,
		Classes: []string{l.Class},
		// Decline the piggyback while under local pressure: speculative
		// ingestion must not compete with admission-controlled work.
		NoPrefetch: n.predictor == nil || n.local.UnderPressure(),
		MaxBytes:   n.cfg.PrefetchBudget,
	}
	br, err := n.doBatch(ctx, owner, breq, n.cfg.PeerTimeout)
	if err != nil {
		return proxy.PeerResult{Outcome: proxy.PeerFailed, Err: err}
	}
	res := proxy.PeerResult{Outcome: proxy.PeerFailed,
		Err: fmt.Errorf("cluster: peer %s: no entry for %s", owner, l.Class)}
	for _, be := range br.Errors {
		if be.Class == l.Class {
			res.Err = entryError(owner, be)
		}
	}
	for _, e := range br.Entries {
		switch {
		case e.Reason == proxy.ReasonFill && e.Class == l.Class:
			if len(e.Data) == 0 || len(e.Data) > maxPeerClassBytes {
				res.Err = resilience.Permanent(fmt.Errorf("cluster: peer %s: %s: bad entry size %d", owner, l.Class, len(e.Data)))
				continue
			}
			// Re-verify before trusting the bytes. A seal that fails
			// verification is corruption evidence against the owner
			// (ledger); a missing attestation proves only a config
			// mismatch. Either way the bytes are discarded.
			att, aerr := n.verifyPayload(e.Att, l.Arch, l.Class, e.Data)
			if aerr != nil {
				n.cAttestRejects.Inc()
				if errors.Is(aerr, attest.ErrVerify) {
					n.noteDivergence(owner)
				}
				res.Err = fmt.Errorf("cluster: peer %s: %s: %w", owner, l.Class, aerr)
				continue
			}
			res = proxy.PeerResult{Outcome: proxy.PeerServed, Data: e.Data, Att: att,
				Rejected: e.Rejected, Stale: e.Stale}
		case e.Reason == proxy.ReasonPrefetch:
			n.ingestPrefetchEntry(owner, e)
		}
	}
	return res
}

// ingestPrefetchEntry warms one piggybacked successor. Same trust gate
// as every other hop: verify or discard. The proxy's prefetch placement
// (cold-end insert, never evict) and its waste ledger take it from
// here.
func (n *Node) ingestPrefetchEntry(owner string, e BatchEntry) {
	if e.Arch == "" || e.Class == "" || len(e.Data) == 0 || len(e.Data) > maxPeerClassBytes {
		return
	}
	att, aerr := n.verifyPayload(e.Att, e.Arch, e.Class, e.Data)
	if aerr != nil {
		n.cAttestRejects.Inc()
		if errors.Is(aerr, attest.ErrVerify) {
			n.noteDivergence(owner)
		}
		return
	}
	if n.local.Warm([]proxy.CacheEntry{{Arch: e.Arch, Class: e.Class, Data: e.Data, Att: att, Reason: proxy.ReasonPrefetch}}) > 0 {
		n.cPrefetchReceived.Inc()
	}
}

// pushEntries posts ingest entries to one peer. Reports how many the
// peer accepted (best-effort; a shed or dead peer just means colder
// caches).
func (n *Node) pushEntries(ctx context.Context, peer string, entries []BatchEntry) int {
	if len(entries) == 0 {
		return 0
	}
	br, err := n.doBatch(ctx, peer, BatchRequest{Reason: entries[0].Reason, Member: n.cfg.Self, Entries: entries}, n.cfg.PeerTimeout)
	if err != nil {
		return 0
	}
	return len(entries) - len(br.Errors)
}

// FeedProfile replays a class-transition order (optimize.ClassOrder of
// a monitor first-use profile) into this node's predictor: the offline
// half of the prediction signal, alongside the live fill stream.
func (n *Node) FeedProfile(arch string, classes []string) {
	if n.predictor != nil {
		n.predictor.ObserveOrder(arch, classes)
	}
}

// PrefetchPushed returns how many successor entries this node has
// piggybacked onto fills it served (diagnostics).
func (n *Node) PrefetchPushed() int64 { return n.cPrefetchPushed.Load() }

// PrefetchReceived returns how many piggybacked entries this node has
// accepted into its cache (diagnostics).
func (n *Node) PrefetchReceived() int64 { return n.cPrefetchReceived.Load() }
