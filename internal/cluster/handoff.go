package cluster

// Replication and cache handoff: the warm paths that keep an ownership
// change from turning into a cold-start storm.
//
// Replication (push, continuous): every class this node transforms
// itself is pushed, asynchronously and best-effort, to the key's other
// ring owners (Replication-1 successors). A push lands in the
// receiver's cache via proxy.Warm, so when a primary dies its successor
// already holds the bytes — the remap degrades to a warm replica hit
// instead of an origin fetch plus a pipeline run. The push queue is a
// small bounded channel drained by one worker: the transform path never
// blocks on replication, and under a flood pushes are dropped (counted)
// rather than queued without bound.
//
// Handoff (pull, on membership change): when the ring changes under a
// node — it just joined, or a death promoted it to primary for keys it
// never served — it asks each live peer for the cached entries it now
// owns. The *server* filters: it walks its own cache hottest-first
// (LRU order) and returns entries whose current primary is the
// requester, bounded by maxBytes, and sheds the request outright when
// its admission control reports pressure — warming a newcomer must
// never out-compete serving clients. Draining inverts the direction:
// the leaver pushes its cache to each key's new owners before its HTTP
// server goes away (gossip.go Drain).

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"time"

	"dvm/internal/attest"
	"dvm/internal/proxy"
	"dvm/internal/telemetry"
)

// replicaPathPrefix is the replica-push route: POST
// /peer/replica/<name>.class with X-DVM-Arch stores transformed bytes
// in the receiver's cache.
const replicaPathPrefix = "/peer/replica/"

// handoffPath is the cache-handoff route: POST {member, maxBytes}
// returns the server's cached entries now owned by member.
const handoffPath = "/peer/handoff"

// defaultHandoffMaxBytes bounds one handoff transfer when Config leaves
// it zero: enough for the hot tail, far from a full cache copy.
const defaultHandoffMaxBytes = 8 << 20

// replQueueLen is the replication push queue bound. Pushes beyond it
// are dropped (and counted): replication is an optimization, and a
// backlog that survives 256 entries means the successor is slow or
// gone — exactly when queuing more would hurt.
const replQueueLen = 256

type replItem struct {
	arch, class string
	data        []byte
	att         *attest.Attestation
}

// onTransformed is the proxy's OnTransformed hook: enqueue the freshly
// transformed class for replication to its other owners, attestation
// included so the receiver can re-verify. Runs on the flight goroutine
// — must never block.
func (n *Node) onTransformed(arch, class string, data []byte, att *attest.Attestation) {
	select {
	case n.replCh <- replItem{arch: arch, class: class, data: data, att: att}:
	default:
		n.cReplicaDrops.Inc()
	}
}

// replWorker drains the push queue.
func (n *Node) replWorker() {
	defer n.wg.Done()
	for {
		select {
		case <-n.closed:
			return
		case it := <-n.replCh:
			n.pushReplicas(it)
		}
	}
}

// pushReplicas sends one transformed class to the key's other owners.
// Best-effort: a failed push costs nothing but the warm copy.
func (n *Node) pushReplicas(it replItem) {
	owners := n.currentRing().Owners(KeyFor(it.arch, it.class), n.cfg.Replication)
	for _, o := range owners {
		if o == n.cfg.Self {
			continue
		}
		if n.mship.State(o) != stateAlive {
			continue
		}
		if n.pushReplica(context.Background(), o, it.arch, it.class, it.data, it.att) {
			n.cReplicaPush.Inc()
		}
	}
}

// pushReplica performs one replica POST. Reports success.
func (n *Node) pushReplica(ctx context.Context, peer, arch, class string, data []byte, att *attest.Attestation) bool {
	ctx, cancel := context.WithTimeout(ctx, n.cfg.PeerTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, peer+replicaPathPrefix+class+".class", bytes.NewReader(data))
	if err != nil {
		return false
	}
	req.Header.Set("X-DVM-Arch", arch)
	req.Header.Set("Content-Type", "application/java-vm")
	req.Header.Set(epochHeader, fmtEpoch(n.mship.Epoch()))
	if att != nil {
		req.Header.Set(attest.Header, att.Encode())
	}
	resp, err := n.client.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 256))
	if resp.Header.Get(drainingHeader) == "1" {
		n.mship.NoteDraining(peer)
		return false
	}
	n.noteEpoch(resp.Header.Get(epochHeader))
	return resp.StatusCode == http.StatusNoContent || resp.StatusCode == http.StatusOK
}

// handleReplica stores a pushed replica in the local cache.
func (n *Node) handleReplica(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if n.mship.Draining() {
		w.Header().Set(drainingHeader, "1")
		http.Error(w, "draining", http.StatusTooManyRequests)
		return
	}
	name := strings.TrimPrefix(r.URL.Path, replicaPathPrefix)
	name = strings.TrimSuffix(name, ".class")
	arch := r.Header.Get("X-DVM-Arch")
	if name == "" || strings.Contains(name, "..") || arch == "" {
		http.Error(w, "bad replica", http.StatusBadRequest)
		return
	}
	data, err := io.ReadAll(io.LimitReader(r.Body, maxPeerClassBytes+1))
	if err != nil || len(data) > maxPeerClassBytes {
		http.Error(w, "replica too large", http.StatusBadRequest)
		return
	}
	n.noteEpoch(r.Header.Get(epochHeader))
	// Re-verify before warming: a replica push is bytes on the wire like
	// any other hop, and the cache must only ever hold artifacts whose
	// seal checks out. The pusher's identity is self-reported, so a bad
	// payload is rejected and counted but not ledgered.
	att, aerr := n.verifyPayload(r.Header.Get(attest.Header), arch, name, data)
	if aerr != nil {
		n.cAttestRejects.Inc()
		http.Error(w, "replica failed attestation: "+aerr.Error(), http.StatusBadRequest)
		return
	}
	n.local.Warm(arch, name, data, att)
	n.cReplicaStored.Inc()
	w.Header().Set(epochHeader, fmtEpoch(n.mship.Epoch()))
	w.WriteHeader(http.StatusNoContent)
}

// handoffRequest is the pull-handoff wire form.
type handoffRequest struct {
	// Member is the requester's peer URL; the server returns entries
	// whose current ring primary is this member.
	Member string `json:"member"`
	// MaxBytes bounds the transfer (server clamps to its own limit).
	MaxBytes int `json:"maxBytes"`
}

// handoffResponse carries the transferred entries.
type handoffResponse struct {
	Entries []proxy.CachedEntry `json:"entries"`
}

// handleHandoff serves a pull handoff: the requester's inherited keys,
// hottest first, bounded by bytes — unless this node is under admission
// pressure, in which case the whole transfer is shed (the requester
// warms up the slow way, via misses).
func (n *Node) handleHandoff(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if n.local.UnderPressure() {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "overloaded, handoff shed", http.StatusTooManyRequests)
		return
	}
	var req handoffRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4096)).Decode(&req); err != nil || req.Member == "" {
		http.Error(w, "bad handoff request", http.StatusBadRequest)
		return
	}
	maxBytes := req.MaxBytes
	if maxBytes <= 0 || maxBytes > n.cfg.HandoffMaxBytes {
		maxBytes = n.cfg.HandoffMaxBytes
	}
	ring := n.currentRing()
	entries := n.local.CacheSnapshot(maxBytes, func(arch, class string) bool {
		return ring.Owners(KeyFor(arch, class), 1)[0] == req.Member
	})
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(epochHeader, fmtEpoch(n.mship.Epoch()))
	_ = json.NewEncoder(w).Encode(handoffResponse{Entries: entries})
}

// PullHandoff asks every live peer for the cached entries this node now
// owns and warms the local cache with them. Called automatically after
// a ring change (handoffWorker); manual-mode tests call it directly.
// Best-effort: a peer that sheds or fails just means a colder start.
func (n *Node) PullHandoff(ctx context.Context) int {
	timer := telemetry.StartTimer()
	total := 0
	for _, p := range n.mship.Peers(func(s memberState) bool { return s == stateAlive }) {
		if ctx.Err() != nil {
			break
		}
		total += n.pullFrom(ctx, p)
	}
	n.hHandoff.Observe(timer.Elapsed())
	return total
}

// pullFrom pulls this node's inherited entries from one peer.
func (n *Node) pullFrom(ctx context.Context, peer string) int {
	ctx, cancel := context.WithTimeout(ctx, n.cfg.HandoffTimeout)
	defer cancel()
	body, _ := json.Marshal(handoffRequest{Member: n.cfg.Self, MaxBytes: n.cfg.HandoffMaxBytes})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, peer+handoffPath, bytes.NewReader(body))
	if err != nil {
		return 0
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := n.client.Do(req)
	if err != nil {
		return 0
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0
	}
	var hr handoffResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, int64(n.cfg.HandoffMaxBytes)+maxGossipBytes)).Decode(&hr); err != nil {
		return 0
	}
	n.noteEpoch(resp.Header.Get(epochHeader))
	for _, e := range hr.Entries {
		if e.Arch == "" || e.Class == "" || len(e.Data) == 0 || len(e.Data) > maxPeerClassBytes {
			continue
		}
		// Handed-off entries re-verify like any other hop; an entry whose
		// attestation fails (or is missing, with attestation on) is
		// dropped — inheriting a key is not worth inheriting corruption.
		if n.authority != nil {
			if err := n.authority.Verify(e.Att, e.Arch, e.Class, e.Data); err != nil {
				n.cAttestRejects.Inc()
				continue
			}
		}
		n.local.Warm(e.Arch, e.Class, e.Data, e.Att)
		n.cHandoffKeys.Inc()
	}
	return len(hr.Entries)
}

// pushHandoff is the drain-side transfer: walk the local cache hottest
// first and push each entry to its new primary (the ring no longer
// includes this node once DrainSelf has run).
func (n *Node) pushHandoff(ctx context.Context) error {
	ring := n.currentRing()
	entries := n.local.CacheSnapshot(n.cfg.HandoffMaxBytes, nil)
	for _, e := range entries {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		owner := ring.Owners(KeyFor(e.Arch, e.Class), 1)[0]
		if owner == n.cfg.Self {
			return nil // alone in the ring: nobody to hand off to
		}
		if n.mship.State(owner) != stateAlive {
			continue
		}
		if n.pushReplica(ctx, owner, e.Arch, e.Class, e.Data, e.Att) {
			n.cHandoffKeys.Inc()
		}
	}
	return nil
}

// handoffWorker runs a pull handoff after each ring change (coalesced
// through a 1-slot channel: membership churn mid-pull just schedules
// one more round). It waits one gossip interval first: the ring change
// that scheduled the pull — typically this node's own join — needs a
// round to reach the peers whose handoff filters must already count
// this node as an owner.
func (n *Node) handoffWorker() {
	defer n.wg.Done()
	for {
		select {
		case <-n.closed:
			return
		case <-n.handoffCh:
		}
		select {
		case <-n.closed:
			return
		case <-time.After(n.cfg.GossipInterval):
		}
		ctx, cancel := context.WithTimeout(context.Background(), n.cfg.HandoffTimeout)
		n.PullHandoff(ctx)
		cancel()
	}
}

// pokeHandoff schedules a pull handoff (non-blocking, coalescing).
func (n *Node) pokeHandoff() {
	select {
	case n.handoffCh <- struct{}{}:
	default:
	}
}
