package cluster

// Replication and cache handoff: the warm paths that keep an ownership
// change from turning into a cold-start storm.
//
// Replication (push, continuous): every class this node transforms
// itself is pushed, asynchronously and best-effort, to the key's other
// ring owners (Replication-1 successors). A push lands in the
// receiver's cache via proxy.Warm, so when a primary dies its successor
// already holds the bytes — the remap degrades to a warm replica hit
// instead of an origin fetch plus a pipeline run. The push queue is a
// small bounded channel drained by one worker: the transform path never
// blocks on replication, and under a flood pushes are dropped (counted)
// rather than queued without bound.
//
// Handoff (pull, on membership change): when the ring changes under a
// node — it just joined, or a death promoted it to primary for keys it
// never served — it asks each live peer for the cached entries it now
// owns. The *server* filters: it walks its own cache hottest-first
// (LRU order) and returns entries whose current primary is the
// requester, bounded by maxBytes, and sheds the request outright when
// its admission control reports pressure — warming a newcomer must
// never out-compete serving clients. Draining inverts the direction:
// the leaver pushes its cache to each key's new owners before its HTTP
// server goes away (gossip.go Drain).

import (
	"context"
	"sort"
	"time"

	"dvm/internal/attest"
	"dvm/internal/proxy"
	"dvm/internal/telemetry"
)

// defaultHandoffMaxBytes bounds one handoff transfer when Config leaves
// it zero: enough for the hot tail, far from a full cache copy.
const defaultHandoffMaxBytes = 8 << 20

// replQueueLen is the replication push queue bound. Pushes beyond it
// are dropped (and counted): replication is an optimization, and a
// backlog that survives 256 entries means the successor is slow or
// gone — exactly when queuing more would hurt.
const replQueueLen = 256

type replItem struct {
	arch, class string
	data        []byte
	att         *attest.Attestation
}

// onTransformed is the proxy's OnTransformed hook: enqueue the freshly
// transformed class for replication to its other owners, attestation
// included so the receiver can re-verify. Runs on the flight goroutine
// — must never block.
func (n *Node) onTransformed(arch, class string, data []byte, att *attest.Attestation) {
	select {
	case n.replCh <- replItem{arch: arch, class: class, data: data, att: att}:
	default:
		n.cReplicaDrops.Inc()
	}
}

// replWorker drains the push queue.
func (n *Node) replWorker() {
	defer n.wg.Done()
	for {
		select {
		case <-n.closed:
			return
		case it := <-n.replCh:
			n.pushReplicas(it)
		}
	}
}

// pushReplicas sends one transformed class to the key's other owners
// over the batch protocol. Best-effort: a failed push costs nothing but
// the warm copy.
func (n *Node) pushReplicas(it replItem) {
	e := BatchEntry{Arch: it.arch, Class: it.class, Reason: proxy.ReasonReplica, Data: it.data}
	if it.att != nil {
		e.Att = it.att.Encode()
	}
	owners := n.currentRing().Owners(KeyFor(it.arch, it.class), n.cfg.Replication)
	for _, o := range owners {
		if o == n.cfg.Self {
			continue
		}
		if n.mship.State(o) != stateAlive {
			continue
		}
		if n.pushEntries(context.Background(), o, []BatchEntry{e}) > 0 {
			n.cReplicaPush.Inc()
		}
	}
}

// handoffEntries selects the cached entries member now owns,
// hottest-profile-first: the predictor's decayed heat orders the
// transfer (stable sort, so entries the predictor has never seen keep
// their MRU order), then the byte budget cuts the tail. A joining node
// therefore warms up in the order the workload will actually ask.
func (n *Node) handoffEntries(member string, maxBytes int) []proxy.CacheEntry {
	ring := n.currentRing()
	entries := n.heatOrdered(n.local.CacheSnapshot(0, func(arch, class string) bool {
		return ring.Owners(KeyFor(arch, class), 1)[0] == member
	}))
	out := entries[:0]
	total := 0
	for _, e := range entries {
		if maxBytes > 0 && total+len(e.Data) > maxBytes && len(out) > 0 {
			break
		}
		out = append(out, e)
		total += len(e.Data)
		if maxBytes > 0 && total >= maxBytes {
			break
		}
	}
	return out
}

// heatOrdered stable-sorts cache entries by descending predictor heat;
// a nil predictor leaves the MRU order untouched.
func (n *Node) heatOrdered(entries []proxy.CacheEntry) []proxy.CacheEntry {
	if n.predictor != nil {
		sort.SliceStable(entries, func(i, j int) bool {
			return n.predictor.Heat(entries[i].Arch, entries[i].Class) >
				n.predictor.Heat(entries[j].Arch, entries[j].Class)
		})
	}
	return entries
}

// PullHandoff asks every live peer for the cached entries this node now
// owns and warms the local cache with them. Called automatically after
// a ring change (handoffWorker); manual-mode tests call it directly.
// Best-effort: a peer that sheds or fails just means a colder start.
func (n *Node) PullHandoff(ctx context.Context) int {
	timer := telemetry.StartTimer()
	total := 0
	for _, p := range n.mship.Peers(func(s memberState) bool { return s == stateAlive }) {
		if ctx.Err() != nil {
			break
		}
		total += n.pullFrom(ctx, p)
	}
	n.hHandoff.Observe(timer.Elapsed())
	return total
}

// pullFrom pulls this node's inherited entries from one peer over the
// batch protocol. Handed-off entries re-verify like any other hop
// (ingestEntry); an entry whose attestation fails is dropped —
// inheriting a key is not worth inheriting corruption.
func (n *Node) pullFrom(ctx context.Context, peer string) int {
	br, err := n.doBatch(ctx, peer, BatchRequest{
		Reason: proxy.ReasonHandoff, Member: n.cfg.Self, MaxBytes: n.cfg.HandoffMaxBytes,
	}, n.cfg.HandoffTimeout)
	if err != nil {
		return 0
	}
	got := 0
	for _, e := range br.Entries {
		e.Reason = proxy.ReasonHandoff
		if _, ierr := n.ingestEntry(e); ierr == nil {
			got++
		}
	}
	return got
}

// pushHandoff is the drain-side transfer: hand the local cache,
// hottest-profile-first, to each key's new primary (the ring no longer
// includes this node once DrainSelf has run), one batch per receiver.
func (n *Node) pushHandoff(ctx context.Context) error {
	ring := n.currentRing()
	entries := n.heatOrdered(n.local.CacheSnapshot(n.cfg.HandoffMaxBytes, nil))
	batches := make(map[string][]BatchEntry)
	order := make([]string, 0, 4) // deterministic push order (hottest first)
	for _, e := range entries {
		owner := ring.Owners(KeyFor(e.Arch, e.Class), 1)[0]
		if owner == n.cfg.Self {
			return nil // alone in the ring: nobody to hand off to
		}
		if n.mship.State(owner) != stateAlive {
			continue
		}
		be := BatchEntry{Arch: e.Arch, Class: e.Class, Reason: proxy.ReasonHandoff, Data: e.Data}
		if e.Att != nil {
			be.Att = e.Att.Encode()
		}
		if _, seen := batches[owner]; !seen {
			order = append(order, owner)
		}
		batches[owner] = append(batches[owner], be)
	}
	for _, owner := range order {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		n.cHandoffKeys.Add(int64(n.pushEntries(ctx, owner, batches[owner])))
	}
	return nil
}

// handoffWorker runs a pull handoff after each ring change (coalesced
// through a 1-slot channel: membership churn mid-pull just schedules
// one more round). It waits one gossip interval first: the ring change
// that scheduled the pull — typically this node's own join — needs a
// round to reach the peers whose handoff filters must already count
// this node as an owner.
func (n *Node) handoffWorker() {
	defer n.wg.Done()
	for {
		select {
		case <-n.closed:
			return
		case <-n.handoffCh:
		}
		select {
		case <-n.closed:
			return
		case <-time.After(n.cfg.GossipInterval):
		}
		ctx, cancel := context.WithTimeout(context.Background(), n.cfg.HandoffTimeout)
		n.PullHandoff(ctx)
		cancel()
	}
}

// pokeHandoff schedules a pull handoff (non-blocking, coalescing).
func (n *Node) pokeHandoff() {
	select {
	case n.handoffCh <- struct{}{}:
	default:
	}
}
