package cluster

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sync"

	"dvm/internal/proxy"
)

// LocalCluster is an in-process cluster: n nodes, each with a real HTTP
// listener on a loopback port, so the peer protocol runs over the
// actual wire path while everything lives in one process. It backs the
// eval scalability tables and the chaos tests, and doubles as a
// single-machine deployment helper. With live membership it also models
// churn: Stop is a crash (server killed, gossip loops stopped, no
// goodbye), Drain a graceful leave, AddNode a join.
type LocalCluster struct {
	Nodes []*Node

	origin  proxy.Origin
	mkProxy func(i int) proxy.Config
	mkClust func(i int) Config

	servers   []*http.Server
	listeners []net.Listener
	wg        sync.WaitGroup

	mu      sync.Mutex
	stopped []bool
}

// StartLocal builds and serves n nodes over origin. mkProxy(i) supplies
// each node's proxy config (nil = cache enabled, defaults otherwise);
// mkCluster(i) supplies each node's cluster config, whose Self and
// Peers are overwritten with the loopback endpoints (nil = defaults).
// Listeners are bound before any node is constructed, so every node is
// born with the complete membership list.
func StartLocal(origin proxy.Origin, n int, mkProxy func(i int) proxy.Config, mkCluster func(i int) Config) (*LocalCluster, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: local cluster needs at least 1 node")
	}
	c := &LocalCluster{origin: origin, mkProxy: mkProxy, mkClust: mkCluster, stopped: make([]bool, n)}
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			c.Close()
			return nil, err
		}
		c.listeners = append(c.listeners, l)
		urls[i] = "http://" + l.Addr().String()
	}
	for i := 0; i < n; i++ {
		if err := c.startNode(i, urls[i], urls); err != nil {
			c.Close()
			return nil, err
		}
	}
	return c, nil
}

// startNode constructs node i over an already-bound listener and serves
// it. peers seeds the node's membership.
func (c *LocalCluster) startNode(i int, self string, peers []string) error {
	pcfg := proxy.Config{CacheEnabled: true}
	if c.mkProxy != nil {
		pcfg = c.mkProxy(i)
	}
	ccfg := Config{}
	if c.mkClust != nil {
		ccfg = c.mkClust(i)
	}
	ccfg.Self = self
	ccfg.Peers = peers
	node, err := NewNode(c.origin, pcfg, ccfg)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: node.Handler()}
	if i < len(c.Nodes) {
		c.Nodes[i], c.servers[i] = node, srv
	} else {
		c.Nodes = append(c.Nodes, node)
		c.servers = append(c.servers, srv)
	}
	c.wg.Add(1)
	go func(srv *http.Server, l net.Listener) {
		defer c.wg.Done()
		_ = srv.Serve(l)
	}(srv, c.listeners[i])
	return nil
}

// AddNode binds a fresh listener and starts one more node, seeded with
// the given peers (nil = every currently-running node) — a live join.
// Returns the new node's index. The join propagates by gossip: in
// manual mode, call the new node's GossipNow to announce it.
func (c *LocalCluster) AddNode(peers []string) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return -1, err
	}
	if peers == nil {
		for i, n := range c.Nodes {
			if !c.stopped[i] {
				peers = append(peers, n.Self())
			}
		}
	}
	i := len(c.Nodes)
	c.listeners = append(c.listeners, l)
	c.stopped = append(c.stopped, false)
	if err := c.startNode(i, "http://"+l.Addr().String(), peers); err != nil {
		_ = l.Close()
		c.listeners = c.listeners[:i]
		c.stopped = c.stopped[:i]
		return -1, err
	}
	return i, nil
}

// URLs returns the nodes' peer endpoints in node order.
func (c *LocalCluster) URLs() []string {
	out := make([]string, len(c.Nodes))
	for i, n := range c.Nodes {
		out[i] = n.Self()
	}
	return out
}

// Stop crashes node i: its HTTP server dies and its background loops
// stop, with no departure announcement — to the rest of the fleet it
// just went silent, which is exactly what failure detection must
// handle. The in-process object remains readable for assertions.
func (c *LocalCluster) Stop(i int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if i < 0 || i >= len(c.servers) || c.stopped[i] {
		return
	}
	c.stopped[i] = true
	_ = c.servers[i].Close()
	c.Nodes[i].Close()
}

// Drain gracefully removes node i: announce, hand off, then shut the
// server down — the polite counterpart of Stop.
func (c *LocalCluster) Drain(ctx context.Context, i int) error {
	c.mu.Lock()
	if i < 0 || i >= len(c.servers) || c.stopped[i] {
		c.mu.Unlock()
		return fmt.Errorf("cluster: node %d not running", i)
	}
	node, srv := c.Nodes[i], c.servers[i]
	c.mu.Unlock()
	err := node.Drain(ctx)
	c.mu.Lock()
	if !c.stopped[i] {
		c.stopped[i] = true
		_ = srv.Close()
		node.Close()
	}
	c.mu.Unlock()
	return err
}

// Close shuts down every node's server and background loops.
func (c *LocalCluster) Close() {
	c.mu.Lock()
	for i, srv := range c.servers {
		if !c.stopped[i] {
			c.stopped[i] = true
			_ = srv.Close()
			c.Nodes[i].Close()
		}
	}
	// Listeners without a server yet (constructor failure path).
	for i := len(c.servers); i < len(c.listeners); i++ {
		_ = c.listeners[i].Close()
	}
	c.mu.Unlock()
	c.wg.Wait()
}
