package cluster

import (
	"fmt"
	"net"
	"net/http"
	"sync"

	"dvm/internal/proxy"
)

// LocalCluster is an in-process cluster: n nodes, each with a real HTTP
// listener on a loopback port, so the peer protocol runs over the
// actual wire path while everything lives in one process. It backs the
// eval scalability tables and the chaos tests, and doubles as a
// single-machine deployment helper.
type LocalCluster struct {
	Nodes []*Node

	servers   []*http.Server
	listeners []net.Listener
	wg        sync.WaitGroup

	mu      sync.Mutex
	stopped []bool
}

// StartLocal builds and serves n nodes over origin. mkProxy(i) supplies
// each node's proxy config (nil = cache enabled, defaults otherwise);
// mkCluster(i) supplies each node's cluster config, whose Self and
// Peers are overwritten with the loopback endpoints (nil = defaults).
// Listeners are bound before any node is constructed, so every node is
// born with the complete membership list.
func StartLocal(origin proxy.Origin, n int, mkProxy func(i int) proxy.Config, mkCluster func(i int) Config) (*LocalCluster, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: local cluster needs at least 1 node")
	}
	c := &LocalCluster{stopped: make([]bool, n)}
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			c.Close()
			return nil, err
		}
		c.listeners = append(c.listeners, l)
		urls[i] = "http://" + l.Addr().String()
	}
	for i := 0; i < n; i++ {
		pcfg := proxy.Config{CacheEnabled: true}
		if mkProxy != nil {
			pcfg = mkProxy(i)
		}
		ccfg := Config{}
		if mkCluster != nil {
			ccfg = mkCluster(i)
		}
		ccfg.Self = urls[i]
		ccfg.Peers = urls
		node, err := NewNode(origin, pcfg, ccfg)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.Nodes = append(c.Nodes, node)
		srv := &http.Server{Handler: node.Handler()}
		c.servers = append(c.servers, srv)
		c.wg.Add(1)
		go func(srv *http.Server, l net.Listener) {
			defer c.wg.Done()
			_ = srv.Serve(l)
		}(srv, c.listeners[i])
	}
	return c, nil
}

// URLs returns the nodes' peer endpoints in node order.
func (c *LocalCluster) URLs() []string {
	out := make([]string, len(c.Nodes))
	for i, n := range c.Nodes {
		out[i] = n.Self()
	}
	return out
}

// Stop kills node i's HTTP server (chaos: a peer crash). The node's
// in-process object remains usable; only its network presence dies.
func (c *LocalCluster) Stop(i int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if i < 0 || i >= len(c.servers) || c.stopped[i] {
		return
	}
	c.stopped[i] = true
	_ = c.servers[i].Close()
}

// Close shuts down every node's server.
func (c *LocalCluster) Close() {
	c.mu.Lock()
	for i, srv := range c.servers {
		if !c.stopped[i] {
			c.stopped[i] = true
			_ = srv.Close()
		}
	}
	// Listeners without a server yet (constructor failure path).
	for i := len(c.servers); i < len(c.listeners); i++ {
		_ = c.listeners[i].Close()
	}
	c.mu.Unlock()
	c.wg.Wait()
}
