package cluster_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dvm/internal/classfile"
	"dvm/internal/classgen"
	"dvm/internal/cluster"
	"dvm/internal/netsim"
	"dvm/internal/proxy"
	"dvm/internal/rewrite"
	"dvm/internal/telemetry"
	"dvm/internal/verifier"
)

// corpus builds n distinct single-class applets.
func corpus(t *testing.T, n int) proxy.MapOrigin {
	t.Helper()
	out := make(proxy.MapOrigin, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("app/Applet%03d", i)
		b := classgen.NewClass(name, "java/lang/Object")
		b.DefaultInit()
		m := b.Method(classfile.AccPublic|classfile.AccStatic, "val", "()I")
		m.IConst(int32(i)).IReturn()
		data, err := b.BuildBytes()
		if err != nil {
			t.Fatal(err)
		}
		out[name] = data
	}
	return out
}

// countingOrigin counts fetches across the whole cluster (all nodes
// share one instance).
type countingOrigin struct {
	inner   proxy.Origin
	fetches atomic.Int64
}

func (c *countingOrigin) Fetch(ctx context.Context, name string) ([]byte, error) {
	c.fetches.Add(1)
	return c.inner.Fetch(ctx, name)
}

func classNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("app/Applet%03d", i)
	}
	return out
}

func verifyingProxyCfg(i int) proxy.Config {
	return proxy.Config{
		Pipeline:     rewrite.NewPipeline(verifier.Filter()),
		CacheEnabled: true,
	}
}

// TestClusterSingleOriginFetchPerKey is the headline acceptance
// property: a 4-node cluster serving the same class set from every node
// performs exactly one origin fetch per distinct (arch, class) key,
// where 4 round-robin replicas perform ~4x that.
func TestClusterSingleOriginFetchPerKey(t *testing.T) {
	// classes is coprime to nodes so the round-robin baseline can't luck
	// into per-class replica affinity.
	const nodes, classes = 4, 17
	org := &countingOrigin{inner: corpus(t, classes)}
	// Replication 1 and prefetch off: this test asserts the exact
	// peer-hop counts of the sharing property; replica pushes (R=2
	// default) and prefetch piggybacks warm requester caches and would
	// make the counts timing-dependent.
	c, err := cluster.StartLocal(org, nodes, verifyingProxyCfg, func(int) cluster.Config {
		return cluster.Config{Replication: 1, PrefetchK: -1}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx := context.Background()
	var want []byte
	for ni, n := range c.Nodes {
		for _, class := range classNames(classes) {
			res, err := n.Request(ctx, proxy.Lookup{Client: fmt.Sprintf("client-%d", ni), Arch: "dvm", Class: class})
			if err != nil {
				t.Fatalf("node %d class %s: %v", ni, class, err)
			}
			data := res.Data
			if len(data) == 0 {
				t.Fatalf("node %d class %s: empty response", ni, class)
			}
			if class == "app/Applet000" {
				if want == nil {
					want = data
				} else if !bytes.Equal(want, data) {
					t.Errorf("node %d serves different bytes for %s than the owner", ni, class)
				}
			}
		}
	}
	if got := org.fetches.Load(); got != classes {
		t.Errorf("cluster origin fetches = %d, want exactly %d (one per distinct key)", got, classes)
	}
	var total proxy.Stats
	for _, n := range c.Nodes {
		s := n.Proxy().Stats()
		total.OriginFetches += s.OriginFetches
		total.OwnerFetches += s.OwnerFetches
		total.PeerHits += s.PeerHits
		total.PeerFetches += s.PeerFetches
	}
	if total.OriginFetches != classes {
		t.Errorf("sum OriginFetches = %d, want %d", total.OriginFetches, classes)
	}
	if total.OwnerFetches != classes {
		t.Errorf("sum OwnerFetches = %d, want %d", total.OwnerFetches, classes)
	}
	if total.PeerHits != total.PeerFetches {
		t.Errorf("peer fetches failed: hits=%d fetches=%d", total.PeerHits, total.PeerFetches)
	}
	// Every node's misses for non-owned keys went over the peer protocol:
	// (nodes-1) requesters per key.
	if want := int64((nodes - 1) * classes); total.PeerHits != want {
		t.Errorf("sum PeerHits = %d, want %d", total.PeerHits, want)
	}

	// The round-robin baseline: same workload, N independent caches.
	org2 := &countingOrigin{inner: corpus(t, classes)}
	group, err := proxy.NewReplicaGroup(org2, nodes, func(int) proxy.Config {
		return verifyingProxyCfg(0)
	})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < nodes; round++ {
		for _, class := range classNames(classes) {
			if _, err := group.Request(ctx, proxy.Lookup{Client: "client", Arch: "dvm", Class: class}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if rr := org2.fetches.Load(); rr < int64(2*classes) {
		t.Errorf("round-robin fleet fetched only %d times; expected duplicate cold fetches well above %d", rr, classes)
	} else {
		t.Logf("origin fetches: cluster=%d round-robin=%d (%d distinct keys)", org.fetches.Load(), rr, classes)
	}
}

// TestClusterPeerDownDegradesToLocal kills one node's server mid-run:
// requests from the surviving nodes for keys that dead node owned must
// degrade to local origin fetches without a single request failure.
func TestClusterPeerDownDegradesToLocal(t *testing.T) {
	const nodes, classes = 4, 24
	org := &countingOrigin{inner: corpus(t, classes)}
	c, err := cluster.StartLocal(org, nodes, verifyingProxyCfg, func(int) cluster.Config {
		return cluster.Config{PeerTimeout: 2 * time.Second, BreakerThreshold: 2, BreakerCooldown: time.Minute}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx := context.Background()
	warm := func(skip int) {
		for ni, n := range c.Nodes {
			if ni == skip {
				continue
			}
			for _, class := range classNames(classes) {
				if _, err := n.Request(ctx, proxy.Lookup{Client: fmt.Sprintf("client-%d", ni), Arch: "dvm", Class: class}); err != nil {
					t.Fatalf("node %d class %s: %v", ni, class, err)
				}
			}
		}
	}
	warm(-1)
	fetchesBefore := org.fetches.Load()
	if fetchesBefore != classes {
		t.Fatalf("warm cluster fetched %d times, want %d", fetchesBefore, classes)
	}

	// Kill node 0 and invalidate the survivors' caches for its keys by
	// using a fresh arch (fresh cache keys reshard to the same owners).
	c.Stop(0)
	for ni, n := range c.Nodes {
		if ni == 0 {
			continue
		}
		for _, class := range classNames(classes) {
			if _, err := n.Request(ctx, proxy.Lookup{Client: fmt.Sprintf("client-%d", ni), Arch: "jdk", Class: class}); err != nil {
				t.Fatalf("after peer death: node %d class %s: %v", ni, class, err)
			}
		}
	}
	var peerErrors int64
	for ni, n := range c.Nodes {
		if ni == 0 {
			continue
		}
		peerErrors += n.PeerErrors()
	}
	if peerErrors == 0 {
		t.Error("no peer errors recorded although a peer was killed")
	}
	if org.fetches.Load() == fetchesBefore {
		t.Error("no local fallback fetches after peer death")
	}
	// The dead peer's link breaker must be visible in the survivors' view.
	open := false
	for ni, n := range c.Nodes {
		if ni == 0 {
			continue
		}
		for _, v := range n.PeerViews() {
			if v.Member == c.Nodes[0].Self() && v.Link != "closed" && v.Link != "-" {
				open = true
			}
		}
	}
	if !open {
		t.Error("no survivor marked the dead peer's link breaker non-closed")
	}
}

// TestClusterHotKeyReplication: a key a node keeps filling from its
// owner crosses HotThreshold and gets replicated into the node's own
// cache, after which the peer traffic for it stops.
func TestClusterHotKeyReplication(t *testing.T) {
	const classes = 8
	org := &countingOrigin{inner: corpus(t, classes)}
	// Replication 1: with the R=2 default a 2-node cluster replicates
	// every key to both nodes, which would warm node 0's cache before
	// the hot threshold could ever be crossed.
	c, err := cluster.StartLocal(org, 2, verifyingProxyCfg, func(int) cluster.Config {
		return cluster.Config{HotThreshold: 3, Replication: 1}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Find a class owned by node 1 so node 0 must peer-fill it.
	ring := c.Nodes[0].Ring()
	var remote string
	for _, class := range classNames(classes) {
		if ring.Owner(cluster.KeyFor("dvm", class)) == c.Nodes[1].Self() {
			remote = class
			break
		}
	}
	if remote == "" {
		t.Fatal("no class owned by node 1")
	}
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		if _, err := c.Nodes[0].Request(ctx, proxy.Lookup{Client: "client", Arch: "dvm", Class: remote}); err != nil {
			t.Fatal(err)
		}
	}
	s := c.Nodes[0].Proxy().Stats()
	if s.PeerFetches != 3 {
		t.Errorf("peer fetches = %d, want exactly HotThreshold=3 (then served from the local replica)", s.PeerFetches)
	}
	if c.Nodes[0].HotReplicas() == 0 {
		t.Error("hot key was never replicated locally")
	}
	if org.fetches.Load() != 1 {
		t.Errorf("origin fetched %d times for one key", org.fetches.Load())
	}
}

// TestClusterRejectionSurvivesPeerHop: a class the pipeline rejects is
// served as a VerifyError replacement by the owner, and the rejected
// flag crosses the peer protocol into the requester's audit trail.
func TestClusterRejectionSurvivesPeerHop(t *testing.T) {
	org := corpus(t, 4)
	org["app/Bad"] = []byte("\xde\xad\xbe\xefnot a classfile")
	var mu sync.Mutex
	var records []proxy.RequestRecord
	c, err := cluster.StartLocal(org, 2, func(int) proxy.Config {
		return proxy.Config{
			Pipeline:     rewrite.NewPipeline(verifier.Filter()),
			CacheEnabled: true,
			OnAudit: func(r proxy.RequestRecord) {
				mu.Lock()
				records = append(records, r)
				mu.Unlock()
			},
		}
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Request from the node that does NOT own the key.
	requester := 0
	if c.Nodes[0].Ring().Owner(cluster.KeyFor("dvm", "app/Bad")) == c.Nodes[0].Self() {
		requester = 1
	}
	res, err := c.Nodes[requester].Request(context.Background(), proxy.Lookup{Client: "client", Arch: "dvm", Class: "app/Bad"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Data) == 0 {
		t.Fatal("no replacement class served")
	}
	mu.Lock()
	defer mu.Unlock()
	found := false
	for _, r := range records {
		if r.Class == "app/Bad" && r.Peer != "" && r.Rejected {
			found = true
		}
	}
	if !found {
		t.Error("no audit record with both Peer set and Rejected=true; the flag was lost on the peer hop")
	}
}

// TestClusterNotFound: a class missing from the origin surfaces the
// canonical not-found through the peer path (mapped to 404 by the
// front end), not a peer-outage error.
func TestClusterNotFound(t *testing.T) {
	c, err := cluster.StartLocal(corpus(t, 4), 2, verifyingProxyCfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for ni, n := range c.Nodes {
		_, err := n.Request(context.Background(), proxy.Lookup{Client: "client", Arch: "dvm", Class: "app/Missing"})
		if !errors.Is(err, proxy.ErrNotFound) {
			t.Errorf("node %d: err = %v, want ErrNotFound", ni, err)
		}
	}
}

// TestClusterChaosPeerFaults drives concurrent cluster traffic while
// every peer link injects deterministic errors, hangs, and partial
// reads. No request may fail: a broken peer hop always degrades to a
// local origin fetch.
func TestClusterChaosPeerFaults(t *testing.T) {
	const nodes, classes, rounds = 3, 12, 6
	org := &countingOrigin{inner: corpus(t, classes)}
	links := make([]*netsim.LinkFaults, nodes)
	next := 0
	c, err := cluster.StartLocal(org, nodes, verifyingProxyCfg, func(int) cluster.Config {
		lf := netsim.NewLinkFaults(nil)
		links[next] = lf
		next++
		return cluster.Config{
			Transport:        lf,
			PeerTimeout:      300 * time.Millisecond,
			BreakerThreshold: 3,
			BreakerCooldown:  100 * time.Millisecond,
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Every link from every node carries faults; each (src,dst) pair gets
	// its own deterministic sequence.
	for i, lf := range links {
		for j, u := range c.URLs() {
			if i == j {
				continue
			}
			parsed, err := url.Parse(u)
			if err != nil {
				t.Fatal(err)
			}
			lf.SetLink(parsed.Host, netsim.FaultSpec{
				Seed:        uint64(i*nodes + j),
				ErrorRate:   0.25,
				HangRate:    0.1,
				HangFor:     50 * time.Millisecond,
				PartialRate: 0.15,
			})
		}
	}

	var wg sync.WaitGroup
	errCh := make(chan error, nodes*rounds*classes)
	for ni := range c.Nodes {
		for r := 0; r < rounds; r++ {
			wg.Add(1)
			go func(ni, r int) {
				defer wg.Done()
				// Distinct archs defeat caching round-to-round so the peer
				// path keeps being exercised under faults.
				arch := fmt.Sprintf("arch-%d", r)
				for _, class := range classNames(classes) {
					res, err := c.Nodes[ni].Request(context.Background(), proxy.Lookup{Client: fmt.Sprintf("c%d", ni), Arch: arch, Class: class})
					if err != nil {
						errCh <- fmt.Errorf("node %d round %d class %s: %w", ni, r, class, err)
						return
					}
					if len(res.Data) == 0 {
						errCh <- fmt.Errorf("node %d round %d class %s: empty", ni, r, class)
						return
					}
				}
			}(ni, r)
		}
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	var peerErrors int64
	for _, n := range c.Nodes {
		peerErrors += n.PeerErrors()
	}
	if peerErrors == 0 {
		t.Error("chaos run injected no peer failures; fault wiring is dead")
	}
	t.Logf("chaos: %d peer errors absorbed, %d origin fetches for %d distinct keys",
		peerErrors, org.fetches.Load(), rounds*classes)
}

// TestClusterHealthzRingView: the node's /healthz includes the ring
// membership with per-link breaker state.
func TestClusterHealthzRingView(t *testing.T) {
	c, err := cluster.StartLocal(corpus(t, 2), 3, verifyingProxyCfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp, err := http.Get(c.URLs()[0] + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	h, err := telemetry.ParseHealth(body)
	if err != nil {
		t.Fatalf("healthz did not parse as the shared schema: %v\n%s", err, body)
	}
	if h.Service != "proxy" || h.Status != telemetry.StatusOK {
		t.Errorf("healthz service/status = %q/%q, want proxy/ok", h.Service, h.Status)
	}
	for _, counter := range []string{"peer_fetches_total", "owner_fetches_total"} {
		if _, ok := h.Counters[counter]; !ok {
			t.Errorf("healthz missing cluster counter %s:\n%s", counter, body)
		}
	}
	if len(h.Ring) != 3 {
		t.Fatalf("healthz lists %d ring members, want 3:\n%s", len(h.Ring), body)
	}
	if h.Epoch == 0 {
		t.Errorf("healthz missing membership epoch:\n%s", body)
	}
	selfs := 0
	for _, m := range h.Ring {
		if m.Self {
			selfs++
			if m.Link != "-" {
				t.Errorf("self member %s has link %q, want \"-\"", m.Member, m.Link)
			}
		} else if m.Link == "" {
			t.Errorf("member %s missing link state", m.Member)
		}
		if m.State != telemetry.MemberAlive {
			t.Errorf("member %s state = %q, want alive in a healthy fleet", m.Member, m.State)
		}
	}
	if selfs != 1 {
		t.Errorf("healthz marks %d members as self, want 1", selfs)
	}
	for _, gauge := range []string{"membership_epoch", "membership_alive", "ring_members"} {
		if _, ok := h.Gauges[gauge]; !ok {
			t.Errorf("healthz missing membership gauge %s:\n%s", gauge, body)
		}
	}
}

// TestClusterClientLoaderFailover: the multi-endpoint HTTP loader keeps
// loading classes when one endpoint dies.
func TestClusterClientLoaderFailover(t *testing.T) {
	c, err := cluster.StartLocal(corpus(t, 6), 3, verifyingProxyCfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	loader, err := proxy.HTTPLoaderMulti(c.URLs(), "client", "dvm", proxy.LoaderOptions{
		Timeout: 2 * time.Second, BreakerThreshold: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, class := range classNames(6) {
		if _, err := loader.Load(class); err != nil {
			t.Fatalf("load %s: %v", class, err)
		}
	}
	c.Stop(1)
	for round := 0; round < 3; round++ {
		for _, class := range classNames(6) {
			if _, err := loader.Load(class); err != nil {
				t.Fatalf("load %s after endpoint death: %v", class, err)
			}
		}
	}
	if _, err := loader.Load("app/Missing"); !errors.Is(err, proxy.ErrNotFound) {
		t.Errorf("missing class: err = %v, want ErrNotFound", err)
	}
}

// TestClusterTraceCrossHop is the tentpole acceptance scenario for the
// telemetry layer: a cold request from a non-owner must come back with
// one trace whose spans cover the whole journey — the requester's
// proxy.request and peer.fill, then (shifted onto the requester's
// timeline from the X-DVM-Trace-Spans response header) the owner's
// proxy.request and origin.fetch — in start order, with durations.
func TestClusterTraceCrossHop(t *testing.T) {
	const nodes, classes = 4, 8
	c, err := cluster.StartLocal(corpus(t, classes), nodes, verifyingProxyCfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	n0 := c.Nodes[0]
	var class, owner string
	for _, cl := range classNames(classes) {
		if o := n0.Ring().Owner(cluster.KeyFor("dvm", cl)); o != n0.Self() {
			class, owner = cl, o
			break
		}
	}
	if class == "" {
		t.Fatal("ring assigned every class to node 0")
	}
	res, err := n0.Request(context.Background(), proxy.Lookup{Client: "trace", Arch: "dvm", Class: class})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil {
		t.Fatal("result carries no trace")
	}
	spans := res.Trace.Spans()
	if len(spans) < 3 {
		t.Fatalf("trace has %d spans, want >= 3 hops:\n%v", len(spans), spans)
	}
	find := func(stage, node string) int {
		for i, s := range spans {
			if s.Stage == stage && s.Node == node {
				return i
			}
		}
		t.Fatalf("trace missing span %s@%s:\n%v", stage, node, spans)
		return -1
	}
	iReq := find("proxy.request", n0.Self())
	iFill := find("peer.fill", n0.Self())
	iOwnerReq := find("proxy.request", owner)
	iOrigin := find("origin.fetch", owner)
	if !(iReq <= iFill && iFill <= iOwnerReq && iOwnerReq <= iOrigin) {
		t.Errorf("spans out of start order (req=%d fill=%d ownerReq=%d origin=%d):\n%v",
			iReq, iFill, iOwnerReq, iOrigin, spans)
	}
	for _, i := range []int{iReq, iFill, iOwnerReq, iOrigin} {
		if spans[i].Dur <= 0 {
			t.Errorf("span %s@%s has no duration", spans[i].Stage, spans[i].Node)
		}
	}
	// The owner's spans were shifted onto the requester's timeline: they
	// must not start before the peer.fill hop that produced them.
	if spans[iOwnerReq].Start < spans[iFill].Start {
		t.Errorf("owner span starts at %v, before the peer.fill hop at %v",
			spans[iOwnerReq].Start, spans[iFill].Start)
	}
	// Spans from two distinct nodes prove the trace crossed the wire.
	seen := map[string]bool{}
	for _, s := range spans {
		seen[s.Node] = true
	}
	if len(seen) < 2 {
		t.Errorf("trace covers %d node(s), want >= 2: %v", len(seen), spans)
	}
}
