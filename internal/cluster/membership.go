package cluster

// Live membership: the ring is no longer frozen at boot. Every node
// keeps a versioned view of the fleet — who is alive, suspected,
// confirmed dead, or deliberately draining — and exchanges it with
// peers over a small gossip protocol (gossip.go). The view is a state
// CRDT: merging two views is commutative, associative, and idempotent,
// so any gossip topology converges every node onto the same membership
// without coordination, and with it onto the same consistent-hash ring.
//
// The design follows SWIM's split between *assertions* and *evidence*:
//
//   - Each member entry carries an incarnation number owned by the
//     member itself. Only the subject bumps it — to refute a suspicion
//     ("I am alive, and newer than the claim that I am not") or to
//     announce a graceful drain.
//   - Observers assert suspect/dead about a peer at the peer's current
//     incarnation. At equal incarnations, worse news wins (dead >
//     draining > suspect > alive): a false "dead" is repaired by the
//     subject's next refutation at a higher incarnation, while a lost
//     "dead" would strand requests on a corpse.
//   - Every accepted assertion bumps the entry's version. The sum of
//     all versions is the membership *epoch*: monotone under merge,
//     equal on two nodes exactly when their views agree, cheap to
//     piggyback on peer-fill responses as a one-number view digest.
//
// Suspicion comes from two sources: the per-peer circuit breaker
// tripping open (the data path noticed the peer failing) and repeated
// gossip failures (the control path noticed). A suspect that stays
// unrefuted for SuspectTimeout is declared dead and leaves the ring.

import (
	"sort"
	"sync"
	"time"

	"dvm/internal/telemetry"
)

// Member states, ordered by badness: at equal incarnations a merge
// keeps the higher state.
type memberState int

const (
	stateAlive memberState = iota
	stateSuspect
	stateDraining
	stateDead
)

func (s memberState) String() string {
	switch s {
	case stateAlive:
		return telemetry.MemberAlive
	case stateSuspect:
		return telemetry.MemberSuspect
	case stateDraining:
		return telemetry.MemberDraining
	default:
		return telemetry.MemberDead
	}
}

func stateFromString(s string) (memberState, bool) {
	switch s {
	case telemetry.MemberAlive:
		return stateAlive, true
	case telemetry.MemberSuspect:
		return stateSuspect, true
	case telemetry.MemberDraining:
		return stateDraining, true
	case telemetry.MemberDead:
		return stateDead, true
	default:
		return stateDead, false
	}
}

// MemberInfo is one member entry, in both the wire form (gossip JSON)
// and the diagnostic snapshot.
type MemberInfo struct {
	// Addr is the member's peer URL.
	Addr string `json:"addr"`
	// Incarnation is the subject-owned freshness number: a higher
	// incarnation always wins a merge, whatever the states.
	Incarnation uint64 `json:"inc"`
	// State is "alive", "suspect", "draining", or "dead".
	State string `json:"state"`
	// Version counts accepted assertions about this member; the sum
	// over members is the view's epoch.
	Version uint64 `json:"v"`
}

// View is the gossip wire form: one node's complete membership view.
type View struct {
	// From is the sender's peer URL (so a receiver learns of the sender
	// itself even on first contact).
	From string `json:"from"`
	// Epoch is the sender's view digest (sum of entry versions).
	Epoch uint64 `json:"epoch"`
	// Members is the full entry list. Fleets here are tens of nodes;
	// full-state gossip is simpler than SWIM's piggybacked deltas and
	// converges in O(log n) rounds all the same.
	Members []MemberInfo `json:"members"`
}

// entry is the in-memory member record.
type entry struct {
	addr  string
	inc   uint64
	state memberState
	ver   uint64
	// suspectedAt is when *this node* learned of the suspicion (local
	// clock; never gossiped). Drives the suspect -> dead promotion.
	suspectedAt time.Time
}

// rank orders (incarnation, state) pairs for merging.
func better(a, b *entry) bool {
	if a.inc != b.inc {
		return a.inc > b.inc
	}
	return a.state > b.state
}

// membership is one node's convergent view of the fleet.
type membership struct {
	self string
	now  func() time.Time

	mu      sync.Mutex
	entries map[string]*entry

	// onChange is invoked (outside mu) after every mutation that
	// changed any entry; ringChanged reports whether the set of
	// ring-eligible members changed (the node rebuilds its ring then).
	onChange func(ringChanged bool)
}

// newMembership seeds the view: self plus the configured peers, all
// alive at incarnation 1, version 1 — every node booted from the same
// seed list computes the identical view and epoch, so a static fleet
// behaves exactly as the pre-gossip ring did.
func newMembership(self string, peers []string, now func() time.Time) *membership {
	if now == nil {
		now = time.Now
	}
	m := &membership{self: self, now: now, entries: make(map[string]*entry)}
	m.entries[self] = &entry{addr: self, inc: 1, state: stateAlive, ver: 1}
	for _, p := range peers {
		if p == self {
			continue
		}
		m.entries[p] = &entry{addr: p, inc: 1, state: stateAlive, ver: 1}
	}
	return m
}

// fire runs the onChange hook outside the lock.
func (m *membership) fire(changed, ringChanged bool) {
	if changed && m.onChange != nil {
		m.onChange(ringChanged)
	}
}

// epochLocked sums entry versions (caller holds mu).
func (m *membership) epochLocked() uint64 {
	var e uint64
	for _, ent := range m.entries {
		e += ent.ver
	}
	return e
}

// Epoch returns the view digest.
func (m *membership) Epoch() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.epochLocked()
}

// ringMembersLocked returns the members eligible for ring ownership:
// alive and suspect. A suspect still owns its keys — SWIM suspicion is
// often a false positive, and yanking ownership on every flap would
// thrash the ring; only confirmed death or a deliberate drain remaps.
// If nothing is eligible (self draining, everyone else gone) the node
// falls back to a ring of itself so requests keep resolving locally.
func (m *membership) ringMembersLocked() []string {
	var out []string
	for _, ent := range m.entries {
		if ent.state == stateAlive || ent.state == stateSuspect {
			out = append(out, ent.addr)
		}
	}
	if len(out) == 0 {
		out = []string{m.self}
	}
	sort.Strings(out)
	return out
}

// RingMembers returns the current ring-eligible members, sorted.
func (m *membership) RingMembers() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ringMembersLocked()
}

// View snapshots the wire form.
func (m *membership) View() View {
	m.mu.Lock()
	defer m.mu.Unlock()
	v := View{From: m.self, Epoch: m.epochLocked()}
	for _, ent := range m.entries {
		v.Members = append(v.Members, MemberInfo{
			Addr: ent.addr, Incarnation: ent.inc, State: ent.state.String(), Version: ent.ver,
		})
	}
	sort.Slice(v.Members, func(i, j int) bool { return v.Members[i].Addr < v.Members[j].Addr })
	return v
}

// Snapshot returns the per-member view for diagnostics and /healthz,
// sorted by address.
func (m *membership) Snapshot() []MemberInfo {
	return m.View().Members
}

// State returns a member's current state (dead if unknown).
func (m *membership) State(addr string) memberState {
	m.mu.Lock()
	defer m.mu.Unlock()
	if ent, ok := m.entries[addr]; ok {
		return ent.state
	}
	return stateDead
}

// Merge folds a remote view into the local one. For each remote entry
// the winner is decided by (incarnation, state badness); the merged
// version is the max of both sides, so the epoch is monotone and two
// nodes that accepted the same set of assertions agree on it exactly.
// If the remote view claims *this node* is anything but what it knows
// itself to be, the node refutes at a higher incarnation — the only
// authority on a node's own liveness is the node.
func (m *membership) Merge(v View) {
	m.mu.Lock()
	changed, ringChanged := false, false
	before := m.ringMembersLocked()
	apply := func(in MemberInfo) {
		st, ok := stateFromString(in.State)
		if !ok || in.Addr == "" {
			return
		}
		remote := &entry{addr: in.Addr, inc: in.Incarnation, state: st, ver: in.Version}
		local, exists := m.entries[in.Addr]
		if !exists {
			if in.Addr == m.self {
				return // never learn about self from others (seeded at boot)
			}
			if st == stateSuspect {
				remote.suspectedAt = m.now()
			}
			m.entries[in.Addr] = remote
			changed = true
			return
		}
		if in.Addr == m.self {
			// Refute any non-local claim about self: alive (or draining,
			// if a drain is in progress) at an incarnation above the
			// claim. The bumped incarnation wins every future merge until
			// someone observes us fail again.
			if better(remote, local) {
				local.inc = remote.inc + 1
				local.ver = maxU64(local.ver, remote.ver) + 1
				changed = true
			}
			return
		}
		if better(remote, local) {
			if remote.state == stateSuspect && local.state != stateSuspect {
				remote.suspectedAt = m.now()
			} else if remote.state == stateSuspect {
				remote.suspectedAt = local.suspectedAt
			}
			remote.ver = maxU64(local.ver, remote.ver)
			m.entries[in.Addr] = remote
			changed = true
		} else if remote.ver > local.ver {
			local.ver = remote.ver
			changed = true
		}
	}
	for _, in := range v.Members {
		apply(in)
	}
	// First contact from an unseeded sender: learn the sender itself.
	if v.From != "" && v.From != m.self {
		if _, ok := m.entries[v.From]; !ok {
			m.entries[v.From] = &entry{addr: v.From, inc: 1, state: stateAlive, ver: 1}
			changed = true
		}
	}
	after := m.ringMembersLocked()
	ringChanged = !equalStrings(before, after)
	m.mu.Unlock()
	m.fire(changed, ringChanged)
}

// assert applies a local state asssertion about addr: if the member's
// current state is less bad, move it to st and bump the version.
func (m *membership) assert(addr string, st memberState) {
	m.mu.Lock()
	ent, ok := m.entries[addr]
	if !ok || addr == m.self || ent.state >= st {
		m.mu.Unlock()
		return
	}
	before := m.ringMembersLocked()
	ent.state = st
	ent.ver++
	if st == stateSuspect {
		ent.suspectedAt = m.now()
	}
	ringChanged := !equalStrings(before, m.ringMembersLocked())
	m.mu.Unlock()
	m.fire(true, ringChanged)
}

// Suspect marks a peer suspected of failure (breaker trip, gossip
// failures). A no-op if the peer is already suspect or worse.
func (m *membership) Suspect(addr string) { m.assert(addr, stateSuspect) }

// NoteDraining records a peer's own draining announcement (seen as the
// X-DVM-Draining response flag before gossip catches up).
func (m *membership) NoteDraining(addr string) { m.assert(addr, stateDraining) }

// SweepSuspects promotes suspects past the timeout to dead. Returns
// the members it declared dead.
func (m *membership) SweepSuspects(timeout time.Duration) []string {
	m.mu.Lock()
	var died []string
	before := m.ringMembersLocked()
	now := m.now()
	for _, ent := range m.entries {
		if ent.state == stateSuspect && !ent.suspectedAt.IsZero() && now.Sub(ent.suspectedAt) >= timeout {
			ent.state = stateDead
			ent.ver++
			died = append(died, ent.addr)
		}
	}
	ringChanged := len(died) > 0 && !equalStrings(before, m.ringMembersLocked())
	m.mu.Unlock()
	m.fire(len(died) > 0, ringChanged)
	return died
}

// Refute clears a local suspicion after direct evidence of life (a
// successful exchange with the peer) when no higher-incarnation claim
// has arrived yet. The subject's own gossip refutation is the durable
// fix; this just stops the suspect timer between gossip rounds.
func (m *membership) Refute(addr string) {
	m.mu.Lock()
	ent, ok := m.entries[addr]
	if !ok || ent.state != stateSuspect {
		m.mu.Unlock()
		return
	}
	ent.state = stateAlive
	ent.ver++
	m.mu.Unlock()
	m.fire(true, false)
}

// DrainSelf announces this node's graceful departure: draining at a
// bumped incarnation, so the announcement wins over any concurrent
// alive/suspect claim and the ring drops this node everywhere the
// gossip reaches.
func (m *membership) DrainSelf() {
	m.mu.Lock()
	ent := m.entries[m.self]
	if ent.state == stateDraining {
		m.mu.Unlock()
		return
	}
	before := m.ringMembersLocked()
	ent.state = stateDraining
	ent.inc++
	ent.ver++
	ringChanged := !equalStrings(before, m.ringMembersLocked())
	m.mu.Unlock()
	m.fire(true, ringChanged)
}

// Draining reports whether this node is draining.
func (m *membership) Draining() bool {
	return m.State(m.self) == stateDraining
}

// Peers returns the known members other than self whose state matches
// filter (nil = all), sorted.
func (m *membership) Peers(filter func(memberState) bool) []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []string
	for _, ent := range m.entries {
		if ent.addr == m.self {
			continue
		}
		if filter == nil || filter(ent.state) {
			out = append(out, ent.addr)
		}
	}
	sort.Strings(out)
	return out
}

// counts returns the per-state member counts (telemetry gauges).
func (m *membership) counts() map[memberState]int {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[memberState]int, 4)
	for _, ent := range m.entries {
		out[ent.state]++
	}
	return out
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
