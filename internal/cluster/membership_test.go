package cluster

// Unit tests for the membership state CRDT: merge convergence,
// self-refutation, epoch behaviour, the suspect -> dead sweep, and the
// drain announcement. These run against the in-memory structure with a
// fake clock; the network layer is covered by the integration tests in
// churn_test.go.

import (
	"reflect"
	"testing"
	"time"
)

// fakeClock is a manually-advanced time source.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1000, 0)} }
func mkMembership(self string, peers []string) (*membership, *fakeClock) {
	clk := newFakeClock()
	return newMembership(self, peers, clk.now), clk
}

// TestMembershipMergeCommutative: two observers that receive the same
// set of views in different orders converge on the identical view and
// epoch — the property that lets any gossip topology agree.
func TestMembershipMergeCommutative(t *testing.T) {
	// Three views carrying conflicting news about the same fleet.
	a, _ := mkMembership("a", []string{"b", "c"})
	b, _ := mkMembership("b", []string{"a", "c"})
	c, _ := mkMembership("c", []string{"a", "b"})
	a.Suspect("c")     // a thinks c is failing
	b.Suspect("c")     // so does b...
	b.SweepSuspects(0) // ...and already declared it dead
	c.DrainSelf()      // c meanwhile announced a graceful drain (higher incarnation)
	views := []View{a.View(), b.View(), c.View()}

	x, _ := mkMembership("o", nil)
	y, _ := mkMembership("o", nil)
	x.Merge(views[0])
	x.Merge(views[1])
	x.Merge(views[2])
	y.Merge(views[2])
	y.Merge(views[0])
	y.Merge(views[1])
	if !reflect.DeepEqual(x.View(), y.View()) {
		t.Errorf("merge order changed the view:\n  012: %+v\n  201: %+v", x.View(), y.View())
	}
	if x.Epoch() != y.Epoch() {
		t.Errorf("merge order changed the epoch: %d vs %d", x.Epoch(), y.Epoch())
	}
	// c's drain is at a bumped incarnation: it must beat b's dead claim.
	if got := x.State("c"); got != stateDraining {
		t.Errorf("state(c) = %v, want draining (higher incarnation wins)", got)
	}
	// Idempotence: replaying every view changes nothing.
	before := x.View()
	for _, v := range views {
		x.Merge(v)
	}
	if !reflect.DeepEqual(before, x.View()) {
		t.Errorf("re-merging the same views changed the view:\n  before: %+v\n  after:  %+v", before, x.View())
	}
}

// TestMembershipWorseStateWinsAtEqualIncarnation: at the same
// incarnation a merge keeps the worse state; a better state at the same
// incarnation cannot resurrect a member.
func TestMembershipWorseStateWinsAtEqualIncarnation(t *testing.T) {
	m, _ := mkMembership("a", []string{"b"})
	m.Merge(View{From: "x", Members: []MemberInfo{{Addr: "b", Incarnation: 1, State: "suspect", Version: 2}}})
	if got := m.State("b"); got != stateSuspect {
		t.Fatalf("state(b) = %v, want suspect", got)
	}
	// An alive claim at the same incarnation is stale news: ignored.
	m.Merge(View{From: "x", Members: []MemberInfo{{Addr: "b", Incarnation: 1, State: "alive", Version: 1}}})
	if got := m.State("b"); got != stateSuspect {
		t.Errorf("alive@1 resurrected suspect@1: state(b) = %v", got)
	}
	m.Merge(View{From: "x", Members: []MemberInfo{{Addr: "b", Incarnation: 1, State: "dead", Version: 3}}})
	if got := m.State("b"); got != stateDead {
		t.Errorf("state(b) = %v, want dead (worse state wins)", got)
	}
	// Only the subject's own higher incarnation revives it.
	m.Merge(View{From: "x", Members: []MemberInfo{{Addr: "b", Incarnation: 2, State: "alive", Version: 4}}})
	if got := m.State("b"); got != stateAlive {
		t.Errorf("alive@2 did not beat dead@1: state(b) = %v", got)
	}
}

// TestMembershipSelfRefutation: a node that hears it is suspected
// refutes at a higher incarnation, and the refutation wins every later
// replay of the stale claim.
func TestMembershipSelfRefutation(t *testing.T) {
	m, _ := mkMembership("a", []string{"b"})
	claim := View{From: "b", Members: []MemberInfo{{Addr: "a", Incarnation: 1, State: "dead", Version: 2}}}
	m.Merge(claim)
	if got := m.State("a"); got != stateAlive {
		t.Fatalf("after refutation state(self) = %v, want alive", got)
	}
	var selfInc uint64
	for _, mi := range m.Snapshot() {
		if mi.Addr == "a" {
			selfInc = mi.Incarnation
		}
	}
	if selfInc <= 1 {
		t.Fatalf("refutation did not bump incarnation: inc = %d", selfInc)
	}
	// The refutation must now win on any third party that saw the claim.
	o, _ := mkMembership("o", nil)
	o.Merge(claim)
	o.Merge(m.View())
	if got := o.State("a"); got != stateAlive {
		t.Errorf("observer kept the dead claim over the refutation: state(a) = %v", got)
	}
	// Replaying the stale claim is a no-op.
	epoch := m.Epoch()
	m.Merge(claim)
	if m.Epoch() != epoch || m.State("a") != stateAlive {
		t.Errorf("stale claim replay changed state: epoch %d -> %d, state %v", epoch, m.Epoch(), m.State("a"))
	}
}

// TestMembershipEpochMonotoneAndAgreement: the epoch never decreases
// under any mutation, and one bidirectional exchange equalizes it.
func TestMembershipEpochMonotoneAndAgreement(t *testing.T) {
	a, _ := mkMembership("a", []string{"b", "c"})
	b, _ := mkMembership("b", []string{"a", "c"})
	last := a.Epoch()
	check := func(op string) {
		t.Helper()
		if e := a.Epoch(); e < last {
			t.Errorf("epoch decreased after %s: %d -> %d", op, last, e)
		} else {
			last = e
		}
	}
	a.Suspect("c")
	check("suspect")
	a.SweepSuspects(0)
	check("sweep")
	a.Merge(b.View())
	check("merge")
	a.DrainSelf()
	check("drain")
	// Bidirectional exchange: b merges a's post-merge view, then both
	// hold the same assertions and the same epoch.
	b.Merge(a.View())
	a.Merge(b.View())
	check("exchange")
	if a.Epoch() != b.Epoch() {
		t.Errorf("epochs disagree after exchange: a=%d b=%d", a.Epoch(), b.Epoch())
	}
}

// TestMembershipSuspectSweep: a suspect outlasting the timeout is
// declared dead and leaves the ring; a refuted suspect is not.
func TestMembershipSuspectSweep(t *testing.T) {
	m, clk := mkMembership("a", []string{"b", "c"})
	m.Suspect("b")
	if got := m.RingMembers(); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Errorf("suspect left the ring early: %v", got)
	}
	if died := m.SweepSuspects(time.Second); len(died) != 0 {
		t.Errorf("sweep before timeout declared deaths: %v", died)
	}
	clk.advance(2 * time.Second)
	if died := m.SweepSuspects(time.Second); !reflect.DeepEqual(died, []string{"b"}) {
		t.Errorf("sweep after timeout: died = %v, want [b]", died)
	}
	if got := m.RingMembers(); !reflect.DeepEqual(got, []string{"a", "c"}) {
		t.Errorf("dead member still in ring: %v", got)
	}
	// Refutation path: direct evidence of life cancels the timer.
	m.Suspect("c")
	m.Refute("c")
	clk.advance(2 * time.Second)
	if died := m.SweepSuspects(time.Second); len(died) != 0 {
		t.Errorf("refuted suspect still died: %v", died)
	}
	if got := m.State("c"); got != stateAlive {
		t.Errorf("state(c) = %v, want alive after refute", got)
	}
}

// TestMembershipDrainSelf: draining removes self from the ring (while
// peers remain), survives stale alive claims, and is idempotent.
func TestMembershipDrainSelf(t *testing.T) {
	m, _ := mkMembership("a", []string{"b"})
	m.DrainSelf()
	if !m.Draining() {
		t.Fatal("Draining() = false after DrainSelf")
	}
	if got := m.RingMembers(); !reflect.DeepEqual(got, []string{"b"}) {
		t.Errorf("ring after drain = %v, want [b]", got)
	}
	// A stale alive@1 claim about us must not cancel the drain: the
	// drain bumped our incarnation past it.
	m.Merge(View{From: "b", Members: []MemberInfo{{Addr: "a", Incarnation: 1, State: "alive", Version: 1}}})
	if !m.Draining() {
		t.Error("stale alive claim cancelled the drain")
	}
	epoch := m.Epoch()
	m.DrainSelf()
	if m.Epoch() != epoch {
		t.Error("second DrainSelf changed the epoch")
	}
	// A lone drained node falls back to a ring of itself so local
	// requests keep resolving.
	solo, _ := mkMembership("a", nil)
	solo.DrainSelf()
	if got := solo.RingMembers(); !reflect.DeepEqual(got, []string{"a"}) {
		t.Errorf("lone drained node ring = %v, want [a]", got)
	}
}

// TestRingOwners: Owners returns distinct members, primary first,
// clamped to the fleet size.
func TestRingOwners(t *testing.T) {
	members := []string{"n1", "n2", "n3", "n4"}
	r, err := NewRing(members, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{KeyFor("dvm", "a/B"), KeyFor("dvm", "c/D"), KeyFor("jdk", "a/B")} {
		owners := r.Owners(key, 2)
		if len(owners) != 2 {
			t.Fatalf("Owners(%q, 2) returned %d members", key, len(owners))
		}
		if owners[0] != r.Owner(key) {
			t.Errorf("Owners[0] = %s, want primary %s", owners[0], r.Owner(key))
		}
		if owners[0] == owners[1] {
			t.Errorf("Owners(%q, 2) repeated %s", key, owners[0])
		}
		all := r.Owners(key, 99)
		if len(all) != len(members) {
			t.Errorf("Owners(%q, 99) = %d members, want %d", key, len(all), len(members))
		}
		seen := map[string]bool{}
		for _, o := range all {
			if seen[o] {
				t.Errorf("Owners(%q, 99) repeated %s", key, o)
			}
			seen[o] = true
		}
		if got := r.Owners(key, 0); len(got) != 1 || got[0] != r.Owner(key) {
			t.Errorf("Owners(%q, 0) = %v, want just the primary", key, got)
		}
	}
}
