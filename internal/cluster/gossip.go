package cluster

// Gossip: the transport that keeps every node's membership view
// (membership.go) converging. Each round a node POSTs its full view to
// every known non-dead peer and merges the view that comes back — a
// bidirectional anti-entropy exchange, so one round between two nodes
// leaves them identical. Failure evidence flows in from three places:
//
//   - the data path: a peer-fill circuit breaker tripping open marks
//     the peer suspect (wired in Node.breaker via OnStateChange);
//   - the control path: two consecutive failed gossip exchanges with a
//     peer mark it suspect;
//   - peers: suspicions and deaths asserted elsewhere arrive by merge.
//
// A suspect that stays unrefuted for SuspectTimeout is promoted to dead
// by the sweep and drops out of the ring. Views also piggyback as an
// epoch header on every peer-fill hop; an epoch mismatch pokes an
// immediate gossip round instead of waiting out the interval, so ring
// disagreement windows close on the data path's timescale.
//
// With GossipInterval < 0 no background loop runs: tests drive rounds
// explicitly with GossipNow (which also sweeps) for determinism.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// epochHeader piggybacks the sender's membership epoch on peer-protocol
// hops so view divergence is noticed without waiting for a gossip tick.
const epochHeader = "X-DVM-Epoch"

// drainingHeader marks a peer-protocol rejection as a graceful drain
// ("I am leaving, re-route") rather than overload or failure.
const drainingHeader = "X-DVM-Draining"

// maxGossipBytes bounds one gossip payload read.
const maxGossipBytes = 1 << 20

// gossipFailThreshold is how many consecutive failed exchanges with a
// peer raise a suspicion (2: one failure is routinely a blip).
const gossipFailThreshold = 2

// gossipState is the Node's control-path bookkeeping.
type gossipState struct {
	mu    sync.Mutex
	fails map[string]int // consecutive gossip failures per peer
}

// handleGossip answers POST /peer/v1/gossip: merge the sender's view,
// answer with ours. After the exchange both sides hold the union.
func (n *Node) handleGossip(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var v View
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxGossipBytes)).Decode(&v); err != nil {
		http.Error(w, "bad gossip payload", http.StatusBadRequest)
		return
	}
	n.mship.Merge(v)
	n.cGossipRounds.Inc()
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(n.mship.View())
}

// exchange performs one gossip round-trip with peer: send our view,
// merge theirs. Reports success.
func (n *Node) exchange(ctx context.Context, peer string) bool {
	body, err := json.Marshal(n.mship.View())
	if err != nil {
		return false
	}
	ctx, cancel := context.WithTimeout(ctx, n.cfg.PeerTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, peer+gossipV1Path, bytes.NewReader(body))
	if err != nil {
		return false
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := n.client.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false
	}
	var v View
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxGossipBytes)).Decode(&v); err != nil {
		return false
	}
	n.mship.Merge(v)
	return true
}

// gossipRound exchanges views with every known non-dead peer, updates
// the consecutive-failure counters, and sweeps expired suspects.
func (n *Node) gossipRound(ctx context.Context) {
	peers := n.mship.Peers(func(s memberState) bool { return s != stateDead })
	for _, p := range peers {
		if ctx.Err() != nil {
			return
		}
		if n.exchange(ctx, p) {
			n.gossip.mu.Lock()
			n.gossip.fails[p] = 0
			n.gossip.mu.Unlock()
			// Direct evidence of life clears a local suspicion without
			// waiting for the subject's own refutation to gossip back.
			n.mship.Refute(p)
			continue
		}
		n.cGossipFails.Inc()
		n.gossip.mu.Lock()
		n.gossip.fails[p]++
		f := n.gossip.fails[p]
		n.gossip.mu.Unlock()
		if f >= gossipFailThreshold {
			n.suspect(p)
		}
	}
	n.sweep()
}

// suspect raises a failure suspicion about peer and counts it.
func (n *Node) suspect(peer string) {
	if n.mship.State(peer) < stateSuspect {
		n.cSuspects.Inc()
	}
	n.mship.Suspect(peer)
}

// sweep promotes expired suspects to dead.
func (n *Node) sweep() {
	died := n.mship.SweepSuspects(n.cfg.SuspectTimeout)
	for range died {
		n.cDeaths.Inc()
	}
}

// GossipNow runs one synchronous gossip round (exchange with every
// non-dead peer, then sweep). Production nodes run this on a ticker;
// manual-mode tests (GossipInterval < 0) call it directly so membership
// convergence is deterministic.
func (n *Node) GossipNow(ctx context.Context) { n.gossipRound(ctx) }

// pokeGossip requests an immediate gossip round (non-blocking; rounds
// already pending coalesce). Called on epoch mismatches and breaker
// trips so failure news travels at data-path speed.
func (n *Node) pokeGossip() {
	select {
	case n.pokeCh <- struct{}{}:
	default:
	}
}

// gossipLoop is the background driver: a round every GossipInterval,
// plus immediate rounds on pokes.
func (n *Node) gossipLoop() {
	defer n.wg.Done()
	t := time.NewTicker(n.cfg.GossipInterval)
	defer t.Stop()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		<-n.closed
		cancel()
	}()
	for {
		select {
		case <-n.closed:
			return
		case <-t.C:
		case <-n.pokeCh:
		}
		n.gossipRound(ctx)
	}
}

// Epoch returns the node's current membership epoch.
func (n *Node) Epoch() uint64 { return n.mship.Epoch() }

// Members returns the node's live view of the fleet, sorted by address.
func (n *Node) Members() []MemberInfo { return n.mship.Snapshot() }

// noteEpoch compares a peer's piggybacked epoch header against ours and
// pokes a gossip round on mismatch.
func (n *Node) noteEpoch(header string) {
	if header == "" {
		return
	}
	e, err := strconv.ParseUint(header, 10, 64)
	if err != nil || e == n.mship.Epoch() {
		return
	}
	n.cEpochMismatch.Inc()
	n.pokeGossip()
}

// Drain gracefully removes this node from the cluster: announce the
// departure (draining at a bumped incarnation, so it wins any merge),
// broadcast the news, then hand the cache off to each key's new owners
// while peers re-route around us. Requests that still arrive during the
// drain are shed with 429 + X-DVM-Draining. Bounded by ctx.
func (n *Node) Drain(ctx context.Context) error {
	n.mship.DrainSelf()
	// Broadcast before handing off: receivers must already consider us
	// gone, or the handoff filter ("keys the requester now owns") would
	// still route keys back to us.
	for _, p := range n.mship.Peers(func(s memberState) bool { return s == stateAlive || s == stateSuspect }) {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		_ = n.exchange(ctx, p)
	}
	return n.pushHandoff(ctx)
}

// Draining reports whether this node has begun a graceful departure.
func (n *Node) Draining() bool { return n.mship.Draining() }

func fmtEpoch(e uint64) string { return fmt.Sprint(e) }
