// Package cluster turns a fleet of independent service proxies into one
// sharded service. The paper (§2) answers its centralization concern
// with "replicated or recoverable server implementations"; plain
// replication leaves N copies doing N cold origin fetches and N
// duplicate pipeline runs per class. This package instead assigns every
// (arch, class) key an owner node on a consistent-hash ring: non-owner
// nodes fill their misses from the owner over a small HTTP peer
// protocol, so the whole cluster pays for at most one origin fetch and
// one rewrite-pipeline run per key — the proxy's single-flight
// coalescing extended cluster-wide.
//
// Membership is live (membership.go, gossip.go): nodes boot from a
// static seed list, then gossip versioned views to track joins,
// failures (SWIM-style suspect -> dead), and graceful drains, each node
// rebuilding its ring locally as the agreed member set changes. A peer
// that stops answering trips a per-peer circuit breaker — which both
// degrades that node to fetching from the origin itself AND feeds the
// suspicion machinery — so a peer outage costs sharing, never
// availability, and is eventually excised from every ring. Keys are
// replicated to R owners (the ring successor holds a warm copy pushed
// after every transform), so a primary's death degrades to a replica
// hit instead of a cold origin fetch. Hot keys — ones a node keeps
// round-tripping for — are additionally replicated into the requesting
// node's own LRU so ring owners do not become hotspots.
package cluster

import (
	"fmt"
	"sort"
	"strconv"
)

// DefaultVirtualNodes is the per-member vnode count when Config leaves
// it zero. The relative spread of member load shrinks roughly with the
// square root of the vnode count; 512 keeps every member within ~15% of
// the mean even at 8 members (see the balance property test), while the
// ring stays a few thousand points — microseconds to build, a binary
// search to query. A membership change still moves only ~1/n of keys.
const DefaultVirtualNodes = 512

// Ring is an immutable consistent-hash ring: each member appears at
// VirtualNodes pseudo-random points on a 64-bit circle, and a key is
// owned by the member whose point follows the key's hash clockwise.
// Determinism matters — every node must compute the identical ring from
// the identical configuration — so point placement uses a fixed hash
// mixed with an explicit seed, never process-local randomness.
type Ring struct {
	seed    uint64
	points  []ringPoint // sorted by hash
	members []string    // sorted, deduplicated
}

type ringPoint struct {
	hash   uint64
	member string
}

// NewRing builds a ring over members with vnodes virtual nodes each
// (<=0 selects DefaultVirtualNodes). Members are deduplicated; order
// does not matter — two nodes given the same set in any order compute
// the same ring.
func NewRing(members []string, vnodes int, seed uint64) (*Ring, error) {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	seen := make(map[string]bool, len(members))
	uniq := make([]string, 0, len(members))
	for _, m := range members {
		if m == "" {
			return nil, fmt.Errorf("cluster: empty ring member")
		}
		if !seen[m] {
			seen[m] = true
			uniq = append(uniq, m)
		}
	}
	if len(uniq) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one member")
	}
	sort.Strings(uniq)
	r := &Ring{
		seed:    seed,
		points:  make([]ringPoint, 0, len(uniq)*vnodes),
		members: uniq,
	}
	for _, m := range uniq {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:   r.hash(m + "#" + strconv.Itoa(v)),
				member: m,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Vanishingly rare 64-bit collision: break the tie by member name
		// so every node still agrees on the ordering.
		return r.points[i].member < r.points[j].member
	})
	return r, nil
}

// Members returns the ring membership, sorted.
func (r *Ring) Members() []string {
	out := make([]string, len(r.members))
	copy(out, r.members)
	return out
}

// Size returns the number of distinct members.
func (r *Ring) Size() int { return len(r.members) }

// Owner returns the member that owns key: the first virtual node at or
// after the key's hash, wrapping at the top of the circle.
func (r *Ring) Owner(key string) string {
	h := r.hash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].member
}

// Owners returns the first r distinct members clockwise from the key's
// hash: Owners(key, 1)[0] == Owner(key), and the rest are the key's
// replica successors in ring order. With r >= the member count, every
// member is returned. Replication factor R means a key's bytes live on
// Owners(key, R): the primary serves peer fills, the successors hold
// warm copies that take over when the primary dies.
func (r *Ring) Owners(key string, count int) []string {
	if count <= 0 {
		count = 1
	}
	if count > len(r.members) {
		count = len(r.members)
	}
	h := r.hash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, count)
	seen := make(map[string]bool, count)
	for n := 0; n < len(r.points) && len(out) < count; n++ {
		p := r.points[(i+n)%len(r.points)]
		if !seen[p.member] {
			seen[p.member] = true
			out = append(out, p.member)
		}
	}
	return out
}

// KeyFor builds the canonical ring key for a class request. It must
// match the proxy's cache key notion: transformed bytes differ per
// target architecture, so (arch, class) shards as one unit.
func KeyFor(arch, class string) string { return arch + "\x00" + class }

// hash is FNV-1a64 with a splitmix64 finalizer, seeded. FNV alone is
// weak on short, similar strings (vnode labels differ in a suffix
// digit); the finalizer's avalanche restores an even spread around the
// circle.
func (r *Ring) hash(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	h ^= r.seed
	h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9
	h = (h ^ (h >> 27)) * 0x94D049BB133111EB
	return h ^ (h >> 31)
}
