package cluster_test

// Integration test for the fleet-shared AOT code cache: with the base
// architecture's artifacts resident, the compiled architecture costs
// the fleet exactly one derivation per class — zero extra origin
// fetches — and every derived artifact is sealed by a compile-mode
// quorum that variants answer by re-deriving with their own compilers.

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"dvm/internal/attest"
	"dvm/internal/cluster"
	"dvm/internal/compiler"
	"dvm/internal/proxy"
	"dvm/internal/rewrite"
	"dvm/internal/verifier"
)

// aotProxyCfg is the base pipeline (verifier + compiler): the compiler
// filter is a no-op for the base architecture and quickens for
// compiler.ArchDVM, which is exactly the split the AOT cache exploits.
func aotProxyCfg(i int) proxy.Config {
	return proxy.Config{
		Pipeline:     rewrite.NewPipeline(verifier.Filter(), compiler.Filter()),
		CacheEnabled: true,
	}
}

// TestAOTClusterCompileOnce drives a 3-node attested fleet through both
// architectures and asserts the headline property: the fleet pays one
// origin fetch and one compilation per class, total, no matter how many
// nodes serve the compiled form.
func TestAOTClusterCompileOnce(t *testing.T) {
	const nodes, classes = 3, 12
	const baseArch = "jvm"
	org := &countingOrigin{inner: corpus(t, classes)}
	c, err := cluster.StartLocal(org, nodes, aotProxyCfg, func(int) cluster.Config {
		return cluster.Config{
			Replication:    1,
			PrefetchK:      -1,
			GossipInterval: -1,
			AttestKey:      attestTestKey(),
			AttestQuorum:   2,
			AOTBaseArch:    baseArch,
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	// Phase 1: the base-architecture artifacts. One origin fetch and one
	// pipeline run per class, owner-side, as always.
	base := make(map[string][]byte, classes)
	for _, class := range classNames(classes) {
		res, err := c.Nodes[0].Request(ctx, proxy.Lookup{Client: "client-0", Arch: baseArch, Class: class})
		if err != nil {
			t.Fatalf("base %s: %v", class, err)
		}
		base[class] = res.Data
	}
	if got := org.fetches.Load(); got != classes {
		t.Fatalf("base phase: origin fetches = %d, want %d", got, classes)
	}

	// Spread the base artifacts fleet-wide (a warm fleet is the steady
	// state replication and handoff converge to; doing it explicitly
	// keeps the phase-2 counters exact and timing-independent).
	var entries []proxy.CacheEntry
	for _, n := range c.Nodes {
		for _, e := range n.Proxy().CacheSnapshot(0, func(arch, _ string) bool { return arch == baseArch }) {
			entries = append(entries, e)
		}
	}
	for _, n := range c.Nodes {
		n.Proxy().Warm(entries)
	}

	// Phase 2: every node requests every class in the compiled
	// architecture.
	served := make(map[string][]byte, classes)
	for ni, n := range c.Nodes {
		for _, class := range classNames(classes) {
			res, err := n.Request(ctx, proxy.Lookup{Client: fmt.Sprintf("client-%d", ni), Arch: compiler.ArchDVM, Class: class})
			if err != nil {
				t.Fatalf("node %d class %s: %v", ni, class, err)
			}
			att := res.Info.Attestation
			if att == nil {
				t.Fatalf("node %d class %s: derived artifact served without attestation", ni, class)
			}
			if att.Quorum < 2 {
				t.Errorf("node %d class %s: quorum = %d, want >= 2", ni, class, att.Quorum)
			}
			if att.Digest != attest.Digest(res.Data) {
				t.Errorf("node %d class %s: attestation does not cover served bytes", ni, class)
			}
			if prev, ok := served[class]; ok && !bytes.Equal(prev, res.Data) {
				t.Errorf("class %s: nodes served different compiled bytes", class)
			}
			served[class] = res.Data
		}
	}

	// The compile-once ledger. Every class was compiled exactly once
	// fleet-wide, by deriving from the resident base artifact — so the
	// compiled architecture added ZERO origin fetches.
	if got := org.fetches.Load(); got != classes {
		t.Errorf("total origin fetches = %d, want %d (AOT derivation must not refetch)", got, classes)
	}
	if got := sumCounter(c, "compile_misses_total"); got != classes {
		t.Errorf("sum compile_misses_total = %d, want %d (one compilation per class)", got, classes)
	}
	// A peer fill is a compile hit on both sides — the requester served
	// the compiled form without compiling (PeerServed) and the owner
	// answered from its cache — so each class accrues 2*(nodes-1) hits:
	// two per remote requester, or one requester-side hit for the fill
	// that triggered the derivation plus one owner-side local hit.
	if got, want := sumCounter(c, "compile_hits_total"), int64(classes*2*(nodes-1)); got != want {
		t.Errorf("sum compile_hits_total = %d, want %d", got, want)
	}
	// Each architecture's artifacts were sealed once per class: the base
	// by a transform quorum, the derived by a compile quorum, each with
	// exactly one variant vote at quorum 2.
	if got := sumCounter(c, "attested_keys_total"); got != 2*classes {
		t.Errorf("sum attested_keys_total = %d, want %d", got, 2*classes)
	}
	if got := sumCounter(c, "attest_variants_total"); got != 2*classes {
		t.Errorf("sum attest_variants_total = %d, want %d", got, 2*classes)
	}
	for _, name := range []string{"attest_divergence_total", "attest_failures_total", "attest_degraded_total"} {
		if got := sumCounter(c, name); got != 0 {
			t.Errorf("sum %s = %d, want 0", name, got)
		}
	}

	// The served bytes really are the compiler's output over the base
	// artifact (and not, say, the base bytes relabeled).
	for _, class := range classNames(classes) {
		want, err := compiler.CompileArtifact(base[class])
		if err != nil {
			t.Fatalf("reference derivation %s: %v", class, err)
		}
		if !bytes.Equal(served[class], want) {
			t.Errorf("class %s: served compiled artifact differs from reference derivation", class)
		}
		if bytes.Equal(served[class], base[class]) {
			t.Errorf("class %s: compiled artifact identical to base artifact", class)
		}
	}
}
