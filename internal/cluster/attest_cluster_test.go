package cluster_test

// Integration tests for quorum attestation: the happy path (every
// served artifact carries a verified seal, one transform and one
// variant vote per key), the Byzantine chaos scenario (one of four
// nodes runs a corrupted pipeline; the fleet converges on the honest
// bytes, never serves the corrupt ones, and quarantines the liar
// within K divergences), and the replica-push hop rejecting payloads
// that fail re-verification.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"testing"

	"dvm/internal/attest"
	"dvm/internal/cluster"
	"dvm/internal/netsim"
	"dvm/internal/proxy"
	"dvm/internal/rewrite"
	"dvm/internal/telemetry"
	"dvm/internal/verifier"
)

// attestTestKey is the shared service key the attested test fleets run
// under.
func attestTestKey() []byte { return []byte("cluster-test-service-key") }

// sumCounter adds one named counter across a fleet's /healthz reports.
func sumCounter(c *cluster.LocalCluster, name string) int64 {
	var total int64
	for _, n := range c.Nodes {
		total += n.Health().Counters[name]
	}
	return total
}

// TestAttestQuorumSealsArtifacts is the attestation happy path: a
// 3-node fleet at quorum 2 serves every key from every node with a
// verified attestation, still performs exactly one origin fetch and one
// transform per key, and records zero divergences.
func TestAttestQuorumSealsArtifacts(t *testing.T) {
	const nodes, classes = 3, 12
	org := &countingOrigin{inner: corpus(t, classes)}
	c, err := cluster.StartLocal(org, nodes, verifyingProxyCfg, func(int) cluster.Config {
		return cluster.Config{
			Replication:    1,
			GossipInterval: -1,
			AttestKey:      attestTestKey(),
			AttestQuorum:   2,
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx := context.Background()
	for ni, n := range c.Nodes {
		for _, class := range classNames(classes) {
			res, err := n.Request(ctx, proxy.Lookup{Client: fmt.Sprintf("client-%d", ni), Arch: "dvm", Class: class})
			if err != nil {
				t.Fatalf("node %d class %s: %v", ni, class, err)
			}
			att := res.Info.Attestation
			if att == nil {
				t.Fatalf("node %d class %s: served without attestation", ni, class)
			}
			if att.Quorum < 2 {
				t.Errorf("node %d class %s: quorum = %d, want >= 2", ni, class, att.Quorum)
			}
			if len(att.Voters) != att.Quorum {
				t.Errorf("node %d class %s: %d voters for quorum %d", ni, class, len(att.Voters), att.Quorum)
			}
			if att.Digest != attest.Digest(res.Data) {
				t.Errorf("node %d class %s: attestation digest does not cover the served bytes", ni, class)
			}
		}
	}
	// Cross-checking must not change the sharing property: one origin
	// fetch and one transform per distinct key, with exactly one variant
	// vote backing each (quorum 2 = owner + one variant).
	if got := org.fetches.Load(); got != classes {
		t.Errorf("origin fetches = %d, want %d", got, classes)
	}
	if got := sumCounter(c, "attested_keys_total"); got != classes {
		t.Errorf("sum attested_keys_total = %d, want %d", got, classes)
	}
	if got := sumCounter(c, "attest_variants_total"); got != classes {
		t.Errorf("sum attest_variants_total = %d, want %d", got, classes)
	}
	for _, name := range []string{"attest_divergence_total", "attest_rejects_total", "attest_degraded_total", "attest_failures_total"} {
		if got := sumCounter(c, name); got != 0 {
			t.Errorf("sum %s = %d, want 0", name, got)
		}
	}
	for i, n := range c.Nodes {
		if s := n.Suspicions(); len(s) != 0 {
			t.Errorf("node %d suspicion ledger = %+v, want empty", i, s)
		}
	}
}

// TestAttestByzantineChaos is the acceptance scenario: a 4-node fleet
// at quorum 2 with one Byzantine member whose pipeline deterministically
// corrupts every class. The fleet must (a) never serve a corrupted
// artifact from any honest node, (b) quarantine the Byzantine node
// within QuarantineAfter divergences, (c) win split votes by tie-break
// escalation (the initial quorum-2 round against the Byzantine variant
// is always a 1-1 tie), and (d) refuse to let the Byzantine node serve
// its own corrupt output (its flight loses the vote and fails).
func TestAttestByzantineChaos(t *testing.T) {
	const nodes, classes, quarantineAfter = 4, 90, 3
	const byz = 3
	raw := corpus(t, classes)
	var adversary netsim.Byzantine
	mkProxy := func(i int) proxy.Config {
		cfg := verifyingProxyCfg(i)
		if i == byz {
			cfg.Pipeline = rewrite.NewPipeline(verifier.Filter(), adversary.Filter())
		}
		return cfg
	}
	c, err := cluster.StartLocal(raw, nodes, mkProxy, func(int) cluster.Config {
		return cluster.Config{
			Replication:     2,
			GossipInterval:  -1,
			AttestKey:       attestTestKey(),
			AttestQuorum:    2,
			QuarantineAfter: quarantineAfter,
			// The Byzantine node answers fills for its own keys with 500s
			// (its flights lose the vote); keep the breakers closed so the
			// test proves attestation, not failure detection, contains it.
			BreakerThreshold: 1000,
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	byzURL := c.Nodes[byz].Self()

	// The honest reference: an independent instance of the honest
	// pipeline, run outside the cluster. Byte-determinism makes its
	// output the unique answer every honest node must serve.
	honest := make(map[string][]byte, classes)
	ref := rewrite.NewPipeline(verifier.Filter())
	for _, class := range classNames(classes) {
		out, err := ref.Process(raw[class], rewrite.NewContext())
		if err != nil {
			t.Fatal(err)
		}
		honest[class] = out
	}

	// Bucket the keyspace by (owner, first variant): a key whose owner is
	// honest and whose first ring successor is the Byzantine node yields
	// exactly one divergence on that owner's ledger per transform (1-1
	// tie, escalate, honest majority, minority = Byzantine).
	ring := c.Nodes[0].Ring()
	firstVariantByz := make(map[string][]string) // owner URL -> classes
	for _, class := range classNames(classes) {
		owners := ring.Owners(cluster.KeyFor("dvm", class), nodes)
		if owners[0] != byzURL && owners[1] == byzURL {
			firstVariantByz[owners[0]] = append(firstVariantByz[owners[0]], class)
		}
	}
	var accuser *cluster.Node
	var accuserIdx int
	var probes []string
	for i, n := range c.Nodes {
		if i != byz && len(firstVariantByz[n.Self()]) >= quarantineAfter {
			accuser, accuserIdx, probes = n, i, firstVariantByz[n.Self()]
			break
		}
	}
	if accuser == nil {
		t.Fatalf("ring placement left no honest node with %d Byzantine-first keys; counts=%v", quarantineAfter, firstVariantByz)
	}

	// Phase 1 — quarantine within K divergences, one per probe key.
	ctx := context.Background()
	for i := 0; i < quarantineAfter; i++ {
		res, err := accuser.Request(ctx, proxy.Lookup{Client: "probe", Arch: "dvm", Class: probes[i]})
		if err != nil {
			t.Fatalf("probe %s: %v", probes[i], err)
		}
		if !bytes.Equal(res.Data, honest[probes[i]]) {
			t.Fatalf("probe %s: honest owner served corrupt bytes", probes[i])
		}
		if res.Info.Attestation == nil || res.Info.Attestation.Quorum < 2 {
			t.Fatalf("probe %s: missing or under-quorum attestation after tie-break", probes[i])
		}
		wantQuarantined := i+1 >= quarantineAfter
		if got := accuser.Quarantined(byzURL); got != wantQuarantined {
			t.Fatalf("after %d divergences: Quarantined(byz) = %v, want %v", i+1, got, wantQuarantined)
		}
	}
	byzDivergences := func() int {
		for _, s := range accuser.Suspicions() {
			if s.Peer == byzURL {
				return s.Divergences
			}
		}
		return 0
	}
	if got := byzDivergences(); got != quarantineAfter {
		t.Errorf("accuser ledger: %d divergences, want exactly %d", got, quarantineAfter)
	}

	// Quarantine removes the Byzantine node from variant selection: more
	// transforms on the accuser send it no further attest traffic and
	// add no ledger entries.
	byzVotesBefore := c.Nodes[byz].Health().Counters["attest_variants_total"]
	if len(probes) > quarantineAfter {
		if _, err := accuser.Request(ctx, proxy.Lookup{Client: "probe", Arch: "dvm", Class: probes[quarantineAfter]}); err != nil {
			t.Fatalf("post-quarantine probe: %v", err)
		}
		if got := c.Nodes[byz].Health().Counters["attest_variants_total"]; got != byzVotesBefore {
			t.Errorf("quarantined node still receives variant requests from accuser (%d -> %d)", byzVotesBefore, got)
		}
		if got := byzDivergences(); got != quarantineAfter {
			t.Errorf("ledger moved after quarantine: %d divergences", got)
		}
	}

	// The Byzantine node cannot serve its own corrupt output: its flight
	// loses the vote (ErrLocalDivergence) for any key it must transform.
	// Checked before the sweep below — once honest nodes transform these
	// keys, their replica pushes (correctly sealed honest bytes) may warm
	// the Byzantine node's cache and mask its broken pipeline.
	var byzOwned string
	for _, class := range classNames(classes) {
		if ring.Owners(cluster.KeyFor("dvm", class), 1)[0] == byzURL {
			byzOwned = class
			break
		}
	}
	if byzOwned != "" {
		_, err := c.Nodes[byz].Request(ctx, proxy.Lookup{Client: "direct", Arch: "dvm", Class: byzOwned})
		if err == nil {
			t.Fatalf("Byzantine node served %s from its corrupt pipeline", byzOwned)
		}
		if !errors.Is(err, attest.ErrLocalDivergence) {
			t.Errorf("Byzantine self-serve error = %v, want ErrLocalDivergence", err)
		}
	}

	// Phase 2 — full sweep: every class from every honest node must be
	// the honest bytes, attested. Zero corrupted artifacts served.
	for ni, n := range c.Nodes {
		if ni == byz {
			continue
		}
		for _, class := range classNames(classes) {
			res, err := n.Request(ctx, proxy.Lookup{Client: fmt.Sprintf("sweep-%d", ni), Arch: "dvm", Class: class})
			if err != nil {
				t.Fatalf("sweep node %d class %s: %v", ni, class, err)
			}
			if !bytes.Equal(res.Data, honest[class]) {
				t.Fatalf("CORRUPT ARTIFACT SERVED: node %d class %s", ni, class)
			}
			if res.Info.Attestation == nil {
				t.Fatalf("sweep node %d class %s: served without attestation", ni, class)
			}
		}
	}

	if adversary.Corruptions.Load() == 0 {
		t.Fatal("the Byzantine filter never ran; the test proved nothing")
	}
	if got := sumCounter(c, "attest_divergence_total"); got < quarantineAfter {
		t.Errorf("sum attest_divergence_total = %d, want >= %d", got, quarantineAfter)
	}

	// The quarantine is operator-visible: the accuser's /healthz (over
	// the wire, schema-checked) reports the Byzantine member quarantined
	// with its divergence count, and the node degraded.
	resp, err := http.Get(accuser.Self() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	h, err := telemetry.ParseHealth(body)
	if err != nil {
		t.Fatalf("node %d healthz: %v", accuserIdx, err)
	}
	if h.Status != telemetry.StatusDegraded {
		t.Errorf("accuser healthz status = %q, want degraded (a quarantined peer impairs sharing)", h.Status)
	}
	found := false
	for _, m := range h.Ring {
		if m.Member == byzURL {
			found = true
			if !m.Quarantined || m.Divergences < quarantineAfter {
				t.Errorf("healthz ring entry for Byzantine member = %+v, want quarantined with >= %d divergences", m, quarantineAfter)
			}
		}
	}
	if !found {
		t.Errorf("healthz ring view is missing the Byzantine member %s", byzURL)
	}
}

// TestReplicaPushRejectsBadAttestation is the replica-ingest hop
// regression, on the batch envelope: a pushed entry whose payload is
// unattested, sealed under the wrong key, or covering different bytes
// must come back as a per-entry 400 BatchError and never warm the
// receiver's cache; a correctly sealed push must land.
func TestReplicaPushRejectsBadAttestation(t *testing.T) {
	org := corpus(t, 1)
	c, err := cluster.StartLocal(org, 2, verifyingProxyCfg, func(int) cluster.Config {
		return cluster.Config{
			Replication:    1,
			GossipInterval: -1,
			AttestKey:      attestTestKey(),
			AttestQuorum:   1,
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	target := c.Nodes[0]
	data := []byte("pushed-artifact-bytes")
	push := func(attHeader string) cluster.BatchResponse {
		body, err := json.Marshal(cluster.BatchRequest{
			Reason: proxy.ReasonReplica,
			Member: c.Nodes[1].Self(),
			Entries: []cluster.BatchEntry{{
				Arch: "dvm", Class: "app/Pushed", Reason: proxy.ReasonReplica,
				Data: data, Att: attHeader,
			}},
		})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(target.Self()+"/peer/v1/batch", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("batch push: status %d, want 200 with per-entry errors", resp.StatusCode)
		}
		var br cluster.BatchResponse
		if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
			t.Fatal(err)
		}
		return br
	}

	service := attest.New(attest.Config{Key: attestTestKey()})
	forged := attest.New(attest.Config{Key: []byte("not-the-service-key")})
	rejects := []struct {
		name   string
		header string
	}{
		{"unattested", ""},
		{"wrong key", forged.Attest("dvm", "app/Pushed", data, 1, nil).Encode()},
		{"tampered bytes", service.Attest("dvm", "app/Pushed", []byte("other bytes"), 1, nil).Encode()},
	}
	for _, tc := range rejects {
		br := push(tc.header)
		if len(br.Errors) != 1 || br.Errors[0].Status != http.StatusBadRequest {
			t.Errorf("%s replica push: errors = %+v, want one 400 entry error", tc.name, br.Errors)
		}
	}
	if snap := target.Proxy().CacheSnapshot(1<<20, nil); len(snap) != 0 {
		t.Fatalf("rejected pushes warmed the cache: %d entries", len(snap))
	}
	if got := target.Health().Counters["attest_rejects_total"]; got != int64(len(rejects)) {
		t.Errorf("attest_rejects_total = %d, want %d", got, len(rejects))
	}
	if got := target.Health().Counters["replica_stored_total"]; got != 0 {
		t.Errorf("replica_stored_total = %d, want 0", got)
	}

	if br := push(service.Attest("dvm", "app/Pushed", data, 1, nil).Encode()); len(br.Errors) != 0 {
		t.Fatalf("valid replica push: errors = %+v, want none", br.Errors)
	}
	snap := target.Proxy().CacheSnapshot(1<<20, nil)
	if len(snap) != 1 || !bytes.Equal(snap[0].Data, data) || snap[0].Att == nil {
		t.Fatalf("valid push not stored with its attestation: %d entries", len(snap))
	}
}
