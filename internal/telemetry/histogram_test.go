package telemetry

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// exactQuantile mirrors Quantile's rank definition over raw samples.
func exactQuantile(sorted []time.Duration, p float64) time.Duration {
	rank := int(p * float64(len(sorted)))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// bucketOf returns the index of the bound bucket holding d.
func bucketOf(bounds []time.Duration, d time.Duration) int {
	return sort.Search(len(bounds), func(i int) bool { return d <= bounds[i] })
}

// TestHistogramMergeQuantileBounded is the merge property test: for
// random sample sets split across two histograms, every quantile of the
// merged snapshot must land in the same bucket as the exact quantile of
// the combined samples — the error is bounded by one bucket width.
func TestHistogramMergeQuantileBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	bounds := DefaultLatencyBounds()
	for trial := 0; trial < 50; trial++ {
		a, b := NewHistogram(nil), NewHistogram(nil)
		var all []time.Duration
		n := 1 + rng.Intn(400)
		for i := 0; i < n; i++ {
			// Log-uniform over ~50µs..40s so every bucket (including
			// overflow) gets exercised.
			d := time.Duration(float64(50*time.Microsecond) * pow(1.035, float64(rng.Intn(400))))
			all = append(all, d)
			if rng.Intn(2) == 0 {
				a.Observe(d)
			} else {
				b.Observe(d)
			}
		}
		merged := a.Snapshot()
		if err := merged.Merge(b.Snapshot()); err != nil {
			t.Fatalf("merge: %v", err)
		}
		if got := merged.Count(); got != int64(n) {
			t.Fatalf("merged count = %d, want %d", got, n)
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		for _, p := range []float64{0.5, 0.9, 0.95, 0.99, 1.0} {
			got := merged.Quantile(p)
			exact := exactQuantile(all, p)
			gi, ei := bucketOf(bounds, got), bucketOf(bounds, exact)
			if ei >= len(bounds) {
				// Overflow observation: Quantile clamps to the last bound.
				if got != bounds[len(bounds)-1] {
					t.Fatalf("trial %d p=%v: overflow quantile = %v, want clamp to %v", trial, p, got, bounds[len(bounds)-1])
				}
				continue
			}
			if gi != ei {
				t.Fatalf("trial %d p=%v: quantile %v (bucket %d) not in exact bucket %d (exact %v)",
					trial, p, got, gi, ei, exact)
			}
		}
	}
}

func pow(base, exp float64) float64 {
	out := 1.0
	for exp >= 1 {
		out *= base
		exp--
	}
	return out
}

func TestHistogramMergeRejectsMismatchedBounds(t *testing.T) {
	a := NewHistogram(nil).Snapshot()
	b := NewHistogram([]time.Duration{time.Second}).Snapshot()
	if err := a.Merge(b); err == nil {
		t.Fatal("merge of mismatched bounds succeeded")
	}
}

func TestHistogramMergeIntoEmpty(t *testing.T) {
	h := NewHistogram(nil)
	h.Observe(time.Millisecond)
	h.Observe(3 * time.Millisecond)
	var s HistSnapshot
	if err := s.Merge(h.Snapshot()); err != nil {
		t.Fatalf("merge into empty: %v", err)
	}
	if s.Count() != 2 || s.Sum != 4*time.Millisecond {
		t.Fatalf("merged = count %d sum %v", s.Count(), s.Sum)
	}
}

// TestHistogramConcurrentObserveSnapshot runs writers against a
// snapshotting reader under -race: Observe must stay lock-free-safe and
// the final count exact.
func TestHistogramConcurrentObserveSnapshot(t *testing.T) {
	h := NewHistogram(nil)
	const goroutines, per = 8, 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = h.Snapshot().Count()
			}
		}
	}()
	var writers sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(g*per+i) * time.Microsecond)
			}
		}(g)
	}
	writers.Wait()
	close(stop)
	wg.Wait()
	if got := h.Snapshot().Count(); got != goroutines*per {
		t.Fatalf("count = %d, want %d", got, goroutines*per)
	}
}

func TestHistogramNilSafe(t *testing.T) {
	var h *Histogram
	h.Observe(time.Second) // must not panic
	if h.Snapshot().Count() != 0 {
		t.Fatal("nil histogram counted")
	}
}

func TestQuantileEmptyAndMean(t *testing.T) {
	var s HistSnapshot
	if s.Quantile(0.5) != 0 || s.Mean() != 0 {
		t.Fatal("empty snapshot not zero")
	}
	h := NewHistogram(nil)
	h.Observe(2 * time.Millisecond)
	h.Observe(4 * time.Millisecond)
	if got := h.Snapshot().Mean(); got != 3*time.Millisecond {
		t.Fatalf("mean = %v", got)
	}
}
