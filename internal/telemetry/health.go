package telemetry

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// HealthSchemaVersion is the "v" field every /healthz response carries.
// Bump it only for incompatible changes; consumers reject versions they
// do not understand instead of misparsing them.
const HealthSchemaVersion = 1

// Health statuses.
const (
	StatusOK       = "ok"
	StatusDegraded = "degraded"
)

// Health is the versioned schema served on every daemon's /healthz.
// PRs 1–3 left the proxy, the security server, and the cluster node
// each with a bespoke text payload; this struct replaces all of them
// with one JSON shape (documented in DESIGN.md §9) so fleet tooling can
// poll any daemon the same way.
type Health struct {
	// V is the schema version (HealthSchemaVersion).
	V int `json:"v"`
	// Service names the daemon: "proxy", "secd", "monitor".
	Service string `json:"service"`
	// Status is StatusOK, or StatusDegraded when the daemon is serving
	// in a degraded mode (e.g. origin breaker open).
	Status string `json:"status"`
	// Counters mirrors the registry's counters (Prometheus names).
	Counters map[string]int64 `json:"counters,omitempty"`
	// Gauges mirrors the registry's gauges.
	Gauges map[string]float64 `json:"gauges,omitempty"`
	// Breakers reports each upstream circuit breaker by name.
	Breakers map[string]BreakerHealth `json:"breakers,omitempty"`
	// Epoch is the live membership epoch (cluster nodes only): a
	// convergent counter that advances on every accepted membership
	// assertion, so two nodes reporting the same epoch hold the same
	// view. Zero for standalone daemons.
	Epoch uint64 `json:"epoch,omitempty"`
	// Ring is the cluster's *live* membership view (cluster nodes only):
	// one entry per known member, including suspects, the dead, and
	// draining members — not the boot-time seed list.
	Ring []RingMemberHealth `json:"ring,omitempty"`
}

// BreakerHealth is one circuit breaker's snapshot in Health.
type BreakerHealth struct {
	State     string `json:"state"`
	Trips     int64  `json:"trips"`
	Successes int64  `json:"successes"`
	Failures  int64  `json:"failures"`
}

// Membership states a RingMemberHealth.State may carry.
const (
	MemberAlive    = "alive"
	MemberSuspect  = "suspect"
	MemberDead     = "dead"
	MemberDraining = "draining"
)

// RingMemberHealth is one cluster member in Health.Ring.
type RingMemberHealth struct {
	Member string `json:"member"`
	// State is the member's live membership state: MemberAlive,
	// MemberSuspect, MemberDead, or MemberDraining.
	State string `json:"state"`
	// Link is the local breaker state for the path to this member
	// ("closed" = healthy, "open" = presumed down, "-" for self).
	Link string `json:"link"`
	Self bool   `json:"self,omitempty"`
	// Divergences is the member's attestation suspicion count on the
	// reporting node's ledger; Quarantined marks it past the quarantine
	// threshold (excluded from peer fill and variant selection). Both
	// are additive fields within schema v1 — absent when attestation is
	// off.
	Divergences int  `json:"divergences,omitempty"`
	Quarantined bool `json:"quarantined,omitempty"`
}

// Health builds the registry-derived part of a health report; callers
// add service-specific fields (Breakers, Ring) before serving it.
func (r *Registry) Health(status string) Health {
	return Health{
		V:        HealthSchemaVersion,
		Service:  r.service,
		Status:   status,
		Counters: r.CounterValues(),
		Gauges:   r.GaugeValues(),
	}
}

// WriteHealth serves a health report as JSON.
func WriteHealth(w http.ResponseWriter, h Health) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(h)
}

// HealthHandler serves f's report on each request.
func HealthHandler(f func() Health) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		WriteHealth(w, f())
	})
}

// ParseHealth decodes and validates a /healthz payload: the shared
// round-trip assertion every daemon's tests run against their own
// endpoint.
func ParseHealth(data []byte) (Health, error) {
	var h Health
	if err := json.Unmarshal(data, &h); err != nil {
		return Health{}, fmt.Errorf("telemetry: healthz: %v", err)
	}
	if h.V != HealthSchemaVersion {
		return Health{}, fmt.Errorf("telemetry: healthz: schema version %d, want %d", h.V, HealthSchemaVersion)
	}
	if h.Service == "" {
		return Health{}, fmt.Errorf("telemetry: healthz: missing service")
	}
	if h.Status != StatusOK && h.Status != StatusDegraded {
		return Health{}, fmt.Errorf("telemetry: healthz: bad status %q", h.Status)
	}
	if len(h.Ring) > 0 && h.Epoch == 0 {
		return Health{}, fmt.Errorf("telemetry: healthz: ring view without a membership epoch")
	}
	for _, m := range h.Ring {
		if m.Member == "" {
			return Health{}, fmt.Errorf("telemetry: healthz: ring member without an address")
		}
		switch m.State {
		case MemberAlive, MemberSuspect, MemberDead, MemberDraining:
		default:
			return Health{}, fmt.Errorf("telemetry: healthz: ring member %s has bad state %q", m.Member, m.State)
		}
	}
	return h, nil
}
