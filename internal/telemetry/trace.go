package telemetry

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// TraceHeader carries the trace identifier on a request across an HTTP
// hop (proxy front end, peer fill, security server, monitoring
// console). The receiving daemon joins the trace under that ID and
// returns its spans in TraceSpansHeader on the response, so the caller
// ends up holding the whole cross-host timeline.
const TraceHeader = "X-DVM-Trace"

// TraceSpansHeader carries the hop's recorded spans back on the
// response, encoded with EncodeSpans.
const TraceSpansHeader = "X-DVM-Trace-Spans"

// Span is one timed stage of a request: which node did what, when it
// started (offset from the trace's birth), and how long it took.
type Span struct {
	// Stage names the work, e.g. "proxy.request", "origin.fetch",
	// "pipeline", "peer.fill", "queue.wait", "secd.decide".
	Stage string
	// Node identifies the daemon that recorded the span (a peer URL in a
	// cluster, or a configured service name).
	Node string
	// Start is the span's start offset from the trace's creation. Spans
	// appended from a remote hop are shifted into the local timeline by
	// AppendShifted, so offsets stay comparable across hosts.
	Start time.Duration
	// Dur is how long the stage took.
	Dur time.Duration
}

// Trace is a request's cross-hop timeline: an identifier plus the span
// records accumulated while the request moved through daemons. All
// methods are safe for concurrent use and safe on a nil receiver (a nil
// trace records nothing), so untraced paths pay nothing.
type Trace struct {
	id    string
	birth Timer

	mu    sync.Mutex
	spans []Span
}

// NewTrace creates a trace with a fresh process-unique ID. The entry
// point (client, bench loop, HTTP front end) creates the trace; every
// deeper layer only adds spans.
func NewTrace() *Trace { return &Trace{id: newTraceID(), birth: StartTimer()} }

// JoinTrace creates a trace that continues an upstream request under
// its existing ID (from TraceHeader). An empty id gets a fresh one.
func JoinTrace(id string) *Trace {
	if id == "" {
		return NewTrace()
	}
	return &Trace{id: id, birth: StartTimer()}
}

// ID returns the trace identifier ("" for a nil trace).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Elapsed returns the time since the trace was created.
func (t *Trace) Elapsed() time.Duration {
	if t == nil {
		return 0
	}
	return t.birth.Elapsed()
}

// StartSpan begins timing one stage. End records the span; a span that
// is never ended records nothing. Safe on a nil trace (returns a nil
// SpanTimer whose methods no-op).
func (t *Trace) StartSpan(node, stage string) *SpanTimer {
	if t == nil {
		return nil
	}
	return &SpanTimer{t: t, node: node, stage: stage, start: t.Elapsed(), tm: StartTimer()}
}

// append adds finished spans (already in this trace's timeline).
func (t *Trace) append(spans ...Span) {
	if t == nil || len(spans) == 0 {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, spans...)
	t.mu.Unlock()
}

// AppendShifted merges spans recorded by a remote hop into this trace,
// shifting their start offsets by shift — normally the local elapsed
// time when the hop began — so the remote stages sort sensibly into the
// local timeline despite the hosts' different time bases.
func (t *Trace) AppendShifted(spans []Span, shift time.Duration) {
	if t == nil || len(spans) == 0 {
		return
	}
	shifted := make([]Span, len(spans))
	for i, s := range spans {
		s.Start += shift
		shifted[i] = s
	}
	t.append(shifted...)
}

// Spans returns a copy of the recorded spans, ordered by start offset
// (ties keep record order).
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := append([]Span(nil), t.spans...)
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// SpanTimer is one in-progress span. End is idempotent: the span is
// recorded once, and later Ends return the recorded duration.
type SpanTimer struct {
	t     *Trace
	node  string
	stage string
	start time.Duration
	tm    Timer

	mu    sync.Mutex
	done  bool
	total time.Duration
}

// Elapsed returns the time since the span started without ending it.
func (s *SpanTimer) Elapsed() time.Duration {
	if s == nil {
		return 0
	}
	return s.tm.Elapsed()
}

// End records the span on its trace and returns its duration.
func (s *SpanTimer) End() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	if s.done {
		d := s.total
		s.mu.Unlock()
		return d
	}
	s.done = true
	s.total = s.tm.Elapsed()
	d := s.total
	s.mu.Unlock()
	s.t.append(Span{Stage: s.stage, Node: s.node, Start: s.start, Dur: d})
	return d
}

// traceKey keys the trace in a context.Context.
type traceKey struct{}

// WithTrace attaches tr to ctx; every layer below finds it with
// FromContext.
func WithTrace(ctx context.Context, tr *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, tr)
}

// FromContext returns the context's trace, or nil when the request is
// untraced.
func FromContext(ctx context.Context) *Trace {
	tr, _ := ctx.Value(traceKey{}).(*Trace)
	return tr
}

// EncodeSpans renders spans for the TraceSpansHeader response header:
// semicolon-separated records of tilde-separated fields
// stage~node~startNanos~durNanos. Stage and node are sanitized so the
// encoding never produces an invalid header value.
func EncodeSpans(spans []Span) string {
	var b strings.Builder
	for i, s := range spans {
		if i > 0 {
			b.WriteByte(';')
		}
		b.WriteString(headerToken(s.Stage))
		b.WriteByte('~')
		b.WriteString(headerToken(s.Node))
		b.WriteByte('~')
		b.WriteString(strconv.FormatInt(s.Start.Nanoseconds(), 10))
		b.WriteByte('~')
		b.WriteString(strconv.FormatInt(s.Dur.Nanoseconds(), 10))
	}
	return b.String()
}

// DecodeSpans parses an EncodeSpans header value.
func DecodeSpans(s string) ([]Span, error) {
	if s == "" {
		return nil, nil
	}
	recs := strings.Split(s, ";")
	out := make([]Span, 0, len(recs))
	for _, rec := range recs {
		f := strings.Split(rec, "~")
		if len(f) != 4 {
			return nil, fmt.Errorf("telemetry: bad span record %q", rec)
		}
		start, err := strconv.ParseInt(f[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("telemetry: bad span start %q: %v", f[2], err)
		}
		dur, err := strconv.ParseInt(f[3], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("telemetry: bad span duration %q: %v", f[3], err)
		}
		out = append(out, Span{
			Stage: f[0], Node: f[1],
			Start: time.Duration(start), Dur: time.Duration(dur),
		})
	}
	return out, nil
}

// headerToken strips the encoding's separators and header-hostile bytes
// from a stage or node name.
func headerToken(s string) string {
	return strings.Map(func(r rune) rune {
		if r == '~' || r == ';' || r < 0x21 || r > 0x7e {
			return '_'
		}
		return r
	}, s)
}
