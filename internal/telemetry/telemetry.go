// Package telemetry is the DVM's unified observability layer: one
// substrate shared by every daemon and service package for (1) request
// timing, (2) cross-hop traces, (3) fixed-bucket mergeable latency
// histograms, and (4) a common metrics/health surface.
//
// The paper treats profiling and monitoring as first-class DVM services
// (§4.3); this package extends that stance to the infrastructure
// itself. A request that hops client → non-owner proxy → owner peer →
// origin can be followed end to end: a Trace rides context.Context
// locally and the X-DVM-Trace header across HTTP hops, and each hop's
// spans return to the caller so per-stage breakdowns (fetch vs verify
// vs rewrite vs peer hop vs queue wait) can be printed at the entry
// point.
//
// Conventions enforced across the repo (see DESIGN.md §9):
//
//   - All request timing goes through Timer / Trace spans / Histogram —
//     never raw time.Since. A lint test (lint_test.go) fails the build
//     when a package under internal/ times requests by hand.
//   - All latency histograms share DefaultLatencyBounds so any two
//     snapshots — from different services or different cluster nodes —
//     merge by bucket-wise addition.
//   - Metric names are Prometheus-style: dvm_<service>_<name>, counters
//     suffixed _total, histograms suffixed _seconds.
package telemetry

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"
)

// Timer measures one duration. It exists so that "how long did this
// take" has exactly one implementation: the telemetry lint forbids raw
// time.Since in service packages, and this type is the sanctioned
// replacement.
type Timer struct{ start time.Time }

// StartTimer starts measuring now.
func StartTimer() Timer { return Timer{start: time.Now()} }

// Elapsed returns the time since the timer started.
func (t Timer) Elapsed() time.Duration { return time.Since(t.start) }

// traceSeq disambiguates trace IDs created in the same process; the
// random base makes IDs distinct across processes.
var (
	traceSeq  atomic.Uint64
	traceBase = rand.Uint64()
)

// newTraceID returns a process-unique 16-hex-digit trace identifier.
func newTraceID() string {
	n := traceSeq.Add(1)
	// splitmix64 of (base, seq): cheap, well-spread, no shared lock.
	z := traceBase + n*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return fmt.Sprintf("%016x", z^(z>>31))
}
