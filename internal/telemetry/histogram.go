package telemetry

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"
)

// defaultLatencyBounds are the shared fixed bucket upper bounds for
// request-latency histograms: roughly exponential from 100µs to 30s.
// Every latency histogram in the repo uses them unless a caller has a
// strong reason not to, so snapshots from any two services or cluster
// nodes merge bucket-wise.
var defaultLatencyBounds = []time.Duration{
	100 * time.Microsecond,
	250 * time.Microsecond,
	500 * time.Microsecond,
	1 * time.Millisecond,
	2500 * time.Microsecond,
	5 * time.Millisecond,
	10 * time.Millisecond,
	25 * time.Millisecond,
	50 * time.Millisecond,
	100 * time.Millisecond,
	250 * time.Millisecond,
	500 * time.Millisecond,
	1 * time.Second,
	2500 * time.Millisecond,
	5 * time.Second,
	10 * time.Second,
	30 * time.Second,
}

// DefaultLatencyBounds returns a copy of the shared latency bucket
// bounds.
func DefaultLatencyBounds() []time.Duration {
	return append([]time.Duration(nil), defaultLatencyBounds...)
}

// Histogram is a fixed-bucket latency histogram built for hot request
// paths: Observe is lock-free (a binary search plus two atomic adds),
// Snapshot is consistent enough for monitoring (each bucket read
// atomically), and two snapshots with the same bounds merge by
// addition — the property that lets a cluster aggregate per-node
// latency without shipping raw samples. Safe on a nil receiver.
type Histogram struct {
	bounds []time.Duration // sorted upper bounds; an implicit +Inf bucket follows
	counts []atomic.Int64  // len(bounds)+1
	sum    atomic.Int64    // nanoseconds
}

// NewHistogram builds a histogram over the given sorted upper bounds
// (nil = DefaultLatencyBounds).
func NewHistogram(bounds []time.Duration) *Histogram {
	if bounds == nil {
		bounds = defaultLatencyBounds
	}
	b := append([]time.Duration(nil), bounds...)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// bucketFor returns the index of the bucket recording d.
func (h *Histogram) bucketFor(d time.Duration) int {
	return sort.Search(len(h.bounds), func(i int) bool { return d <= h.bounds[i] })
}

// Observe records one duration. No-op on a nil histogram.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	h.counts[h.bucketFor(d)].Add(1)
	h.sum.Add(int64(d))
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	s := HistSnapshot{
		Bounds: append([]time.Duration(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
		Sum:    time.Duration(h.sum.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// HistSnapshot is an immutable histogram snapshot: per-bucket counts
// under the shared bounds (the last count is the +Inf overflow bucket)
// plus the running sum.
type HistSnapshot struct {
	Bounds []time.Duration
	Counts []int64 // len(Bounds)+1; Counts[len(Bounds)] overflows the last bound
	Sum    time.Duration
}

// Count returns the total number of observations.
func (s HistSnapshot) Count() int64 {
	var n int64
	for _, c := range s.Counts {
		n += c
	}
	return n
}

// Mean returns the average observation (0 when empty).
func (s HistSnapshot) Mean() time.Duration {
	n := s.Count()
	if n == 0 {
		return 0
	}
	return s.Sum / time.Duration(n)
}

// Merge adds another snapshot's buckets into this one. The two must
// share bounds — the invariant that makes cluster-wide aggregation a
// bucket-wise sum.
func (s *HistSnapshot) Merge(o HistSnapshot) error {
	if len(o.Counts) == 0 {
		return nil
	}
	if len(s.Counts) == 0 {
		s.Bounds = append([]time.Duration(nil), o.Bounds...)
		s.Counts = append([]int64(nil), o.Counts...)
		s.Sum = o.Sum
		return nil
	}
	if len(s.Bounds) != len(o.Bounds) {
		return fmt.Errorf("telemetry: merge: %d vs %d buckets", len(s.Bounds), len(o.Bounds))
	}
	for i, b := range s.Bounds {
		if b != o.Bounds[i] {
			return fmt.Errorf("telemetry: merge: bound %d differs (%s vs %s)", i, b, o.Bounds[i])
		}
	}
	for i := range s.Counts {
		s.Counts[i] += o.Counts[i]
	}
	s.Sum += o.Sum
	return nil
}

// Quantile returns the upper bound of the bucket holding the p-quantile
// observation (0 ≤ p ≤ 1). The answer is conservative: the true value
// lies within the returned bucket, so the error is bounded by that
// bucket's width. Observations past the last bound report the last
// bound. Returns 0 when empty.
func (s HistSnapshot) Quantile(p float64) time.Duration {
	n := s.Count()
	if n == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := int64(p * float64(n))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range s.Counts {
		cum += c
		if cum >= rank {
			if i >= len(s.Bounds) {
				return s.Bounds[len(s.Bounds)-1]
			}
			return s.Bounds[i]
		}
	}
	return s.Bounds[len(s.Bounds)-1]
}
