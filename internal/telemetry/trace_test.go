package telemetry

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanEncodeDecodeRoundTrip(t *testing.T) {
	in := []Span{
		{Stage: "proxy.request", Node: "http://127.0.0.1:9001", Start: 0, Dur: 42 * time.Millisecond},
		{Stage: "peer.fill", Node: "http://127.0.0.1:9001", Start: time.Millisecond, Dur: 30 * time.Millisecond},
		{Stage: "origin.fetch", Node: "http://127.0.0.1:9002", Start: 5 * time.Millisecond, Dur: 20 * time.Millisecond},
	}
	out, err := DecodeSpans(EncodeSpans(in))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(out) != len(in) {
		t.Fatalf("decoded %d spans, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("span %d = %+v, want %+v", i, out[i], in[i])
		}
	}
}

func TestSpanEncodeSanitizesSeparators(t *testing.T) {
	enc := EncodeSpans([]Span{{Stage: "bad~stage;x", Node: "node with space", Dur: time.Second}})
	dec, err := DecodeSpans(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(dec) != 1 || strings.ContainsAny(dec[0].Stage, "~;") {
		t.Fatalf("separators survived sanitizing: %+v", dec)
	}
}

func TestDecodeSpansRejectsGarbage(t *testing.T) {
	for _, bad := range []string{"a~b~c", "a~b~x~1", "a~b~1~x"} {
		if _, err := DecodeSpans(bad); err == nil {
			t.Fatalf("DecodeSpans(%q) succeeded", bad)
		}
	}
}

func TestTraceAppendShiftedOrdering(t *testing.T) {
	tr := NewTrace()
	sp := tr.StartSpan("local", "proxy.request")
	// A remote hop that started 10ms into the local timeline and recorded
	// two spans at its own offsets 0 and 2ms.
	tr.AppendShifted([]Span{
		{Stage: "proxy.request", Node: "remote", Start: 0, Dur: 5 * time.Millisecond},
		{Stage: "origin.fetch", Node: "remote", Start: 2 * time.Millisecond, Dur: 3 * time.Millisecond},
	}, 10*time.Millisecond)
	sp.End()

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	// Local root span started at ~0, remote spans shifted to 10ms and 12ms.
	if spans[0].Node != "local" {
		t.Fatalf("first span = %+v, want local root", spans[0])
	}
	if spans[1].Stage != "proxy.request" || spans[1].Start != 10*time.Millisecond {
		t.Fatalf("remote root span = %+v", spans[1])
	}
	if spans[2].Stage != "origin.fetch" || spans[2].Start != 12*time.Millisecond {
		t.Fatalf("remote child span = %+v", spans[2])
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	tr := NewTrace()
	sp := tr.StartSpan("n", "s")
	d1 := sp.End()
	d2 := sp.End()
	if d1 != d2 {
		t.Fatalf("End returned %v then %v", d1, d2)
	}
	if got := len(tr.Spans()); got != 1 {
		t.Fatalf("double End recorded %d spans", got)
	}
}

func TestNilTraceSafe(t *testing.T) {
	var tr *Trace
	if tr.ID() != "" || tr.Elapsed() != 0 || tr.Spans() != nil {
		t.Fatal("nil trace leaked state")
	}
	sp := tr.StartSpan("n", "s") // nil SpanTimer
	if sp.Elapsed() != 0 || sp.End() != 0 {
		t.Fatal("nil span timer leaked state")
	}
	tr.AppendShifted([]Span{{Stage: "x"}}, 0) // must not panic
}

func TestTraceContextRoundTrip(t *testing.T) {
	if FromContext(context.Background()) != nil {
		t.Fatal("empty context had a trace")
	}
	tr := NewTrace()
	ctx := WithTrace(context.Background(), tr)
	if FromContext(ctx) != tr {
		t.Fatal("trace lost in context")
	}
}

func TestJoinTraceKeepsID(t *testing.T) {
	if got := JoinTrace("abc123").ID(); got != "abc123" {
		t.Fatalf("joined ID = %q", got)
	}
	if JoinTrace("").ID() == "" {
		t.Fatal("empty join did not mint an ID")
	}
	a, b := NewTrace(), NewTrace()
	if a.ID() == b.ID() {
		t.Fatalf("trace IDs collide: %q", a.ID())
	}
}

func TestTraceConcurrentSpans(t *testing.T) {
	tr := NewTrace()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				tr.StartSpan("n", "stage").End()
			}
		}()
	}
	wg.Wait()
	if got := len(tr.Spans()); got != 1600 {
		t.Fatalf("recorded %d spans, want 1600", got)
	}
}
