package telemetry

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestTelemetryLint is the telemetry-lint CI check: request timing in
// service packages must go through telemetry (Timer, SpanTimer,
// Histogram), not ad-hoc time.Since / time.Now().Sub deltas, so every
// measured duration lands in a mergeable histogram or a trace span.
// It walks every non-test file under internal/ outside this package and
// fails on either pattern. A deliberate exception is marked with a
// `telemetry:allow` comment on the offending line.
//
// Bare time.Now() is still fine (wall-clock stamps, cache TTLs, clock
// hooks); only duration-delta idioms are flagged.
func TestTelemetryLint(t *testing.T) {
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	internal := filepath.Join(root, "internal")
	var violations []string
	err = filepath.Walk(internal, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() {
			if info.Name() == "telemetry" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		violations = append(violations, lintFile(t, path)...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) > 0 {
		t.Fatalf("telemetry-lint: request timing outside internal/telemetry must use telemetry.Timer / trace spans / histograms\n  %s",
			strings.Join(violations, "\n  "))
	}
}

func lintFile(t *testing.T, path string) []string {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse %s: %v", path, err)
	}
	timeAlias := importAlias(f, "time")
	if timeAlias == "" {
		return nil
	}
	allowed := make(map[int]bool)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.Contains(c.Text, "telemetry:allow") {
				allowed[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	var out []string
	flag := func(pos token.Pos, what string) {
		p := fset.Position(pos)
		if allowed[p.Line] {
			return
		}
		out = append(out, fmt.Sprintf("%s:%d: %s", p.Filename, p.Line, what))
	}
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		// time.Since(x)
		if id, ok := sel.X.(*ast.Ident); ok && id.Name == timeAlias && sel.Sel.Name == "Since" {
			flag(call.Pos(), "time.Since")
			return true
		}
		// time.Now().Sub(x)
		if sel.Sel.Name == "Sub" {
			if inner, ok := sel.X.(*ast.CallExpr); ok {
				if isel, ok := inner.Fun.(*ast.SelectorExpr); ok {
					if id, ok := isel.X.(*ast.Ident); ok && id.Name == timeAlias && isel.Sel.Name == "Now" {
						flag(call.Pos(), "time.Now().Sub")
					}
				}
			}
		}
		return true
	})
	return out
}

func importAlias(f *ast.File, pkg string) string {
	for _, imp := range f.Imports {
		if strings.Trim(imp.Path.Value, `"`) != pkg {
			continue
		}
		if imp.Name != nil {
			return imp.Name.Name
		}
		return pkg
	}
	return ""
}
