package telemetry

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestTelemetryLint is the telemetry-lint CI check: request timing in
// service packages must go through telemetry (Timer, SpanTimer,
// Histogram), not ad-hoc time.Since / time.Now().Sub deltas, so every
// measured duration lands in a mergeable histogram or a trace span.
// It walks every non-test file under internal/ outside this package and
// fails on either pattern. A deliberate exception is marked with a
// `telemetry:allow` comment on the offending line.
//
// Bare time.Now() is still fine (wall-clock stamps, cache TTLs, clock
// hooks); only duration-delta idioms are flagged.
func TestTelemetryLint(t *testing.T) {
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	internal := filepath.Join(root, "internal")
	var violations []string
	err = filepath.Walk(internal, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() {
			if info.Name() == "telemetry" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		violations = append(violations, lintFile(t, path)...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) > 0 {
		t.Fatalf("telemetry-lint: request timing outside internal/telemetry must use telemetry.Timer / trace spans / histograms\n  %s",
			strings.Join(violations, "\n  "))
	}
}

func lintFile(t *testing.T, path string) []string {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse %s: %v", path, err)
	}
	timeAlias := importAlias(f, "time")
	if timeAlias == "" {
		return nil
	}
	allowed := make(map[int]bool)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.Contains(c.Text, "telemetry:allow") {
				allowed[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	var out []string
	flag := func(pos token.Pos, what string) {
		p := fset.Position(pos)
		if allowed[p.Line] {
			return
		}
		out = append(out, fmt.Sprintf("%s:%d: %s", p.Filename, p.Line, what))
	}
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		// time.Since(x)
		if id, ok := sel.X.(*ast.Ident); ok && id.Name == timeAlias && sel.Sel.Name == "Since" {
			flag(call.Pos(), "time.Since")
			return true
		}
		// time.Now().Sub(x)
		if sel.Sel.Name == "Sub" {
			if inner, ok := sel.X.(*ast.CallExpr); ok {
				if isel, ok := inner.Fun.(*ast.SelectorExpr); ok {
					if id, ok := isel.X.(*ast.Ident); ok && id.Name == timeAlias && isel.Sel.Name == "Now" {
						flag(call.Pos(), "time.Now().Sub")
					}
				}
			}
		}
		return true
	})
	return out
}

// TestClassfileAliasLint is the zero-copy aliasing check: since the
// lazy codec made Attribute.Info and Code.Bytecode views into the
// parsed input buffer (released to a sync.Pool by ClassFile.Release),
// retaining one of those slices in anything that outlives the pipeline
// pass — a composite literal, a struct field, a map entry — is a
// use-after-release hazard. The rule flags exactly those retention
// sites in every non-test file outside internal/classfile that imports
// the classfile package; consuming uses (call arguments, locals,
// indexing) stay legal. A deliberate copy-free retention is marked
// with a `classfile:allow-alias` comment on the offending line, which
// is the reviewer's cue to check that the bytes provably outlive the
// retainer or were copied upstream.
func TestClassfileAliasLint(t *testing.T) {
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	var violations []string
	for _, dir := range []string{"internal", "cmd"} {
		err = filepath.Walk(filepath.Join(root, dir), func(path string, info os.FileInfo, err error) error {
			if err != nil {
				return err
			}
			if info.IsDir() {
				if info.Name() == "classfile" {
					return filepath.SkipDir
				}
				return nil
			}
			if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			violations = append(violations, lintAliases(t, path)...)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(violations) > 0 {
		t.Fatalf("classfile-alias-lint: Attribute.Info / Code.Bytecode are views into a pooled buffer (ClassFile.Release); copy before retaining, or annotate `classfile:allow-alias`\n  %s",
			strings.Join(violations, "\n  "))
	}
}

// aliasFields are the classfile slice fields that may alias the pooled
// parse buffer.
var aliasFields = map[string]bool{"Info": true, "Bytecode": true}

// aliasSource unwraps parens and re-slicings; it reports whether expr
// bottoms out at a bare X.Info / X.Bytecode selector (the alias itself,
// as opposed to a value computed from it).
func aliasSource(expr ast.Expr) (string, bool) {
	for {
		switch e := expr.(type) {
		case *ast.ParenExpr:
			expr = e.X
		case *ast.SliceExpr:
			expr = e.X
		case *ast.SelectorExpr:
			if aliasFields[e.Sel.Name] {
				return e.Sel.Name, true
			}
			return "", false
		default:
			return "", false
		}
	}
}

func lintAliases(t *testing.T, path string) []string {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse %s: %v", path, err)
	}
	if importAlias(f, "dvm/internal/classfile") == "" {
		return nil
	}
	allowed := make(map[int]bool)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.Contains(c.Text, "classfile:allow-alias") {
				allowed[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	var out []string
	flag := func(pos token.Pos, what string) {
		p := fset.Position(pos)
		if allowed[p.Line] {
			return
		}
		out = append(out, fmt.Sprintf("%s:%d: %s", p.Filename, p.Line, what))
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.CompositeLit:
			for _, elt := range node.Elts {
				val := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					val = kv.Value
				}
				if name, ok := aliasSource(val); ok {
					flag(val.Pos(), "."+name+" retained in composite literal")
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range node.Rhs {
				name, ok := aliasSource(rhs)
				if !ok {
					continue
				}
				if len(node.Lhs) != len(node.Rhs) {
					continue
				}
				switch node.Lhs[i].(type) {
				case *ast.SelectorExpr:
					flag(rhs.Pos(), "."+name+" retained in struct field")
				case *ast.IndexExpr:
					flag(rhs.Pos(), "."+name+" retained in map/slice element")
				}
			}
		}
		return true
	})
	return out
}

// TestClassfileAliasLintDetects proves the rule has teeth: each
// retention shape is flagged on a synthetic file, consuming uses are
// not, and the allow-alias escape silences a line.
func TestClassfileAliasLintDetects(t *testing.T) {
	src := `package scratch

import "dvm/internal/classfile"

type keep struct{ b []byte }

func bad(a *classfile.Attribute, c *classfile.Code, m map[string][]byte) []keep {
	k := keep{b: a.Info}            // violation: composite literal
	k.b = c.Bytecode[2:]            // violation: struct field (re-slice)
	m["x"] = a.Info                 // violation: map element
	m["y"] = c.Bytecode             // classfile:allow-alias
	local := a.Info                 // ok: local
	_ = len(c.Bytecode)             // ok: consumed
	copied := append([]byte(nil), a.Info...) // ok: copy
	return []keep{{b: copied}, {b: local[:0]}, k}
}
`
	path := filepath.Join(t.TempDir(), "aliases.go")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	got := lintAliases(t, path)
	if len(got) != 3 {
		t.Fatalf("lintAliases flagged %d sites, want 3:\n  %s", len(got), strings.Join(got, "\n  "))
	}
	for _, want := range []string{"composite literal", "struct field", "map/slice element"} {
		found := false
		for _, v := range got {
			if strings.Contains(v, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("no violation mentions %q in %v", want, got)
		}
	}
}

func importAlias(f *ast.File, pkg string) string {
	for _, imp := range f.Imports {
		if strings.Trim(imp.Path.Value, `"`) != pkg {
			continue
		}
		if imp.Name != nil {
			return imp.Name.Name
		}
		return pkg
	}
	return ""
}
