package telemetry

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
)

// TestHealthRoundTrip is the shared schema assertion: what WriteHealth
// serves, ParseHealth accepts, with every field intact. The proxy, secd,
// and monitor handler tests all run their live endpoints through
// ParseHealth too.
func TestHealthRoundTrip(t *testing.T) {
	r := NewRegistry("proxy")
	r.Counter("requests_total").Add(3)
	r.Gauge("cache_bytes", func() float64 { return 10 })
	h := r.Health(StatusOK)
	h.Breakers = map[string]BreakerHealth{
		"origin": {State: "closed", Trips: 1, Successes: 9, Failures: 2},
	}
	h.Epoch = 7
	h.Ring = []RingMemberHealth{
		{Member: "http://a", State: MemberAlive, Link: "-", Self: true},
		{Member: "http://b", State: MemberSuspect, Link: "closed"},
	}

	rec := httptest.NewRecorder()
	WriteHealth(rec, h)
	got, err := ParseHealth(rec.Body.Bytes())
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if got.V != HealthSchemaVersion || got.Service != "proxy" || got.Status != StatusOK {
		t.Fatalf("header fields = %+v", got)
	}
	if got.Counters["requests_total"] != 3 || got.Gauges["cache_bytes"] != 10 {
		t.Fatalf("metrics = %+v", got)
	}
	if got.Breakers["origin"].Trips != 1 || len(got.Ring) != 2 || !got.Ring[0].Self {
		t.Fatalf("breakers/ring = %+v", got)
	}
	if got.Epoch != 7 || got.Ring[1].State != MemberSuspect {
		t.Fatalf("membership fields = %+v", got)
	}
}

func TestParseHealthRejectsBadPayloads(t *testing.T) {
	mk := func(h Health) []byte {
		b, _ := json.Marshal(h)
		return b
	}
	cases := map[string][]byte{
		"not json":      []byte("version=3 waiters=0"),
		"wrong version": mk(Health{V: 2, Service: "proxy", Status: StatusOK}),
		"no service":    mk(Health{V: 1, Status: StatusOK}),
		"bad status":    mk(Health{V: 1, Service: "proxy", Status: "meh"}),
		"ring without epoch": mk(Health{V: 1, Service: "proxy", Status: StatusOK,
			Ring: []RingMemberHealth{{Member: "http://a", State: MemberAlive}}}),
		"ring member without address": mk(Health{V: 1, Service: "proxy", Status: StatusOK, Epoch: 3,
			Ring: []RingMemberHealth{{State: MemberAlive}}}),
		"ring member bad state": mk(Health{V: 1, Service: "proxy", Status: StatusOK, Epoch: 3,
			Ring: []RingMemberHealth{{Member: "http://a", State: "zombie"}}}),
	}
	for name, data := range cases {
		if _, err := ParseHealth(data); err == nil {
			t.Fatalf("%s: accepted %s", name, data)
		}
	}
}

func TestHealthHandler(t *testing.T) {
	r := NewRegistry("monitor")
	rec := httptest.NewRecorder()
	HealthHandler(func() Health { return r.Health(StatusDegraded) }).
		ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	got, err := ParseHealth(rec.Body.Bytes())
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if got.Status != StatusDegraded || got.Service != "monitor" {
		t.Fatalf("got %+v", got)
	}
}
