package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. Safe on a nil receiver
// so optional wiring (e.g. resilience.Hop.Retries) costs nothing when
// absent.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Load returns the current value.
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Registry holds one daemon's metrics: named counters, histograms, and
// gauge functions, rendered as Prometheus text on /metrics and as
// counter snapshots in the shared Health schema. Metric registration is
// idempotent (get-or-create), so a package can look a metric up by name
// wherever the handle is inconvenient to thread.
type Registry struct {
	service string
	prefix  string

	mu       sync.Mutex
	counters map[string]*Counter
	hists    map[string]*Histogram
	gauges   map[string]func() float64
}

// NewRegistry creates a registry for a service; metric names are
// prefixed dvm_<service>_ in the Prometheus rendering.
func NewRegistry(service string) *Registry {
	return &Registry{
		service:  service,
		prefix:   "dvm_" + metricToken(service) + "_",
		counters: make(map[string]*Counter),
		hists:    make(map[string]*Histogram),
		gauges:   make(map[string]func() float64),
	}
}

// Service returns the registry's service name.
func (r *Registry) Service() string { return r.service }

// Counter returns (creating if needed) the named counter. Counters use
// Prometheus naming: lowercase, underscores, suffix _total.
func (r *Registry) Counter(name string) *Counter {
	name = metricToken(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Histogram returns (creating if needed) the named histogram; bounds
// apply only on creation (nil = DefaultLatencyBounds). Histograms use
// the suffix _seconds.
func (r *Registry) Histogram(name string, bounds []time.Duration) *Histogram {
	name = metricToken(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Gauge registers a function sampled at scrape time (breaker state,
// cache bytes, ring size). Re-registering a name replaces the function.
func (r *Registry) Gauge(name string, f func() float64) {
	name = metricToken(name)
	r.mu.Lock()
	r.gauges[name] = f
	r.mu.Unlock()
}

// CounterValues snapshots every counter (for the Health schema).
func (r *Registry) CounterValues() map[string]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		out[name] = c.Load()
	}
	return out
}

// GaugeValues samples every gauge (for the Health schema).
func (r *Registry) GaugeValues() map[string]float64 {
	r.mu.Lock()
	fs := make(map[string]func() float64, len(r.gauges))
	for name, f := range r.gauges {
		fs[name] = f
	}
	r.mu.Unlock()
	out := make(map[string]float64, len(fs))
	for name, f := range fs {
		out[name] = f()
	}
	return out
}

// WritePrometheus renders every metric in the Prometheus text
// exposition format, sorted by name for deterministic scrapes.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	counterNames := sortedKeys(r.counters)
	histNames := sortedKeys(r.hists)
	gaugeNames := sortedKeys(r.gauges)
	counters := make(map[string]int64, len(counterNames))
	for _, n := range counterNames {
		counters[n] = r.counters[n].Load()
	}
	hists := make(map[string]HistSnapshot, len(histNames))
	for _, n := range histNames {
		hists[n] = r.hists[n].Snapshot()
	}
	gauges := make(map[string]func() float64, len(gaugeNames))
	for _, n := range gaugeNames {
		gauges[n] = r.gauges[n]
	}
	r.mu.Unlock()

	for _, n := range counterNames {
		full := r.prefix + n
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", full, full, counters[n])
	}
	for _, n := range gaugeNames {
		full := r.prefix + n
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", full, full,
			strconv.FormatFloat(gauges[n](), 'g', -1, 64))
	}
	for _, n := range histNames {
		full := r.prefix + n
		s := hists[n]
		fmt.Fprintf(w, "# TYPE %s histogram\n", full)
		var cum int64
		for i, b := range s.Bounds {
			cum += s.Counts[i]
			fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", full, promSeconds(b), cum)
		}
		cum += s.Counts[len(s.Bounds)]
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", full, cum)
		fmt.Fprintf(w, "%s_sum %s\n", full, promSeconds(s.Sum))
		fmt.Fprintf(w, "%s_count %d\n", full, cum)
	}
}

// Handler serves the registry as a Prometheus /metrics endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// promSeconds renders a duration as Prometheus seconds.
func promSeconds(d time.Duration) string {
	return strconv.FormatFloat(d.Seconds(), 'g', -1, 64)
}

// metricToken lowercases a name and maps everything outside
// [a-z0-9_] to '_', per the Prometheus naming rules.
func metricToken(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '_':
			return r
		case r >= 'A' && r <= 'Z':
			return r + ('a' - 'A')
		default:
			return '_'
		}
	}, s)
}

func sortedKeys[M ~map[string]V, V any](m M) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
