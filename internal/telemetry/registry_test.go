package telemetry

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestRegistryPrometheusOutput(t *testing.T) {
	r := NewRegistry("proxy")
	r.Counter("requests_total").Add(7)
	r.Counter("cache_hits_total").Inc()
	r.Gauge("cache_bytes", func() float64 { return 1234 })
	h := r.Histogram("request_seconds", nil)
	h.Observe(3 * time.Millisecond)
	h.Observe(40 * time.Millisecond)
	h.Observe(2 * time.Minute) // overflow bucket

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()

	for _, want := range []string{
		"# TYPE dvm_proxy_requests_total counter",
		"dvm_proxy_requests_total 7",
		"dvm_proxy_cache_hits_total 1",
		"# TYPE dvm_proxy_cache_bytes gauge",
		"dvm_proxy_cache_bytes 1234",
		"# TYPE dvm_proxy_request_seconds histogram",
		`dvm_proxy_request_seconds_bucket{le="0.005"} 1`,
		`dvm_proxy_request_seconds_bucket{le="0.05"} 2`,
		`dvm_proxy_request_seconds_bucket{le="30"} 2`,
		`dvm_proxy_request_seconds_bucket{le="+Inf"} 3`,
		"dvm_proxy_request_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in output:\n%s", want, out)
		}
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry("x")
	if r.Counter("a_total") != r.Counter("a_total") {
		t.Fatal("counter not idempotent")
	}
	if r.Histogram("h_seconds", nil) != r.Histogram("h_seconds", nil) {
		t.Fatal("histogram not idempotent")
	}
}

func TestRegistryHandlerContentType(t *testing.T) {
	r := NewRegistry("secd")
	r.Counter("polls_total").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "dvm_secd_polls_total 1") {
		t.Fatalf("body:\n%s", rec.Body.String())
	}
}

func TestMetricToken(t *testing.T) {
	if got := metricToken("Peer-Errors.Total"); got != "peer_errors_total" {
		t.Fatalf("metricToken = %q", got)
	}
}

func TestNilCounterSafe(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Load() != 0 {
		t.Fatal("nil counter held a value")
	}
}
