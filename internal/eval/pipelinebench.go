package eval

import (
	"fmt"
	"runtime"

	"dvm/internal/classfile"
	"dvm/internal/rewrite"
	"dvm/internal/telemetry"
	"dvm/internal/workload"
)

// PipelineBenchRow is one worker-count measurement of the full static
// service (verifier + security + monitor) over a workload class.
type PipelineBenchRow struct {
	Workers     int     `json:"workers"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Speedup is NsPerOp(workers=1) / NsPerOp(this row). On a
	// single-core host it hovers near 1.0 regardless of workers; on a
	// multicore proxy it approaches min(workers, methods).
	Speedup float64 `json:"speedup_vs_workers_1"`
}

// PipelineBenchReport is the serialized form of BENCH_PIPELINE.json: the
// codec hot-path costs plus the pipeline fan-out measurements, recorded
// per PR so the perf trajectory is trackable.
type PipelineBenchReport struct {
	GOMAXPROCS        int                `json:"gomaxprocs"`
	Iterations        int                `json:"iterations"`
	ClassBytes        int                `json:"class_bytes"`
	ParseNsPerOp      float64            `json:"parse_ns_per_op"`
	ParseAllocsPerOp  float64            `json:"parse_allocs_per_op"`
	EncodeNsPerOp     float64            `json:"encode_ns_per_op"`
	EncodeAllocsPerOp float64            `json:"encode_allocs_per_op"`
	Pipeline          []PipelineBenchRow `json:"pipeline"`
}

// benchLoop times fn over iterations and reports per-op nanoseconds and
// heap allocations (from runtime.MemStats deltas, so run it on an
// otherwise quiet process).
func benchLoop(iterations int, fn func() error) (nsPerOp, allocsPerOp float64, err error) {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := telemetry.StartTimer()
	for i := 0; i < iterations; i++ {
		if err := fn(); err != nil {
			return 0, 0, err
		}
	}
	elapsed := start.Elapsed()
	runtime.ReadMemStats(&after)
	n := float64(iterations)
	return float64(elapsed.Nanoseconds()) / n, float64(after.Mallocs-before.Mallocs) / n, nil
}

// pipelineBenchClass returns one representative serialized workload
// class (the same shape the verifier benchmarks use).
func pipelineBenchClass() ([]byte, error) {
	spec := workload.Benchmarks()[0]
	spec.Classes = 3
	spec.TargetBytes = 32 * 1024
	app, err := workload.Generate(spec)
	if err != nil {
		return nil, err
	}
	for name, data := range app.Classes {
		if name != spec.MainClass() {
			return data, nil
		}
	}
	return nil, fmt.Errorf("eval: workload generated no non-main class")
}

// PipelineBench measures the parse/encode codec and the full static
// service at each worker count, returning the report and a rendered
// table. workerCounts defaults to {1, 2, 4, GOMAXPROCS}.
func PipelineBench(iterations int, workerCounts []int) (*PipelineBenchReport, string, error) {
	if iterations <= 0 {
		iterations = 200
	}
	if len(workerCounts) == 0 {
		workerCounts = []int{1, 2, 4, runtime.GOMAXPROCS(0)}
	}
	seen := make(map[int]bool, len(workerCounts))
	counts := workerCounts[:0:0]
	for _, w := range workerCounts {
		if !seen[w] {
			seen[w] = true
			counts = append(counts, w)
		}
	}
	workerCounts = counts
	data, err := pipelineBenchClass()
	if err != nil {
		return nil, "", err
	}
	rep := &PipelineBenchReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Iterations: iterations,
		ClassBytes: len(data),
	}

	rep.ParseNsPerOp, rep.ParseAllocsPerOp, err = benchLoop(iterations, func() error {
		cf, err := classfile.Parse(data)
		if err != nil {
			return err
		}
		cf.Release()
		return nil
	})
	if err != nil {
		return nil, "", err
	}

	parsed, err := classfile.Parse(data)
	if err != nil {
		return nil, "", err
	}
	rep.EncodeNsPerOp, rep.EncodeAllocsPerOp, err = benchLoop(iterations, func() error {
		_, err := parsed.Encode()
		return err
	})
	if err != nil {
		return nil, "", err
	}

	policy := StandardPolicy()
	var base float64
	for _, w := range workerCounts {
		pipe := ServicePipeline(policy, false)
		pipe.SetWorkers(w)
		ns, allocs, err := benchLoop(iterations, func() error {
			_, err := pipe.Process(data, rewrite.NewContext())
			return err
		})
		if err != nil {
			return nil, "", err
		}
		row := PipelineBenchRow{Workers: w, NsPerOp: ns, AllocsPerOp: allocs, Speedup: 1}
		if w == 1 {
			base = ns
		}
		if base > 0 {
			row.Speedup = base / ns
		}
		rep.Pipeline = append(rep.Pipeline, row)
	}

	var cells [][]string
	cells = append(cells,
		[]string{"parse", "-", fmt.Sprintf("%.0f", rep.ParseNsPerOp), fmt.Sprintf("%.1f", rep.ParseAllocsPerOp), "-"},
		[]string{"encode", "-", fmt.Sprintf("%.0f", rep.EncodeNsPerOp), fmt.Sprintf("%.1f", rep.EncodeAllocsPerOp), "-"})
	for _, r := range rep.Pipeline {
		cells = append(cells, []string{
			"pipeline", fmt.Sprintf("%d", r.Workers),
			fmt.Sprintf("%.0f", r.NsPerOp), fmt.Sprintf("%.1f", r.AllocsPerOp),
			fmt.Sprintf("%.2fx", r.Speedup),
		})
	}
	text := table([]string{"Stage", "Workers", "ns/op", "allocs/op", "Speedup"}, cells)
	return rep, text, nil
}

// ComparePipelineBench checks current against a recorded baseline and
// returns a description of every regression beyond tol (0.2 = 20%).
//
// Raw ns/op is not comparable across hosts (the baseline is recorded on
// one machine, CI runs on another), so the gate uses host-independent
// signals only: allocations per op, which are a property of the code,
// and each pipeline stage's ns/op normalized by the same run's parse
// ns/op — the host's speed cancels out of the ratio, leaving relative
// throughput of the service pipeline against the codec hot path.
func ComparePipelineBench(baseline, current *PipelineBenchReport, tol float64) []string {
	if tol <= 0 {
		tol = 0.2
	}
	var regressions []string
	allocGate := func(stage string, base, cur float64) {
		// Small absolute slack: alloc counts from MemStats deltas wobble
		// by a few background allocations per op at low iteration counts.
		if cur > base*(1+tol)+8 {
			regressions = append(regressions,
				fmt.Sprintf("%s: %.1f allocs/op vs baseline %.1f (+%.0f%%)", stage, cur, base, (cur/base-1)*100))
		}
	}
	allocGate("parse", baseline.ParseAllocsPerOp, current.ParseAllocsPerOp)
	allocGate("encode", baseline.EncodeAllocsPerOp, current.EncodeAllocsPerOp)

	ratio := func(rep *PipelineBenchReport, ns float64) float64 {
		if rep.ParseNsPerOp <= 0 {
			return 0
		}
		return ns / rep.ParseNsPerOp
	}
	if br, cr := ratio(baseline, baseline.EncodeNsPerOp), ratio(current, current.EncodeNsPerOp); br > 0 && cr > br*(1+tol) {
		regressions = append(regressions,
			fmt.Sprintf("encode: %.2fx parse cost vs baseline %.2fx (+%.0f%%)", cr, br, (cr/br-1)*100))
	}
	baseRows := make(map[int]PipelineBenchRow, len(baseline.Pipeline))
	for _, r := range baseline.Pipeline {
		baseRows[r.Workers] = r
	}
	for _, cur := range current.Pipeline {
		base, ok := baseRows[cur.Workers]
		if !ok {
			continue
		}
		allocGate(fmt.Sprintf("pipeline(workers=%d)", cur.Workers), base.AllocsPerOp, cur.AllocsPerOp)
		br, cr := ratio(baseline, base.NsPerOp), ratio(current, cur.NsPerOp)
		if br > 0 && cr > br*(1+tol) {
			regressions = append(regressions,
				fmt.Sprintf("pipeline(workers=%d): %.2fx parse cost vs baseline %.2fx (+%.0f%%)", cur.Workers, cr, br, (cr/br-1)*100))
		}
	}
	return regressions
}
