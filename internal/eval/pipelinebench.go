package eval

import (
	"fmt"
	"runtime"
	"sort"

	"dvm/internal/classfile"
	"dvm/internal/rewrite"
	"dvm/internal/telemetry"
	"dvm/internal/workload"
)

// PipelineBenchRow is one worker-count measurement of the full static
// service (verifier + security + monitor) over a workload class.
type PipelineBenchRow struct {
	Workers     int     `json:"workers"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Speedup is NsPerOp(workers=1) / NsPerOp(this row). On a
	// single-core host it hovers near 1.0 regardless of workers; on a
	// multicore proxy it approaches min(workers, methods).
	Speedup float64 `json:"speedup_vs_workers_1"`
}

// PipelineBenchReport is the serialized form of BENCH_PIPELINE.json: the
// codec hot-path costs plus the pipeline fan-out measurements, recorded
// per PR so the perf trajectory is trackable.
type PipelineBenchReport struct {
	GOMAXPROCS        int     `json:"gomaxprocs"`
	Iterations        int     `json:"iterations"`
	ClassBytes        int     `json:"class_bytes"`
	ParseNsPerOp      float64 `json:"parse_ns_per_op"`
	ParseAllocsPerOp  float64 `json:"parse_allocs_per_op"`
	EncodeNsPerOp     float64 `json:"encode_ns_per_op"`
	EncodeAllocsPerOp float64 `json:"encode_allocs_per_op"`
	// The pass-through leg is the lazy codec's headline number: one
	// Parse→Encode cycle with no filter touching anything, which the
	// splice path should serve with near-zero attribute decoding.
	PassNsPerOp     float64 `json:"pass_ns_per_op"`
	PassAllocsPerOp float64 `json:"pass_allocs_per_op"`
	// PassAttrsDecodedPerOp counts attribute payloads the pass-through
	// leg materialized per op (classfile.CodecStats delta) — a property
	// of the code, 0 when laziness holds end to end.
	PassAttrsDecodedPerOp float64            `json:"pass_attrs_decoded_per_op"`
	Pipeline              []PipelineBenchRow `json:"pipeline"`
}

// benchLoop times fn over iterations and reports per-op nanoseconds and
// heap allocations (from runtime.MemStats deltas, so run it on an
// otherwise quiet process). A short warmup first (pool scratch, branch
// predictors, lazily initialized tables), then the iterations run as
// five batches and the ns/op is the median batch — one scheduler or GC
// hiccup skews a batch, not the measurement. Allocations use the full
// delta: they are deterministic per op, so more samples only help.
func benchLoop(iterations int, fn func() error) (nsPerOp, allocsPerOp float64, err error) {
	warmup := iterations / 10
	if warmup < 3 {
		warmup = 3
	}
	for i := 0; i < warmup; i++ {
		if err := fn(); err != nil {
			return 0, 0, err
		}
	}
	const batches = 5
	perBatch := iterations / batches
	if perBatch < 1 {
		perBatch = 1
	}
	total := perBatch * batches
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	batchNs := make([]float64, 0, batches)
	for b := 0; b < batches; b++ {
		start := telemetry.StartTimer()
		for i := 0; i < perBatch; i++ {
			if err := fn(); err != nil {
				return 0, 0, err
			}
		}
		batchNs = append(batchNs, float64(start.Elapsed().Nanoseconds())/float64(perBatch))
	}
	runtime.ReadMemStats(&after)
	sort.Float64s(batchNs)
	return batchNs[batches/2], float64(after.Mallocs-before.Mallocs) / float64(total), nil
}

// pipelineBenchClass returns one representative serialized workload
// class (the same shape the verifier benchmarks use).
func pipelineBenchClass() ([]byte, error) {
	spec := workload.Benchmarks()[0]
	spec.Classes = 3
	spec.TargetBytes = 32 * 1024
	app, err := workload.Generate(spec)
	if err != nil {
		return nil, err
	}
	for name, data := range app.Classes {
		if name != spec.MainClass() {
			return data, nil
		}
	}
	return nil, fmt.Errorf("eval: workload generated no non-main class")
}

// PipelineBench measures the parse/encode codec and the full static
// service at each worker count, returning the report and a rendered
// table. workerCounts defaults to {1, 2, 4, GOMAXPROCS}.
func PipelineBench(iterations int, workerCounts []int) (*PipelineBenchReport, string, error) {
	if iterations <= 0 {
		iterations = 200
	}
	if len(workerCounts) == 0 {
		workerCounts = []int{1, 2, 4, runtime.GOMAXPROCS(0)}
	}
	seen := make(map[int]bool, len(workerCounts))
	counts := workerCounts[:0:0]
	for _, w := range workerCounts {
		if !seen[w] {
			seen[w] = true
			counts = append(counts, w)
		}
	}
	workerCounts = counts
	data, err := pipelineBenchClass()
	if err != nil {
		return nil, "", err
	}
	rep := &PipelineBenchReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Iterations: iterations,
		ClassBytes: len(data),
	}

	rep.ParseNsPerOp, rep.ParseAllocsPerOp, err = benchLoop(iterations, func() error {
		cf, err := classfile.Parse(data)
		if err != nil {
			return err
		}
		cf.Release()
		return nil
	})
	if err != nil {
		return nil, "", err
	}

	parsed, err := classfile.Parse(data)
	if err != nil {
		return nil, "", err
	}
	rep.EncodeNsPerOp, rep.EncodeAllocsPerOp, err = benchLoop(iterations, func() error {
		_, err := parsed.Encode()
		return err
	})
	if err != nil {
		return nil, "", err
	}

	// Pass-through: full Parse→Encode cycles that touch nothing, the
	// path a verification-only request for a non-native arch takes.
	statsBefore := classfile.CodecStats()
	rep.PassNsPerOp, rep.PassAllocsPerOp, err = benchLoop(iterations, func() error {
		cf, err := classfile.Parse(data)
		if err != nil {
			return err
		}
		if _, err := cf.Encode(); err != nil {
			return err
		}
		cf.Release()
		return nil
	})
	if err != nil {
		return nil, "", err
	}
	statsAfter := classfile.CodecStats()
	rep.PassAttrsDecodedPerOp = float64(statsAfter.AttrsDecoded-statsBefore.AttrsDecoded) / float64(iterations)

	policy := StandardPolicy()
	var base float64
	for _, w := range workerCounts {
		pipe := ServicePipeline(policy, false)
		pipe.SetWorkers(w)
		ns, allocs, err := benchLoop(iterations, func() error {
			_, err := pipe.Process(data, rewrite.NewContext())
			return err
		})
		if err != nil {
			return nil, "", err
		}
		row := PipelineBenchRow{Workers: w, NsPerOp: ns, AllocsPerOp: allocs, Speedup: 1}
		if w == 1 {
			base = ns
		}
		if base > 0 {
			row.Speedup = base / ns
		}
		rep.Pipeline = append(rep.Pipeline, row)
	}

	var cells [][]string
	cells = append(cells,
		[]string{"parse", "-", fmt.Sprintf("%.0f", rep.ParseNsPerOp), fmt.Sprintf("%.1f", rep.ParseAllocsPerOp), "-", "-"},
		[]string{"encode", "-", fmt.Sprintf("%.0f", rep.EncodeNsPerOp), fmt.Sprintf("%.1f", rep.EncodeAllocsPerOp), "-", "-"},
		[]string{"pass-through", "-", fmt.Sprintf("%.0f", rep.PassNsPerOp), fmt.Sprintf("%.1f", rep.PassAllocsPerOp), fmt.Sprintf("%.2f", rep.PassAttrsDecodedPerOp), "-"})
	for _, r := range rep.Pipeline {
		cells = append(cells, []string{
			"pipeline", fmt.Sprintf("%d", r.Workers),
			fmt.Sprintf("%.0f", r.NsPerOp), fmt.Sprintf("%.1f", r.AllocsPerOp),
			"-", fmt.Sprintf("%.2fx", r.Speedup),
		})
	}
	text := table([]string{"Stage", "Workers", "ns/op", "allocs/op", "attrs-decoded/op", "Speedup"}, cells)
	return rep, text, nil
}

// ComparePipelineBench checks current against a recorded baseline and
// returns a description of every regression beyond tol (0.2 = 20%).
//
// Raw ns/op is not comparable across hosts (the baseline is recorded on
// one machine, CI runs on another), so the gate uses host-independent
// signals only: allocations per op and attributes decoded per op, which
// are properties of the code and hold at tol exactly, and each stage's
// ns/op normalized by the same run's parse ns/op. The lazy codec made
// parse cheap enough (~tens of µs) that those ratios wobble ±30% with
// scheduler and frequency noise on a shared host, so the timing ratios
// gate at 3×tol — a gross-regression tripwire, with the fine-grained
// regressions caught by the deterministic counters.
func ComparePipelineBench(baseline, current *PipelineBenchReport, tol float64) []string {
	if tol <= 0 {
		tol = 0.2
	}
	nsTol := 3 * tol
	var regressions []string
	allocGate := func(stage string, base, cur float64) {
		// Small absolute slack: alloc counts from MemStats deltas wobble
		// by a few background allocations per op at low iteration counts.
		if cur > base*(1+tol)+8 {
			regressions = append(regressions,
				fmt.Sprintf("%s: %.1f allocs/op vs baseline %.1f (+%.0f%%)", stage, cur, base, (cur/base-1)*100))
		}
	}
	allocGate("parse", baseline.ParseAllocsPerOp, current.ParseAllocsPerOp)
	allocGate("encode", baseline.EncodeAllocsPerOp, current.EncodeAllocsPerOp)

	ratio := func(rep *PipelineBenchReport, ns float64) float64 {
		if rep.ParseNsPerOp <= 0 {
			return 0
		}
		return ns / rep.ParseNsPerOp
	}
	if br, cr := ratio(baseline, baseline.EncodeNsPerOp), ratio(current, current.EncodeNsPerOp); br > 0 && cr > br*(1+nsTol) {
		regressions = append(regressions,
			fmt.Sprintf("encode: %.2fx parse cost vs baseline %.2fx (+%.0f%%)", cr, br, (cr/br-1)*100))
	}
	// Lazy-codec gates: the pass-through leg must stay cheap (allocs,
	// ns relative to parse) and must stay lazy (attributes decoded per
	// op is a property of the code — a jump means someone's filter or
	// helper started materializing payloads on the no-touch path).
	// Skipped against baselines recorded before the leg existed.
	if baseline.PassNsPerOp > 0 {
		allocGate("pass-through", baseline.PassAllocsPerOp, current.PassAllocsPerOp)
		if br, cr := ratio(baseline, baseline.PassNsPerOp), ratio(current, current.PassNsPerOp); br > 0 && cr > br*(1+nsTol) {
			regressions = append(regressions,
				fmt.Sprintf("pass-through: %.2fx parse cost vs baseline %.2fx (+%.0f%%)", cr, br, (cr/br-1)*100))
		}
		if cur, base := current.PassAttrsDecodedPerOp, baseline.PassAttrsDecodedPerOp; cur > base*(1+tol)+0.5 {
			regressions = append(regressions,
				fmt.Sprintf("pass-through: %.2f attrs decoded/op vs baseline %.2f (laziness regression)", cur, base))
		}
	}
	baseRows := make(map[int]PipelineBenchRow, len(baseline.Pipeline))
	for _, r := range baseline.Pipeline {
		baseRows[r.Workers] = r
	}
	for _, cur := range current.Pipeline {
		base, ok := baseRows[cur.Workers]
		if !ok {
			continue
		}
		allocGate(fmt.Sprintf("pipeline(workers=%d)", cur.Workers), base.AllocsPerOp, cur.AllocsPerOp)
		br, cr := ratio(baseline, base.NsPerOp), ratio(current, cur.NsPerOp)
		if br > 0 && cr > br*(1+nsTol) {
			regressions = append(regressions,
				fmt.Sprintf("pipeline(workers=%d): %.2fx parse cost vs baseline %.2fx (+%.0f%%)", cur.Workers, cr, br, (cr/br-1)*100))
		}
	}
	return regressions
}
