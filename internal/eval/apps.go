package eval

import (
	"fmt"

	"dvm/internal/classfile"
	"dvm/internal/classgen"
)

// newLeafClass builds a minimal dependency class exposing get()I.
func newLeafClass(name string) []byte {
	b := classgen.NewClass(name, "java/lang/Object")
	m := b.Method(classfile.AccPublic|classfile.AccStatic, "get", "()I")
	m.IConst(int32(len(name))).IReturn()
	data, err := b.BuildBytes()
	if err != nil {
		panic("eval: leaf class: " + err.Error())
	}
	return data
}

// buildEMain builds the eager-ablation driver: main uses app/EUsed; the
// idle methods reference app/EIdle0..3 but are never invoked.
func buildEMain() []byte {
	b := classgen.NewClass("app/EMain", "java/lang/Object")
	mn := b.Method(classfile.AccPublic|classfile.AccStatic, "main", "([Ljava/lang/String;)V")
	mn.InvokeStatic("app/EUsed", "get", "()I")
	mn.Pop()
	mn.Return()
	for i := 0; i < 4; i++ {
		idle := b.Method(classfile.AccPublic|classfile.AccStatic, fmt.Sprintf("idle%d", i), "()I")
		idle.InvokeStatic(fmt.Sprintf("app/EIdle%d", i), "get", "()I")
		idle.IReturn()
	}
	data, err := b.BuildBytes()
	if err != nil {
		panic("eval: EMain: " + err.Error())
	}
	return data
}
