package eval

import (
	"strings"
	"testing"
)

// TestPrefetchSmoke is the CI prefetch gate: on the warmed 2-node walk
// the predictor must convert at least one would-be peer round trip into
// a local hit, every pushed byte must be accounted for (hit, resident,
// or reported as waste — nothing hidden), and the ingestion gate must
// refuse unattested prefetch pushes.
func TestPrefetchSmoke(t *testing.T) {
	res, text, err := PrefetchBench(48, 4, 0)
	if err != nil {
		t.Fatal(err)
	}

	if res.Hits == 0 {
		t.Errorf("prefetch hit rate is zero: %+v", res)
	}
	if !res.UnattestedRejected {
		t.Error("unattested prefetch push was accepted")
	}

	// Accounting: every class the other node owns is served by either a
	// peer hop or a prefetch hit — nothing double-counted, nothing lost.
	if res.PeerHops+res.Hits != res.RemoteClasses {
		t.Errorf("peer hops (%d) + prefetch hits (%d) != remote classes (%d)",
			res.PeerHops, res.Hits, res.RemoteClasses)
	}
	// The ordered walk touches every prefetched class right after it
	// lands, so the ledger must balance with zero waste and zero
	// resident-unused bytes; anything else means pushed bytes leaked out
	// of the accounting.
	if res.Inserted != res.Hits {
		t.Errorf("inserted %d != hits %d on an ordered walk", res.Inserted, res.Hits)
	}
	if res.WasteBytes != 0 || res.ResidentBytes != 0 {
		t.Errorf("waste=%dB resident=%dB, want 0/0 on an ordered walk", res.WasteBytes, res.ResidentBytes)
	}
	if res.Received < res.Inserted {
		t.Errorf("received %d < inserted %d", res.Received, res.Inserted)
	}

	for _, want := range []string{"no prefetch", "prefetch ledger", "unattested prefetch push rejected: true"} {
		if !strings.Contains(text, want) {
			t.Errorf("bench text missing %q:\n%s", want, text)
		}
	}
}
