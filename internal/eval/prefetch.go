package eval

// Predictive-prefetch microbench: the 2-node warm-vs-cold walkthrough
// from the README, instrumented. Both fleets are warmed the same way
// (every class resident on its ring owner, predictors fed the app-walk
// first-use profile); then a fresh client walks every class in first-use
// order through node 0. Without prefetch every class the other node owns
// costs a peer round trip; with prefetch the owner piggybacks each
// class's predicted successor onto the fill, so the next step of the
// walk is already local. The bench reports the walk latency both ways,
// the full prefetch ledger (pushed / received / inserted / hits / waste
// / resident — waste is reported, never hidden), and an unattested-push
// probe proving the ingestion gate holds for prefetch entries too.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"time"

	"dvm/internal/cluster"
	"dvm/internal/proxy"
	"dvm/internal/telemetry"
)

// PrefetchBenchResult is the outcome of one warm-vs-cold comparison.
type PrefetchBenchResult struct {
	Classes     int
	BudgetBytes int
	// RemoteClasses is how many of the walk's classes the *other* node
	// owns in the prefetching fleet — the number of peer round trips the
	// walk would need with no prefetcher. Every one of them ends as
	// either a peer hop or a prefetch hit: PeerHops + Hits ==
	// RemoteClasses.
	RemoteClasses int64

	// Walk latency through the prefetching fleet vs the same walk
	// through a prefetch-disabled one.
	WalkP50, WalkP99                 time.Duration
	BaselineWalkP50, BaselineWalkP99 time.Duration
	PeerHops, BaselinePeerHops       int64

	// The prefetch ledger, summed over the fleet.
	Pushed, Received, Inserted, Hits int64
	WasteBytes, ResidentBytes        int64

	// UnattestedRejected reports whether a forged prefetch push without
	// an attestation was refused per-entry and kept out of the cache.
	UnattestedRejected bool
}

// PrefetchBench runs the two-node warm-vs-cold walk. classKB sizes each
// class; budgetBytes caps one piggyback batch (0 = the cluster
// default). Attestation is on, so every piggybacked entry carries a
// seal the requester re-verifies.
func PrefetchBench(classes, classKB, budgetBytes int) (PrefetchBenchResult, string, error) {
	if classes < 2 {
		return PrefetchBenchResult{}, "", fmt.Errorf("eval: prefetch bench needs >= 2 classes")
	}
	origin, err := Corpus(classes, classKB*1024, 7)
	if err != nil {
		return PrefetchBenchResult{}, "", err
	}
	key := []byte("prefetch-bench-attest-key")
	// The fed profile is the walk order WITHOUT a wrap-around edge: the
	// visitor walks the order exactly once, so an edge from the last
	// class back to the first would piggyback a class the visitor has
	// already passed — a correctly-reported resident-unused entry, but
	// noise in a smoke test that asserts the ledger balances to zero.
	order := make([]string, 0, classes)
	for i := 0; i < classes; i++ {
		order = append(order, fmt.Sprintf("net/Applet%03d", i))
	}

	// run warms a fleet, feeds the profile, and walks every class in
	// first-use order through node 0 with a fresh client. The caller
	// reads counters off lc and closes it.
	run := func(enabled bool) ([]time.Duration, *cluster.LocalCluster, error) {
		k := 0
		if !enabled {
			k = -1
		}
		lc, err := cluster.StartLocal(origin, 2, nil, func(int) cluster.Config {
			return cluster.Config{
				Replication:    1,
				GossipInterval: -1,
				AttestKey:      key,
				PrefetchK:      k,
				PrefetchBudget: budgetBytes,
			}
		})
		if err != nil {
			return nil, nil, err
		}
		ctx := context.Background()
		for i := 0; i < classes; i++ {
			class := fmt.Sprintf("net/Applet%03d", i)
			owner := lc.Nodes[0].Ring().Owner(cluster.KeyFor("dvm", class))
			for _, n := range lc.Nodes {
				if n.Self() != owner {
					continue
				}
				if _, err := n.Request(ctx, proxy.Lookup{Client: "warm", Arch: "dvm", Class: class}); err != nil {
					lc.Close()
					return nil, nil, err
				}
			}
		}
		for _, n := range lc.Nodes {
			n.FeedProfile("dvm", order)
		}
		lats := make([]time.Duration, 0, classes)
		for i := 0; i < classes; i++ {
			class := fmt.Sprintf("net/Applet%03d", i)
			t0 := telemetry.StartTimer()
			if _, err := lc.Nodes[0].Request(ctx, proxy.Lookup{Client: "visitor", Arch: "dvm", Class: class}); err != nil {
				lc.Close()
				return nil, nil, err
			}
			lats = append(lats, t0.Elapsed())
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		return lats, lc, nil
	}

	res := PrefetchBenchResult{Classes: classes, BudgetBytes: budgetBytes}

	base, lcBase, err := run(false)
	if err != nil {
		return res, "", err
	}
	res.BaselineWalkP50 = quantileDur(base, 0.50)
	res.BaselineWalkP99 = quantileDur(base, 0.99)
	res.BaselinePeerHops = lcBase.Nodes[0].Proxy().Stats().PeerFetches
	lcBase.Close()

	walk, lc, err := run(true)
	if err != nil {
		return res, "", err
	}
	defer lc.Close()
	res.WalkP50 = quantileDur(walk, 0.50)
	res.WalkP99 = quantileDur(walk, 0.99)
	res.PeerHops = lc.Nodes[0].Proxy().Stats().PeerFetches
	for i := 0; i < classes; i++ {
		class := fmt.Sprintf("net/Applet%03d", i)
		if lc.Nodes[0].Ring().Owner(cluster.KeyFor("dvm", class)) != lc.Nodes[0].Self() {
			res.RemoteClasses++
		}
	}
	for _, n := range lc.Nodes {
		res.Pushed += n.PrefetchPushed()
		res.Received += n.PrefetchReceived()
		inserted, hits, _, waste, resident := n.Proxy().PrefetchStats()
		res.Inserted += inserted
		res.Hits += hits
		res.WasteBytes += waste
		res.ResidentBytes += resident
	}

	// Forged push: a prefetch-reason entry with no attestation must be
	// refused per-entry by the batch ingestion gate and never cached.
	res.UnattestedRejected, err = probeUnattested(lc.Nodes[0].Self(), lc.Nodes[0].Proxy())
	if err != nil {
		return res, "", err
	}

	var b bytes.Buffer
	fmt.Fprintf(&b, "2-node warm-vs-cold walk, %d classes x %dKB, prefetch budget %dB (0 = default)\n",
		classes, classKB, budgetBytes)
	b.WriteString(table(
		[]string{"Mode", "Walk p50 (ms)", "Walk p99 (ms)", "Peer hops"},
		[][]string{
			{"no prefetch", ms(res.BaselineWalkP50), ms(res.BaselineWalkP99), fmt.Sprint(res.BaselinePeerHops)},
			{"prefetch", ms(res.WalkP50), ms(res.WalkP99), fmt.Sprint(res.PeerHops)},
		}))
	fmt.Fprintf(&b, "prefetch ledger: pushed=%d received=%d inserted=%d hits=%d waste=%dB resident-unused=%dB (remote classes: %d)\n",
		res.Pushed, res.Received, res.Inserted, res.Hits, res.WasteBytes, res.ResidentBytes, res.RemoteClasses)
	fmt.Fprintf(&b, "unattested prefetch push rejected: %v\n", res.UnattestedRejected)
	return res, b.String(), nil
}

// probeUnattested pushes one naked prefetch entry at the node's batch
// endpoint and reports whether it was refused and kept out of the cache.
func probeUnattested(nodeURL string, p *proxy.Proxy) (bool, error) {
	breq := cluster.BatchRequest{Entries: []cluster.BatchEntry{{
		Arch: "dvm", Class: "net/Forged", Reason: proxy.ReasonPrefetch,
		Data: []byte("unattested-bytes"),
	}}}
	body, err := json.Marshal(breq)
	if err != nil {
		return false, err
	}
	resp, err := http.Post(nodeURL+"/peer/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	var br cluster.BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		return false, err
	}
	_, _, cached := p.Peek("dvm", "net/Forged")
	return len(br.Errors) == 1 && !cached, nil
}
