package eval

import (
	"strings"
	"testing"
	"time"

	"dvm/internal/workload"
)

// quickSpecs shrinks the suites so the experiment plumbing is tested in
// milliseconds; full-scale runs live in the benchmark harness.
func quickSpecs() []workload.Spec {
	return ScaleSpecs(workload.Benchmarks(), 10)[:2] // JLex + Javacup, small
}

func quickApplets() []workload.Spec {
	return ScaleSpecs(workload.Applets(), 10)[4:] // CQ + Animated UI, small
}

func TestFig5(t *testing.T) {
	rows, text, err := Fig5(quickSpecs())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Classes == 0 || rows[0].SizeBytes == 0 {
		t.Errorf("rows = %+v", rows)
	}
	if !strings.Contains(text, "JLex") {
		t.Errorf("table = %s", text)
	}
}

func TestFig6ShapeHolds(t *testing.T) {
	rows, text, err := Fig6(quickSpecs())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Monolithic <= 0 || r.DVM <= 0 || r.DVMCached <= 0 {
			t.Errorf("%s: non-positive timings %+v", r.Name, r)
		}
		// Cached DVM must beat uncached DVM: the proxy did not re-run the
		// static services.
		if r.DVMCached >= r.DVM {
			t.Logf("%s: cached (%v) not faster than uncached (%v) — acceptable jitter at test scale", r.Name, r.DVMCached, r.DVM)
		}
	}
	if !strings.Contains(text, "Benchmark") {
		t.Error("missing table header")
	}
}

func TestFig7DVMClientCheaper(t *testing.T) {
	rows, _, err := Fig7(quickSpecs())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.MonolithicCost <= 0 {
			t.Errorf("%s: monolithic verification cost %v", r.Name, r.MonolithicCost)
		}
		// The core claim: DVM clients spend (much) less time verifying.
		if r.DVMCost > r.MonolithicCost {
			t.Errorf("%s: DVM client cost %v exceeds monolithic %v", r.Name, r.DVMCost, r.MonolithicCost)
		}
	}
}

func TestFig8StaticDominatesDynamic(t *testing.T) {
	rows, _, err := Fig8(quickSpecs())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.StaticChecks == 0 {
			t.Errorf("%s: no static checks", r.Name)
		}
		if r.DynamicChecks == 0 {
			t.Errorf("%s: no dynamic checks executed", r.Name)
		}
		if int64(r.StaticChecks) < 50*r.DynamicChecks {
			t.Errorf("%s: static(%d) / dynamic(%d) ratio too small — paper shows 2-3 orders of magnitude",
				r.Name, r.StaticChecks, r.DynamicChecks)
		}
	}
}

func TestFig9Shape(t *testing.T) {
	rows, text, err := Fig9(300)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]Fig9Row{}
	for _, r := range rows {
		byName[r.Operation] = r
		if r.Baseline <= 0 || r.DVMCheck <= 0 {
			t.Errorf("%s: non-positive timings %+v", r.Operation, r)
		}
		// The first DVM check pays the policy download.
		if r.DVMDownload < 3*time.Millisecond {
			t.Errorf("%s: download column %v too small", r.Operation, r.DVMDownload)
		}
	}
	// Read File: the monolithic architecture has no hook at all.
	if !byName["Read File"].JDKNA {
		t.Error("Read File must be N/A under the JDK")
	}
	if byName["Get Property"].JDKNA {
		t.Error("Get Property must be checkable under the JDK")
	}
	if !strings.Contains(text, "N/A") {
		t.Error("table must render the JDK gap")
	}
}

func TestFig10ScalesAndMeasures(t *testing.T) {
	cfg := DefaultFig10Config()
	cfg.Applets = 8
	cfg.AppletKB = 8
	cfg.Duration = 300 * time.Millisecond
	cfg.InternetScale = 0.002
	rows, text, err := Fig10([]int{1, 4, 8}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.ThroughputBps <= 0 || r.TotalBytes <= 0 {
			t.Errorf("row = %+v", r)
		}
	}
	// More concurrent clients must raise aggregate throughput while the
	// proxy is far from saturation.
	if rows[2].ThroughputBps <= rows[0].ThroughputBps {
		t.Errorf("throughput did not scale: 1 client %.0f B/s vs 8 clients %.0f B/s",
			rows[0].ThroughputBps, rows[2].ThroughputBps)
	}
	if !strings.Contains(text, "Clients") {
		t.Error("missing table")
	}
}

func TestAppletFetchOverheadSmall(t *testing.T) {
	row, text, err := AppletFetch(12)
	if err != nil {
		t.Fatal(err)
	}
	if row.AvgInternet <= 0 || row.AvgProxyOverhead <= 0 {
		t.Fatalf("row = %+v", row)
	}
	// The paper's point: proxy processing is a small fraction of WAN
	// latency (12% there). Accept anything under 50% at test scale.
	if row.OverheadPercent > 50 {
		t.Errorf("proxy overhead = %.1f%% of Internet latency", row.OverheadPercent)
	}
	if row.AvgCachedFetch >= row.AvgInternet {
		t.Errorf("cached fetch (%v) not faster than Internet (%v)", row.AvgCachedFetch, row.AvgInternet)
	}
	if !strings.Contains(text, "overhead") {
		t.Error("missing text")
	}
}

func TestFig11StartupDecreasesWithBandwidth(t *testing.T) {
	points, text, err := Fig11(quickApplets(), []float64{3.6, 64, 1000})
	if err != nil {
		t.Fatal(err)
	}
	byApp := map[string][]Fig11Point{}
	for _, p := range points {
		byApp[p.App] = append(byApp[p.App], p)
	}
	for app, ps := range byApp {
		if len(ps) != 3 {
			t.Fatalf("%s: %d points", app, len(ps))
		}
		if !(ps[0].Startup > ps[1].Startup && ps[1].Startup > ps[2].Startup) {
			t.Errorf("%s: startup not monotone in bandwidth: %v %v %v",
				app, ps[0].Startup, ps[1].Startup, ps[2].Startup)
		}
		if ps[0].ClassesLoaded == 0 {
			t.Errorf("%s: no classes loaded", app)
		}
	}
	if !strings.Contains(text, "Startup") {
		t.Error("missing title")
	}
}

func TestFig12ImprovementLargestAtLowBandwidth(t *testing.T) {
	points, text, err := Fig12(quickApplets(), []float64{3.6, 1000})
	if err != nil {
		t.Fatal(err)
	}
	byApp := map[string][]Fig12Point{}
	for _, p := range points {
		byApp[p.App] = append(byApp[p.App], p)
	}
	for app, ps := range byApp {
		low, high := ps[0], ps[1]
		if low.ImprovementPct <= 0 {
			t.Errorf("%s: no improvement at 28.8k (%.1f%%)", app, low.ImprovementPct)
		}
		if low.ImprovementPct < high.ImprovementPct-1 {
			t.Errorf("%s: improvement at low bandwidth (%.1f%%) below high bandwidth (%.1f%%)",
				app, low.ImprovementPct, high.ImprovementPct)
		}
	}
	if !strings.Contains(text, "improvement") {
		t.Error("missing title")
	}
}

func TestAblationRPC(t *testing.T) {
	res, text, err := AblationRPC(quickSpecs()[0], 2*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.DynamicChecks == 0 {
		t.Error("no dynamic checks")
	}
	if res.NaiveRPCTime <= res.FactoredTime {
		t.Errorf("naive RPC (%v) not slower than factored (%v)", res.NaiveRPCTime, res.FactoredTime)
	}
	if !strings.Contains(text, "naive") {
		t.Error("missing text")
	}
}

func TestAblationEagerLoadsMore(t *testing.T) {
	res, _, err := AblationEager()
	if err != nil {
		t.Fatal(err)
	}
	// Lazy: EMain + EUsed. Eager: all five dependencies demanded at init.
	if res.LazyClassesLoaded >= res.EagerClassesLoaded {
		t.Errorf("lazy loaded %d classes, eager %d — laziness broken",
			res.LazyClassesLoaded, res.EagerClassesLoaded)
	}
	if res.EagerChecks <= res.LazyChecks {
		t.Errorf("eager checks %d <= lazy %d", res.EagerChecks, res.LazyChecks)
	}
}

func TestAblationSecurityCache(t *testing.T) {
	res, _, err := AblationSecurityCache(200, 200*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Slowdown < 2 {
		t.Errorf("remote per-check only %.1fx slower than cached", res.Slowdown)
	}
}

func TestAblationReflection(t *testing.T) {
	spec := quickSpecs()[0]
	res, _, err := AblationReflection(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Checks == 0 {
		t.Error("no checks")
	}
	if res.ReflectiveTime < res.AttributeTime {
		t.Logf("reflective (%v) faster than attribute (%v) at this tiny scale — tolerated", res.ReflectiveTime, res.AttributeTime)
	}
}

func TestAblationReplicationRestoresThroughput(t *testing.T) {
	cfg := DefaultFig10Config()
	cfg.Applets = 8
	cfg.AppletKB = 8
	cfg.Duration = 250 * time.Millisecond
	cfg.InternetScale = 0.002
	cfg.MemoryBudget = 1 << 20 // tiny budget: one replica saturates fast
	rows, text, err := AblationReplication(24, []int{1, 4}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[1].ThroughputBps <= rows[0].ThroughputBps {
		t.Errorf("replication did not help: %0.f vs %0.f B/s",
			rows[0].ThroughputBps, rows[1].ThroughputBps)
	}
	if !strings.Contains(text, "Replicas") {
		t.Error("missing table")
	}
}

func TestClusterScalingDeduplicatesOriginWork(t *testing.T) {
	cfg := DefaultFig10Config()
	cfg.Applets = 8
	cfg.AppletKB = 8
	cfg.Duration = 300 * time.Millisecond
	cfg.InternetScale = 0.002
	cfg.MemoryBudget = 0
	rows, text, err := ClusterScaling(8, []int{2}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3 (one per mode)", len(rows))
	}
	var rr, cl, pf ClusterScalingRow
	for _, r := range rows {
		switch r.Mode {
		case "round-robin":
			rr = r
		case "cluster":
			cl = r
		case "cluster+prefetch":
			pf = r
		}
	}
	// Sharding dedups origin work with or without the prefetcher:
	// piggybacked entries come out of the owner's cache, never from a
	// fresh origin fetch.
	for _, r := range []ClusterScalingRow{cl, pf} {
		if r.OriginFetches != int64(cfg.Applets) {
			t.Errorf("%s origin fetches = %d, want exactly %d (one per distinct key)",
				r.Mode, r.OriginFetches, cfg.Applets)
		}
		if r.DupRewrites != 0 {
			t.Errorf("%s duplicate rewrites = %d, want 0", r.Mode, r.DupRewrites)
		}
	}
	// The prefetch row reports its ledger; waste is bounded by what was
	// pushed (an entry can only be wasted after being pushed).
	if pf.PrefetchPushed == 0 {
		t.Errorf("cluster+prefetch pushed no entries")
	}
	if pf.PrefetchWaste > pf.PrefetchPushed*int64(cfg.AppletKB*1024*2) {
		t.Errorf("prefetch waste %dB exceeds pushed volume", pf.PrefetchWaste)
	}
	if cl.PrefetchPushed != 0 || cl.PrefetchHits != 0 {
		t.Errorf("plain cluster row has prefetch activity: pushed=%d hits=%d",
			cl.PrefetchPushed, cl.PrefetchHits)
	}
	if rr.OriginFetches <= cl.OriginFetches {
		t.Errorf("round-robin fetched %d times, cluster %d; replication should duplicate cold work",
			rr.OriginFetches, cl.OriginFetches)
	}
	if !strings.Contains(text, "Dup rewrites") || !strings.Contains(text, "cluster") {
		t.Errorf("table = %s", text)
	}

	// The latency columns are computed from the mergeable histogram
	// snapshot, not a sorted sample array: each row carries its snapshot
	// and the quantile columns must be reproducible from it.
	for _, r := range rows {
		if r.Latency.Count() == 0 {
			t.Errorf("%s/%d: empty latency histogram", r.Mode, r.Nodes)
			continue
		}
		if r.P50 != r.Latency.Quantile(0.50) || r.P95 != r.Latency.Quantile(0.95) || r.P99 != r.Latency.Quantile(0.99) {
			t.Errorf("%s/%d: quantile columns not derived from the histogram snapshot", r.Mode, r.Nodes)
		}
		if r.P50 > r.P95 || r.P95 > r.P99 {
			t.Errorf("%s/%d: quantiles not monotone: p50=%v p95=%v p99=%v", r.Mode, r.Nodes, r.P50, r.P95, r.P99)
		}
	}
	if !strings.Contains(text, "p50 (ms)") || !strings.Contains(text, "p99 (ms)") {
		t.Errorf("table missing quantile columns:\n%s", text)
	}
	if !strings.Contains(text, "Cold p99 (ms)") || !strings.Contains(text, "Pf waste (B)") {
		t.Errorf("table missing cold-start/prefetch columns:\n%s", text)
	}
	for _, r := range rows {
		if r.ColdStart.Count() == 0 {
			t.Errorf("%s: empty cold-start histogram", r.Mode)
		} else if r.ColdP99 != r.ColdStart.Quantile(0.99) {
			t.Errorf("%s: cold p99 column not derived from the cold-start histogram", r.Mode)
		}
	}
	// The cluster run includes one traced cold request's per-stage
	// breakdown under the table.
	if !strings.Contains(text, "trace ") || !strings.Contains(text, "peer.fill") {
		t.Errorf("output missing cross-hop trace breakdown:\n%s", text)
	}
}

func TestScaleSpecs(t *testing.T) {
	specs := workload.Benchmarks()
	small := ScaleSpecs(specs, 10)
	if small[2].Classes >= specs[2].Classes {
		t.Error("scaling did not shrink")
	}
	if small[0].Classes < 2 {
		t.Error("scaled below minimum")
	}
	same := ScaleSpecs(specs, 1)
	if same[0].Classes != specs[0].Classes {
		t.Error("divisor 1 must be identity")
	}
}
