package eval

import (
	"context"
	"fmt"
	"sync"
	"time"

	"dvm/internal/netsim"
	"dvm/internal/proxy"
	"dvm/internal/telemetry"
)

// AblationReplicationRow is one point of the replication experiment.
type AblationReplicationRow struct {
	Replicas      int
	Clients       int
	ThroughputBps float64
	LatencyPerKB  time.Duration
	// OriginFetches/DupRewrites/HitRate expose the duplicate work a
	// round-robin fleet does: with caching off (the paper's worst case)
	// every request is a fresh origin fetch plus a fresh pipeline run.
	OriginFetches int64
	DupRewrites   int64
	HitRate       float64
}

// AblationReplication demonstrates §2's answer to the Figure 10
// collapse: "in larger installations, an administrator can ... use
// replicated proxies." It drives a client population big enough to
// exhaust one proxy's memory budget and shows throughput restored as
// replicas are added (each replica brings its own 64 MB). The rendered
// output then appends the ClusterScaling comparison — the same fleet
// sizes run with caching on, round-robin replicas vs. the sharded
// cluster — so the duplicate-work numbers sit next to the throughput
// restoration they motivate.
func AblationReplication(clients int, replicaCounts []int, cfg Fig10Config) ([]AblationReplicationRow, string, error) {
	origin, err := Corpus(cfg.Applets, cfg.AppletKB*1024, 42)
	if err != nil {
		return nil, "", err
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 3 * time.Second
	}
	inet := netsim.NewInternet(7)
	delayed := proxy.DelayedOrigin{
		Origin: origin,
		Delay: func(string) {
			if cfg.InternetScale > 0 {
				lat := inet.FetchLatency()
				if lat > 8*time.Second {
					lat = 8 * time.Second
				}
				time.Sleep(time.Duration(float64(lat) * cfg.InternetScale))
			}
		},
	}
	rows := make([]AblationReplicationRow, 0, len(replicaCounts))
	for _, nr := range replicaCounts {
		group, err := proxy.NewReplicaGroup(delayed, nr, func(int) proxy.Config {
			return proxy.Config{
				Pipeline:           ServicePipeline(StandardPolicy(), false),
				CacheEnabled:       false,
				MemoryBudget:       cfg.MemoryBudget,
				PagingPenaltyPerMB: 150 * time.Millisecond,
			}
		})
		if err != nil {
			return nil, "", err
		}
		var wg sync.WaitGroup
		var mu sync.Mutex
		var totalBytes int64
		var totalLatency time.Duration
		var fetches int64
		var firstErr error
		start := telemetry.StartTimer()
		deadline := time.Now().Add(cfg.Duration)
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for f := 0; time.Now().Before(deadline); f++ {
					applet := fmt.Sprintf("net/Applet%03d", (c+f)%cfg.Applets)
					t0 := telemetry.StartTimer()
					res, err := group.Request(context.Background(), proxy.Lookup{
						Client: fmt.Sprintf("client-%d", c), Arch: "dvm", Class: applet,
					})
					d := t0.Elapsed()
					mu.Lock()
					if err != nil && firstErr == nil {
						firstErr = err
					}
					totalBytes += int64(len(res.Data))
					totalLatency += d
					fetches++
					mu.Unlock()
				}
			}(c)
		}
		wg.Wait()
		if firstErr != nil {
			return nil, "", firstErr
		}
		elapsed := start.Elapsed()
		row := AblationReplicationRow{
			Replicas:      nr,
			Clients:       clients,
			ThroughputBps: float64(totalBytes) / elapsed.Seconds(),
		}
		if fetches > 0 && totalBytes > 0 {
			avgLatency := float64(totalLatency) / float64(fetches)
			avgKB := float64(totalBytes) / float64(fetches) / 1024
			row.LatencyPerKB = time.Duration(avgLatency / avgKB)
		}
		gs := group.Stats()
		row.OriginFetches = gs.OriginFetches
		if d := gs.OriginFetches - int64(cfg.Applets); d > 0 {
			row.DupRewrites = d
		}
		if gs.Requests > 0 {
			row.HitRate = float64(gs.CacheHits) / float64(gs.Requests)
		}
		rows = append(rows, row)
	}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			fmt.Sprint(r.Replicas),
			fmt.Sprintf("%.0f", r.ThroughputBps/1024),
			ms(r.LatencyPerKB),
			fmt.Sprint(r.OriginFetches),
			fmt.Sprint(r.DupRewrites),
			fmt.Sprintf("%.1f%%", r.HitRate*100),
		})
	}
	text := fmt.Sprintf("replication at %d clients (one proxy's memory saturates)\n", clients) +
		table([]string{"Replicas", "Throughput (KB/s)", "Latency/KB (ms)", "Origin fetches", "Dup rewrites", "Hit rate"}, cells)

	// The same fleet sizes as one sharded cache: round-robin vs. the
	// consistent-hash cluster, caching on.
	if _, ctext, err := ClusterScaling(clients, replicaCounts, cfg); err == nil {
		text += "\n" + ctext
	} else {
		return nil, "", err
	}
	return rows, text, nil
}
