package eval

// Property test for the invariant quorum attestation stands on: the
// static-service pipeline is byte-deterministic, so the output digest
// for a given (policy, origin bytes) pair is identical at every worker
// count and across independently constructed pipelines — two nodes that
// never shared state. If this ever breaks, digest votes would flag
// honest nodes as divergent; it must fail loudly here first.

import (
	"fmt"
	"testing"

	"dvm/internal/attest"
	"dvm/internal/rewrite"
)

func TestServicePipelineDigestInvariant(t *testing.T) {
	const classes = 16
	origin, err := Corpus(classes, 4096, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Reference digests: "node A", sequential. Fresh policy parse per
	// pipeline, so nothing is shared between the instances under test.
	refPipe := ServicePipeline(StandardPolicy(), true)
	refPipe.SetWorkers(1)
	ref := make(map[string]string, classes)
	for name, raw := range origin {
		out, err := refPipe.Process(raw, rewrite.NewContext())
		if err != nil {
			t.Fatalf("reference %s: %v", name, err)
		}
		ref[name] = attest.Digest(out)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			// "Node B": an independent pipeline at this worker count.
			p := ServicePipeline(StandardPolicy(), true)
			p.SetWorkers(workers)
			for name, raw := range origin {
				out, err := p.Process(raw, rewrite.NewContext())
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if d := attest.Digest(out); d != ref[name] {
					t.Errorf("%s: digest %.12s != reference %.12s — pipeline output depends on worker count or instance state", name, d, ref[name])
				}
			}
		})
	}
}
