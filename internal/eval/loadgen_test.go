package eval

import (
	"testing"
	"time"

	"dvm/internal/proxy"
)

// smokeConfig is the CI-sized open-loop run: 10^4 simulated clients,
// short window, fixed seed.
func smokeConfig() OverloadConfig {
	cfg := DefaultOverloadConfig()
	cfg.Clients = 10_000
	cfg.Duration = 500 * time.Millisecond
	return cfg
}

// TestLoadSmoke is the load-smoke gate: at moderate overload with
// admission control on, no accepted request fails, nothing falls into
// the unclassified-error bucket, and the shed rate stays bounded.
func TestLoadSmoke(t *testing.T) {
	cfg := smokeConfig()
	cfg.Multiples = []float64{1.5}
	rows, text, err := Overload(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + text)
	r := rows[0]
	if r.Arrivals < 50 {
		t.Fatalf("only %d arrivals in the window; harness is not offering load", r.Arrivals)
	}
	if r.Accepted == 0 {
		t.Fatal("no accepted requests at 1.5x saturation")
	}
	if r.Errors != 0 {
		t.Fatalf("unclassified errors = %d, want 0 (every failure must be a shed or a client abandon)", r.Errors)
	}
	// At 1.5x offered, shedding must be active but cannot be refusing
	// close to everything.
	if r.ShedRate > 0.9 {
		t.Errorf("shed rate = %.2f at 1.5x saturation, want < 0.9", r.ShedRate)
	}
	if got := r.Stats.FetchErrors; got != 0 {
		t.Errorf("proxy fetch errors = %d, want 0", got)
	}
}

// TestOverloadAdmissionKeepsLatencyAndGoodput is the acceptance
// criterion for the admission engine, scaled to CI: at 2x saturation
// with shedding on, the accepted p99 stays within 5x of the 0.5x-load
// p99, and goodput holds >= 70% of the peak point — while the
// unprotected baseline at the same offered load loses most of its
// goodput to client-abandoned requests.
func TestOverloadAdmissionKeepsLatencyAndGoodput(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second load sweep")
	}
	cfg := smokeConfig()
	cfg.Duration = 800 * time.Millisecond
	cfg.Multiples = []float64{0.5, 1, 2, 4}
	// Wide key space: the wait for "your" coalesced flight at full
	// backlog (Applets/origin-rate) far exceeds client patience, so
	// flight dedup cannot quietly absorb the overload.
	cfg.Applets = 4096

	origin, err := Corpus(cfg.Applets, cfg.AppletKB*1024, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	sat, err := MeasureSaturation(origin, cfg, 400*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}

	rows, text, err := Overload(cfg, sat)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + text)
	light, peakRow, over, extreme := rows[0], rows[1], rows[2], rows[3]
	if over.Errors != 0 || light.Errors != 0 {
		t.Fatalf("unclassified errors: light=%d over=%d", light.Errors, over.Errors)
	}

	// Latency bound: shedding keeps the accepted tail flat-ish instead
	// of queueing-delay-shaped.
	if light.P99 > 0 && over.P99 > 5*light.P99 {
		t.Errorf("accepted p99 at 2x = %v, more than 5x the 0.5x-load p99 %v", over.P99, light.P99)
	}
	// Goodput bound: collapse means goodput falling as offered load
	// rises. 2x must retain >= 70% of the best goodput seen up to and
	// including that point. (Past 2x goodput keeps rising here — flight
	// coalescing amplifies with load — so the bound is about the shape
	// of the curve, not its tail.)
	peak := peakRow.GoodputRPS
	for _, r := range rows[:3] {
		if r.GoodputRPS > peak {
			peak = r.GoodputRPS
		}
	}
	if over.GoodputRPS < 0.7*peak {
		t.Errorf("goodput at 2x = %.0f r/s, below 70%% of peak %.0f r/s", over.GoodputRPS, peak)
	}

	// The unprotected baseline at 4x offered load: no shedding, so the
	// origin queue grows without bound and clients abandon at their
	// deadlines instead of being refused up front. (At 2x, flight
	// coalescing alone can still absorb the excess; 4x is past any
	// dedup ceiling.)
	base := cfg
	base.ShedPolicy = proxy.ShedNone
	base.Multiples = []float64{4}
	baseRows, baseText, err := Overload(base, sat)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + baseText)
	b := baseRows[0]
	if b.Shed != 0 {
		t.Errorf("unprotected baseline shed %d requests; ShedNone must disable admission", b.Shed)
	}
	if b.Abandoned == 0 {
		t.Error("unprotected baseline had zero client abandons at 4x saturation; overload never materialized")
	}
	// The headline trade: the unprotected proxy strands a third or more
	// of its clients, each discovering the failure only by burning its
	// whole deadline (the accepted tail rides the deadline itself);
	// shedding answers immediately and keeps the accepted tail at
	// light-load levels.
	if extreme.P99*3 > b.P99 {
		t.Errorf("protected accepted p99 at 4x = %v, want at least 3x below unprotected %v", extreme.P99, b.P99)
	}
	if float64(b.Abandoned) < 0.3*float64(b.Arrivals) {
		t.Errorf("unprotected abandons = %d of %d arrivals; expected overload to strand >= 30%%", b.Abandoned, b.Arrivals)
	}
	t.Logf("goodput at 4x: protected %.0f r/s (shed %.0f%%) vs unprotected %.0f r/s (stranded %.0f%%)",
		extreme.GoodputRPS, extreme.ShedRate*100, b.GoodputRPS, float64(b.Abandoned)/float64(b.Arrivals)*100)
}
