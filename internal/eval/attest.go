package eval

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dvm/internal/cluster"
	"dvm/internal/netsim"
	"dvm/internal/proxy"
	"dvm/internal/rewrite"
	"dvm/internal/telemetry"
)

// Attestation quorum ablation: what does cross-checking cost, and how
// fast does it catch a liar? For each quorum the bench runs the same
// zipf workload over a fresh fleet and measures client latency and
// goodput — the quorum tax lands on the miss path only (each variant
// round-trip is part of a key's one-time service cost), so the p50 of
// a cache-heavy workload should barely move while the cold-key tail
// pays for the extra hops. At quorum >= 2 a second fleet with one
// Byzantine member (deterministically corrupting pipeline) measures
// detection: how many cold keys, and how much wall time, until some
// honest node's suspicion ledger quarantines the liar — with the
// standing requirement that not one corrupted artifact is served on
// the way.

// AttestBenchConfig parameterizes the quorum ablation.
type AttestBenchConfig struct {
	// Nodes is the fleet size (default 4).
	Nodes int
	// Clients drive the closed-loop zipf workload (default 8).
	Clients int
	// Classes is the distinct key count (default 64).
	Classes int
	// ClassKB sizes each class (default 8).
	ClassKB int
	// Rounds is how many requests each client performs (default 300).
	Rounds int
	// ZipfS is the workload skew (default 1.1).
	ZipfS float64
	// Quorums are the ablation points (default 1, 2, 3).
	Quorums []int
	// QuarantineAfter is the divergence threshold for the Byzantine leg
	// (0 = attest default).
	QuarantineAfter int
	// Seed drives the deterministic client PRNGs.
	Seed uint64
}

func (c *AttestBenchConfig) defaults() {
	if c.Nodes <= 0 {
		c.Nodes = 4
	}
	if c.Clients <= 0 {
		c.Clients = 8
	}
	if c.Classes <= 0 {
		c.Classes = 64
	}
	if c.ClassKB <= 0 {
		c.ClassKB = 8
	}
	if c.Rounds <= 0 {
		c.Rounds = 300
	}
	if c.ZipfS == 0 {
		c.ZipfS = 1.1
	}
	if len(c.Quorums) == 0 {
		c.Quorums = []int{1, 2, 3}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// AttestBenchRow is one quorum's measurements.
type AttestBenchRow struct {
	Quorum int
	// P50/P99 are client-visible request latencies over the whole zipf
	// run (hits and misses).
	P50, P99 time.Duration
	// QuorumP99 is the p99 of the owner-side attest round itself
	// (attest_quorum_seconds): the per-key tax, undiluted by cache hits.
	QuorumP99 time.Duration
	// GoodputRPS is completed requests per second of wall time.
	GoodputRPS float64
	// OriginFetches counts origin round-trips (must stay one per key:
	// variants receive origin bytes from the owner, they do not refetch).
	OriginFetches int64
	// AttestedKeys / Variants / Degraded sum the fleet's attestation
	// counters.
	AttestedKeys, Variants, Degraded int64
	// Byzantine leg (quorum >= 2; zero values at quorum 1):
	// DetectKeys is how many cold keys were served before some honest
	// node quarantined the Byzantine member (-1 = not detected),
	// DetectLatency the wall time to that point, and CorruptServed how
	// many corrupted artifacts honest nodes served meanwhile (must be 0).
	DetectKeys    int
	DetectLatency time.Duration
	CorruptServed int64
}

// attestFleet starts a fleet with attestation at the given quorum;
// byzantine >= 0 gives that node index the corrupting pipeline.
func attestFleet(origin proxy.Origin, cfg AttestBenchConfig, quorum, byzantine int, adversary *netsim.Byzantine) (*cluster.LocalCluster, error) {
	mkProxy := func(i int) proxy.Config {
		pcfg := proxy.Config{
			Pipeline:     ServicePipeline(StandardPolicy(), false),
			CacheEnabled: true,
		}
		if i == byzantine {
			p := ServicePipeline(StandardPolicy(), false)
			p.Append(adversary.Filter())
			pcfg.Pipeline = p
		}
		return pcfg
	}
	return cluster.StartLocal(origin, cfg.Nodes, mkProxy, func(int) cluster.Config {
		ccfg := cluster.Config{
			Replication:     2,
			GossipInterval:  -1, // static fleet: no churn in this bench
			QuarantineAfter: cfg.QuarantineAfter,
		}
		if quorum >= 1 {
			ccfg.AttestKey = []byte("attest-bench-service-key")
			ccfg.AttestQuorum = quorum
		}
		return ccfg
	})
}

// AttestBench runs the quorum ablation and renders the table.
func AttestBench(cfg AttestBenchConfig) ([]AttestBenchRow, string, error) {
	cfg.defaults()
	var rows []AttestBenchRow
	for _, q := range cfg.Quorums {
		row, err := attestRun(cfg, q)
		if err != nil {
			return nil, "", err
		}
		if q >= 2 {
			if err := attestDetect(cfg, q, &row); err != nil {
				return nil, "", err
			}
		}
		rows = append(rows, row)
	}
	var cells [][]string
	for _, r := range rows {
		detect, detectLat := "-", "-"
		if r.Quorum >= 2 {
			detect, detectLat = fmt.Sprint(r.DetectKeys), ms(r.DetectLatency)
			if r.DetectKeys < 0 {
				detect, detectLat = "none", "-"
			}
		}
		cells = append(cells, []string{
			fmt.Sprint(r.Quorum),
			ms(r.P50), ms(r.P99), ms(r.QuorumP99),
			fmt.Sprintf("%.0f", r.GoodputRPS),
			fmt.Sprint(r.OriginFetches),
			fmt.Sprint(r.AttestedKeys), fmt.Sprint(r.Variants), fmt.Sprint(r.Degraded),
			detect, detectLat, fmt.Sprint(r.CorruptServed),
		})
	}
	text := fmt.Sprintf("attestation quorum ablation: %d nodes, %d clients x %d requests, %d classes (zipf s=%.1f)\n",
		cfg.Nodes, cfg.Clients, cfg.Rounds, cfg.Classes, cfg.ZipfS) +
		table([]string{"quorum", "p50", "p99", "attest p99", "goodput rps", "origin fetches",
			"attested", "variant votes", "degraded", "detect keys", "detect time", "corrupt served"}, cells)
	return rows, text, nil
}

// attestRun measures one quorum's clean-fleet latency and goodput.
func attestRun(cfg AttestBenchConfig, quorum int) (AttestBenchRow, error) {
	origin, err := Corpus(cfg.Classes, cfg.ClassKB*1024, 42)
	if err != nil {
		return AttestBenchRow{}, err
	}
	counting := &fetchCounter{inner: origin}
	lc, err := attestFleet(counting, cfg, quorum, -1, nil)
	if err != nil {
		return AttestBenchRow{}, err
	}
	defer lc.Close()

	ctx := context.Background()
	hist := telemetry.NewHistogram(nil)
	zipf := newZipfTable(cfg.Classes, cfg.ZipfS)
	var failures atomic.Int64
	wallTimer := telemetry.StartTimer()
	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := &lrand{state: cfg.Seed*1099511628211 + uint64(c)*2654435761}
			n := lc.Nodes[c%cfg.Nodes]
			for i := 0; i < cfg.Rounds; i++ {
				class := fmt.Sprintf("net/Applet%03d", zipf.draw(rng.float()))
				t0 := telemetry.StartTimer()
				_, err := n.Request(ctx, proxy.Lookup{Client: fmt.Sprintf("client-%d", c), Arch: "dvm", Class: class})
				hist.Observe(t0.Elapsed())
				if err != nil {
					failures.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()
	wall := wallTimer.Elapsed()
	if f := failures.Load(); f > 0 {
		return AttestBenchRow{}, fmt.Errorf("attest bench: %d request failures at quorum %d on a clean fleet", f, quorum)
	}
	row := AttestBenchRow{Quorum: quorum}
	snap := hist.Snapshot()
	row.P50, row.P99 = snap.Quantile(0.5), snap.Quantile(0.99)
	total := cfg.Clients * cfg.Rounds
	row.GoodputRPS = float64(total) / wall.Seconds()
	row.OriginFetches = counting.fetches.Load()
	for _, n := range lc.Nodes {
		c := n.Health().Counters
		row.AttestedKeys += c["attested_keys_total"]
		row.Variants += c["attest_variants_total"]
		row.Degraded += c["attest_degraded_total"]
		h := n.Proxy().Telemetry().Histogram("attest_quorum_seconds", nil)
		if p := h.Snapshot().Quantile(0.99); p > row.QuorumP99 {
			row.QuorumP99 = p
		}
	}
	return row, nil
}

// attestDetect measures the Byzantine leg: cold keys and wall time
// until quarantine, counting any corrupted artifact an honest node
// serves (the required count is zero).
func attestDetect(cfg AttestBenchConfig, quorum int, row *AttestBenchRow) error {
	origin, err := Corpus(cfg.Classes, cfg.ClassKB*1024, 43)
	if err != nil {
		return err
	}
	// The honest reference output per class, from an independent
	// pipeline: any served byte-divergence from it is a corrupt artifact.
	honest := make(map[string][]byte, cfg.Classes)
	ref := ServicePipeline(StandardPolicy(), false)
	for name, raw := range origin {
		out, err := ref.Process(raw, rewrite.NewContext())
		if err != nil {
			return err
		}
		honest[name] = out
	}
	byz := cfg.Nodes - 1
	var adversary netsim.Byzantine
	lc, err := attestFleet(origin, cfg, quorum, byz, &adversary)
	if err != nil {
		return err
	}
	defer lc.Close()
	byzURL := lc.Nodes[byz].Self()

	ctx := context.Background()
	row.DetectKeys = -1
	detectTimer := telemetry.StartTimer()
	for k := 0; k < cfg.Classes; k++ {
		class := fmt.Sprintf("net/Applet%03d", k)
		n := lc.Nodes[k%(cfg.Nodes-1)] // honest nodes only
		res, err := n.Request(ctx, proxy.Lookup{Client: "detect", Arch: "dvm", Class: class})
		if err != nil {
			continue // a failed flight serves nothing, corrupt or otherwise
		}
		if !bytes.Equal(res.Data, honest[class]) {
			row.CorruptServed++
		}
		quarantined := false
		for i, hn := range lc.Nodes {
			if i != byz && hn.Quarantined(byzURL) {
				quarantined = true
			}
		}
		if quarantined {
			row.DetectKeys = k + 1
			row.DetectLatency = detectTimer.Elapsed()
			break
		}
	}
	return nil
}
