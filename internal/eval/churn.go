package eval

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dvm/internal/cluster"
	"dvm/internal/proxy"
	"dvm/internal/telemetry"
)

// Cluster churn under load: the membership subsystem's acceptance
// scenario. A fleet serves a zipf workload while one node is killed
// mid-run and a fresh node joins afterwards. The comparison that
// matters is the replication factor: at R=1 a death turns every key the
// dead node owned into a cold start (origin fetch + pipeline run, paid
// at client-visible latency), while at R=2 the successor already holds
// a pushed warm copy and the kill-phase p99 stays within a small factor
// of steady state. The join leg checks the consistent-hash promise —
// only ~1/n of keys remap — and that the newcomer warms itself through
// the handoff pull rather than through a miss storm.

// ChurnConfig parameterizes one churn scenario.
type ChurnConfig struct {
	// Nodes is the starting fleet size (default 4).
	Nodes int
	// Clients drive the closed-loop zipf workload (default 16).
	Clients int
	// Classes is the distinct key count (default 48).
	Classes int
	// ClassKB sizes each class (default 8).
	ClassKB int
	// Phase is how long each measured phase (steady, kill, join) runs
	// (default 1200ms).
	Phase time.Duration
	// ZipfS is the workload skew (default 1.1).
	ZipfS float64
	// OriginDelay models the origin's service time — the cost a cold
	// start pays that a warm replica does not (default 40ms).
	OriginDelay time.Duration
	// Seed drives the deterministic client PRNGs.
	Seed uint64
}

func (c *ChurnConfig) defaults() {
	if c.Nodes <= 0 {
		c.Nodes = 4
	}
	if c.Nodes > 8 {
		c.Nodes = 8 // the client failover table is fixed-size
	}
	if c.Clients <= 0 {
		c.Clients = 16
	}
	if c.Classes <= 0 {
		c.Classes = 48
	}
	if c.ClassKB <= 0 {
		c.ClassKB = 8
	}
	if c.Phase <= 0 {
		c.Phase = 1200 * time.Millisecond
	}
	if c.ZipfS == 0 {
		c.ZipfS = 1.1
	}
	if c.OriginDelay <= 0 {
		c.OriginDelay = 40 * time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// ChurnRow is one replication factor's measurements.
type ChurnRow struct {
	Replication int
	// SteadyP99 is the client p99 with the full fleet healthy.
	SteadyP99 time.Duration
	// KillP99 is the client p99 in the window right after a node is
	// killed, over all requests.
	KillP99 time.Duration
	// RemappedP99 is the kill-window p99 over only the keys the dead
	// node owned — the cold-start cost proper, undiluted by the ~3/4 of
	// traffic the kill never touched.
	RemappedP99 time.Duration
	// ColdRatio is RemappedP99 / SteadyP99 — the acceptance bound is
	// <= 3x at R=2 (warm replicas), unbounded at R=1 (origin refetch).
	ColdRatio float64
	// JoinP99 is the client p99 in the window after a fresh node joins.
	JoinP99 time.Duration
	// Failures counts client-visible request errors across the whole
	// run (must be zero: every phase degrades, never fails).
	Failures int64
	// OriginFetches counts origin round-trips across the run; each one
	// beyond Classes paid a duplicate fetch and pipeline run.
	OriginFetches int64
	// RemapFrac is the fraction of the keyspace (measured over a large
	// probe key set) whose primary changed when the new node joined;
	// consistent hashing bounds it near 1/n.
	RemapFrac float64
	// HandoffKeys is how many cache entries the joining node received
	// through the handoff pull (warm-up without a miss storm).
	HandoffKeys int64
	// EpochAgreed reports whether every live node converged on the same
	// membership epoch by the end of the run.
	EpochAgreed bool
	// MembersAlive and MembersDead mirror the membership gauges on the
	// reference node at the end of the run: the fleet should count the
	// killed node dead and everyone else (survivors + joiner) alive.
	MembersAlive int
	MembersDead  int
}

// ClusterChurn runs the kill/join scenario once per replication factor
// in rs (nil = [1, 2]) and renders the comparison table.
func ClusterChurn(cfg ChurnConfig, rs []int) ([]ChurnRow, string, error) {
	cfg.defaults()
	if len(rs) == 0 {
		rs = []int{1, 2}
	}
	var rows []ChurnRow
	for _, r := range rs {
		row, err := churnRun(cfg, r)
		if err != nil {
			return nil, "", err
		}
		rows = append(rows, row)
	}
	var cells [][]string
	for _, r := range rows {
		ratio := fmt.Sprintf("%.1fx", r.ColdRatio)
		cells = append(cells, []string{
			fmt.Sprint(r.Replication),
			ms(r.SteadyP99), ms(r.KillP99), ms(r.RemappedP99), ratio, ms(r.JoinP99),
			fmt.Sprint(r.Failures),
			fmt.Sprint(r.OriginFetches),
			fmt.Sprintf("%.1f%%", r.RemapFrac*100),
			fmt.Sprint(r.HandoffKeys),
			fmt.Sprint(r.EpochAgreed),
		})
	}
	text := fmt.Sprintf("cluster churn: %d nodes, %d clients, %d classes (zipf s=%.1f), kill one node then join one, origin %s away\n",
		cfg.Nodes, cfg.Clients, cfg.Classes, cfg.ZipfS, cfg.OriginDelay) +
		table([]string{"R", "steady p99", "kill p99", "remapped p99", "cold ratio", "join p99", "failures", "origin fetches", "join remap", "handoff keys", "epoch agreed"}, cells)
	return rows, text, nil
}

// churnRun is one scenario pass at replication factor r.
func churnRun(cfg ChurnConfig, r int) (ChurnRow, error) {
	origin, err := Corpus(cfg.Classes, cfg.ClassKB*1024, 42)
	if err != nil {
		return ChurnRow{}, err
	}
	counting := &fetchCounter{inner: origin}
	delayed := proxy.DelayedOrigin{Origin: counting, Delay: func(string) { time.Sleep(cfg.OriginDelay) }}

	lc, err := cluster.StartLocal(delayed, cfg.Nodes, func(int) proxy.Config {
		return proxy.Config{
			Pipeline:     ServicePipeline(StandardPolicy(), false),
			CacheEnabled: true,
		}
	}, func(int) cluster.Config {
		return cluster.Config{
			Replication: r,
			// Fast-reacting failure detection so the kill phase shows the
			// post-remap regime, not just the detection window.
			GossipInterval:   100 * time.Millisecond,
			SuspectTimeout:   400 * time.Millisecond,
			PeerTimeout:      1 * time.Second,
			BreakerThreshold: 2,
			BreakerCooldown:  2 * time.Second,
			// Peer hops only, never local hot copies: steady state must
			// measure the sharing path so the kill phase is an apples
			// comparison against it.
			HotThreshold: -1,
		}
	})
	if err != nil {
		return ChurnRow{}, err
	}
	defer lc.Close()

	// Warm the fleet: every key requested once per node, so every owner
	// holds its shard (and, at R=2, has pushed its replicas).
	ctx := context.Background()
	for ni, n := range lc.Nodes {
		for k := 0; k < cfg.Classes; k++ {
			class := fmt.Sprintf("net/Applet%03d", k)
			if _, err := n.Request(ctx, proxy.Lookup{Client: fmt.Sprintf("warm-%d", ni), Arch: "dvm", Class: class}); err != nil {
				return ChurnRow{}, fmt.Errorf("churn warmup: node %d %s: %v", ni, class, err)
			}
		}
	}
	// Let in-flight replica pushes land before measuring.
	time.Sleep(200 * time.Millisecond)

	const (
		phaseSteady = iota
		phaseKill
		phaseJoin
		phaseDone
	)
	var phase atomic.Int32
	hists := [3]*telemetry.Histogram{telemetry.NewHistogram(nil), telemetry.NewHistogram(nil), telemetry.NewHistogram(nil)}
	remappedHist := telemetry.NewHistogram(nil)
	var failures atomic.Int64
	var down [8]atomic.Bool // by node index; clients re-attach past dead nodes

	// The keys whose primary dies with the victim: the kill phase's
	// cold-start cost concentrates entirely in these, so they get their
	// own histogram (computed up front — the ring is static until the
	// kill, and every node agrees on it).
	victim := 1
	victimURL := lc.Nodes[victim].Self()
	remappedKey := make([]bool, cfg.Classes)
	for k := 0; k < cfg.Classes; k++ {
		key := cluster.KeyFor("dvm", fmt.Sprintf("net/Applet%03d", k))
		remappedKey[k] = lc.Nodes[0].Ring().Owner(key) == victimURL
	}
	zipf := newZipfTable(cfg.Classes, cfg.ZipfS)
	// Clients hold their own snapshot of the starting fleet: AddNode
	// appends to lc.Nodes mid-run, and a shared slice header read under
	// load would race with that append.
	fleet := append([]*cluster.Node(nil), lc.Nodes...)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := &lrand{state: cfg.Seed*1099511628211 + uint64(c)*2654435761}
			for {
				select {
				case <-stop:
					return
				default:
				}
				ni := c % cfg.Nodes
				for down[ni].Load() {
					ni = (ni + 1) % cfg.Nodes // failover, as a multi-endpoint loader would
				}
				ki := zipf.draw(rng.float())
				class := fmt.Sprintf("net/Applet%03d", ki)
				p := phase.Load()
				t0 := telemetry.StartTimer()
				_, err := fleet[ni].Request(ctx, proxy.Lookup{Client: fmt.Sprintf("client-%d", c), Arch: "dvm", Class: class})
				if p < phaseDone {
					hists[p].Observe(t0.Elapsed())
					if p == phaseKill && remappedKey[ki] {
						remappedHist.Observe(t0.Elapsed())
					}
				}
				if err != nil {
					failures.Add(1)
				}
			}
		}(c)
	}

	// Phase 1: steady state.
	time.Sleep(cfg.Phase)

	// Phase 2: kill. The server dies mid-traffic with no goodbye; the
	// fleet must detect, remap, and keep serving.
	phase.Store(phaseKill)
	down[victim].Store(true)
	lc.Stop(victim)
	time.Sleep(cfg.Phase)

	// Phase 3: join. Snapshot primaries before and after to measure the
	// remap fraction the newcomer causes. Measured over a large probe
	// key set, not the workload classes: the remap bound is a property
	// of the ring's keyspace split, and a few dozen workload keys would
	// bury it in sampling noise.
	const remapProbes = 2048
	ref := lc.Nodes[(victim+1)%cfg.Nodes]
	// The snapshot must isolate the join: wait until the victim is
	// declared dead (and its shard remapped) on the reference node, or
	// the kill's own remap would be charged to the joiner.
	for deadline := time.Now().Add(10 * time.Second); ; {
		dead := false
		for _, v := range ref.PeerViews() {
			if v.Member == victimURL && v.State == telemetry.MemberDead {
				dead = true
			}
		}
		if dead {
			break
		}
		if time.Now().After(deadline) {
			close(stop)
			wg.Wait()
			return ChurnRow{}, fmt.Errorf("churn: victim never declared dead")
		}
		time.Sleep(10 * time.Millisecond)
	}
	ownersBefore := make([]string, remapProbes)
	for k := 0; k < remapProbes; k++ {
		ownersBefore[k] = ref.Ring().Owner(fmt.Sprintf("probe-%04d", k))
	}
	joined, err := lc.AddNode(nil)
	if err != nil {
		close(stop)
		wg.Wait()
		return ChurnRow{}, err
	}
	phase.Store(phaseJoin)
	time.Sleep(cfg.Phase)
	phase.Store(phaseDone)
	close(stop)
	wg.Wait()

	remapped := 0
	for k := 0; k < remapProbes; k++ {
		if ref.Ring().Owner(fmt.Sprintf("probe-%04d", k)) != ownersBefore[k] {
			remapped++
		}
	}
	agreed := true
	epoch := ref.Epoch()
	for i, n := range lc.Nodes {
		if i == victim {
			continue
		}
		if n.Epoch() != epoch {
			agreed = false
		}
	}
	row := ChurnRow{
		Replication:   r,
		SteadyP99:     hists[phaseSteady].Snapshot().Quantile(0.99),
		KillP99:       hists[phaseKill].Snapshot().Quantile(0.99),
		RemappedP99:   remappedHist.Snapshot().Quantile(0.99),
		JoinP99:       hists[phaseJoin].Snapshot().Quantile(0.99),
		Failures:      failures.Load(),
		OriginFetches: counting.fetches.Load(),
		RemapFrac:     float64(remapped) / remapProbes,
		HandoffKeys:   lc.Nodes[joined].HandoffKeys(),
		EpochAgreed:   agreed,
	}
	gauges := ref.Health().Gauges
	row.MembersAlive = int(gauges["membership_alive"])
	row.MembersDead = int(gauges["membership_dead"])
	if row.SteadyP99 > 0 {
		row.ColdRatio = float64(row.RemappedP99) / float64(row.SteadyP99)
	}
	return row, nil
}

// fetchCounter counts origin round-trips (the duplicate-work metric).
type fetchCounter struct {
	inner   proxy.Origin
	fetches atomic.Int64
}

func (f *fetchCounter) Fetch(ctx context.Context, name string) ([]byte, error) {
	f.fetches.Add(1)
	return f.inner.Fetch(ctx, name)
}
