package eval

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"dvm/internal/netsim"
	"dvm/internal/proxy"
	"dvm/internal/telemetry"
)

// Open-loop overload experiment: the companion table to Figure 10.
// Figure 10 drives N closed-loop clients (each waits for its previous
// fetch), which self-throttles under overload and hides collapse. The
// overload table instead offers arrivals at a fixed rate regardless of
// completions — the regime where an unprotected proxy's queue grows
// without bound — and measures what admission control preserves:
// accepted-request latency, shed rate, and goodput at multiples of the
// proxy's measured saturation point.

// OverloadConfig parameterizes the open-loop load experiment.
type OverloadConfig struct {
	// Clients is the simulated client population (distinct identities;
	// 1e5..1e6 are in-process cheap since a client is an identity, not a
	// goroutine). Arrivals draw a client uniformly.
	Clients int
	// Applets and AppletKB size the corpus. Caching is disabled so every
	// admitted request costs an origin fetch + pipeline run, matching
	// the Figure 10 worst case.
	Applets  int
	AppletKB int
	// OriginConns and OriginDelay model the upstream as a server with a
	// bounded connection pool and a fixed per-fetch service time, so the
	// proxy's capacity is a knowable constant (OriginConns/OriginDelay)
	// rather than a function of the harness host's scheduler. This is
	// where the unprotected proxy's queue grows without bound.
	OriginConns int
	OriginDelay time.Duration
	// ZipfS is the key-popularity skew exponent (higher = hotter head;
	// any s > 0 works, the CDF is computed exactly over Applets keys).
	ZipfS float64
	// Duration is the measurement window per load point.
	Duration time.Duration
	// Multiples are the offered-load points as multiples of the measured
	// saturation throughput.
	Multiples []float64
	// RequestTimeout is each client's patience; an open-loop client that
	// misses it abandons the request (the browser's dead spinner).
	RequestTimeout time.Duration
	// SlowFraction of arrivals are modem clients: they consume the
	// response over a netsim.Modem28k8 transfer (scaled by SlowScale)
	// and get a correspondingly extended deadline.
	SlowFraction float64
	SlowScale    float64
	// Bursts: every BurstEvery, arrivals run at BurstFactor x rate for
	// BurstLen (flash-crowd spikes on top of the Poisson process).
	BurstEvery  time.Duration
	BurstLen    time.Duration
	BurstFactor float64
	// MaxOutstanding caps in-flight requests client-side (the OS's
	// socket backlog); arrivals beyond it count as dropped.
	MaxOutstanding int
	Seed           uint64

	// Proxy under test. MaxQueue 0 or ShedPolicy "none" is the
	// unprotected baseline.
	MaxQueue        int
	MaxConcurrent   int
	QueueDeadline   time.Duration
	ShedPolicy      string
	PipelineWorkers int
}

// DefaultOverloadConfig is sized so the full multiple sweep finishes in
// a few seconds on one core while still saturating the pipeline.
func DefaultOverloadConfig() OverloadConfig {
	return OverloadConfig{
		Clients: 100_000,
		// Enough distinct keys that flight coalescing cannot absorb the
		// overload on its own: with all keys in flight the wait for
		// "your" flight exceeds any client's patience.
		Applets: 1024,
		// Small applets keep the pipeline's CPU share per request well
		// under the modeled origin service time, so the origin pool
		// (OriginConns/OriginDelay = 1600 req/s) is the capacity limit
		// on any host, including single-core CI.
		AppletKB:       4,
		OriginConns:    8,
		OriginDelay:    5 * time.Millisecond,
		ZipfS:          0.9,
		Duration:       time.Second,
		Multiples:      []float64{0.5, 1, 2, 4},
		RequestTimeout: 250 * time.Millisecond,
		SlowFraction:   0.05,
		SlowScale:      0.005,
		BurstEvery:     400 * time.Millisecond,
		BurstLen:       80 * time.Millisecond,
		BurstFactor:    3,
		MaxOutstanding: 16384,
		Seed:           1,
		MaxQueue:       64,
		// A short queue deadline keeps the accepted tail close to the
		// light-load tail: better to refuse than to serve a request the
		// client has mentally abandoned.
		QueueDeadline: 25 * time.Millisecond,
		ShedPolicy:    proxy.ShedPriority,
	}
}

// OverloadRow is one offered-load point.
type OverloadRow struct {
	Multiple   float64
	OfferedRPS float64 // measured arrival rate
	Arrivals   int64
	Accepted   int64 // completed with bytes
	Shed       int64 // refused with ErrOverloaded
	Abandoned  int64 // client deadline expired first
	Dropped    int64 // client-side: outstanding cap hit
	Errors     int64 // anything else (must be zero)
	P50, P99   time.Duration
	GoodputRPS float64
	GoodputBps float64
	ShedRate   float64
	Stats      proxy.Stats
}

// lrand is the experiment PRNG (splitmix-style; deterministic without
// global seeding, same policy as netsim).
type lrand struct{ state uint64 }

func (r *lrand) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *lrand) float() float64 { return (float64(r.next()>>11) + 1) / float64(1<<53) }

func (r *lrand) intn(n int) int { return int(r.next() % uint64(n)) }

func (r *lrand) normal() float64 {
	return math.Sqrt(-2*math.Log(r.float())) * math.Cos(2*math.Pi*r.float())
}

// poisson draws an arrival count with the given mean.
func (r *lrand) poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 { // normal approximation for large means
		k := int(mean + math.Sqrt(mean)*r.normal() + 0.5)
		if k < 0 {
			k = 0
		}
		return k
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= r.float()
		if p <= l {
			return k
		}
		k++
	}
}

// zipfTable samples key indexes with P(i) ∝ 1/(i+1)^s via the
// precomputed CDF (exact for the corpus sizes used here).
type zipfTable struct{ cdf []float64 }

func newZipfTable(n int, s float64) *zipfTable {
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &zipfTable{cdf: cdf}
}

func (z *zipfTable) draw(u float64) int {
	i := sort.SearchFloat64s(z.cdf, u)
	if i >= len(z.cdf) {
		i = len(z.cdf) - 1
	}
	return i
}

// boundedOrigin models the upstream server: a connection pool of size
// conns, svc per fetch. Waiting for a connection honors the fetch
// context, so an abandoned flight releases its place in line.
type boundedOrigin struct {
	inner proxy.Origin
	sem   chan struct{}
	svc   time.Duration
}

func newBoundedOrigin(inner proxy.Origin, conns int, svc time.Duration) *boundedOrigin {
	if conns <= 0 {
		conns = 8
	}
	return &boundedOrigin{inner: inner, sem: make(chan struct{}, conns), svc: svc}
}

func (b *boundedOrigin) Fetch(ctx context.Context, name string) ([]byte, error) {
	select {
	case b.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	defer func() { <-b.sem }()
	if b.svc > 0 {
		select {
		case <-time.After(b.svc):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return b.inner.Fetch(ctx, name)
}

// overloadProxy builds the proxy under test for one load point.
func overloadProxy(origin proxy.Origin, cfg OverloadConfig) *proxy.Proxy {
	pipe := ServicePipeline(StandardPolicy(), false)
	pipe.SetWorkers(cfg.PipelineWorkers)
	return proxy.New(newBoundedOrigin(origin, cfg.OriginConns, cfg.OriginDelay), proxy.Config{
		Pipeline:      pipe,
		CacheEnabled:  false, // worst case, as in Figure 10
		MaxQueue:      cfg.MaxQueue,
		MaxConcurrent: cfg.MaxConcurrent,
		QueueDeadline: cfg.QueueDeadline,
		ShedPolicy:    cfg.ShedPolicy,
	})
}

// MeasureSaturation runs a short closed-loop probe against an
// unprotected copy of the proxy and returns its sustainable
// requests/sec. The open-loop points are expressed as multiples of this
// rate, so the experiment lands on the same relative load curve on any
// host.
func MeasureSaturation(origin proxy.Origin, cfg OverloadConfig, window time.Duration) (float64, error) {
	probe := cfg
	probe.MaxQueue = 0 // closed loop never overloads; measure raw capacity
	p := overloadProxy(origin, probe)
	workers := 4 * runtime.GOMAXPROCS(0)
	if workers < 16 {
		workers = 16 // must exceed the service-slot default to saturate
	}
	var done int64
	var firstErr error
	var mu sync.Mutex
	var wg sync.WaitGroup
	timer := telemetry.StartTimer()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; timer.Elapsed() < window; i++ {
				class := fmt.Sprintf("net/Applet%03d", (w*31+i)%cfg.Applets)
				_, err := p.Request(context.Background(), proxy.Lookup{
					Client: fmt.Sprintf("probe-%d", w), Arch: "dvm", Class: class,
				})
				mu.Lock()
				if err != nil && firstErr == nil {
					firstErr = err
				}
				done++
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if firstErr != nil {
		return 0, firstErr
	}
	elapsed := timer.Elapsed()
	if done == 0 || elapsed <= 0 {
		return 0, fmt.Errorf("eval: saturation probe completed no requests")
	}
	return float64(done) / elapsed.Seconds(), nil
}

// Overload runs the open-loop sweep and renders the table. satRPS <= 0
// triggers an automatic closed-loop probe.
func Overload(cfg OverloadConfig, satRPS float64) ([]OverloadRow, string, error) {
	if cfg.Applets <= 0 || cfg.Clients <= 0 || cfg.Duration <= 0 {
		return nil, "", fmt.Errorf("eval: overload config needs Applets, Clients, Duration")
	}
	origin, err := Corpus(cfg.Applets, cfg.AppletKB*1024, cfg.Seed)
	if err != nil {
		return nil, "", err
	}
	if satRPS <= 0 {
		satRPS, err = MeasureSaturation(origin, cfg, 400*time.Millisecond)
		if err != nil {
			return nil, "", err
		}
	}
	rows := make([]OverloadRow, 0, len(cfg.Multiples))
	for _, m := range cfg.Multiples {
		row, err := overloadPoint(origin, cfg, satRPS, m)
		if err != nil {
			return nil, "", err
		}
		rows = append(rows, row)
	}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			fmt.Sprintf("%.1fx", r.Multiple),
			fmt.Sprintf("%.0f", r.OfferedRPS),
			fmt.Sprint(r.Arrivals),
			fmt.Sprint(r.Accepted),
			fmt.Sprintf("%.1f%%", r.ShedRate*100),
			ms(r.P50),
			ms(r.P99),
			fmt.Sprintf("%.0f", r.GoodputRPS),
			fmt.Sprintf("%.0f", r.GoodputBps/1024),
		})
	}
	text := fmt.Sprintf("saturation (closed-loop probe): %.0f req/s\n", satRPS) +
		table([]string{"Load", "Offered (r/s)", "Arrivals", "Accepted", "Shed", "p50 (ms)", "p99 (ms)", "Goodput (r/s)", "Goodput (KB/s)"}, cells)
	return rows, text, nil
}

// overloadPoint offers rate = satRPS * m open-loop for cfg.Duration.
func overloadPoint(origin proxy.Origin, cfg OverloadConfig, satRPS, m float64) (OverloadRow, error) {
	p := overloadProxy(origin, cfg)
	rng := &lrand{state: cfg.Seed ^ math.Float64bits(m)}
	zipf := newZipfTable(cfg.Applets, cfg.ZipfS)
	maxOut := cfg.MaxOutstanding
	if maxOut <= 0 {
		maxOut = 16384
	}
	outstanding := make(chan struct{}, maxOut)

	var mu sync.Mutex
	var latencies []time.Duration
	row := OverloadRow{Multiple: m}
	var acceptedBytes int64
	var wg sync.WaitGroup

	rate := satRPS * m
	const tick = 2 * time.Millisecond
	window := telemetry.StartTimer()
	last := time.Duration(0)
	for {
		elapsed := window.Elapsed()
		if elapsed >= cfg.Duration {
			break
		}
		burst := 1.0
		if cfg.BurstEvery > 0 && cfg.BurstFactor > 0 && elapsed%cfg.BurstEvery < cfg.BurstLen {
			burst = cfg.BurstFactor
		}
		// Open loop: the arrival count covers the wall time actually
		// elapsed since the last tick, so scheduler starvation of this
		// goroutine cannot silently lower the offered rate.
		n := rng.poisson(rate * burst * (elapsed - last).Seconds())
		last = elapsed
		for i := 0; i < n; i++ {
			row.Arrivals++
			select {
			case outstanding <- struct{}{}:
			default:
				row.Dropped++ // client-side connection cap: open loop keeps going
				continue
			}
			client := fmt.Sprintf("c%06d", rng.intn(cfg.Clients))
			class := fmt.Sprintf("net/Applet%03d", zipf.draw(rng.float()))
			slow := rng.float() < cfg.SlowFraction
			budget := cfg.RequestTimeout
			if slow {
				// A modem client tolerates (and causes) a long transfer.
				budget += time.Duration(float64(netsim.Modem28k8.TransferTime(cfg.AppletKB*1024)) * cfg.SlowScale)
			}
			// The client's patience and the latency clock start at
			// arrival, not when the goroutine first gets CPU — otherwise
			// the scheduler run queue becomes an invisible unbounded
			// buffer in front of admission and overload never surfaces.
			ctx, cancel := context.WithTimeout(context.Background(), budget)
			t := telemetry.StartTimer()
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-outstanding }()
				defer cancel()
				res, err := p.Request(ctx, proxy.Lookup{Client: client, Arch: "dvm", Class: class})
				if err == nil && slow {
					netsim.Modem28k8.Sleep(len(res.Data), cfg.SlowScale)
				}
				lat := t.Elapsed()
				mu.Lock()
				defer mu.Unlock()
				switch {
				case err == nil:
					row.Accepted++
					acceptedBytes += int64(len(res.Data))
					latencies = append(latencies, lat)
				case errors.Is(err, proxy.ErrOverloaded):
					row.Shed++
				case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
					row.Abandoned++
				default:
					row.Errors++
				}
			}()
		}
		time.Sleep(tick)
	}
	arrivalWindow := window.Elapsed()
	wg.Wait()
	total := window.Elapsed()

	row.OfferedRPS = float64(row.Arrivals) / arrivalWindow.Seconds()
	if row.Arrivals > 0 {
		row.ShedRate = float64(row.Shed+row.Dropped) / float64(row.Arrivals)
	}
	// Goodput is over the full span including the drain, so queued work
	// finishing late cannot inflate it.
	row.GoodputRPS = float64(row.Accepted) / total.Seconds()
	row.GoodputBps = float64(acceptedBytes) / total.Seconds()
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	row.P50 = quantileDur(latencies, 0.50)
	row.P99 = quantileDur(latencies, 0.99)
	row.Stats = p.Stats()
	return row, nil
}

func quantileDur(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}
