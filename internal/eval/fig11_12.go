package eval

import (
	"fmt"
	"io"
	"time"

	"dvm/internal/jvm"
	"dvm/internal/monitor"
	"dvm/internal/netsim"
	"dvm/internal/optimize"
	"dvm/internal/rewrite"
	"dvm/internal/telemetry"
	"dvm/internal/workload"
)

// Figures 11 and 12 (§5): application start-up time as a function of
// link bandwidth, without and with the repartitioning optimization
// service.
//
// Start-up time is measured as the time from initial invocation until
// main completes its init path: the modeled transfer time of every class
// the client actually demanded, plus the measured client compute time.
// With repartitioning, cold companions are not demanded during start-up,
// so less code crosses the slow link.

// StandardBandwidthsKBps is the Figure 11 sweep (28.8 Kb/s wireless up
// to 1 MB/s LAN).
var StandardBandwidthsKBps = []float64{3.6, 8, 16, 32, 64, 128, 256, 512, 1000}

// Fig11Point is one (app, bandwidth) sample.
type Fig11Point struct {
	App           string
	BandwidthKBps float64
	Startup       time.Duration
	BytesLoaded   int64
	ClassesLoaded int
}

// countingLoader accumulates the modeled transfer time for each class a
// client demands.
type countingLoader struct {
	classes map[string][]byte
	link    netsim.Link
	clock   *netsim.Clock
	bytes   int64
	count   int
}

func (l *countingLoader) Load(name string) ([]byte, error) {
	data, ok := l.classes[name]
	if !ok {
		return nil, fmt.Errorf("eval: class %s not found", name)
	}
	l.clock.Advance(l.link.TransferTime(len(data)))
	l.bytes += int64(len(data))
	l.count++
	return data, nil
}

// startupTime runs the application over a bandwidth-shaped loader and
// returns modeled-transfer + measured-compute time.
func startupTime(classes map[string][]byte, mainClass string, link netsim.Link) (time.Duration, int64, int, error) {
	clock := &netsim.Clock{}
	loader := &countingLoader{classes: classes, link: link, clock: clock}
	vm, err := jvm.New(loader, io.Discard)
	if err != nil {
		return 0, 0, 0, err
	}
	start := telemetry.StartTimer()
	thrown, err := vm.RunMain(mainClass, nil)
	if err != nil || thrown != nil {
		return 0, 0, 0, runFail(mainClass, thrown, err)
	}
	compute := start.Elapsed()
	return clock.Now() + compute, loader.bytes, loader.count, nil
}

// Fig11 sweeps start-up time across bandwidths for every applet.
func Fig11(specs []workload.Spec, bandwidthsKBps []float64) ([]Fig11Point, string, error) {
	var points []Fig11Point
	for _, spec := range specs {
		app, err := workload.Generate(spec)
		if err != nil {
			return nil, "", err
		}
		for _, bw := range bandwidthsKBps {
			d, bytes, n, err := startupTime(app.Classes, spec.MainClass(), netsim.LinkKBps(bw))
			if err != nil {
				return nil, "", err
			}
			points = append(points, Fig11Point{
				App: spec.Name, BandwidthKBps: bw, Startup: d,
				BytesLoaded: bytes, ClassesLoaded: n,
			})
		}
	}
	return points, renderFig11(points, "Startup time (s) vs bandwidth (KB/s)"), nil
}

func renderFig11(points []Fig11Point, title string) string {
	// rows: app; columns: bandwidth.
	bws := []float64{}
	seen := map[float64]bool{}
	apps := []string{}
	seenApp := map[string]bool{}
	for _, p := range points {
		if !seen[p.BandwidthKBps] {
			seen[p.BandwidthKBps] = true
			bws = append(bws, p.BandwidthKBps)
		}
		if !seenApp[p.App] {
			seenApp[p.App] = true
			apps = append(apps, p.App)
		}
	}
	header := []string{"App \\ KB/s"}
	for _, bw := range bws {
		header = append(header, fmt.Sprintf("%.1f", bw))
	}
	var cells [][]string
	for _, app := range apps {
		row := []string{app}
		for _, bw := range bws {
			for _, p := range points {
				if p.App == app && p.BandwidthKBps == bw {
					row = append(row, secs(p.Startup))
				}
			}
		}
		cells = append(cells, row)
	}
	return title + "\n" + table(header, cells)
}

// Fig12Point is one (app, bandwidth) improvement sample.
type Fig12Point struct {
	App            string
	BandwidthKBps  float64
	Baseline       time.Duration
	Optimized      time.Duration
	ImprovementPct float64
}

// Fig12 repeats the sweep with the repartitioning service: the first
// execution's profile drives a method-granularity split, and subsequent
// start-ups fetch only the hot carriers.
func Fig12(specs []workload.Spec, bandwidthsKBps []float64) ([]Fig12Point, string, error) {
	var points []Fig12Point
	for _, spec := range specs {
		app, err := workload.Generate(spec)
		if err != nil {
			return nil, "", err
		}
		// Profile pass: the network proxy "collects profile information
		// from the first execution of an application".
		prof, err := collectProfile(app)
		if err != nil {
			return nil, "", err
		}
		split, _, err := optimize.Repartition(app.Classes, prof)
		if err != nil {
			return nil, "", err
		}
		for _, bw := range bandwidthsKBps {
			link := netsim.LinkKBps(bw)
			base, _, _, err := startupTime(app.Classes, spec.MainClass(), link)
			if err != nil {
				return nil, "", err
			}
			opt, _, _, err := startupTime(split, spec.MainClass(), link)
			if err != nil {
				return nil, "", err
			}
			points = append(points, Fig12Point{
				App: spec.Name, BandwidthKBps: bw,
				Baseline: base, Optimized: opt,
				ImprovementPct: (1 - float64(opt)/float64(base)) * 100,
			})
		}
	}
	// Render as improvement percentages.
	bws := []float64{}
	seen := map[float64]bool{}
	apps := []string{}
	seenApp := map[string]bool{}
	for _, p := range points {
		if !seen[p.BandwidthKBps] {
			seen[p.BandwidthKBps] = true
			bws = append(bws, p.BandwidthKBps)
		}
		if !seenApp[p.App] {
			seenApp[p.App] = true
			apps = append(apps, p.App)
		}
	}
	header := []string{"App \\ KB/s"}
	for _, bw := range bws {
		header = append(header, fmt.Sprintf("%.1f", bw))
	}
	var cells [][]string
	for _, app := range apps {
		row := []string{app}
		for _, bw := range bws {
			for _, p := range points {
				if p.App == app && p.BandwidthKBps == bw {
					row = append(row, fmt.Sprintf("%.1f%%", p.ImprovementPct))
				}
			}
		}
		cells = append(cells, row)
	}
	return points, "Startup improvement with repartitioning\n" + table(header, cells), nil
}

// collectProfile runs the app once under first-use instrumentation.
func collectProfile(app *workload.App) (*optimize.Profile, error) {
	instrumented := make(map[string][]byte, len(app.Classes))
	pipe := rewrite.NewPipeline(monitor.Filter(monitor.Config{FirstUse: true}))
	for name, data := range app.Classes {
		out, err := pipe.Process(data, nil)
		if err != nil {
			return nil, err
		}
		instrumented[name] = out
	}
	vm, err := jvm.New(jvm.MapLoader(instrumented), io.Discard)
	if err != nil {
		return nil, err
	}
	coll := monitor.NewCollector()
	session := monitor.Attach(vm, coll, monitor.ClientInfo{User: "profiler"})
	if thrown, err := vm.RunMain(app.Spec.MainClass(), nil); err != nil || thrown != nil {
		return nil, runFail(app.Spec.Name+" (profile)", thrown, err)
	}
	return optimize.FromFirstUse(coll.FirstUseOrder(session)), nil
}
