package eval

import (
	"fmt"
	"io"
	"strings"
	"time"

	"dvm/internal/classfile"
	"dvm/internal/jvm"
	"dvm/internal/proxy"
	"dvm/internal/rewrite"
	"dvm/internal/security"
	"dvm/internal/telemetry"
	"dvm/internal/verifier"
	"dvm/internal/workload"
)

// Ablations probe the design decisions DESIGN.md calls out: the paper
// motivates each (naive distribution, lazy link checks, client caching,
// the reflection anecdote); these experiments quantify them on this
// implementation.

// AblationRPC compares the DVM's factored verification against the §2
// strawman: "services decomposed along existing interfaces and moved,
// intact, to remote hosts" — every verifier check becomes a remote
// interaction. The paper predicts this is "prohibitively expensive due
// to the cost of remote communication ... and the frequency of
// inter-component interactions"; this experiment quantifies it.
type AblationRPCResult struct {
	StaticChecks  int
	DynamicChecks int64
	FactoredTime  time.Duration // measured: one-time server pass + local resolution
	NaiveRPCTime  time.Duration // modeled: one round trip per verifier interaction
	Slowdown      float64
}

// AblationRPC runs one benchmark in self-verifying form and contrasts
// the two distribution strategies.
func AblationRPC(spec workload.Spec, rtt time.Duration) (AblationRPCResult, string, error) {
	app, err := workload.Generate(spec)
	if err != nil {
		return AblationRPCResult{}, "", err
	}
	origin := proxy.MapOrigin(app.Classes)
	p := proxy.New(origin, proxy.Config{
		Pipeline:     rewrite.NewPipeline(verifier.Filter()),
		CacheEnabled: true,
	})
	// Factored: the static pass happens once on the server (measured as
	// part of the first run), and clients resolve injected checks
	// locally.
	c, err := NewDVMClient(p, "ablation", nil, nil)
	if err != nil {
		return AblationRPCResult{}, "", err
	}
	start := telemetry.StartTimer()
	if thrown, err := c.VM.RunMain(spec.MainClass(), nil); err != nil || thrown != nil {
		return AblationRPCResult{}, "", runFail(spec.Name, thrown, err)
	}
	factored := start.Elapsed()
	dynChecks := c.VM.Stats.LinkChecks

	// Count the verifier interactions the naive design would remote.
	var census verifier.Census
	for _, data := range app.Classes {
		cf, err := classfile.Parse(data)
		if err != nil {
			return AblationRPCResult{}, "", err
		}
		res, err := verifier.Verify(cf)
		if err != nil {
			return AblationRPCResult{}, "", err
		}
		census.Add(res.Census)
	}
	res := AblationRPCResult{
		StaticChecks:  census.Static(),
		DynamicChecks: dynChecks,
		FactoredTime:  factored,
		NaiveRPCTime:  factored + time.Duration(int64(census.Static())+dynChecks)*rtt,
	}
	if factored > 0 {
		res.Slowdown = float64(res.NaiveRPCTime) / float64(res.FactoredTime)
	}
	text := fmt.Sprintf(
		"naive service distribution (verifier moved intact, one RPC per check @ %v rtt) on %s:\n  verifier interactions: %d static + %d dynamic\n  factored (DVM): %s s\n  naive RPC:      %s s  (%.0fx slower)\n",
		rtt, spec.Name, res.StaticChecks, res.DynamicChecks,
		secs(res.FactoredTime), secs(res.NaiveRPCTime), res.Slowdown)
	return res, text, nil
}

// AblationEagerResult contrasts lazy per-method link checks against
// eager whole-class checking at initialization time.
type AblationEagerResult struct {
	LazyClassesLoaded  int
	EagerClassesLoaded int
	LazyChecks         int64
	EagerChecks        int64
}

// AblationEager builds an application whose entry path uses one
// dependency while other methods reference several more; lazy scoping
// must avoid demanding the unused ones.
func AblationEager() (AblationEagerResult, string, error) {
	classes, mainName := eagerTestApp()

	runVariant := func(eager bool) (int, int64, error) {
		transformed := make(map[string][]byte, len(classes))
		for name, data := range classes {
			cf, err := classfile.Parse(data)
			if err != nil {
				return 0, 0, err
			}
			res, err := verifier.Verify(cf)
			if err != nil {
				return 0, 0, err
			}
			if eager {
				err = verifier.InstrumentEager(cf, res)
			} else {
				err = verifier.Instrument(cf, res)
			}
			if err != nil {
				return 0, 0, err
			}
			out, err := cf.Encode()
			if err != nil {
				return 0, 0, err
			}
			transformed[name] = out
		}
		vm, err := jvm.New(jvm.MapLoader(transformed), io.Discard)
		if err != nil {
			return 0, 0, err
		}
		if thrown, err := vm.RunMain(mainName, nil); err != nil || thrown != nil {
			return 0, 0, runFail("eager ablation", thrown, err)
		}
		loaded := 0
		for _, n := range vm.LoadedClassNames() {
			if strings.HasPrefix(n, "app/") {
				loaded++
			}
		}
		return loaded, vm.Stats.LinkChecks, nil
	}
	lazyLoaded, lazyChecks, err := runVariant(false)
	if err != nil {
		return AblationEagerResult{}, "", err
	}
	eagerLoaded, eagerChecks, err := runVariant(true)
	if err != nil {
		return AblationEagerResult{}, "", err
	}
	res := AblationEagerResult{
		LazyClassesLoaded: lazyLoaded, EagerClassesLoaded: eagerLoaded,
		LazyChecks: lazyChecks, EagerChecks: eagerChecks,
	}
	text := fmt.Sprintf(
		"lazy vs eager link checking:\n  lazy:  %d app classes loaded, %d checks executed\n  eager: %d app classes loaded, %d checks executed\n",
		res.LazyClassesLoaded, res.LazyChecks, res.EagerClassesLoaded, res.EagerChecks)
	return res, text, nil
}

// eagerTestApp builds app/EMain whose main touches app/EUsed but whose
// idle methods reference app/EIdle0..3.
func eagerTestApp() (map[string][]byte, string) {
	classes := map[string][]byte{}
	addLeaf := func(name string) {
		b := newLeafClass(name)
		classes[name] = b
	}
	addLeaf("app/EUsed")
	for i := 0; i < 4; i++ {
		addLeaf(fmt.Sprintf("app/EIdle%d", i))
	}
	classes["app/EMain"] = buildEMain()
	return classes, "app/EMain"
}

// AblationSecurityCache contrasts the enforcement manager's cached
// lookups against per-check remote decisions.
type AblationSecurityCacheResult struct {
	Checks     int64
	CachedTime time.Duration
	RemoteTime time.Duration
	Slowdown   float64
}

// AblationSecurityCache measures N identical access checks both ways.
func AblationSecurityCache(checks int, rtt time.Duration) (AblationSecurityCacheResult, string, error) {
	if checks <= 0 {
		checks = 2000
	}
	policy := StandardPolicy()
	run := func(noCache bool) (time.Duration, error) {
		srv := security.NewServer(policy)
		srv.FetchDelay = func() { time.Sleep(rtt) }
		mgr := security.NewManager(srv, "apps")
		mgr.NoCache = noCache
		vm, err := jvm.New(jvm.MapLoader{}, io.Discard)
		if err != nil {
			return 0, err
		}
		t := vm.MainThread()
		start := telemetry.StartTimer()
		for i := 0; i < checks; i++ {
			if ex := mgr.Check(t, "property.get", "user.name"); ex != nil {
				return 0, fmt.Errorf("eval: unexpected denial: %s", jvm.DescribeThrowable(ex))
			}
		}
		return start.Elapsed(), nil
	}
	cached, err := run(false)
	if err != nil {
		return AblationSecurityCacheResult{}, "", err
	}
	remote, err := run(true)
	if err != nil {
		return AblationSecurityCacheResult{}, "", err
	}
	res := AblationSecurityCacheResult{
		Checks: int64(checks), CachedTime: cached, RemoteTime: remote,
		Slowdown: float64(remote) / float64(cached),
	}
	text := fmt.Sprintf(
		"client security-lookup cache (%d checks, %v rtt):\n  cached manager: %s s\n  remote per-check: %s s  (%.0fx slower)\n",
		checks, rtt, secs(res.CachedTime), secs(res.RemoteTime), res.Slowdown)
	return res, text, nil
}

// slowReflectionChecker reproduces the §4.3 anecdote: an RTVerifier
// built on a slow reflective interface (linear scans and string
// assembly) rather than the self-describing attribute path.
type slowReflectionChecker struct{ vm *jvm.VM }

func (s *slowReflectionChecker) CheckField(t *jvm.Thread, class, field, desc string) *jvm.Object {
	c, err := t.VM().Class(strings.ReplaceAll(class, ".", "/"))
	if err != nil {
		return t.VM().Throw("java/lang/NoClassDefFoundError", class)
	}
	// Reflective enumeration: walk every loaded class's members and
	// compare assembled descriptor strings.
	for _, name := range t.VM().LoadedClassNames() {
		k := t.VM().LoadedClass(name)
		if k == nil || k.File == nil {
			continue
		}
		for _, f := range k.File.Fields {
			sig := name + "." + k.File.MemberName(f) + ":" + k.File.MemberDescriptor(f)
			if sig == class+"."+field+":"+desc && k == c {
				return nil
			}
		}
	}
	if c.HasField(field, desc) {
		return nil
	}
	return t.VM().Throw("java/lang/NoSuchFieldError", class+"."+field)
}

func (s *slowReflectionChecker) CheckMethod(t *jvm.Thread, class, method, desc string) *jvm.Object {
	c, err := t.VM().Class(strings.ReplaceAll(class, ".", "/"))
	if err != nil {
		return t.VM().Throw("java/lang/NoClassDefFoundError", class)
	}
	for _, name := range t.VM().LoadedClassNames() {
		k := t.VM().LoadedClass(name)
		if k == nil || k.File == nil {
			continue
		}
		for _, m := range k.File.Methods {
			sig := name + "." + k.File.MemberName(m) + k.File.MemberDescriptor(m)
			if sig == class+"."+method+desc && k == c {
				return nil
			}
		}
	}
	if c.LookupMethod(method, desc) != nil {
		return nil
	}
	return t.VM().Throw("java/lang/NoSuchMethodError", class+"."+method+desc)
}

// AblationReflectionResult contrasts the reflective and attribute-based
// dynamic verifier components.
type AblationReflectionResult struct {
	Checks         int64
	AttributeTime  time.Duration
	ReflectiveTime time.Duration
	Slowdown       float64
}

// AblationReflection reproduces the paper's §4.3 anecdote by
// microbenchmarking the two dynamic verifier implementations directly:
// load the application, then drive each checker with the same sequence
// of link checks.
func AblationReflection(spec workload.Spec) (AblationReflectionResult, string, error) {
	app, err := workload.Generate(spec)
	if err != nil {
		return AblationReflectionResult{}, "", err
	}
	vm, err := jvm.New(jvm.MapLoader(app.Classes), io.Discard)
	if err != nil {
		return AblationReflectionResult{}, "", err
	}
	// Load everything so both checkers see the same namespace.
	if thrown, err := vm.RunMain(spec.MainClass(), nil); err != nil || thrown != nil {
		return AblationReflectionResult{}, "", runFail(spec.Name, thrown, err)
	}
	// The checks an application of this shape performs: one method and
	// one field probe per loaded application class.
	type probe struct{ class, member, desc string }
	var probes []probe
	for _, name := range vm.LoadedClassNames() {
		if !strings.HasPrefix(name, spec.Package+"/") || name == spec.MainClass() {
			continue
		}
		probes = append(probes, probe{name, "run", "(I)I"})
	}
	if len(probes) == 0 {
		return AblationReflectionResult{}, "", fmt.Errorf("eval: no probes for %s", spec.Name)
	}
	const rounds = 50
	t := vm.MainThread()
	slow := &slowReflectionChecker{vm: vm}

	start := telemetry.StartTimer()
	for r := 0; r < rounds; r++ {
		for _, p := range probes {
			if ex := slow.CheckMethod(t, p.class, p.member, p.desc); ex != nil {
				return AblationReflectionResult{}, "", fmt.Errorf("eval: reflective check failed: %s", jvm.DescribeThrowable(ex))
			}
		}
	}
	reflective := start.Elapsed()

	start = telemetry.StartTimer()
	for r := 0; r < rounds; r++ {
		for _, p := range probes {
			if ex := vmDefaultCheckMethod(vm, p.class, p.member, p.desc); ex != nil {
				return AblationReflectionResult{}, "", fmt.Errorf("eval: attribute check failed: %s", jvm.DescribeThrowable(ex))
			}
		}
	}
	attribute := start.Elapsed()

	res := AblationReflectionResult{
		Checks: int64(rounds * len(probes)), AttributeTime: attribute, ReflectiveTime: reflective,
	}
	if attribute > 0 {
		res.Slowdown = float64(reflective) / float64(attribute)
	}
	text := fmt.Sprintf(
		"reflection service ablation on %s (%d checks):\n  attribute-based RTVerifier: %s s\n  reflective RTVerifier:      %s s  (%.0fx)\n",
		spec.Name, res.Checks, secs(res.AttributeTime), secs(res.ReflectiveTime), res.Slowdown)
	return res, text, nil
}

// vmDefaultCheckMethod is the fast path: the descriptor-lookup check the
// DVM's RTVerifier performs.
func vmDefaultCheckMethod(vm *jvm.VM, class, method, desc string) *jvm.Object {
	c := vm.LoadedClass(class)
	if c == nil {
		return vm.Throw("java/lang/NoClassDefFoundError", class)
	}
	if c.LookupMethod(method, desc) == nil {
		return vm.Throw("java/lang/NoSuchMethodError", class+"."+method+desc)
	}
	return nil
}
