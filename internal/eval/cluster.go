package eval

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"dvm/internal/cluster"
	"dvm/internal/netsim"
	"dvm/internal/proxy"
	"dvm/internal/telemetry"
)

// Sharded-cluster scalability: the ROADMAP's fleet question. Round-robin
// replication (§2's literal remedy) gives N proxies N independent
// caches, so a fleet pays N cold origin fetches and N duplicate
// rewrite-pipeline runs per class. The consistent-hash cluster
// (internal/cluster) shards ownership instead: one origin fetch and one
// pipeline run per distinct key, cluster-wide, with peer fills for
// everyone else.

// ClusterScalingRow is one (mode, fleet size) point of the comparison.
type ClusterScalingRow struct {
	Mode          string // "round-robin", "cluster", or "cluster+prefetch"
	Nodes         int
	Clients       int
	OriginFetches int64
	// DupRewrites counts pipeline runs beyond the necessary one per
	// distinct key — pure duplicate work a sharded fleet avoids.
	DupRewrites int64
	// HitRate is the fleet-aggregate cache hit rate (cluster mode counts
	// the internal peer-protocol requests too).
	HitRate float64
	// Latency is the fleet-wide client-observed latency histogram (the
	// per-client histograms merged bucket-wise); the quantile columns are
	// computed from it.
	Latency       telemetry.HistSnapshot
	P50, P95, P99 time.Duration
	// ColdStart is the latency histogram over each client's FIRST request
	// for each key — the tail the prefetcher attacks. Later repeats of
	// the same (client, key) pair are warm and excluded.
	ColdStart telemetry.HistSnapshot
	ColdP99   time.Duration
	// Prefetch ledger, summed over the fleet: entries piggybacked onto
	// peer-fill responses, hits on prefetched entries, and bytes pushed
	// but evicted/overwritten before first use (waste — reported, never
	// hidden; each piggyback batch is bounded by the prefetch budget).
	PrefetchPushed int64
	PrefetchHits   int64
	PrefetchWaste  int64
	ThroughputBps  float64
}

// clusterZipfS is the key-popularity skew of the app-walk workload's
// window starts (same exponent family as the overload harness).
const clusterZipfS = 0.9

// clusterWalkLen is the length of one sequential class walk: a client
// picks a zipf-popular window start and then requests ~8 classes in
// order — the applet-session shape whose first-use order the monitor
// profiles, and therefore the sequence the prefetcher can predict.
const clusterWalkLen = 8

// ClusterScaling runs the same zipf-app-walk workload against three
// fleets of each size in nodeCounts — N round-robin replicas, an
// N-node sharded cluster, and the same cluster with predictive
// prefetch enabled (all with caching on, over the same synthetic-
// Internet origin) — and reports duplicate work, client-observed
// latency, cold-start latency (first touch per client and key), and
// the prefetch hit/waste ledger. The cluster's peer hops run over real
// loopback HTTP.
func ClusterScaling(clients int, nodeCounts []int, cfg Fig10Config) ([]ClusterScalingRow, string, error) {
	origin, err := Corpus(cfg.Applets, cfg.AppletKB*1024, 42)
	if err != nil {
		return nil, "", err
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 3 * time.Second
	}
	inet := netsim.NewInternet(7)
	delayed := proxy.DelayedOrigin{
		Origin: origin,
		Delay: func(string) {
			if cfg.InternetScale > 0 {
				lat := inet.FetchLatency()
				if lat > 8*time.Second {
					lat = 8 * time.Second
				}
				time.Sleep(time.Duration(float64(lat) * cfg.InternetScale))
			}
		},
	}
	mkProxy := func(int) proxy.Config {
		return proxy.Config{
			Pipeline:           ServicePipeline(StandardPolicy(), false),
			CacheEnabled:       true,
			MemoryBudget:       cfg.MemoryBudget,
			PagingPenaltyPerMB: 150 * time.Millisecond,
		}
	}

	var rows []ClusterScalingRow
	var breakdown string

	// runCluster drives one sharded fleet, optionally with the prefetch
	// predictor enabled and pre-trained from the app-walk first-use order
	// (the monitor profile a previous session would have produced).
	runCluster := func(n int, mode string, withPrefetch bool) (ClusterScalingRow, error) {
		mkClust := func(int) cluster.Config {
			if withPrefetch {
				return cluster.Config{}
			}
			return cluster.Config{PrefetchK: -1}
		}
		lc, err := cluster.StartLocal(delayed, n, mkProxy, mkClust)
		if err != nil {
			return ClusterScalingRow{}, err
		}
		defer lc.Close()
		if withPrefetch {
			cycle := make([]string, 0, cfg.Applets+1)
			for i := 0; i <= cfg.Applets; i++ {
				cycle = append(cycle, fmt.Sprintf("net/Applet%03d", i%cfg.Applets))
			}
			for _, node := range lc.Nodes {
				node.FeedProfile("dvm", cycle)
			}
		}
		// One traced cold request from a non-owner first: its trace shows
		// the per-stage breakdown (peer.fill on the non-owner, the owner's
		// origin.fetch and pipeline) that the aggregate table cannot.
		if s := traceSample(lc, cfg.Applets); s != "" && breakdown == "" {
			breakdown = s
		}
		row, err := driveFleet(mode, n, clients, cfg, func(c int) requestFunc {
			return lc.Nodes[c%n].Request
		})
		if err != nil {
			return ClusterScalingRow{}, err
		}
		var total proxy.Stats
		for _, node := range lc.Nodes {
			s := node.Proxy().Stats()
			total.Requests += s.Requests
			total.CacheHits += s.CacheHits
			total.OriginFetches += s.OriginFetches
		}
		row = finishRow(row, total, cfg.Applets)
		for _, node := range lc.Nodes {
			_, hits, _, waste, _ := node.Proxy().PrefetchStats()
			row.PrefetchPushed += node.PrefetchPushed()
			row.PrefetchHits += hits
			row.PrefetchWaste += waste
		}
		return row, nil
	}

	for _, n := range nodeCounts {
		// Round-robin baseline: N independent caches.
		group, err := proxy.NewReplicaGroup(delayed, n, mkProxy)
		if err != nil {
			return nil, "", err
		}
		row, err := driveFleet("round-robin", n, clients, cfg, func(c int) requestFunc {
			return group.Request
		})
		if err != nil {
			return nil, "", err
		}
		row = finishRow(row, group.Stats(), cfg.Applets)
		rows = append(rows, row)

		// Sharded cluster: one logical cache over N nodes, predictor off.
		row, err = runCluster(n, "cluster", false)
		if err != nil {
			return nil, "", err
		}
		rows = append(rows, row)

		// Same fleet with the prefetcher on: peer fills piggyback
		// predicted successors, so a client's first touch of a class is
		// more often a local hit — the cold-start column is the one to
		// compare against the plain cluster row.
		row, err = runCluster(n, "cluster+prefetch", true)
		if err != nil {
			return nil, "", err
		}
		rows = append(rows, row)
	}

	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Mode,
			fmt.Sprint(r.Nodes),
			fmt.Sprint(r.OriginFetches),
			fmt.Sprint(r.DupRewrites),
			fmt.Sprintf("%.1f%%", r.HitRate*100),
			ms(r.P50),
			ms(r.P95),
			ms(r.P99),
			ms(r.ColdP99),
			fmt.Sprint(r.PrefetchHits),
			fmt.Sprint(r.PrefetchWaste),
		})
	}
	text := fmt.Sprintf("sharded cluster vs round-robin replicas at %d clients, %d distinct classes, zipf(s=%.1f) app walks\n", clients, cfg.Applets, clusterZipfS) +
		table([]string{"Mode", "Nodes", "Origin fetches", "Dup rewrites", "Hit rate", "p50 (ms)", "p95 (ms)", "p99 (ms)", "Cold p99 (ms)", "Pf hits", "Pf waste (B)"}, cells)
	if breakdown != "" {
		text += "\n" + breakdown
	}
	return rows, text, nil
}

type requestFunc func(ctx context.Context, l proxy.Lookup) (proxy.Result, error)

// traceSample issues one traced request from node 0 for a class another
// node owns and renders the resulting cross-hop span timeline.
func traceSample(lc *cluster.LocalCluster, applets int) string {
	n0 := lc.Nodes[0]
	for i := 0; i < applets; i++ {
		class := fmt.Sprintf("net/Applet%03d", i)
		if n0.Ring().Owner(cluster.KeyFor("dvm", class)) == n0.Self() {
			continue
		}
		res, err := n0.Request(context.Background(), proxy.Lookup{Client: "trace-probe", Arch: "dvm", Class: class})
		if err != nil {
			return ""
		}
		var b strings.Builder
		fmt.Fprintf(&b, "trace %s — cold peer-filled request for %s, per-stage:\n", res.Trace.ID(), class)
		for _, s := range res.Trace.Spans() {
			fmt.Fprintf(&b, "  %-14s %-24s start=%-9s dur=%s ms\n", s.Stage, s.Node, ms(s.Start)+" ms", ms(s.Dur))
		}
		return b.String()
	}
	return ""
}

// driveFleet runs the zipf-app-walk workload for cfg.Duration and
// collects client-observed latencies in shared telemetry histograms —
// the same mergeable form the daemons export on /metrics. Each client
// repeatedly draws a zipf-popular window start and walks clusterWalkLen
// classes from it in sequence; the first time a client touches a key
// its latency also lands in the cold-start histogram.
func driveFleet(mode string, nodes, clients int, cfg Fig10Config, entry func(c int) requestFunc) (ClusterScalingRow, error) {
	var wg sync.WaitGroup
	var mu sync.Mutex
	hist := telemetry.NewHistogram(nil)
	cold := telemetry.NewHistogram(nil)
	zipf := newZipfTable(cfg.Applets, clusterZipfS)
	walk := clusterWalkLen
	if walk > cfg.Applets {
		walk = cfg.Applets
	}
	var totalBytes int64
	var firstErr error
	start := telemetry.StartTimer()
	deadline := time.Now().Add(cfg.Duration)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			req := entry(c)
			rng := &lrand{state: uint64(c)*0x9E3779B97F4A7C15 + 12345}
			seen := make(map[int]bool, cfg.Applets)
			for time.Now().Before(deadline) {
				// The first walk starts at the client's own offset so the
				// fleet collectively covers every key even when the zipf
				// head would otherwise starve the tail in a short run.
				w := (c * walk) % cfg.Applets
				if len(seen) > 0 {
					w = zipf.draw(rng.float())
				}
				for s := 0; s < walk && time.Now().Before(deadline); s++ {
					idx := (w + s) % cfg.Applets
					applet := fmt.Sprintf("net/Applet%03d", idx)
					t0 := telemetry.StartTimer()
					res, err := req(context.Background(), proxy.Lookup{
						Client: fmt.Sprintf("client-%d", c), Arch: "dvm", Class: applet,
					})
					lat := t0.Elapsed()
					hist.Observe(lat)
					if !seen[idx] {
						seen[idx] = true
						cold.Observe(lat)
					}
					mu.Lock()
					if err != nil && firstErr == nil {
						firstErr = err
					}
					totalBytes += int64(len(res.Data))
					mu.Unlock()
				}
			}
		}(c)
	}
	wg.Wait()
	if firstErr != nil {
		return ClusterScalingRow{}, firstErr
	}
	elapsed := start.Elapsed()
	lat := hist.Snapshot()
	coldSnap := cold.Snapshot()
	row := ClusterScalingRow{
		Mode:          mode,
		Nodes:         nodes,
		Clients:       clients,
		Latency:       lat,
		P50:           lat.Quantile(0.50),
		P95:           lat.Quantile(0.95),
		P99:           lat.Quantile(0.99),
		ColdStart:     coldSnap,
		ColdP99:       coldSnap.Quantile(0.99),
		ThroughputBps: float64(totalBytes) / elapsed.Seconds(),
	}
	return row, nil
}

// finishRow fills the duplicate-work counters from fleet-aggregate
// stats: every origin fetch beyond one per distinct key paid for a
// redundant fetch and a redundant pipeline run.
func finishRow(row ClusterScalingRow, s proxy.Stats, distinct int) ClusterScalingRow {
	row.OriginFetches = s.OriginFetches
	if d := s.OriginFetches - int64(distinct); d > 0 {
		row.DupRewrites = d
	}
	if s.Requests > 0 {
		row.HitRate = float64(s.CacheHits) / float64(s.Requests)
	}
	return row
}
