package eval

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"dvm/internal/cluster"
	"dvm/internal/netsim"
	"dvm/internal/proxy"
	"dvm/internal/telemetry"
)

// Sharded-cluster scalability: the ROADMAP's fleet question. Round-robin
// replication (§2's literal remedy) gives N proxies N independent
// caches, so a fleet pays N cold origin fetches and N duplicate
// rewrite-pipeline runs per class. The consistent-hash cluster
// (internal/cluster) shards ownership instead: one origin fetch and one
// pipeline run per distinct key, cluster-wide, with peer fills for
// everyone else.

// ClusterScalingRow is one (mode, fleet size) point of the comparison.
type ClusterScalingRow struct {
	Mode          string // "round-robin" or "cluster"
	Nodes         int
	Clients       int
	OriginFetches int64
	// DupRewrites counts pipeline runs beyond the necessary one per
	// distinct key — pure duplicate work a sharded fleet avoids.
	DupRewrites int64
	// HitRate is the fleet-aggregate cache hit rate (cluster mode counts
	// the internal peer-protocol requests too).
	HitRate float64
	// Latency is the fleet-wide client-observed latency histogram (the
	// per-client histograms merged bucket-wise); the quantile columns are
	// computed from it.
	Latency       telemetry.HistSnapshot
	P50, P95, P99 time.Duration
	ThroughputBps float64
}

// ClusterScaling runs the same client workload against two fleets of
// each size in nodeCounts — N round-robin replicas and an N-node
// sharded cluster (both with caching on, over the same synthetic-
// Internet origin) — and reports duplicate work and client-observed
// latency. The cluster's peer hops run over real loopback HTTP.
func ClusterScaling(clients int, nodeCounts []int, cfg Fig10Config) ([]ClusterScalingRow, string, error) {
	origin, err := Corpus(cfg.Applets, cfg.AppletKB*1024, 42)
	if err != nil {
		return nil, "", err
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 3 * time.Second
	}
	inet := netsim.NewInternet(7)
	delayed := proxy.DelayedOrigin{
		Origin: origin,
		Delay: func(string) {
			if cfg.InternetScale > 0 {
				lat := inet.FetchLatency()
				if lat > 8*time.Second {
					lat = 8 * time.Second
				}
				time.Sleep(time.Duration(float64(lat) * cfg.InternetScale))
			}
		},
	}
	mkProxy := func(int) proxy.Config {
		return proxy.Config{
			Pipeline:           ServicePipeline(StandardPolicy(), false),
			CacheEnabled:       true,
			MemoryBudget:       cfg.MemoryBudget,
			PagingPenaltyPerMB: 150 * time.Millisecond,
		}
	}

	var rows []ClusterScalingRow
	var breakdown string
	for _, n := range nodeCounts {
		// Round-robin baseline: N independent caches.
		group, err := proxy.NewReplicaGroup(delayed, n, mkProxy)
		if err != nil {
			return nil, "", err
		}
		row, err := driveFleet("round-robin", n, clients, cfg, func(c int) requestFunc {
			return group.Request
		})
		if err != nil {
			return nil, "", err
		}
		row = finishRow(row, group.Stats(), cfg.Applets)
		rows = append(rows, row)

		// Sharded cluster: one logical cache over N nodes.
		lc, err := cluster.StartLocal(delayed, n, mkProxy, nil)
		if err != nil {
			return nil, "", err
		}
		// One traced cold request from a non-owner first: its trace shows
		// the per-stage breakdown (peer.fill on the non-owner, the owner's
		// origin.fetch and pipeline) that the aggregate table cannot.
		if s := traceSample(lc, cfg.Applets); s != "" {
			breakdown = s
		}
		row, err = driveFleet("cluster", n, clients, cfg, func(c int) requestFunc {
			return lc.Nodes[c%n].Request
		})
		if err != nil {
			lc.Close()
			return nil, "", err
		}
		var total proxy.Stats
		for _, node := range lc.Nodes {
			s := node.Proxy().Stats()
			total.Requests += s.Requests
			total.CacheHits += s.CacheHits
			total.OriginFetches += s.OriginFetches
		}
		lc.Close()
		row = finishRow(row, total, cfg.Applets)
		rows = append(rows, row)
	}

	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Mode,
			fmt.Sprint(r.Nodes),
			fmt.Sprint(r.OriginFetches),
			fmt.Sprint(r.DupRewrites),
			fmt.Sprintf("%.1f%%", r.HitRate*100),
			ms(r.P50),
			ms(r.P95),
			ms(r.P99),
			fmt.Sprintf("%.0f", r.ThroughputBps/1024),
		})
	}
	text := fmt.Sprintf("sharded cluster vs round-robin replicas at %d clients, %d distinct classes\n", clients, cfg.Applets) +
		table([]string{"Mode", "Nodes", "Origin fetches", "Dup rewrites", "Hit rate", "p50 (ms)", "p95 (ms)", "p99 (ms)", "Throughput (KB/s)"}, cells)
	if breakdown != "" {
		text += "\n" + breakdown
	}
	return rows, text, nil
}

type requestFunc func(ctx context.Context, l proxy.Lookup) (proxy.Result, error)

// traceSample issues one traced request from node 0 for a class another
// node owns and renders the resulting cross-hop span timeline.
func traceSample(lc *cluster.LocalCluster, applets int) string {
	n0 := lc.Nodes[0]
	for i := 0; i < applets; i++ {
		class := fmt.Sprintf("net/Applet%03d", i)
		if n0.Ring().Owner(cluster.KeyFor("dvm", class)) == n0.Self() {
			continue
		}
		res, err := n0.Request(context.Background(), proxy.Lookup{Client: "trace-probe", Arch: "dvm", Class: class})
		if err != nil {
			return ""
		}
		var b strings.Builder
		fmt.Fprintf(&b, "trace %s — cold peer-filled request for %s, per-stage:\n", res.Trace.ID(), class)
		for _, s := range res.Trace.Spans() {
			fmt.Fprintf(&b, "  %-14s %-24s start=%-9s dur=%s ms\n", s.Stage, s.Node, ms(s.Start)+" ms", ms(s.Dur))
		}
		return b.String()
	}
	return ""
}

// driveFleet runs the standard applet-loop workload for cfg.Duration
// and collects client-observed latencies in a shared telemetry
// histogram — the same mergeable form the daemons export on /metrics.
func driveFleet(mode string, nodes, clients int, cfg Fig10Config, entry func(c int) requestFunc) (ClusterScalingRow, error) {
	var wg sync.WaitGroup
	var mu sync.Mutex
	hist := telemetry.NewHistogram(nil)
	var totalBytes int64
	var firstErr error
	start := telemetry.StartTimer()
	deadline := time.Now().Add(cfg.Duration)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			req := entry(c)
			for f := 0; time.Now().Before(deadline); f++ {
				applet := fmt.Sprintf("net/Applet%03d", (c+f)%cfg.Applets)
				t0 := telemetry.StartTimer()
				res, err := req(context.Background(), proxy.Lookup{
					Client: fmt.Sprintf("client-%d", c), Arch: "dvm", Class: applet,
				})
				hist.Observe(t0.Elapsed())
				mu.Lock()
				if err != nil && firstErr == nil {
					firstErr = err
				}
				totalBytes += int64(len(res.Data))
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	if firstErr != nil {
		return ClusterScalingRow{}, firstErr
	}
	elapsed := start.Elapsed()
	lat := hist.Snapshot()
	row := ClusterScalingRow{
		Mode:          mode,
		Nodes:         nodes,
		Clients:       clients,
		Latency:       lat,
		P50:           lat.Quantile(0.50),
		P95:           lat.Quantile(0.95),
		P99:           lat.Quantile(0.99),
		ThroughputBps: float64(totalBytes) / elapsed.Seconds(),
	}
	return row, nil
}

// finishRow fills the duplicate-work counters from fleet-aggregate
// stats: every origin fetch beyond one per distinct key paid for a
// redundant fetch and a redundant pipeline run.
func finishRow(row ClusterScalingRow, s proxy.Stats, distinct int) ClusterScalingRow {
	row.OriginFetches = s.OriginFetches
	if d := s.OriginFetches - int64(distinct); d > 0 {
		row.DupRewrites = d
	}
	if s.Requests > 0 {
		row.HitRate = float64(s.CacheHits) / float64(s.Requests)
	}
	return row
}
