package eval

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"dvm/internal/classfile"
	"dvm/internal/classgen"
	"dvm/internal/jvm"
	"dvm/internal/rewrite"
	"dvm/internal/security"
	"dvm/internal/telemetry"
)

// Figure 9: security microbenchmarks. Four system-resource operations
// under (a) no checking, (b) the JDK1.2-style stack-introspection
// manager at the anticipated library hooks, (c) the DVM enforcement
// manager driven by injected checks. The DVM "download" column is the
// first check, which fetches the domain's policy rows from the server.

// Fig9Row is one line of the table (durations are per-operation).
type Fig9Row struct {
	Operation   string
	Baseline    time.Duration
	JDKCheck    time.Duration // 0 with JDKNA=true: no hook exists
	JDKNA       bool
	DVMDownload time.Duration // first check including policy download
	DVMCheck    time.Duration // steady-state checked operation
}

// chainDepth is the call depth above each measured operation. Real
// applications perform resource accesses deep in their call stacks, and
// the JDK's stack-introspection cost is proportional to that depth while
// the DVM's cached lookup is not.
const chainDepth = 12

// microOps builds app/Micro with one method per benchmarked operation,
// each at the bottom of a chainDepth-frame call chain.
func microOps() (*classgen.ClassBuilder, error) {
	b := classgen.NewClass("app/Micro", "java/lang/Object")
	// Leaf operations.
	gp := b.Method(classfile.AccPublic|classfile.AccStatic, "prop$leaf", "()V")
	gp.LdcString("user.name")
	gp.InvokeStatic("java/lang/System", "getProperty", "(Ljava/lang/String;)Ljava/lang/String;")
	gp.Pop()
	gp.Return()

	op := b.Method(classfile.AccPublic|classfile.AccStatic, "open$leaf", "()V")
	op.NewDup("java/io/FileInputStream")
	op.LdcString("/tmp/f")
	op.InvokeSpecial("java/io/FileInputStream", "<init>", "(Ljava/lang/String;)V")
	op.InvokeVirtual("java/io/FileInputStream", "close", "()V")
	op.Return()

	pr := b.Method(classfile.AccPublic|classfile.AccStatic, "prio$leaf", "()V")
	pr.InvokeStatic("java/lang/Thread", "currentThread", "()Ljava/lang/Thread;")
	pr.IConst(5)
	pr.InvokeVirtual("java/lang/Thread", "setPriority", "(I)V")
	pr.Return()

	rd := b.Method(classfile.AccPublic|classfile.AccStatic, "read$leaf", "(Ljava/io/FileInputStream;)I")
	rd.ALoad(0)
	rd.InvokeVirtual("java/io/FileInputStream", "read", "()I")
	rd.IReturn()

	// Call chains: name(d0) -> name$1 -> ... -> name$leaf.
	chain := func(name, desc string, ret func(m *classgen.MethodBuilder), passArg bool) {
		for d := chainDepth - 1; d >= 0; d-- {
			mname := name
			if d > 0 {
				mname = fmt.Sprintf("%s$%d", name, d)
			}
			next := fmt.Sprintf("%s$%d", name, d+1)
			if d == chainDepth-1 {
				next = name + "$leaf"
			}
			m := b.Method(classfile.AccPublic|classfile.AccStatic, mname, desc)
			if passArg {
				m.ALoad(0)
			}
			m.InvokeStatic("app/Micro", next, desc)
			ret(m)
		}
	}
	retV := func(m *classgen.MethodBuilder) { m.Return() }
	retI := func(m *classgen.MethodBuilder) { m.IReturn() }
	chain("prop", "()V", retV, false)
	chain("open", "()V", retV, false)
	chain("prio", "()V", retV, false)
	chain("read", "(Ljava/io/FileInputStream;)I", retI, true)
	return b, nil
}

// fig9Op describes one measured operation.
type fig9Op struct {
	name   string
	method string
	desc   string
	hasArg bool // read takes the open stream
	jdkNA  bool // no anticipated hook in the monolithic system
}

var fig9Ops = []fig9Op{
	{name: "Get Property", method: "prop", desc: "()V"},
	{name: "Open File", method: "open", desc: "()V"},
	{name: "Change Thread Priority", method: "prio", desc: "()V"},
	{name: "Read File", method: "read", desc: "(Ljava/io/FileInputStream;)I", hasArg: true, jdkNA: true},
}

// Fig9 runs the security microbenchmarks. iterations controls the
// averaging loop per measurement.
func Fig9(iterations int) ([]Fig9Row, string, error) {
	if iterations <= 0 {
		iterations = 2000
	}
	policy := StandardPolicy()
	raw, err := microOps()
	if err != nil {
		return nil, "", err
	}
	plain, err := raw.BuildBytes()
	if err != nil {
		return nil, "", err
	}
	// DVM variant: injected checks.
	instrumented, err := rewrite.NewPipeline(security.Filter(policy)).Process(plain, nil)
	if err != nil {
		return nil, "", err
	}

	newVM := func(classBytes []byte) (*jvm.VM, error) {
		vm, err := jvm.New(jvm.MapLoader{"app/Micro": classBytes}, io.Discard)
		if err != nil {
			return nil, err
		}
		vm.VFS.Write("/tmp/f", []byte("contents of the measured file"))
		return vm, nil
	}
	openStream := func(vm *jvm.VM) (jvm.Value, error) {
		c, err := vm.Class("java/io/FileInputStream")
		if err != nil {
			return jvm.Value{}, err
		}
		obj := vm.NewInstance(c)
		vm.Pin(obj)
		_, thrown, err := vm.MainThread().Invoke(
			c.LookupMethod("<init>", "(Ljava/lang/String;)V"),
			[]jvm.Value{jvm.RefV(obj), jvm.RefV(vm.InternString("/tmp/f"))})
		if err != nil || thrown != nil {
			return jvm.Value{}, runFail("open stream", thrown, err)
		}
		return jvm.RefV(obj), nil
	}

	measure := func(vm *jvm.VM, op fig9Op, iters int) (time.Duration, error) {
		var args []jvm.Value
		if op.hasArg {
			v, err := openStream(vm)
			if err != nil {
				return 0, err
			}
			args = []jvm.Value{v}
		}
		// Warm up class init and caches.
		if _, thrown, err := vm.MainThread().InvokeByName("app/Micro", op.method, op.desc, args); err != nil || thrown != nil {
			return 0, runFail(op.name, thrown, err)
		}
		start := telemetry.StartTimer()
		for i := 0; i < iters; i++ {
			_, thrown, err := vm.MainThread().InvokeByName("app/Micro", op.method, op.desc, args)
			if err != nil || thrown != nil {
				return 0, runFail(op.name, thrown, err)
			}
		}
		return start.Elapsed() / time.Duration(iters), nil
	}

	rows := make([]Fig9Row, 0, len(fig9Ops))
	for _, op := range fig9Ops {
		row := Fig9Row{Operation: op.name, JDKNA: op.jdkNA}

		// Baseline: unchecked.
		vm, err := newVM(plain)
		if err != nil {
			return nil, "", err
		}
		if row.Baseline, err = measure(vm, op, iterations); err != nil {
			return nil, "", err
		}

		// JDK: stack introspection at anticipated hooks.
		if !op.jdkNA {
			vm, err := newVM(plain)
			if err != nil {
				return nil, "", err
			}
			vm.BuiltinChecks = security.NewStackIntrospection(policy)
			if row.JDKCheck, err = measure(vm, op, iterations); err != nil {
				return nil, "", err
			}
		}

		// DVM: first check pays the policy download...
		vm, err = newVM(instrumented)
		if err != nil {
			return nil, "", err
		}
		srv := security.NewServer(policy)
		srv.FetchDelay = func() { time.Sleep(4 * time.Millisecond) } // scaled WAN fetch
		vm.CheckAccess = security.NewManager(srv, "apps")
		var args []jvm.Value
		if op.hasArg {
			v, err := openStream(vm)
			if err != nil {
				return nil, "", err
			}
			args = []jvm.Value{v}
		}
		start := telemetry.StartTimer()
		if _, thrown, err := vm.MainThread().InvokeByName("app/Micro", op.method, op.desc, args); err != nil || thrown != nil {
			return nil, "", runFail(op.name+" (download)", thrown, err)
		}
		row.DVMDownload = start.Elapsed()
		// ...subsequent checks hit the manager's cache.
		if row.DVMCheck, err = measure(vm, op, iterations); err != nil {
			return nil, "", err
		}
		rows = append(rows, row)
	}

	var cells [][]string
	for _, r := range rows {
		jdkC, jdkO := "N/A", "N/A"
		if !r.JDKNA {
			jdkC = us(r.JDKCheck)
			jdkO = us(r.JDKCheck - r.Baseline)
		}
		cells = append(cells, []string{
			r.Operation,
			us(r.Baseline),
			jdkC, jdkO,
			ms(r.DVMDownload),
			us(r.DVMCheck),
			us(r.DVMCheck - r.Baseline),
		})
	}
	text := table(
		[]string{"Operation", "Baseline(us)", "JDK check(us)", "JDK ovh(us)", "DVM download(ms)", "DVM check(us)", "DVM ovh(us)"},
		cells)

	// Reproduction extension: per-filter static-service cost with the
	// parallel per-method fan-out (workers=1 vs GOMAXPROCS).
	workers, err := fig9FilterWorkers(policy)
	if err != nil {
		return nil, "", err
	}
	return rows, text + "\nStatic service per-filter cost (parallel fan-out):\n" + workers, nil
}

// fig9FilterWorkers times each pipeline filter over a workload class at
// workers=1 and workers=GOMAXPROCS and tables the per-filter speedup.
// On a single-core host the column shows ~1.0x; the figure exists so a
// multicore reproduction records its parallel gain per filter.
func fig9FilterWorkers(policy *security.Policy) (string, error) {
	data, err := pipelineBenchClass()
	if err != nil {
		return "", err
	}
	const reps = 20
	timings := func(workerCount int) (map[string]time.Duration, []string, error) {
		pipe := ServicePipeline(policy, false)
		pipe.SetWorkers(workerCount)
		ctx := rewrite.NewContext()
		for i := 0; i < reps; i++ {
			if _, err := pipe.Process(data, ctx); err != nil {
				return nil, nil, err
			}
		}
		var order []string
		for _, f := range pipe.Filters() {
			order = append(order, f.Name())
		}
		for k := range ctx.FilterTimings {
			ctx.FilterTimings[k] /= reps
		}
		return ctx.FilterTimings, order, nil
	}
	seq, order, err := timings(1)
	if err != nil {
		return "", err
	}
	maxWorkers := runtime.GOMAXPROCS(0)
	par, _, err := timings(maxWorkers)
	if err != nil {
		return "", err
	}
	var cells [][]string
	for _, name := range order {
		speedup := "1.00x"
		if par[name] > 0 {
			speedup = fmt.Sprintf("%.2fx", float64(seq[name])/float64(par[name]))
		}
		cells = append(cells, []string{name, us(seq[name]), us(par[name]), speedup})
	}
	return table(
		[]string{"Filter", "workers=1(us)", fmt.Sprintf("workers=%d(us)", maxWorkers), "Speedup"},
		cells), nil
}

func us(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d)/float64(time.Microsecond))
}
