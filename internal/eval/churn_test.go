package eval

import (
	"testing"
	"time"
)

// TestChurnSmoke runs a scaled-down ClusterChurn at R=2 and asserts the
// membership acceptance criteria from the full eval: zero
// client-visible failures across kill and join, the cold-start p99 for
// remapped keys bounded by a small multiple of steady state (warm
// replicas absorb the death), a join remap near 1/n, bounded duplicate
// origin work, and epoch agreement across the surviving fleet.
func TestChurnSmoke(t *testing.T) {
	cfg := ChurnConfig{
		Nodes:       3,
		Clients:     6,
		Classes:     24,
		ClassKB:     4,
		Phase:       400 * time.Millisecond,
		OriginDelay: 25 * time.Millisecond,
	}
	rows, text, err := ClusterChurn(cfg, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", text)
	r := rows[0]
	if r.Failures != 0 {
		t.Errorf("churn produced %d client-visible failures, want 0", r.Failures)
	}
	// The headline replication claim: with a warm replica the remapped
	// keys' p99 stays within 3x of steady state instead of paying the
	// full origin round-trip. (The 3x bound is the acceptance number;
	// give a no-sample run — remapped keys never drawn in the short kill
	// window — a pass rather than a false alarm.)
	if r.RemappedP99 > 0 && r.ColdRatio > 3.0 {
		t.Errorf("R=2 cold ratio = %.1fx (remapped p99 %v vs steady %v), want <= 3x",
			r.ColdRatio, r.RemappedP99, r.SteadyP99)
	}
	// Consistent hashing: the join remaps about 1/n of keys, never more
	// than 1.5/n (n = surviving fleet + joiner).
	if limit := 1.5 / 3.0; r.RemapFrac > limit {
		t.Errorf("join remapped %.1f%% of keys, want <= %.1f%%", r.RemapFrac*100, limit*100)
	}
	// Duplicate-work bound: one fetch per key to warm, plus at most one
	// re-fetch per key per membership change (kill + join = 2 more
	// epochs). In practice replication and handoff keep it near Classes.
	if max := int64(3 * cfg.Classes); r.OriginFetches > max {
		t.Errorf("origin fetched %d times for %d keys across 3 epochs, want <= %d",
			r.OriginFetches, cfg.Classes, max)
	}
	if !r.EpochAgreed {
		t.Error("surviving fleet did not converge on one membership epoch")
	}
	// Membership gauges must account for the churn: the killed node is
	// counted dead, and the survivors plus the joiner are all alive —
	// no member lingers suspect or unaccounted for.
	if r.MembersAlive != cfg.Nodes || r.MembersDead != 1 {
		t.Errorf("membership gauges alive=%d dead=%d, want alive=%d dead=1",
			r.MembersAlive, r.MembersDead, cfg.Nodes)
	}
}
