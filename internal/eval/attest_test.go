package eval

import (
	"testing"
)

// Scaled-down smoke of the quorum ablation: the clean fleet must serve
// the whole run failure-free at every quorum with one origin fetch per
// touched key, and the Byzantine leg must never let a corrupted
// artifact through. (Deterministic quarantine timing is asserted in
// the cluster package's chaos test; here detection is reported, not
// required, because ring placement varies with the harness ports.)
func TestAttestBenchSmoke(t *testing.T) {
	cfg := AttestBenchConfig{Clients: 4, Rounds: 40, Classes: 24, Quorums: []int{1, 2}}
	rows, text, err := AttestBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + text)
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	for _, r := range rows {
		if r.CorruptServed != 0 {
			t.Errorf("quorum %d: %d corrupt artifacts served, want 0", r.Quorum, r.CorruptServed)
		}
		if r.AttestedKeys == 0 {
			t.Errorf("quorum %d: no keys attested", r.Quorum)
		}
		if r.OriginFetches > int64(cfg.Classes) {
			t.Errorf("quorum %d: %d origin fetches for %d classes — cross-checking duplicated origin work", r.Quorum, r.OriginFetches, cfg.Classes)
		}
		if r.Degraded != 0 {
			t.Errorf("quorum %d: %d degraded seals on a healthy fleet", r.Quorum, r.Degraded)
		}
	}
	if rows[0].Variants != 0 {
		t.Errorf("quorum 1 sent %d variant votes, want 0 (local-only sealing)", rows[0].Variants)
	}
	if rows[1].Variants == 0 {
		t.Error("quorum 2 sent no variant votes")
	}
}
