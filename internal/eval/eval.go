// Package eval is the experiment harness: it reconstructs every table
// and figure of the paper's evaluation (§4, §5) over this repository's
// implementations, wiring together the workload generator, the proxy
// pipeline, both client architectures, and the network simulator.
//
// Each FigN function returns structured rows plus a text rendering, so
// the same code backs the dvmbench command and the benchmark suite. See
// DESIGN.md's experiment index and EXPERIMENTS.md for paper-vs-measured
// comparisons.
package eval

import (
	"fmt"
	"io"
	"strings"
	"time"

	"dvm/internal/compiler"
	"dvm/internal/jvm"
	"dvm/internal/monitor"
	"dvm/internal/proxy"
	"dvm/internal/rewrite"
	"dvm/internal/security"
	"dvm/internal/verifier"
	"dvm/internal/workload"
)

// StandardPolicyXML is the evaluation's organization policy: it grants
// the benchmark domain what it needs while forcing the DVM services "to
// parse every class and examine every instruction" — security checks on
// collection updates, file and property access, and audit on every
// method boundary.
const StandardPolicyXML = `
<policy>
  <domain id="apps">
    <grant permission="*" target="*"/>
  </domain>
  <assign domain="apps" codebase="*"/>
  <operation permission="collection.put" class="java/util/Hashtable" method="put"/>
  <operation permission="property.get" class="java/lang/System" method="getProperty" desc="(Ljava/lang/String;)Ljava/lang/String;" target="arg"/>
  <operation permission="file.open" class="java/io/FileInputStream" method="&lt;init&gt;" desc="(Ljava/lang/String;)V" target="arg"/>
  <operation permission="file.read" class="java/io/FileInputStream" method="read"/>
  <operation permission="thread.setPriority" class="java/lang/Thread" method="setPriority"/>
</policy>`

// StandardPolicy parses StandardPolicyXML.
func StandardPolicy() *security.Policy {
	p, err := security.ParsePolicy([]byte(StandardPolicyXML))
	if err != nil {
		panic("eval: standard policy: " + err.Error())
	}
	return p
}

// ServicePipeline builds the proxy's static service pipeline in the
// paper's Figure 2 order: verify → security → audit (→ compile for DVM
// clients).
func ServicePipeline(policy *security.Policy, compile bool) *rewrite.Pipeline {
	p := rewrite.NewPipeline(
		verifier.Filter(),
		security.Filter(policy),
		monitor.Filter(monitor.Config{Methods: true, Skip: monitor.SkipInitializers}),
	)
	if compile {
		p.Append(compiler.Filter())
	}
	return p
}

// MonoClient is the monolithic baseline: all services embedded in the
// client.
type MonoClient struct {
	VM         *jvm.VM
	VerifyTime time.Duration
	Census     verifier.Census
	// AuditLog is the client-local audit store (monolithic VMs keep their
	// logs on the node — which is exactly the tamperability problem §3.3
	// identifies).
	AuditLog *monitor.Collector
	session  string
}

// NewMonolithic builds a monolithic client over the classes: local
// verifier at load time, stack-introspection security at the anticipated
// library hooks, and a VM-embedded auditing service recording equivalent
// events to a node-local log.
func NewMonolithic(loader jvm.ClassLoader, policy *security.Policy,
	withVerify, withAudit bool) (*MonoClient, error) {
	mc := &MonoClient{}
	vm, err := jvm.New(loader, io.Discard)
	if err != nil {
		return nil, err
	}
	if withVerify {
		vm.LoadHooks = append(vm.LoadHooks, verifier.LocalHook(&mc.Census, &mc.VerifyTime))
	}
	if policy != nil {
		vm.BuiltinChecks = security.NewStackIntrospection(policy)
	}
	if withAudit {
		mc.AuditLog = monitor.NewCollector()
		mc.session = mc.AuditLog.Handshake(monitor.ClientInfo{User: "local", JVMVersion: "1.2-mono"})
		vm.OnMethodEnter = func(class, method string) {
			if !monitor.SkipInitializers(class, method) {
				_ = mc.AuditLog.Record(mc.session, class, method, "enter")
			}
		}
		vm.OnMethodExit = func(class, method string) {
			if !monitor.SkipInitializers(class, method) {
				_ = mc.AuditLog.Record(mc.session, class, method, "exit")
			}
		}
	}
	mc.VM = vm
	return mc, nil
}

// DVMClient is a client in the distributed architecture: a bare runtime
// hosting the dynamic service components, fed by the proxy.
type DVMClient struct {
	VM        *jvm.VM
	Manager   *security.Manager
	Collector *monitor.Collector
	Session   string
}

// NewDVMClient wires a client to a proxy and security server.
func NewDVMClient(p *proxy.Proxy, clientID string, secServer *security.Server,
	coll *monitor.Collector) (*DVMClient, error) {
	vm, err := jvm.New(p.Loader(clientID, compiler.ArchDVM), io.Discard)
	if err != nil {
		return nil, err
	}
	c := &DVMClient{VM: vm, Collector: coll}
	if secServer != nil {
		c.Manager = security.NewManager(secServer, "apps")
		vm.CheckAccess = c.Manager
	}
	if coll != nil {
		c.Session = monitor.Attach(vm, coll, monitor.ClientInfo{
			User: clientID, Arch: compiler.ArchDVM, JVMVersion: "1.2-dvm",
		})
	}
	return c, nil
}

// GenerateAll builds every app in specs.
func GenerateAll(specs []workload.Spec) ([]*workload.App, error) {
	apps := make([]*workload.App, 0, len(specs))
	for _, s := range specs {
		app, err := workload.Generate(s)
		if err != nil {
			return nil, err
		}
		apps = append(apps, app)
	}
	return apps, nil
}

// ScaleSpecs shrinks workload specs by the given divisor for quick runs
// (tests and -short benchmarks); divisor 1 returns the paper-scale suite.
func ScaleSpecs(specs []workload.Spec, divisor int) []workload.Spec {
	if divisor <= 1 {
		return specs
	}
	out := make([]workload.Spec, len(specs))
	for i, s := range specs {
		s.Classes = maxInt(2, s.Classes/divisor)
		s.TargetBytes = maxInt(8*1024, s.TargetBytes/divisor)
		s.WorkUnits = maxInt(1, s.WorkUnits/divisor)
		out[i] = s
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// table renders rows with a header into aligned columns.
func table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d)/float64(time.Millisecond))
}

func secs(d time.Duration) string {
	return fmt.Sprintf("%.3f", d.Seconds())
}
