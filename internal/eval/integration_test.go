package eval

import (
	"bytes"
	"net/http/httptest"
	"testing"

	"dvm/internal/compiler"
	"dvm/internal/jvm"
	"dvm/internal/monitor"
	"dvm/internal/proxy"
	"dvm/internal/security"
	"dvm/internal/workload"
)

// TestArchitecturesProduceIdenticalOutput is the behavioural-equivalence
// check behind every performance comparison: each benchmark must print
// exactly the same output under the monolithic architecture and under
// the full DVM pipeline (verifier + security + audit + compiler), both
// uncached and cached.
func TestArchitecturesProduceIdenticalOutput(t *testing.T) {
	policy := StandardPolicy()
	for _, spec := range ScaleSpecs(workload.Benchmarks(), 8) {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			app, err := workload.Generate(spec)
			if err != nil {
				t.Fatal(err)
			}
			origin := proxy.MapOrigin(app.Classes)

			runMono := func() string {
				var out bytes.Buffer
				nullProxy := proxy.New(origin, proxy.Config{})
				mc, err := NewMonolithic(nullProxy.Loader("m", "x86-jdk"), policy, true, true)
				if err != nil {
					t.Fatal(err)
				}
				mc.VM.Stdout = &out
				if thrown, err := mc.VM.RunMain(spec.MainClass(), nil); err != nil || thrown != nil {
					t.Fatalf("monolithic: %v %v", err, jvm.DescribeThrowable(thrown))
				}
				return out.String()
			}
			p := proxy.New(origin, proxy.Config{
				Pipeline:     ServicePipeline(policy, true),
				CacheEnabled: true,
			})
			secServer := security.NewServer(policy)
			coll := monitor.NewCollector()
			runDVM := func(id string) string {
				c, err := NewDVMClient(p, id, secServer, coll)
				if err != nil {
					t.Fatal(err)
				}
				var out bytes.Buffer
				c.VM.Stdout = &out
				if thrown, err := c.VM.RunMain(spec.MainClass(), nil); err != nil || thrown != nil {
					t.Fatalf("dvm %s: %v %v", id, err, jvm.DescribeThrowable(thrown))
				}
				if c.VM.Stats.LinkChecks == 0 {
					t.Error("DVM client executed no link checks")
				}
				if c.VM.Stats.AuditEvents == 0 {
					t.Error("DVM client emitted no audit events")
				}
				return out.String()
			}

			mono := runMono()
			uncached := runDVM("first")
			cached := runDVM("second")
			if mono != uncached || mono != cached {
				t.Errorf("outputs differ:\n mono    %q\n uncached %q\n cached   %q", mono, uncached, cached)
			}
			if coll.EventCount() == 0 {
				t.Error("console collected no events")
			}
		})
	}
}

// TestFullDistributedDeploymentOverHTTP wires every network service the
// system has — proxy, administration console, security server — over
// real HTTP and runs a client against them, including a live central
// policy update.
func TestFullDistributedDeploymentOverHTTP(t *testing.T) {
	policy := StandardPolicy()
	// Instantdb: its TPC-A kernel performs Hashtable.put, which the
	// standard policy maps to a checked operation.
	spec := ScaleSpecs(workload.Benchmarks(), 8)[3]
	app, err := workload.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}

	// The three central services.
	p := proxy.New(proxy.MapOrigin(app.Classes), proxy.Config{
		Pipeline:     ServicePipeline(policy, true),
		CacheEnabled: true,
	})
	proxySrv := httptest.NewServer(p.Handler())
	defer proxySrv.Close()
	coll := monitor.NewCollector()
	consoleSrv := httptest.NewServer(coll.Handler())
	defer consoleSrv.Close()
	vs := security.NewVersionedServer(security.NewServer(policy))
	secSrv := httptest.NewServer(vs.Handler())
	defer secSrv.Close()

	// The client, wired to all three over the network.
	vm, err := jvm.New(proxy.HTTPLoader(proxySrv.URL, "it-client", compiler.ArchDVM), nil)
	if err != nil {
		t.Fatal(err)
	}
	rm := security.NewRemoteManager(secSrv.URL, "apps")
	defer rm.Close()
	vm.CheckAccess = rm.Manager
	rs, err := monitor.AttachHTTP(vm, consoleSrv.URL, monitor.ClientInfo{User: "it"}, 32)
	if err != nil {
		t.Fatal(err)
	}

	if thrown, err := vm.RunMain(spec.MainClass(), nil); err != nil || thrown != nil {
		t.Fatalf("%v %v", err, jvm.DescribeThrowable(thrown))
	}
	rs.Close()
	if rs.Err() != nil {
		t.Fatalf("audit delivery: %v", rs.Err())
	}
	if coll.EventCount() == 0 {
		t.Error("no events reached the console")
	}
	if vm.Stats.SecurityChecks == 0 {
		t.Error("no security checks executed")
	}
	if p.Stats().Requests == 0 {
		t.Error("proxy served nothing")
	}
}
