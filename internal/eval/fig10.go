package eval

import (
	"context"
	"fmt"
	"sync"
	"time"

	"dvm/internal/classfile"
	"dvm/internal/classgen"
	"dvm/internal/netsim"
	"dvm/internal/proxy"
	"dvm/internal/telemetry"
)

// Figure 10 + §4.1.2: proxy scaling and applet fetch overhead.

// Corpus builds n distinct single-class "applets" of roughly bytesPer
// bytes each, keyed applet000.., for the proxy load experiments.
func Corpus(n, bytesPer int, seed uint64) (proxy.MapOrigin, error) {
	out := make(proxy.MapOrigin, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("net/Applet%03d", i)
		b := classgen.NewClass(name, "java/lang/Object")
		b.DefaultInit()
		m := b.Method(classfile.AccPublic|classfile.AccStatic, "init", "()I")
		m.IConst(int32(i)).IReturn()
		pad := b.Method(classfile.AccPublic|classfile.AccStatic, "resources", "()V")
		written := 0
		for j := 0; written < bytesPer-600; j++ {
			s := fmt.Sprintf("applet-%03d resource chunk %04d ", i, j)
			for len(s) < 120 {
				s += "x"
			}
			pad.LdcString(s)
			pad.Pop()
			written += len(s) + 5
		}
		pad.Return()
		data, err := b.BuildBytes()
		if err != nil {
			return nil, err
		}
		out[name] = data
	}
	return out, nil
}

// Fig10Row is one point of the throughput-vs-clients curve.
type Fig10Row struct {
	Clients          int
	TotalBytes       int64
	Elapsed          time.Duration
	ThroughputBps    float64
	LatencyPerKB     time.Duration // average client-observed latency per KB
	FetchesPerClient int
	// OriginFetches and Coalesced report duplicate-work elimination:
	// coalesced requests joined an in-flight fetch instead of doing
	// their own origin fetch + pipeline run.
	OriginFetches int64
	Coalesced     int64
	// Latency is the proxy's request-latency histogram for this point;
	// P50/P95/P99 are its bucket quantiles.
	Latency       telemetry.HistSnapshot
	P50, P95, P99 time.Duration
}

// Fig10Config parameterizes the scaling experiment.
type Fig10Config struct {
	// Corpus size and applet size.
	Applets  int
	AppletKB int
	// Duration is the sustained-load measurement window per client count.
	Duration time.Duration
	// MemoryBudget models the proxy host's RAM (the paper's server had
	// 64 MB); 0 disables the model.
	MemoryBudget int64
	// InternetScale scales the synthetic Internet latency into real
	// sleeps (e.g. 0.001 turns 2.2 s into 2.2 ms). 0 disables upstream
	// delay.
	InternetScale float64
	// PipelineWorkers bounds the static service's per-method fan-out
	// (0 = GOMAXPROCS, 1 = sequential).
	PipelineWorkers int
}

// DefaultFig10Config mirrors the paper's setup at a compressed
// timescale: the synthetic Internet is scaled to ~550 ms per fetch so
// client concurrency (not proxy CPU) is the offered load, and the proxy
// models the paper's 64 MB server, whose exhaustion past ~250
// simultaneous connections produces the Figure 10 degradation.
func DefaultFig10Config() Fig10Config {
	return Fig10Config{
		Applets:       64,
		AppletKB:      32,
		Duration:      3 * time.Second,
		MemoryBudget:  64 << 20,
		InternetScale: 0.25,
	}
}

// Fig10 drives N simultaneous clients continuously fetching different
// applets through one proxy with caching disabled (the paper's worst
// case) for a fixed window, and reports sustained throughput.
func Fig10(clientCounts []int, cfg Fig10Config) ([]Fig10Row, string, error) {
	origin, err := Corpus(cfg.Applets, cfg.AppletKB*1024, 42)
	if err != nil {
		return nil, "", err
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 3 * time.Second
	}
	inet := netsim.NewInternet(7)
	rows := make([]Fig10Row, 0, len(clientCounts))
	for _, n := range clientCounts {
		delayed := proxy.DelayedOrigin{
			Origin: origin,
			Delay: func(string) {
				if cfg.InternetScale > 0 {
					lat := inet.FetchLatency()
					// Browsers and proxies of the era timed out slow
					// fetches; cap the log-normal tail accordingly so the
					// measurement window stays meaningful.
					if lat > 8*time.Second {
						lat = 8 * time.Second
					}
					time.Sleep(time.Duration(float64(lat) * cfg.InternetScale))
				}
			},
		}
		pipe := ServicePipeline(StandardPolicy(), false)
		pipe.SetWorkers(cfg.PipelineWorkers)
		p := proxy.New(delayed, proxy.Config{
			Pipeline:     pipe,
			CacheEnabled: false, // worst case, per the paper
			MemoryBudget: cfg.MemoryBudget,
			// Thrashing is brutal once physical memory is oversubscribed;
			// the penalty makes each paged request ~an order of magnitude
			// slower, as the paper's 64 MB server exhibited past ~250
			// clients.
			PagingPenaltyPerMB: 150 * time.Millisecond,
		})
		var wg sync.WaitGroup
		var mu sync.Mutex
		var firstErr error
		var totalBytes int64
		var fetches int64
		start := telemetry.StartTimer()
		deadline := time.Now().Add(cfg.Duration)
		for c := 0; c < n; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for f := 0; time.Now().Before(deadline); f++ {
					applet := fmt.Sprintf("net/Applet%03d", (c+f)%cfg.Applets)
					res, err := p.Request(context.Background(), proxy.Lookup{
						Client: fmt.Sprintf("client-%d", c), Arch: "dvm", Class: applet,
					})
					mu.Lock()
					if err != nil && firstErr == nil {
						firstErr = err
					}
					totalBytes += int64(len(res.Data))
					fetches++
					mu.Unlock()
				}
			}(c)
		}
		wg.Wait()
		if firstErr != nil {
			return nil, "", firstErr
		}
		elapsed := start.Elapsed()
		st := p.Stats()
		// Client-observed latency comes from the proxy's own request
		// histogram: the same numbers /metrics exports.
		lat := p.RequestLatency()
		row := Fig10Row{
			Clients:          n,
			TotalBytes:       totalBytes,
			Elapsed:          elapsed,
			ThroughputBps:    float64(totalBytes) / elapsed.Seconds(),
			FetchesPerClient: int(fetches / int64(n)),
			OriginFetches:    st.OriginFetches,
			Coalesced:        st.Coalesced,
			Latency:          lat,
			P50:              lat.Quantile(0.50),
			P95:              lat.Quantile(0.95),
			P99:              lat.Quantile(0.99),
		}
		if totalBytes > 0 && fetches > 0 {
			avgLatency := float64(lat.Sum) / float64(fetches)
			avgKB := float64(totalBytes) / float64(fetches) / 1024
			row.LatencyPerKB = time.Duration(avgLatency / avgKB)
		}
		rows = append(rows, row)
	}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			fmt.Sprint(r.Clients),
			fmt.Sprintf("%.0f", r.ThroughputBps/1024),
			ms(r.LatencyPerKB),
			ms(r.P50),
			ms(r.P95),
			ms(r.P99),
			fmt.Sprint(r.Coalesced),
			secs(r.Elapsed),
		})
	}
	return rows, table([]string{"Clients", "Throughput (KB/s)", "Latency/KB (ms)", "p50 (ms)", "p95 (ms)", "p99 (ms)", "Coalesced", "Elapsed (s)"}, cells), nil
}

// AppletFetchRow reports the §4.1.2 applet-download measurements.
type AppletFetchRow struct {
	Samples          int
	AvgInternet      time.Duration // modeled WAN latency (calibrated)
	AvgProxyOverhead time.Duration // measured parse+instrument time
	OverheadPercent  float64
	AvgCachedFetch   time.Duration // modeled LAN + measured cache hit
}

// AppletFetch reproduces the applet-download overhead measurement: the
// average Internet fetch latency, the proxy's added processing time, and
// the cached-fetch latency.
func AppletFetch(samples int) (AppletFetchRow, string, error) {
	if samples <= 0 {
		samples = 100
	}
	origin, err := Corpus(samples, 48*1024, 99)
	if err != nil {
		return AppletFetchRow{}, "", err
	}
	inet := netsim.NewInternet(11)
	lan := netsim.Ethernet10M

	p := proxy.New(origin, proxy.Config{
		Pipeline:     ServicePipeline(StandardPolicy(), false),
		CacheEnabled: true,
	})
	var sumInternet, sumProxy, sumCached time.Duration
	var mu sync.Mutex
	p2 := proxy.New(origin, proxy.Config{ // uncached pass for overhead measurement
		Pipeline: ServicePipeline(StandardPolicy(), false),
		OnAudit: func(r proxy.RequestRecord) {
			mu.Lock()
			sumProxy += r.ProxyTime
			mu.Unlock()
		},
	})
	for i := 0; i < samples; i++ {
		name := fmt.Sprintf("net/Applet%03d", i)
		sumInternet += inet.FetchLatency()
		if _, err := p2.Request(context.Background(), proxy.Lookup{Client: "c", Arch: "dvm", Class: name}); err != nil {
			return AppletFetchRow{}, "", err
		}
		// Warm the shared-cache proxy, then time a cached fetch: LAN
		// transfer plus the (real) cache lookup.
		if _, err := p.Request(context.Background(), proxy.Lookup{Client: "warm", Arch: "dvm", Class: name}); err != nil {
			return AppletFetchRow{}, "", err
		}
		t0 := telemetry.StartTimer()
		res, err := p.Request(context.Background(), proxy.Lookup{Client: "c2", Arch: "dvm", Class: name})
		if err != nil {
			return AppletFetchRow{}, "", err
		}
		sumCached += t0.Elapsed() + lan.TransferTime(len(res.Data))
	}
	row := AppletFetchRow{
		Samples:          samples,
		AvgInternet:      sumInternet / time.Duration(samples),
		AvgProxyOverhead: sumProxy / time.Duration(samples),
		AvgCachedFetch:   sumCached / time.Duration(samples),
	}
	row.OverheadPercent = float64(row.AvgProxyOverhead) / float64(row.AvgInternet) * 100
	text := fmt.Sprintf(
		"applet fetch (n=%d):\n  avg Internet latency:   %s ms (modeled, calibrated to paper's 2198±3752)\n  avg proxy processing:   %s ms (measured)  = %.1f%% overhead\n  avg cached fetch:       %s ms (cache + LAN transfer)\n",
		row.Samples, ms(row.AvgInternet), ms(row.AvgProxyOverhead), row.OverheadPercent, ms(row.AvgCachedFetch))
	return row, text, nil
}
