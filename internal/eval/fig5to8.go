package eval

import (
	"fmt"
	"time"

	"dvm/internal/classfile"
	"dvm/internal/jvm"
	"dvm/internal/monitor"
	"dvm/internal/proxy"
	"dvm/internal/rewrite"
	"dvm/internal/security"
	"dvm/internal/telemetry"
	"dvm/internal/verifier"
	"dvm/internal/workload"
)

// ---------------------------------------------------------------------------
// Figure 5: the benchmark application table.

// Fig5Row mirrors one line of the paper's Figure 5.
type Fig5Row struct {
	Name        string
	SizeBytes   int
	Classes     int
	Description string
}

// Fig5 generates the benchmark suite and reports its inventory.
func Fig5(specs []workload.Spec) ([]Fig5Row, string, error) {
	apps, err := GenerateAll(specs)
	if err != nil {
		return nil, "", err
	}
	rows := make([]Fig5Row, len(apps))
	var cells [][]string
	for i, app := range apps {
		rows[i] = Fig5Row{
			Name:        app.Spec.Name,
			SizeBytes:   app.TotalBytes,
			Classes:     len(app.Classes),
			Description: app.Spec.Description,
		}
		cells = append(cells, []string{
			rows[i].Name,
			fmt.Sprintf("%dK", rows[i].SizeBytes/1024),
			fmt.Sprint(rows[i].Classes),
			rows[i].Description,
		})
	}
	return rows, table([]string{"Name", "Size", "Classes", "Description"}, cells), nil
}

// ---------------------------------------------------------------------------
// Figure 6: end-to-end application performance, monolithic vs DVM
// (uncached) vs DVM (cached).

// Fig6Row is one bar group of Figure 6.
type Fig6Row struct {
	Name       string
	Monolithic time.Duration
	DVM        time.Duration // first (uncached) execution
	DVMCached  time.Duration // subsequent execution, proxy cache warm
}

// Fig6 measures end-to-end run time of each benchmark under the two
// service architectures. Identical runtime, identical hardware; only the
// location and implementation of the services differ — the paper's
// methodology.
func Fig6(specs []workload.Spec) ([]Fig6Row, string, error) {
	policy := StandardPolicy()
	rows := make([]Fig6Row, 0, len(specs))
	for _, spec := range specs {
		app, err := workload.Generate(spec)
		if err != nil {
			return nil, "", err
		}
		origin := proxy.MapOrigin(app.Classes)

		// Monolithic: null proxy; verification, stack-introspection
		// security, and auditing all run in the client.
		nullProxy := proxy.New(origin, proxy.Config{})
		mono, err := NewMonolithic(nullProxy.Loader("mono", "x86-jdk"), policy, true, true)
		if err != nil {
			return nil, "", err
		}
		start := telemetry.StartTimer()
		if thrown, err := mono.VM.RunMain(spec.MainClass(), nil); err != nil || thrown != nil {
			return nil, "", runFail(spec.Name+" (monolithic)", thrown, err)
		}
		monoTime := start.Elapsed()

		// DVM uncached: first execution through a cold proxy.
		dvmProxy := proxy.New(origin, proxy.Config{
			Pipeline:     ServicePipeline(policy, true),
			CacheEnabled: true,
		})
		secServer := security.NewServer(policy)
		coll := monitor.NewCollector()
		run := func(id string) (time.Duration, error) {
			c, err := NewDVMClient(dvmProxy, id, secServer, coll)
			if err != nil {
				return 0, err
			}
			start := telemetry.StartTimer()
			thrown, err := c.VM.RunMain(spec.MainClass(), nil)
			if err != nil || thrown != nil {
				return 0, runFail(spec.Name+" (dvm)", thrown, err)
			}
			return start.Elapsed(), nil
		}
		dvmTime, err := run("client-1")
		if err != nil {
			return nil, "", err
		}
		// DVM cached: another host in the organization runs the same app.
		cachedTime, err := run("client-2")
		if err != nil {
			return nil, "", err
		}
		rows = append(rows, Fig6Row{Name: spec.Name, Monolithic: monoTime, DVM: dvmTime, DVMCached: cachedTime})
	}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Name, secs(r.Monolithic), secs(r.DVM), secs(r.DVMCached),
			fmt.Sprintf("%+.1f%%", pct(r.DVM, r.Monolithic)),
			fmt.Sprintf("%+.1f%%", pct(r.DVMCached, r.Monolithic)),
		})
	}
	return rows, table(
		[]string{"Benchmark", "Monolithic(s)", "DVM(s)", "DVMCached(s)", "DVM vs mono", "cached vs mono"},
		cells), nil
}

func pct(a, b time.Duration) float64 {
	if b == 0 {
		return 0
	}
	return (float64(a)/float64(b) - 1) * 100
}

func runFail(what string, thrown *jvm.Object, err error) error {
	if err != nil {
		return fmt.Errorf("eval: %s: %w", what, err)
	}
	return fmt.Errorf("eval: %s: uncaught %s", what, jvm.DescribeThrowable(thrown))
}

// ---------------------------------------------------------------------------
// Figure 7: client-side verification overhead — the difference in total
// client running time between unverified and verified configurations.

// Fig7Row is one bar group of Figure 7.
type Fig7Row struct {
	Name           string
	MonolithicCost time.Duration // local verification time on the client
	DVMCost        time.Duration // run-time cost of the injected checks
}

// Fig7 plots the verification time spent on clients: monolithic clients
// verify every class locally; DVM clients only execute the few injected
// link checks.
func Fig7(specs []workload.Spec) ([]Fig7Row, string, error) {
	rows := make([]Fig7Row, 0, len(specs))
	for _, spec := range specs {
		app, err := workload.Generate(spec)
		if err != nil {
			return nil, "", err
		}
		origin := proxy.MapOrigin(app.Classes)

		// Monolithic verified vs unverified: the LocalHook records exactly
		// the verification time, which is the paper's run-time delta
		// without measurement noise.
		nullProxy := proxy.New(origin, proxy.Config{})
		mono, err := NewMonolithic(nullProxy.Loader("m", "x86-jdk"), nil, true, false)
		if err != nil {
			return nil, "", err
		}
		if thrown, err := mono.VM.RunMain(spec.MainClass(), nil); err != nil || thrown != nil {
			return nil, "", runFail(spec.Name, thrown, err)
		}

		// DVM: verified (self-verifying classes through the verifier
		// filter) vs unverified (null pipeline); both cached so only
		// client-side work differs.
		verifiedTime, err := timeDVMRun(spec, origin, true)
		if err != nil {
			return nil, "", err
		}
		plainTime, err := timeDVMRun(spec, origin, false)
		if err != nil {
			return nil, "", err
		}
		delta := verifiedTime - plainTime
		if delta < 0 {
			delta = 0
		}
		rows = append(rows, Fig7Row{Name: spec.Name, MonolithicCost: mono.VerifyTime, DVMCost: delta})
	}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{r.Name, ms(r.MonolithicCost), ms(r.DVMCost)})
	}
	return rows, table([]string{"Benchmark", "Monolithic (ms)", "DVM client (ms)"}, cells), nil
}

// timeDVMRun measures a cache-warm client run with or without the
// verification service.
func timeDVMRun(spec workload.Spec, origin proxy.Origin, verified bool) (time.Duration, error) {
	var p *proxy.Proxy
	if verified {
		p = proxy.New(origin, proxy.Config{
			Pipeline:     rewrite.NewPipeline(verifier.Filter()),
			CacheEnabled: true,
		})
	} else {
		p = proxy.New(origin, proxy.Config{CacheEnabled: true})
	}
	// Warm the cache.
	warm, err := NewDVMClient(p, "warm", nil, nil)
	if err != nil {
		return 0, err
	}
	if thrown, err := warm.VM.RunMain(spec.MainClass(), nil); err != nil || thrown != nil {
		return 0, runFail(spec.Name+" (warm)", thrown, err)
	}
	// Best of three fresh clients: run-to-run jitter at millisecond scale
	// otherwise swamps the small injected-check delta.
	best := time.Duration(0)
	for i := 0; i < 3; i++ {
		c, err := NewDVMClient(p, fmt.Sprintf("measure-%d", i), nil, nil)
		if err != nil {
			return 0, err
		}
		start := telemetry.StartTimer()
		if thrown, err := c.VM.RunMain(spec.MainClass(), nil); err != nil || thrown != nil {
			return 0, runFail(spec.Name+" (measure)", thrown, err)
		}
		if d := start.Elapsed(); best == 0 || d < best {
			best = d
		}
	}
	return best, nil
}

// ---------------------------------------------------------------------------
// Figure 8: static vs dynamic verifier checks.

// Fig8Row is one line of the paper's Figure 8 table.
type Fig8Row struct {
	Name          string
	StaticChecks  int
	DynamicChecks int64 // link checks executed by the client at run time
}

// Fig8 counts the checks the verification service performed statically
// on the server against the deferred checks the client executed.
func Fig8(specs []workload.Spec) ([]Fig8Row, string, error) {
	rows := make([]Fig8Row, 0, len(specs))
	for _, spec := range specs {
		app, err := workload.Generate(spec)
		if err != nil {
			return nil, "", err
		}
		// Static counts, straight from the service.
		var census verifier.Census
		transformed := make(map[string][]byte, len(app.Classes))
		for name, data := range app.Classes {
			cf, err := classfile.Parse(data)
			if err != nil {
				return nil, "", err
			}
			res, err := verifier.Verify(cf)
			if err != nil {
				return nil, "", fmt.Errorf("eval: %s/%s: %w", spec.Name, name, err)
			}
			if err := verifier.Instrument(cf, res); err != nil {
				return nil, "", err
			}
			census.Add(res.Census)
			out, err := cf.Encode()
			if err != nil {
				return nil, "", err
			}
			transformed[name] = out
		}
		// Dynamic counts from an actual client run of the self-verifying
		// application.
		vm, err := jvm.New(jvm.MapLoader(transformed), nil)
		if err != nil {
			return nil, "", err
		}
		if thrown, err := vm.RunMain(spec.MainClass(), nil); err != nil || thrown != nil {
			return nil, "", runFail(spec.Name, thrown, err)
		}
		rows = append(rows, Fig8Row{
			Name:          spec.Name,
			StaticChecks:  census.Static(),
			DynamicChecks: vm.Stats.LinkChecks,
		})
	}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{r.Name, fmt.Sprint(r.StaticChecks), fmt.Sprint(r.DynamicChecks)})
	}
	return rows, table([]string{"Benchmark", "Static Checks", "Dynamic Checks"}, cells), nil
}
