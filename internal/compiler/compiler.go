// Package compiler implements the DVM's centralized compilation service
// (paper §3.4). Monolithic virtual machines compile just-in-time on the
// client, under tight time and memory pressure; the DVM instead performs
// the translation once, within the network, for the native format each
// client described in its handshake — "a compiler within the network can
// thus perform the translation for that platform ahead of time and thus
// amortize its startup costs over larger amounts of code."
//
// The client architecture targeted here is the DVM runtime's quickened
// instruction set (bytecode.Ext*): superinstructions that fuse the
// hottest interpreter dispatch sequences —
//
//	iload a; iload b; iadd          → ext_load_add a, b
//	iload a; iload b; imul          → ext_load_mul a, b
//	iload a; iload b; if_icmp<c> T  → ext_cmp_branch a, b, c, T
//	iinc a, k; iload a              → ext_iinc_load a, k
//
// The output is NOT standard JVM bytecode: this filter must run last in
// the pipeline (after verification and the other rewriters) and only for
// clients whose handshake advertises the "dvm" architecture family.
// Standard monolithic clients simply receive the unfused code.
package compiler

import (
	"fmt"

	"dvm/internal/bytecode"
	"dvm/internal/classfile"
	"dvm/internal/rewrite"
)

// ArchDVM is the client architecture string the handshake uses to opt in
// to the quickened native format.
const ArchDVM = "dvm"

// AttrCompiled marks a class translated by the compilation service; the
// payload is the target architecture string.
const AttrCompiled = "dvm.Compiled"

// Pipeline note keys published by Filter.
const (
	// NoteFusions accumulates (int) the number of superinstructions
	// emitted across classes.
	NoteFusions = "compiler.fusions"
)

// Stats reports what one compilation pass did.
type Stats struct {
	MethodsCompiled int
	Fusions         int
	BytesBefore     int
	BytesAfter      int
}

// CompileClass translates every method body of the class into the
// quickened format in place.
func CompileClass(cf *classfile.ClassFile) (Stats, error) {
	var st Stats
	for _, m := range cf.Methods {
		code, err := cf.CodeOf(m)
		if err != nil {
			return st, err
		}
		if code == nil {
			continue
		}
		st.BytesBefore += len(code.Bytecode)
		insts, err := bytecode.Decode(code.Bytecode)
		if err != nil {
			return st, fmt.Errorf("compiler: %s.%s: %w", cf.Name(), cf.MemberName(m), err)
		}
		protected := protectedIndices(insts, code, cf)
		fused, n := fuse(insts, protected)
		if n == 0 {
			st.BytesAfter += len(code.Bytecode)
			continue
		}
		newCode, pcs, err := bytecode.Encode(fused)
		if err != nil {
			return st, fmt.Errorf("compiler: %s.%s: %w", cf.Name(), cf.MemberName(m), err)
		}
		// Rebuild the exception table over the new layout.
		if err := remapHandlers(code, insts, fused, pcs, len(code.Bytecode), len(newCode)); err != nil {
			return st, fmt.Errorf("compiler: %s.%s: %w", cf.Name(), cf.MemberName(m), err)
		}
		code.Bytecode = newCode
		if err := cf.SetCode(m, code); err != nil {
			return st, err
		}
		st.MethodsCompiled++
		st.Fusions += n
		st.BytesAfter += len(newCode)
	}
	cf.RemoveAttribute(AttrCompiled)
	cf.AddAttribute(AttrCompiled, []byte(ArchDVM))
	return st, nil
}

// CompileArtifact derives the DVM-native artifact from an already
// transformed base-architecture artifact: parse, quicken in place,
// re-encode. Because every pipeline filter ahead of the compiler is
// architecture-independent and the compiler only appends to the
// constant pool, the result is byte-identical to running the full
// pipeline with the DVM architecture — which is what makes the
// compiled form a shareable, attestable cluster artifact (the proxy's
// AOT code cache, proxy.AOTConfig, plugs this in as Compile).
func CompileArtifact(base []byte) ([]byte, error) {
	cf, err := classfile.Parse(base)
	if err != nil {
		return nil, fmt.Errorf("compiler: parsing base artifact: %w", err)
	}
	if _, err := CompileClass(cf); err != nil {
		return nil, err
	}
	return cf.Encode()
}

// protectedIndices marks instruction indices that must stay addressable:
// branch/switch targets and exception-table boundaries. A fusion window
// may start at a protected index but not contain one beyond its first
// instruction.
func protectedIndices(insts []bytecode.Inst, code *classfile.Code, cf *classfile.ClassFile) map[int]bool {
	p := make(map[int]bool)
	for _, in := range insts {
		if in.Op.IsBranch() {
			p[in.Target] = true
		}
		if in.Op.IsSwitch() {
			p[in.Switch.Default] = true
			for _, t := range in.Switch.Targets {
				p[t] = true
			}
		}
	}
	pcIdx := bytecode.PCMap(insts)
	mark := func(pc uint16) {
		if i, ok := pcIdx[int(pc)]; ok {
			p[i] = true
		}
	}
	for _, h := range code.Handlers {
		mark(h.StartPC)
		mark(h.EndPC)
		mark(h.HandlerPC)
	}
	return p
}

// fuse rewrites the instruction list, replacing fusible windows with
// superinstructions and remapping branch targets.
func fuse(insts []bytecode.Inst, protected map[int]bool) ([]bytecode.Inst, int) {
	out := make([]bytecode.Inst, 0, len(insts))
	newIdx := make(map[int]int, len(insts))
	fusions := 0

	iloadIdx := func(in bytecode.Inst) (uint16, bool) {
		switch {
		case in.Op == bytecode.Iload && !in.Wide && in.Index <= 0xFF:
			return in.Index, true
		case in.Op >= bytecode.Iload0 && in.Op <= bytecode.Iload3:
			return uint16(in.Op - bytecode.Iload0), true
		}
		return 0, false
	}

	i := 0
	for i < len(insts) {
		emit := func(in bytecode.Inst, consumed int) {
			newIdx[i] = len(out)
			out = append(out, in)
			i += consumed
		}
		// Window must not contain protected indices after the first slot.
		clear3 := i+2 < len(insts) && !protected[i+1] && !protected[i+2]
		clear2 := i+1 < len(insts) && !protected[i+1]

		if clear3 {
			a, okA := iloadIdx(insts[i])
			b, okB := iloadIdx(insts[i+1])
			third := insts[i+2]
			if okA && okB {
				switch {
				case third.Op == bytecode.Iadd:
					emit(bytecode.Inst{Op: bytecode.ExtLoadAdd, Index: a, ArrayType: uint8(b), Target: -1}, 3)
					fusions++
					continue
				case third.Op == bytecode.Imul:
					emit(bytecode.Inst{Op: bytecode.ExtLoadMul, Index: a, ArrayType: uint8(b), Target: -1}, 3)
					fusions++
					continue
				case third.Op >= bytecode.IfIcmpeq && third.Op <= bytecode.IfIcmple:
					emit(bytecode.Inst{
						Op: bytecode.ExtCmpBranch, Index: a, ArrayType: uint8(b),
						Count:  uint8(third.Op - bytecode.IfIcmpeq),
						Target: third.Target,
					}, 3)
					fusions++
					continue
				}
			}
		}
		if clear2 && insts[i].Op == bytecode.Iinc && !insts[i].Wide &&
			insts[i].Index <= 0xFF && insts[i].Const >= -128 && insts[i].Const <= 127 {
			if b, ok := iloadIdx(insts[i+1]); ok && b == insts[i].Index {
				emit(bytecode.Inst{Op: bytecode.ExtIincLoad, Index: insts[i].Index, Const: insts[i].Const, Target: -1}, 2)
				fusions++
				continue
			}
		}
		emit(insts[i], 1)
	}

	// Remap targets. Old targets always point at window starts (protected
	// or untouched), which newIdx covers.
	for j := range out {
		in := &out[j]
		if in.Op.IsBranch() {
			in.Target = newIdx[in.Target]
		} else if in.Op.IsSwitch() {
			sw := *in.Switch
			sw.Default = newIdx[sw.Default]
			sw.Targets = append([]int(nil), in.Switch.Targets...)
			for k, t := range sw.Targets {
				sw.Targets[k] = newIdx[t]
			}
			in.Switch = &sw
		}
	}
	return out, fusions
}

// remapHandlers rewrites the exception table PCs for the fused layout.
// Fusion preserves each window's first instruction PC (Decode records
// original PCs in Inst.PC), which protectedIndices guaranteed covers
// every handler boundary.
func remapHandlers(code *classfile.Code, oldInsts, newInsts []bytecode.Inst,
	newPCs []int, oldCodeLen, newCodeLen int) error {
	oldPCIdx := bytecode.PCMap(oldInsts)
	oldToNew := make(map[int]int, len(newInsts))
	for newI, in := range newInsts {
		if oldI, ok := oldPCIdx[in.PC]; ok {
			oldToNew[oldI] = newI
		}
	}
	mapPC := func(pc uint16, isEnd bool) (uint16, error) {
		if isEnd && int(pc) == oldCodeLen {
			return uint16(newCodeLen), nil
		}
		oldI, ok := oldPCIdx[int(pc)]
		if !ok {
			return 0, fmt.Errorf("handler pc %d not on instruction boundary", pc)
		}
		newI, ok := oldToNew[oldI]
		if !ok {
			return 0, fmt.Errorf("handler boundary %d was fused away", pc)
		}
		return uint16(newPCs[newI]), nil
	}
	for i := range code.Handlers {
		h := &code.Handlers[i]
		s, err := mapPC(h.StartPC, false)
		if err != nil {
			return err
		}
		e, err := mapPC(h.EndPC, true)
		if err != nil {
			return err
		}
		hp, err := mapPC(h.HandlerPC, false)
		if err != nil {
			return err
		}
		h.StartPC, h.EndPC, h.HandlerPC = s, e, hp
	}
	return nil
}

// Filter returns the compilation service as a pipeline filter. It only
// transforms code when the requesting client's architecture (from the
// handshake, carried in ctx.ClientArch) opts in to the DVM native
// format; for every other client it is a no-op, preserving strict JVM
// compatibility.
func Filter() rewrite.Filter {
	return rewrite.FilterFunc{FilterName: "compiler", Fn: func(cf *classfile.ClassFile, ctx *rewrite.Context) error {
		if ctx.ClientArch != ArchDVM {
			return nil
		}
		st, err := CompileClass(cf)
		if err != nil {
			return err
		}
		ctx.AddIntNote(NoteFusions, st.Fusions)
		return nil
	}}
}
