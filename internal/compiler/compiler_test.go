package compiler_test

import (
	"bytes"
	"testing"

	"dvm/internal/bytecode"
	"dvm/internal/classfile"
	"dvm/internal/classgen"
	"dvm/internal/compiler"
	"dvm/internal/jvm"
	"dvm/internal/rewrite"
)

// buildLoopApp builds app/L with sum(n) = sum of i*i for i<n using
// fusible iload/iload patterns, plus a method with exception handling.
func buildLoopApp(t *testing.T) []byte {
	t.Helper()
	b := classgen.NewClass("app/L", "java/lang/Object")
	m := b.Method(classfile.AccPublic|classfile.AccStatic, "sum", "(I)I")
	m.IConst(0).IStore(1) // acc
	m.IConst(0).IStore(2) // i
	head := m.Here()
	exit := m.NewLabel()
	m.ILoad(2).ILoad(0).Branch(bytecode.IfIcmpge, exit) // fusible cmp-branch
	m.ILoad(2).ILoad(2).IMul()                          // fusible load-mul
	m.ILoad(1).Swap().IAdd().IStore(1)
	m.IInc(2, 1)
	m.Goto(head)
	m.Mark(exit)
	m.ILoad(1).IReturn()

	h := b.Method(classfile.AccPublic|classfile.AccStatic, "guarded", "(II)I")
	start := h.Here()
	h.ILoad(0).ILoad(1).IAdd() // fusible inside protected region
	h.ILoad(0).ILoad(1).IDiv()
	h.IAdd().IReturn()
	end := h.NewLabel()
	h.Mark(end)
	hl := h.Here()
	h.Pop()
	h.IConst(-1).IReturn()
	h.Handler(start, end, hl, "java/lang/ArithmeticException")

	data, err := b.BuildBytes()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestCompileFusesAndPreservesSemantics(t *testing.T) {
	data := buildLoopApp(t)
	cf, err := classfile.Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	st, err := compiler.CompileClass(cf)
	if err != nil {
		t.Fatalf("CompileClass: %v", err)
	}
	if st.Fusions == 0 {
		t.Fatal("no fusions performed")
	}
	if st.MethodsCompiled == 0 {
		t.Error("no methods compiled")
	}
	if cf.FindAttr(cf.Attributes, compiler.AttrCompiled) == nil {
		t.Error("dvm.Compiled attribute missing")
	}
	compiled, err := cf.Encode()
	if err != nil {
		t.Fatal(err)
	}

	// Strict JVM decode must reject the native format...
	m := cf.FindMethod("sum", "(I)I")
	code, _ := cf.CodeOf(m)
	if _, err := bytecode.Decode(code.Bytecode); err == nil {
		t.Error("strict Decode accepted extension opcodes")
	}
	// ...while DecodeExt accepts it.
	if _, err := bytecode.DecodeExt(code.Bytecode); err != nil {
		t.Errorf("DecodeExt rejected compiled code: %v", err)
	}

	// Semantics identical on the DVM client, with fewer dispatches.
	run := func(classBytes []byte) (int32, int64) {
		vm, err := jvm.New(jvm.MapLoader{"app/L": classBytes}, &bytes.Buffer{})
		if err != nil {
			t.Fatal(err)
		}
		v, thrown, err := vm.MainThread().InvokeByName("app/L", "sum", "(I)I", []jvm.Value{jvm.IntV(100)})
		if err != nil || thrown != nil {
			t.Fatalf("%v %v", err, jvm.DescribeThrowable(thrown))
		}
		return v.Int(), vm.Stats.InstructionsExecuted
	}
	wantV, baseInsts := run(data)
	gotV, fastInsts := run(compiled)
	if gotV != wantV {
		t.Fatalf("compiled sum(100) = %d, want %d", gotV, wantV)
	}
	if fastInsts >= baseInsts {
		t.Errorf("compiled code executed %d dispatches, baseline %d — no win", fastInsts, baseInsts)
	}
}

func TestCompilePreservesExceptionHandling(t *testing.T) {
	data := buildLoopApp(t)
	cf, _ := classfile.Parse(data)
	if _, err := compiler.CompileClass(cf); err != nil {
		t.Fatal(err)
	}
	compiled, _ := cf.Encode()
	vm, err := jvm.New(jvm.MapLoader{"app/L": compiled}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Normal path: (2+3) + (2/3) = 5.
	v, thrown, err := vm.MainThread().InvokeByName("app/L", "guarded", "(II)I",
		[]jvm.Value{jvm.IntV(2), jvm.IntV(3)})
	if err != nil || thrown != nil {
		t.Fatalf("%v %v", err, jvm.DescribeThrowable(thrown))
	}
	if v.Int() != 5 {
		t.Errorf("guarded(2,3) = %d, want 5", v.Int())
	}
	// Exception path: division by zero caught -> -1.
	v, thrown, err = vm.MainThread().InvokeByName("app/L", "guarded", "(II)I",
		[]jvm.Value{jvm.IntV(2), jvm.IntV(0)})
	if err != nil || thrown != nil {
		t.Fatalf("%v %v", err, jvm.DescribeThrowable(thrown))
	}
	if v.Int() != -1 {
		t.Errorf("guarded(2,0) = %d, want -1 (handler)", v.Int())
	}
}

func TestFilterRespectsClientArch(t *testing.T) {
	data := buildLoopApp(t)

	// A strict JVM client: no transformation.
	ctx := rewrite.NewContext()
	ctx.ClientArch = "x86-jdk"
	out, err := rewrite.NewPipeline(compiler.Filter()).Process(data, ctx)
	if err != nil {
		t.Fatal(err)
	}
	cf, _ := classfile.Parse(out)
	code, _ := cf.CodeOf(cf.FindMethod("sum", "(I)I"))
	if _, err := bytecode.Decode(code.Bytecode); err != nil {
		t.Errorf("non-DVM client received extension opcodes: %v", err)
	}

	// A DVM client: quickened.
	ctx2 := rewrite.NewContext()
	ctx2.ClientArch = compiler.ArchDVM
	out2, err := rewrite.NewPipeline(compiler.Filter()).Process(data, ctx2)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := ctx2.Notes[compiler.NoteFusions].(int); n == 0 {
		t.Error("DVM client received no fusions")
	}
	cf2, _ := classfile.Parse(out2)
	code2, _ := cf2.CodeOf(cf2.FindMethod("sum", "(I)I"))
	if _, err := bytecode.Decode(code2.Bytecode); err == nil {
		t.Error("DVM output contains no extension opcodes")
	}
}

func TestFusionSkipsBranchTargets(t *testing.T) {
	// A branch targeting the middle of a would-be window must block the
	// fusion: here the loop jumps straight to the second iload.
	b := classgen.NewClass("app/T", "java/lang/Object")
	m := b.Method(classfile.AccPublic|classfile.AccStatic, "f", "(I)I")
	mid := m.NewLabel()
	m.IConst(0).IStore(1)
	m.ILoad(0)
	m.Goto(mid)
	// window candidate: iload_0; [mid] iload_1; iadd
	m.ILoad(0)
	m.Mark(mid)
	m.ILoad(1)
	m.IAdd()
	m.IReturn()
	data, err := b.BuildBytes()
	if err != nil {
		t.Fatal(err)
	}
	cf, _ := classfile.Parse(data)
	if _, err := compiler.CompileClass(cf); err != nil {
		t.Fatal(err)
	}
	compiled, _ := cf.Encode()
	vm, err := jvm.New(jvm.MapLoader{"app/T": compiled}, nil)
	if err != nil {
		t.Fatal(err)
	}
	v, thrown, err := vm.MainThread().InvokeByName("app/T", "f", "(I)I", []jvm.Value{jvm.IntV(7)})
	if err != nil || thrown != nil {
		t.Fatalf("%v %v", err, jvm.DescribeThrowable(thrown))
	}
	if v.Int() != 7 {
		t.Errorf("f(7) = %d, want 7 (goto path: 7 + 0)", v.Int())
	}
}

func TestIincLoadFusion(t *testing.T) {
	b := classgen.NewClass("app/I", "java/lang/Object")
	m := b.Method(classfile.AccPublic|classfile.AccStatic, "f", "(I)I")
	m.ILoad(0).IStore(1)
	m.IInc(1, 5)
	m.ILoad(1)
	m.IReturn()
	data, _ := b.BuildBytes()
	cf, _ := classfile.Parse(data)
	st, err := compiler.CompileClass(cf)
	if err != nil {
		t.Fatal(err)
	}
	if st.Fusions == 0 {
		t.Fatal("iinc+iload not fused")
	}
	compiled, _ := cf.Encode()
	vm, err := jvm.New(jvm.MapLoader{"app/I": compiled}, nil)
	if err != nil {
		t.Fatal(err)
	}
	v, thrown, err := vm.MainThread().InvokeByName("app/I", "f", "(I)I", []jvm.Value{jvm.IntV(10)})
	if err != nil || thrown != nil {
		t.Fatalf("%v %v", err, jvm.DescribeThrowable(thrown))
	}
	if v.Int() != 15 {
		t.Errorf("f(10) = %d, want 15", v.Int())
	}
}
